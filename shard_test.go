package surge_test

import (
	"math/rand/v2"
	"testing"

	"surge"
)

// shardableAlgos are the algorithms with a sharded pipeline; the sharded
// detector must return bit-identical best scores to the single-engine path
// for every one of them.
var shardableAlgos = []surge.Algorithm{
	surge.CellCSPOT,
	surge.StaticBound,
	surge.Baseline,
	surge.GridApprox,
	surge.MultiGrid,
	surge.Oracle,
}

// shardStream generates a time-ordered random stream spanning negative and
// positive coordinates so the column striping is exercised across the
// origin.
func shardStream(seed uint64, n int, span float64) []surge.Object {
	rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
	objs := make([]surge.Object, n)
	t := 0.0
	for i := range objs {
		t += rng.ExpFloat64() * 0.5
		objs[i] = surge.Object{
			X:      rng.Float64()*span - span/2,
			Y:      rng.Float64()*span - span/2,
			Weight: 1 + rng.Float64()*99,
			Time:   t,
		}
	}
	return objs
}

// TestShardedEquivalence pushes the same randomized stream through the
// single-engine and the sharded detector and requires the best scores to be
// bit-identical after every arrival, for every algorithm and a spread of
// shard/block geometries.
func TestShardedEquivalence(t *testing.T) {
	geoms := []struct{ shards, block int }{
		{2, 1}, // worst case: every object replicated, A,B,A striping
		{3, 2},
		{4, 0}, // default block width
		{8, 4}, // more shards than hot blocks; some shards nearly idle
	}
	for _, alg := range shardableAlgos {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			n := 1500
			if alg == surge.Oracle {
				n = 500 // the oracle re-sweeps every push; keep it affordable
			}
			objs := shardStream(42, n, 12)
			for _, g := range geoms {
				o := opts()
				single, err := surge.New(alg, o)
				if err != nil {
					t.Fatal(err)
				}
				o.Shards = g.shards
				o.ShardBlockCols = g.block
				sharded, err := surge.New(alg, o)
				if err != nil {
					t.Fatal(err)
				}
				if got := sharded.Shards(); got != g.shards {
					t.Fatalf("Shards() = %d, want %d", got, g.shards)
				}
				for i, ob := range objs {
					want, err := single.Push(ob)
					if err != nil {
						t.Fatal(err)
					}
					got, err := sharded.Push(ob)
					if err != nil {
						t.Fatal(err)
					}
					if got.Found != want.Found || got.Score != want.Score {
						t.Fatalf("%v shards=%d block=%d: object %d: sharded (found=%v score=%v) != single (found=%v score=%v)",
							alg, g.shards, g.block, i, got.Found, got.Score, want.Found, want.Score)
					}
				}
				// Clock advance without arrivals must stay equivalent too.
				tEnd := objs[len(objs)-1].Time + 30
				want, err := single.AdvanceTo(tEnd)
				if err != nil {
					t.Fatal(err)
				}
				got, err := sharded.AdvanceTo(tEnd)
				if err != nil {
					t.Fatal(err)
				}
				if got.Found != want.Found || got.Score != want.Score {
					t.Fatalf("%v shards=%d block=%d: AdvanceTo: sharded %+v != single %+v",
						alg, g.shards, g.block, got, want)
				}
				if err := sharded.Close(); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestShardedEquivalenceArea repeats the equivalence check with a preferred
// area restricting detection.
func TestShardedEquivalenceArea(t *testing.T) {
	objs := shardStream(7, 1200, 16)
	area := &surge.Region{MinX: -5, MinY: -6, MaxX: 6, MaxY: 5}
	for _, alg := range []surge.Algorithm{surge.CellCSPOT, surge.GridApprox, surge.MultiGrid} {
		o := opts()
		o.Area = area
		single, err := surge.New(alg, o)
		if err != nil {
			t.Fatal(err)
		}
		o.Shards = 3
		o.ShardBlockCols = 1
		sharded, err := surge.New(alg, o)
		if err != nil {
			t.Fatal(err)
		}
		for i, ob := range objs {
			want, _ := single.Push(ob)
			got, err := sharded.Push(ob)
			if err != nil {
				t.Fatal(err)
			}
			if got.Found != want.Found || got.Score != want.Score {
				t.Fatalf("%v with area: object %d: sharded %+v != single %+v", alg, i, got, want)
			}
		}
		sharded.Close()
	}
}

// TestShardedEquivalenceCountWindows repeats the equivalence check with
// count-based windows.
func TestShardedEquivalenceCountWindows(t *testing.T) {
	objs := shardStream(11, 1200, 12)
	for _, alg := range []surge.Algorithm{surge.CellCSPOT, surge.MultiGrid} {
		o := opts()
		o.Window = 64
		o.CountWindows = true
		single, err := surge.New(alg, o)
		if err != nil {
			t.Fatal(err)
		}
		o.Shards = 4
		sharded, err := surge.New(alg, o)
		if err != nil {
			t.Fatal(err)
		}
		for i, ob := range objs {
			want, _ := single.Push(ob)
			got, err := sharded.Push(ob)
			if err != nil {
				t.Fatal(err)
			}
			if got.Found != want.Found || got.Score != want.Score {
				t.Fatalf("%v count windows: object %d: sharded %+v != single %+v", alg, i, got, want)
			}
		}
		sharded.Close()
	}
}

// TestPushBatchEquivalence checks that PushBatch ends in the same answer as
// per-object pushes, on both the single-engine and the sharded path.
func TestPushBatchEquivalence(t *testing.T) {
	objs := shardStream(5, 2000, 12)
	for _, alg := range shardableAlgos {
		if alg == surge.Oracle {
			continue // covered by TestShardedEquivalence; expensive here
		}
		ref, err := surge.New(alg, opts())
		if err != nil {
			t.Fatal(err)
		}
		var want surge.Result
		for _, ob := range objs {
			want, _ = ref.Push(ob)
		}

		single, _ := surge.New(alg, opts())
		o := opts()
		o.Shards = 3
		sharded, err := surge.New(alg, o)
		if err != nil {
			t.Fatal(err)
		}
		for lo := 0; lo < len(objs); lo += 256 {
			hi := lo + 256
			if hi > len(objs) {
				hi = len(objs)
			}
			if _, err := single.PushBatch(objs[lo:hi]); err != nil {
				t.Fatal(err)
			}
			if _, err := sharded.PushBatch(objs[lo:hi]); err != nil {
				t.Fatal(err)
			}
		}
		gotSingle := single.Best()
		gotSharded := sharded.Best()
		if gotSingle.Found != want.Found || gotSingle.Score != want.Score {
			t.Fatalf("%v: single PushBatch %+v != per-object %+v", alg, gotSingle, want)
		}
		if gotSharded.Found != want.Found || gotSharded.Score != want.Score {
			t.Fatalf("%v: sharded PushBatch %+v != per-object %+v", alg, gotSharded, want)
		}
		sharded.Close()
	}
}

// TestTopKPushBatch checks the top-k batch API against per-object pushes:
// same regions, scores equal up to the rounding of the kCCS engine's
// incrementally maintained candidate caches (the query schedule decides when
// they are refreshed, so the last few bits can differ).
func TestTopKPushBatch(t *testing.T) {
	objs := shardStream(9, 1000, 10)
	ref, err := surge.NewTopK(surge.CellCSPOT, opts(), 3)
	if err != nil {
		t.Fatal(err)
	}
	var want []surge.Result
	for _, ob := range objs {
		want, _ = ref.Push(ob)
	}
	batched, _ := surge.NewTopK(surge.CellCSPOT, opts(), 3)
	got, err := batched.PushBatch(objs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i].Found != want[i].Found || got[i].Region != want[i].Region || !almost(got[i].Score, want[i].Score) {
			t.Fatalf("top-k slot %d: batch %+v != per-object %+v", i, got[i], want[i])
		}
	}
}

// TestShardedPipelineConcurrency hammers the pipeline with large batches and
// interleaved queries; run under -race it checks the fan-out, the barrier
// and the merge for data races.
func TestShardedPipelineConcurrency(t *testing.T) {
	objs := shardStream(21, 20000, 20)
	o := opts()
	o.Window = 25
	o.Shards = 4
	o.ShardBlockCols = 1
	det, err := surge.New(surge.CellCSPOT, o)
	if err != nil {
		t.Fatal(err)
	}
	defer det.Close()
	var last surge.Result
	for lo := 0; lo < len(objs); lo += 1024 {
		hi := lo + 1024
		if hi > len(objs) {
			hi = len(objs)
		}
		res, err := det.PushBatch(objs[lo:hi])
		if err != nil {
			t.Fatal(err)
		}
		last = res
		if lo%4096 == 0 {
			det.Stats() // extra barrier interleaved with data batches
		}
	}
	if !last.Found {
		t.Fatal("dense stream ended with no bursty region")
	}
	st := det.Stats()
	if st.Events == 0 {
		t.Fatal("merged stats empty")
	}
}

// TestShardedLifecycle covers Close semantics and the AG2 fallback.
func TestShardedLifecycle(t *testing.T) {
	o := opts()
	o.Shards = 2
	det, err := surge.New(surge.CellCSPOT, o)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := det.Push(surge.Object{X: 1, Y: 1, Weight: 1, Time: 1}); err != nil {
		t.Fatal(err)
	}
	preClose := det.Best()
	if err := det.Close(); err != nil {
		t.Fatal(err)
	}
	if err := det.Close(); err != nil {
		t.Fatal(err)
	}
	// Close runs a final synchronisation: Best and Stats keep reporting the
	// end-of-stream state instead of zeroing out.
	if got := det.Best(); got != preClose {
		t.Errorf("Best after Close = %+v, want %+v", got, preClose)
	}
	if st := det.Stats(); st.Events == 0 {
		t.Error("Stats after Close lost the merged counters")
	}
	if _, err := det.Push(surge.Object{X: 1, Y: 1, Weight: 1, Time: 2}); err == nil {
		t.Error("Push after Close succeeded")
	}
	if _, err := det.PushBatch([]surge.Object{{X: 1, Y: 1, Weight: 1, Time: 3}}); err == nil {
		t.Error("PushBatch after Close succeeded")
	}
	if _, err := det.AdvanceTo(10); err == nil {
		t.Error("AdvanceTo after Close succeeded")
	}

	// AG2 has no sharded variant: it must fall back to one engine and work.
	ag, err := surge.New(surge.AG2, o)
	if err != nil {
		t.Fatal(err)
	}
	if got := ag.Shards(); got != 1 {
		t.Fatalf("AG2 Shards() = %d, want 1 (single-engine fallback)", got)
	}
	if _, err := ag.Push(surge.Object{X: 1, Y: 1, Weight: 1, Time: 1}); err != nil {
		t.Fatal(err)
	}
	if err := ag.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedCheckpoint checkpoints a sharded detector and restores it (the
// restored detector runs single-engine); scores must carry over.
func TestShardedCheckpoint(t *testing.T) {
	objs := shardStream(31, 800, 12)
	o := opts()
	o.Shards = 3
	det, err := surge.New(surge.CellCSPOT, o)
	if err != nil {
		t.Fatal(err)
	}
	defer det.Close()
	want, err := det.PushBatch(objs)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := det.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := surge.Restore(surge.CellCSPOT, blob)
	if err != nil {
		t.Fatal(err)
	}
	got := restored.Best()
	if got.Found != want.Found || got.Score != want.Score {
		t.Fatalf("restored best %+v != sharded best %+v", got, want)
	}
}
