// Package surge continuously detects bursty regions over a stream of
// weighted spatial objects, implementing the SURGE problem and the full
// algorithm suite of
//
//	Feng, Guo, Cong, Bhowmick, Ma.
//	"SURGE: Continuous Detection of Bursty Regions Over a Stream of
//	Spatial Objects." ICDE 2018.
//
// # Problem
//
// A spatial object is a weighted point with a creation time. Given a query
// rectangle size W x H and two consecutive sliding windows — the current
// window Wc and the past window Wp — the burst score of a region r is
//
//	S(r) = alpha*max(f(r,Wc) - f(r,Wp), 0) + (1-alpha)*f(r,Wc)
//
// where f(r, W) is the total weight of the objects inside r created during W,
// normalised by the window length. SURGE continuously reports the position of
// the W x H region with the maximum burst score; the top-k variant reports k
// regions such that every object contributes to at most one of them.
//
// # Detectors
//
// Seven interchangeable detectors are provided, selected by Algorithm:
//
//	CellCSPOT   exact; grid cells + upper bounds + lazy sweep (the paper's CCS)
//	StaticBound exact; static upper bound only (ablation, the paper's B-CCS)
//	Baseline    exact; re-search affected cells per event (the paper's Base)
//	AG2         exact; adapted continuous-MaxRS baseline (the paper's aG2)
//	GridApprox  approximate; query-aligned grid of candidate cells (GAP-SURGE)
//	MultiGrid   approximate; best of four shifted grids (MGAP-SURGE)
//	Oracle      exact; from-scratch sweep per query (reference implementation)
//
// The approximate detectors process an object in O(log n) and guarantee a
// burst score of at least (1-alpha)/4 of the optimum; in practice they reach
// 73-94% (paper Tables III-IV, reproduced in EXPERIMENTS.md).
//
// # Usage
//
//	det, err := surge.New(surge.CellCSPOT, surge.Options{
//	    Width: 0.01, Height: 0.01, // query rectangle size
//	    Window: 3600,              // 1h sliding windows
//	    Alpha:  0.5,
//	})
//	...
//	for obj := range stream {
//	    res, err := det.Push(surge.Object{X: obj.Lon, Y: obj.Lat, Weight: 1, Time: obj.T})
//	    if res.Found {
//	        fmt.Println("bursty region:", res.Region, "score:", res.Score)
//	    }
//	}
//
// Times are float64 values in any consistent unit; objects must be pushed in
// non-decreasing time order. Use NewTopK for the top-k detectors.
package surge
