// Package surge continuously detects bursty regions over a stream of
// weighted spatial objects, implementing the SURGE problem and the full
// algorithm suite of
//
//	Feng, Guo, Cong, Bhowmick, Ma.
//	"SURGE: Continuous Detection of Bursty Regions Over a Stream of
//	Spatial Objects." ICDE 2018.
//
// # Problem
//
// A spatial object is a weighted point with a creation time. Given a query
// rectangle size W x H and two consecutive sliding windows — the current
// window Wc and the past window Wp — the burst score of a region r is
//
//	S(r) = alpha*max(f(r,Wc) - f(r,Wp), 0) + (1-alpha)*f(r,Wc)
//
// where f(r, W) is the total weight of the objects inside r created during W,
// normalised by the window length. SURGE continuously reports the position of
// the W x H region with the maximum burst score; the top-k variant reports k
// regions such that every object contributes to at most one of them.
//
// # Detectors
//
// Seven interchangeable detectors are provided, selected by Algorithm:
//
//	CellCSPOT   exact; grid cells + upper bounds + lazy sweep (the paper's CCS)
//	StaticBound exact; static upper bound only (ablation, the paper's B-CCS)
//	Baseline    exact; re-search affected cells per event (the paper's Base)
//	AG2         exact; adapted continuous-MaxRS baseline (the paper's aG2)
//	GridApprox  approximate; query-aligned grid of candidate cells (GAP-SURGE)
//	MultiGrid   approximate; best of four shifted grids (MGAP-SURGE)
//	Oracle      exact; from-scratch sweep per query (reference implementation)
//
// The approximate detectors process an object in O(log n) and guarantee a
// burst score of at least (1-alpha)/4 of the optimum; in practice they reach
// 73-94% (paper Tables III-IV, reproduced in EXPERIMENTS.md).
//
// # Usage
//
//	det, err := surge.New(surge.CellCSPOT, surge.Options{
//	    Width: 0.01, Height: 0.01, // query rectangle size
//	    Window: 3600,              // 1h sliding windows
//	    Alpha:  0.5,
//	})
//	...
//	for obj := range stream {
//	    res, err := det.Push(surge.Object{X: obj.Lon, Y: obj.Lat, Weight: 1, Time: obj.T})
//	    if res.Found {
//	        fmt.Println("bursty region:", res.Region, "score:", res.Score)
//	    }
//	}
//
// Times are float64 values in any consistent unit; objects must be pushed in
// non-decreasing time order. Use NewTopK for the top-k detectors.
//
// # Sharded concurrent pipeline
//
// With Options.Shards >= 2 the detector runs as a sharded pipeline: the
// plane is partitioned into query-width column blocks striped round-robin
// over the shards, and each shard runs its own detection engine on a
// dedicated goroutine fed by a buffered event channel. A shard owns the
// candidate bursty points whose column floor(x/Width) falls in its blocks; a
// merger takes the maximum score over the shards, ties broken
// deterministically by the lowest shard index.
//
// The partitioning preserves exactness through the halo invariant: a region
// anchored at a point in column m spans only columns m-1 and m, so the
// router replicates every window event to the owners of the columns its
// coverage rectangle touches — a halo exactly one query width wide to the
// left of each owned block. The owning shard of any candidate therefore
// scores it over complete data, while the engines' ownership filter
// (core.ColumnSet) keeps a shard from ever reporting a candidate it only has
// halo data for. As a result the sharded detector returns the same best
// scores as the single-engine path, bit for bit, for every algorithm except
// AG2 (which has no sharded variant and falls back to one engine).
//
// Push on a sharded detector synchronises the pipeline on every call; the
// batch API amortises that:
//
//	det, _ := surge.New(surge.CellCSPOT, surge.Options{
//	    Width: 0.01, Height: 0.01, Window: 3600, Alpha: 0.5,
//	    Shards: 8,
//	})
//	defer det.Close()
//	for batch := range batches { // e.g. 512 objects at a time
//	    res, err := det.PushBatch(batch)
//	    ...
//	}
//
// PushBatch is also worthwhile on the single-engine path: window transitions
// are applied one by one, but the lazy engines defer their snapshot searches
// to a single query at the end of the batch.
//
// The top-k detectors shard the same way (NewTopK with Options.Shards, or
// AttachTopK on a sharded parent, whose engines then ride the parent's shard
// workers): every shard maintains the greedy chain's candidate state —
// bounds, candidates and visibility levels per problem — for its owned
// columns plus the halo, and each query runs the chain globally. Rank by
// rank, the coordinator collects every shard's best owned candidate for the
// current problem, selects the global winner (ties broken canonically:
// score, then region coordinates), and commits it back so the objects it
// covers are masked out of the higher-ranked problems; only the shards whose
// blocks the winner's coverage rectangle can reach apply the mask and
// re-solve the next problem — a shard outside that set provably holds no
// affected object, so its cached answer stands and block-boundary regions
// resolve exactly as in the single-engine chain. The merged answer is
// bitwise the single-engine answer for kCCS (and the naive oracle), and the
// same regions with canonical fold scores for kGAPS/kMGAPS — up to exact
// equal-score ties, the same caveat as the single-region pipeline: the
// coordinator breaks ties canonically (score, then region coordinates)
// while an engine's internal search resolves them in heap order, so
// streams with bitwise-tied candidates (e.g. unit weights) can mask a
// different tied region than a single engine would. Cross-count
// restore works like the single-region path: checkpoints record the shape,
// RestoreTopK honours it and RestoreTopKSharded overrides it.
//
// # Performance
//
// The steady-state ingest path is allocation-free from the HTTP body to the
// engines, and regression-guarded: testing.AllocsPerRun tests assert zero
// amortised allocations per Push for the CCS and GAPS engines and for the
// server's NDJSON line decoder (run by the ordinary test suite, i.e. by
// `make check`). The pooling contract behind that:
//
//   - The engines recycle their per-cell storage: a cell emptied by expiry
//     is reset and reused for the next cell born anywhere on the grid, so
//     cell churn under a moving stream costs no heap traffic. Recycled
//     state is byte-identical to a fresh cell's, so reuse cannot perturb
//     the bit-identical score guarantees.
//   - The continuous top-k maintenance path is allocation-free per event in
//     the steady state too, guarded by an AllocsPerRun test on the
//     single-engine path (the cross-shard chain additionally allocates a
//     few small op headers per merge round, amortised over the batch).
//     Three structural optimisations keep its per-event
//     cost near a single-region engine's despite the k chained problems:
//     cells share one bound/candidate slot until a level change actually
//     splits them (almost every cell, since levels only change around the
//     current top-k regions); heap positions are stored in the cells
//     instead of hash maps; and heap-key refreshes are deferred to a dirty
//     queue flushed once per query instead of per visibility operation.
//   - The CCS engine and the top-k engines share one packed cell layout:
//     cells are addressed by a single uint64 key (grid.Cell.Pack, two
//     sign-extended int32 coordinates) instead of a two-field struct key,
//     and each cell records its own heap position, so the hot per-event
//     sequence — map lookup, bound update, heap sift — runs on machine
//     words with no composite-key hashing and no position map.
//   - The shard router recycles its event batches through a sync.Pool —
//     shard workers hand slices back after applying them — and sizes each
//     flush by the receiving shard's backlog: Options.ShardFlushEvents = 0
//     (the default) starts at small batches while a shard's channel is
//     empty (low detection latency) and doubles the batch up to the
//     maximum as the channel fills (fewer synchronisations exactly when
//     they are most contended). A fixed size can be pinned with
//     Options.ShardFlushEvents or `surged -flush N`; batch sizing never
//     changes which events a shard sees or their order, so answers are
//     identical under every setting. `surged -batch auto` picks the
//     PushBatch chunking (1 single-engine, 512 sharded).
//   - The server decodes NDJSON/CSV ingest bodies with a zero-copy field
//     scanner over the request buffer (exotic lines fall back to
//     encoding/json, so accepted inputs are unchanged) and recycles the
//     per-request chunk buffers.
//
// The perf trajectory is tracked by machine-readable benchmark reports:
// `surgebench -exp hotpath -json-dir .` writes BENCH_hotpath.json with
// ns/obj, allocs/obj and objs/sec for the single-engine (CCS, GAPS),
// sharded-batch and HTTP-ingest configurations (each the fastest of
// several interleaved rounds — the least-interfered estimate on a shared
// runner), the `shards` and
// `serve` experiments write BENCH_shards.json / BENCH_serve.json with
// their scaling curves (rows of objects_per_sec and speedup per shard
// count), and the `topkserve` experiment writes BENCH_topk.json with the
// /v1/topk latency percentiles (continuous vs replay), the ingest cost of
// the unified chain layout against the dual-engine layout it replaced and
// against a server with no top-k at all, and the /v1/best latency of both
// serving layouts. CI runs the hotpath and topkserve
// experiments at laptop scale on every PR and archives the JSON, so
// regressions show up as a diff in the perf point.
// For profiling a live instance, `surged serve -pprof` mounts
// net/http/pprof under /debug/pprof/ (off by default).
//
// # Serving
//
// surged serve hosts a detector as a long-running HTTP service
// (internal/server), turning continuous detection from a polled library
// call into a pushed notification stream. The endpoints:
//
//	POST /v1/ingest     NDJSON {"time","x","y","weight"} or CSV
//	                    "time,x,y,weight" object batches
//	GET  /v1/best       current bursty region, stream clock, engine stats;
//	                    with maintained top-k (surged -topk, the default)
//	                    it is served from rank 1 of the maintained chain
//	                    and the single-region engines are dropped
//	GET  /v1/topk?k=N   greedy top-k over the live windows, answered O(1)
//	                    from the continuously maintained kCCS answer
//	                    (?mode=replay forces the checkpoint-replay path)
//	GET  /v1/subscribe  Server-Sent Events: a "hello" event with the
//	                    current state, then one "burst" event per bursty-
//	                    region change and one "topk" event per top-k
//	                    change; Last-Event-ID resumes after a disconnect
//	POST /v1/snapshot   detector checkpoint (restorable by Restore)
//	POST /v1/restore    replace the server's state from a checkpoint
//	GET  /v1/stats      typed JSON telemetry snapshot (client.StatsSnapshot):
//	                    latency histograms for every pipeline stage,
//	                    counters, Go runtime health and one row per query
//	GET  /v1/queries    query registry: list, POST to create, DELETE
//	                    /v1/queries/{id} to retire (see Multi-tenancy)
//	.../v1/queries/{id}/best|topk|subscribe|stats|snapshot|restore
//	                    the per-query serving surface; the bare /v1/*
//	                    paths above alias query "default"
//	GET  /healthz       health summary with build info and last-ingest age
//	GET  /metrics       Prometheus text exposition
//
// The wire schema is defined (and consumed) by the typed surge/client
// package; see examples/server for an end-to-end tour. Lifecycle events —
// startup, checkpoint, restore, shutdown, degraded-mode transitions — are
// structured slog records; surged -log-format selects text or json on
// stderr (library embedders wire server.Config.Logger).
//
// Consistency guarantees: the detector is owned by a single-writer event
// loop — handlers parse request bodies concurrently and the loop applies
// them as PushBatch batches — so concurrent ingesters serialise into one
// global stream order and the SSE notification stream equals the answer
// changes of a single-process run of that order, bit for bit in the scores
// (for every algorithm except AG2). Out-of-order timestamps across
// uncoordinated ingesters are rejected ("strict" policy) or lifted to the
// stream clock ("clamp"). A subscriber that falls behind its buffer loses
// oldest-first notifications, with the loss counted on the next delivered
// notification — never silently; a subscriber that reconnects with the
// standard Last-Event-ID header is backfilled from a bounded ring of
// recent events (surged -notify-ring) with the same exact loss accounting
// instead of being restarted from the hello state. Event ids carry the
// server's stream epoch — a random per-process identifier announced in the
// hello frame and rendered into every SSE id as "epoch.eid" — so a cursor
// from before a process restart is never confused with a position on the
// new process's stream: a resume whose epoch matches is honoured exactly,
// while a foreign-epoch cursor (the server restarted, e.g. from a
// checkpoint) degrades to a fresh subscription whose hello resynchronises
// the client (client.Subscription.Cursor / SubscribeFromCursor / Resynced
// round-trip this without the caller parsing ids). On SIGTERM the server
// checkpoints before the listener drains, and a later "surged serve
// -restore" resumes the stream, into any shard count (RestoreSharded).
//
// # Multi-tenancy
//
// One server hosts a registry of named queries over one shared spatial
// stream: ingest parsing, admission control, ordering and the WAL append
// happen once per chunk, and the event loop fans the decoded batch out to
// every query's engine. The per-object ingest cost is therefore paid per
// stream, not per query — the shared plane hands each engine the same
// read-only object slice (copied only if that engine's time policy has to
// lift a timestamp), and the tenancy benchmark (BENCH_tenancy.json,
// tenancy_scale_pct) tracks the throughput of 64 identical queries
// against one.
//
// Lifecycle: queries exist from boot (server.Config.Queries, surged serve
// -queries file.json) or are created and deleted at runtime through the
// /v1/queries CRUD surface (client.CreateQuery / Client.Query /
// Query.Delete). Query "default" is the server's own configuration, always
// exists, cannot be deleted, and serves every legacy /v1/* path, so a
// single-query deployment never notices the registry. Each query owns a
// detector configuration (algorithm, cell size, window, top-k, shard
// count), its own SSE hub with the full cursor/epoch/drop accounting of
// the single-query server, its own snapshot/restore endpoints (checkpoints
// move between queries and between servers), and its own telemetry row
// (client.QueryStats in /v1/stats, per-query labelled families in
// /metrics). A request for an unregistered id fails with 404/"unknown_query"
// — typed client.ErrUnknownQuery, never retried by WithRetry.
//
// Engine sharing: boot-registry queries whose resolved configurations are
// identical are backed by ONE engine slot (QueryInfo.Shared), so thousands
// of dashboards watching the same query cost one detector. Sharing is an
// internal deduplication, not a visible state: every shared query answers
// exactly as if it ran its own engine, and a restore into one of them
// first splits it onto a private slot. Runtime-created queries always get
// a private engine — they join at the current stream position with empty
// windows, which can never equal an engine that has already seen data.
// Engines ride the existing shard workers (each slot is pinned to a
// worker), so tenancy scales with cores rather than goroutines-per-query.
//
// Isolation and equivalence: a slow subscriber, an engine error or a
// panicking pipeline in one query charges only that query's drop counters
// and error surface; other tenants' answers, notifications and stats are
// unperturbed, and ingest keeps acking as long as any engine accepts the
// batch (per-query errors surface in that query's stats row). N
// identically-configured queries on one server answer bit-for-bit the same
// as N independent single-query servers fed the same stream — across
// shard counts, checkpoint/restore and kill -9 crash recovery (the
// multi-query crash harness pins this). Per-query subscriber quotas
// (Config.QueryMaxSubscribers, surged -query-max-subs) bound the SSE cost
// a single tenant can impose; past the quota a subscribe fails with
// 429/"quota_exceeded" (typed client.ErrQuotaExceeded) instead of
// degrading the query's existing subscribers.
//
// Durability is tenant-aware with zero extra WAL traffic: log frames stay
// per-chunk (one append covers every query), while checkpoints carry the
// full registry — each query's configuration plus its engine state, with
// shared slots stored once. Recovery rebuilds the registry and replays
// the WAL tail into every engine, restoring runtime-created queries and
// keeping deleted ones dead across crashes; pre-registry (v1) checkpoints
// still load and seed the default query.
//
// # Durability
//
// surged serve -data-dir makes the server durable: every acknowledged
// ingest chunk is appended to a write-ahead log in the directory before
// its 200 goes out, on the same single-writer loop that applies it, so log
// order equals apply order. Frames are length-prefixed and CRC32C-checked
// in fixed-size segments; each frame records the chunk's objects as they
// arrived, before timestamp clamping, so replay re-runs the identical
// clamp against the restored stream clock and recovers bit-identical
// state. Boot loads the newest checkpoint (surge.ckpt, written atomically:
// temp file, fsync, rename, directory fsync), replays the log tail past
// its LSN through the normal ingest path, and truncates at the first torn
// record — a partially written tail from a crash mid-append, counted in
// /healthz as wal_torn_bytes. A background checkpoint (surged
// -checkpoint-every) persists the detector state plus the ingest dedupe
// table and deletes the log segments it covers, bounding both recovery
// time and disk growth; graceful shutdown writes a final checkpoint so the
// next boot replays nothing.
//
// What a crash can lose depends only on the kind of crash. A process kill
// (kill -9, OOM) loses nothing acknowledged under any setting: the frame
// is in the page cache before the ack. A machine crash is governed by
// surged -wal-sync: "always" fsyncs before every ack (lose nothing),
// an interval like "100ms" fsyncs in the background (lose at most one
// interval of acks), "off" never fsyncs (lose up to the page cache). The
// hotpath benchmark prices the interval policy against plain HTTP ingest
// as wal_overhead_pct in BENCH_hotpath.json.
//
// Retries are made safe by sequenced ingest: a client that tags POST
// /v1/ingest with an Ingest-Seq: source:seq header (client.IngestSeq) gets
// effectively-once semantics per source. Sequence numbers must increase by
// one; a duplicate of a completed sequence re-sends the original ack
// without re-applying anything, a retry of a half-applied request resumes
// at the first unapplied chunk (chunking is deterministic), a lower
// sequence is rejected 409 seq_out_of_order, and two concurrent requests
// for the same source conflict with 409 seq_conflict. The dedupe table
// rides the WAL and the checkpoints, so the contract holds across crash
// recovery — the fault-injection suite kills a serving process mid-request
// and asserts the retried ack and the final answers are bitwise equal to
// an uninterrupted run. client.WithRetry turns the contract into a
// drop-in retry loop: transport errors, 5xx and 429 responses are retried
// with jittered exponential backoff, honouring Retry-After, and only
// requests that are safe to repeat (idempotent reads, sequenced ingest)
// are ever retried.
//
// Under sustained overload the server sheds ingest instead of queueing
// without bound: once surged -max-pending chunks are waiting on the event
// loop, further chunks are rejected with 429, a Retry-After hint and the
// typed code "overloaded" (client.ErrOverloaded), counted as
// surge_ingest_throttled_total. The WAL's own telemetry —
// append/fsync latency histograms, segment count and size, recovery
// figures — is surfaced on /metrics as surge_wal_* and on /v1/stats as
// client.WALStats.
//
// # Failure modes and graceful degradation
//
// A durable server survives disk faults and pipeline panics without
// dropping the service. When a WAL append or fsync fails, the log poisons
// itself (nothing further is acknowledged against the dead segment), the
// server enters the degraded state, and a repair loop retries with
// jittered backoff: rotate the log to a fresh segment, write a fresh
// checkpoint to re-establish the durable floor, then resume. While
// degraded, ingest is shed with 503, the typed code "durability_degraded"
// (client.ErrDegraded) and a Retry-After hint — client.WithRetry rides
// through the window — while queries, subscriptions and stats keep serving
// from the last good state. The failure modes, what an operator observes,
// and what to do:
//
//	fault                    observed behaviour              health state         operator action
//	-----                    ------------------              ------------         ---------------
//	disk full (ENOSPC)       ingest 503 durability_degraded; wal.durability      free disk space; the repair
//	                         failed append never acked;      "degraded",          loop resumes service by
//	                         queries keep serving            healthz 503          itself, no restart needed
//	I/O error (EIO)          same shed-and-repair cycle;     wal.durability       check the device; if the
//	                         surge_wal_faults_total and      "degraded" then      fault persists the server
//	                         surge_wal_repairs_total count   "recovered"          stays degraded and retries
//	                         the cycle                                            with backoff forever
//	torn WAL tail            boot truncates at the first     healthz OK,          none: the torn frame was
//	(crash mid-append)       corrupt frame and replays the   wal_torn_bytes > 0   never acknowledged; retry
//	                         intact prefix                                        the uncertain batch
//	checkpoint write fails   checkpointing retried with      healthz OK (appends  free disk/fix perms; WAL
//	                         backoff; counted as             are still durable —  replay at next boot is
//	                         surge_checkpoint_errors_total   not a degradation)   longer until one lands
//	pipeline panic           ingest 500, the panic and its   healthz 503 with     capture the logged stack,
//	(engine bug)             stack logged once; queries      the panic text       restart; a durable server
//	                         serve the last good snapshot;                        recovers acknowledged
//	                         Close/Query never deadlock                           state from the log
//
// The degradation counters ride /healthz and /v1/stats (durability state,
// degraded/repaired transition counts, seconds spent degraded) and
// /metrics (surge_durability_degraded, surge_degraded_transitions_total,
// surge_repairs_total, surge_degraded_seconds_total), so an alert can key
// on surge_durability_degraded == 1 outlasting the repair backoff.
//
// # Continuous top-k serving
//
// The server maintains the top-k answer continuously instead of computing
// it per query: a kCCS top-k detector is attached to the ingest detector's
// event stream (Detector.AttachTopK), refreshed after every applied batch,
// and published as an immutable snapshot that GET /v1/topk serves with one
// atomic load — O(1) per query regardless of stream size, with no garbage
// and no loop round-trip. On a sharded server the maintained engines ride
// the shard workers — per-event maintenance is distributed exactly like
// detection (each (event, cell) pair is processed by exactly one shard, so
// sharding adds no duplicated maintenance work), off the event-loop thread,
// and the per-batch refresh is the cross-shard merge, which re-solves only
// the shards around the committed ranks. Any k up to
// the maintained one (surged -topk, default 5) is served as a prefix of the
// snapshot, the greedy chain being prefix-stable; larger k fall back to the
// replay path, which checkpoints the live windows into a pooled buffer and
// replays them into a fresh single-engine detector off the loop
// (?mode=replay forces it, surged -topk 0 makes it the only path).
//
// With a maintained chain attached, the chain is the server's only engine:
// rank 1 of the greedy chain over the unconstrained plane is exactly the
// single-region answer (the first problem of the chain is the single-region
// problem), so /v1/best and the "burst" SSE stream are served from the
// maintained snapshot's rank 1 (Detector.AttachTopKBest) and the
// single-region engines are dropped at attach rather than run in parallel.
// Equal-score selections follow one canonical order (core.CompareTopK:
// score, then region coordinates) across every engine family and the
// coordinator, which is what keeps the chain-served answer bitwise equal to
// the engine-served one. The pre-change dual-engine layout — engines for
// /v1/best, chain for /v1/topk — remains available for comparison behind
// surged -best-from-engines; BENCH_topk.json prices both
// (ingest_overhead_pct, bestserve_ingest_gain_pct: on a 1-CPU box the
// unified layout ingests ~70% faster than the dual layout it replaced, and
// maintained top-k costs ~5% versus a server with no top-k at all). The
// exceptions are the engines with no chain variant (AG2, Oracle): they keep
// their single-region engines, and BestFromEngines is implied.
//
// The kCCS engine keeps its per-cell state canonical — arrival-ordered
// object storage, candidate scores maintained as arrival-order folds,
// levels a pure function of the live content — so the continuously
// maintained answer is bitwise identical (scores) to replaying a
// checkpoint of the same windows: the fast path and the escape hatch are
// interchangeable, which the randomized equivalence tests pin down for
// kCCS, kGAPS and kMGAPS (the grid engines report canonical folds too).
// Top-k rank changes are pushed to subscribers as "topk" SSE events; the
// maintenance cost on the ingest path is tracked by the topkserve
// benchmark (BENCH_topk.json). A detector whose pipeline fails keeps
// serving its last good answer and records the failure (Detector.Err);
// /healthz then reports it with a 503 so orchestrators recycle the
// instance. Known follow-up: aG2 still has no top-k variant (kCCS
// substitutes).
//
// # Observability
//
// Every pipeline stage is instrumented with lock-free, fixed-bucket
// log-scale histograms (internal/obs): recording is atomics only — zero
// heap allocations per observation — so the telemetry lives inside the
// zero-allocation ingest hot path without breaking its contract (the
// steady-state allocs/obj guard runs with instrumentation on, and the
// hotpath benchmark prices obs-on vs obs-off as obs_overhead_pct in
// BENCH_hotpath.json; make bench-smoke fails beyond a small budget).
// Values below 8 are exact and every octave above splits into 8
// sub-buckets, bounding relative quantile error at 12.5%.
//
// The numbers surface three ways: GET /metrics renders Prometheus text
// (histograms as summaries with p50/p90/p99/p999, _sum and _count), GET
// /v1/stats returns the same data as a typed JSON snapshot
// (client.StatsSnapshot, fetched by client.Stats), and both are served
// entirely from atomics and loop-state mirrors — no event-loop round-trip,
// so the scrape keeps answering (with the loop's last published state)
// when the loop is wedged, which is exactly when the numbers matter.
// /healthz bounds its loop probe with a timeout and reports a stalled loop
// as a 503 instead of hanging.
//
// Latency and value histograms (summaries):
//
//	surge_ingest_ack_seconds         ingest chunk submit -> applied & acked
//	surge_ingest_parse_seconds       ingest body parse time (total - ack waits)
//	surge_ingest_batch_objects       objects per applied batch
//	surge_loop_queue_wait_seconds    event-loop queue wait: submit -> start
//	surge_loop_apply_seconds         batch apply duration on the loop
//	surge_loop_lag_seconds           self-timed loop lag probe (500ms cadence)
//	surge_sse_delivery_seconds       SSE publish -> written to subscriber
//	surge_sse_buffer_occupancy       per-subscriber buffer depth at broadcast
//	surge_shard_flush_events         events per shipped shard batch
//	surge_shard_barrier_wait_seconds shard Query barrier wait
//	surge_topk_resolve_seconds       cross-shard top-k resolve (slow path)
//	surge_topk_solve_wait_seconds    time blocked on shard solve replies
//	surge_topk_resolved_shards       shard solve ops per resolve
//
// Counters and gauges beyond the pre-existing serving set
// (surge_objects_ingested_total, surge_shards, surge_best_score, ...):
//
//	surge_shard_events_total{shard}  per-shard events shipped (counter)
//	surge_shard_channel_depth{shard} per-shard channel depth (gauge)
//	surge_topk_commits_total         top-k rank commits shipped (counter)
//	surge_last_ingest_age_seconds    seconds since the last applied batch (-1 = never)
//	surge_loop_tick_age_seconds      seconds since the loop answered a probe (-1 = never)
//	surge_build_info{version,go_version,algorithm,shards} constant 1
//	surge_runtime_goroutines         live goroutines (gauge)
//	surge_runtime_heap_bytes         live heap bytes (gauge)
//	surge_runtime_gc_cycles_total    completed GC cycles (counter)
//	surge_runtime_gc_pause_seconds   GC pause distribution (summary)
//	surge_runtime_sched_latency_seconds goroutine scheduling latency (summary)
package surge
