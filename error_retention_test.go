package surge_test

import (
	"math"
	"testing"

	"surge"
)

// TestWindowErrorRetainsAnswer pins the error contract of the stream
// mutators: Push, PushBatch and AdvanceTo all retain (and return) the
// previous answer on a window error — out-of-order timestamps, invalid
// objects, backwards clock moves — on both the single-engine and the
// sharded path. Only PushBatch documented this before; Push and AdvanceTo
// returned a zero Result alongside the error.
func TestWindowErrorRetainsAnswer(t *testing.T) {
	for _, shards := range []int{0, 3} {
		o := opts()
		o.Shards = shards
		d, err := surge.New(surge.CellCSPOT, o)
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		objs := randomObjects(21, 200, 6)
		if _, err := d.PushBatch(objs); err != nil {
			t.Fatal(err)
		}
		want := d.Best()
		if !want.Found {
			t.Fatalf("shards=%d: expected a detected region before the error", shards)
		}
		late := surge.Object{X: 1, Y: 1, Weight: 5, Time: objs[len(objs)-1].Time - 10}

		res, err := d.Push(late)
		if err == nil {
			t.Fatalf("shards=%d: out-of-order Push must fail", shards)
		}
		if res != want {
			t.Fatalf("shards=%d: Push error dropped the answer: %+v != %+v", shards, res, want)
		}
		res, err = d.PushBatch([]surge.Object{late})
		if err == nil {
			t.Fatalf("shards=%d: out-of-order PushBatch must fail", shards)
		}
		if res != want {
			t.Fatalf("shards=%d: PushBatch error dropped the answer: %+v != %+v", shards, res, want)
		}
		res, err = d.AdvanceTo(late.Time)
		if err == nil {
			t.Fatalf("shards=%d: backwards AdvanceTo must fail", shards)
		}
		if res != want {
			t.Fatalf("shards=%d: AdvanceTo error dropped the answer: %+v != %+v", shards, res, want)
		}
		bad := surge.Object{X: math.NaN(), Y: 0, Weight: 1, Time: objs[len(objs)-1].Time + 1}
		res, err = d.Push(bad)
		if err == nil {
			t.Fatalf("shards=%d: invalid object must fail", shards)
		}
		if res != want {
			t.Fatalf("shards=%d: invalid-object Push dropped the answer: %+v != %+v", shards, res, want)
		}
		// The stream keeps working after an error, and the error did not
		// poison the detector (Err stays nil: window errors are the
		// caller's, pipeline errors are the detector's).
		if d.Err() != nil {
			t.Fatalf("shards=%d: window error recorded as pipeline error: %v", shards, d.Err())
		}
		if _, err := d.Push(surge.Object{X: 1, Y: 1, Weight: 5, Time: objs[len(objs)-1].Time + 2}); err != nil {
			t.Fatalf("shards=%d: stream must continue after an error: %v", shards, err)
		}
	}
}
