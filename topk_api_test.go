package surge_test

import (
	"testing"

	"surge"
)

func TestNewTopKValidation(t *testing.T) {
	if _, err := surge.NewTopK(surge.CellCSPOT, opts(), 0); err == nil {
		t.Fatal("k = 0 must be rejected")
	}
	if _, err := surge.NewTopK(surge.Baseline, opts(), 3); err == nil {
		t.Fatal("Baseline has no top-k variant")
	}
	if _, err := surge.NewTopK(surge.CellCSPOT, surge.Options{}, 3); err == nil {
		t.Fatal("invalid options must be rejected")
	}
}

func TestTopKConstructors(t *testing.T) {
	for _, a := range []surge.Algorithm{surge.CellCSPOT, surge.GridApprox, surge.MultiGrid, surge.Oracle} {
		d, err := surge.NewTopK(a, opts(), 3)
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		if d.K() != 3 || d.Algorithm() != a {
			t.Fatalf("%v: K=%d alg=%v", a, d.K(), d.Algorithm())
		}
		res := d.BestK()
		if len(res) != 3 {
			t.Fatalf("%v: BestK length %d", a, len(res))
		}
		for i, r := range res {
			if r.Found {
				t.Fatalf("%v: fresh detector rank %d found", a, i)
			}
		}
	}
}

// TestTopKExactAgreesWithNaive via the public API.
func TestTopKExactAgreesWithNaive(t *testing.T) {
	k := 3
	kccs, _ := surge.NewTopK(surge.CellCSPOT, opts(), k)
	naive, _ := surge.NewTopK(surge.Oracle, opts(), k)
	for _, o := range randomObjects(21, 400, 5) {
		a, err := kccs.Push(o)
		if err != nil {
			t.Fatal(err)
		}
		b, err := naive.Push(o)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < k; i++ {
			as, bs := a[i].Score, b[i].Score
			if !almost(as, bs) {
				t.Fatalf("t=%v rank %d: kCCS=%v naive=%v", o.Time, i, as, bs)
			}
		}
	}
}

func TestTopKRanksOrdered(t *testing.T) {
	for _, alg := range []surge.Algorithm{surge.CellCSPOT, surge.GridApprox, surge.MultiGrid} {
		d, _ := surge.NewTopK(alg, opts(), 4)
		var last []surge.Result
		for _, o := range randomObjects(31, 500, 5) {
			res, err := d.Push(o)
			if err != nil {
				t.Fatal(err)
			}
			last = res
		}
		for i := 1; i < len(last); i++ {
			if last[i].Found && last[i].Score > last[i-1].Score+1e-9 {
				t.Fatalf("%v: ranks out of order: %v then %v", alg, last[i-1].Score, last[i].Score)
			}
		}
	}
}

func TestTopKAdvance(t *testing.T) {
	d, _ := surge.NewTopK(surge.CellCSPOT, opts(), 2)
	if _, err := d.Push(surge.Object{X: 1, Y: 1, Weight: 5, Time: 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Push(surge.Object{X: 20, Y: 20, Weight: 3, Time: 1}); err != nil {
		t.Fatal(err)
	}
	res := d.BestK()
	if !res[0].Found || !res[1].Found {
		t.Fatalf("two separated objects must fill two ranks: %+v", res)
	}
	if res[0].Score < res[1].Score {
		t.Fatal("rank order violated")
	}
	res, err := d.AdvanceTo(1e6)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Found || res[1].Found {
		t.Fatalf("expired content still ranked: %+v", res)
	}
}

func TestTopKStats(t *testing.T) {
	d, _ := surge.NewTopK(surge.CellCSPOT, opts(), 2)
	for _, o := range randomObjects(41, 200, 4) {
		if _, err := d.Push(o); err != nil {
			t.Fatal(err)
		}
	}
	if d.Stats().Events == 0 {
		t.Fatal("stats not recorded")
	}
}
