package surge_test

import (
	"math/rand/v2"
	"testing"

	"surge"
)

// TestSoakLongStreamDrift runs a long stream (tens of thousands of events,
// many full window turnovers) through the incremental detectors and checks
// them against the from-scratch oracle at sampled points. It exists to catch
// floating-point drift and stale-cache bugs that only accumulate over time.
func TestSoakLongStreamDrift(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	o := surge.Options{Width: 1, Height: 1, Window: 12, Alpha: 0.6}
	exact, _ := surge.New(surge.CellCSPOT, o)
	ag2, _ := surge.New(surge.AG2, o)
	grid, _ := surge.New(surge.GridApprox, o)
	oracle, _ := surge.New(surge.Oracle, o)

	rng := rand.New(rand.NewPCG(1234, 5678))
	tm := 0.0
	for i := 0; i < 6000; i++ {
		tm += rng.ExpFloat64() * 0.4
		obj := surge.Object{
			X:      rng.Float64() * 8,
			Y:      rng.Float64() * 8,
			Weight: 1 + rng.Float64()*99,
			Time:   tm,
		}
		// Periodic regime shifts: hotspots appear and vanish so cells fill
		// and empty repeatedly (the drift-reset paths get exercised).
		if phase := int(tm/40) % 3; phase == 1 {
			obj.X = 2 + rng.Float64()
			obj.Y = 2 + rng.Float64()
		} else if phase == 2 {
			obj.X = 6 + rng.Float64()*0.5
			obj.Y = 1 + rng.Float64()*0.5
		}
		er, err := exact.Push(obj)
		if err != nil {
			t.Fatal(err)
		}
		ar, _ := ag2.Push(obj)
		gr, _ := grid.Push(obj)
		wr := oracleAt(t, oracle, obj)
		if i%97 != 0 {
			continue
		}
		es, as, ws := er.Score, ar.Score, wr.Score
		if !er.Found {
			es = 0
		}
		if !ar.Found {
			as = 0
		}
		if !wr.Found {
			ws = 0
		}
		if !almost(es, ws) {
			t.Fatalf("event %d (t=%.1f): CCS drifted: %v vs oracle %v", i, tm, es, ws)
		}
		if !almost(as, ws) {
			t.Fatalf("event %d (t=%.1f): aG2 drifted: %v vs oracle %v", i, tm, as, ws)
		}
		if wr.Found && gr.Score < (1-o.Alpha)/4*ws-1e-9 {
			t.Fatalf("event %d: GAPS below guarantee after long run: %v vs %v", i, gr.Score, ws)
		}
	}
}

func oracleAt(t *testing.T, oracle *surge.Detector, obj surge.Object) surge.Result {
	t.Helper()
	res, err := oracle.Push(obj)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestSoakTopK does the same for the top-k machinery, whose level
// bookkeeping is the most intricate state in the repository.
func TestSoakTopK(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	o := surge.Options{Width: 1, Height: 1, Window: 15, Alpha: 0.5}
	kccs, _ := surge.NewTopK(surge.CellCSPOT, o, 4)
	naive, _ := surge.NewTopK(surge.Oracle, o, 4)
	rng := rand.New(rand.NewPCG(77, 88))
	tm := 0.0
	for i := 0; i < 1200; i++ {
		tm += rng.ExpFloat64() * 0.3
		obj := surge.Object{
			X:      rng.Float64() * 4, // small area: heavy overlap between ranks
			Y:      rng.Float64() * 4,
			Weight: 1 + rng.Float64()*99,
			Time:   tm,
		}
		a, err := kccs.Push(obj)
		if err != nil {
			t.Fatal(err)
		}
		b := naiveAt(t, naive, obj)
		if i%31 != 0 {
			continue
		}
		for r := 0; r < 4; r++ {
			as, bs := a[r].Score, b[r].Score
			if !almost(as, bs) {
				t.Fatalf("event %d rank %d: kCCS %v vs naive %v", i, r, as, bs)
			}
		}
	}
}

func naiveAt(t *testing.T, naive *surge.TopKDetector, obj surge.Object) []surge.Result {
	t.Helper()
	res, err := naive.Push(obj)
	if err != nil {
		t.Fatal(err)
	}
	return res
}
