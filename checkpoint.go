package surge

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"

	"surge/internal/core"
)

// Checkpointing: a Detector's logical state is fully determined by the
// query options, the stream clock and the set of live objects with their
// original creation times. A checkpoint therefore serialises exactly that,
// and restore rebuilds the engine by replaying the live objects through a
// fresh detector — every engine reaches the identical logical state
// (identical scores; internal caches rebuild lazily).
//
// This keeps the format engine-independent: a checkpoint written by a
// CellCSPOT detector can be restored into a GridApprox detector, and it
// survives any change to engine internals.

// checkpointVersion guards the wire format.
const checkpointVersion = 1

type checkpointEnvelope struct {
	Version   int
	Algorithm int32
	Options   checkpointOptions
	Clock     float64
	Objects   []checkpointObject
}

type checkpointOptions struct {
	Width, Height      float64
	Window, PastWindow float64
	Alpha              float64
	HasArea            bool
	Area               Region
	AG2Gamma           float64
	CountWindows       bool
}

type checkpointObject struct {
	X, Y, Weight, Time float64
}

// trackLive maintains the live-object bookkeeping needed to checkpoint.
// Tracking is always on: the overhead is one map entry per live object.
//
// (The bookkeeping lives here rather than in the window engine so the
// engine stays a pure event generator.)
func (d *Detector) trackLive(ev core.Event) {
	switch ev.Kind {
	case core.New:
		d.liveObjs[ev.Obj.ID] = ev.Obj
	case core.Expired:
		delete(d.liveObjs, ev.Obj.ID)
	}
}

// Checkpoint serialises the detector's logical state: options, stream clock
// and live objects. The result can be persisted and later passed to
// Restore.
func (d *Detector) Checkpoint() ([]byte, error) {
	env := checkpointEnvelope{
		Version:   checkpointVersion,
		Algorithm: int32(d.alg),
		Clock:     d.win.Now(),
		Options: checkpointOptions{
			Width:        d.cfg.Width,
			Height:       d.cfg.Height,
			Window:       d.cfg.WC,
			PastWindow:   d.cfg.WP,
			Alpha:        d.cfg.Alpha,
			AG2Gamma:     d.ag2Gamma,
			CountWindows: d.counted,
		},
	}
	if d.cfg.Area != nil {
		env.Options.HasArea = true
		env.Options.Area = Region{
			MinX: d.cfg.Area.MinX, MinY: d.cfg.Area.MinY,
			MaxX: d.cfg.Area.MaxX, MaxY: d.cfg.Area.MaxY,
		}
	}
	for _, o := range d.liveObjs {
		env.Objects = append(env.Objects, checkpointObject{X: o.X, Y: o.Y, Weight: o.Weight, Time: o.T})
	}
	// Deterministic output: sort by time, then position.
	sort.Slice(env.Objects, func(i, j int) bool {
		a, b := env.Objects[i], env.Objects[j]
		if a.Time != b.Time {
			return a.Time < b.Time
		}
		if a.X != b.X {
			return a.X < b.X
		}
		return a.Y < b.Y
	})
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(env); err != nil {
		return nil, fmt.Errorf("surge: encoding checkpoint: %w", err)
	}
	return buf.Bytes(), nil
}

// Restore rebuilds a detector from a checkpoint, running the given
// algorithm (which need not be the one that wrote the checkpoint). The
// restored detector reports the same scores and continues the stream from
// the checkpointed clock.
func Restore(alg Algorithm, data []byte) (*Detector, error) {
	var env checkpointEnvelope
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&env); err != nil {
		return nil, fmt.Errorf("surge: decoding checkpoint: %w", err)
	}
	if env.Version != checkpointVersion {
		return nil, fmt.Errorf("surge: unsupported checkpoint version %d", env.Version)
	}
	opt := Options{
		Width:        env.Options.Width,
		Height:       env.Options.Height,
		Window:       env.Options.Window,
		PastWindow:   env.Options.PastWindow,
		Alpha:        env.Options.Alpha,
		AG2Gamma:     env.Options.AG2Gamma,
		CountWindows: env.Options.CountWindows,
	}
	if env.Options.HasArea {
		a := env.Options.Area
		opt.Area = &a
	}
	d, err := New(alg, opt)
	if err != nil {
		return nil, err
	}
	// Replay the live objects in time order; Grown transitions for objects
	// already past fire naturally as the clock advances through the replay.
	for _, o := range env.Objects {
		if _, err := d.Push(Object{X: o.X, Y: o.Y, Weight: o.Weight, Time: o.Time}); err != nil {
			return nil, fmt.Errorf("surge: replaying checkpoint: %w", err)
		}
	}
	if _, err := d.AdvanceTo(env.Clock); err != nil {
		return nil, fmt.Errorf("surge: advancing restored clock: %w", err)
	}
	return d, nil
}
