package surge

import (
	"bytes"
	"cmp"
	"encoding/gob"
	"fmt"
	"slices"

	"surge/internal/core"
)

// Checkpointing: a Detector's logical state is fully determined by the
// query options, the stream clock and the set of live objects with their
// original creation times. A checkpoint therefore serialises exactly that,
// and restore rebuilds the engine by replaying the live objects through a
// fresh detector — every engine reaches the identical logical state
// (identical scores; internal caches rebuild lazily).
//
// This keeps the format engine-independent: a checkpoint written by a
// CellCSPOT detector can be restored into a GridApprox detector, and it
// survives any change to engine internals.

// checkpointVersion guards the wire format.
const checkpointVersion = 1

type checkpointEnvelope struct {
	Version   int
	Algorithm int32
	Options   checkpointOptions
	Clock     float64
	Objects   []checkpointObject
}

type checkpointOptions struct {
	Width, Height      float64
	Window, PastWindow float64
	Alpha              float64
	HasArea            bool
	Area               Region
	AG2Gamma           float64
	CountWindows       bool
	// Shards and ShardBlockCols record the writing detector's pipeline
	// shape so Restore rebuilds it. gob decodes by field name, so
	// checkpoints written before these fields existed restore with the
	// zero values — the single-engine path, their original behaviour.
	Shards         int
	ShardBlockCols int
}

type checkpointObject struct {
	X, Y, Weight, Time float64
	// Seq is the object's arrival rank (the window engine's monotone ID).
	// Replay sorts same-time objects by Seq, so within-tie arrival order —
	// and with it the last-bit rounding of the engines' score folds —
	// survives a restore. Timestamp ties are routine under the serving
	// layer's Clamp policy, which rewrites every late arrival to the
	// current stream time. Checkpoints written before this field existed
	// decode with Seq zero (gob matches by name) and fall back to the old
	// (x, y) tie order.
	Seq uint64
}

// liveObj is one live-window object tracked for checkpointing and for
// seeding attached top-k detectors: the original object plus whether it has
// crossed from Wc into Wp.
type liveObj struct {
	obj  core.Object
	past bool
}

// trackLiveObj maintains the live-object bookkeeping needed to checkpoint
// (and to replay the windows into an attached top-k engine). Tracking is
// always on: the overhead is one map entry per live object.
//
// (The bookkeeping lives here rather than in the window engine so the
// engine stays a pure event generator.)
func trackLiveObj(live map[uint64]liveObj, ev core.Event) {
	switch ev.Kind {
	case core.New:
		live[ev.Obj.ID] = liveObj{obj: ev.Obj}
	case core.Grown:
		if lo, ok := live[ev.Obj.ID]; ok && !lo.past {
			lo.past = true
			live[ev.Obj.ID] = lo
		}
	case core.Expired:
		delete(live, ev.Obj.ID)
	}
}

func (d *Detector) trackLive(ev core.Event) { trackLiveObj(d.liveObjs, ev) }

// buildCheckpointObjects collects the live objects into scratch and sorts
// them into the canonical (time, arrival) replay order. The scratch is reused
// across calls so periodic checkpointing does not reallocate the object
// list.
func buildCheckpointObjects(scratch []checkpointObject, live map[uint64]liveObj) []checkpointObject {
	scratch = scratch[:0]
	for _, lo := range live {
		o := lo.obj
		scratch = append(scratch, checkpointObject{X: o.X, Y: o.Y, Weight: o.Weight, Time: o.T, Seq: o.ID})
	}
	slices.SortFunc(scratch, func(a, b checkpointObject) int {
		switch {
		case a.Time != b.Time:
			return cmp.Compare(a.Time, b.Time)
		case a.Seq != b.Seq:
			return cmp.Compare(a.Seq, b.Seq)
		case a.X != b.X:
			return cmp.Compare(a.X, b.X)
		default:
			return cmp.Compare(a.Y, b.Y)
		}
	})
	return scratch
}

// sliceWriter appends gob output to a caller-provided byte slice, so a
// serving layer can checkpoint into a pooled buffer instead of allocating a
// fresh snapshot per request.
type sliceWriter struct{ buf []byte }

func (w *sliceWriter) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	return len(p), nil
}

func encodeCheckpoint(dst []byte, env *checkpointEnvelope) ([]byte, error) {
	w := sliceWriter{buf: dst}
	if err := gob.NewEncoder(&w).Encode(env); err != nil {
		return nil, fmt.Errorf("surge: encoding checkpoint: %w", err)
	}
	return w.buf, nil
}

// appendEnvelope assembles and encodes the one checkpoint envelope shape
// both detector kinds write: the caller supplies the options (already
// carrying any pipeline-shape fields) and the sorted object list, and the
// geometry common to every detector is filled in from cfg here so the two
// writers cannot drift apart.
func appendEnvelope(dst []byte, alg Algorithm, clock float64, cfg core.Config, counted bool, opt checkpointOptions, objs []checkpointObject) ([]byte, error) {
	opt.Width = cfg.Width
	opt.Height = cfg.Height
	opt.Window = cfg.WC
	opt.PastWindow = cfg.WP
	opt.Alpha = cfg.Alpha
	opt.CountWindows = counted
	if cfg.Area != nil {
		opt.HasArea = true
		opt.Area = Region{
			MinX: cfg.Area.MinX, MinY: cfg.Area.MinY,
			MaxX: cfg.Area.MaxX, MaxY: cfg.Area.MaxY,
		}
	}
	env := checkpointEnvelope{
		Version:   checkpointVersion,
		Algorithm: int32(alg),
		Clock:     clock,
		Options:   opt,
		Objects:   objs,
	}
	return encodeCheckpoint(dst, &env)
}

// Checkpoint serialises the detector's logical state: options, stream clock
// and live objects. The result can be persisted and later passed to
// Restore.
func (d *Detector) Checkpoint() ([]byte, error) { return d.AppendCheckpoint(nil) }

// AppendCheckpoint appends the checkpoint to dst (which may be nil) and
// returns the extended slice. Passing a recycled buffer keeps periodic
// checkpointing — and the serving layer's replay-mode top-k queries — from
// allocating a fresh snapshot every time; the detector's internal object
// scratch is reused across calls too.
func (d *Detector) AppendCheckpoint(dst []byte) ([]byte, error) {
	d.ckptObjs = buildCheckpointObjects(d.ckptObjs, d.liveObjs)
	return appendEnvelope(dst, d.alg, d.win.Now(), d.cfg, d.counted, checkpointOptions{
		AG2Gamma:       d.ag2Gamma,
		Shards:         d.shards,
		ShardBlockCols: d.blkCols,
	}, d.ckptObjs)
}

// Checkpoint serialises a standalone top-k detector's logical state in the
// same engine-independent format as Detector.Checkpoint, so RestoreTopK
// (or Restore) resumes it. An attached top-k detector delegates to its
// parent — their logical state is the same live window content.
func (d *TopKDetector) Checkpoint() ([]byte, error) { return d.AppendCheckpoint(nil) }

// AppendCheckpoint appends the checkpoint to dst; see
// Detector.AppendCheckpoint.
func (d *TopKDetector) AppendCheckpoint(dst []byte) ([]byte, error) {
	if d.parent != nil {
		return d.parent.AppendCheckpoint(dst)
	}
	d.ckptObjs = buildCheckpointObjects(d.ckptObjs, d.liveObjs)
	// Top-k detection has no aG2 variant, so AG2Gamma stays zero.
	return appendEnvelope(dst, d.alg, d.win.Now(), d.cfg, d.counted, checkpointOptions{
		Shards:         d.shards,
		ShardBlockCols: d.blkCols,
	}, d.ckptObjs)
}

// KeepShards passes the checkpoint's recorded shard configuration through
// to RestoreSharded unchanged.
const KeepShards = -1

// Restore rebuilds a detector from a checkpoint, running the given
// algorithm (which need not be the one that wrote the checkpoint). The
// restored detector reports the same scores and continues the stream from
// the checkpointed clock. The pipeline shape recorded in the checkpoint is
// honoured: a checkpoint written by a sharded detector restores into a
// sharded pipeline with the same shard count (use RestoreSharded to
// override it).
//
// Scores are bit-identical to the writing detector: objects replay in
// their original arrival order (the checkpoint records each object's
// arrival rank, so even objects sharing a timestamp — routine under the
// serving layer's Clamp policy — keep their within-tie order and with it
// the last-bit rounding of the engines' score folds). Checkpoints written
// before the arrival rank existed replay ties in (x, y) order, which can
// differ from the original stream in the last bit.
func Restore(alg Algorithm, data []byte) (*Detector, error) {
	return RestoreSharded(alg, data, KeepShards, KeepShards)
}

// RestoreSharded is Restore with an explicit pipeline shape: shards and
// blockCols replace the checkpointed Options.Shards and
// Options.ShardBlockCols (KeepShards keeps the recorded value; 0 or 1
// shards selects the single-engine path). Because a checkpoint is
// engine-independent — the logical state is the live object set — a
// checkpoint written at any shard count restores into any other with
// identical scores.
func RestoreSharded(alg Algorithm, data []byte, shards, blockCols int) (*Detector, error) {
	return RestoreShardedTuned(alg, data, shards, blockCols, 0)
}

// RestoreShardedTuned is RestoreSharded with the shard router's flush size
// (Options.ShardFlushEvents) re-applied. Flush sizing is runtime tuning,
// not logical state, so checkpoints never record it — a caller that pinned
// a fixed flush must pass it again on restore (0 selects the
// backlog-adaptive default).
func RestoreShardedTuned(alg Algorithm, data []byte, shards, blockCols, flushEvents int) (*Detector, error) {
	env, opt, err := decodeCheckpoint(data)
	if err != nil {
		return nil, err
	}
	if shards != KeepShards {
		opt.Shards = shards
	}
	if blockCols != KeepShards {
		opt.ShardBlockCols = blockCols
	}
	opt.ShardFlushEvents = flushEvents
	d, err := New(alg, opt)
	if err != nil {
		return nil, err
	}
	if err := replayCheckpoint(env, d.PushBatch, d.AdvanceTo); err != nil {
		d.Close()
		return nil, err
	}
	return d, nil
}

// RestoreTopK rebuilds a top-k detector from a checkpoint written by a
// Detector or a standalone TopKDetector: the live objects are replayed
// through a fresh TopKDetector, which therefore answers BestK over exactly
// the windows the checkpoint captured. This is how a serving layer derives
// on-demand top-k answers from a continuously maintained detector.
// Supported algorithms are those of NewTopK. The pipeline shape recorded in
// the checkpoint is honoured: a checkpoint written by a sharded detector
// restores into a sharded top-k pipeline with the same shard count (use
// RestoreTopKSharded to override it; the restored detector must be Closed to
// stop the shard goroutines).
func RestoreTopK(alg Algorithm, data []byte, k int) (*TopKDetector, error) {
	return RestoreTopKSharded(alg, data, k, KeepShards, KeepShards)
}

// RestoreTopKSharded is RestoreTopK with an explicit pipeline shape: shards
// and blockCols replace the checkpointed Options.Shards and
// Options.ShardBlockCols (KeepShards keeps the recorded value; 0 or 1 shards
// selects the single-engine path). Because a checkpoint is
// engine-independent — the logical state is the live object set — a
// checkpoint written at any shard count restores into any other with the
// same answer (bitwise for kCCS).
func RestoreTopKSharded(alg Algorithm, data []byte, k, shards, blockCols int) (*TopKDetector, error) {
	env, opt, err := decodeCheckpoint(data)
	if err != nil {
		return nil, err
	}
	if shards != KeepShards {
		opt.Shards = shards
	}
	if blockCols != KeepShards {
		opt.ShardBlockCols = blockCols
	}
	d, err := NewTopK(alg, opt, k)
	if err != nil {
		return nil, err
	}
	pushAll := func(objs []Object) (Result, error) {
		_, err := d.PushBatch(objs)
		return Result{}, err
	}
	advance := func(t float64) (Result, error) {
		_, err := d.AdvanceTo(t)
		return Result{}, err
	}
	if err := replayCheckpoint(env, pushAll, advance); err != nil {
		d.Close()
		return nil, err
	}
	return d, nil
}

// decodeCheckpoint validates the envelope and reconstructs the writing
// detector's Options.
func decodeCheckpoint(data []byte) (checkpointEnvelope, Options, error) {
	var env checkpointEnvelope
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&env); err != nil {
		return env, Options{}, fmt.Errorf("surge: decoding checkpoint: %w", err)
	}
	if env.Version != checkpointVersion {
		return env, Options{}, fmt.Errorf("surge: unsupported checkpoint version %d", env.Version)
	}
	opt := Options{
		Width:          env.Options.Width,
		Height:         env.Options.Height,
		Window:         env.Options.Window,
		PastWindow:     env.Options.PastWindow,
		Alpha:          env.Options.Alpha,
		AG2Gamma:       env.Options.AG2Gamma,
		CountWindows:   env.Options.CountWindows,
		Shards:         env.Options.Shards,
		ShardBlockCols: env.Options.ShardBlockCols,
	}
	if env.Options.HasArea {
		a := env.Options.Area
		opt.Area = &a
	}
	return env, opt, nil
}

// replayCheckpoint feeds the checkpointed live objects back through a fresh
// detector in time order and advances the clock to the checkpointed stream
// time. Grown transitions for objects already past Wc fire naturally as the
// clock moves through the replay; the batch path keeps the replay a single
// synchronisation on a sharded pipeline.
func replayCheckpoint(env checkpointEnvelope, pushBatch func([]Object) (Result, error), advanceTo func(float64) (Result, error)) error {
	objs := make([]Object, len(env.Objects))
	for i, o := range env.Objects {
		objs[i] = Object{X: o.X, Y: o.Y, Weight: o.Weight, Time: o.Time}
	}
	if _, err := pushBatch(objs); err != nil {
		return fmt.Errorf("surge: replaying checkpoint: %w", err)
	}
	if _, err := advanceTo(env.Clock); err != nil {
		return fmt.Errorf("surge: advancing restored clock: %w", err)
	}
	return nil
}
