module surge

go 1.24
