package roadnet

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestGridConstruction(t *testing.T) {
	g := Grid(4, 3, 2.0)
	if g.VertexCount() != 12 {
		t.Fatalf("vertices = %d, want 12", g.VertexCount())
	}
	// Edges: horizontal 3*3=9, vertical 4*2=8.
	if g.EdgeCount() != 17 {
		t.Fatalf("edges = %d, want 17", g.EdgeCount())
	}
	x, y := g.Position(5) // (i=1, j=1)
	if x != 2 || y != 2 {
		t.Fatalf("vertex 5 at (%v,%v), want (2,2)", x, y)
	}
	b := g.Bounds()
	if b.MinX != 0 || b.MinY != 0 || b.MaxX != 6 || b.MaxY != 4 {
		t.Fatalf("bounds = %+v", b)
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g := NewGraph()
	a := g.AddVertex(0, 0)
	b := g.AddVertex(3, 4)
	if err := g.AddEdge(a, a, 1); err == nil {
		t.Fatal("self-loop accepted")
	}
	if err := g.AddEdge(a, 99, 1); err == nil {
		t.Fatal("unknown vertex accepted")
	}
	if err := g.AddEdge(a, b, 0); err != nil { // 0 => euclidean = 5
		t.Fatal(err)
	}
	if got := g.Neighbors(a)[0].Length; got != 5 {
		t.Fatalf("euclidean default length = %v, want 5", got)
	}
	// Coincident vertices with default length would be a zero-length edge.
	c := g.AddVertex(0, 0)
	if err := g.AddEdge(a, c, 0); err == nil {
		t.Fatal("zero-length edge accepted")
	}
	if err := g.AddEdge(a, c, math.NaN()); err == nil {
		t.Fatal("NaN length accepted")
	}
}

// floydWarshall is the brute-force all-pairs reference.
func floydWarshall(g *Graph) [][]float64 {
	n := g.VertexCount()
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			if i != j {
				d[i][j] = math.Inf(1)
			}
		}
	}
	for v := 0; v < n; v++ {
		for _, e := range g.Neighbors(VertexID(v)) {
			if e.Length < d[v][e.To] {
				d[v][e.To] = e.Length
				d[e.To][v] = e.Length
			}
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if s := d[i][k] + d[k][j]; s < d[i][j] {
					d[i][j] = s
				}
			}
		}
	}
	return d
}

func randomGraph(rng *rand.Rand, n int, extraEdges int) *Graph {
	g := NewGraph()
	for i := 0; i < n; i++ {
		g.AddVertex(rng.Float64()*10, rng.Float64()*10)
	}
	// Spanning chain keeps it connected, then random chords.
	for i := 1; i < n; i++ {
		_ = g.AddEdge(VertexID(i-1), VertexID(i), 0.1+rng.Float64())
	}
	for i := 0; i < extraEdges; i++ {
		a := VertexID(rng.IntN(n))
		b := VertexID(rng.IntN(n))
		if a != b {
			_ = g.AddEdge(a, b, 0.1+rng.Float64()*2)
		}
	}
	return g
}

// TestDijkstraMatchesFloydWarshall validates the bounded Dijkstra on random
// graphs, including parallel edges.
func TestDijkstraMatchesFloydWarshall(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.IntN(25)
		g := randomGraph(rng, n, rng.IntN(2*n))
		want := floydWarshall(g)
		for src := 0; src < n; src++ {
			got := g.Distances(VertexID(src))
			for v := 0; v < n; v++ {
				if math.Abs(got[v]-want[src][v]) > 1e-9 && !(math.IsInf(got[v], 1) && math.IsInf(want[src][v], 1)) {
					t.Fatalf("trial %d: dist(%d,%d) = %v, want %v", trial, src, v, got[v], want[src][v])
				}
			}
		}
	}
}

// TestBallBounded: Ball visits exactly the vertices within r, in
// non-decreasing distance order.
func TestBallBounded(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.IntN(20)
		g := randomGraph(rng, n, rng.IntN(n))
		all := floydWarshall(g)
		src := VertexID(rng.IntN(n))
		r := rng.Float64() * 3
		visited := map[VertexID]float64{}
		last := -1.0
		g.Ball(src, r, func(v VertexID, d float64) {
			if d < last {
				t.Fatalf("ball visits out of order: %v after %v", d, last)
			}
			last = d
			if _, dup := visited[v]; dup {
				t.Fatalf("vertex %d visited twice", v)
			}
			visited[v] = d
		})
		for v := 0; v < n; v++ {
			d := all[src][v]
			got, ok := visited[VertexID(v)]
			if (d <= r) != ok {
				t.Fatalf("trial %d: vertex %d dist %v r %v: visited=%v", trial, v, d, r, ok)
			}
			if ok && math.Abs(got-d) > 1e-9 {
				t.Fatalf("trial %d: ball distance %v, want %v", trial, got, d)
			}
		}
	}
}

// TestBallScratchReuse: repeated Ball calls on the same graph must be
// independent.
func TestBallScratchReuse(t *testing.T) {
	g := Grid(6, 6, 1)
	count := func(src VertexID, r float64) int {
		n := 0
		g.Ball(src, r, func(VertexID, float64) { n++ })
		return n
	}
	a := count(0, 2)
	for i := 0; i < 10; i++ {
		count(VertexID(i%36), float64(i%4))
	}
	if b := count(0, 2); a != b {
		t.Fatalf("ball size changed on reuse: %d vs %d", a, b)
	}
	// Grid ball of radius 2 from a corner: vertices with manhattan dist <= 2
	// inside the grid = 1 + 2 + 3 = 6.
	if a != 6 {
		t.Fatalf("corner ball size = %d, want 6", a)
	}
}

// TestNearest: brute-force comparison on random point sets and queries.
func TestNearest(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 10))
	for trial := 0; trial < 30; trial++ {
		g := NewGraph()
		n := 1 + rng.IntN(60)
		for i := 0; i < n; i++ {
			g.AddVertex(rng.Float64()*20-10, rng.Float64()*20-10)
		}
		for q := 0; q < 50; q++ {
			x := rng.Float64()*30 - 15 // queries also outside the hull
			y := rng.Float64()*30 - 15
			got, ok := g.Nearest(x, y)
			if !ok {
				t.Fatal("nearest not found on non-empty graph")
			}
			gx, gy := g.Position(got)
			gd := math.Hypot(gx-x, gy-y)
			for v := 0; v < n; v++ {
				vx, vy := g.Position(VertexID(v))
				if d := math.Hypot(vx-x, vy-y); d < gd-1e-12 {
					t.Fatalf("trial %d: nearest(%v,%v) = %d at %v, but %d at %v",
						trial, x, y, got, gd, v, d)
				}
			}
		}
	}
}

func TestNearestEmptyGraph(t *testing.T) {
	g := NewGraph()
	if _, ok := g.Nearest(0, 0); ok {
		t.Fatal("empty graph must report not found")
	}
}

func TestNearestAfterVertexAddition(t *testing.T) {
	g := NewGraph()
	g.AddVertex(0, 0)
	if v, _ := g.Nearest(5, 5); v != 0 {
		t.Fatal("single vertex")
	}
	b := g.AddVertex(5, 5) // index must rebuild
	if v, _ := g.Nearest(5, 5); v != b {
		t.Fatal("index not invalidated by AddVertex")
	}
}
