package roadnet

import (
	"errors"
	"math"

	"surge/internal/core"
	"surge/internal/iheap"
	"surge/internal/window"
)

// Object is one stream element: a weighted point created at Time, snapped
// onto the network by the detector.
type Object struct {
	X, Y   float64
	Weight float64
	Time   float64
}

// Options configures a road-network SURGE detector.
type Options struct {
	// Radius is the network-ball radius r: a candidate region is the set of
	// vertices within network distance r of a centre vertex.
	Radius float64
	// Window is |Wc|; PastWindow is |Wp| (0 = same as Window).
	Window     float64
	PastWindow float64
	// Alpha balances burstiness against significance, in [0, 1).
	Alpha float64
	// SnapLimit optionally rejects objects farther (Euclidean) than this
	// from their nearest vertex; 0 disables the check.
	SnapLimit float64
}

// Result is the current bursty network ball.
type Result struct {
	// Center is the ball's centre vertex; X, Y its embedded position.
	Center VertexID
	X, Y   float64
	Score  float64
	Found  bool
}

// Detector continuously maintains the network ball with the maximum burst
// score over a stream of objects. It is not safe for concurrent use.
type Detector struct {
	g   *Graph
	opt Options
	win *window.Engine

	// per-vertex accumulated window weights of snapped live objects
	fcv, fpv []float64
	// per-ball-centre aggregated scores and live counters
	ballC, ballP []float64
	ballN        []int32
	heap         *iheap.Heap[VertexID]
	vertexOf     map[uint64]VertexID
	pendingSnap  VertexID // snap target for the New event of the Push in flight

	events uint64

	// step captured once: binding the method value per Push would put a
	// closure allocation on the per-object hot path.
	stepFn func(core.Event)
}

// NewDetector returns a detector over the given graph. The graph must not
// be mutated while the detector is in use.
func NewDetector(g *Graph, opt Options) (*Detector, error) {
	if g == nil || g.VertexCount() == 0 {
		return nil, errors.New("roadnet: graph must have at least one vertex")
	}
	if !(opt.Radius > 0) || math.IsInf(opt.Radius, 0) {
		return nil, errors.New("roadnet: radius must be positive and finite")
	}
	if opt.PastWindow == 0 {
		opt.PastWindow = opt.Window
	}
	if !(opt.Window > 0) || !(opt.PastWindow > 0) {
		return nil, errors.New("roadnet: window lengths must be positive")
	}
	if !(opt.Alpha >= 0 && opt.Alpha < 1) {
		return nil, errors.New("roadnet: alpha must be in [0, 1)")
	}
	win, err := window.New(opt.Window, opt.PastWindow)
	if err != nil {
		return nil, err
	}
	n := g.VertexCount()
	d := &Detector{
		g:        g,
		opt:      opt,
		win:      win,
		fcv:      make([]float64, n),
		fpv:      make([]float64, n),
		ballC:    make([]float64, n),
		ballP:    make([]float64, n),
		ballN:    make([]int32, n),
		heap:     iheap.New[VertexID](),
		vertexOf: make(map[uint64]VertexID),
	}
	d.stepFn = d.step
	return d, nil
}

// Push snaps the object to its nearest vertex, advances the stream clock and
// returns the refreshed bursty ball. Objects must arrive in non-decreasing
// time order.
func (d *Detector) Push(o Object) (Result, error) {
	v, ok := d.g.Nearest(o.X, o.Y)
	if !ok {
		return Result{}, errors.New("roadnet: empty graph")
	}
	if d.opt.SnapLimit > 0 {
		vx, vy := d.g.Position(v)
		if math.Hypot(vx-o.X, vy-o.Y) > d.opt.SnapLimit {
			// Too far from the network: skip, but still advance the clock.
			if err := d.win.Advance(o.Time, d.stepFn); err != nil {
				return Result{}, err
			}
			return d.Best(), nil
		}
	}
	d.pendingSnap = v
	if _, err := d.win.Push(core.Object{X: o.X, Y: o.Y, Weight: o.Weight, T: o.Time}, d.stepFn); err != nil {
		return Result{}, err
	}
	return d.Best(), nil
}

// step applies one window event to the per-vertex and per-ball state.
func (d *Detector) step(ev core.Event) {
	d.events++
	var v VertexID
	switch ev.Kind {
	case core.New:
		v = d.pendingSnap
		d.vertexOf[ev.Obj.ID] = v
	default:
		mv, ok := d.vertexOf[ev.Obj.ID]
		if !ok {
			return // object was skipped at snap time
		}
		v = mv
	}
	dc := ev.Obj.Weight / d.opt.Window
	dp := ev.Obj.Weight / d.opt.PastWindow
	var deltaC, deltaP float64
	var deltaN int32
	switch ev.Kind {
	case core.New:
		d.fcv[v] += dc
		deltaC, deltaN = dc, 1
	case core.Grown:
		d.fcv[v] -= dc
		d.fpv[v] += dp
		deltaC, deltaP = -dc, dp
	case core.Expired:
		d.fpv[v] -= dp
		deltaP, deltaN = -dp, -1
		delete(d.vertexOf, ev.Obj.ID)
	}
	// Every ball whose centre is within Radius of v changes.
	d.g.Ball(v, d.opt.Radius, func(c VertexID, _ float64) {
		d.ballC[c] += deltaC
		d.ballP[c] += deltaP
		d.ballN[c] += deltaN
		if d.ballN[c] == 0 {
			// No live objects inside: reset accumulated drift and drop the
			// centre from the heap.
			d.ballC[c] = 0
			d.ballP[c] = 0
			d.heap.Remove(c)
			return
		}
		d.heap.Set(c, d.score(c))
	})
}

func (d *Detector) score(c VertexID) float64 {
	diff := d.ballC[c] - d.ballP[c]
	if diff < 0 {
		diff = 0
	}
	return d.opt.Alpha*diff + (1-d.opt.Alpha)*d.ballC[c]
}

// AdvanceTo moves the stream clock without a new arrival.
func (d *Detector) AdvanceTo(t float64) (Result, error) {
	if err := d.win.Advance(t, d.stepFn); err != nil {
		return Result{}, err
	}
	return d.Best(), nil
}

// Best returns the centre vertex whose network ball currently has the
// maximum burst score.
func (d *Detector) Best() Result {
	v, sc, ok := d.heap.Max()
	if !ok || sc <= 0 {
		return Result{}
	}
	x, y := d.g.Position(v)
	return Result{Center: v, X: x, Y: y, Score: sc, Found: true}
}

// BallScore returns the current burst score of the ball centred at v
// (0 for centres with no live objects in reach).
func (d *Detector) BallScore(v VertexID) float64 {
	if int(v) >= len(d.ballC) || v < 0 || d.ballN[v] == 0 {
		return 0
	}
	return d.score(v)
}

// Live returns the number of objects currently inside the windows.
func (d *Detector) Live() int { return d.win.Live() }

// Events returns the number of window events processed.
func (d *Detector) Events() uint64 { return d.events }

// Now returns the current stream time.
func (d *Detector) Now() float64 { return d.win.Now() }
