// Package roadnet extends SURGE to road networks — the future-work
// direction stated in the paper's conclusion ("we intend to explore the
// SURGE problem in the context of road network").
//
// In the Euclidean problem a candidate region is an axis-aligned rectangle;
// on a road network the natural analogue is a *network ball*: the set of
// vertices within network distance r of a centre vertex. Objects (ride
// requests, incidents, check-ins) snap to their nearest vertex, and the
// burst score of a ball is the usual
//
//	S(B) = alpha*max(fc(B) - fp(B), 0) + (1-alpha)*fc(B)
//
// over the two sliding windows, with fc/fp the window-normalised weight of
// the objects snapped inside the ball. The Detector continuously reports
// the centre vertex whose ball has the maximum burst score.
//
// The exact maintenance mirrors GAP-SURGE's granularity argument: every
// event changes the score of exactly the balls whose centre lies within r
// of the event's vertex, so a bounded Dijkstra from that vertex updates all
// affected centres and an indexed heap keeps the argmax available in O(1).
package roadnet

import (
	"errors"
	"fmt"
	"math"

	"surge/internal/geom"
	"surge/internal/iheap"
)

// VertexID identifies a vertex of a Graph.
type VertexID int32

// HalfEdge is one directed half of an undirected road segment.
type HalfEdge struct {
	To     VertexID
	Length float64
}

// Graph is an undirected road network with embedded vertex coordinates.
// Vertices are added once; edges carry positive lengths (travel distance).
// The zero value is an empty graph ready for use.
type Graph struct {
	xs, ys []float64
	adj    [][]HalfEdge

	// nearest-vertex bucket index, built lazily
	index     map[[2]int][]VertexID
	indexCell float64

	// bounded-Dijkstra scratch
	dist  []float64
	epoch []int64
	round int64
	pq    *iheap.Heap[VertexID]
}

// NewGraph returns an empty graph.
func NewGraph() *Graph { return &Graph{} }

// AddVertex adds a vertex at (x, y) and returns its ID.
func (g *Graph) AddVertex(x, y float64) VertexID {
	g.xs = append(g.xs, x)
	g.ys = append(g.ys, y)
	g.adj = append(g.adj, nil)
	g.index = nil // invalidate
	return VertexID(len(g.xs) - 1)
}

// VertexCount returns the number of vertices.
func (g *Graph) VertexCount() int { return len(g.xs) }

// EdgeCount returns the number of undirected edges.
func (g *Graph) EdgeCount() int {
	n := 0
	for _, a := range g.adj {
		n += len(a)
	}
	return n / 2
}

// Position returns the coordinates of v.
func (g *Graph) Position(v VertexID) (x, y float64) { return g.xs[v], g.ys[v] }

// Neighbors returns v's adjacency list. The returned slice must not be
// modified.
func (g *Graph) Neighbors(v VertexID) []HalfEdge { return g.adj[v] }

// AddEdge connects a and b with an undirected edge. A non-positive length
// means "use the Euclidean distance between the endpoints".
func (g *Graph) AddEdge(a, b VertexID, length float64) error {
	if a == b {
		return errors.New("roadnet: self-loop edges are not allowed")
	}
	if int(a) >= len(g.xs) || int(b) >= len(g.xs) || a < 0 || b < 0 {
		return fmt.Errorf("roadnet: edge (%d,%d) references unknown vertices", a, b)
	}
	if length <= 0 {
		dx, dy := g.xs[a]-g.xs[b], g.ys[a]-g.ys[b]
		length = math.Hypot(dx, dy)
	}
	if length <= 0 || math.IsNaN(length) || math.IsInf(length, 0) {
		return fmt.Errorf("roadnet: edge (%d,%d) has invalid length", a, b)
	}
	g.adj[a] = append(g.adj[a], HalfEdge{To: b, Length: length})
	g.adj[b] = append(g.adj[b], HalfEdge{To: a, Length: length})
	return nil
}

// Grid builds a Manhattan-style nx x ny grid network with the given block
// spacing — a convenient synthetic city for experiments and tests.
func Grid(nx, ny int, spacing float64) *Graph {
	g := NewGraph()
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			g.AddVertex(float64(i)*spacing, float64(j)*spacing)
		}
	}
	id := func(i, j int) VertexID { return VertexID(j*nx + i) }
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			if i+1 < nx {
				_ = g.AddEdge(id(i, j), id(i+1, j), spacing)
			}
			if j+1 < ny {
				_ = g.AddEdge(id(i, j), id(i, j+1), spacing)
			}
		}
	}
	return g
}

// Nearest returns the vertex closest (in Euclidean distance) to (x, y),
// used to snap objects onto the network. It reports false only for an
// empty graph.
func (g *Graph) Nearest(x, y float64) (VertexID, bool) {
	n := len(g.xs)
	if n == 0 {
		return 0, false
	}
	if g.index == nil {
		g.buildIndex()
	}
	cx := int(math.Floor(x / g.indexCell))
	cy := int(math.Floor(y / g.indexCell))
	best := VertexID(-1)
	bestD := math.Inf(1)
	// Search outward ring by ring. A vertex in ring m is at Euclidean
	// distance at least (m-1)*cell from the query point, so once the current
	// best beats that lower bound no farther ring can improve it.
	for ring := 0; ; ring++ {
		if best >= 0 && float64(ring-1)*g.indexCell > bestD {
			break
		}
		for dx := -ring; dx <= ring; dx++ {
			for dy := -ring; dy <= ring; dy++ {
				if maxAbs(dx, dy) != ring {
					continue // only the ring boundary
				}
				for _, v := range g.index[[2]int{cx + dx, cy + dy}] {
					d := math.Hypot(g.xs[v]-x, g.ys[v]-y)
					if d < bestD {
						bestD, best = d, v
					}
				}
			}
		}
	}
	return best, best >= 0
}

func maxAbs(a, b int) int {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	if a > b {
		return a
	}
	return b
}

func (g *Graph) buildIndex() {
	// Cell size: spread the vertices ~1 per cell on average.
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for i := range g.xs {
		minX = math.Min(minX, g.xs[i])
		maxX = math.Max(maxX, g.xs[i])
		minY = math.Min(minY, g.ys[i])
		maxY = math.Max(maxY, g.ys[i])
	}
	area := (maxX - minX) * (maxY - minY)
	cell := 1.0
	if area > 0 && len(g.xs) > 0 {
		cell = math.Sqrt(area / float64(len(g.xs)))
	}
	if cell <= 0 || math.IsNaN(cell) || math.IsInf(cell, 0) {
		cell = 1
	}
	g.indexCell = cell
	g.index = make(map[[2]int][]VertexID, len(g.xs))
	for i := range g.xs {
		key := [2]int{int(math.Floor(g.xs[i] / cell)), int(math.Floor(g.ys[i] / cell))}
		g.index[key] = append(g.index[key], VertexID(i))
	}
}

// Ball runs a bounded Dijkstra from src and calls visit for every vertex
// within network distance r (including src at distance 0), in
// non-decreasing distance order.
func (g *Graph) Ball(src VertexID, r float64, visit func(v VertexID, dist float64)) {
	n := len(g.xs)
	if int(src) >= n || src < 0 {
		return
	}
	if len(g.dist) < n {
		g.dist = make([]float64, n)
		g.epoch = make([]int64, n)
	}
	if g.pq == nil {
		g.pq = iheap.New[VertexID]()
	}
	g.round++
	round := g.round
	// iheap is a max-heap; store negated distances to pop the minimum.
	g.dist[src] = 0
	g.epoch[src] = round
	g.pq.Set(src, 0)
	for {
		v, negd, ok := g.pq.PopMax()
		if !ok {
			break
		}
		d := -negd
		if g.epoch[v] == round && d > g.dist[v] {
			continue // stale entry
		}
		visit(v, d)
		for _, e := range g.adj[v] {
			nd := d + e.Length
			if nd > r {
				continue
			}
			if g.epoch[e.To] != round || nd < g.dist[e.To] {
				g.epoch[e.To] = round
				g.dist[e.To] = nd
				g.pq.Set(e.To, -nd)
			}
		}
	}
}

// Distances computes single-source shortest-path distances from src to all
// vertices (math.Inf for unreachable ones). Exposed for tests and analysis.
func (g *Graph) Distances(src VertexID) []float64 {
	out := make([]float64, len(g.xs))
	for i := range out {
		out[i] = math.Inf(1)
	}
	g.Ball(src, math.Inf(1), func(v VertexID, d float64) { out[v] = d })
	return out
}

// bounds of the embedded vertices (used by tests and the example).
func (g *Graph) Bounds() geom.Rect {
	r := geom.Rect{MinX: math.Inf(1), MinY: math.Inf(1), MaxX: math.Inf(-1), MaxY: math.Inf(-1)}
	for i := range g.xs {
		r.MinX = math.Min(r.MinX, g.xs[i])
		r.MaxX = math.Max(r.MaxX, g.xs[i])
		r.MinY = math.Min(r.MinY, g.ys[i])
		r.MaxY = math.Max(r.MaxY, g.ys[i])
	}
	return r
}
