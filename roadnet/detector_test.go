package roadnet

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestNewDetectorValidation(t *testing.T) {
	g := Grid(3, 3, 1)
	good := Options{Radius: 2, Window: 10, Alpha: 0.5}
	if _, err := NewDetector(g, good); err != nil {
		t.Fatal(err)
	}
	bad := []Options{
		{Radius: 0, Window: 10, Alpha: 0.5},
		{Radius: math.Inf(1), Window: 10, Alpha: 0.5},
		{Radius: 2, Window: 0, Alpha: 0.5},
		{Radius: 2, Window: 10, PastWindow: -1, Alpha: 0.5},
		{Radius: 2, Window: 10, Alpha: 1},
		{Radius: 2, Window: 10, Alpha: -0.2},
	}
	for i, o := range bad {
		if _, err := NewDetector(g, o); err == nil {
			t.Errorf("bad options %d accepted: %+v", i, o)
		}
	}
	if _, err := NewDetector(nil, good); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := NewDetector(NewGraph(), good); err == nil {
		t.Error("empty graph accepted")
	}
}

// oracle recomputes every ball score from scratch from a live-object list.
type roracle struct {
	g      *Graph
	r      float64
	wc, wp float64
	alpha  float64
	live   map[uint64]struct {
		v    VertexID
		w    float64
		past bool
	}
}

func (o *roracle) bestScore() float64 {
	// Accumulate per-vertex f values, then per-centre ball sums.
	n := o.g.VertexCount()
	fc := make([]float64, n)
	fp := make([]float64, n)
	for _, l := range o.live {
		if l.past {
			fp[l.v] += l.w / o.wp
		} else {
			fc[l.v] += l.w / o.wc
		}
	}
	best := 0.0
	for c := 0; c < n; c++ {
		var bc, bp float64
		o.g.Ball(VertexID(c), o.r, func(v VertexID, _ float64) {
			bc += fc[v]
			bp += fp[v]
		})
		diff := bc - bp
		if diff < 0 {
			diff = 0
		}
		if s := o.alpha*diff + (1-o.alpha)*bc; s > best {
			best = s
		}
	}
	return best
}

// TestDetectorMatchesOracle: the incremental ball maintenance equals a
// from-scratch recomputation after every pushed object.
func TestDetectorMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 22))
	for _, tc := range []struct {
		alpha  float64
		wc, wp float64
		radius float64
	}{
		{0.5, 20, 20, 2.5},
		{0.9, 10, 30, 1.0},
		{0, 15, 15, 3.5},
	} {
		g := Grid(7, 7, 1)
		det, err := NewDetector(g, Options{Radius: tc.radius, Window: tc.wc, PastWindow: tc.wp, Alpha: tc.alpha})
		if err != nil {
			t.Fatal(err)
		}
		orc := &roracle{g: g, r: tc.radius, wc: tc.wc, wp: tc.wp, alpha: tc.alpha,
			live: map[uint64]struct {
				v    VertexID
				w    float64
				past bool
			}{}}
		tm := 0.0
		var nextID uint64
		timeOf := map[uint64]float64{}
		for i := 0; i < 400; i++ {
			tm += rng.ExpFloat64() * 0.4
			o := Object{
				X:      rng.Float64() * 6,
				Y:      rng.Float64() * 6,
				Weight: 1 + rng.Float64()*9,
				Time:   tm,
			}
			res, err := det.Push(o)
			if err != nil {
				t.Fatal(err)
			}
			// Mirror the window transitions in the oracle's live set: the
			// object enters current, objects older than |Wc| are past, and
			// anything older than |Wc|+|Wp| expires.
			nextID++
			v, _ := g.Nearest(o.X, o.Y)
			orc.live[nextID] = struct {
				v    VertexID
				w    float64
				past bool
			}{v, o.Weight, false}
			timeOf[nextID] = tm
			for id := range orc.live {
				age := tm - timeOf[id]
				switch {
				case age >= tc.wc+tc.wp:
					delete(orc.live, id)
					delete(timeOf, id)
				case age >= tc.wc:
					l := orc.live[id]
					l.past = true
					orc.live[id] = l
				}
			}
			want := orc.bestScore()
			got := 0.0
			if res.Found {
				got = res.Score
			}
			if math.Abs(got-want) > 1e-9*(1+want) {
				t.Fatalf("alpha=%v push %d: detector %v oracle %v", tc.alpha, i, got, want)
			}
		}
	}
}

// TestBurstOnNetwork: a burst of requests at one intersection must move the
// bursty ball centre onto (or adjacent to) that intersection.
func TestBurstOnNetwork(t *testing.T) {
	g := Grid(10, 10, 1)
	det, err := NewDetector(g, Options{Radius: 1.5, Window: 10, Alpha: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(5, 6))
	tm := 0.0
	target := VertexID(5*10 + 5) // intersection (5,5)
	tx, ty := g.Position(target)
	for i := 0; i < 800; i++ {
		tm += 0.05
		o := Object{X: rng.Float64() * 9, Y: rng.Float64() * 9, Weight: 1, Time: tm}
		if tm > 20 && tm < 30 && i%2 == 0 {
			o.X = tx + rng.Float64()*0.2 - 0.1
			o.Y = ty + rng.Float64()*0.2 - 0.1
			o.Weight = 20
		}
		res, err := det.Push(o)
		if err != nil {
			t.Fatal(err)
		}
		if tm > 22 && tm < 30 {
			if !res.Found {
				t.Fatal("burst not detected")
			}
			// The ball centre must be within the radius of the burst vertex.
			d := math.Hypot(res.X-tx, res.Y-ty)
			if d > 1.5 {
				t.Fatalf("t=%v: ball centre (%v,%v) too far from burst (%v)", tm, res.X, res.Y, d)
			}
		}
	}
	// After everything expires, the detector goes quiet.
	res, err := det.AdvanceTo(1e6)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatalf("expired content still reported: %+v", res)
	}
	if det.Live() != 0 {
		t.Fatalf("live = %d, want 0", det.Live())
	}
}

func TestSnapLimit(t *testing.T) {
	g := Grid(2, 2, 1)
	det, _ := NewDetector(g, Options{Radius: 1, Window: 10, Alpha: 0.5, SnapLimit: 0.5})
	// An object far from every vertex is skipped; the clock still advances.
	res, err := det.Push(Object{X: 100, Y: 100, Weight: 50, Time: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatalf("far object was snapped: %+v", res)
	}
	if det.Now() != 1 {
		t.Fatalf("clock did not advance: %v", det.Now())
	}
	res, err = det.Push(Object{X: 0.1, Y: 0.1, Weight: 1, Time: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.Center != 0 {
		t.Fatalf("near object not detected at vertex 0: %+v", res)
	}
}

func TestBallScoreAccessor(t *testing.T) {
	g := Grid(3, 3, 1)
	det, _ := NewDetector(g, Options{Radius: 1, Window: 10, Alpha: 0})
	if det.BallScore(0) != 0 || det.BallScore(-1) != 0 || det.BallScore(99) != 0 {
		t.Fatal("empty/out-of-range ball scores must be 0")
	}
	if _, err := det.Push(Object{X: 0, Y: 0, Weight: 10, Time: 0}); err != nil {
		t.Fatal(err)
	}
	// Vertex 0's ball (radius 1) includes vertices 0, 1, 3; all three have
	// the object's weight in reach of their centre? No: the object snapped
	// to vertex 0, so every centre within distance 1 of vertex 0 sees it.
	want := 10.0 / 10.0
	for _, v := range []VertexID{0, 1, 3} {
		if s := det.BallScore(v); math.Abs(s-want) > 1e-12 {
			t.Fatalf("ball %d score = %v, want %v", v, s, want)
		}
	}
	if s := det.BallScore(8); s != 0 {
		t.Fatalf("distant ball score = %v, want 0", s)
	}
	if det.Events() == 0 {
		t.Fatal("events not counted")
	}
}

func TestOutOfOrderRejected(t *testing.T) {
	g := Grid(2, 2, 1)
	det, _ := NewDetector(g, Options{Radius: 1, Window: 10, Alpha: 0.5})
	if _, err := det.Push(Object{X: 0, Y: 0, Weight: 1, Time: 5}); err != nil {
		t.Fatal(err)
	}
	if _, err := det.Push(Object{X: 0, Y: 0, Weight: 1, Time: 1}); err == nil {
		t.Fatal("out-of-order push accepted")
	}
}
