package surge

import "testing"

// TestErrRecordsPipelineFailure severs the shard pipeline behind the
// detector's back — the library-level stand-in for a failed worker — and
// pins the degraded-mode contract: Best keeps serving the last good answer,
// Stats stops reporting, the stream mutators return the error, and Err
// surfaces the first pipeline failure instead of the detector swallowing it.
func TestErrRecordsPipelineFailure(t *testing.T) {
	d, err := New(CellCSPOT, Options{Width: 1, Height: 1, Window: 50, Alpha: 0.5, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	objs := make([]Object, 0, 50)
	for i := 0; i < 50; i++ {
		objs = append(objs, Object{X: float64(i % 7), Y: float64(i % 5), Weight: 10, Time: float64(i)})
	}
	if _, err := d.PushBatch(objs); err != nil {
		t.Fatal(err)
	}
	want := d.Best()
	if !want.Found || d.Err() != nil {
		t.Fatalf("healthy detector: best=%+v err=%v", want, d.Err())
	}

	d.pipe.Close() // the pipeline dies out from under the detector

	if got := d.Best(); got != want {
		t.Fatalf("degraded Best must serve the stale answer: %+v != %+v", got, want)
	}
	if d.Err() == nil {
		t.Fatal("pipeline failure must be recorded in Err")
	}
	first := d.Err()
	if st := d.Stats(); st != (Stats{}) {
		t.Fatalf("degraded Stats must be zero, got %+v", st)
	}
	res, perr := d.Push(Object{X: 1, Y: 1, Weight: 1, Time: 51})
	if perr == nil {
		t.Fatal("push into a dead pipeline must fail")
	}
	if res != want {
		t.Fatalf("failed push must retain the answer: %+v != %+v", res, want)
	}
	if d.Err() != first {
		t.Fatalf("Err must keep the first failure: %v != %v", d.Err(), first)
	}
	// Sustained pushing in the degraded state must keep failing cleanly —
	// enough events to cross the router's flush threshold, which used to
	// panic on the closed worker channel instead of erroring.
	for i := 0; i < 500; i++ {
		if _, perr := d.Push(Object{X: float64(i % 3), Y: 1, Weight: 1, Time: 52 + float64(i)}); perr == nil {
			t.Fatal("degraded push must keep failing")
		}
	}
	if got := d.Best(); got != want {
		t.Fatalf("degraded Best drifted: %+v != %+v", got, want)
	}
}
