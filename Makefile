# Development targets; `make check` is the tier-1 gate (format, vet, build,
# test). `make race` additionally runs the suite under the race detector,
# which exercises the sharded pipeline's fan-out and barrier.

GO ?= go

.PHONY: check fmt vet build test race bench bench-smoke

check: fmt vet build test

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) run ./cmd/surgebench -exp all

# Laptop-scale hotpath benchmark; writes BENCH_hotpath.json to bench-out/ so
# CI can archive every PR's perf point (ns/obj, allocs/obj, objs/sec).
bench-smoke:
	mkdir -p bench-out
	$(GO) run ./cmd/surgebench -exp hotpath -max-exact 1000 -max-approx 10000 -json-dir bench-out
