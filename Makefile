# Development targets; `make check` is the tier-1 gate (format, vet, build,
# test). `make race` additionally runs the suite under the race detector,
# which exercises the sharded pipeline's fan-out and barrier.

GO ?= go

.PHONY: check fmt vet build test race bench bench-smoke

check: fmt vet build test

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) run ./cmd/surgebench -exp all

# Laptop-scale benchmarks; writes BENCH_hotpath.json (ns/obj, allocs/obj,
# objs/sec) and BENCH_topk.json (continuous vs replay /v1/topk latency,
# ingest overhead of top-k maintenance) to bench-out/ so CI can archive
# every PR's perf point. The grep asserts the topkserve experiment actually
# reported the continuous-top-k ingest-overhead ratio — if the experiment
# breaks (or stops writing the field CI and the docs quote), the smoke run
# fails loudly instead of silently archiving a hollow JSON.
# -obs-overhead-max gates the telemetry's cost on the sharded ingest path
# (median paired obs-on/obs-off ratio): the true overhead measures ~0-1%,
# the estimator's noise floor on a shared runner is ~±3%, and a real
# regression (a lock or allocation on the record path) costs 20%+ — so 5%
# separates signal from noise with margin on both sides.
bench-smoke:
	mkdir -p bench-out
	$(GO) run ./cmd/surgebench -exp hotpath,topkserve,tenancy -max-exact 1000 -max-approx 10000 -json-dir bench-out -obs-overhead-max 5
	@grep -q '"ingest_overhead_pct"' bench-out/BENCH_topk.json || { \
		echo "bench-smoke: BENCH_topk.json lacks ingest_overhead_pct; the topkserve experiment broke"; exit 1; }
	@grep -q '"bestserve_ingest_gain_pct"' bench-out/BENCH_topk.json || { \
		echo "bench-smoke: BENCH_topk.json lacks bestserve_ingest_gain_pct; the bestserve rows broke"; exit 1; }
	@grep -q '"best-chain"' bench-out/BENCH_topk.json && grep -q '"best-engines"' bench-out/BENCH_topk.json || { \
		echo "bench-smoke: BENCH_topk.json lacks the bestserve chain-vs-engines rows"; exit 1; }
	@grep -q '"objs_per_sec"\|"objects_per_sec"' bench-out/BENCH_hotpath.json || { \
		echo "bench-smoke: BENCH_hotpath.json lacks throughput rows; the hotpath experiment broke"; exit 1; }
	@grep -q '"ingest_ack_p50_us"' bench-out/BENCH_hotpath.json || { \
		echo "bench-smoke: BENCH_hotpath.json lacks ingest-ack latency quantiles; the obs histograms broke"; exit 1; }
	@grep -q '"obs_overhead_pct"' bench-out/BENCH_hotpath.json || { \
		echo "bench-smoke: BENCH_hotpath.json lacks obs_overhead_pct; the obs-on-vs-off comparison broke"; exit 1; }
	@grep -q '"wal_overhead_pct"' bench-out/BENCH_hotpath.json || { \
		echo "bench-smoke: BENCH_hotpath.json lacks wal_overhead_pct; the durable-ingest rows broke"; exit 1; }
	@grep -q '"tenancy_scale_pct"' bench-out/BENCH_tenancy.json || { \
		echo "bench-smoke: BENCH_tenancy.json lacks tenancy_scale_pct; the tenancy experiment broke"; exit 1; }
