package surge_test

import (
	"testing"

	"surge"
)

func countOpts(nc, np float64) surge.Options {
	return surge.Options{
		Width: 1, Height: 1,
		Window: nc, PastWindow: np,
		Alpha:        0.5,
		CountWindows: true,
	}
}

func TestCountWindowsValidation(t *testing.T) {
	if _, err := surge.New(surge.CellCSPOT, countOpts(10.5, 10)); err == nil {
		t.Fatal("fractional count accepted")
	}
	if _, err := surge.New(surge.CellCSPOT, countOpts(0, 10)); err == nil {
		t.Fatal("zero count accepted")
	}
	if _, err := surge.New(surge.CellCSPOT, countOpts(10, 0)); err != nil {
		t.Fatalf("PastWindow=0 should default to Window: %v", err)
	}
}

// TestCountWindowsScore: with count windows of size 2/2 the score evolution
// is fully predictable.
func TestCountWindowsScore(t *testing.T) {
	d, err := surge.New(surge.CellCSPOT, countOpts(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	// All objects land in the same query cell.
	push := func(w float64, tm float64) surge.Result {
		res, err := d.Push(surge.Object{X: 0.5, Y: 0.5, Weight: w, Time: tm})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	// #1: current = {4}. fc = 4/2 = 2; S = 0.5*2 + 0.5*2 = 2.
	if res := push(4, 1); !almost(res.Score, 2) {
		t.Fatalf("after 1 object: %v, want 2", res.Score)
	}
	// #2: current = {4, 6}. fc = 10/2 = 5; S = 5.
	if res := push(6, 2); !almost(res.Score, 5) {
		t.Fatalf("after 2 objects: %v, want 5", res.Score)
	}
	// #3: current = {6, 2}, past = {4}. fc = 4, fp = 2; S = 0.5*2 + 0.5*4 = 3.
	if res := push(2, 3); !almost(res.Score, 3) {
		t.Fatalf("after 3 objects: %v, want 3", res.Score)
	}
	// #4: current = {2, 8}, past = {4, 6}. fc = 5, fp = 5; S = 0.5*0+0.5*5.
	if res := push(8, 4); !almost(res.Score, 2.5) {
		t.Fatalf("after 4 objects: %v, want 2.5", res.Score)
	}
	// #5: current = {8, 10}, past = {6, 2}; 4 expired. fc = 9, fp = 4;
	// S = 0.5*5 + 0.5*9 = 7.
	if res := push(10, 5); !almost(res.Score, 7) {
		t.Fatalf("after 5 objects: %v, want 7", res.Score)
	}
	if d.Live() != 4 {
		t.Fatalf("live = %d, want 4 (2 current + 2 past)", d.Live())
	}
}

// TestCountWindowsAllEnginesAgree: the exact engines agree under the
// count-based generator too (they are event-driven and agnostic).
func TestCountWindowsAllEnginesAgree(t *testing.T) {
	algs := []surge.Algorithm{surge.CellCSPOT, surge.Baseline, surge.AG2, surge.Oracle}
	dets := make([]*surge.Detector, len(algs))
	for i, a := range algs {
		var err error
		dets[i], err = surge.New(a, countOpts(40, 60))
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, o := range randomObjects(91, 500, 5) {
		var ref surge.Result
		for i, d := range dets {
			res, err := d.Push(o)
			if err != nil {
				t.Fatal(err)
			}
			if i == 0 {
				ref = res
				continue
			}
			if !almost(ref.Score, res.Score) {
				t.Fatalf("t=%v: %v=%v vs %v=%v", o.Time, algs[i], res.Score, algs[0], ref.Score)
			}
		}
	}
}

// TestCountWindowsApproxGuarantee: the (1-alpha)/4 bound holds regardless
// of the window model.
func TestCountWindowsApproxGuarantee(t *testing.T) {
	exact, _ := surge.New(surge.CellCSPOT, countOpts(50, 50))
	grid, _ := surge.New(surge.GridApprox, countOpts(50, 50))
	for _, o := range randomObjects(93, 600, 6) {
		er, err := exact.Push(o)
		if err != nil {
			t.Fatal(err)
		}
		gr, _ := grid.Push(o)
		if er.Found && gr.Score < (1-0.5)/4*er.Score-1e-9 {
			t.Fatalf("guarantee violated under count windows: %v vs %v", gr.Score, er.Score)
		}
	}
}

func TestCountWindowsTopK(t *testing.T) {
	kccs, err := surge.NewTopK(surge.CellCSPOT, countOpts(30, 30), 3)
	if err != nil {
		t.Fatal(err)
	}
	naive, _ := surge.NewTopK(surge.Oracle, countOpts(30, 30), 3)
	for _, o := range randomObjects(95, 300, 4) {
		a, err := kccs.Push(o)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := naive.Push(o)
		for i := range a {
			if !almost(a[i].Score, b[i].Score) {
				t.Fatalf("t=%v rank %d: %v vs %v", o.Time, i, a[i].Score, b[i].Score)
			}
		}
	}
}

func TestCountWindowsCheckpoint(t *testing.T) {
	d, _ := surge.New(surge.GridApprox, countOpts(20, 20))
	for _, o := range randomObjects(97, 100, 4) {
		if _, err := d.Push(o); err != nil {
			t.Fatal(err)
		}
	}
	data, err := d.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	r, err := surge.Restore(surge.GridApprox, data)
	if err != nil {
		t.Fatal(err)
	}
	a, b := d.Best(), r.Best()
	if a.Found != b.Found || (a.Found && !almost(a.Score, b.Score)) {
		t.Fatalf("count-window checkpoint mismatch: %+v vs %+v", b, a)
	}
}
