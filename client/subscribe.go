package client

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
)

// Subscription is a live feed of bursty-region change notifications
// (GET /v1/subscribe, Server-Sent Events). Read Events until it closes,
// then consult Err; Close cancels the stream.
type Subscription struct {
	hello  State
	events chan Notification
	ctx    context.Context
	cancel context.CancelFunc

	mu   sync.Mutex
	err  error
	done chan struct{}
}

// Subscribe opens the notification stream. It returns once the server's
// initial "hello" event has been received — from that point on, every
// change to the bursty region is delivered (or accounted for in a
// Notification.Dropped count if this subscriber falls behind the server's
// per-subscriber buffer).
func (c *Client) Subscribe(ctx context.Context) (*Subscription, error) {
	ctx, cancel := context.WithCancel(ctx)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/subscribe", nil)
	if err != nil {
		cancel()
		return nil, err
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.hc.Do(req)
	if err != nil {
		cancel()
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		cancel()
		return nil, decodeError(resp)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		resp.Body.Close()
		cancel()
		return nil, fmt.Errorf("client: subscribe: unexpected content type %q", ct)
	}

	sub := &Subscription{
		events: make(chan Notification, 256),
		ctx:    ctx,
		cancel: cancel,
		done:   make(chan struct{}),
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 1<<20)

	// The hello event arrives synchronously so the caller knows the
	// subscription is registered before it triggers any changes.
	event, data, err := nextEvent(sc)
	if err != nil {
		resp.Body.Close()
		cancel()
		return nil, fmt.Errorf("client: subscribe: reading hello: %w", err)
	}
	if event != "hello" {
		resp.Body.Close()
		cancel()
		return nil, fmt.Errorf("client: subscribe: first event %q, want hello", event)
	}
	if err := json.Unmarshal([]byte(data), &sub.hello); err != nil {
		resp.Body.Close()
		cancel()
		return nil, fmt.Errorf("client: subscribe: decoding hello: %w", err)
	}

	go sub.run(resp.Body, sc)
	return sub, nil
}

// Hello returns the server state at subscription time.
func (s *Subscription) Hello() State { return s.hello }

// Events returns the notification channel. It is closed when the stream
// ends; check Err afterwards.
func (s *Subscription) Events() <-chan Notification { return s.events }

// Err returns the terminal stream error, if any, once Events is closed.
// A subscription ended by Close (or its context) reports nil.
func (s *Subscription) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Close cancels the subscription and waits for the reader to finish.
func (s *Subscription) Close() error {
	s.cancel()
	<-s.done
	return nil
}

func (s *Subscription) run(body io.ReadCloser, sc *bufio.Scanner) {
	defer close(s.done)
	defer close(s.events)
	defer body.Close()
	for {
		event, data, err := nextEvent(sc)
		if err != nil {
			// Cancellation surfaces as a read error on the body; report
			// only errors the caller didn't cause.
			if err != io.EOF && !isCanceled(err) {
				s.mu.Lock()
				s.err = err
				s.mu.Unlock()
			}
			return
		}
		if event != "burst" {
			continue // future event types are skippable by design
		}
		var n Notification
		if err := json.Unmarshal([]byte(data), &n); err != nil {
			s.mu.Lock()
			s.err = fmt.Errorf("client: subscribe: decoding notification: %w", err)
			s.mu.Unlock()
			return
		}
		// The send must stay cancellable: a consumer that stopped reading
		// would otherwise pin this goroutine (and Close) on a full buffer.
		select {
		case s.events <- n:
		case <-s.ctx.Done():
			return
		}
	}
}

func isCanceled(err error) bool {
	return strings.Contains(err.Error(), "context canceled") ||
		strings.Contains(err.Error(), "use of closed network connection")
}

// nextEvent reads one SSE event: "event:"/"data:" field lines terminated
// by a blank line. Comment lines (leading ':') are keep-alives and are
// skipped. Returns io.EOF at end of stream.
func nextEvent(sc *bufio.Scanner) (event, data string, err error) {
	var dataLines []string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if event != "" || len(dataLines) > 0 {
				return event, strings.Join(dataLines, "\n"), nil
			}
		case strings.HasPrefix(line, ":"):
			// keep-alive comment
		case strings.HasPrefix(line, "event:"):
			event = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
		case strings.HasPrefix(line, "data:"):
			dataLines = append(dataLines, strings.TrimPrefix(strings.TrimPrefix(line, "data:"), " "))
		default:
			// id: and unknown fields are ignored
		}
	}
	if err := sc.Err(); err != nil {
		return "", "", err
	}
	return "", "", io.EOF
}
