package client

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Subscription is a live feed of detection-change notifications
// (GET /v1/subscribe, Server-Sent Events): bursty-region changes on Events,
// top-k changes on TopKEvents. Read the channels until they close, then
// consult Err; Close cancels the stream.
type Subscription struct {
	resumed bool
	events  chan Notification
	topk    chan TopKNotification
	lastEID atomic.Uint64
	epoch   atomic.Uint64 // server stream epoch from event ids ("epoch.eid")
	ctx     context.Context
	cancel  context.CancelFunc

	mu       sync.Mutex
	hello    State
	resynced bool // a resume was answered with a fresh hello (server restarted)
	err      error
	done     chan struct{}
}

// Subscribe opens the notification stream. It returns once the server's
// initial "hello" event has been received — from that point on, every
// change to the bursty region (and, on servers maintaining continuous
// top-k, to the top-k answer) is delivered or accounted for in a Dropped
// count if this subscriber falls behind the server's per-subscriber buffer.
func (c *Client) Subscribe(ctx context.Context) (*Subscription, error) {
	return c.SubscribeFrom(ctx, 0)
}

// SubscribeFrom resumes the notification stream after a disconnect:
// lastEventID is the event id of the last notification this subscriber saw
// (Subscription.LastEventID of the broken subscription, or the hello's
// State.Events). The server replays the missed events from its bounded
// notification ring with their original ids instead of restarting the
// stream; events that have already left the ring are counted in the first
// replayed event's Dropped field, so the loss accounting stays exact across
// reconnects. No hello event is sent on resume — Hello returns the zero
// State and Resumed reports true.
//
// SubscribeFrom(ctx, 0) is Subscribe.
//
// A bare event id can only resume within one server process. To survive a
// server restart, resume with SubscribeFromCursor and the Cursor of the
// broken subscription instead.
func (c *Client) SubscribeFrom(ctx context.Context, lastEventID uint64) (*Subscription, error) {
	var cursor string
	if lastEventID > 0 {
		cursor = strconv.FormatUint(lastEventID, 10)
	}
	return c.subscribe(ctx, "/v1/subscribe", cursor)
}

// SubscribeFromCursor resumes the notification stream from a Cursor taken
// off a previous subscription ("epoch.eid"). Unlike a bare event id, the
// cursor identifies the server process it came from: if the server has
// restarted since (its replay ring is gone and its event ids restarted),
// the server answers with a fresh hello instead of a bogus replay — the
// subscription then reports Resynced true and Hello carries the new state,
// so the caller knows to rebuild its view rather than patch it.
//
// An empty cursor is Subscribe.
func (c *Client) SubscribeFromCursor(ctx context.Context, cursor string) (*Subscription, error) {
	if cursor != "" {
		if _, _, err := parseCursor(cursor); err != nil {
			return nil, err
		}
	}
	return c.subscribe(ctx, "/v1/subscribe", cursor)
}

// parseCursor splits a subscription cursor: "epoch.eid" or a bare "eid"
// (epoch 0).
func parseCursor(cursor string) (epoch, eid uint64, err error) {
	s := cursor
	if e, n, found := strings.Cut(cursor, "."); found {
		epoch, err = strconv.ParseUint(e, 10, 64)
		if err != nil {
			return 0, 0, fmt.Errorf("client: invalid subscription cursor %q", cursor)
		}
		s = n
	}
	eid, err = strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("client: invalid subscription cursor %q", cursor)
	}
	return epoch, eid, nil
}

// subscribe opens the SSE stream at path — "/v1/subscribe" for the default
// query, "/v1/queries/{id}/subscribe" for a query-scoped feed.
func (c *Client) subscribe(ctx context.Context, path, cursor string) (*Subscription, error) {
	ctx, cancel := context.WithCancel(ctx)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		cancel()
		return nil, err
	}
	req.Header.Set("Accept", "text/event-stream")
	resume := cursor != ""
	if resume {
		req.Header.Set("Last-Event-ID", cursor)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		cancel()
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		cancel()
		return nil, decodeError(resp)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		resp.Body.Close()
		cancel()
		return nil, fmt.Errorf("client: subscribe: unexpected content type %q", ct)
	}

	sub := &Subscription{
		resumed: resume,
		events:  make(chan Notification, 256),
		topk:    make(chan TopKNotification, 256),
		ctx:     ctx,
		cancel:  cancel,
		done:    make(chan struct{}),
	}
	if resume {
		epoch, eid, _ := parseCursor(cursor) // validated by the callers
		sub.epoch.Store(epoch)
		sub.lastEID.Store(eid)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 1<<20)

	if !resume {
		// The hello event arrives synchronously so the caller knows the
		// subscription is registered before it triggers any changes.
		event, id, data, err := nextEvent(sc)
		if err != nil {
			resp.Body.Close()
			cancel()
			return nil, fmt.Errorf("client: subscribe: reading hello: %w", err)
		}
		if event != "hello" {
			resp.Body.Close()
			cancel()
			return nil, fmt.Errorf("client: subscribe: first event %q, want hello", event)
		}
		if err := json.Unmarshal([]byte(data), &sub.hello); err != nil {
			resp.Body.Close()
			cancel()
			return nil, fmt.Errorf("client: subscribe: decoding hello: %w", err)
		}
		sub.trackEID(id)
	}

	go sub.run(resp.Body, sc)
	return sub, nil
}

// Hello returns the server state at subscription time. A resumed
// subscription receives no hello and reports the zero State — unless the
// server could not honour the resume (see Resynced), in which case Hello
// returns the fresh state the server resynchronised with.
func (s *Subscription) Hello() State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hello
}

// Resumed reports whether the subscription was opened with SubscribeFrom or
// SubscribeFromCursor and therefore expects no hello event.
func (s *Subscription) Resumed() bool { return s.resumed }

// Resynced reports that a resumed subscription was answered with a fresh
// hello instead of a replay: the cursor's server process is gone (restart,
// failover), so no missed events could be recovered. The caller should
// treat Hello as a new baseline and rebuild any derived state.
func (s *Subscription) Resynced() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.resynced
}

// Cursor returns the resume cursor of the most recently decoded event:
// "epoch.eid", or a bare event id when the server predates stream epochs,
// or "" before any event has carried an id. Pass it to SubscribeFromCursor
// to resume after a disconnect — including across server restarts.
func (s *Subscription) Cursor() string {
	eid := s.lastEID.Load()
	if eid == 0 {
		return ""
	}
	if epoch := s.epoch.Load(); epoch != 0 {
		return strconv.FormatUint(epoch, 10) + "." + strconv.FormatUint(eid, 10)
	}
	return strconv.FormatUint(eid, 10)
}

// LastEventID returns the event id of the most recently decoded
// notification. The reader goroutine runs ahead of the consumer's channel
// reads, so to resume exactly after the last notification you processed,
// pass that notification's EventID to SubscribeFrom instead; LastEventID
// is the right cursor once the channels have been drained.
func (s *Subscription) LastEventID() uint64 { return s.lastEID.Load() }

// Events returns the bursty-region notification channel. It is closed when
// the stream ends; check Err afterwards.
func (s *Subscription) Events() <-chan Notification { return s.events }

// TopKEvents returns the top-k notification channel, fed by servers that
// maintain continuous top-k. Every notification is a complete snapshot of
// the answer, so the channel keeps only the freshest ones: when a slow
// consumer fills it, the oldest buffered notification is replaced (the loss
// shows up in the next notification's Dropped accounting together with any
// server-side drops). The channel is closed when the stream ends.
func (s *Subscription) TopKEvents() <-chan TopKNotification { return s.topk }

// Err returns the terminal stream error, if any, once Events is closed.
// A subscription ended by Close (or its context) reports nil.
func (s *Subscription) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Close cancels the subscription and waits for the reader to finish.
func (s *Subscription) Close() error {
	s.cancel()
	<-s.done
	return nil
}

func (s *Subscription) fail(err error) {
	s.mu.Lock()
	s.err = err
	s.mu.Unlock()
}

// trackEID records the position carried by an SSE id field — "epoch.eid"
// from epoch-aware servers, a bare event id from older ones — and returns
// the event id for the notification's EventID field.
func (s *Subscription) trackEID(id string) uint64 {
	if id == "" {
		return 0
	}
	num := id
	if e, n, found := strings.Cut(id, "."); found {
		epoch, err := strconv.ParseUint(e, 10, 64)
		if err != nil {
			return 0
		}
		s.epoch.Store(epoch)
		num = n
	}
	v, err := strconv.ParseUint(num, 10, 64)
	if err != nil {
		return 0
	}
	s.lastEID.Store(v)
	return v
}

func (s *Subscription) run(body io.ReadCloser, sc *bufio.Scanner) {
	defer close(s.done)
	defer close(s.events)
	defer close(s.topk)
	defer body.Close()
	for {
		event, id, data, err := nextEvent(sc)
		if err != nil {
			// Cancellation surfaces as a read error on the body; report
			// only errors the caller didn't cause.
			if err != io.EOF && !isCanceled(err) {
				s.fail(err)
			}
			return
		}
		switch event {
		case "burst":
			var n Notification
			if err := json.Unmarshal([]byte(data), &n); err != nil {
				s.fail(fmt.Errorf("client: subscribe: decoding notification: %w", err))
				return
			}
			n.EventID = s.trackEID(id)
			// The send must stay cancellable: a consumer that stopped
			// reading would otherwise pin this goroutine (and Close) on a
			// full buffer.
			select {
			case s.events <- n:
			case <-s.ctx.Done():
				return
			}
		case "topk":
			var n TopKNotification
			if err := json.Unmarshal([]byte(data), &n); err != nil {
				s.fail(fmt.Errorf("client: subscribe: decoding top-k notification: %w", err))
				return
			}
			n.EventID = s.trackEID(id)
			// Latest-wins: each notification is a full snapshot, so a slow
			// consumer is served best by replacing the oldest buffered one.
			// The evicted notification's loss account (plus itself) is
			// folded into the one being delivered, so "delivered + sum of
			// Dropped = published" holds across client-side drops too.
			for {
				select {
				case s.topk <- n:
				case <-s.ctx.Done():
					return
				default:
					select {
					case old := <-s.topk:
						n.Dropped += old.Dropped + 1
					default:
					}
					continue
				}
				break
			}
		case "hello":
			// A hello on a resumed stream means the server declined the
			// resume (foreign epoch: the process restarted) and opened a
			// fresh subscription instead. Record the resynchronised state
			// so the consumer can rebuild from it.
			var st State
			if err := json.Unmarshal([]byte(data), &st); err != nil {
				s.fail(fmt.Errorf("client: subscribe: decoding hello: %w", err))
				return
			}
			s.mu.Lock()
			s.hello = st
			s.resynced = true
			s.mu.Unlock()
			s.trackEID(id)
		default:
			// future event types are skippable by design
		}
	}
}

func isCanceled(err error) bool {
	return strings.Contains(err.Error(), "context canceled") ||
		strings.Contains(err.Error(), "use of closed network connection")
}

// nextEvent reads one SSE event: "event:"/"id:"/"data:" field lines
// terminated by a blank line. Comment lines (leading ':') are keep-alives
// and are skipped. Returns io.EOF at end of stream.
func nextEvent(sc *bufio.Scanner) (event, id, data string, err error) {
	var dataLines []string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if event != "" || len(dataLines) > 0 {
				return event, id, strings.Join(dataLines, "\n"), nil
			}
		case strings.HasPrefix(line, ":"):
			// keep-alive comment
		case strings.HasPrefix(line, "event:"):
			event = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
		case strings.HasPrefix(line, "id:"):
			id = strings.TrimSpace(strings.TrimPrefix(line, "id:"))
		case strings.HasPrefix(line, "data:"):
			dataLines = append(dataLines, strings.TrimPrefix(strings.TrimPrefix(line, "data:"), " "))
		default:
			// unknown fields are ignored
		}
	}
	if err := sc.Err(); err != nil {
		return "", "", "", err
	}
	return "", "", "", io.EOF
}
