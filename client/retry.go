package client

import (
	"context"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"time"
)

// RetryPolicy configures the client's automatic retries. Retries cover
// transport errors (connection refused/reset), 429 replies and 5xx replies
// — including the 503 durability_degraded shed a durable server emits while
// its repair loop rotates away from a failed disk; a served Retry-After
// always wins over the computed backoff when it is longer. Only requests
// that are safe to repeat are retried: all GETs, snapshot and restore, and
// ingest only when it carries an Ingest-Seq header, because the server's
// per-source dedupe then makes the retry effectively-once. Ingest without a
// sequence is never retried: an ack lost after the server applied the batch
// would double-count it.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts including the first.
	// 0 means 4.
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt; each further
	// attempt doubles it, with jitter. 0 means 100ms.
	BaseDelay time.Duration
	// MaxDelay caps the exponential backoff (a larger server Retry-After
	// still wins). 0 means 5s.
	MaxDelay time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 100 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 5 * time.Second
	}
	return p
}

// WithRetry enables automatic retries with the given policy; see
// RetryPolicy for which requests and failures are covered.
func WithRetry(p RetryPolicy) Option {
	return func(c *Client) {
		pp := p.withDefaults()
		c.retry = &pp
	}
}

// retriable reports whether req is safe to send more than once. Requests
// whose body cannot be replayed (a streaming ingest from an io.Reader) are
// not, regardless of policy.
func retriable(req *http.Request) bool {
	if req.Body != nil && req.GetBody == nil {
		return false
	}
	if req.Method == http.MethodGet {
		return true
	}
	if req.URL.Path == "/v1/ingest" {
		return req.Header.Get("Ingest-Seq") != ""
	}
	return true
}

// retryStatus reports whether an HTTP status is worth retrying.
func retryStatus(code int) bool {
	return code == http.StatusTooManyRequests || code >= 500
}

// parseRetryAfter parses a Retry-After header value: either delay seconds
// or an HTTP-date.
func parseRetryAfter(v string) (time.Duration, bool) {
	if v == "" {
		return 0, false
	}
	if secs, err := strconv.ParseFloat(v, 64); err == nil {
		if secs < 0 {
			return 0, false
		}
		return time.Duration(secs * float64(time.Second)), true
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := time.Until(t); d > 0 {
			return d, true
		}
		return 0, true
	}
	return 0, false
}

// backoff returns the jittered exponential delay before retry attempt i
// (0-based): the deterministic half plus up to the same amount of jitter,
// so concurrent clients shed at the same instant do not retry in lockstep.
func (p RetryPolicy) backoff(i int) time.Duration {
	d := p.BaseDelay << uint(i)
	if d <= 0 || d > p.MaxDelay {
		d = p.MaxDelay
	}
	half := d / 2
	return half + time.Duration(rand.Int63n(int64(half)+1))
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// do sends req, retrying per the client's policy when the request is
// retriable. On a retryable status the server's Retry-After wins over the
// computed backoff when it is longer. The final failing attempt's response
// (or transport error) is returned untouched so callers decode it as usual.
func (c *Client) do(req *http.Request) (*http.Response, error) {
	attempts := 1
	if c.retry != nil && retriable(req) {
		attempts = c.retry.MaxAttempts
	}
	for i := 0; ; i++ {
		if i > 0 && req.GetBody != nil {
			body, err := req.GetBody()
			if err != nil {
				return nil, err
			}
			req.Body = body
		}
		resp, err := c.hc.Do(req)
		last := i+1 >= attempts
		if err != nil {
			if last {
				return nil, err
			}
			if serr := sleepCtx(req.Context(), c.retry.backoff(i)); serr != nil {
				return nil, err
			}
			continue
		}
		if !retryStatus(resp.StatusCode) || last {
			return resp, nil
		}
		wait := c.retry.backoff(i)
		if ra, ok := parseRetryAfter(resp.Header.Get("Retry-After")); ok && ra > wait {
			wait = ra
		}
		io.Copy(io.Discard, io.LimitReader(resp.Body, 64<<10))
		resp.Body.Close()
		if serr := sleepCtx(req.Context(), wait); serr != nil {
			return nil, serr
		}
	}
}
