package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"surge"
)

func testObjs() []surge.Object {
	return []surge.Object{{Time: 1, X: 1, Y: 1, Weight: 1}}
}

func ackOK(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(IngestResult{Accepted: 1})
}

func TestRetryOn429WithRetryAfter(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(Error{Err: "overloaded", Code: CodeOverloaded})
			return
		}
		ackOK(w)
	}))
	defer ts.Close()
	c := New(ts.URL, WithRetry(RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond}))
	res, err := c.IngestSeq(context.Background(), "src", 1, testObjs())
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 1 || hits.Load() != 2 {
		t.Fatalf("accepted=%d hits=%d, want 1 accepted on the second attempt", res.Accepted, hits.Load())
	}
}

func TestRetryOn5xxGET(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) < 3 {
			http.Error(w, "boom", http.StatusServiceUnavailable)
			return
		}
		json.NewEncoder(w).Encode(Health{OK: true})
	}))
	defer ts.Close()
	c := New(ts.URL, WithRetry(RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond}))
	h, err := c.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !h.OK || hits.Load() != 3 {
		t.Fatalf("ok=%v hits=%d, want success on the third attempt", h.OK, hits.Load())
	}
}

func TestNoRetryOfUnsequencedIngest(t *testing.T) {
	// An ingest without Ingest-Seq must not be retried: the server may have
	// applied it even though the reply was lost, and a blind repeat would
	// double-count. The 503 here must surface after exactly one attempt.
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, `{"error":"down"}`, http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	c := New(ts.URL, WithRetry(RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond}))
	if _, err := c.Ingest(context.Background(), testObjs()); err == nil {
		t.Fatal("want an error")
	}
	if hits.Load() != 1 {
		t.Fatalf("unsequenced ingest was retried: %d attempts", hits.Load())
	}
}

// TestRetryOnDegraded503 pins the graceful-degradation contract on the
// client side: a sequenced ingest shed with 503 durability_degraded is
// retried after the server's (fractional) Retry-After and succeeds once
// the server has repaired itself.
func TestRetryOnDegraded503(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0.05")
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(Error{Err: "durability degraded", Code: CodeDurabilityDegraded, RetryAfterSec: 0.05})
			return
		}
		ackOK(w)
	}))
	defer ts.Close()
	c := New(ts.URL, WithRetry(RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}))
	t0 := time.Now()
	res, err := c.IngestSeq(context.Background(), "src", 1, testObjs())
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 1 || hits.Load() != 3 {
		t.Fatalf("accepted=%d hits=%d, want success on the third attempt", res.Accepted, hits.Load())
	}
	// Two shed replies, each with a 50ms fractional Retry-After that beats
	// the millisecond backoff.
	if d := time.Since(t0); d < 80*time.Millisecond {
		t.Fatalf("retries returned in %v, want the ~100ms the server asked for", d)
	}
}

// TestDegraded503TypedError pins the sentinel: an exhausted degraded shed
// surfaces as a typed *Error matching errors.Is(err, ErrDegraded).
func TestDegraded503TypedError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(Error{Err: "durability degraded", Code: CodeDurabilityDegraded, RetryAfterSec: 1})
	}))
	defer ts.Close()
	c := New(ts.URL) // no retry: the sentinel must not depend on the policy
	_, err := c.IngestSeq(context.Background(), "src", 1, testObjs())
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("want ErrDegraded, got %v", err)
	}
	if errors.Is(err, ErrOverloaded) {
		t.Fatal("degraded shed matched the overload sentinel")
	}
	var e *Error
	if !errors.As(err, &e) || e.Status != http.StatusServiceUnavailable || e.RetryAfterSec != 1 {
		t.Fatalf("error lost its transport metadata: %+v", e)
	}
}

func TestRetryExhaustionReturnsTypedError(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// The big hint only on the final attempt, so the test does not
		// actually sleep it — it just has to survive into the error.
		if hits.Add(1) == 1 {
			w.Header().Set("Retry-After", "0")
		} else {
			w.Header().Set("Retry-After", "2")
		}
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(Error{Err: "overloaded", Code: CodeOverloaded})
	}))
	defer ts.Close()
	c := New(ts.URL, WithRetry(RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}))
	_, err := c.IngestSeq(context.Background(), "src", 1, testObjs())
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("want ErrOverloaded, got %v", err)
	}
	var e *Error
	if !errors.As(err, &e) || e.Status != http.StatusTooManyRequests || e.RetryAfterSec != 2 {
		t.Fatalf("error lost its transport metadata: %+v", e)
	}
	if hits.Load() != 2 {
		t.Fatalf("attempts = %d, want 2", hits.Load())
	}
}

func TestRetryTransportError(t *testing.T) {
	// A connect failure on a retriable request retries, then surfaces the
	// transport error once attempts are exhausted.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	url := ts.URL
	ts.Close() // nothing listens any more
	c := New(url, WithRetry(RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}))
	if _, err := c.Best(context.Background()); err == nil {
		t.Fatal("want a transport error")
	}
}

func TestParseRetryAfter(t *testing.T) {
	if d, ok := parseRetryAfter("3"); !ok || d != 3*time.Second {
		t.Fatalf("seconds form: got %v %v", d, ok)
	}
	if d, ok := parseRetryAfter("0"); !ok || d != 0 {
		t.Fatalf("zero seconds: got %v %v", d, ok)
	}
	future := time.Now().Add(90 * time.Second).UTC().Format(http.TimeFormat)
	if d, ok := parseRetryAfter(future); !ok || d < 80*time.Second || d > 91*time.Second {
		t.Fatalf("http-date form: got %v %v", d, ok)
	}
	past := time.Now().Add(-time.Hour).UTC().Format(http.TimeFormat)
	if d, ok := parseRetryAfter(past); !ok || d != 0 {
		t.Fatalf("past http-date should mean no wait: got %v %v", d, ok)
	}
	if _, ok := parseRetryAfter("soon"); ok {
		t.Fatal("garbage should not parse")
	}
	if _, ok := parseRetryAfter(""); ok {
		t.Fatal("empty should not parse")
	}
}

func TestBackoffBounds(t *testing.T) {
	p := RetryPolicy{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second}.withDefaults()
	for i := 0; i < 20; i++ {
		d := p.backoff(i)
		if d < p.BaseDelay/2 || d > p.MaxDelay {
			t.Fatalf("backoff(%d) = %v outside [%v, %v]", i, d, p.BaseDelay/2, p.MaxDelay)
		}
	}
}

// TestNoRetryOnUnknownQuery pins the unknown_query contract: a 404 with
// code unknown_query is a terminal answer — WithRetry must give up after
// the first attempt and surface the typed ErrUnknownQuery.
func TestNoRetryOnUnknownQuery(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(Error{Err: "unknown query", Code: CodeUnknownQuery})
	}))
	defer ts.Close()
	c := New(ts.URL, WithRetry(RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond}))
	_, err := c.Query("gone").Best(context.Background())
	if !errors.Is(err, ErrUnknownQuery) {
		t.Fatalf("err = %v, want ErrUnknownQuery", err)
	}
	var werr *Error
	if !errors.As(err, &werr) || werr.Status != http.StatusNotFound || werr.Code != CodeUnknownQuery {
		t.Fatalf("err = %+v, want a typed 404 %s", err, CodeUnknownQuery)
	}
	if hits.Load() != 1 {
		t.Fatalf("client retried a 404 unknown_query %d times", hits.Load()-1)
	}
}
