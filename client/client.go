package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"surge"
)

// NDJSON and CSV are the ingest content types the server accepts.
const (
	NDJSON = "application/x-ndjson"
	CSV    = "text/csv"
)

// Client talks to one surged serve instance. The zero value is not usable;
// use New. Client is safe for concurrent use.
type Client struct {
	base  string
	hc    *http.Client
	retry *RetryPolicy // nil: no automatic retries
}

// Option customises a Client.
type Option func(*Client)

// WithHTTPClient replaces the underlying HTTP client (e.g. to set
// timeouts for the unary calls; Subscribe streams indefinitely, so a
// global client timeout would kill subscriptions).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// New returns a client for the server at base, e.g. "http://localhost:7077".
func New(base string, opts ...Option) *Client {
	c := &Client{base: strings.TrimRight(base, "/"), hc: http.DefaultClient}
	for _, o := range opts {
		o(c)
	}
	return c
}

// EncodeNDJSON writes the objects as NDJSON ingest lines.
func EncodeNDJSON(w io.Writer, objs []surge.Object) error {
	enc := json.NewEncoder(w)
	for _, o := range objs {
		if err := enc.Encode(FromObject(o)); err != nil {
			return err
		}
	}
	return nil
}

// Ingest streams a time-ordered batch of objects to the server as NDJSON
// and returns the server's ingest summary.
func (c *Client) Ingest(ctx context.Context, objs []surge.Object) (*IngestResult, error) {
	var buf bytes.Buffer
	if err := EncodeNDJSON(&buf, objs); err != nil {
		return nil, err
	}
	return c.IngestStream(ctx, &buf, NDJSON)
}

// IngestStream streams an ingest body (NDJSON or CSV per contentType)
// without buffering it in memory.
func (c *Client) IngestStream(ctx context.Context, body io.Reader, contentType string) (*IngestResult, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/ingest", body)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", contentType)
	var out IngestResult
	if err := c.doJSON(req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// IngestSeq ingests a batch idempotently: the request carries an
// Ingest-Seq header of "source:seq", the server applies each (source, seq)
// pair at most once, and a retry of an already-applied sequence replays
// the original ack instead of re-applying the data. Sequences must be
// assigned monotonically (1, 2, 3, ...) per source; a stale seq fails with
// ErrSeqOutOfOrder. Combined with WithRetry, delivery is effectively-once.
func (c *Client) IngestSeq(ctx context.Context, source string, seq uint64, objs []surge.Object) (*IngestResult, error) {
	var buf bytes.Buffer
	if err := EncodeNDJSON(&buf, objs); err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/ingest", bytes.NewReader(buf.Bytes()))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", NDJSON)
	req.Header.Set("Ingest-Seq", source+":"+strconv.FormatUint(seq, 10))
	var out IngestResult
	if err := c.doJSON(req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Best returns the current bursty region and stream clock.
func (c *Client) Best(ctx context.Context) (*State, error) {
	var out State
	if err := c.getJSON(ctx, "/v1/best", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// TopK returns the greedy top-k bursty regions over the live windows,
// served O(1) from the server's continuously maintained answer whenever it
// covers k (TopK.Continuous reports which path answered). k <= 0 uses the
// server's configured default.
func (c *Client) TopK(ctx context.Context, k int) (*TopK, error) {
	return c.TopKMode(ctx, k, "")
}

// TopKMode is TopK with an explicit serving mode: "continuous" requires
// the maintained answer (the server rejects uncovered k), "replay" forces
// the checkpoint-replay escape hatch, "" or "auto" prefers the maintained
// answer and falls back to replay.
func (c *Client) TopKMode(ctx context.Context, k int, mode string) (*TopK, error) {
	var out TopK
	if err := c.getJSON(ctx, topkPath("/v1/topk", k, mode), &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// topkPath appends the k/mode query parameters to a topk endpoint path.
func topkPath(path string, k int, mode string) string {
	sep := byte('?')
	if k > 0 {
		path += string(sep) + "k=" + strconv.Itoa(k)
		sep = '&'
	}
	if mode != "" {
		path += string(sep) + "mode=" + mode
	}
	return path
}

// Snapshot returns a detector checkpoint (see surge.Restore).
func (c *Client) Snapshot(ctx context.Context) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/snapshot", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	return io.ReadAll(resp.Body)
}

// Restore replaces the server's detector with the state of a checkpoint
// (restored into the server's configured shard count) and returns the new
// state.
func (c *Client) Restore(ctx context.Context, checkpoint []byte) (*State, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/restore", bytes.NewReader(checkpoint))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	var out State
	if err := c.doJSON(req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Stats returns the server's typed telemetry snapshot: latency histograms
// for every pipeline stage, pipeline counters and Go runtime health. The
// endpoint is served lock-free, so it answers even when the server's event
// loop is stalled.
func (c *Client) Stats(ctx context.Context) (*StatsSnapshot, error) {
	var out StatsSnapshot
	if err := c.getJSON(ctx, "/v1/stats", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Health returns the server's health summary.
func (c *Client) Health(ctx context.Context) (*Health, error) {
	var out Health
	if err := c.getJSON(ctx, "/healthz", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Metrics returns the raw Prometheus text exposition.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", decodeError(resp)
	}
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}

func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	return c.doJSON(req, out)
}

func (c *Client) doJSON(req *http.Request, out any) error {
	resp, err := c.do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated {
		return decodeError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// decodeError turns a non-2xx reply into an *Error when the body carries
// the JSON error schema, or a plain error otherwise. The HTTP status and
// any Retry-After header are folded into the *Error so callers get the
// whole failure from one value.
func decodeError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	var e Error
	if err := json.Unmarshal(body, &e); err == nil && e.Err != "" {
		e.Status = resp.StatusCode
		if e.RetryAfterSec == 0 {
			if d, ok := parseRetryAfter(resp.Header.Get("Retry-After")); ok {
				e.RetryAfterSec = d.Seconds()
			}
		}
		return &e
	}
	return fmt.Errorf("client: %s: %s", resp.Status, strings.TrimSpace(string(body)))
}
