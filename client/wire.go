// Package client is the typed Go client for a surged serve instance (the
// internal/server HTTP host), and the canonical definition of its JSON wire
// schema — the server marshals these exact types, so a client and a server
// built from the same module always agree on the format.
//
// Wire format summary (all bodies JSON unless noted):
//
//	POST /v1/ingest     NDJSON lines {"time","x","y","weight"} (or CSV
//	                    "time,x,y,weight" with Content-Type text/csv)
//	                    -> IngestResult
//	GET  /v1/best       -> State (current bursty region + stream clock)
//	GET  /v1/topk?k=N   -> TopK (greedy top-k over the live windows);
//	                    served O(1) from the continuously maintained
//	                    answer, ?mode=replay forces checkpoint replay
//	GET  /v1/subscribe  -> text/event-stream: one "hello" event (State),
//	                    then a "burst" event (Notification) per bursty-
//	                    region change and a "topk" event (TopKNotification)
//	                    per top-k change; reconnect with Last-Event-ID to
//	                    resume instead of restarting from hello
//	POST /v1/snapshot   -> application/octet-stream detector checkpoint
//	POST /v1/restore    <- application/octet-stream checkpoint -> State
//	GET  /v1/stats      -> StatsSnapshot (latency histograms, pipeline
//	                    telemetry and runtime health; served lock-free,
//	                    so it answers even when the event loop is wedged)
//	GET  /healthz       -> Health
//	GET  /metrics       -> Prometheus text format
//
// Multi-query tenancy routes the same surface by query id. One server hosts
// a registry of named queries over one shared ingest stream; the paths above
// address the registry's "default" query, and every query answers under
// /v1/queries/{id}/...:
//
//	GET    /v1/queries             -> QueryList (the registry)
//	POST   /v1/queries             <- QueryConfig -> QueryInfo (create)
//	GET    /v1/queries/{id}        -> QueryInfo
//	DELETE /v1/queries/{id}        -> 204 (subscribers disconnect)
//	GET    /v1/queries/{id}/best | /topk | /subscribe | /stats
//	POST   /v1/queries/{id}/snapshot | /restore
//
// A path addressing a query id the registry does not hold answers 404 with
// code "unknown_query" (ErrUnknownQuery).
//
// JSON float64 fields use Go's shortest round-trip encoding, so scores and
// coordinates survive the wire bit-for-bit.
package client

import (
	"errors"

	"surge"
)

// Object is one stream element on the wire: an NDJSON ingest line. A
// missing weight defaults to 1 on the server.
type Object struct {
	Time   float64 `json:"time"`
	X      float64 `json:"x"`
	Y      float64 `json:"y"`
	Weight float64 `json:"weight"`
}

// Region is an axis-aligned rectangle on the wire.
type Region struct {
	MinX float64 `json:"min_x"`
	MinY float64 `json:"min_y"`
	MaxX float64 `json:"max_x"`
	MaxY float64 `json:"max_y"`
}

// Result is a detection answer on the wire. Region is nil when Found is
// false.
type Result struct {
	Found  bool    `json:"found"`
	Score  float64 `json:"score,omitempty"`
	Region *Region `json:"region,omitempty"`
}

// EngineStats mirrors surge.Stats on the wire. On a sharded detector an
// event replicated into a halo is counted by each shard that received it,
// so Events can exceed the number of window transitions.
type EngineStats struct {
	Events       uint64 `json:"events"`
	Searches     uint64 `json:"searches"`
	SearchEvents uint64 `json:"search_events"`
	SweepEntries uint64 `json:"sweep_entries"`
	CellsTouched uint64 `json:"cells_touched"`
}

// State is a point-in-time view of the detector: the answer of /v1/best,
// the payload of the SSE "hello" event, and the reply to /v1/restore.
type State struct {
	Seq    uint64      `json:"seq"`             // sequence number of the latest bursty-region change
	Epoch  uint64      `json:"epoch,omitempty"` // server stream epoch; SSE ids are "epoch.eid" (0 from pre-epoch servers)
	Events uint64      `json:"events"`          // SSE events published (burst + topk); the hello's event id
	Now    float64     `json:"now"`             // stream clock
	Live   int         `json:"live"`
	Shards int         `json:"shards"`
	Result Result      `json:"result"`
	Stats  EngineStats `json:"stats"`
}

// Notification is one SSE "burst" event: the bursty region changed.
// Dropped counts the SSE events (of any kind) this subscriber lost to the
// slow-consumer policy — or to reconnect-ring eviction — since the
// previously delivered event.
type Notification struct {
	Seq     uint64  `json:"seq"`
	Time    float64 `json:"time"` // stream clock at the change
	Result  Result  `json:"result"`
	Dropped uint64  `json:"dropped,omitempty"`

	// EventID is the SSE event id this notification arrived with, filled
	// in by the client (it is stream metadata, not part of the JSON body).
	// Pass the EventID of the last notification you processed to
	// SubscribeFrom to resume after a disconnect.
	EventID uint64 `json:"-"`
}

// TopKNotification is one SSE "topk" event: the maintained top-k answer
// changed (any rank's score or region). Results is the complete refreshed
// answer in rank order, so each event is a self-contained snapshot — a
// consumer that loses events (see Dropped) is current again after the next
// one.
type TopKNotification struct {
	Seq     uint64   `json:"seq"`
	Time    float64  `json:"time"` // stream clock at the change
	K       int      `json:"k"`
	Results []Result `json:"results"`
	Dropped uint64   `json:"dropped,omitempty"`

	// EventID is the SSE event id this notification arrived with, filled
	// in by the client; see Notification.EventID.
	EventID uint64 `json:"-"`
}

// IngestResult is the reply to /v1/ingest.
type IngestResult struct {
	Accepted int    `json:"accepted"` // objects applied to the detector
	Clamped  int    `json:"clamped"`  // late objects lifted to the stream clock
	Result   Result `json:"result"`   // answer after the last batch
}

// TopK is the reply to /v1/topk. Continuous reports which path served it:
// true for the maintained O(1) snapshot, false for checkpoint replay (the
// ?mode=replay escape hatch, or a k beyond the maintained one). Both paths
// report bitwise identical scores for the canonically rescored engines.
type TopK struct {
	K          int      `json:"k"`
	Algorithm  string   `json:"algorithm"`
	Continuous bool     `json:"continuous,omitempty"`
	Results    []Result `json:"results"` // rank order; Found=false slots trail
}

// Health is the reply to /healthz. Err carries the detector's recorded
// pipeline error when OK is false because the detector can no longer
// refresh its answer (the reply then comes with a 503) — or the probe
// error when the event loop failed to answer within the health timeout.
type Health struct {
	OK          bool    `json:"ok"`
	Algorithm   string  `json:"algorithm"`
	Version     string  `json:"version"`    // module build version ("dev" for source builds)
	GoVersion   string  `json:"go_version"` // Go toolchain that built the server
	Shards      int     `json:"shards"`
	Now         float64 `json:"now"`
	Live        int     `json:"live"`
	Subscribers int     `json:"subscribers"`
	// Queries is the number of registered queries (at least 1: the default).
	Queries int `json:"queries,omitempty"`
	// EngineSlots is the number of distinct engines backing those queries;
	// identically-configured queries share a slot, so this can be smaller
	// than Queries.
	EngineSlots int     `json:"engine_slots,omitempty"`
	UptimeSec   float64 `json:"uptime_sec"`
	// LastIngestAgeSec is the seconds since the last applied ingest batch,
	// -1 before the first: probes distinguish a stalled stream (no data
	// arriving) from a stalled process.
	LastIngestAgeSec float64 `json:"last_ingest_age_sec"`
	Err              string  `json:"err,omitempty"`

	// Durable reports whether the server runs with a write-ahead log
	// (-data-dir); the recovery fields below describe its last boot.
	Durable bool `json:"durable,omitempty"`
	// RecoveredBatches is the number of WAL batches replayed at boot on top
	// of the newest checkpoint.
	RecoveredBatches uint64 `json:"recovered_batches,omitempty"`
	// RecoverySec is how long the boot replay took.
	RecoverySec float64 `json:"recovery_sec,omitempty"`
	// WALTornBytes is the byte count discarded by torn-tail truncation at
	// the last boot (0 after a clean shutdown).
	WALTornBytes int64 `json:"wal_torn_bytes,omitempty"`
	// Durability is the degradation state machine's position on a durable
	// server: "ok" (no fault since boot), "degraded" (a WAL append/fsync
	// failed; ingest is shed with 503 while queries keep serving, and OK is
	// false), or "recovered" (a repair restored durability; OK is true).
	Durability string `json:"durability,omitempty"`
	// DegradedCount and RepairedCount count the ok->degraded and
	// degraded->recovered transitions since boot.
	DegradedCount uint64 `json:"degraded_count,omitempty"`
	RepairedCount uint64 `json:"repaired_count,omitempty"`
	// DegradedSec is the cumulative wall-clock time spent degraded,
	// including the current spell.
	DegradedSec float64 `json:"degraded_sec,omitempty"`
}

// HistogramStats summarises one latency or value histogram in /v1/stats.
// Duration histograms report seconds; value histograms (batch sizes,
// buffer occupancy, shard counts) report raw counts. Quantiles are bucket
// midpoints of a log-scale histogram (<= 12.5% relative error), clamped to
// the exact observed Max.
type HistogramStats struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
}

// RuntimeStats is the Go runtime health block of /v1/stats, sampled from
// runtime/metrics at request time.
type RuntimeStats struct {
	Goroutines         int64   `json:"goroutines"`
	HeapBytes          uint64  `json:"heap_bytes"`
	GCCycles           uint64  `json:"gc_cycles"`
	GCPauseP50Sec      float64 `json:"gc_pause_p50_sec"`
	GCPauseP99Sec      float64 `json:"gc_pause_p99_sec"`
	GCPauseMaxSec      float64 `json:"gc_pause_max_sec"`
	SchedLatencyP50Sec float64 `json:"sched_latency_p50_sec"`
	SchedLatencyP99Sec float64 `json:"sched_latency_p99_sec"`
}

// StatsSnapshot is the reply to /v1/stats: a typed, point-in-time view of
// the pipeline's telemetry — the same numbers /metrics renders for
// Prometheus, shaped for programmatic consumers. It is assembled entirely
// from lock-free counters, loop-state mirrors and histogram snapshots, so
// the endpoint answers even when the event loop is wedged (mirror values
// are then the last state the loop published).
type StatsSnapshot struct {
	UptimeSec        float64 `json:"uptime_sec"`
	LastIngestAgeSec float64 `json:"last_ingest_age_sec"` // -1 before the first ingest
	LoopTickAgeSec   float64 `json:"loop_tick_age_sec"`   // -1 before the first lag probe
	Now              float64 `json:"now"`                 // stream clock
	Live             int     `json:"live"`
	Shards           int     `json:"shards"`

	Objects       uint64 `json:"objects"`
	Batches       uint64 `json:"batches"`
	IngestErrors  uint64 `json:"ingest_errors"`
	Notifications uint64 `json:"notifications"`
	Dropped       uint64 `json:"dropped"`
	TopKCommits   uint64 `json:"topk_commits"`
	Subscribers   int    `json:"subscribers"`

	// Ingest path (seconds unless noted).
	IngestAck     HistogramStats `json:"ingest_ack"`
	IngestParse   HistogramStats `json:"ingest_parse"`
	IngestBatch   HistogramStats `json:"ingest_batch_objects"` // objects per batch
	LoopQueueWait HistogramStats `json:"loop_queue_wait"`
	LoopApply     HistogramStats `json:"loop_apply"`
	LoopLag       HistogramStats `json:"loop_lag"`
	SSEDelivery   HistogramStats `json:"sse_delivery"`
	SSEBuffer     HistogramStats `json:"sse_buffer_occupancy"` // frames buffered per subscriber
	ShardFlush    HistogramStats `json:"shard_flush_events"`   // events per shipped shard batch
	ShardBarrier  HistogramStats `json:"shard_barrier_wait"`
	TopKResolve   HistogramStats `json:"topk_resolve"`
	TopKSolveWait HistogramStats `json:"topk_solve_wait"`
	TopKShards    HistogramStats `json:"topk_resolved_shards"` // shard solves per resolve

	// Throttled counts ingest chunks shed with 429 by admission control.
	Throttled uint64 `json:"throttled,omitempty"`

	// WAL is the durability block, nil on servers without -data-dir.
	WAL *WALStats `json:"wal,omitempty"`

	// Queries holds one telemetry row per registered query, in registry
	// order (a single-query server reports just its default query).
	Queries []QueryStats `json:"queries,omitempty"`

	Runtime RuntimeStats `json:"runtime"`
}

// WALStats is the durability block of /v1/stats on a server running with a
// write-ahead log.
type WALStats struct {
	SyncPolicy     string  `json:"sync_policy"` // always | interval | off
	Frames         uint64  `json:"frames"`      // frames appended since boot
	AppendedBytes  uint64  `json:"appended_bytes"`
	Segments       int     `json:"segments"`   // segment files on disk
	SizeBytes      int64   `json:"size_bytes"` // total segment bytes on disk
	LastSyncAgeSec float64 `json:"last_sync_age_sec"`
	Checkpoints    uint64  `json:"checkpoints"` // durable checkpoints written

	Append HistogramStats `json:"append"` // frame write (+ fsync under always)
	Fsync  HistogramStats `json:"fsync"`

	// Boot recovery summary (mirrors the /healthz fields).
	RecoveredBatches uint64  `json:"recovered_batches"`
	RecoveredObjects uint64  `json:"recovered_objects"`
	RecoverySec      float64 `json:"recovery_sec"`
	TornBytes        int64   `json:"torn_bytes"`

	// Degradation state machine (mirrors the /healthz fields).
	Durability       string  `json:"durability,omitempty"` // ok | degraded | recovered
	DegradedCount    uint64  `json:"degraded_count,omitempty"`
	RepairedCount    uint64  `json:"repaired_count,omitempty"`
	DegradedSec      float64 `json:"degraded_sec,omitempty"`
	CheckpointErrors uint64  `json:"checkpoint_errors,omitempty"`
	ShedDegraded     uint64  `json:"shed_degraded,omitempty"` // chunks shed with 503 while degraded
}

// QueryConfig declares one named query of a multi-tenant server: the wire
// form of POST /v1/queries bodies, surged's -queries file entries, and the
// config half of QueryInfo. Zero geometry fields inherit the server's
// default query options, so a sweep over one knob only has to state that
// knob.
type QueryConfig struct {
	// ID names the query in the registry and in /v1/queries/{id}/ paths:
	// 1-64 characters from [a-zA-Z0-9._-]. "default" is the query the
	// legacy single-query paths address.
	ID string `json:"id"`
	// Algorithm is the engine name as surged's -algo flag spells it (CCS,
	// B-CCS, Base, aG2, GAPS, MGAPS, Oracle); "" inherits the server's.
	Algorithm string `json:"algorithm,omitempty"`
	// Width/Height/Window/PastWindow/Alpha are the query options; zero
	// values inherit the server defaults (PastWindow additionally defaults
	// to Window, as in the library).
	Width      float64 `json:"width,omitempty"`
	Height     float64 `json:"height,omitempty"`
	Window     float64 `json:"window,omitempty"`
	PastWindow float64 `json:"past_window,omitempty"`
	Alpha      float64 `json:"alpha,omitempty"`
	// TopK is the maintained top-k's k (0 inherits the server's).
	TopK int `json:"topk,omitempty"`
	// TopKReplayOnly disables the maintained top-k for this query.
	TopKReplayOnly bool `json:"topk_replay_only,omitempty"`
	// BestFromEngines keeps the legacy dual-engine layout for this query
	// (see the server Config field of the same name).
	BestFromEngines bool `json:"best_from_engines,omitempty"`
	// Shards is the engine shard count for this query. 0 or 1 hosts a
	// single engine on the server's shared tenant workers — the layout that
	// scales to many queries; >= 2 gives this query its own shard pipeline.
	Shards         int `json:"shards,omitempty"`
	ShardBlockCols int `json:"shard_block_cols,omitempty"`
}

// QueryInfo describes one registry entry: its configuration (with inherited
// defaults resolved) plus a light liveness summary.
type QueryInfo struct {
	QueryConfig
	// Default reports whether this is the query the legacy single-query
	// paths address.
	Default bool `json:"default,omitempty"`
	// Continuous reports whether a maintained top-k chain serves this
	// query's /topk.
	Continuous bool `json:"continuous"`
	// Shared reports whether this query's engine state is shared with other
	// registry entries of identical configuration (boot-time dedup; the
	// answers are identical either way).
	Shared      bool    `json:"shared,omitempty"`
	Now         float64 `json:"now"`
	Live        int     `json:"live"`
	Subscribers int     `json:"subscribers"`
	Result      Result  `json:"result"`
}

// QueryList is the reply to GET /v1/queries, in registry (creation) order.
type QueryList struct {
	Queries []QueryInfo `json:"queries"`
}

// QueryStats is one query's telemetry block: the reply to
// /v1/queries/{id}/stats and the per-query rows of /v1/stats. Like the
// server-wide snapshot it is assembled lock-free from counters and mirrors.
type QueryStats struct {
	ID         string  `json:"id"`
	Algorithm  string  `json:"algorithm"`
	TopK       int     `json:"topk"`
	Continuous bool    `json:"continuous"`
	Shards     int     `json:"shards"`
	Now        float64 `json:"now"`
	Live       int     `json:"live"`
	Result     Result  `json:"result"`

	Notifications     uint64 `json:"notifications"`
	TopKNotifications uint64 `json:"topk_notifications"`
	// Dropped counts SSE frames this query's slow subscribers lost. The
	// accounting is exact and per-query ("delivered + dropped = published"
	// holds per subscriber), so one query's backlog never shows up in
	// another's numbers.
	Dropped     uint64 `json:"dropped"`
	Subscribers int    `json:"subscribers"`
	TopKFast    uint64 `json:"topk_fast"`
	TopKReplay  uint64 `json:"topk_replay"`
	Snapshots   uint64 `json:"snapshots"`
	Restores    uint64 `json:"restores"`
	Clamped     uint64 `json:"clamped"`
	// Err is this query's recorded pipeline error; the other queries keep
	// serving when one engine fails.
	Err string `json:"err,omitempty"`
}

// Error codes carried by Error.Code for failures a client is expected to
// branch on (everything else is prose in Error.Err).
const (
	// CodeOverloaded: the server shed the request (429) because its ingest
	// admission watermark was crossed; retry after Error.RetryAfterSec.
	CodeOverloaded = "overloaded"
	// CodeSeqOutOfOrder: the request's Ingest-Seq is lower than the newest
	// sequence the server has seen from that source — a stale retry the
	// client must not repeat.
	CodeSeqOutOfOrder = "seq_out_of_order"
	// CodeSeqConflict: another request with the same Ingest-Seq source is
	// in flight; serialise retries per source.
	CodeSeqConflict = "seq_conflict"
	// CodeDurabilityDegraded: the server shed the ingest (503) because its
	// write-ahead log cannot accept the batch; a background repair loop is
	// working, so retry after Error.RetryAfterSec (WithRetry does).
	CodeDurabilityDegraded = "durability_degraded"
	// CodeUnknownQuery: the request addressed a query id the registry does
	// not hold (404) — never created, or deleted. Retrying cannot help
	// (WithRetry gives up immediately); recreate the query or fix the id.
	CodeUnknownQuery = "unknown_query"
	// CodeQuotaExceeded: the request was rejected (429) because the
	// addressed query is at a configured per-query quota (e.g. its
	// subscriber cap). Retrying only helps once capacity frees up.
	CodeQuotaExceeded = "quota_exceeded"
)

// Sentinel errors matched by errors.Is against a decoded *Error.
var (
	ErrOverloaded    = errors.New("client: server overloaded")
	ErrSeqOutOfOrder = errors.New("client: ingest sequence out of order")
	ErrSeqConflict   = errors.New("client: ingest sequence in flight elsewhere")
	ErrDegraded      = errors.New("client: server durability degraded")
	ErrUnknownQuery  = errors.New("client: unknown query id")
	ErrQuotaExceeded = errors.New("client: query quota exceeded")
)

// Error is the JSON body of a non-2xx reply.
type Error struct {
	Err      string `json:"error"`
	Code     string `json:"code,omitempty"`     // machine-readable cause (Code* constants)
	Accepted int    `json:"accepted,omitempty"` // objects applied before the failure
	// RetryAfterSec mirrors the Retry-After header of a 429 reply (0 when
	// absent), so callers get the backoff hint without reaching into the
	// HTTP response.
	RetryAfterSec float64 `json:"retry_after_sec,omitempty"`

	// Status is the HTTP status code the error arrived with, filled in by
	// the client (transport metadata, not part of the JSON body).
	Status int `json:"-"`
}

// Error implements the error interface.
func (e *Error) Error() string { return e.Err }

// Is maps error codes to the package's sentinel errors, so callers can
// write errors.Is(err, client.ErrSeqOutOfOrder) without unwrapping.
func (e *Error) Is(target error) bool {
	switch target {
	case ErrOverloaded:
		return e.Code == CodeOverloaded
	case ErrSeqOutOfOrder:
		return e.Code == CodeSeqOutOfOrder
	case ErrSeqConflict:
		return e.Code == CodeSeqConflict
	case ErrDegraded:
		return e.Code == CodeDurabilityDegraded
	case ErrUnknownQuery:
		return e.Code == CodeUnknownQuery
	case ErrQuotaExceeded:
		return e.Code == CodeQuotaExceeded
	}
	return false
}

// FromObject converts a surge.Object to its wire form.
func FromObject(o surge.Object) Object {
	return Object{Time: o.Time, X: o.X, Y: o.Y, Weight: o.Weight}
}

// ToObject converts a wire object to a surge.Object.
func (o Object) ToObject() surge.Object {
	return surge.Object{Time: o.Time, X: o.X, Y: o.Y, Weight: o.Weight}
}

// FromResult converts a surge.Result to its wire form.
func FromResult(r surge.Result) Result {
	if !r.Found {
		return Result{}
	}
	return Result{
		Found: true,
		Score: r.Score,
		Region: &Region{
			MinX: r.Region.MinX, MinY: r.Region.MinY,
			MaxX: r.Region.MaxX, MaxY: r.Region.MaxY,
		},
	}
}

// ToResult converts a wire result back to a surge.Result.
func (r Result) ToResult() surge.Result {
	if !r.Found || r.Region == nil {
		return surge.Result{}
	}
	return surge.Result{
		Found: true,
		Score: r.Score,
		Region: surge.Region{
			MinX: r.Region.MinX, MinY: r.Region.MinY,
			MaxX: r.Region.MaxX, MaxY: r.Region.MaxY,
		},
	}
}
