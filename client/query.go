package client

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/url"
)

// Queries lists the server's query registry (GET /v1/queries) in creation
// order. A single-query server answers with just its default query.
func (c *Client) Queries(ctx context.Context) (*QueryList, error) {
	var out QueryList
	if err := c.getJSON(ctx, "/v1/queries", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// CreateQuery registers a new named query (POST /v1/queries) and returns
// its resolved configuration. The new query starts answering from the next
// ingested batch; it does not see the stream's past. Creating an id that
// already exists fails with a 409.
func (c *Client) CreateQuery(ctx context.Context, cfg QueryConfig) (*QueryInfo, error) {
	body, err := json.Marshal(cfg)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/queries", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	var out QueryInfo
	if err := c.doJSON(req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Query returns a handle scoped to one named query: the same read surface
// as the Client (Best, TopK, Stats, Snapshot, Restore, Subscribe) routed
// through /v1/queries/{id}/. Ingest stays on the Client — the stream is
// shared, every query sees every object. The handle performs no I/O until a
// method is called; addressing an id that does not exist fails with
// ErrUnknownQuery.
func (c *Client) Query(id string) *Query {
	return &Query{c: c, id: id, path: "/v1/queries/" + url.PathEscape(id)}
}

// Query is a client handle scoped to one named query. Safe for concurrent
// use, like the Client it came from.
type Query struct {
	c    *Client
	id   string
	path string
}

// ID returns the query id this handle addresses.
func (q *Query) ID() string { return q.id }

// Info returns the query's registry entry (GET /v1/queries/{id}).
func (q *Query) Info(ctx context.Context) (*QueryInfo, error) {
	var out QueryInfo
	if err := q.c.getJSON(ctx, q.path, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Delete removes the query from the registry (DELETE /v1/queries/{id}).
// Its subscribers are disconnected and later requests for the id fail with
// ErrUnknownQuery. Deleting the default query is rejected.
func (q *Query) Delete(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, q.c.base+q.path, nil)
	if err != nil {
		return err
	}
	resp, err := q.c.do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNoContent {
		return decodeError(resp)
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

// Best returns the query's current bursty region and stream clock.
func (q *Query) Best(ctx context.Context) (*State, error) {
	var out State
	if err := q.c.getJSON(ctx, q.path+"/best", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// TopK returns the query's top-k bursty regions (see Client.TopK).
func (q *Query) TopK(ctx context.Context, k int) (*TopK, error) {
	return q.TopKMode(ctx, k, "")
}

// TopKMode is TopK with an explicit serving mode (see Client.TopKMode).
func (q *Query) TopKMode(ctx context.Context, k int, mode string) (*TopK, error) {
	var out TopK
	if err := q.c.getJSON(ctx, topkPath(q.path+"/topk", k, mode), &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Stats returns the query's telemetry block, served lock-free.
func (q *Query) Stats(ctx context.Context) (*QueryStats, error) {
	var out QueryStats
	if err := q.c.getJSON(ctx, q.path+"/stats", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Snapshot returns a detector checkpoint of this query's engine state.
func (q *Query) Snapshot(ctx context.Context) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, q.c.base+q.path+"/snapshot", nil)
	if err != nil {
		return nil, err
	}
	resp, err := q.c.do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	return io.ReadAll(resp.Body)
}

// Restore replaces this query's engine state with a checkpoint and returns
// the query's new state. Other queries are untouched.
func (q *Query) Restore(ctx context.Context, checkpoint []byte) (*State, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, q.c.base+q.path+"/restore", bytes.NewReader(checkpoint))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	var out State
	if err := q.c.doJSON(req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Subscribe opens the query's notification stream (see Client.Subscribe).
// Each query has its own event feed with its own event ids and exact
// per-subscriber drop accounting.
func (q *Query) Subscribe(ctx context.Context) (*Subscription, error) {
	return q.c.subscribe(ctx, q.path+"/subscribe", "")
}

// SubscribeFromCursor resumes the query's notification stream from a Cursor
// of a previous subscription to the same query (see
// Client.SubscribeFromCursor).
func (q *Query) SubscribeFromCursor(ctx context.Context, cursor string) (*Subscription, error) {
	if cursor != "" {
		if _, _, err := parseCursor(cursor); err != nil {
			return nil, err
		}
	}
	return q.c.subscribe(ctx, q.path+"/subscribe", cursor)
}
