package surge_test

import (
	"math"
	"testing"

	"surge"
)

// bitEqualTopK asserts two top-k answers report bitwise-identical scores
// and found flags at every rank. Regions are canonical up to equal-score
// anchor ties (the same caveat as the sharded single-region pipeline), so
// they are checked for query shape rather than exact geometry.
func bitEqualTopK(t *testing.T, label string, a, b []surge.Result) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: rank counts %d vs %d", label, len(a), len(b))
	}
	for i := range a {
		if a[i].Found != b[i].Found ||
			math.Float64bits(a[i].Score) != math.Float64bits(b[i].Score) {
			t.Fatalf("%s rank %d: %+v != %+v", label, i, a[i], b[i])
		}
	}
}

// copyResults snapshots a reused result slice.
func copyResults(res []surge.Result) []surge.Result {
	return append([]surge.Result(nil), res...)
}

// TestTopKContinuousEqualsReplay is the continuous-vs-replay equivalence
// guarantee behind O(1) top-k serving: at any point of a randomized stream,
// a continuously maintained top-k detector reports bitwise the same scores
// as replaying a checkpoint of the live windows into a fresh detector
// (surge.RestoreTopK) — for kCCS, kGAPS and kMGAPS — including across a
// snapshot→restore cycle of the maintained detector itself.
func TestTopKContinuousEqualsReplay(t *testing.T) {
	const k = 4
	for _, alg := range []surge.Algorithm{surge.CellCSPOT, surge.GridApprox, surge.MultiGrid} {
		maintained, err := surge.NewTopK(alg, opts(), k)
		if err != nil {
			t.Fatal(err)
		}
		det, err := surge.New(surge.CellCSPOT, opts()) // checkpoint source
		if err != nil {
			t.Fatal(err)
		}
		objs := randomObjects(271, 900, 5)
		for n, o := range objs {
			cont, err := maintained.Push(o)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := det.Push(o); err != nil {
				t.Fatal(err)
			}
			if n%113 != 0 && n != len(objs)-1 {
				continue
			}
			ckpt, err := det.Checkpoint()
			if err != nil {
				t.Fatal(err)
			}
			replayed, err := surge.RestoreTopK(alg, ckpt, k)
			if err != nil {
				t.Fatal(err)
			}
			bitEqualTopK(t, alg.String()+" continuous vs replay", cont, replayed.BestK())

			// The maintained detector's own checkpoint must resume to the
			// same answer too (snapshot→restore cycle).
			own, err := maintained.Checkpoint()
			if err != nil {
				t.Fatal(err)
			}
			resumed, err := surge.RestoreTopK(alg, own, k)
			if err != nil {
				t.Fatal(err)
			}
			bitEqualTopK(t, alg.String()+" snapshot/restore", cont, resumed.BestK())
		}
		det.Close()
	}
}

// TestTopKSnapshotRestoreResume continues the stream after a
// snapshot→restore cycle and checks the resumed maintained detector stays
// bitwise equal to the uninterrupted one.
func TestTopKSnapshotRestoreResume(t *testing.T) {
	const k = 3
	for _, alg := range []surge.Algorithm{surge.CellCSPOT, surge.GridApprox, surge.MultiGrid} {
		orig, err := surge.NewTopK(alg, opts(), k)
		if err != nil {
			t.Fatal(err)
		}
		objs := randomObjects(83, 800, 5)
		cut := 500
		for _, o := range objs[:cut] {
			if _, err := orig.Push(o); err != nil {
				t.Fatal(err)
			}
		}
		ckpt, err := orig.Checkpoint()
		if err != nil {
			t.Fatal(err)
		}
		resumed, err := surge.RestoreTopK(alg, ckpt, k)
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range objs[cut:] {
			a, err := orig.Push(o)
			if err != nil {
				t.Fatal(err)
			}
			b, err := resumed.Push(o)
			if err != nil {
				t.Fatal(err)
			}
			bitEqualTopK(t, alg.String()+" resumed", a, b)
		}
	}
}

// TestAttachTopK pins the maintained serving path's core mechanism: a
// top-k detector attached to a running detector mid-stream — sharded or
// not — answers bitwise like a standalone detector fed the whole stream,
// and stays in lockstep as the parent keeps ingesting (Push, PushBatch and
// AdvanceTo all maintain it).
func TestAttachTopK(t *testing.T) {
	const k = 3
	for _, shards := range []int{1, 3} {
		o := opts()
		o.Shards = shards
		parent, err := surge.New(surge.CellCSPOT, o)
		if err != nil {
			t.Fatal(err)
		}
		reference, err := surge.NewTopK(surge.CellCSPOT, opts(), k)
		if err != nil {
			t.Fatal(err)
		}
		objs := randomObjects(59, 700, 5)
		cut := 300
		for _, ob := range objs[:cut] {
			if _, err := parent.Push(ob); err != nil {
				t.Fatal(err)
			}
			if _, err := reference.Push(ob); err != nil {
				t.Fatal(err)
			}
		}
		attached, err := parent.AttachTopK(surge.CellCSPOT, k)
		if err != nil {
			t.Fatal(err)
		}
		if !attached.Attached() {
			t.Fatal("attached detector does not report Attached")
		}
		if _, err := attached.Push(objs[cut]); err != surge.ErrAttached {
			t.Fatalf("Push on attached detector returned %v, want ErrAttached", err)
		}
		bitEqualTopK(t, "attach seed", attached.BestK(), reference.BestK())

		// Mixed batch sizes exercise Push and PushBatch on the parent.
		for lo := cut; lo < len(objs); {
			hi := min(lo+37, len(objs))
			if _, err := parent.PushBatch(objs[lo:hi]); err != nil {
				t.Fatal(err)
			}
			if _, err := reference.PushBatch(objs[lo:hi]); err != nil {
				t.Fatal(err)
			}
			bitEqualTopK(t, "attach lockstep", attached.BestK(), reference.BestK())
			lo = hi
		}
		end := objs[len(objs)-1].Time + 1000
		if _, err := parent.AdvanceTo(end); err != nil {
			t.Fatal(err)
		}
		if _, err := reference.AdvanceTo(end); err != nil {
			t.Fatal(err)
		}
		bitEqualTopK(t, "attach drained", attached.BestK(), reference.BestK())
		if attached.Now() != parent.Now() {
			t.Fatalf("attached clock %v != parent %v", attached.Now(), parent.Now())
		}

		// Detaching stops maintenance.
		if err := attached.Close(); err != nil {
			t.Fatal(err)
		}
		before := copyResults(attached.BestK())
		if _, err := parent.Push(surge.Object{X: 1, Y: 1, Weight: 500, Time: end + 1}); err != nil {
			t.Fatal(err)
		}
		bitEqualTopK(t, "detached frozen", attached.BestK(), before)
		parent.Close()
	}
}

// TestTopKResultsBufferReuse documents the query methods' buffer-reuse
// contract: the returned slice is overwritten by the next call.
func TestTopKResultsBufferReuse(t *testing.T) {
	d, err := surge.NewTopK(surge.CellCSPOT, opts(), 2)
	if err != nil {
		t.Fatal(err)
	}
	res1, err := d.Push(surge.Object{X: 1, Y: 1, Weight: 5, Time: 0})
	if err != nil {
		t.Fatal(err)
	}
	saved := copyResults(res1)
	res2, err := d.Push(surge.Object{X: 30, Y: 30, Weight: 50, Time: 1})
	if err != nil {
		t.Fatal(err)
	}
	if &res1[0] != &res2[0] {
		t.Fatal("query methods must reuse the result buffer")
	}
	if saved[0].Score == res2[0].Score {
		t.Fatal("weak test: the second push should have changed rank 0")
	}
}
