// Command surgebench regenerates the tables and figures of the SURGE paper's
// evaluation (Section VII) on synthetic workloads matching the published
// dataset envelopes. See DESIGN.md for the experiment index and EXPERIMENTS.md
// for recorded results.
//
// Usage:
//
//	surgebench -exp all                 # every experiment, laptop scale
//	surgebench -exp fig5,table2         # a subset
//	surgebench -exp fig8 -full          # paper-scale arrival rates
//	surgebench -list                    # show experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"surge/internal/bench"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		list      = flag.Bool("list", false, "list experiment ids and exit")
		seed      = flag.Uint64("seed", 1, "workload seed")
		alpha     = flag.Float64("alpha", 0.5, "burst-score balance parameter")
		k         = flag.Int("k", 5, "k for the top-k experiments")
		rateScale = flag.Float64("rate-scale", 0.1, "arrival-rate scale (1 = paper rates)")
		maxExact  = flag.Int("max-exact", 8000, "measured objects per point for exact engines")
		maxApprox = flag.Int("max-approx", 120000, "measured objects per point for approximate engines")
		full      = flag.Bool("full", false, "paper scale: rate-scale=1, larger samples")
		jsonDir   = flag.String("json-dir", ".", "directory for machine-readable results (BENCH_*.json); empty disables")
		obsMax    = flag.Float64("obs-overhead-max", 0, "fail the hotpath experiment if observability overhead exceeds this percent (0 = report only)")
	)
	flag.Parse()

	if *list {
		for _, id := range bench.Experiments() {
			fmt.Println(id)
		}
		return
	}

	o := bench.DefaultOptions(os.Stdout)
	o.Seed = *seed
	o.Alpha = *alpha
	o.K = *k
	o.RateScale = *rateScale
	o.MaxExact = *maxExact
	o.MaxApprox = *maxApprox
	o.JSONDir = *jsonDir
	o.ObsOverheadMaxPct = *obsMax
	if *full {
		o.RateScale = 1
		o.MaxExact = 50000
		o.MaxApprox = 1000000
	}

	ids := bench.Experiments()
	if *exp != "all" {
		ids = strings.Split(*exp, ",")
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		start := time.Now()
		if err := bench.Run(id, o); err != nil {
			fmt.Fprintf(os.Stderr, "surgebench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("[%s done in %v]\n", id, time.Since(start).Round(time.Millisecond))
	}
}
