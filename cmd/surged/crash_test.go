package main

import (
	"context"
	"fmt"
	"math/rand/v2"
	"net"
	"net/http"
	"os"
	"os/exec"
	"reflect"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"surge"
	"surge/client"
	"surge/internal/server"
)

// childEnv re-executes this test binary as a surged serve process: the
// fault-injection tests need a real subprocess they can kill -9 mid-
// stream, which an in-process server cannot model.
const childEnv = "SURGED_CRASH_SERVE_ARGS"

func TestMain(m *testing.M) {
	if args := os.Getenv(childEnv); args != "" {
		if err := runServe(strings.Split(args, "\x1f")); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// startChild launches a surged serve subprocess with the given flags.
func startChild(t *testing.T, args ...string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), childEnv+"="+strings.Join(args, "\x1f"))
	if testing.Verbose() {
		cmd.Stderr = os.Stderr
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	return cmd
}

// crashBatches is the deterministic test stream: nBatch requests of per
// objects each, with a drifting hotspot and ~20% late timestamps so the
// clamp policy does real work that recovery must reproduce bit-for-bit.
func crashBatches(nBatch, per int) [][]surge.Object {
	rng := rand.New(rand.NewPCG(77, 78))
	out := make([][]surge.Object, nBatch)
	tm := 0.0
	for b := range out {
		batch := make([]surge.Object, per)
		for i := range batch {
			tm += rng.ExpFloat64() * 0.4
			o := surge.Object{Time: tm, X: rng.Float64() * 4, Y: rng.Float64() * 4, Weight: 1 + rng.Float64()*9}
			if rng.IntN(5) == 0 {
				o.Time = tm - 1 - rng.Float64()*5 // late: will be clamped
			}
			if i%3 == 0 {
				o.X = 2 + rng.Float64()*0.5
				o.Y = 2 + rng.Float64()*0.5
			}
			batch[i] = o
		}
		out[b] = batch
	}
	return out
}

// referenceRun feeds the whole stream to an uninterrupted in-process
// server with the same configuration and returns the ack of every batch
// plus a query client. The crashed-and-recovered subprocess must match it
// bitwise at every compared point.
func referenceRun(t *testing.T, shards int, batches [][]surge.Object) (*server.Server, []*client.IngestResult) {
	t.Helper()
	s, err := server.New(server.Config{
		Algorithm:  surge.CellCSPOT,
		Options:    surge.Options{Width: 1, Height: 1, Window: 60, Alpha: 0.5, Shards: shards},
		BatchSize:  4,
		TimePolicy: server.Clamp,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	srv := newLoopbackServer(t, s)
	c := client.New(srv)
	acks := make([]*client.IngestResult, len(batches))
	for i, b := range batches {
		ack, err := c.IngestSeq(context.Background(), "crash", uint64(i+1), b)
		if err != nil {
			t.Fatal(err)
		}
		acks[i] = ack
	}
	return s, acks
}

// newLoopbackServer serves s.Handler() on a loopback listener and returns
// its base URL.
func newLoopbackServer(t *testing.T, s *server.Server) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go http.Serve(ln, s.Handler())
	t.Cleanup(func() { ln.Close() })
	return "http://" + ln.Addr().String()
}

func compareAnswers(t *testing.T, label string, got, want *client.Client) {
	t.Helper()
	ctx := context.Background()
	gb, err := got.Best(ctx)
	if err != nil {
		t.Fatal(err)
	}
	wb, err := want.Best(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gb.Result, wb.Result) || gb.Now != wb.Now || gb.Live != wb.Live {
		t.Fatalf("%s: best diverged:\ngot  result=%+v now=%v live=%d\nwant result=%+v now=%v live=%d",
			label, gb.Result, gb.Now, gb.Live, wb.Result, wb.Now, wb.Live)
	}
	gt, err := got.TopK(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	wt, err := want.TopK(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gt.Results, wt.Results) {
		t.Fatalf("%s: topk diverged:\ngot  %s\nwant %s", label, fmtResults(gt.Results), fmtResults(wt.Results))
	}
}

// fmtResults renders wire results with the region rectangles dereferenced,
// so a divergence in a tie-broken region is visible in the failure output.
func fmtResults(rs []client.Result) string {
	var b strings.Builder
	for i, r := range rs {
		fmt.Fprintf(&b, "\n  [%d] found=%v score=%v", i, r.Found, r.Score)
		if r.Region != nil {
			fmt.Fprintf(&b, " region=%+v", *r.Region)
		}
	}
	return b.String()
}

// TestCrashRecoveryKill9 is the fault-injection harness: stream sequenced
// batches into a surged subprocess, SIGKILL it with a request in flight,
// restart it from the same -data-dir, retry the uncertain batch (the
// dedupe must make the retry effectively-once regardless of how much of it
// was applied), finish the stream, and require every compared answer to be
// bitwise identical to an uninterrupted reference run.
//
// Short mode runs one combination with a fixed kill point; full mode runs
// shard counts {1,2,4} x all three sync policies with randomized kill
// points (the seed is logged for reproduction).
func TestCrashRecoveryKill9(t *testing.T) {
	type combo struct {
		shards int
		sync   string
	}
	combos := []combo{{2, "5ms"}}
	if !testing.Short() {
		combos = combos[:0]
		for _, sh := range []int{1, 2, 4} {
			for _, sy := range []string{"always", "5ms", "off"} {
				combos = append(combos, combo{sh, sy})
			}
		}
	}
	seed := uint64(time.Now().UnixNano())
	t.Logf("randomized kill points from seed %d", seed)
	rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))

	const nBatch, per = 18, 15
	batches := crashBatches(nBatch, per)

	for _, cb := range combos {
		t.Run(fmt.Sprintf("shards=%d_sync=%s", cb.shards, cb.sync), func(t *testing.T) {
			refSrv, refAcks := referenceRun(t, cb.shards, batches)
			refURL := newLoopbackServer(t, refSrv)
			ref := client.New(refURL)

			dir := t.TempDir()
			addr := freePort(t)
			serveArgs := []string{
				"-addr", addr, "-algo", "CCS", "-width", "1", "-height", "1",
				"-window", "60", "-alpha", "0.5", "-batch", "4",
				"-shards", strconv.Itoa(cb.shards),
				"-data-dir", dir, "-wal-sync", cb.sync,
				"-checkpoint-every", "150ms",
			}
			child := startChild(t, serveArgs...)
			base := "http://" + addr
			c := client.New(base, client.WithRetry(client.RetryPolicy{
				MaxAttempts: 5, BaseDelay: 20 * time.Millisecond,
			}))
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			waitHealthy(ctx, t, c)

			// Acked prefix, then a kill with the next request in flight.
			killAfter := 6
			if !testing.Short() {
				killAfter = 3 + int(rng.Uint64()%uint64(nBatch-6))
			}
			for i := 0; i < killAfter; i++ {
				ack, err := c.IngestSeq(ctx, "crash", uint64(i+1), batches[i])
				if err != nil {
					t.Fatalf("batch %d: %v", i+1, err)
				}
				if !reflect.DeepEqual(ack, refAcks[i]) {
					t.Fatalf("batch %d ack diverged from reference:\ngot  %+v\nwant %+v", i+1, ack, refAcks[i])
				}
			}
			inflight := make(chan struct{})
			go func() {
				defer close(inflight)
				// No retry here: this request races the SIGKILL on purpose;
				// its outcome is unknown — exactly the uncertainty the
				// post-restart retry must resolve.
				plain := client.New(base)
				plain.IngestSeq(ctx, "crash", uint64(killAfter+1), batches[killAfter])
			}()
			delay := 2 * time.Millisecond
			if !testing.Short() {
				delay = time.Duration(rng.Uint64()%8) * time.Millisecond
			}
			time.Sleep(delay)
			if err := child.Process.Kill(); err != nil { // SIGKILL: no cleanup runs
				t.Fatal(err)
			}
			child.Wait()
			<-inflight

			// Restart from the data directory; recovery replays the WAL.
			child = startChild(t, serveArgs...)
			defer func() {
				child.Process.Signal(syscall.SIGTERM)
				child.Wait()
			}()
			waitHealthy(ctx, t, c)
			h, err := c.Health(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if !h.Durable {
				t.Fatal("restarted server does not report durable mode")
			}

			// Retry the uncertain batch: whether the kill landed before,
			// during or after its apply, the dedupe must produce the ack the
			// crash-free run produced — applying nothing twice.
			ack, err := c.IngestSeq(ctx, "crash", uint64(killAfter+1), batches[killAfter])
			if err != nil {
				t.Fatalf("retry of uncertain batch %d: %v", killAfter+1, err)
			}
			if !reflect.DeepEqual(ack, refAcks[killAfter]) {
				t.Fatalf("retried batch %d ack diverged:\ngot  %+v\nwant %+v", killAfter+1, ack, refAcks[killAfter])
			}

			// The acked prefix (now batches 1..killAfter+1) must match a
			// reference run over exactly that prefix, bitwise.
			prefSrv, _ := referenceRun(t, cb.shards, batches[:killAfter+1])
			compareAnswers(t, "acked prefix after recovery", c, client.New(newLoopbackServer(t, prefSrv)))

			// Finish the stream; the final state must match the full
			// uninterrupted run.
			for i := killAfter + 1; i < nBatch; i++ {
				ack, err := c.IngestSeq(ctx, "crash", uint64(i+1), batches[i])
				if err != nil {
					t.Fatalf("batch %d: %v", i+1, err)
				}
				if !reflect.DeepEqual(ack, refAcks[i]) {
					t.Fatalf("batch %d ack diverged:\ngot  %+v\nwant %+v", i+1, ack, refAcks[i])
				}
			}
			compareAnswers(t, "final state", c, ref)
		})
	}
}
