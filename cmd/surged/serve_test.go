package main

import (
	"context"
	"net"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"surge/client"
)

// TestRunServeEndToEnd boots the serve subcommand on a free port, ingests
// a small stream, checkpoints it via SIGTERM and reboots from the file.
func TestRunServeEndToEnd(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	ckpt := filepath.Join(t.TempDir(), "surge.ckpt")

	done := make(chan error, 1)
	go func() {
		done <- runServe([]string{
			"-addr", addr, "-algo", "CCS", "-width", "1", "-height", "1",
			"-window", "60", "-shards", "2", "-checkpoint", ckpt,
		})
	}()

	c := client.New("http://" + addr)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	waitHealthy(ctx, t, c)

	body := "1,2,2,5\n2,2.1,2.1,5\n3,2.05,2.05,5\n"
	res, err := c.IngestStream(ctx, strings.NewReader(body), client.CSV)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 3 {
		t.Fatalf("accepted %d, want 3", res.Accepted)
	}

	// SIGTERM: graceful shutdown must write the checkpoint.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("runServe: %v", err)
		}
	case <-ctx.Done():
		t.Fatal("serve did not shut down on SIGTERM")
	}
	data, err := os.ReadFile(ckpt)
	if err != nil || len(data) == 0 {
		t.Fatalf("no checkpoint written: %v", err)
	}

	// Reboot from the checkpoint; the live set must survive.
	go func() {
		done <- runServe([]string{
			"-addr", addr, "-algo", "CCS", "-width", "1", "-height", "1",
			"-window", "60", "-shards", "3", "-restore", ckpt,
		})
	}()
	waitHealthy(ctx, t, c)
	st, err := c.Best(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Live != 3 || st.Shards != 3 {
		t.Fatalf("rebooted state live=%d shards=%d, want 3/3", st.Live, st.Shards)
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("second runServe: %v", err)
		}
	case <-ctx.Done():
		t.Fatal("second serve did not shut down")
	}
}

func TestRunServeRejectsBadFlags(t *testing.T) {
	if err := runServe([]string{"-algo", "bogus"}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if err := runServe([]string{"-time-policy", "loose"}); err == nil {
		t.Fatal("unknown time policy accepted")
	}
	if err := runServe([]string{"-shards", "-2"}); err == nil {
		t.Fatal("negative shards accepted")
	}
	if err := runServe([]string{"-topk", "-1"}); err == nil {
		t.Fatal("negative topk accepted")
	}
	if err := runServe([]string{"-restore", "/nonexistent/surge.ckpt"}); err == nil {
		t.Fatal("missing restore file accepted")
	}
	// The -restore/-data-dir conflict is a flag error, so it must be
	// rejected before serve touches either path (including paths that do
	// not exist yet).
	err := runServe([]string{"-restore", "/nonexistent/surge.ckpt", "-data-dir", "/nonexistent/dir"})
	if err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("restore+data-dir conflict not rejected as such: %v", err)
	}
	if err := runServe([]string{"-queries", "/nonexistent/queries.json"}); err == nil {
		t.Fatal("missing queries file accepted")
	}
	badq := filepath.Join(t.TempDir(), "queries.json")
	if err := os.WriteFile(badq, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runServe([]string{"-queries", badq}); err == nil {
		t.Fatal("malformed queries file accepted")
	}
	if err := os.WriteFile(badq, []byte(`[{"id":"default"}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runServe([]string{"-addr", "127.0.0.1:0", "-queries", badq}); err == nil {
		t.Fatal("queries file redeclaring \"default\" accepted")
	}
}

func waitHealthy(ctx context.Context, t *testing.T, c *client.Client) {
	t.Helper()
	for {
		if h, err := c.Health(ctx); err == nil && h.OK {
			return
		}
		select {
		case <-ctx.Done():
			t.Fatal("server never became healthy")
		case <-time.After(20 * time.Millisecond):
		}
	}
}
