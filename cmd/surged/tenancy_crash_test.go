package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"syscall"
	"testing"
	"time"

	"surge"
	"surge/client"
	"surge/internal/server"
)

// queryReader is the read surface shared by a Client and a Query handle,
// so the bitwise comparisons below cover legacy and per-query paths alike.
type queryReader interface {
	Best(ctx context.Context) (*client.State, error)
	TopK(ctx context.Context, k int) (*client.TopK, error)
}

func compareQueryAnswers(t *testing.T, label string, got, want queryReader) {
	t.Helper()
	ctx := context.Background()
	gb, err := got.Best(ctx)
	if err != nil {
		t.Fatalf("%s: best: %v", label, err)
	}
	wb, err := want.Best(ctx)
	if err != nil {
		t.Fatalf("%s: ref best: %v", label, err)
	}
	if !reflect.DeepEqual(gb.Result, wb.Result) || gb.Now != wb.Now || gb.Live != wb.Live {
		t.Fatalf("%s: best diverged:\ngot  result=%+v now=%v live=%d\nwant result=%+v now=%v live=%d",
			label, gb.Result, gb.Now, gb.Live, wb.Result, wb.Now, wb.Live)
	}
	gt, err := got.TopK(ctx, 0)
	if err != nil {
		t.Fatalf("%s: topk: %v", label, err)
	}
	wt, err := want.TopK(ctx, 0)
	if err != nil {
		t.Fatalf("%s: ref topk: %v", label, err)
	}
	if !reflect.DeepEqual(gt.Results, wt.Results) {
		t.Fatalf("%s: topk diverged:\ngot  %s\nwant %s", label, fmtResults(gt.Results), fmtResults(wt.Results))
	}
}

// TestMultiQueryCrashRecoveryKill9 is the tenancy fault-injection harness:
// a surged subprocess hosting four queries — the default, two declared via
// -queries (one of them sharing the default's engine slot) and one created
// over the wire mid-stream — is SIGKILLed with a request in flight and
// restarted from its -data-dir. The recovered registry must hold all four
// queries and every one of them must answer bitwise identically to an
// uninterrupted in-process reference fed the same sequenced stream.
func TestMultiQueryCrashRecoveryKill9(t *testing.T) {
	shardCounts := []int{2}
	if !testing.Short() {
		shardCounts = []int{1, 2, 4}
	}
	const nBatch, per, killAfter, createAfter = 18, 15, 9, 5
	batches := crashBatches(nBatch, per)
	runtimeQuery := client.QueryConfig{ID: "ops", Width: 2, TopK: 3}

	for _, shards := range shardCounts {
		t.Run("shards="+strconv.Itoa(shards), func(t *testing.T) {
			bootQueries := []client.QueryConfig{
				{ID: "wide", Width: 2, Window: 90, Shards: shards},
				{ID: "twin", Shards: shards},
			}
			runtimeQuery.Shards = shards

			// Uninterrupted reference with the same registry timeline.
			refSrv, err := server.New(server.Config{
				Algorithm:  surge.CellCSPOT,
				Options:    surge.Options{Width: 1, Height: 1, Window: 60, Alpha: 0.5, Shards: shards},
				BatchSize:  4,
				TimePolicy: server.Clamp,
				Queries:    bootQueries,
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { refSrv.Close() })
			ref := client.New(newLoopbackServer(t, refSrv))
			ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
			defer cancel()
			refAcks := make([]*client.IngestResult, nBatch)
			for i, b := range batches {
				if i == createAfter {
					if _, err := ref.CreateQuery(ctx, runtimeQuery); err != nil {
						t.Fatal(err)
					}
				}
				ack, err := ref.IngestSeq(ctx, "crash", uint64(i+1), b)
				if err != nil {
					t.Fatal(err)
				}
				refAcks[i] = ack
			}

			qfile := filepath.Join(t.TempDir(), "queries.json")
			qjson, err := json.Marshal(bootQueries)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(qfile, qjson, 0o644); err != nil {
				t.Fatal(err)
			}
			dir := t.TempDir()
			addr := freePort(t)
			serveArgs := []string{
				"-addr", addr, "-algo", "CCS", "-width", "1", "-height", "1",
				"-window", "60", "-alpha", "0.5", "-batch", "4",
				"-shards", strconv.Itoa(shards),
				"-queries", qfile,
				"-data-dir", dir, "-wal-sync", "5ms",
				"-checkpoint-every", "150ms",
			}
			child := startChild(t, serveArgs...)
			base := "http://" + addr
			c := client.New(base, client.WithRetry(client.RetryPolicy{
				MaxAttempts: 5, BaseDelay: 20 * time.Millisecond,
			}))
			waitHealthy(ctx, t, c)

			for i := 0; i < killAfter; i++ {
				if i == createAfter {
					if _, err := c.CreateQuery(ctx, runtimeQuery); err != nil {
						t.Fatal(err)
					}
				}
				ack, err := c.IngestSeq(ctx, "crash", uint64(i+1), batches[i])
				if err != nil {
					t.Fatalf("batch %d: %v", i+1, err)
				}
				if !reflect.DeepEqual(ack, refAcks[i]) {
					t.Fatalf("batch %d ack diverged:\ngot  %+v\nwant %+v", i+1, ack, refAcks[i])
				}
			}
			inflight := make(chan struct{})
			go func() {
				defer close(inflight)
				plain := client.New(base)
				plain.IngestSeq(ctx, "crash", uint64(killAfter+1), batches[killAfter])
			}()
			time.Sleep(2 * time.Millisecond)
			if err := child.Process.Kill(); err != nil {
				t.Fatal(err)
			}
			child.Wait()
			<-inflight

			child = startChild(t, serveArgs...)
			defer func() {
				child.Process.Signal(syscall.SIGTERM)
				child.Wait()
			}()
			waitHealthy(ctx, t, c)

			// The registry survived: all four queries, in creation order.
			ql, err := c.Queries(ctx)
			if err != nil {
				t.Fatal(err)
			}
			var ids []string
			for _, q := range ql.Queries {
				ids = append(ids, q.ID)
			}
			want := []string{"default", "wide", "twin", "ops"}
			if !reflect.DeepEqual(ids, want) {
				t.Fatalf("recovered registry %v, want %v", ids, want)
			}

			// Resolve the uncertain batch and finish the stream.
			for i := killAfter; i < nBatch; i++ {
				ack, err := c.IngestSeq(ctx, "crash", uint64(i+1), batches[i])
				if err != nil {
					t.Fatalf("batch %d: %v", i+1, err)
				}
				if !reflect.DeepEqual(ack, refAcks[i]) {
					t.Fatalf("batch %d ack diverged:\ngot  %+v\nwant %+v", i+1, ack, refAcks[i])
				}
			}
			compareQueryAnswers(t, "default after recovery", c, ref)
			for _, id := range []string{"wide", "twin", "ops"} {
				compareQueryAnswers(t, fmt.Sprintf("query %q after recovery", id), c.Query(id), ref.Query(id))
			}
		})
	}
}
