package main

import (
	"strings"
	"testing"

	"surge"
)

func TestParseAlgo(t *testing.T) {
	cases := map[string]surge.Algorithm{
		"CCS":    surge.CellCSPOT,
		"ccs":    surge.CellCSPOT,
		"B-CCS":  surge.StaticBound,
		"BCCS":   surge.StaticBound,
		"base":   surge.Baseline,
		"ag2":    surge.AG2,
		"GAPS":   surge.GridApprox,
		"mgaps":  surge.MultiGrid,
		"Oracle": surge.Oracle,
	}
	for in, want := range cases {
		got, err := parseAlgo(in)
		if err != nil || got != want {
			t.Errorf("parseAlgo(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := parseAlgo("bogus"); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestForEachObject(t *testing.T) {
	input := strings.NewReader(`
# comment lines and blanks are skipped

1.0, 2.0, 3.0, 4.0
2.5,1,1,10
`)
	var objs []surge.Object
	err := forEachObject(input, func(o surge.Object) error {
		objs = append(objs, o)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 2 {
		t.Fatalf("parsed %d objects, want 2", len(objs))
	}
	if objs[0] != (surge.Object{Time: 1, X: 2, Y: 3, Weight: 4}) {
		t.Fatalf("first object = %+v", objs[0])
	}
	if objs[1].Weight != 10 || objs[1].Time != 2.5 {
		t.Fatalf("second object = %+v", objs[1])
	}
}

func TestForEachObjectErrors(t *testing.T) {
	if err := forEachObject(strings.NewReader("1,2,3\n"), func(surge.Object) error { return nil }); err == nil {
		t.Error("short line accepted")
	}
	if err := forEachObject(strings.NewReader("a,2,3,4\n"), func(surge.Object) error { return nil }); err == nil {
		t.Error("non-numeric field accepted")
	}
}

func TestRegionChanged(t *testing.T) {
	a := surge.Result{Found: true, Score: 1, Region: surge.Region{MaxX: 1, MaxY: 1}}
	same := a
	if regionChanged(a, same) {
		t.Error("identical results flagged as change")
	}
	b := a
	b.Score = 2
	if !regionChanged(a, b) {
		t.Error("score change missed")
	}
	c := a
	c.Region.MaxX = 2
	if !regionChanged(a, c) {
		t.Error("region move missed")
	}
	if !regionChanged(surge.Result{}, a) {
		t.Error("found transition missed")
	}
	if regionChanged(surge.Result{}, surge.Result{}) {
		t.Error("empty-to-empty flagged")
	}
}

func TestRunSingleOnDemoStream(t *testing.T) {
	opt := surge.Options{Width: 1, Height: 1, Window: 60, Alpha: 0.5}
	src := demoStream(&opt)
	if err := runSingle(surge.GridApprox, opt, src, 1000, 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleShardedBatched(t *testing.T) {
	opt := surge.Options{Width: 1, Height: 1, Window: 60, Alpha: 0.5, Shards: 3}
	src := demoStream(&opt)
	if err := runSingle(surge.CellCSPOT, opt, src, 1000, 256); err != nil {
		t.Fatal(err)
	}
}

func TestRunTopKOnDemoStream(t *testing.T) {
	opt := surge.Options{Width: 1, Height: 1, Window: 60, Alpha: 0.5}
	src := demoStream(&opt)
	if err := runTopK(surge.GridApprox, opt, 3, src, 1000, 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunTopKSharded(t *testing.T) {
	opt := surge.Options{Width: 1, Height: 1, Window: 60, Alpha: 0.5, Shards: 3}
	src := demoStream(&opt)
	if err := runTopK(surge.CellCSPOT, opt, 3, src, 1000, 256); err != nil {
		t.Fatal(err)
	}
}
