// surged serve: host a detector as a long-running HTTP service.
//
// Endpoints (see surge/client for the wire schema):
//
//	POST /v1/ingest     NDJSON or CSV object batches
//	GET  /v1/best       current bursty region
//	GET  /v1/topk?k=N   greedy top-k over the live windows, O(1) from the
//	                    continuously maintained answer (-topk); add
//	                    ?mode=replay to force checkpoint replay
//	GET  /v1/subscribe  SSE stream of bursty-region and top-k changes;
//	                    Last-Event-ID resumes after a disconnect
//	POST /v1/snapshot   detector checkpoint (octet-stream)
//	POST /v1/restore    replace state from a checkpoint
//	GET  /v1/stats      typed JSON telemetry: latency histograms for every
//	                    pipeline stage, counters and runtime health
//	GET  /healthz       health summary
//	GET  /metrics       Prometheus text metrics
//
// The server is multi-query: POST /v1/queries registers additional named
// queries over the same ingest stream (GET lists them, DELETE removes one)
// and every single-query endpoint above has a per-query twin under
// /v1/queries/{id}/. The legacy paths address the query named "default".
// -queries seeds named queries at boot from a JSON file.
//
// Lifecycle events (startup, checkpoint, restore, degraded-mode
// transitions, shutdown) are structured logs on stderr; -log-format picks
// text or JSON.
//
// With -data-dir the server is durable: every acknowledged ingest batch is
// appended to a write-ahead log in the directory before its 200 goes out,
// and boot recovers the exact acknowledged state by replaying the log tail
// on top of the newest checkpoint — a kill -9 loses nothing that was
// acked. -wal-sync picks the fsync policy (what a *machine* crash can
// lose) and -checkpoint-every paces the background checkpoints that keep
// the log compact. See the package surge doc's Durability section.
//
// On SIGINT/SIGTERM the server checkpoints to -checkpoint (if set), stops
// accepting work and shuts the HTTP listener down gracefully.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"surge"
	"surge/internal/server"
	"surge/internal/wal"
)

func runServe(args []string) error {
	fs := flag.NewFlagSet("surged serve", flag.ExitOnError)
	var (
		addr    = fs.String("addr", ":7077", "listen address")
		algo    = fs.String("algo", "CCS", "algorithm: CCS, B-CCS, Base, aG2, GAPS, MGAPS, Oracle")
		width   = fs.Float64("width", 0.01, "query rectangle width")
		height  = fs.Float64("height", 0.01, "query rectangle height")
		win     = fs.Float64("window", 3600, "window length |Wc| (= |Wp| unless -past-window)")
		pastW   = fs.Float64("past-window", 0, "past window length |Wp| (0 = same as -window)")
		alpha   = fs.Float64("alpha", 0.5, "burst-score balance parameter in [0,1)")
		shards  = fs.Int("shards", 0, "engine shards: 1 = single engine, 0 = one per CPU")
		blkCols = fs.Int("block-cols", 0, "ownership block width in query-width columns (0 = default)")
		batch   = fs.Int("batch", 512, "objects per detector synchronisation on ingest")
		topk    = fs.Int("topk", 5, "k of the continuously maintained top-k served O(1) by /v1/topk; 0 disables maintenance (every query replays a checkpoint)")
		kOld    = fs.Int("k", 5, "deprecated alias of -topk")
		ring    = fs.Int("notify-ring", 256, "recent SSE notifications retained for Last-Event-ID reconnect backfill")
		policy  = fs.String("time-policy", "clamp", "out-of-order ingest timestamps: clamp (lift to the stream clock, safe for concurrent ingesters) or strict (reject)")
		subBuf  = fs.Int("sub-buffer", 64, "per-subscriber notification buffer before oldest-first drops")
		ckptOut = fs.String("checkpoint", "", "write a checkpoint to this file on shutdown")
		ckptIn  = fs.String("restore", "", "seed the detector from this checkpoint file at boot")
		flush   = fs.Int("flush", 0, "sharded router flush size in events per shard (0 = adapt to shard backlog)")
		dualEng = fs.Bool("best-from-engines", false, "keep the legacy dual-engine layout: single-region engines answer /v1/best beside the maintained top-k chain (default: one chain serves both)")
		pprofOn = fs.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (profiling; leave off unless the listener is access-controlled)")
		logFmt  = fs.String("log-format", "text", "structured log format on stderr: text or json")

		readHdrT = fs.Duration("read-header-timeout", 10*time.Second, "close connections whose request headers take longer than this to arrive (slowloris guard)")
		idleT    = fs.Duration("idle-timeout", 120*time.Second, "close idle keep-alive connections after this long")

		queries  = fs.String("queries", "", "JSON file declaring named queries registered at boot beside \"default\" (an array of /v1/queries create bodies)")
		qMaxSubs = fs.Int("query-max-subs", 0, "cap on concurrent SSE subscribers per query; past it a subscribe fails with 429 quota_exceeded (0 = unlimited)")

		dataDir  = fs.String("data-dir", "", "durable mode: write-ahead log and checkpoints live here; boot recovers the acknowledged state from it")
		walSync  = fs.String("wal-sync", "always", "WAL fsync policy: always (fsync before each ack), off (never), or an interval like 100ms (background fsync; a machine crash can lose up to one interval)")
		ckptEvry = fs.Duration("checkpoint-every", time.Minute, "durable mode: background checkpoint period (compacts the covered WAL); <0 disables")
		walSegMB = fs.Int("wal-segment-mb", 64, "durable mode: WAL segment rotation size in MiB")
		maxPend  = fs.Int("max-pending", 256, "admission control: shed ingest chunks with 429 once this many wait on the event loop; <0 disables")
	)
	fs.Parse(args)

	// Reject the flag conflict before any work (parsing files, opening the
	// data directory) happens on either side of it.
	if *ckptIn != "" && *dataDir != "" {
		return fmt.Errorf("-restore and -data-dir are mutually exclusive: the data directory defines the state (POST a checkpoint to /v1/restore instead)")
	}

	alg, err := parseAlgo(*algo)
	if err != nil {
		return err
	}
	tp, err := server.ParseTimePolicy(*policy)
	if err != nil {
		return err
	}
	nShards := *shards
	if nShards == 0 {
		nShards = runtime.NumCPU()
	}
	if nShards < 1 {
		return fmt.Errorf("invalid -shards %d", *shards)
	}
	if *flush < 0 {
		return fmt.Errorf("invalid -flush %d", *flush)
	}
	// -k predates -topk; honour it when it is the only one given.
	topkSet := false
	fs.Visit(func(f *flag.Flag) { topkSet = topkSet || f.Name == "topk" })
	if !topkSet {
		*topk = *kOld
	}
	if *topk < 0 {
		return fmt.Errorf("invalid -topk %d", *topk)
	}
	if *qMaxSubs < 0 {
		return fmt.Errorf("invalid -query-max-subs %d", *qMaxSubs)
	}
	var logger *slog.Logger
	switch *logFmt {
	case "text":
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	case "json":
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	default:
		return fmt.Errorf("invalid -log-format %q (want text or json)", *logFmt)
	}
	cfg := server.Config{
		Algorithm: alg,
		Options: surge.Options{
			Width: *width, Height: *height,
			Window: *win, PastWindow: *pastW, Alpha: *alpha,
			Shards: nShards, ShardBlockCols: *blkCols, ShardFlushEvents: *flush,
		},
		TopK:                *topk,
		TopKReplayOnly:      *topk == 0,
		BestFromEngines:     *dualEng,
		NotifyRing:          *ring,
		TimePolicy:          tp,
		BatchSize:           *batch,
		SubscriberBuffer:    *subBuf,
		MaxPending:          *maxPend,
		QueryMaxSubscribers: *qMaxSubs,
		EnablePprof:         *pprofOn,
		Logger:              logger,
	}
	if *ckptIn != "" {
		data, err := os.ReadFile(*ckptIn)
		if err != nil {
			return err
		}
		cfg.Checkpoint = data
	}
	if *queries != "" {
		data, err := os.ReadFile(*queries)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(data, &cfg.Queries); err != nil {
			return fmt.Errorf("parsing -queries %s: %w", *queries, err)
		}
	}
	var s *server.Server
	if *dataDir != "" {
		if *walSegMB < 1 {
			return fmt.Errorf("invalid -wal-segment-mb %d", *walSegMB)
		}
		sync, every, err := wal.ParseSyncPolicy(*walSync)
		if err != nil {
			return err
		}
		s, err = server.NewDurable(cfg, server.DurableConfig{
			Dir:             *dataDir,
			Sync:            sync,
			SyncEvery:       every,
			SegmentBytes:    int64(*walSegMB) << 20,
			CheckpointEvery: *ckptEvry,
		})
		if err != nil {
			return err
		}
	} else if s, err = server.New(cfg); err != nil {
		return err
	}

	// No blanket read/write timeouts: ingest streams and SSE subscriptions
	// are legitimately long-lived. The header and idle timeouts (plus a
	// header size cap) bound what a misbehaving client can pin.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: *readHdrT,
		IdleTimeout:       *idleT,
		MaxHeaderBytes:    1 << 20,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Report the effective query options: a -restore checkpoint defines
	// the geometry, overriding the width/height/window/alpha flags.
	eff, err := s.DetectorOptions()
	if err != nil {
		s.Close()
		return err
	}
	errc := make(chan error, 1)
	go func() {
		logger.Info("surged serving",
			"algorithm", alg.String(), "shards", nShards, "addr", *addr,
			"width", eff.Width, "height", eff.Height,
			"window", eff.Window, "past_window", eff.PastWindow, "alpha", eff.Alpha)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		s.Close()
		return err
	case <-ctx.Done():
	}

	// Graceful shutdown: Shutdown stops accepting work *before* the
	// checkpoint is taken, so every acknowledged ingest is in the file and
	// SSE subscribers disconnect, letting the listener drain.
	logger.Info("surged shutting down")
	if *ckptOut != "" || *dataDir != "" {
		// In durable mode Shutdown also persists the final checkpoint to the
		// data directory, so the next boot replays nothing.
		data, err := s.Shutdown()
		if err != nil {
			logger.Error("checkpoint failed", "err", err)
		} else if *ckptOut != "" {
			if err := wal.WriteFileAtomic(*ckptOut, data, 0o644); err != nil {
				logger.Error("writing checkpoint file failed", "path", *ckptOut, "err", err)
			} else {
				logger.Info("checkpoint written", "path", *ckptOut, "bytes", len(data))
			}
		}
	}
	if err := s.Close(); err != nil {
		logger.Error("detector close failed", "err", err)
	}
	shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
