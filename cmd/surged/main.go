// Command surged runs a SURGE detector over a CSV stream of spatial objects
// and prints the bursty region whenever it changes.
//
// Input format (stdin or -in file), one object per line, time-ordered:
//
//	time,x,y,weight
//
// Example:
//
//	surged -algo CCS -width 0.01 -height 0.01 -window 3600 -alpha 0.5 < objects.csv
//
// With -demo it generates a Taxi-like synthetic stream with a planted burst
// instead of reading input, which makes a quick smoke test:
//
//	surged -demo
//
// For heavy streams, -shards N runs the sharded concurrent pipeline (N engine
// goroutines over a spatial column partitioning; 0 = one per CPU) and -batch M
// ingests M objects per detector synchronisation (-batch auto picks 1
// single-engine, 512 sharded). Inside the pipeline the router sizes its
// per-shard event batches by observed backlog; -flush N pins that size
// instead. A summary with the shard count and merged engine statistics is
// reported on exit.
//
// With the serve subcommand, surged instead runs as a long-lived HTTP
// service (see surge/internal/server and the surge/client package):
//
//	surged serve -addr :7077 -algo CCS -shards 0 -checkpoint surge.ckpt
//
// See serve.go for the endpoint list and flags.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"surge"
	"surge/internal/stream"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		if err := runServe(os.Args[2:]); err != nil {
			fatal(err)
		}
		return
	}
	var (
		algo   = flag.String("algo", "CCS", "algorithm: CCS, B-CCS, Base, aG2, GAPS, MGAPS, Oracle")
		width  = flag.Float64("width", 0.01, "query rectangle width")
		height = flag.Float64("height", 0.01, "query rectangle height")
		win    = flag.Float64("window", 3600, "window length |Wc| (= |Wp| unless -past-window)")
		pastW  = flag.Float64("past-window", 0, "past window length |Wp| (0 = same as -window)")
		alpha  = flag.Float64("alpha", 0.5, "burst-score balance parameter in [0,1)")
		k      = flag.Int("k", 1, "track top-k bursty regions")
		in     = flag.String("in", "-", "input CSV file ('-' = stdin)")
		every  = flag.Int("every", 1, "print at most every Nth change")
		demo   = flag.Bool("demo", false, "run on a generated demo stream with a planted burst")
		shards = flag.Int("shards", 1, "engine shards: 1 = single engine, 0 = one per CPU")
		batch  = flag.String("batch", "auto", "objects ingested per detector sync: a number, or auto (1 single-engine, 512 sharded)")
		flush  = flag.Int("flush", 0, "sharded router flush size in events per shard (0 = adapt to shard backlog)")
	)
	flag.Parse()

	alg, err := parseAlgo(*algo)
	if err != nil {
		fatal(err)
	}
	nShards := *shards
	if nShards == 0 {
		nShards = runtime.NumCPU()
	}
	if nShards < 1 {
		fatal(fmt.Errorf("invalid -shards %d", *shards))
	}
	nBatch, err := parseBatch(*batch, nShards)
	if err != nil {
		fatal(err)
	}
	if *flush < 0 {
		fatal(fmt.Errorf("invalid -flush %d", *flush))
	}
	opt := surge.Options{
		Width: *width, Height: *height,
		Window: *win, PastWindow: *pastW, Alpha: *alpha,
		Shards: nShards, ShardFlushEvents: *flush,
	}

	var src io.Reader
	switch {
	case *demo:
		src = demoStream(&opt)
	case *in == "-":
		src = os.Stdin
	default:
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		src = f
	}

	if *k > 1 {
		if err := runTopK(alg, opt, *k, src, *every, nBatch); err != nil {
			fatal(err)
		}
		return
	}
	if err := runSingle(alg, opt, src, *every, nBatch); err != nil {
		fatal(err)
	}
}

// parseBatch resolves the -batch flag: "auto" (or 0) selects 1 on the
// single-engine path and 512 on the sharded pipeline, where per-object
// synchronisation would dominate.
func parseBatch(s string, shards int) (int, error) {
	n := 0
	if s != "auto" {
		v, err := strconv.Atoi(s)
		if err != nil {
			return 0, fmt.Errorf("invalid -batch %q (want a number or auto)", s)
		}
		n = v
	}
	if n == 0 {
		if shards > 1 {
			return 512, nil
		}
		return 1, nil
	}
	if n < 1 {
		return 0, fmt.Errorf("invalid -batch %d", n)
	}
	return n, nil
}

func parseAlgo(s string) (surge.Algorithm, error) {
	alg, err := surge.ParseAlgorithm(s)
	if err != nil {
		return 0, fmt.Errorf("unknown algorithm %q", s)
	}
	return alg, nil
}

func runSingle(alg surge.Algorithm, opt surge.Options, src io.Reader, every, batchSize int) error {
	det, err := surge.New(alg, opt)
	if err != nil {
		return err
	}
	defer det.Close()
	var (
		last    surge.Result
		changes int
		objects int
		buf     = make([]surge.Object, 0, batchSize)
		start   = time.Now()
	)
	report := func(t float64, res surge.Result) {
		if regionChanged(last, res) {
			changes++
			if changes%every == 0 {
				printResult(t, res)
			}
			last = res
		}
	}
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		res, err := det.PushBatch(buf)
		if err != nil {
			return err
		}
		report(buf[len(buf)-1].Time, res)
		buf = buf[:0]
		return nil
	}
	err = forEachObject(src, func(o surge.Object) error {
		objects++
		if batchSize == 1 {
			res, err := det.Push(o)
			if err != nil {
				return err
			}
			report(o.Time, res)
			return nil
		}
		buf = append(buf, o)
		if len(buf) >= batchSize {
			return flush()
		}
		return nil
	})
	if err != nil {
		return err
	}
	if err := flush(); err != nil {
		return err
	}
	elapsed := time.Since(start)
	st := det.Stats()
	fmt.Fprintf(os.Stderr,
		"surged: %d objects in %v (%.0f objects/s), shards=%d batch=%d, events=%d searches=%d (%.2f%% of events)\n",
		objects, elapsed.Round(time.Millisecond),
		float64(objects)/math.Max(elapsed.Seconds(), 1e-9),
		det.Shards(), batchSize, st.Events, st.Searches, st.SearchRatio()*100)
	return nil
}

// runTopK streams the objects through a top-k detector — honouring -shards
// via the cross-shard chain — ingesting nBatch objects per detector
// synchronisation and printing the refreshed top-k at most every -every
// objects.
func runTopK(alg surge.Algorithm, opt surge.Options, k int, src io.Reader, every, nBatch int) error {
	det, err := surge.NewTopK(alg, opt, k)
	if err != nil {
		return err
	}
	defer det.Close()
	n, lastPrint := 0, 0
	batch := make([]surge.Object, 0, nBatch)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		res, err := det.PushBatch(batch)
		if err != nil {
			return err
		}
		n += len(batch)
		t := batch[len(batch)-1].Time
		batch = batch[:0]
		if n/every > lastPrint {
			lastPrint = n / every
			fmt.Printf("t=%.1f top-%d:\n", t, k)
			for i, r := range res {
				if !r.Found {
					break
				}
				fmt.Printf("  #%d score=%.2f region=[%.4f,%.4f]x[%.4f,%.4f]\n",
					i+1, r.Score, r.Region.MinX, r.Region.MaxX, r.Region.MinY, r.Region.MaxY)
			}
		}
		return nil
	}
	if err := forEachObject(src, func(o surge.Object) error {
		batch = append(batch, o)
		if len(batch) >= nBatch {
			return flush()
		}
		return nil
	}); err != nil {
		return err
	}
	return flush()
}

func regionChanged(a, b surge.Result) bool {
	if a.Found != b.Found {
		return true
	}
	if !b.Found {
		return false
	}
	return a.Region != b.Region || math.Abs(a.Score-b.Score) > 1e-9*(1+math.Abs(a.Score))
}

func printResult(t float64, r surge.Result) {
	if !r.Found {
		fmt.Printf("t=%.1f no bursty region\n", t)
		return
	}
	fmt.Printf("t=%.1f score=%.2f region=[%.4f,%.4f]x[%.4f,%.4f]\n",
		t, r.Score, r.Region.MinX, r.Region.MaxX, r.Region.MinY, r.Region.MaxY)
}

func forEachObject(src io.Reader, f func(surge.Object) error) error {
	sc := bufio.NewScanner(src)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) != 4 {
			return fmt.Errorf("line %d: want time,x,y,weight", line)
		}
		var vals [4]float64
		for i, p := range parts {
			v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				return fmt.Errorf("line %d field %d: %v", line, i+1, err)
			}
			vals[i] = v
		}
		if err := f(surge.Object{Time: vals[0], X: vals[1], Y: vals[2], Weight: vals[3]}); err != nil {
			return fmt.Errorf("line %d: %v", line, err)
		}
	}
	return sc.Err()
}

// demoStream renders a Taxi-like synthetic stream with a planted burst as
// CSV and tunes the options to the dataset's paper defaults.
func demoStream(opt *surge.Options) io.Reader {
	d := stream.TaxiLike(42)
	d.RatePerHour *= 0.05
	objs := d.Generate(4000)
	objs = stream.Inject(objs, stream.Burst{
		CX: 12.7, CY: 42.05,
		SX: d.QueryWidth() / 6, SY: d.QueryHeight() / 6,
		Start: objs[len(objs)-1].T * 0.6, Duration: 300, Count: 200, Seed: 42,
	})
	opt.Width = d.QueryWidth()
	opt.Height = d.QueryHeight()
	opt.Window = 300
	var b strings.Builder
	for _, o := range objs {
		fmt.Fprintf(&b, "%f,%f,%f,%f\n", o.T, o.X, o.Y, o.Weight)
	}
	return strings.NewReader(b.String())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "surged:", err)
	os.Exit(1)
}
