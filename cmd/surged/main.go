// Command surged runs a SURGE detector over a CSV stream of spatial objects
// and prints the bursty region whenever it changes.
//
// Input format (stdin or -in file), one object per line, time-ordered:
//
//	time,x,y,weight
//
// Example:
//
//	surged -algo CCS -width 0.01 -height 0.01 -window 3600 -alpha 0.5 < objects.csv
//
// With -demo it generates a Taxi-like synthetic stream with a planted burst
// instead of reading input, which makes a quick smoke test:
//
//	surged -demo
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"surge"
	"surge/internal/stream"
)

func main() {
	var (
		algo   = flag.String("algo", "CCS", "algorithm: CCS, B-CCS, Base, aG2, GAPS, MGAPS, Oracle")
		width  = flag.Float64("width", 0.01, "query rectangle width")
		height = flag.Float64("height", 0.01, "query rectangle height")
		win    = flag.Float64("window", 3600, "window length |Wc| (= |Wp| unless -past-window)")
		pastW  = flag.Float64("past-window", 0, "past window length |Wp| (0 = same as -window)")
		alpha  = flag.Float64("alpha", 0.5, "burst-score balance parameter in [0,1)")
		k      = flag.Int("k", 1, "track top-k bursty regions")
		in     = flag.String("in", "-", "input CSV file ('-' = stdin)")
		every  = flag.Int("every", 1, "print at most every Nth change")
		demo   = flag.Bool("demo", false, "run on a generated demo stream with a planted burst")
	)
	flag.Parse()

	alg, err := parseAlgo(*algo)
	if err != nil {
		fatal(err)
	}
	opt := surge.Options{
		Width: *width, Height: *height,
		Window: *win, PastWindow: *pastW, Alpha: *alpha,
	}

	var src io.Reader
	switch {
	case *demo:
		src = demoStream(&opt)
	case *in == "-":
		src = os.Stdin
	default:
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		src = f
	}

	if *k > 1 {
		if err := runTopK(alg, opt, *k, src, *every); err != nil {
			fatal(err)
		}
		return
	}
	if err := runSingle(alg, opt, src, *every); err != nil {
		fatal(err)
	}
}

func parseAlgo(s string) (surge.Algorithm, error) {
	switch strings.ToUpper(s) {
	case "CCS":
		return surge.CellCSPOT, nil
	case "B-CCS", "BCCS":
		return surge.StaticBound, nil
	case "BASE":
		return surge.Baseline, nil
	case "AG2":
		return surge.AG2, nil
	case "GAPS":
		return surge.GridApprox, nil
	case "MGAPS":
		return surge.MultiGrid, nil
	case "ORACLE":
		return surge.Oracle, nil
	default:
		return 0, fmt.Errorf("unknown algorithm %q", s)
	}
}

func runSingle(alg surge.Algorithm, opt surge.Options, src io.Reader, every int) error {
	det, err := surge.New(alg, opt)
	if err != nil {
		return err
	}
	var last surge.Result
	changes := 0
	return forEachObject(src, func(o surge.Object) error {
		res, err := det.Push(o)
		if err != nil {
			return err
		}
		if regionChanged(last, res) {
			changes++
			if changes%every == 0 {
				printResult(o.Time, res)
			}
			last = res
		}
		return nil
	})
}

func runTopK(alg surge.Algorithm, opt surge.Options, k int, src io.Reader, every int) error {
	det, err := surge.NewTopK(alg, opt, k)
	if err != nil {
		return err
	}
	n := 0
	return forEachObject(src, func(o surge.Object) error {
		res, err := det.Push(o)
		if err != nil {
			return err
		}
		n++
		if n%every == 0 {
			fmt.Printf("t=%.1f top-%d:\n", o.Time, k)
			for i, r := range res {
				if !r.Found {
					break
				}
				fmt.Printf("  #%d score=%.2f region=[%.4f,%.4f]x[%.4f,%.4f]\n",
					i+1, r.Score, r.Region.MinX, r.Region.MaxX, r.Region.MinY, r.Region.MaxY)
			}
		}
		return nil
	})
}

func regionChanged(a, b surge.Result) bool {
	if a.Found != b.Found {
		return true
	}
	if !b.Found {
		return false
	}
	return a.Region != b.Region || math.Abs(a.Score-b.Score) > 1e-9*(1+math.Abs(a.Score))
}

func printResult(t float64, r surge.Result) {
	if !r.Found {
		fmt.Printf("t=%.1f no bursty region\n", t)
		return
	}
	fmt.Printf("t=%.1f score=%.2f region=[%.4f,%.4f]x[%.4f,%.4f]\n",
		t, r.Score, r.Region.MinX, r.Region.MaxX, r.Region.MinY, r.Region.MaxY)
}

func forEachObject(src io.Reader, f func(surge.Object) error) error {
	sc := bufio.NewScanner(src)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) != 4 {
			return fmt.Errorf("line %d: want time,x,y,weight", line)
		}
		var vals [4]float64
		for i, p := range parts {
			v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				return fmt.Errorf("line %d field %d: %v", line, i+1, err)
			}
			vals[i] = v
		}
		if err := f(surge.Object{Time: vals[0], X: vals[1], Y: vals[2], Weight: vals[3]}); err != nil {
			return fmt.Errorf("line %d: %v", line, err)
		}
	}
	return sc.Err()
}

// demoStream renders a Taxi-like synthetic stream with a planted burst as
// CSV and tunes the options to the dataset's paper defaults.
func demoStream(opt *surge.Options) io.Reader {
	d := stream.TaxiLike(42)
	d.RatePerHour *= 0.05
	objs := d.Generate(4000)
	objs = stream.Inject(objs, stream.Burst{
		CX: 12.7, CY: 42.05,
		SX: d.QueryWidth() / 6, SY: d.QueryHeight() / 6,
		Start: objs[len(objs)-1].T * 0.6, Duration: 300, Count: 200, Seed: 42,
	})
	opt.Width = d.QueryWidth()
	opt.Height = d.QueryHeight()
	opt.Window = 300
	var b strings.Builder
	for _, o := range objs {
		fmt.Fprintf(&b, "%f,%f,%f,%f\n", o.T, o.X, o.Y, o.Weight)
	}
	return strings.NewReader(b.String())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "surged:", err)
	os.Exit(1)
}
