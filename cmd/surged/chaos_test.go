package main

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"os"
	"reflect"
	"strconv"
	"syscall"
	"testing"
	"time"

	"surge"
	"surge/client"
	"surge/internal/fault"
	"surge/internal/server"
	"surge/internal/wal"
)

// TestChaosDiskFaults is the disk-fault counterpart of the kill -9 harness:
// the same deterministic stream is ingested into an in-process durable
// server whose filesystem is a fault injector, and randomized count-limited
// fault bursts (failed appends, failed fsyncs, failed segment rotations,
// failed checkpoint renames) fire at random points of the stream. The test
// holds the graceful-degradation contract end to end:
//
//   - a batch whose append failed is never acknowledged — every ack the
//     client does receive is bitwise identical to the uninterrupted
//     reference run;
//   - queries keep serving from the last good snapshot while the server is
//     degraded;
//   - once a burst is spent the repair loop returns the server to service
//     and the retried stream completes;
//   - after a clean restart from the surviving directory the recovered
//     state matches the full reference bitwise, proving the log held every
//     acknowledged batch.
//
// Short mode runs one combination; full mode sweeps shard counts {1,2,4}
// x sync policies {always, 5ms interval, off}. The seed is logged for
// reproduction.
func TestChaosDiskFaults(t *testing.T) {
	type combo struct {
		shards int
		sync   wal.SyncPolicy
		every  time.Duration
		name   string
	}
	combos := []combo{{2, wal.SyncInterval, 5 * time.Millisecond, "interval"}}
	if !testing.Short() {
		combos = combos[:0]
		for _, sh := range []int{1, 2, 4} {
			combos = append(combos,
				combo{sh, wal.SyncAlways, 0, "always"},
				combo{sh, wal.SyncInterval, 5 * time.Millisecond, "interval"},
				combo{sh, wal.SyncOff, 0, "off"},
			)
		}
	}
	seed := uint64(time.Now().UnixNano())
	if v := os.Getenv("SURGE_CHAOS_SEED"); v != "" {
		s, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			t.Fatalf("SURGE_CHAOS_SEED: %v", err)
		}
		seed = s
	}
	t.Logf("randomized fault schedule from seed %d (re-run with SURGE_CHAOS_SEED=%d)", seed, seed)
	rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))

	const nBatch, per = 18, 15
	batches := crashBatches(nBatch, per)

	for _, cb := range combos {
		t.Run(fmt.Sprintf("shards=%d_sync=%s", cb.shards, cb.name), func(t *testing.T) {
			refSrv, refAcks := referenceRun(t, cb.shards, batches)
			ref := client.New(newLoopbackServer(t, refSrv))

			in := fault.NewInjector(nil)
			dir := t.TempDir()
			cfg := server.Config{
				Algorithm:  surge.CellCSPOT,
				Options:    surge.Options{Width: 1, Height: 1, Window: 60, Alpha: 0.5, Shards: cb.shards},
				BatchSize:  4,
				TimePolicy: server.Clamp,
			}
			s, err := server.NewDurable(cfg, server.DurableConfig{
				Dir: dir, Sync: cb.sync, SyncEvery: cb.every,
				SegmentBytes:    4096, // rotate often enough for OpOpen bursts to bite
				CheckpointEvery: 150 * time.Millisecond,
				FS:              in,
			})
			if err != nil {
				t.Fatal(err)
			}
			closed := false
			t.Cleanup(func() {
				if !closed {
					s.Close()
				}
			})
			base := newLoopbackServer(t, s)
			// The retrying client rides through shed windows: the server's
			// Retry-After (1s while degraded) outlives the repair loop's
			// 25ms-base backoff, so a spent burst heals within one retry.
			c := client.New(base, client.WithRetry(client.RetryPolicy{
				MaxAttempts: 8, BaseDelay: 10 * time.Millisecond,
			}))
			plain := client.New(base) // no retry: observes the degraded window
			ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
			defer cancel()
			waitHealthy(ctx, t, c)

			// Pick 3 distinct burst points away from the stream edges.
			burstAt := map[int]bool{}
			for len(burstAt) < 3 {
				burstAt[2+int(rng.Uint64()%uint64(nBatch-4))] = true
			}

			for i := 0; i < nBatch; i++ {
				if burstAt[i] {
					in.Clear() // drop any unfired leftovers from the last burst
					rules := []fault.Rule{
						// The anchor: the next WAL append fails, forcing a
						// degrade/repair cycle on this very batch.
						{Op: fault.OpWrite, Path: "wal-", Count: 1, Err: syscall.EIO},
						// A checkpoint rename failure rides along; the
						// checkpointer retries it without degrading.
						{Op: fault.OpRename, Path: "surge.ckpt", Count: 1, Err: syscall.EIO},
					}
					switch rng.Uint64() % 3 {
					case 0: // torn frame: half the bytes land, then ENOSPC
						rules[0].Err = syscall.ENOSPC
						rules[0].ShortWrite = 8
					case 1: // the next segment rotation fails
						rules = append(rules, fault.Rule{Op: fault.OpOpen, Path: "wal-", Count: 1, Err: syscall.EMFILE})
					case 2: // a WAL fsync fails too (append path under always)
						rules = append(rules, fault.Rule{Op: fault.OpSync, Path: "wal-", Count: 1, Err: syscall.EIO})
					}
					t.Logf("batch %d: burst %+v", i+1, rules)
					in.Arm(rules...)

					// The unretried attempt hits the burst head-on: either it
					// is shed with the typed degraded error, or a concurrent
					// background write already tripped the fault and this
					// request rode through.
					if _, err := plain.IngestSeq(ctx, "crash", uint64(i+1), batches[i]); err != nil {
						if !errors.Is(err, client.ErrDegraded) && !isPipeline5xx(err) {
							t.Fatalf("batch %d over burst: err = %v, want a degraded/5xx shed", i+1, err)
						}
						// Queries must keep serving while ingest is shed.
						if _, qerr := plain.Best(ctx); qerr != nil {
							t.Fatalf("best while degraded: %v", qerr)
						}
						if _, qerr := plain.Stats(ctx); qerr != nil {
							t.Fatalf("stats while degraded: %v", qerr)
						}
					}
				}
				// The sequenced retry must converge on the reference ack —
				// never acknowledging anything the log does not hold, never
				// double-applying what an earlier chunk already applied.
				ack, err := c.IngestSeq(ctx, "crash", uint64(i+1), batches[i])
				if err != nil {
					t.Fatalf("batch %d: %v", i+1, err)
				}
				if !reflect.DeepEqual(ack, refAcks[i]) {
					t.Fatalf("batch %d ack diverged from reference:\ngot  %+v\nwant %+v", i+1, ack, refAcks[i])
				}
			}

			// Drop any unfired opportunistic rules and let the server settle.
			in.Clear()
			waitHealthy(ctx, t, c)
			st, err := c.Stats(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if st.WAL == nil || st.WAL.DegradedCount == 0 || st.WAL.RepairedCount == 0 {
				t.Fatalf("chaos run never exercised the degrade/repair cycle: %+v", st.WAL)
			}
			if st.WAL.Durability != "recovered" {
				t.Fatalf("durability = %q after repairs, want recovered", st.WAL.Durability)
			}
			compareAnswers(t, "final state under chaos", c, ref)

			// Clean restart from the surviving directory: recovery replays
			// exactly the acknowledged stream.
			if err := s.Close(); err != nil {
				t.Fatalf("close after chaos: %v", err)
			}
			closed = true
			s2, err := server.NewDurable(cfg,
				server.DurableConfig{Dir: dir, Sync: cb.sync, SyncEvery: cb.every, SegmentBytes: 4096})
			if err != nil {
				t.Fatalf("restart after chaos: %v", err)
			}
			t.Cleanup(func() { s2.Close() })
			compareRestartAnswers(t, "restart after chaos", client.New(newLoopbackServer(t, s2)), ref)
		})
	}
}

// isPipeline5xx matches the non-typed 5xx a burst can surface when it fires
// outside the degraded-shed fast path (e.g. mid-chunk).
func isPipeline5xx(err error) bool {
	var ce *client.Error
	return errors.As(err, &ce) && ce.Status >= 500
}

// compareRestartAnswers is compareAnswers with one relaxation for a server
// rebooted from a checkpoint: scores, clock and live count must still match
// the reference bitwise (that is the durability contract — every
// acknowledged object recovered, nothing double-applied), but where two
// regions hold bitwise-equal scores the reported rectangle may differ. The
// engines resolve exact-score ties canonically only when the competing
// cell's branch-and-bound key bitwise-matches the winner's, and those keys
// are floating-point folds whose last bit depends on the incremental
// update history — which a checkpoint replay legitimately does not
// reproduce.
func compareRestartAnswers(t *testing.T, label string, got, want *client.Client) {
	t.Helper()
	ctx := context.Background()
	gb, err := got.Best(ctx)
	if err != nil {
		t.Fatal(err)
	}
	wb, err := want.Best(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if gb.Result.Found != wb.Result.Found || gb.Result.Score != wb.Result.Score ||
		gb.Now != wb.Now || gb.Live != wb.Live {
		t.Fatalf("%s: best diverged:\ngot  %s now=%v live=%d\nwant %s now=%v live=%d",
			label, fmtResults([]client.Result{gb.Result}), gb.Now, gb.Live,
			fmtResults([]client.Result{wb.Result}), wb.Now, wb.Live)
	}
	gt, err := got.TopK(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	wt, err := want.TopK(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(gt.Results) != len(wt.Results) {
		t.Fatalf("%s: topk length %d != %d", label, len(gt.Results), len(wt.Results))
	}
	for i := range gt.Results {
		g, w := gt.Results[i], wt.Results[i]
		if g.Found != w.Found || g.Score != w.Score {
			t.Fatalf("%s: topk rank %d diverged:\ngot  %s\nwant %s",
				label, i, fmtResults(gt.Results), fmtResults(wt.Results))
		}
	}
}
