package surge_test

import (
	"testing"

	"surge"
)

func TestCheckpointRoundTrip(t *testing.T) {
	det, err := surge.New(surge.CellCSPOT, opts())
	if err != nil {
		t.Fatal(err)
	}
	objs := randomObjects(61, 600, 6)
	for _, o := range objs[:400] {
		if _, err := det.Push(o); err != nil {
			t.Fatal(err)
		}
	}
	data, err := det.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := surge.Restore(surge.CellCSPOT, data)
	if err != nil {
		t.Fatal(err)
	}
	a, b := det.Best(), restored.Best()
	if a.Found != b.Found || (a.Found && !almost(a.Score, b.Score)) {
		t.Fatalf("restored best %+v != original %+v", b, a)
	}
	if restored.Now() != det.Now() {
		t.Fatalf("clock %v != %v", restored.Now(), det.Now())
	}
	if restored.Live() != det.Live() {
		t.Fatalf("live %d != %d", restored.Live(), det.Live())
	}
	// Continue both streams: behaviour must stay identical.
	for _, o := range objs[400:] {
		ra, err := det.Push(o)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := restored.Push(o)
		if err != nil {
			t.Fatal(err)
		}
		as, bs := ra.Score, rb.Score
		if !ra.Found {
			as = 0
		}
		if !rb.Found {
			bs = 0
		}
		if !almost(as, bs) {
			t.Fatalf("divergence after restore at t=%v: %v vs %v", o.Time, as, bs)
		}
	}
}

// TestCheckpointCrossAlgorithm: a checkpoint written by the exact detector
// restores into the approximate one (the format is engine-independent).
func TestCheckpointCrossAlgorithm(t *testing.T) {
	exact, _ := surge.New(surge.CellCSPOT, opts())
	for _, o := range randomObjects(71, 300, 5) {
		if _, err := exact.Push(o); err != nil {
			t.Fatal(err)
		}
	}
	data, err := exact.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	grid, err := surge.Restore(surge.GridApprox, data)
	if err != nil {
		t.Fatal(err)
	}
	if grid.Algorithm() != surge.GridApprox {
		t.Fatal("restored algorithm mismatch")
	}
	e, g := exact.Best(), grid.Best()
	if e.Found && g.Found {
		alpha := 0.5
		if g.Score < (1-alpha)/4*e.Score-1e-9 {
			t.Fatalf("restored approximate detector below guarantee: %v vs %v", g.Score, e.Score)
		}
	}
}

func TestCheckpointPreservesOptions(t *testing.T) {
	o := opts()
	o.PastWindow = 120
	o.Alpha = 0.7
	o.Area = &surge.Region{MinX: 0, MinY: 0, MaxX: 8, MaxY: 8}
	det, err := surge.New(surge.Oracle, o)
	if err != nil {
		t.Fatal(err)
	}
	// Push one in-area and one out-of-area object.
	if _, err := det.Push(surge.Object{X: 1, Y: 1, Weight: 3, Time: 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := det.Push(surge.Object{X: 100, Y: 100, Weight: 99, Time: 1}); err != nil {
		t.Fatal(err)
	}
	data, err := det.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := surge.Restore(surge.Oracle, data)
	if err != nil {
		t.Fatal(err)
	}
	a, b := det.Best(), restored.Best()
	if !a.Found || !b.Found || !almost(a.Score, b.Score) {
		t.Fatalf("area/window options not preserved: %+v vs %+v", b, a)
	}
	// The out-of-area object must still be excluded after restore.
	if b.Region.Contains(100, 100) {
		t.Fatal("restored detector lost the preferred-area filter")
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	if _, err := surge.Restore(surge.CellCSPOT, []byte("not a checkpoint")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := surge.Restore(surge.CellCSPOT, nil); err == nil {
		t.Fatal("empty checkpoint accepted")
	}
}

func TestCheckpointEmptyDetector(t *testing.T) {
	det, _ := surge.New(surge.MultiGrid, opts())
	data, err := det.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := surge.Restore(surge.MultiGrid, data)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Best().Found {
		t.Fatal("restored empty detector found something")
	}
}

func TestCheckpointDeterministic(t *testing.T) {
	det, _ := surge.New(surge.GridApprox, opts())
	for _, o := range randomObjects(81, 200, 5) {
		if _, err := det.Push(o); err != nil {
			t.Fatal(err)
		}
	}
	a, err := det.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	b, err := det.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("checkpoint is not deterministic")
	}
}
