// Benchmarks mirroring the paper's evaluation (Section VII): one testing.B
// target per table/figure. These run fixed small workloads so `go test
// -bench=.` finishes quickly; cmd/surgebench produces the full sweeps and
// paper-style tables (see EXPERIMENTS.md for recorded results).
package surge_test

import (
	"fmt"
	"sync"
	"testing"

	"surge/internal/bench"
	"surge/internal/core"
	"surge/internal/stream"
)

// benchDataset returns a rate-scaled Taxi-like dataset (the densest of the
// three Table-I workloads) plus its default paper configuration: q = 1/1000
// of the range, 5-minute windows, alpha = 0.5.
func benchDataset() (stream.Dataset, core.Config) {
	d := stream.TaxiLike(1)
	d.RatePerHour *= 0.1
	cfg := core.Config{
		Width:  d.QueryWidth(),
		Height: d.QueryHeight(),
		WC:     5 * 60,
		WP:     5 * 60,
		Alpha:  0.5,
	}
	return d, cfg
}

var (
	benchObjsOnce sync.Once
	benchObjs     []core.Object
)

func benchStream() []core.Object {
	benchObjsOnce.Do(func() {
		d, _ := benchDataset()
		benchObjs = d.Generate(8000)
	})
	return benchObjs
}

func replayBench(b *testing.B, engineName string, cfg core.Config, objs []core.Object) {
	b.Helper()
	b.ReportAllocs()
	var last bench.Measurement
	for i := 0; i < b.N; i++ {
		eng, err := bench.NewEngine(engineName, cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = bench.Replay(cfg, eng, objs)
	}
	if last.Objects > 0 {
		b.ReportMetric(float64(last.Elapsed.Nanoseconds())/float64(last.Objects), "ns/obj")
	}
}

// BenchmarkTable1Datasets measures workload generation (Table I substrate).
func BenchmarkTable1Datasets(b *testing.B) {
	for _, name := range []string{"UK", "US", "Taxi"} {
		b.Run(name, func(b *testing.B) {
			var d stream.Dataset
			switch name {
			case "UK":
				d = stream.UKLike(1)
			case "US":
				d = stream.USLike(2)
			default:
				d = stream.TaxiLike(3)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				objs := d.Generate(10000)
				if len(objs) != 10000 {
					b.Fatal("bad generation")
				}
			}
		})
	}
}

// BenchmarkFig5Exact: per-object cost of the four exact engines (Figure 5).
func BenchmarkFig5Exact(b *testing.B) {
	d, cfg := benchDataset()
	_ = d
	objs := benchStream()
	for _, en := range []string{"CCS", "B-CCS", "Base", "aG2"} {
		b.Run(en, func(b *testing.B) { replayBench(b, en, cfg, objs) })
	}
}

// BenchmarkTable2SearchRatio reports the search-trigger ratio of CCS vs
// B-CCS as benchmark metrics (Table II).
func BenchmarkTable2SearchRatio(b *testing.B) {
	_, cfg := benchDataset()
	objs := benchStream()
	for _, en := range []string{"CCS", "B-CCS"} {
		b.Run(en, func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				eng, err := bench.NewEngine(en, cfg)
				if err != nil {
					b.Fatal(err)
				}
				m := bench.Replay(cfg, eng, objs)
				ratio = m.Stats.SearchRatio()
			}
			b.ReportMetric(ratio*100, "%search")
		})
	}
}

// BenchmarkFig6Approx: per-object cost of GAPS and MGAPS (Figure 6).
func BenchmarkFig6Approx(b *testing.B) {
	_, cfg := benchDataset()
	objs := benchStream()
	for _, en := range []string{"GAPS", "MGAPS"} {
		b.Run(en, func(b *testing.B) { replayBench(b, en, cfg, objs) })
	}
}

// BenchmarkFig7Alpha: cost vs the balance parameter (Figure 7).
func BenchmarkFig7Alpha(b *testing.B) {
	_, cfg := benchDataset()
	objs := benchStream()
	for _, alpha := range []float64{0.1, 0.5, 0.9} {
		for _, en := range []string{"CCS", "GAPS"} {
			b.Run(fmt.Sprintf("%s/alpha=%.1f", en, alpha), func(b *testing.B) {
				c := cfg
				c.Alpha = alpha
				replayBench(b, en, c, objs)
			})
		}
	}
}

// BenchmarkTable3ApproxAlpha reports the empirical approximation ratios vs
// alpha as metrics (Table III).
func BenchmarkTable3ApproxAlpha(b *testing.B) {
	_, cfg := benchDataset()
	objs := benchStream()
	for _, alpha := range []float64{0.1, 0.5, 0.9} {
		b.Run(fmt.Sprintf("alpha=%.1f", alpha), func(b *testing.B) {
			c := cfg
			c.Alpha = alpha
			var g, m float64
			for i := 0; i < b.N; i++ {
				var err error
				g, m, err = bench.ApproxRatio(c, objs, 0)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(g*100, "%GAPS")
			b.ReportMetric(m*100, "%MGAPS")
		})
	}
}

// BenchmarkTable4ApproxWindow reports approximation ratios vs window size
// (Table IV).
func BenchmarkTable4ApproxWindow(b *testing.B) {
	d, cfg := benchDataset()
	for _, wMin := range []float64{1, 5, 10} {
		b.Run(fmt.Sprintf("window=%gm", wMin), func(b *testing.B) {
			c := cfg
			c.WC = wMin * 60
			c.WP = wMin * 60
			objs := d.Generate(6000)
			var g, m float64
			for i := 0; i < b.N; i++ {
				var err error
				g, m, err = bench.ApproxRatio(c, objs, 0)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(g*100, "%GAPS")
			b.ReportMetric(m*100, "%MGAPS")
		})
	}
}

// BenchmarkFig8Scalability: per-stream-hour cost at increasing arrival rates
// (Figure 8). The same base stream is stretched to each target rate.
func BenchmarkFig8Scalability(b *testing.B) {
	d, cfg := benchDataset()
	base := d.Generate(8000)
	for _, ratePerDay := range []float64{2e5, 6e5, 1e6} {
		objs := stream.Stretch(base, ratePerDay)
		for _, en := range []string{"CCS", "GAPS"} {
			b.Run(fmt.Sprintf("%s/rate=%.0fk", en, ratePerDay/1e3), func(b *testing.B) {
				var last bench.Measurement
				for i := 0; i < b.N; i++ {
					eng, err := bench.NewEngine(en, cfg)
					if err != nil {
						b.Fatal(err)
					}
					last = bench.Replay(cfg, eng, objs)
				}
				b.ReportMetric(last.PerStreamHour(), "s/stream-hour")
			})
		}
	}
}

// BenchmarkFig9TopK: per-object cost of the top-k engines (Figure 9),
// including the naive baseline on a reduced sample.
func BenchmarkFig9TopK(b *testing.B) {
	_, cfg := benchDataset()
	objs := benchStream()
	for _, en := range []string{"kCCS", "kGAPS", "kMGAPS"} {
		for _, k := range []int{3, 5} {
			b.Run(fmt.Sprintf("%s/k=%d", en, k), func(b *testing.B) {
				var last bench.Measurement
				for i := 0; i < b.N; i++ {
					eng, err := bench.NewTopKEngine(en, cfg, k)
					if err != nil {
						b.Fatal(err)
					}
					last = bench.ReplayTopK(cfg, eng, objs, 1500)
				}
				if last.Objects > 0 {
					b.ReportMetric(float64(last.Elapsed.Nanoseconds())/float64(last.Objects), "ns/obj")
				}
			})
		}
	}
	b.Run("Naive/k=3", func(b *testing.B) {
		var last bench.Measurement
		for i := 0; i < b.N; i++ {
			eng, err := bench.NewTopKEngine("Naive", cfg, 3)
			if err != nil {
				b.Fatal(err)
			}
			last = bench.ReplayTopK(cfg, eng, objs, 100)
		}
		if last.Objects > 0 {
			b.ReportMetric(float64(last.Elapsed.Nanoseconds())/float64(last.Objects), "ns/obj")
		}
	})
}

// BenchmarkCaseStudy: end-to-end burst tracking on an injected hotspot
// (Section VII-G).
func BenchmarkCaseStudy(b *testing.B) {
	d, cfg := benchDataset()
	objs := d.Generate(6000)
	objs = stream.Inject(objs, stream.Burst{
		CX: 12.7, CY: 42.05, SX: cfg.Width / 6, SY: cfg.Height / 6,
		Start: objs[len(objs)-1].T * 0.7, Duration: 300, Count: 200, Seed: 1,
	})
	replayBench(b, "CCS", cfg, objs)
}
