package surge_test

import (
	"math/rand/v2"
	"testing"

	"surge"
)

// exactAlgorithms are all detectors that must agree bit-for-bit (up to fp
// tolerance) on every stream.
func exactAlgorithms() []surge.Algorithm {
	return []surge.Algorithm{
		surge.CellCSPOT, surge.StaticBound, surge.Baseline, surge.AG2, surge.Oracle,
	}
}

func agreeOnStream(t *testing.T, name string, objs []surge.Object) {
	t.Helper()
	t.Run(name, func(t *testing.T) {
		dets := make([]*surge.Detector, 0, len(exactAlgorithms()))
		for _, a := range exactAlgorithms() {
			d, err := surge.New(a, opts())
			if err != nil {
				t.Fatal(err)
			}
			dets = append(dets, d)
		}
		for i, o := range objs {
			var ref surge.Result
			for j, d := range dets {
				res, err := d.Push(o)
				if err != nil {
					t.Fatal(err)
				}
				if j == 0 {
					ref = res
					continue
				}
				rs, gs := ref.Score, res.Score
				if !ref.Found {
					rs = 0
				}
				if !res.Found {
					gs = 0
				}
				if !almost(rs, gs) {
					t.Fatalf("object %d: %v=%v disagrees with %v=%v",
						i, exactAlgorithms()[j], gs, exactAlgorithms()[0], rs)
				}
			}
		}
	})
}

// TestEdgeCaseStreams feeds adversarial streams through every exact engine:
// coincident positions, identical timestamps, zero weights, lattice-aligned
// coordinates (coincident rectangle edges everywhere), and extreme
// coordinates.
func TestEdgeCaseStreams(t *testing.T) {
	rng := rand.New(rand.NewPCG(101, 102))

	coincident := make([]surge.Object, 60)
	for i := range coincident {
		coincident[i] = surge.Object{X: 3.25, Y: 3.25, Weight: 1 + rng.Float64(), Time: float64(i)}
	}
	agreeOnStream(t, "coincident-positions", coincident)

	sameTime := make([]surge.Object, 60)
	for i := range sameTime {
		sameTime[i] = surge.Object{
			X: rng.Float64() * 4, Y: rng.Float64() * 4,
			Weight: 1 + rng.Float64()*9,
			Time:   float64(i / 10), // bursts of 10 identical timestamps
		}
	}
	agreeOnStream(t, "identical-timestamps", sameTime)

	zeroW := make([]surge.Object, 60)
	for i := range zeroW {
		w := 0.0
		if i%3 == 0 {
			w = 5
		}
		zeroW[i] = surge.Object{X: rng.Float64() * 3, Y: rng.Float64() * 3, Weight: w, Time: float64(i)}
	}
	agreeOnStream(t, "zero-weights", zeroW)

	lattice := make([]surge.Object, 80)
	for i := range lattice {
		lattice[i] = surge.Object{
			X: float64(rng.IntN(5)), Y: float64(rng.IntN(5)),
			Weight: 1 + rng.Float64(),
			Time:   float64(i) * 0.7,
		}
	}
	agreeOnStream(t, "lattice-aligned", lattice)

	farAway := make([]surge.Object, 40)
	for i := range farAway {
		base := 1e7 // large coordinates: grid indices far from the origin
		farAway[i] = surge.Object{
			X: base + rng.Float64()*5, Y: -base + rng.Float64()*5,
			Weight: 1 + rng.Float64()*9,
			Time:   float64(i),
		}
	}
	agreeOnStream(t, "far-from-origin", farAway)

	negative := make([]surge.Object, 60)
	for i := range negative {
		negative[i] = surge.Object{
			X: -10 + rng.Float64()*4, Y: -7 + rng.Float64()*4,
			Weight: 1 + rng.Float64()*9,
			Time:   float64(i) * 0.3,
		}
	}
	agreeOnStream(t, "negative-coordinates", negative)
}

// TestTinyAndHugeWeights: extreme weight magnitudes must not break the
// bound arithmetic.
func TestExtremeWeights(t *testing.T) {
	rng := rand.New(rand.NewPCG(103, 104))
	objs := make([]surge.Object, 60)
	for i := range objs {
		w := 1e-9
		if i%2 == 0 {
			w = 1e9
		}
		objs[i] = surge.Object{X: rng.Float64() * 4, Y: rng.Float64() * 4, Weight: w, Time: float64(i)}
	}
	agreeOnStream(t, "extreme-weights", objs)
}
