package surge_test

import (
	"testing"

	"surge"
)

// pushAllocs primes a detector into steady state — objects cycling over a
// fixed set of locations at a constant inter-arrival, long enough for every
// queue, cell, heap and scratch buffer to reach its final capacity — and
// then measures the amortised heap allocations of one more Push.
func pushAllocs(t *testing.T, alg surge.Algorithm) float64 {
	t.Helper()
	det, err := surge.New(alg, surge.Options{
		Width: 1, Height: 1, Window: 16, Alpha: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer det.Close()
	locs := [5][2]float64{{0.5, 0.5}, {3.2, 1.7}, {-2.4, 0.9}, {7.9, -3.3}, {0.6, 0.4}}
	i := 0
	tm := 0.0
	push := func() {
		l := locs[i%len(locs)]
		i++
		tm += 0.125
		if _, err := det.Push(surge.Object{X: l[0], Y: l[1], Weight: 1, Time: tm}); err != nil {
			t.Fatal(err)
		}
	}
	// 4096 pushes = 16 full window generations at 128 objects per window.
	for n := 0; n < 4096; n++ {
		push()
	}
	return testing.AllocsPerRun(2048, push)
}

// TestPushZeroAllocCCS and TestPushZeroAllocGAPS are the hot-path
// allocation-regression guards: steady-state Push (window transitions,
// cell updates, bound maintenance, continuous Best) must not touch the
// heap on the single-engine paths. Any new per-object allocation — a
// rebound method value, an interface boxing in a sort, a map rebuild —
// fails these tests rather than silently landing on the hot path.
func TestPushZeroAllocCCS(t *testing.T) {
	if a := pushAllocs(t, surge.CellCSPOT); a != 0 {
		t.Fatalf("CCS Push allocates %v allocs/op in steady state, want 0", a)
	}
}

func TestPushZeroAllocGAPS(t *testing.T) {
	if a := pushAllocs(t, surge.GridApprox); a != 0 {
		t.Fatalf("GAPS Push allocates %v allocs/op in steady state, want 0", a)
	}
}

// TestTopKPushZeroAllocKCCS guards the continuous top-k maintenance path —
// the code the serving layer runs on every ingested object when /v1/topk is
// served from the maintained answer. Steady-state Push (window transitions,
// per-problem cell updates, the lazy heap flush, the greedy re-resolve and
// the result refresh) must not touch the heap, matching the pooling
// contract of the single-region engines.
func TestTopKPushZeroAllocKCCS(t *testing.T) {
	det, err := surge.NewTopK(surge.CellCSPOT, surge.Options{
		Width: 1, Height: 1, Window: 16, Alpha: 0.5,
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	locs := [5][2]float64{{0.5, 0.5}, {3.2, 1.7}, {-2.4, 0.9}, {7.9, -3.3}, {0.6, 0.4}}
	i := 0
	tm := 0.0
	push := func() {
		l := locs[i%len(locs)]
		i++
		tm += 0.125
		if _, err := det.Push(surge.Object{X: l[0], Y: l[1], Weight: 1, Time: tm}); err != nil {
			t.Fatal(err)
		}
	}
	for n := 0; n < 4096; n++ {
		push()
	}
	if a := testing.AllocsPerRun(2048, push); a != 0 {
		t.Fatalf("kCCS top-k Push allocates %v allocs/op in steady state, want 0", a)
	}
}
