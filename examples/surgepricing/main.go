// Surge pricing (the paper's Example 2): monitor a stream of ride requests
// and alert idle drivers the moment a region's demand spikes.
//
// A Taxi-like request stream (Rome envelope, Table I) carries a planted
// demand surge — a subway disruption near Termini at minute 40. The fast
// O(log n) grid detector (GAP-SURGE) watches the whole city in real time; a
// driver's preferred area uses the exact detector to decide where exactly to
// reposition.
//
// Run with: go run ./examples/surgepricing
package main

import (
	"fmt"

	"surge"
	"surge/internal/stream"
)

func main() {
	// Rome-like request stream: positions in lon/lat, times in seconds,
	// weight = passenger count (1-4).
	d := stream.TaxiLike(7)
	d.RatePerHour *= 0.1
	d.WeightMin, d.WeightMax = 1, 4
	objs := d.Generate(6000)

	// Subway disruption at minute 40 near Termini: 350 extra requests in
	// eight minutes, concentrated in a couple of blocks.
	termini := struct{ X, Y float64 }{12.501, 41.901}
	objs = stream.Inject(objs, stream.Burst{
		CX: termini.X, CY: termini.Y,
		SX: 0.002, SY: 0.002,
		Start: 40 * 60, Duration: 8 * 60, Count: 350, Weight: 2, Seed: 7,
	})

	// City-wide monitor: ~500m regions, 5-minute windows, burstiness-heavy
	// (alpha 0.8) because we care about *sudden* demand, not steady demand.
	city, err := surge.New(surge.GridApprox, surge.Options{
		Width: 0.006, Height: 0.0045,
		Window: 5 * 60,
		Alpha:  0.8,
	})
	if err != nil {
		panic(err)
	}

	// One driver watches only the city centre with the exact detector.
	centre := surge.Region{MinX: 12.45, MinY: 41.86, MaxX: 12.55, MaxY: 41.94}
	driver, err := surge.New(surge.CellCSPOT, surge.Options{
		Width: 0.006, Height: 0.0045,
		Window: 5 * 60,
		Alpha:  0.8,
		Area:   &centre,
	})
	if err != nil {
		panic(err)
	}

	alertThreshold := 0.25 // burst score: weighted requests per second
	lastAlert := -1e9
	for _, o := range objs {
		obj := surge.Object{X: o.X, Y: o.Y, Weight: o.Weight, Time: o.T}
		cityRes, err := city.Push(obj)
		if err != nil {
			panic(err)
		}
		driverRes, err := driver.Push(obj)
		if err != nil {
			panic(err)
		}
		if cityRes.Found && cityRes.Score > alertThreshold && o.T-lastAlert > 60 {
			lastAlert = o.T
			fmt.Printf("[%5.1f min] SURGE ALERT  score %.2f  region lon:[%.4f,%.4f) lat:[%.4f,%.4f)",
				o.T/60, cityRes.Score,
				cityRes.Region.MinX, cityRes.Region.MaxX, cityRes.Region.MinY, cityRes.Region.MaxY)
			if cityRes.Region.Contains(termini.X, termini.Y) {
				fmt.Printf("  <- Termini disruption")
			}
			fmt.Println()
			if driverRes.Found && driverRes.Score > alertThreshold {
				fmt.Printf("            driver: reposition to lon:[%.4f,%.4f) lat:[%.4f,%.4f) (exact score %.2f)\n",
					driverRes.Region.MinX, driverRes.Region.MaxX,
					driverRes.Region.MinY, driverRes.Region.MaxY, driverRes.Score)
			}
		}
	}
	fmt.Printf("\ncity monitor processed %d events at O(log n) per event\n", city.Stats().Events)
}
