// Road-network SURGE (the paper's stated future work): detect bursty
// *network balls* — sets of intersections within a network distance r —
// instead of Euclidean rectangles.
//
// A Manhattan-style 20x20 grid city receives background ride requests; at
// minute 30 an incident closes a venue and requests flood the surrounding
// blocks. Because the burst sits next to a park (no roads), the Euclidean
// rectangle detector and the network-ball detector disagree about what the
// "region" is — the network ball follows the streets.
//
// Run with: go run ./examples/roadnet
package main

import (
	"fmt"
	"math/rand/v2"

	"surge/roadnet"
)

func main() {
	city := roadnet.Grid(20, 20, 100) // 100m blocks
	det, err := roadnet.NewDetector(city, roadnet.Options{
		Radius: 250,     // a ball reaches ~2.5 blocks along the streets
		Window: 10 * 60, // 10-minute windows
		Alpha:  0.8,     // heavily favour sudden increases
	})
	if err != nil {
		panic(err)
	}

	rng := rand.New(rand.NewPCG(4, 2))
	venueX, venueY := 1200.0, 700.0 // intersection (12, 7)
	tm := 0.0
	var peak roadnet.Result
	alerted := false
	for i := 0; i < 12000; i++ {
		tm += rng.ExpFloat64() * 0.4 // ~2.5 requests/second city-wide
		o := roadnet.Object{
			X:      rng.Float64() * 1900,
			Y:      rng.Float64() * 1900,
			Weight: 1,
			Time:   tm,
		}
		if tm > 30*60 && tm < 38*60 && i%3 == 0 {
			// Incident traffic: requests within a block of the venue.
			o.X = venueX + rng.Float64()*160 - 80
			o.Y = venueY + rng.Float64()*160 - 80
		}
		res, err := det.Push(o)
		if err != nil {
			panic(err)
		}
		if res.Found && res.Score > peak.Score {
			peak = res
		}
		if !alerted && res.Found && res.Score > 0.08 {
			alerted = true
			fmt.Printf("[%5.1f min] network surge at intersection %d (%.0fm, %.0fm), score %.3f\n",
				tm/60, res.Center, res.X, res.Y, res.Score)
		}
	}

	fmt.Printf("\npeak ball: centre vertex %d at (%.0fm, %.0fm), score %.3f\n",
		peak.Center, peak.X, peak.Y, peak.Score)
	fmt.Printf("venue was at (%.0fm, %.0fm); network distance of peak centre: ", venueX, venueY)
	src, _ := city.Nearest(venueX, venueY)
	dist := city.Distances(src)[peak.Center]
	fmt.Printf("%.0fm\n", dist)
	if dist <= 250 {
		fmt.Println("the bursty ball reaches the incident along the streets — detection succeeded")
	} else {
		fmt.Println("WARNING: the peak ball does not reach the incident")
	}
	fmt.Printf("\n%d window events processed over %d intersections, %d road segments\n",
		det.Events(), city.VertexCount(), city.EdgeCount())
}
