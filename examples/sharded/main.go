// Sharded ingestion: run the same planted-burst stream through the
// single-engine detector and the sharded concurrent pipeline, batch by
// batch, and show that the pipeline finds the identical burst while
// amortising the per-arrival work.
//
// Run with: go run ./examples/sharded
package main

import (
	"fmt"
	"runtime"
	"time"

	"surge"
	"surge/internal/stream"
)

func main() {
	d := stream.TaxiLike(7)
	d.RatePerHour *= 0.2
	objs := d.Generate(60000)
	objs = stream.Inject(objs, stream.Burst{
		CX: 12.7, CY: 42.05,
		SX: d.QueryWidth() / 6, SY: d.QueryHeight() / 6,
		Start: objs[len(objs)-1].T * 0.7, Duration: 300, Count: 400, Seed: 7,
	})
	batch := make([]surge.Object, 0, 512)
	opt := surge.Options{
		Width:  d.QueryWidth(),
		Height: d.QueryHeight(),
		Window: 300,
		Alpha:  0.5,
	}

	for _, shards := range []int{1, runtime.NumCPU()} {
		opt.Shards = shards
		det, err := surge.New(surge.CellCSPOT, opt)
		if err != nil {
			panic(err)
		}
		var res surge.Result
		start := time.Now()
		for lo := 0; lo < len(objs); lo += cap(batch) {
			hi := min(lo+cap(batch), len(objs))
			batch = batch[:0]
			for _, o := range objs[lo:hi] {
				batch = append(batch, surge.Object{X: o.X, Y: o.Y, Weight: o.Weight, Time: o.T})
			}
			if res, err = det.PushBatch(batch); err != nil {
				panic(err)
			}
		}
		elapsed := time.Since(start)
		fmt.Printf("shards=%d: %d objects in %v (%.0f objects/s)\n",
			det.Shards(), len(objs), elapsed.Round(time.Millisecond),
			float64(len(objs))/elapsed.Seconds())
		if res.Found {
			fmt.Printf("  final bursty region [%.3f,%.3f]x[%.3f,%.3f] score %.1f\n",
				res.Region.MinX, res.Region.MaxX, res.Region.MinY, res.Region.MaxY, res.Score)
		}
		if err := det.Close(); err != nil {
			panic(err)
		}
	}
	fmt.Println("both paths report the identical burst — see doc.go, \"Sharded concurrent pipeline\"")
}
