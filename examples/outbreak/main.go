// Outbreak detection (the paper's Example 1): continuously monitor
// keyword-weighted geo-tagged messages and track the top-k regions with
// sudden spikes of disease-related chatter.
//
// A US-like message stream (Table I envelope) is generated where each
// message carries a relevance weight for the query keywords (most messages
// are irrelevant, weight ~0-1; outbreak messages score high). Two outbreaks
// are planted in different cities at overlapping times; the exact top-k
// detector (CCS-KSURGE) must surface both simultaneously.
//
// Run with: go run ./examples/outbreak
package main

import (
	"fmt"

	"surge"
	"surge/internal/stream"
)

type outbreak struct {
	name     string
	x, y     float64
	start    float64
	duration float64
}

func main() {
	d := stream.USLike(11)
	d.RatePerHour *= 0.05
	// Baseline chatter: relevance weight of ordinary messages is low.
	d.WeightMin, d.WeightMax = 0.0, 1.0
	objs := d.Generate(5000)

	outbreaks := []outbreak{
		{name: "NYC-like cluster", x: 144.8, y: 52.3, start: 1.0 * 3600, duration: 1.5 * 3600},
		{name: "LA-like cluster", x: 106.9, y: 61.5, start: 1.5 * 3600, duration: 1.5 * 3600},
	}
	for i, ob := range outbreaks {
		objs = stream.Inject(objs, stream.Burst{
			CX: ob.x, CY: ob.y,
			SX: d.QueryWidth() * 3, SY: d.QueryHeight() * 3,
			Start: ob.start, Duration: ob.duration,
			Count: 250, Weight: 8, // highly relevant messages
			Seed: uint64(20 + i),
		})
	}

	// Track the top-3 bursty regions of ~10 query-cell size with 1h windows.
	det, err := surge.NewTopK(surge.CellCSPOT, surge.Options{
		Width:  d.QueryWidth() * 10,
		Height: d.QueryHeight() * 10,
		Window: 3600,
		Alpha:  0.6,
	}, 3)
	if err != nil {
		panic(err)
	}

	reported := map[string]bool{}
	var lastT float64
	for _, o := range objs {
		res, err := det.Push(surge.Object{X: o.X, Y: o.Y, Weight: o.Weight, Time: o.T})
		if err != nil {
			panic(err)
		}
		lastT = o.T
		// Report the first time each planted outbreak shows up in the top-k.
		for _, ob := range outbreaks {
			if reported[ob.name] {
				continue
			}
			for rank, r := range res {
				if r.Found && r.Region.Contains(ob.x, ob.y) {
					delay := o.T - ob.start
					fmt.Printf("[%5.2f h] %-16s detected at rank %d, %.1f min after onset (score %.4f)\n",
						o.T/3600, ob.name, rank+1, delay/60, r.Score)
					reported[ob.name] = true
					break
				}
			}
		}
	}

	fmt.Printf("\nfinal top-3 at t=%.2fh:\n", lastT/3600)
	for rank, r := range det.BestK() {
		if !r.Found {
			fmt.Printf("  #%d (none)\n", rank+1)
			continue
		}
		fmt.Printf("  #%d score %8.4f  region x:[%.2f,%.2f) y:[%.2f,%.2f)\n",
			rank+1, r.Score, r.Region.MinX, r.Region.MaxX, r.Region.MinY, r.Region.MaxY)
	}
	if len(reported) != len(outbreaks) {
		fmt.Println("\nWARNING: not every planted outbreak was detected")
	} else {
		fmt.Println("\nboth planted outbreaks surfaced in the top-k while active")
	}
}
