// SURGE as a service, end to end: stand up the HTTP serving layer
// (internal/server — what `surged serve` runs) on a loopback listener,
// then drive it with the typed surge/client package:
//
//  1. subscribe to the SSE feed of bursty-region changes,
//  2. stream a planted-burst workload from two concurrent NDJSON
//     ingesters into the sharded detector,
//  3. query /v1/best and the on-demand /v1/topk,
//  4. snapshot the detector over HTTP and restore the checkpoint into a
//     second server with a different shard count — same answer,
//  5. read a few Prometheus counters from /metrics.
//
// Run with: go run ./examples/server
package main

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"

	"surge"
	"surge/client"
	"surge/internal/server"
	"surge/internal/stream"
)

func main() {
	d := stream.TaxiLike(7)
	d.RatePerHour *= 0.2
	objs := d.Generate(30000)
	objs = stream.Inject(objs, stream.Burst{
		CX: 12.7, CY: 42.05,
		SX: d.QueryWidth() / 6, SY: d.QueryHeight() / 6,
		Start: objs[len(objs)-1].T * 0.7, Duration: 300, Count: 400, Seed: 7,
	})

	cfg := server.Config{
		Algorithm: surge.CellCSPOT,
		Options: surge.Options{
			Width: d.QueryWidth(), Height: d.QueryHeight(),
			Window: 300, Alpha: 0.5,
			Shards: max(2, runtime.NumCPU()),
		},
		TimePolicy: server.Clamp, // concurrent ingesters need not coordinate clocks
		BatchSize:  512,
	}
	c, shutdown := serve(cfg)
	ctx := context.Background()

	// 1. Subscribe before ingesting: every change will be seen (or
	// accounted as dropped if we were too slow).
	sub, err := c.Subscribe(ctx)
	check(err)
	changes := 0
	var lastNote, peak client.Notification
	noteDone := make(chan struct{})
	go func() {
		defer close(noteDone)
		for n := range sub.Events() {
			changes++
			lastNote = n
			if n.Result.Found && n.Result.Score > peak.Result.Score {
				peak = n
			}
			if changes <= 3 && n.Result.Found {
				fmt.Printf("sse: burst #%d at t=%.0f score %.1f region [%.3f,%.3f]x[%.3f,%.3f]\n",
					n.Seq, n.Time, n.Result.Score,
					n.Result.Region.MinX, n.Result.Region.MaxX,
					n.Result.Region.MinY, n.Result.Region.MaxY)
			}
		}
	}()

	// 2. Two concurrent ingesters, round-robin halves of the stream.
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		var part []surge.Object
		for i := g; i < len(objs); i += 2 {
			o := objs[i]
			part = append(part, surge.Object{X: o.X, Y: o.Y, Weight: o.Weight, Time: o.T})
		}
		wg.Add(1)
		go func(part []surge.Object) {
			defer wg.Done()
			accepted, clamped := 0, 0
			for lo := 0; lo < len(part); lo += 2000 {
				hi := min(lo+2000, len(part))
				var buf bytes.Buffer
				check(client.EncodeNDJSON(&buf, part[lo:hi]))
				res, err := c.IngestStream(ctx, &buf, client.NDJSON)
				check(err)
				accepted += res.Accepted
				clamped += res.Clamped
			}
			fmt.Printf("ingester: %d objects accepted (%d clamped)\n", accepted, clamped)
		}(part)
	}
	wg.Wait()

	// 3. Point-in-time queries.
	st, err := c.Best(ctx)
	check(err)
	fmt.Printf("best: t=%.0f live=%d shards=%d score %.1f\n", st.Now, st.Live, st.Shards, st.Result.Score)
	// /v1/topk is served O(1) from the continuously maintained answer;
	// ?mode=replay recomputes from a checkpoint and must agree bitwise.
	tk, err := c.TopK(ctx, 3)
	check(err)
	for i, r := range tk.Results {
		if r.Found {
			fmt.Printf("top-%d (%s, continuous=%v): score %.1f\n", i+1, tk.Algorithm, tk.Continuous, r.Score)
		}
	}
	rep, err := c.TopKMode(ctx, 3, "replay")
	check(err)
	agree := true
	for i := range tk.Results {
		if tk.Results[i].Found != rep.Results[i].Found ||
			math.Float64bits(tk.Results[i].Score) != math.Float64bits(rep.Results[i].Score) {
			fmt.Printf("top-%d: continuous %.6f != replay %.6f\n", i+1, tk.Results[i].Score, rep.Results[i].Score)
			agree = false
		}
	}
	if agree {
		fmt.Println("continuous top-k == checkpoint replay, bit for bit")
	}

	// 4. Snapshot over HTTP, restore into a fresh server with another
	// shard count; the checkpoint is engine- and shard-independent.
	ckpt, err := c.Snapshot(ctx)
	check(err)
	cfg2 := cfg
	cfg2.Options.Shards = 2
	c2, shutdown2 := serve(cfg2)
	st2, err := c2.Restore(ctx, ckpt)
	check(err)
	// Clamped ingest leaves objects sharing a timestamp, which the
	// checkpoint replays in canonical rather than arrival order, so the
	// restored score can differ in the last float bits (see Restore).
	same := math.Abs(st2.Result.Score-st.Result.Score) <= 1e-9*(1+math.Abs(st.Result.Score))
	fmt.Printf("restored %d-byte checkpoint into %d shards: score %.1f (matches source: %v)\n",
		len(ckpt), st2.Shards, st2.Result.Score, same)

	// 5. A few operational counters.
	metrics, err := c.Metrics(ctx)
	check(err)
	for _, line := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(line, "surge_objects_ingested_total") ||
			strings.HasPrefix(line, "surge_notifications_total") ||
			strings.HasPrefix(line, "surge_engine_events_total") {
			fmt.Println("metrics:", line)
		}
	}

	sub.Close()
	<-noteDone
	fmt.Printf("observed %d bursty-region changes over SSE (last seq %d)\n", changes, lastNote.Seq)
	if peak.Result.Found {
		fmt.Printf("peak: seq %d at t=%.0f score %.1f — the planted burst, pushed, not polled\n",
			peak.Seq, peak.Time, peak.Result.Score)
	}
	shutdown2()
	shutdown()
}

// serve starts the HTTP host on a loopback listener and returns a client
// for it plus a shutdown func.
func serve(cfg server.Config) (*client.Client, func()) {
	s, err := server.New(cfg)
	check(err)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	check(err)
	// Long-lived ingest/SSE connections rule out blanket read/write
	// timeouts; the header and idle timeouts still bound slow clients.
	hs := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       120 * time.Second,
		MaxHeaderBytes:    1 << 20,
	}
	go hs.Serve(ln)
	fmt.Printf("serving %s shards=%d on http://%s\n", cfg.Algorithm, cfg.Options.Shards, ln.Addr())
	return client.New("http://" + ln.Addr().String()), func() {
		s.Close()
		hs.Close()
	}
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
