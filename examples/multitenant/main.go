// Two tenants, one stream: host a citywide query and a downtown
// zoom-in on the same server, so the stream is parsed, admitted and
// logged once while each tenant gets its own answer surface:
//
//  1. boot the server with a named "downtown" query and an "ops-mirror"
//     twin of the default beside "default" itself (the citywide view
//     every legacy /v1/* path still serves) — the twin's config matches
//     the default exactly, so both ride ONE engine (shared=true),
//  2. register a fourth query over the wire while the stream is live
//     (runtime queries join at the current stream position with empty
//     windows, so they always get their own engine),
//  3. subscribe to one tenant's SSE feed without touching the others,
//  4. stream a downtown-sized burst from two concurrent ingesters and
//     watch the tenants disagree about it — the zoomed query locks on
//     while the citywide one barely moves,
//  5. read per-query stats and delete the throwaway query.
//
// Identically-configured boot tenants share one engine, so a thousand
// dashboards watching the same query cost one detector, not a thousand.
//
// Run with: go run ./examples/multitenant
package main

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"surge"
	"surge/client"
	"surge/internal/server"
	"surge/internal/stream"
)

func main() {
	d := stream.TaxiLike(11)
	d.RatePerHour *= 0.2
	objs := d.Generate(24000)
	// A burst sized for the downtown query: a quarter of the citywide
	// cell, planted late in the stream.
	burst := stream.Burst{
		CX: 12.7, CY: 42.05,
		SX: d.QueryWidth() / 16, SY: d.QueryHeight() / 16,
		Start: objs[len(objs)-1].T * 0.7, Duration: 300, Count: 300, Seed: 11,
	}
	objs = stream.Inject(objs, burst)

	cfg := server.Config{
		Algorithm: surge.CellCSPOT,
		Options: surge.Options{
			Width: d.QueryWidth(), Height: d.QueryHeight(),
			Window: 300, Alpha: 0.5, Shards: 2,
		},
		TimePolicy: server.Clamp,
		BatchSize:  512,
		// The boot registry: a zoomed-in query and a twin of the citywide
		// view beside the default. Fields left zero inherit the server's
		// config; the twin pins Shards to the default's count so the two
		// configs agree exactly and dedupe onto one engine.
		Queries: []client.QueryConfig{
			{ID: "downtown", Width: d.QueryWidth() / 4, Height: d.QueryHeight() / 4},
			{ID: "ops-mirror", Shards: 2},
		},
	}
	c, shutdown := serve(cfg)
	defer shutdown()
	ctx := context.Background()

	// 2. Queries are also a runtime resource: register one over the wire.
	// It enters the stream now, with empty windows, so unlike the boot
	// twin it cannot share an engine that has already seen data.
	_, err := c.CreateQuery(ctx, client.QueryConfig{ID: "late",
		Width: d.QueryWidth() / 4, Height: d.QueryHeight() / 4})
	check(err)
	ql, err := c.Queries(ctx)
	check(err)
	for _, q := range ql.Queries {
		fmt.Printf("query %-10s algo=%s shared=%v\n", q.ID, q.Algorithm, q.Shared)
	}

	// 3. Per-tenant SSE: only downtown's changes arrive here; the other
	// tenants' notification streams are separate feeds with separate
	// cursors and drop accounting.
	sub, err := c.Query("downtown").Subscribe(ctx)
	check(err)
	changes := 0
	var last client.Notification
	noteDone := make(chan struct{})
	go func() {
		defer close(noteDone)
		for n := range sub.Events() {
			changes++
			last = n
		}
	}()

	// 4. One shared stream, two concurrent ingesters. Parse, admission
	// and ordering happen once; every tenant sees the same batches.
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		var part []surge.Object
		for i := g; i < len(objs); i += 2 {
			o := objs[i]
			part = append(part, surge.Object{X: o.X, Y: o.Y, Weight: o.Weight, Time: o.T})
		}
		wg.Add(1)
		go func(part []surge.Object) {
			defer wg.Done()
			var buf bytes.Buffer
			check(client.EncodeNDJSON(&buf, part))
			_, err := c.IngestStream(ctx, &buf, client.NDJSON)
			check(err)
		}(part)
	}
	wg.Wait()

	// The tenants answer independently over the same stream state.
	city, err := c.Best(ctx) // legacy path == query "default"
	check(err)
	down, err := c.Query("downtown").Best(ctx)
	check(err)
	fmt.Printf("citywide: score %.1f region %.4fx%.4f\n",
		city.Result.Score, city.Result.Region.MaxX-city.Result.Region.MinX,
		city.Result.Region.MaxY-city.Result.Region.MinY)
	fmt.Printf("downtown: score %.1f region %.4fx%.4f (locked on the planted burst: %v)\n",
		down.Result.Score, down.Result.Region.MaxX-down.Result.Region.MinX,
		down.Result.Region.MaxY-down.Result.Region.MinY,
		down.Result.Region.MinX <= burst.CX && burst.CX <= down.Result.Region.MaxX)

	// 5. Per-query telemetry, then retire the throwaway query. Deleting
	// the shared twin would free nothing: "default" keeps their engine.
	qs, err := c.Query("ops-mirror").Stats(ctx)
	check(err)
	fmt.Printf("ops-mirror: %d notifications, %d live objects, err=%q\n",
		qs.Notifications, qs.Live, qs.Err)
	check(c.Query("late").Delete(ctx))
	if _, err := c.Query("late").Best(ctx); err != nil {
		fmt.Printf("deleted query answers: %v\n", err)
	}

	sub.Close()
	<-noteDone
	fmt.Printf("downtown SSE: %d changes (last seq %d) — the citywide feed never saw them\n",
		changes, last.Seq)
}

// serve starts the HTTP host on a loopback listener and returns a client
// for it plus a shutdown func.
func serve(cfg server.Config) (*client.Client, func()) {
	s, err := server.New(cfg)
	check(err)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	check(err)
	hs := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       120 * time.Second,
		MaxHeaderBytes:    1 << 20,
	}
	go hs.Serve(ln)
	fmt.Printf("serving %s on http://%s\n", cfg.Algorithm, ln.Addr())
	return client.New("http://" + ln.Addr().String()), func() {
		s.Close()
		hs.Close()
	}
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
