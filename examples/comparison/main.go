// Comparison: run the exact detector and both approximations side by side on
// one stream and report the empirical approximation quality and speed — a
// miniature of the paper's Tables III/IV on a single UK-like workload.
//
// Run with: go run ./examples/comparison
package main

import (
	"fmt"
	"time"

	"surge"
	"surge/internal/stream"
)

func main() {
	d := stream.UKLike(3)
	d.RatePerHour *= 0.2
	objs := d.Generate(30000)

	opt := surge.Options{
		Width:  d.QueryWidth(),
		Height: d.QueryHeight(),
		Window: 3600,
		Alpha:  0.5,
	}
	exact, err := surge.New(surge.CellCSPOT, opt)
	if err != nil {
		panic(err)
	}
	grid, _ := surge.New(surge.GridApprox, opt)
	multi, _ := surge.New(surge.MultiGrid, opt)

	type acc struct {
		sum     float64
		n       int
		worst   float64
		elapsed time.Duration
	}
	gapsAcc := acc{worst: 1}
	mgapsAcc := acc{worst: 1}

	push := func(det *surge.Detector, o surge.Object, a *acc) surge.Result {
		t0 := time.Now()
		res, err := det.Push(o)
		if err != nil {
			panic(err)
		}
		a.elapsed += time.Since(t0)
		return res
	}
	var exactAcc acc
	for _, ob := range objs {
		o := surge.Object{X: ob.X, Y: ob.Y, Weight: ob.Weight, Time: ob.T}
		er := push(exact, o, &exactAcc)
		gr := push(grid, o, &gapsAcc)
		mr := push(multi, o, &mgapsAcc)
		if !er.Found || er.Score <= 0 {
			continue
		}
		for _, p := range []struct {
			r *acc
			s float64
		}{{&gapsAcc, gr.Score}, {&mgapsAcc, mr.Score}} {
			ratio := p.s / er.Score
			p.r.sum += ratio
			p.r.n++
			if ratio < p.r.worst {
				p.r.worst = ratio
			}
		}
	}

	theoretical := (1 - opt.Alpha) / 4
	fmt.Printf("UK-like stream, %d objects, |W|=1h, alpha=%.1f\n\n", len(objs), opt.Alpha)
	fmt.Printf("%-8s %12s %12s %14s\n", "engine", "mean ratio", "worst ratio", "time/object")
	fmt.Printf("%-8s %12s %12s %14s\n", "CCS", "(exact)", "-",
		fmt.Sprintf("%.2fus", float64(exactAcc.elapsed.Nanoseconds())/1e3/float64(len(objs))))
	for _, row := range []struct {
		name string
		a    acc
	}{{"GAPS", gapsAcc}, {"MGAPS", mgapsAcc}} {
		fmt.Printf("%-8s %11.1f%% %11.1f%% %14s\n",
			row.name, 100*row.a.sum/float64(row.a.n), 100*row.a.worst,
			fmt.Sprintf("%.2fus", float64(row.a.elapsed.Nanoseconds())/1e3/float64(len(objs))))
	}
	fmt.Printf("\ntheoretical guarantee: >= %.1f%% of the optimum (Theorem 3)\n", 100*theoretical)
}
