// Quickstart: feed a small synthetic stream of weighted spatial objects into
// the exact SURGE detector and print the bursty region as it evolves.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand/v2"

	"surge"
)

func main() {
	// Detect 1x1 regions with 60-second sliding windows, weighting burstiness
	// and significance equally.
	det, err := surge.New(surge.CellCSPOT, surge.Options{
		Width:  1,
		Height: 1,
		Window: 60,
		Alpha:  0.5,
	})
	if err != nil {
		panic(err)
	}

	rng := rand.New(rand.NewPCG(1, 2))
	t := 0.0
	var last surge.Result
	for i := 0; i < 2000; i++ {
		t += rng.ExpFloat64() * 0.25 // ~4 objects/second
		obj := surge.Object{
			X:      rng.Float64() * 10,
			Y:      rng.Float64() * 10,
			Weight: 1,
			Time:   t,
		}
		// Between t=200 and t=260 a hotspot appears near (7.5, 2.5).
		if t > 200 && t < 260 && i%2 == 0 {
			obj.X = 7.2 + rng.Float64()*0.6
			obj.Y = 2.2 + rng.Float64()*0.6
			obj.Weight = 5
		}
		res, err := det.Push(obj)
		if err != nil {
			panic(err)
		}
		if res.Found && (last.Region != res.Region) && res.Score > last.Score*1.2 {
			fmt.Printf("t=%6.1f  burst score %6.2f  region x:[%.2f,%.2f) y:[%.2f,%.2f)\n",
				t, res.Score, res.Region.MinX, res.Region.MaxX, res.Region.MinY, res.Region.MaxY)
			last = res
		}
	}

	fmt.Printf("\nprocessed %d events, %d cell searches (%.2f%% of events)\n",
		det.Stats().Events, det.Stats().Searches, det.Stats().SearchRatio()*100)
}
