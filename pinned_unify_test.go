package surge_test

import (
	"encoding/json"
	"flag"
	"math"
	"math/rand/v2"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"surge"
)

// The pinned-answer fixture freezes the exact bits every engine family
// reported before the packed-cellcspot / serve-from-chain unification, so the
// refactor is provably answer-preserving: the same deterministic stream must
// keep reproducing byte-for-byte the same scores and regions. Regenerate only
// when an intentional answer change lands:
//
//	go test -run TestPinnedAnswers -update-pinned
var updatePinned = flag.Bool("update-pinned", false, "rewrite testdata/pinned_answers.json from the current engines")

const (
	pinnedBatch = 100
	pinnedK     = 5
)

// pinnedAnswer stores one recorded Best (or top-k rank) with float64 bits
// rendered as hex so the fixture pins bitwise equality, not almost-equality.
type pinnedAnswer struct {
	Found  bool      `json:"found"`
	Score  string    `json:"score,omitempty"`
	Region [4]string `json:"region,omitempty"`
}

func toPinned(r surge.Result) pinnedAnswer {
	if !r.Found {
		return pinnedAnswer{}
	}
	hx := func(f float64) string { return strconv.FormatUint(math.Float64bits(f), 16) }
	return pinnedAnswer{
		Found:  true,
		Score:  hx(r.Score),
		Region: [4]string{hx(r.Region.MinX), hx(r.Region.MinY), hx(r.Region.MaxX), hx(r.Region.MaxY)},
	}
}

// pinnedStream is the deterministic random stream the fixture was generated
// from: clustered hotspots over background noise, random weights (which keep
// exact-score ties measure-zero, so tie-break changes cannot perturb it).
func pinnedStream() []surge.Object {
	rng := rand.New(rand.NewPCG(95, 191))
	objs := make([]surge.Object, 3000)
	t := 0.0
	for i := range objs {
		t += rng.ExpFloat64() * 0.5
		o := surge.Object{
			X:      rng.Float64() * 10,
			Y:      rng.Float64() * 10,
			Weight: 1 + rng.Float64()*99,
			Time:   t,
		}
		if i%7 == 0 { // recurring hotspot: keeps the top-k ranks contested
			o.X = 4 + rng.Float64()*0.8
			o.Y = 6 + rng.Float64()*0.8
		}
		objs[i] = o
	}
	return objs
}

func pinnedOptions() surge.Options {
	return surge.Options{Width: 1.1, Height: 0.9, Window: 40, Alpha: 0.6}
}

// collectPinned replays the pinned stream through every single-engine
// algorithm plus the maintained top-k chain, recording Best after each batch.
func collectPinned(t *testing.T) map[string][]pinnedAnswer {
	t.Helper()
	objs := pinnedStream()
	out := map[string][]pinnedAnswer{}
	for _, alg := range []surge.Algorithm{
		surge.CellCSPOT, surge.StaticBound, surge.Baseline, surge.GridApprox, surge.MultiGrid,
	} {
		d, err := surge.New(alg, pinnedOptions())
		if err != nil {
			t.Fatal(err)
		}
		var recs []pinnedAnswer
		for i := 0; i < len(objs); i += pinnedBatch {
			if _, err := d.PushBatch(objs[i:min(i+pinnedBatch, len(objs))]); err != nil {
				t.Fatal(err)
			}
			recs = append(recs, toPinned(d.Best()))
		}
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
		out[alg.String()] = recs
	}

	d, err := surge.New(surge.CellCSPOT, pinnedOptions())
	if err != nil {
		t.Fatal(err)
	}
	td, err := d.AttachTopK(surge.CellCSPOT, pinnedK)
	if err != nil {
		t.Fatal(err)
	}
	recs := make([][]pinnedAnswer, pinnedK)
	for i := 0; i < len(objs); i += pinnedBatch {
		if _, err := d.PushBatch(objs[i:min(i+pinnedBatch, len(objs))]); err != nil {
			t.Fatal(err)
		}
		for r, res := range td.BestK() {
			recs[r] = append(recs[r], toPinned(res))
		}
	}
	if err := td.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < pinnedK; r++ {
		out["topk-CCS.r"+strconv.Itoa(r+1)] = recs[r]
	}
	return out
}

func pinnedPath() string { return filepath.Join("testdata", "pinned_answers.json") }

func TestPinnedAnswers(t *testing.T) {
	got := collectPinned(t)
	if *updatePinned {
		blob, err := json.MarshalIndent(got, "", "\t")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(pinnedPath(), append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", pinnedPath())
		return
	}
	blob, err := os.ReadFile(pinnedPath())
	if err != nil {
		t.Fatalf("reading fixture (regenerate with -update-pinned): %v", err)
	}
	var want map[string][]pinnedAnswer
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatal(err)
	}
	for alg, wrecs := range want {
		grecs, ok := got[alg]
		if !ok {
			t.Errorf("%s: fixture algorithm no longer produced", alg)
			continue
		}
		if len(grecs) != len(wrecs) {
			t.Errorf("%s: %d records, fixture has %d", alg, len(grecs), len(wrecs))
			continue
		}
		for i := range wrecs {
			if grecs[i] != wrecs[i] {
				t.Errorf("%s step %d: got %+v, pinned %+v", alg, i, grecs[i], wrecs[i])
			}
		}
	}
	for alg := range got {
		if _, ok := want[alg]; !ok {
			t.Errorf("%s: produced but missing from fixture (regenerate with -update-pinned)", alg)
		}
	}
}
