package surge

import (
	"fmt"

	"surge/internal/core"
	"surge/internal/gapsurge"
	"surge/internal/topk"
	"surge/internal/window"
)

// TopKDetector continuously maintains the top-k bursty regions (Section VI
// of the paper): k regions of the query size such that every object
// contributes to the burst score of at most one of them, selected greedily
// by score. It is not safe for concurrent use.
type TopKDetector struct {
	alg Algorithm
	k   int
	cfg core.Config
	win window.Source
	eng core.TopKEngine
	cur []core.Result

	// Emit callbacks captured once; binding a method value per Push would
	// put a closure allocation on the per-object hot path.
	stepFn    func(core.Event)
	processFn func(core.Event)
}

// NewTopK returns a top-k detector. Supported algorithms: CellCSPOT (the
// paper's kCCS), GridApprox (kGAPS), MultiGrid (kMGAPS) and Oracle (the
// naive greedy baseline of Section VII-F).
//
// The top-k detectors have no sharded pipeline yet: Options.Shards and
// Options.ShardBlockCols are ignored and detection runs on a single engine
// (cross-shard top-k merge is a ROADMAP item).
func NewTopK(alg Algorithm, opt Options, k int) (*TopKDetector, error) {
	if k < 1 {
		return nil, fmt.Errorf("surge: k must be >= 1, got %d", k)
	}
	cfg, err := opt.config()
	if err != nil {
		return nil, err
	}
	var eng core.TopKEngine
	switch alg {
	case CellCSPOT:
		eng, err = topk.NewKCCS(cfg, k)
	case GridApprox:
		eng, err = gapsurge.NewTopK(cfg, false, k)
	case MultiGrid:
		eng, err = gapsurge.NewTopK(cfg, true, k)
	case Oracle:
		eng, err = topk.NewNaive(cfg, k)
	default:
		return nil, fmt.Errorf("surge: algorithm %v has no top-k variant", alg)
	}
	if err != nil {
		return nil, err
	}
	win, err := newSource(opt, cfg)
	if err != nil {
		return nil, err
	}
	d := &TopKDetector{alg: alg, k: k, cfg: cfg, win: win, eng: eng}
	d.stepFn = d.step
	d.processFn = eng.Process
	return d, nil
}

// Algorithm returns the detector's algorithm.
func (d *TopKDetector) Algorithm() Algorithm { return d.alg }

// K returns the number of regions maintained.
func (d *TopKDetector) K() int { return d.k }

// Push feeds one object into the stream, processes every window transition
// it makes due, and returns the refreshed top-k regions in rank order.
// Slots beyond the number of non-empty regions have Found == false.
func (d *TopKDetector) Push(o Object) ([]Result, error) {
	_, err := d.win.Push(core.Object{X: o.X, Y: o.Y, Weight: o.Weight, T: o.Time}, d.stepFn)
	if err != nil {
		return nil, err
	}
	return d.results(), nil
}

// PushBatch feeds a time-ordered batch of objects and returns the top-k
// regions after the whole batch, querying the engine once at the end rather
// than after every window transition. The final answer is equivalent to
// pushing the objects individually: same regions, with scores equal up to
// the floating-point rounding of the engines' incrementally maintained
// caches (the query schedule decides when cached candidates are refreshed).
// On error the stream state includes every object before the offending one.
func (d *TopKDetector) PushBatch(objs []Object) ([]Result, error) {
	for _, o := range objs {
		if _, err := d.win.Push(core.Object{X: o.X, Y: o.Y, Weight: o.Weight, T: o.Time}, d.processFn); err != nil {
			return nil, err
		}
	}
	d.cur = d.eng.BestK()
	return d.results(), nil
}

// AdvanceTo moves the stream clock to t without a new arrival and returns
// the refreshed top-k regions.
func (d *TopKDetector) AdvanceTo(t float64) ([]Result, error) {
	if err := d.win.Advance(t, d.stepFn); err != nil {
		return nil, err
	}
	d.cur = d.eng.BestK()
	return d.results(), nil
}

func (d *TopKDetector) step(ev core.Event) {
	d.eng.Process(ev)
	d.cur = d.eng.BestK()
}

// BestK returns the current top-k regions.
func (d *TopKDetector) BestK() []Result {
	d.cur = d.eng.BestK()
	return d.results()
}

// Now returns the current stream time.
func (d *TopKDetector) Now() float64 { return d.win.Now() }

// Stats returns instrumentation counters for engines that expose them.
func (d *TopKDetector) Stats() Stats {
	if s, ok := d.eng.(statser); ok {
		return toStats(s.Stats())
	}
	return Stats{}
}

func (d *TopKDetector) results() []Result {
	out := make([]Result, d.k)
	for i, r := range d.cur {
		if i >= d.k {
			break
		}
		out[i] = toResult(r)
	}
	return out
}
