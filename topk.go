package surge

import (
	"errors"
	"fmt"
	"slices"

	"surge/internal/core"
	"surge/internal/gapsurge"
	"surge/internal/topk"
	"surge/internal/window"
)

// ErrAttached is returned by the stream-mutating methods of a TopKDetector
// created with Detector.AttachTopK: an attached detector is fed by its
// parent's stream, so objects must be pushed through the parent.
var ErrAttached = errors.New("surge: top-k detector is attached; push through the parent detector")

// TopKDetector continuously maintains the top-k bursty regions (Section VI
// of the paper): k regions of the query size such that every object
// contributes to the burst score of at most one of them, selected greedily
// by score. It is not safe for concurrent use.
//
// A TopKDetector is either standalone (NewTopK, RestoreTopK) — it owns its
// sliding windows and is fed with Push/PushBatch/AdvanceTo — or attached
// (Detector.AttachTopK) — it shares the parent detector's windows and is
// maintained incrementally by every object the parent ingests.
type TopKDetector struct {
	alg     Algorithm
	k       int
	cfg     core.Config
	win     window.Source // nil when attached
	eng     core.TopKEngine
	parent  *Detector // non-nil when attached
	cur     []core.Result
	counted bool
	closed  bool

	liveObjs map[uint64]liveObj // standalone: live set for Checkpoint
	ckptObjs []checkpointObject // checkpoint scratch, reused across calls

	res []Result // result buffer reused by the query methods

	// Emit callbacks captured once; binding a method value per Push would
	// put a closure allocation on the per-object hot path.
	stepFn    func(core.Event)
	processFn func(core.Event)
}

// newTopKEngine builds the top-k engine for an algorithm. Supported:
// CellCSPOT (the paper's kCCS), GridApprox (kGAPS), MultiGrid (kMGAPS) and
// Oracle (the naive greedy baseline of Section VII-F).
func newTopKEngine(alg Algorithm, cfg core.Config, k int) (core.TopKEngine, error) {
	switch alg {
	case CellCSPOT:
		return topk.NewKCCS(cfg, k)
	case GridApprox:
		return gapsurge.NewTopK(cfg, false, k)
	case MultiGrid:
		return gapsurge.NewTopK(cfg, true, k)
	case Oracle:
		return topk.NewNaive(cfg, k)
	default:
		return nil, fmt.Errorf("surge: algorithm %v has no top-k variant", alg)
	}
}

// NewTopK returns a standalone top-k detector. Supported algorithms:
// CellCSPOT (the paper's kCCS), GridApprox (kGAPS), MultiGrid (kMGAPS) and
// Oracle (the naive greedy baseline of Section VII-F).
//
// The top-k detectors have no sharded pipeline yet: Options.Shards and
// Options.ShardBlockCols are ignored and detection runs on a single engine
// (cross-shard top-k merge is a ROADMAP item).
func NewTopK(alg Algorithm, opt Options, k int) (*TopKDetector, error) {
	if k < 1 {
		return nil, fmt.Errorf("surge: k must be >= 1, got %d", k)
	}
	cfg, err := opt.config()
	if err != nil {
		return nil, err
	}
	eng, err := newTopKEngine(alg, cfg, k)
	if err != nil {
		return nil, err
	}
	win, err := newSource(opt, cfg)
	if err != nil {
		return nil, err
	}
	d := &TopKDetector{
		alg: alg, k: k, cfg: cfg, win: win, eng: eng,
		counted:  opt.CountWindows,
		liveObjs: make(map[uint64]liveObj),
	}
	d.stepFn = d.step
	d.processFn = d.process
	return d, nil
}

// AttachTopK creates a top-k detector maintained by this detector's event
// stream: the current live windows are replayed into a fresh top-k engine
// in arrival order, and from then on every object pushed into the parent
// (Push, PushBatch, AdvanceTo — sharded or not) also maintains the attached
// engine, on the caller's goroutine. Query it with BestK; the stream-
// mutating methods return ErrAttached.
//
// Because the kCCS engine keeps its per-cell state canonical (arrival-
// ordered storage, canonically rescored candidates), the attached detector
// reports bitwise the same scores as replaying a checkpoint of the parent
// into RestoreTopK — continuous maintenance and replay are interchangeable.
//
// Close the attached detector to detach it from the parent.
func (d *Detector) AttachTopK(alg Algorithm, k int) (*TopKDetector, error) {
	if d.closed {
		return nil, ErrClosed
	}
	if k < 1 {
		return nil, fmt.Errorf("surge: k must be >= 1, got %d", k)
	}
	eng, err := newTopKEngine(alg, d.cfg, k)
	if err != nil {
		return nil, err
	}
	td := &TopKDetector{
		alg: alg, k: k, cfg: d.cfg, eng: eng,
		parent:  d,
		counted: d.counted,
	}
	td.processFn = eng.Process
	// Seed the engine with the live windows in arrival (= id) order — the
	// canonical order the engines' cell storage is defined over — emitting
	// the Grown transitions the parent's windows have already performed.
	ids := make([]uint64, 0, len(d.liveObjs))
	for id := range d.liveObjs {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	for _, id := range ids {
		eng.Process(core.Event{Kind: core.New, Obj: d.liveObjs[id].obj})
	}
	for _, id := range ids {
		if lo := d.liveObjs[id]; lo.past {
			eng.Process(core.Event{Kind: core.Grown, Obj: lo.obj})
		}
	}
	d.taps = append(d.taps, td)
	return td, nil
}

// Algorithm returns the detector's algorithm.
func (d *TopKDetector) Algorithm() Algorithm { return d.alg }

// K returns the number of regions maintained.
func (d *TopKDetector) K() int { return d.k }

// Attached reports whether the detector is fed by a parent detector.
func (d *TopKDetector) Attached() bool { return d.parent != nil }

// Close detaches an attached detector from its parent and stops further
// maintenance; the query methods keep answering from the captured state.
// On a standalone detector it only marks the stream closed. Close is
// idempotent.
func (d *TopKDetector) Close() error {
	if d.closed {
		return nil
	}
	d.closed = true
	if d.parent != nil {
		taps := d.parent.taps[:0]
		for _, t := range d.parent.taps {
			if t != d {
				taps = append(taps, t)
			}
		}
		d.parent.taps = taps
	}
	return nil
}

// Push feeds one object into the stream, processes every window transition
// it makes due, and returns the refreshed top-k regions in rank order.
// Slots beyond the number of non-empty regions have Found == false. The
// returned slice is reused by subsequent calls; copy it to retain. On an
// attached detector it returns ErrAttached.
func (d *TopKDetector) Push(o Object) ([]Result, error) {
	if err := d.pushable(); err != nil {
		return nil, err
	}
	_, err := d.win.Push(core.Object{X: o.X, Y: o.Y, Weight: o.Weight, T: o.Time}, d.stepFn)
	if err != nil {
		return nil, err
	}
	return d.results(), nil
}

// PushBatch feeds a time-ordered batch of objects and returns the top-k
// regions after the whole batch, querying the engine once at the end rather
// than after every window transition. The final answer is equivalent to
// pushing the objects individually: same regions, with scores equal up to
// the floating-point rounding of the engines' incrementally maintained
// caches (the query schedule decides when cached candidates are refreshed;
// for the canonically rescored kCCS the scores are bitwise identical).
// On error the stream state includes every object before the offending one.
// The returned slice is reused by subsequent calls.
func (d *TopKDetector) PushBatch(objs []Object) ([]Result, error) {
	if err := d.pushable(); err != nil {
		return nil, err
	}
	for _, o := range objs {
		if _, err := d.win.Push(core.Object{X: o.X, Y: o.Y, Weight: o.Weight, T: o.Time}, d.processFn); err != nil {
			return nil, err
		}
	}
	d.cur = d.eng.BestK()
	return d.results(), nil
}

// AdvanceTo moves the stream clock to t without a new arrival and returns
// the refreshed top-k regions. The returned slice is reused by subsequent
// calls.
func (d *TopKDetector) AdvanceTo(t float64) ([]Result, error) {
	if err := d.pushable(); err != nil {
		return nil, err
	}
	if err := d.win.Advance(t, d.stepFn); err != nil {
		return nil, err
	}
	d.cur = d.eng.BestK()
	return d.results(), nil
}

// pushable rejects stream mutations on attached or closed detectors.
func (d *TopKDetector) pushable() error {
	if d.parent != nil {
		return ErrAttached
	}
	if d.closed {
		return ErrClosed
	}
	return nil
}

func (d *TopKDetector) step(ev core.Event) {
	d.trackLive(ev)
	d.eng.Process(ev)
	d.cur = d.eng.BestK()
}

func (d *TopKDetector) process(ev core.Event) {
	d.trackLive(ev)
	d.eng.Process(ev)
}

func (d *TopKDetector) trackLive(ev core.Event) { trackLiveObj(d.liveObjs, ev) }

// BestK returns the current top-k regions. The returned slice is reused by
// subsequent calls; copy it to retain.
func (d *TopKDetector) BestK() []Result {
	d.cur = d.eng.BestK()
	return d.results()
}

// Now returns the current stream time (the parent's on an attached
// detector).
func (d *TopKDetector) Now() float64 {
	if d.parent != nil {
		return d.parent.Now()
	}
	return d.win.Now()
}

// Stats returns instrumentation counters for engines that expose them.
func (d *TopKDetector) Stats() Stats {
	if s, ok := d.eng.(statser); ok {
		return toStats(s.Stats())
	}
	return Stats{}
}

func (d *TopKDetector) results() []Result {
	if d.res == nil {
		d.res = make([]Result, d.k)
	}
	for i := range d.res {
		d.res[i] = Result{}
	}
	for i, r := range d.cur {
		if i >= d.k {
			break
		}
		d.res[i] = toResult(r)
	}
	return d.res
}
