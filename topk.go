package surge

import (
	"errors"
	"fmt"
	"slices"

	"surge/internal/core"
	"surge/internal/gapsurge"
	"surge/internal/shard"
	"surge/internal/topk"
	"surge/internal/window"
)

// ErrAttached is returned by the stream-mutating methods of a TopKDetector
// created with Detector.AttachTopK: an attached detector is fed by its
// parent's stream, so objects must be pushed through the parent.
var ErrAttached = errors.New("surge: top-k detector is attached; push through the parent detector")

// errBestChainDetached is recorded on a parent whose serving chain
// (AttachTopKBest) was detached: the retired engines are gone, so Best can
// only answer from the state captured at detach. A subsequent
// AttachTopKBest clears it — a fresh chain takes over serving.
var errBestChainDetached = errors.New("surge: serving top-k chain detached; Best answers from the state captured at detach")

// TopKDetector continuously maintains the top-k bursty regions (Section VI
// of the paper): k regions of the query size such that every object
// contributes to the burst score of at most one of them, selected greedily
// by score. It is not safe for concurrent use.
//
// A TopKDetector is either standalone (NewTopK, RestoreTopK) — it owns its
// sliding windows and is fed with Push/PushBatch/AdvanceTo — or attached
// (Detector.AttachTopK) — it shares the parent detector's windows and is
// maintained incrementally by every object the parent ingests.
type TopKDetector struct {
	alg     Algorithm
	k       int
	cfg     core.Config
	win     window.Source    // nil when attached
	eng     core.TopKEngine  // single-engine path; nil when chain-backed
	pipe    *shard.Pipeline  // owned top-k-only pipeline (standalone sharded)
	chain   *shard.TopKChain // cross-shard chain (on pipe, or the parent's pipeline)
	parent  *Detector        // non-nil when attached
	cur     []core.Result
	err     error // first chain failure, surfaced by Err
	counted bool
	closed  bool
	frozen  bool // chain gone (parent closed); query methods serve cur
	shards  int  // requested Options.Shards (recorded in checkpoints)
	blkCols int  // requested Options.ShardBlockCols

	liveObjs map[uint64]liveObj // standalone: live set for Checkpoint
	ckptObjs []checkpointObject // checkpoint scratch, reused across calls

	res []Result // result buffer reused by the query methods

	finalStats Stats // merged stats captured at freeze/Close (chain-backed)

	// Emit callbacks captured once; binding a method value per Push would
	// put a closure allocation on the per-object hot path.
	stepFn    func(core.Event)
	processFn func(core.Event)
	routeFn   func(core.Event)
}

// newTopKEngine builds the top-k engine for an algorithm. Supported:
// CellCSPOT (the paper's kCCS), GridApprox (kGAPS), MultiGrid (kMGAPS) and
// Oracle (the naive greedy baseline of Section VII-F).
func newTopKEngine(alg Algorithm, cfg core.Config, k int) (core.TopKEngine, error) {
	switch alg {
	case CellCSPOT:
		return topk.NewKCCS(cfg, k)
	case GridApprox:
		return gapsurge.NewTopK(cfg, false, k)
	case MultiGrid:
		return gapsurge.NewTopK(cfg, true, k)
	case Oracle:
		return topk.NewNaive(cfg, k)
	default:
		return nil, fmt.Errorf("surge: algorithm %v has no top-k variant", alg)
	}
}

// newTopKShardEngine builds the per-shard engine of the cross-shard chain;
// every supported top-k engine implements the maskable per-problem API.
func newTopKShardEngine(alg Algorithm, cfg core.Config, k int) (core.TopKShard, error) {
	eng, err := newTopKEngine(alg, cfg, k)
	if err != nil {
		return nil, err
	}
	se, ok := eng.(core.TopKShard)
	if !ok {
		return nil, fmt.Errorf("surge: algorithm %v has no sharded top-k variant", alg)
	}
	return se, nil
}

// NewTopK returns a standalone top-k detector. Supported algorithms:
// CellCSPOT (the paper's kCCS), GridApprox (kGAPS), MultiGrid (kMGAPS) and
// Oracle (the naive greedy baseline of Section VII-F).
//
// Options.Shards >= 2 runs the sharded top-k pipeline: every shard maintains
// the chain's candidate state over its owned column blocks (plus the halo),
// and each query runs the greedy chain globally — the best region across
// shards is selected, its objects are masked, and only the shards its
// coverage can reach re-solve the lower-ranked problems. The merged answer
// equals the single-engine chain's (bitwise for kCCS; same regions for
// kGAPS/kMGAPS). Call Close when done to stop the shard goroutines.
func NewTopK(alg Algorithm, opt Options, k int) (*TopKDetector, error) {
	if k < 1 {
		return nil, fmt.Errorf("surge: k must be >= 1, got %d", k)
	}
	cfg, err := opt.config()
	if err != nil {
		return nil, err
	}
	win, err := newSource(opt, cfg)
	if err != nil {
		return nil, err
	}
	d := &TopKDetector{
		alg: alg, k: k, cfg: cfg, win: win,
		counted:  opt.CountWindows,
		liveObjs: make(map[uint64]liveObj),
		shards:   opt.Shards,
		blkCols:  opt.ShardBlockCols,
	}
	d.stepFn = d.step
	d.routeFn = d.routeStep
	if opt.Shards >= 2 {
		d.pipe, d.chain, err = shard.NewTopK(cfg, opt.Shards, opt.ShardBlockCols,
			shard.Params{FlushEvents: opt.ShardFlushEvents}, k,
			func(scfg core.Config) (core.TopKShard, error) { return newTopKShardEngine(alg, scfg, k) })
		if err != nil {
			return nil, err
		}
		return d, nil
	}
	d.eng, err = newTopKEngine(alg, cfg, k)
	if err != nil {
		return nil, err
	}
	d.processFn = d.process
	return d, nil
}

// AttachTopK creates a top-k detector maintained by this detector's event
// stream: the current live windows are replayed into fresh top-k engines in
// arrival order, and from then on every object pushed into the parent
// (Push, PushBatch, AdvanceTo) also maintains the attached engines. On a
// single-engine parent the maintenance runs on the caller's goroutine; on a
// sharded parent the engines ride the shard workers — each worker maintains
// the chain's candidate state for its owned columns alongside its
// single-region engine, so per-event maintenance is distributed exactly like
// detection and BestK merges the per-shard answers with the cross-shard
// greedy chain. Query it with BestK; the stream-mutating methods return
// ErrAttached.
//
// Because the kCCS engine keeps its per-cell state canonical (arrival-
// ordered storage, canonically rescored candidates), the attached detector
// reports bitwise the same scores as replaying a checkpoint of the parent
// into RestoreTopK — continuous maintenance and replay are interchangeable,
// sharded or not.
//
// Close the attached detector to detach it from the parent. Closing the
// parent freezes the attached detector's answer.
func (d *Detector) AttachTopK(alg Algorithm, k int) (*TopKDetector, error) {
	if d.closed {
		return nil, ErrClosed
	}
	if k < 1 {
		return nil, fmt.Errorf("surge: k must be >= 1, got %d", k)
	}
	if d.pipe != nil {
		chain, err := d.pipe.AttachTopK(k, func(scfg core.Config) (core.TopKShard, error) {
			return newTopKShardEngine(alg, scfg, k)
		}, d.seedEvents())
		if err != nil {
			return nil, err
		}
		td := &TopKDetector{
			alg: alg, k: k, cfg: d.cfg, chain: chain,
			parent:  d,
			counted: d.counted,
			shards:  d.shards,
			blkCols: d.blkCols,
		}
		d.ctaps = append(d.ctaps, td)
		return td, nil
	}
	eng, err := newTopKEngine(alg, d.cfg, k)
	if err != nil {
		return nil, err
	}
	td := &TopKDetector{
		alg: alg, k: k, cfg: d.cfg, eng: eng,
		parent:  d,
		counted: d.counted,
	}
	td.processFn = eng.Process
	for _, ev := range d.seedEvents() {
		eng.Process(ev)
	}
	d.taps = append(d.taps, td)
	return td, nil
}

// AttachTopKBest attaches a top-k detector exactly like AttachTopK and then
// switches the parent to serve Best from the chain's rank-1 region, retiring
// the single-region engines entirely: on a sharded parent the workers drop
// their engines (freeing their state), on a single-engine parent the engine
// is released. One maintained engine family then answers both the top-k and
// the single-region queries, so ingest pays the chain maintenance once
// instead of maintaining two engine families side by side.
//
// The chain's first problem is the unconstrained cSPOT problem, so its
// rank-1 region is the single-region answer — bitwise for the exact family
// (the kCCS chain under CellCSPOT answers exactly what CCS, B-CCS and Base
// report) and for the grid approximations paired with their own chains
// (GridApprox with kGAPS, MultiGrid with kMGAPS). Pass a chain algorithm
// whose rank-1 matches the parent's algorithm; AG2 and Oracle parents have
// no matching chain and should keep AttachTopK.
//
// The engine retirement is permanent: closing (detaching) the returned
// detector leaves the parent without any engine — it degrades to its
// retained answer and records an error for Err, like a failed pipeline —
// until another AttachTopKBest installs a fresh serving chain (which clears
// that detach error). Stats reports the chain's counters. Checkpoint is
// unaffected (it serialises the live windows, not engine state).
func (d *Detector) AttachTopKBest(alg Algorithm, k int) (*TopKDetector, error) {
	if d.bestChain != nil {
		return nil, errors.New("surge: detector already serves Best from a top-k chain")
	}
	td, err := d.AttachTopK(alg, k)
	if err != nil {
		return nil, err
	}
	d.bestChain = td
	d.engOff = true
	if d.err == errBestChainDetached {
		d.err = nil // serving recovered: a fresh chain took over
	}
	if d.pipe != nil {
		d.pipe.DropEngines()
	} else {
		d.eng = nil
	}
	d.refreshFromBestChain()
	return td, nil
}

// rank1 returns the chain's current rank-1 answer — the single-region result
// the parent serves under AttachTopKBest — refreshing the cached top-k unless
// frozen. On a chain failure the retained answer is returned alongside the
// error.
func (td *TopKDetector) rank1() (core.Result, error) {
	var err error
	if td.chain != nil {
		if !td.frozen {
			err = td.refreshFromChain()
		}
	} else {
		td.cur = td.eng.BestK()
	}
	if len(td.cur) == 0 {
		return core.Result{}, err
	}
	return td.cur[0], err
}

// seedEvents returns the live windows as the canonical arrival-order event
// sequence — New transitions in arrival (= id) order, then the Grown
// transitions the windows have already performed — the order the engines'
// cell storage is defined over.
func (d *Detector) seedEvents() []core.Event {
	ids := make([]uint64, 0, len(d.liveObjs))
	for id := range d.liveObjs {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	evs := make([]core.Event, 0, 2*len(ids))
	for _, id := range ids {
		evs = append(evs, core.Event{Kind: core.New, Obj: d.liveObjs[id].obj})
	}
	for _, id := range ids {
		if lo := d.liveObjs[id]; lo.past {
			evs = append(evs, core.Event{Kind: core.Grown, Obj: lo.obj})
		}
	}
	return evs
}

// Algorithm returns the detector's algorithm.
func (d *TopKDetector) Algorithm() Algorithm { return d.alg }

// K returns the number of regions maintained.
func (d *TopKDetector) K() int { return d.k }

// Attached reports whether the detector is fed by a parent detector.
func (d *TopKDetector) Attached() bool { return d.parent != nil }

// recordErr keeps the first chain failure for Err.
func (d *TopKDetector) recordErr(err error) {
	if d.err == nil {
		d.err = err
	}
}

// Err returns the first error the cross-shard chain reported to a query or
// push, nil if none — the top-k counterpart of Detector.Err. A detector
// with a non-nil Err keeps serving its last good answer (BestK) but can no
// longer refresh it. Freezes at Close are not errors.
func (d *TopKDetector) Err() error { return d.err }

// Shards returns the number of engine shards maintaining the chain (1 on
// the single-engine path; an attached detector reports its parent's count).
func (d *TopKDetector) Shards() int {
	switch {
	case d.pipe != nil:
		return d.pipe.Shards()
	case d.parent != nil:
		return d.parent.Shards()
	default:
		return 1
	}
}

// Close detaches an attached detector from its parent and stops further
// maintenance; the query methods keep answering from the captured state. On
// a standalone detector it marks the stream closed and, on the sharded path,
// captures the final answer and shuts the shard goroutines down. Close is
// idempotent.
func (d *TopKDetector) Close() error {
	if d.closed {
		return nil
	}
	d.closed = true
	if d.chain != nil {
		d.freeze()
		if d.pipe != nil { // standalone sharded: the pipeline is ours
			d.pipe.Close()
		} else { // attached: detach from the parent's workers
			d.chain.Close()
		}
	}
	if d.parent != nil {
		d.parent.detachTopK(d)
	}
	return nil
}

// freeze captures the chain's final answer and statistics so the query
// methods keep answering after the chain is gone. Called by Close and by
// the parent detector's Close.
func (d *TopKDetector) freeze() {
	if d.frozen {
		return
	}
	d.frozen = true
	if res, st, err := d.chain.Query(); err == nil {
		d.cur = append(d.cur[:0], res...)
		d.finalStats = toStats(st)
	}
}

// detachTopK removes td from the detector's attached-tap bookkeeping,
// truncating the freed tail slots so a detached detector's engine and
// buffers are not kept reachable through the parent's slices. Detaching the
// chain that serves Best (AttachTopKBest) captures its final answer and
// degrades the parent to that retained answer, recording an error for Err —
// the engines it replaced are gone.
func (d *Detector) detachTopK(td *TopKDetector) {
	d.taps = removeTap(d.taps, td)
	d.ctaps = removeTap(d.ctaps, td)
	if td == d.bestChain {
		if r, err := td.rank1(); err == nil {
			d.cur = r
		}
		d.bestChain = nil
		d.recordErr(errBestChainDetached)
	}
}

func removeTap(taps []*TopKDetector, td *TopKDetector) []*TopKDetector {
	kept := taps[:0]
	for _, t := range taps {
		if t != td {
			kept = append(kept, t)
		}
	}
	for i := len(kept); i < len(taps); i++ {
		taps[i] = nil // drop the stale tail reference
	}
	return kept
}

// Push feeds one object into the stream, processes every window transition
// it makes due, and returns the refreshed top-k regions in rank order.
// Slots beyond the number of non-empty regions have Found == false. The
// returned slice is reused by subsequent calls; copy it to retain. On an
// attached detector it returns ErrAttached.
func (d *TopKDetector) Push(o Object) ([]Result, error) {
	if err := d.pushable(); err != nil {
		return nil, err
	}
	if d.pipe != nil {
		return d.pushSharded([]Object{o})
	}
	_, err := d.win.Push(core.Object{X: o.X, Y: o.Y, Weight: o.Weight, T: o.Time}, d.stepFn)
	if err != nil {
		return nil, err
	}
	return d.results(), nil
}

// pushSharded routes a batch into the shard workers and synchronises on the
// cross-shard chain once at the end.
func (d *TopKDetector) pushSharded(objs []Object) ([]Result, error) {
	for _, o := range objs {
		if _, err := d.win.Push(core.Object{X: o.X, Y: o.Y, Weight: o.Weight, T: o.Time}, d.routeFn); err != nil {
			return nil, err
		}
	}
	if err := d.refreshFromChain(); err != nil {
		return nil, err
	}
	return d.results(), nil
}

// refreshFromChain synchronises d.cur with the cross-shard chain, recording
// the first failure for Err.
func (d *TopKDetector) refreshFromChain() error {
	res, _, err := d.chain.Query()
	if err != nil {
		d.recordErr(err)
		return err
	}
	d.cur = append(d.cur[:0], res...)
	return nil
}

// routeStep hands one window event to the sharded pipeline.
func (d *TopKDetector) routeStep(ev core.Event) {
	d.trackLive(ev)
	d.pipe.Route(ev)
}

// PushBatch feeds a time-ordered batch of objects and returns the top-k
// regions after the whole batch, querying the engine once at the end rather
// than after every window transition. The final answer is equivalent to
// pushing the objects individually: same regions, with scores equal up to
// the floating-point rounding of the engines' incrementally maintained
// caches (the query schedule decides when cached candidates are refreshed;
// for the canonically rescored kCCS the scores are bitwise identical).
// On error the stream state includes every object before the offending one.
// The returned slice is reused by subsequent calls.
func (d *TopKDetector) PushBatch(objs []Object) ([]Result, error) {
	if err := d.pushable(); err != nil {
		return nil, err
	}
	if d.pipe != nil {
		return d.pushSharded(objs)
	}
	for _, o := range objs {
		if _, err := d.win.Push(core.Object{X: o.X, Y: o.Y, Weight: o.Weight, T: o.Time}, d.processFn); err != nil {
			return nil, err
		}
	}
	d.cur = d.eng.BestK()
	return d.results(), nil
}

// AdvanceTo moves the stream clock to t without a new arrival and returns
// the refreshed top-k regions. The returned slice is reused by subsequent
// calls.
func (d *TopKDetector) AdvanceTo(t float64) ([]Result, error) {
	if err := d.pushable(); err != nil {
		return nil, err
	}
	if d.pipe != nil {
		if err := d.win.Advance(t, d.routeFn); err != nil {
			return nil, err
		}
		if err := d.refreshFromChain(); err != nil {
			return nil, err
		}
		return d.results(), nil
	}
	if err := d.win.Advance(t, d.stepFn); err != nil {
		return nil, err
	}
	d.cur = d.eng.BestK()
	return d.results(), nil
}

// pushable rejects stream mutations on attached or closed detectors.
func (d *TopKDetector) pushable() error {
	if d.parent != nil {
		return ErrAttached
	}
	if d.closed {
		return ErrClosed
	}
	return nil
}

func (d *TopKDetector) step(ev core.Event) {
	d.trackLive(ev)
	d.eng.Process(ev)
	d.cur = d.eng.BestK()
}

func (d *TopKDetector) process(ev core.Event) {
	d.trackLive(ev)
	d.eng.Process(ev)
}

func (d *TopKDetector) trackLive(ev core.Event) { trackLiveObj(d.liveObjs, ev) }

// BestK returns the current top-k regions. On a chain-backed detector
// (standalone sharded, or attached to a sharded parent) this runs the
// cross-shard greedy merge — a synchronisation point of the shard pipeline —
// unless no event arrived since the last query. After Close (or after a
// parent's Close) it keeps returning the answer captured then. The returned
// slice is reused by subsequent calls; copy it to retain.
func (d *TopKDetector) BestK() []Result {
	if d.chain != nil {
		if !d.frozen {
			d.refreshFromChain() // on failure, serve the retained answer
		}
		return d.results()
	}
	d.cur = d.eng.BestK()
	return d.results()
}

// Now returns the current stream time (the parent's on an attached
// detector).
func (d *TopKDetector) Now() float64 {
	if d.parent != nil {
		return d.parent.Now()
	}
	return d.win.Now()
}

// Stats returns instrumentation counters for engines that expose them. On a
// chain-backed detector the per-shard counters are summed (a synchronisation
// point; an event replicated into a halo is counted by each shard that
// received it). After a freeze the counters captured then are returned.
func (d *TopKDetector) Stats() Stats {
	if d.chain != nil {
		if d.frozen {
			return d.finalStats
		}
		if _, st, err := d.chain.Query(); err == nil {
			return toStats(st)
		} else {
			d.recordErr(err)
		}
		return Stats{}
	}
	if s, ok := d.eng.(statser); ok {
		return toStats(s.Stats())
	}
	return Stats{}
}

func (d *TopKDetector) results() []Result {
	if d.res == nil {
		d.res = make([]Result, d.k)
	}
	for i := range d.res {
		d.res[i] = Result{}
	}
	for i, r := range d.cur {
		if i >= d.k {
			break
		}
		d.res[i] = toResult(r)
	}
	return d.res
}
