package surge_test

import (
	"math"
	"testing"

	"surge"
)

func pushChunks(t *testing.T, det *surge.Detector, objs []surge.Object, chunk int) surge.Result {
	t.Helper()
	var res surge.Result
	for lo := 0; lo < len(objs); lo += chunk {
		hi := min(lo+chunk, len(objs))
		var err error
		res, err = det.PushBatch(objs[lo:hi])
		if err != nil {
			t.Fatal(err)
		}
	}
	return res
}

// TestRestoreHonorsCheckpointedShards: a checkpoint written by a sharded
// detector restores into a sharded pipeline of the same shape (the former
// ROADMAP open item — Restore used to always rebuild a single engine).
func TestRestoreHonorsCheckpointedShards(t *testing.T) {
	o := opts()
	o.Shards = 3
	det, err := surge.New(surge.CellCSPOT, o)
	if err != nil {
		t.Fatal(err)
	}
	defer det.Close()
	pushChunks(t, det, randomObjects(121, 400, 6), 64)
	data, err := det.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := surge.Restore(surge.CellCSPOT, data)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if restored.Shards() != 3 {
		t.Fatalf("restored into %d shards, want the checkpointed 3", restored.Shards())
	}
	a, b := det.Best(), restored.Best()
	if a.Found != b.Found || math.Float64bits(a.Score) != math.Float64bits(b.Score) {
		t.Fatalf("restored best %+v != original %+v", b, a)
	}
}

// TestRestoreShardedCrossCount is the cross-count equivalence guarantee:
// one checkpoint, written at shard count 3, restored into 1, 2 and 4
// shards — every restored detector reports bitwise-identical best scores
// to the original as all four continue the same stream.
func TestRestoreShardedCrossCount(t *testing.T) {
	const chunk = 64
	objs := randomObjects(131, 900, 6)
	o := opts()
	o.Shards = 3
	orig, err := surge.New(surge.CellCSPOT, o)
	if err != nil {
		t.Fatal(err)
	}
	defer orig.Close()
	pushChunks(t, orig, objs[:600], chunk)
	data, err := orig.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	dets := map[string]*surge.Detector{"orig(3)": orig}
	for _, tc := range []struct {
		name            string
		shards, blkCols int
	}{
		{"single", 1, 0},
		{"2-shard", 2, 0},
		{"4-shard/1-col-blocks", 4, 1},
	} {
		d, err := surge.RestoreSharded(surge.CellCSPOT, data, tc.shards, tc.blkCols)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		defer d.Close()
		if want := max(tc.shards, 1); d.Shards() != want {
			t.Fatalf("%s: restored into %d shards, want %d", tc.name, d.Shards(), want)
		}
		dets[tc.name] = d
	}

	// All detectors must agree now and after every further batch.
	check := func(stage string) {
		ref := orig.Best()
		for name, d := range dets {
			got := d.Best()
			if got.Found != ref.Found || math.Float64bits(got.Score) != math.Float64bits(ref.Score) {
				t.Fatalf("%s: %s best %+v != original %+v", stage, name, got, ref)
			}
		}
	}
	check("after restore")
	for lo := 600; lo < len(objs); lo += chunk {
		hi := min(lo+chunk, len(objs))
		for name, d := range dets {
			if _, err := d.PushBatch(objs[lo:hi]); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
		check("resumed stream")
	}
	// The restored live sets match too.
	for name, d := range dets {
		if d.Live() != orig.Live() || d.Now() != orig.Now() {
			t.Fatalf("%s: live/clock %d/%v != original %d/%v",
				name, d.Live(), d.Now(), orig.Live(), orig.Now())
		}
	}
}

// TestRestoreTopK rebuilds a top-k detector from a single-region
// checkpoint: rank-1 must match the source detector's best score.
func TestRestoreTopK(t *testing.T) {
	o := opts()
	o.Shards = 2
	det, err := surge.New(surge.CellCSPOT, o)
	if err != nil {
		t.Fatal(err)
	}
	defer det.Close()
	pushChunks(t, det, randomObjects(141, 500, 4), 64)
	data, err := det.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	tk, err := surge.RestoreTopK(surge.CellCSPOT, data, 3)
	if err != nil {
		t.Fatal(err)
	}
	if tk.K() != 3 {
		t.Fatalf("k = %d, want 3", tk.K())
	}
	results := tk.BestK()
	best := det.Best()
	if len(results) != 3 {
		t.Fatalf("got %d slots, want 3", len(results))
	}
	if results[0].Found != best.Found || (best.Found && !almost(results[0].Score, best.Score)) {
		t.Fatalf("restored top-1 %+v != source best %+v", results[0], best)
	}
	// Ranks are non-increasing.
	for i := 1; i < len(results); i++ {
		if results[i].Found && results[i].Score > results[i-1].Score+1e-9 {
			t.Fatalf("rank %d score %v above rank %d score %v", i+1, results[i].Score, i, results[i-1].Score)
		}
	}
	if _, err := surge.RestoreTopK(surge.CellCSPOT, data, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := surge.RestoreTopK(surge.CellCSPOT, []byte("junk"), 3); err == nil {
		t.Fatal("garbage checkpoint accepted")
	}
}
