package surge_test

import (
	"fmt"

	"surge"
)

// ExampleNew demonstrates the minimal detection loop: three objects land in
// the same spot within one window, producing a bursty region around them.
func ExampleNew() {
	det, err := surge.New(surge.CellCSPOT, surge.Options{
		Width:  1,
		Height: 1,
		Window: 10,
		Alpha:  0.5,
	})
	if err != nil {
		panic(err)
	}
	var res surge.Result
	for i := 0; i < 3; i++ {
		res, err = det.Push(surge.Object{X: 4.2, Y: 4.7, Weight: 10, Time: float64(i)})
		if err != nil {
			panic(err)
		}
	}
	fmt.Printf("found=%v score=%.0f contains-objects=%v\n",
		res.Found, res.Score, res.Region.Contains(4.2, 4.7))
	// Output: found=true score=3 contains-objects=true
}

// ExampleNewTopK tracks two separated hotspots simultaneously.
func ExampleNewTopK() {
	det, err := surge.NewTopK(surge.CellCSPOT, surge.Options{
		Width:  1,
		Height: 1,
		Window: 10,
		Alpha:  0.5,
	}, 2)
	if err != nil {
		panic(err)
	}
	_, _ = det.Push(surge.Object{X: 0, Y: 0, Weight: 20, Time: 0})
	res, err := det.Push(surge.Object{X: 50, Y: 50, Weight: 10, Time: 1})
	if err != nil {
		panic(err)
	}
	fmt.Printf("rank1 score=%.0f rank2 score=%.0f\n", res[0].Score, res[1].Score)
	// Output: rank1 score=2 rank2 score=1
}

// ExampleDetector_Checkpoint persists a detector and restores it with a
// different (faster, approximate) algorithm.
func ExampleDetector_Checkpoint() {
	exact, _ := surge.New(surge.CellCSPOT, surge.Options{Width: 1, Height: 1, Window: 10, Alpha: 0.5})
	_, _ = exact.Push(surge.Object{X: 1, Y: 1, Weight: 10, Time: 0})

	data, _ := exact.Checkpoint()
	approx, _ := surge.Restore(surge.GridApprox, data)

	fmt.Printf("restored algorithm=%v live=%d found=%v\n",
		approx.Algorithm(), approx.Live(), approx.Best().Found)
	// Output: restored algorithm=GAPS live=1 found=true
}
