package surge_test

import (
	"math"
	"testing"

	"surge"
)

// topkEqualBitwise asserts two top-k answers report bitwise-identical
// scores and found flags at every rank (regions are canonical up to
// equal-score anchor ties, as for the single-region sharded pipeline).
func topkEqualBitwise(t *testing.T, label string, got, want []surge.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: rank counts %d vs %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i].Found != want[i].Found ||
			math.Float64bits(got[i].Score) != math.Float64bits(want[i].Score) {
			t.Fatalf("%s rank %d: got %+v want %+v", label, i, got[i], want[i])
		}
	}
}

// topkEqualRegions asserts two top-k answers select the same regions at
// every rank (the grid chains' guarantee: identical cells, canonical fold
// scores).
func topkEqualRegions(t *testing.T, label string, got, want []surge.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: rank counts %d vs %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i].Found != want[i].Found || got[i].Region != want[i].Region ||
			math.Float64bits(got[i].Score) != math.Float64bits(want[i].Score) {
			t.Fatalf("%s rank %d: got %+v want %+v", label, i, got[i], want[i])
		}
	}
}

// topkShardGeoms is the shard-count spread of the randomized equivalence
// tests; 1 exercises the single-engine fallback of the sharded options.
var topkShardGeoms = []struct{ shards, block int }{
	{1, 0},
	{2, 1}, // worst case: every object replicated, A,B,A striping
	{4, 0}, // default block width
	{7, 2},
}

// TestTopKShardedEqualsSingle pushes the same randomized stream through a
// single-engine and a sharded standalone top-k detector and requires the
// merged cross-shard chain to report the single-engine answer: bitwise for
// kCCS and the naive oracle, same regions (with canonical fold scores) for
// kGAPS and kMGAPS — across shard counts {1, 2, 4, 7}.
func TestTopKShardedEqualsSingle(t *testing.T) {
	const k = 4
	for _, alg := range []surge.Algorithm{surge.CellCSPOT, surge.GridApprox, surge.MultiGrid, surge.Oracle} {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			n := 1600
			if alg == surge.Oracle {
				n = 400 // the oracle re-sweeps every query; keep it affordable
			}
			objs := shardStream(1234, n, 10)
			for _, g := range topkShardGeoms {
				o := opts()
				single, err := surge.NewTopK(alg, o, k)
				if err != nil {
					t.Fatal(err)
				}
				o.Shards = g.shards
				o.ShardBlockCols = g.block
				sharded, err := surge.NewTopK(alg, o, k)
				if err != nil {
					t.Fatal(err)
				}
				if got := sharded.Shards(); got != max(g.shards, 1) {
					t.Fatalf("Shards() = %d, want %d", got, g.shards)
				}
				label := alg.String() + " sharded vs single"
				for start := 0; start < len(objs); start += 97 {
					end := min(start+97, len(objs))
					want, err := single.PushBatch(objs[start:end])
					if err != nil {
						t.Fatal(err)
					}
					got, err := sharded.PushBatch(objs[start:end])
					if err != nil {
						t.Fatal(err)
					}
					if alg == surge.GridApprox || alg == surge.MultiGrid {
						topkEqualRegions(t, label, got, want)
					} else {
						topkEqualBitwise(t, label, got, want)
					}
				}
				// Clock advance without arrivals must stay equivalent too.
				tEnd := objs[len(objs)-1].Time + 25
				want, err := single.AdvanceTo(tEnd)
				if err != nil {
					t.Fatal(err)
				}
				got, err := sharded.AdvanceTo(tEnd)
				if err != nil {
					t.Fatal(err)
				}
				if alg == surge.GridApprox || alg == surge.MultiGrid {
					topkEqualRegions(t, label+" AdvanceTo", got, want)
				} else {
					topkEqualBitwise(t, label+" AdvanceTo", got, want)
				}
				// Close captures the final answer.
				final := copyResults(sharded.BestK())
				if err := sharded.Close(); err != nil {
					t.Fatal(err)
				}
				topkEqualBitwise(t, label+" after Close", sharded.BestK(), final)
				if _, err := sharded.Push(objs[0]); err == nil {
					t.Fatal("Push after Close must fail")
				}
			}
		})
	}
}

// TestTopKShardedRestoreCrossCount checkpoints a sharded standalone top-k
// detector and restores it into different shard counts (including the
// single-engine path): every restored detector must answer bitwise the same
// and resume the stream equivalently.
func TestTopKShardedRestoreCrossCount(t *testing.T) {
	const k = 3
	objs := shardStream(777, 1200, 9)
	o := opts()
	o.Shards = 4
	orig, err := surge.NewTopK(surge.CellCSPOT, o, k)
	if err != nil {
		t.Fatal(err)
	}
	defer orig.Close()
	half := len(objs) / 2
	if _, err := orig.PushBatch(objs[:half]); err != nil {
		t.Fatal(err)
	}
	want := copyResults(orig.BestK())
	ckpt, err := orig.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	// The recorded shape (4 shards) is honoured by default.
	rec, err := surge.RestoreTopK(surge.CellCSPOT, ckpt, k)
	if err != nil {
		t.Fatal(err)
	}
	if got := rec.Shards(); got != 4 {
		t.Fatalf("restored Shards() = %d, want recorded 4", got)
	}
	rec.Close()
	for _, shards := range []int{1, 2, 7} {
		restored, err := surge.RestoreTopKSharded(surge.CellCSPOT, ckpt, k, shards, 0)
		if err != nil {
			t.Fatal(err)
		}
		topkEqualBitwise(t, "restored", restored.BestK(), want)
		// Resume the stream on the restored detector and a fresh reference.
		ref, err := surge.RestoreTopKSharded(surge.CellCSPOT, ckpt, k, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		for start := half; start < len(objs); start += 131 {
			end := min(start+131, len(objs))
			wantRes, err := ref.PushBatch(objs[start:end])
			if err != nil {
				t.Fatal(err)
			}
			gotRes, err := restored.PushBatch(objs[start:end])
			if err != nil {
				t.Fatal(err)
			}
			topkEqualBitwise(t, "resumed", gotRes, wantRes)
		}
		restored.Close()
		ref.Close()
	}
}

// TestAttachTopKShardedParent attaches a top-k detector to a sharded parent
// — the maintenance rides the shard workers — and requires bitwise the same
// answers as a single-engine standalone detector fed the same stream,
// including mid-stream attachment (seeded from the live windows) and the
// freeze-at-parent-Close semantics.
func TestAttachTopKShardedParent(t *testing.T) {
	const k = 4
	objs := shardStream(99, 1400, 8)
	o := opts()
	o.Shards = 3
	o.ShardBlockCols = 1
	parent, err := surge.New(surge.CellCSPOT, o)
	if err != nil {
		t.Fatal(err)
	}
	reference, err := surge.NewTopK(surge.CellCSPOT, opts(), k)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the parent before attaching: the attach seeds the shard engines
	// from the live windows.
	third := len(objs) / 3
	if _, err := parent.PushBatch(objs[:third]); err != nil {
		t.Fatal(err)
	}
	if _, err := reference.PushBatch(objs[:third]); err != nil {
		t.Fatal(err)
	}
	attached, err := parent.AttachTopK(surge.CellCSPOT, k)
	if err != nil {
		t.Fatal(err)
	}
	if !attached.Attached() || attached.Shards() != 3 {
		t.Fatalf("attached: Attached()=%v Shards()=%d", attached.Attached(), attached.Shards())
	}
	if _, err := attached.Push(objs[0]); err == nil {
		t.Fatal("attached detectors must reject stream mutations")
	}
	topkEqualBitwise(t, "attach seed", attached.BestK(), reference.BestK())
	for start := third; start < len(objs); start += 89 {
		end := min(start+89, len(objs))
		if _, err := parent.PushBatch(objs[start:end]); err != nil {
			t.Fatal(err)
		}
		want, err := reference.PushBatch(objs[start:end])
		if err != nil {
			t.Fatal(err)
		}
		topkEqualBitwise(t, "attached vs standalone", attached.BestK(), want)
	}
	// Parent Close freezes the attached answer.
	final := copyResults(attached.BestK())
	if err := parent.Close(); err != nil {
		t.Fatal(err)
	}
	topkEqualBitwise(t, "after parent Close", attached.BestK(), final)
	if err := attached.Close(); err != nil {
		t.Fatal(err)
	}
	topkEqualBitwise(t, "after Close", attached.BestK(), final)
}

// TestAttachTopKShardedDetach pins the detach path: closing an attached
// chain-backed detector stops its maintenance while the parent keeps
// serving, and a second attach starts fresh.
func TestAttachTopKShardedDetach(t *testing.T) {
	const k = 3
	objs := shardStream(5, 900, 8)
	o := opts()
	o.Shards = 2
	parent, err := surge.New(surge.CellCSPOT, o)
	if err != nil {
		t.Fatal(err)
	}
	defer parent.Close()
	first, err := parent.AttachTopK(surge.CellCSPOT, k)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := parent.PushBatch(objs[:300]); err != nil {
		t.Fatal(err)
	}
	frozen := copyResults(first.BestK())
	if err := first.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := parent.PushBatch(objs[300:600]); err != nil {
		t.Fatal(err)
	}
	// The detached detector's answer does not move with the stream.
	topkEqualBitwise(t, "detached", first.BestK(), frozen)
	second, err := parent.AttachTopK(surge.CellCSPOT, k)
	if err != nil {
		t.Fatal(err)
	}
	reference, err := surge.NewTopK(surge.CellCSPOT, opts(), k)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reference.PushBatch(objs[:600]); err != nil {
		t.Fatal(err)
	}
	topkEqualBitwise(t, "re-attach", second.BestK(), reference.BestK())
	if _, err := parent.PushBatch(objs[600:]); err != nil {
		t.Fatal(err)
	}
	if _, err := reference.PushBatch(objs[600:]); err != nil {
		t.Fatal(err)
	}
	topkEqualBitwise(t, "re-attach stream", second.BestK(), reference.BestK())
}
