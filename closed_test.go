package surge_test

import (
	"errors"
	"testing"

	"surge"
)

// TestErrClosed: Push, PushBatch and AdvanceTo on a closed detector return
// the named ErrClosed on both the single-engine and the sharded path, while
// the query methods keep answering from the state captured at Close.
func TestErrClosed(t *testing.T) {
	for _, shards := range []int{1, 3} {
		o := opts()
		o.Shards = shards
		det, err := surge.New(surge.CellCSPOT, o)
		if err != nil {
			t.Fatal(err)
		}
		objs := randomObjects(101, 300, 6)
		if _, err := det.PushBatch(objs); err != nil {
			t.Fatal(err)
		}
		want := det.Best()
		wantStats := det.Stats()
		if err := det.Close(); err != nil {
			t.Fatal(err)
		}

		if _, err := det.Push(surge.Object{X: 1, Y: 1, Weight: 1, Time: 1e9}); !errors.Is(err, surge.ErrClosed) {
			t.Fatalf("shards=%d: Push after Close returned %v, want ErrClosed", shards, err)
		}
		if res, err := det.PushBatch(objs[:1]); !errors.Is(err, surge.ErrClosed) {
			t.Fatalf("shards=%d: PushBatch after Close returned %v, want ErrClosed", shards, err)
		} else if res != want {
			t.Fatalf("shards=%d: PushBatch after Close returned result %+v, want the captured %+v", shards, res, want)
		}
		if _, err := det.AdvanceTo(1e9); !errors.Is(err, surge.ErrClosed) {
			t.Fatalf("shards=%d: AdvanceTo after Close returned %v, want ErrClosed", shards, err)
		}
		if got := det.Best(); got != want {
			t.Fatalf("shards=%d: Best after Close = %+v, want %+v", shards, got, want)
		}
		if got := det.Stats(); got != wantStats {
			t.Fatalf("shards=%d: Stats after Close = %+v, want %+v", shards, got, wantStats)
		}
		if err := det.Close(); err != nil {
			t.Fatalf("shards=%d: second Close: %v", shards, err)
		}
	}
}

// TestCheckpointAfterClose: the live-object bookkeeping survives Close, so
// a server can write its shutdown checkpoint after rejecting new ingests.
func TestCheckpointAfterClose(t *testing.T) {
	o := opts()
	o.Shards = 2
	det, err := surge.New(surge.CellCSPOT, o)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := det.PushBatch(randomObjects(111, 200, 6)); err != nil {
		t.Fatal(err)
	}
	want := det.Best()
	if err := det.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := det.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := surge.Restore(surge.CellCSPOT, data)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if got := restored.Best(); got.Found != want.Found || !almost(got.Score, want.Score) {
		t.Fatalf("restored-after-Close best %+v != %+v", got, want)
	}
}
