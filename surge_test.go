package surge_test

import (
	"math"
	"math/rand/v2"
	"testing"

	"surge"
)

func almost(a, b float64) bool {
	d := math.Abs(a - b)
	m := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return d <= 1e-9*m
}

func opts() surge.Options {
	return surge.Options{Width: 1, Height: 1, Window: 50, Alpha: 0.5}
}

func randomObjects(seed uint64, n int, span float64) []surge.Object {
	rng := rand.New(rand.NewPCG(seed, seed+1))
	objs := make([]surge.Object, n)
	t := 0.0
	for i := range objs {
		t += rng.ExpFloat64()
		objs[i] = surge.Object{
			X:      rng.Float64() * span,
			Y:      rng.Float64() * span,
			Weight: 1 + rng.Float64()*99,
			Time:   t,
		}
	}
	return objs
}

func TestNewValidation(t *testing.T) {
	if _, err := surge.New(surge.CellCSPOT, surge.Options{}); err == nil {
		t.Fatal("zero options must be rejected")
	}
	if _, err := surge.New(surge.Algorithm(99), opts()); err == nil {
		t.Fatal("unknown algorithm must be rejected")
	}
	if _, err := surge.New(surge.CellCSPOT, surge.Options{Width: 1, Height: 1, Window: 1, Alpha: 1}); err == nil {
		t.Fatal("alpha = 1 must be rejected")
	}
}

func TestAllAlgorithmsConstruct(t *testing.T) {
	algs := []surge.Algorithm{
		surge.CellCSPOT, surge.StaticBound, surge.Baseline,
		surge.AG2, surge.GridApprox, surge.MultiGrid, surge.Oracle,
	}
	for _, a := range algs {
		d, err := surge.New(a, opts())
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		if d.Algorithm() != a {
			t.Fatalf("algorithm mismatch: %v vs %v", d.Algorithm(), a)
		}
		if res := d.Best(); res.Found {
			t.Fatalf("%v: fresh detector found %+v", a, res)
		}
	}
}

func TestAlgorithmNames(t *testing.T) {
	want := map[surge.Algorithm]string{
		surge.CellCSPOT:   "CCS",
		surge.StaticBound: "B-CCS",
		surge.Baseline:    "Base",
		surge.AG2:         "aG2",
		surge.GridApprox:  "GAPS",
		surge.MultiGrid:   "MGAPS",
		surge.Oracle:      "Oracle",
	}
	for a, s := range want {
		if a.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(a), a.String(), s)
		}
	}
}

// TestExactDetectorsAgree drives all exact algorithms through the public API
// and checks they report identical scores at every arrival.
func TestExactDetectorsAgree(t *testing.T) {
	algs := []surge.Algorithm{surge.CellCSPOT, surge.StaticBound, surge.Baseline, surge.AG2, surge.Oracle}
	dets := make([]*surge.Detector, len(algs))
	for i, a := range algs {
		var err error
		dets[i], err = surge.New(a, opts())
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, o := range randomObjects(3, 800, 6) {
		var ref surge.Result
		for i, d := range dets {
			res, err := d.Push(o)
			if err != nil {
				t.Fatal(err)
			}
			if i == 0 {
				ref = res
				continue
			}
			rs, gs := ref.Score, res.Score
			if !almost(rs, gs) {
				t.Fatalf("t=%v: %v score %v != %v score %v", o.Time, algs[i], gs, algs[0], rs)
			}
		}
	}
}

func TestApproxWithinGuarantee(t *testing.T) {
	alpha := 0.5
	o := opts()
	o.Alpha = alpha
	exact, _ := surge.New(surge.CellCSPOT, o)
	grid, _ := surge.New(surge.GridApprox, o)
	multi, _ := surge.New(surge.MultiGrid, o)
	for _, obj := range randomObjects(9, 800, 6) {
		er, _ := exact.Push(obj)
		gr, _ := grid.Push(obj)
		mr, _ := multi.Push(obj)
		if !er.Found {
			continue
		}
		bound := (1 - alpha) / 4 * er.Score
		if gr.Score < bound-1e-9 || mr.Score < bound-1e-9 {
			t.Fatalf("approximation guarantee violated: exact=%v grid=%v multi=%v",
				er.Score, gr.Score, mr.Score)
		}
	}
}

func TestPushOutOfOrder(t *testing.T) {
	d, _ := surge.New(surge.GridApprox, opts())
	if _, err := d.Push(surge.Object{X: 0, Y: 0, Weight: 1, Time: 10}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Push(surge.Object{X: 0, Y: 0, Weight: 1, Time: 5}); err == nil {
		t.Fatal("out-of-order push must fail")
	}
}

func TestAdvanceToExpiresBurst(t *testing.T) {
	d, _ := surge.New(surge.CellCSPOT, opts())
	for i := 0; i < 10; i++ {
		if _, err := d.Push(surge.Object{X: 1, Y: 1, Weight: 10, Time: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	res := d.Best()
	if !res.Found {
		t.Fatal("burst not detected")
	}
	// After both windows pass, the detector must go quiet.
	res, err := d.AdvanceTo(1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatalf("expired content still reported: %+v", res)
	}
	if d.Live() != 0 {
		t.Fatalf("live = %d, want 0", d.Live())
	}
}

func TestRegionContainsDetectedObjects(t *testing.T) {
	d, _ := surge.New(surge.CellCSPOT, opts())
	res, err := d.Push(surge.Object{X: 3.5, Y: 4.5, Weight: 7, Time: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("single object must produce a bursty region")
	}
	if !res.Region.Contains(3.5, 4.5) {
		t.Fatalf("region %+v does not contain the only object", res.Region)
	}
	want := 0.5*(7.0/50) + 0.5*(7.0/50)
	if !almost(res.Score, want) {
		t.Fatalf("score = %v, want %v", res.Score, want)
	}
}

func TestAreaOption(t *testing.T) {
	o := opts()
	o.Area = &surge.Region{MinX: 0, MinY: 0, MaxX: 5, MaxY: 5}
	d, _ := surge.New(surge.CellCSPOT, o)
	// An enormous burst outside the area must be invisible.
	res, err := d.Push(surge.Object{X: 50, Y: 50, Weight: 1000, Time: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatalf("object outside the preferred area was detected: %+v", res)
	}
	res, _ = d.Push(surge.Object{X: 2, Y: 2, Weight: 1, Time: 2})
	if !res.Found || !res.Region.Contains(2, 2) {
		t.Fatalf("in-area object not detected: %+v", res)
	}
}

func TestPastWindowOption(t *testing.T) {
	o := opts()
	o.Window = 10
	o.PastWindow = 30
	d, err := surge.New(surge.Oracle, o)
	if err != nil {
		t.Fatal(err)
	}
	// Object at t=0: current until 10, past until 40.
	if _, err := d.Push(surge.Object{X: 0, Y: 0, Weight: 30, Time: 0}); err != nil {
		t.Fatal(err)
	}
	res, _ := d.AdvanceTo(5)
	if !res.Found {
		t.Fatal("object should be current at t=5")
	}
	res, _ = d.AdvanceTo(15) // now past-only: score 0
	if res.Found {
		t.Fatalf("past-only content must score 0, got %+v", res)
	}
	// New object at 20 at exactly the same location, so any region covering
	// it also covers the past object: fc=30/10=3, fp=30/30=1 =>
	// S = 0.5*2 + 0.5*3 = 2.5.
	res, _ = d.Push(surge.Object{X: 0, Y: 0, Weight: 30, Time: 20})
	if !res.Found || !almost(res.Score, 2.5) {
		t.Fatalf("asymmetric window score = %+v, want 2.5", res)
	}
}

func TestStatsExposed(t *testing.T) {
	d, _ := surge.New(surge.CellCSPOT, opts())
	for _, o := range randomObjects(13, 300, 5) {
		if _, err := d.Push(o); err != nil {
			t.Fatal(err)
		}
	}
	st := d.Stats()
	if st.Events == 0 || st.Searches == 0 {
		t.Fatalf("stats empty: %+v", st)
	}
	if st.SearchRatio() <= 0 || st.SearchRatio() > 1 {
		t.Fatalf("search ratio %v out of range", st.SearchRatio())
	}
}

func TestRegionHelpers(t *testing.T) {
	r := surge.Region{MinX: 0, MinY: 0, MaxX: 2, MaxY: 2}
	if !r.Contains(0, 0) || r.Contains(2, 2) {
		t.Fatal("Contains must be closed-open")
	}
	if !r.Overlaps(surge.Region{MinX: 1, MinY: 1, MaxX: 3, MaxY: 3}) {
		t.Fatal("overlap expected")
	}
	if r.Overlaps(surge.Region{MinX: 2, MinY: 0, MaxX: 3, MaxY: 2}) {
		t.Fatal("edge-touching regions do not overlap")
	}
}
