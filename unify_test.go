package surge_test

import (
	"fmt"
	"testing"

	"surge"
)

// TestServeFromChainEquivalence is the unification guarantee behind
// AttachTopKBest: with a maintained top-k chain serving Best, every answer
// must stay bitwise identical to the engine-served answer — across shard
// counts, when the chain is attached mid-stream, and across a
// checkpoint→restore cycle that re-attaches the chain. The reference run is
// additionally pinned against the pre-change fixture (see
// pinned_unify_test.go), so "equivalent" means equivalent to the answers
// the dual-engine layout produced before the refactor, not merely
// self-consistent.
func TestServeFromChainEquivalence(t *testing.T) {
	objs := pinnedStream()
	nBatches := (len(objs) + pinnedBatch - 1) / pinnedBatch
	attachAt := nBatches / 3 // mid-stream attach point (batch index)
	restoreAt := 2 * nBatches / 3

	// Reference: single-engine, engine-served Best over the pinned stream —
	// itself pinned bitwise by TestPinnedAnswers.
	want := make([]surge.Result, 0, nBatches)
	ref, err := surge.New(surge.CellCSPOT, pinnedOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(objs); i += pinnedBatch {
		if _, err := ref.PushBatch(objs[i:min(i+pinnedBatch, len(objs))]); err != nil {
			t.Fatal(err)
		}
		want = append(want, ref.Best())
	}
	if err := ref.Close(); err != nil {
		t.Fatal(err)
	}

	for _, shards := range []int{1, 2, 4, 7} {
		shards := shards
		opts := pinnedOptions()
		opts.Shards = shards

		t.Run(fmt.Sprintf("chain-attached-at-boot/shards=%d", shards), func(t *testing.T) {
			d, err := surge.New(surge.CellCSPOT, opts)
			if err != nil {
				t.Fatal(err)
			}
			defer d.Close()
			td, err := d.AttachTopKBest(surge.CellCSPOT, pinnedK)
			if err != nil {
				t.Fatal(err)
			}
			defer td.Close()
			for b, i := 0, 0; i < len(objs); b, i = b+1, i+pinnedBatch {
				if _, err := d.PushBatch(objs[i:min(i+pinnedBatch, len(objs))]); err != nil {
					t.Fatal(err)
				}
				if got := d.Best(); got != want[b] {
					t.Fatalf("batch %d: chain-served %+v != engine-served %+v", b, got, want[b])
				}
				if top := td.BestK(); len(top) > 0 && top[0] != want[b] {
					t.Fatalf("batch %d: chain rank-1 %+v != engine-served %+v", b, top[0], want[b])
				}
			}
		})

		t.Run(fmt.Sprintf("attach-mid-stream/shards=%d", shards), func(t *testing.T) {
			d, err := surge.New(surge.CellCSPOT, opts)
			if err != nil {
				t.Fatal(err)
			}
			defer d.Close()
			for b, i := 0, 0; i < len(objs); b, i = b+1, i+pinnedBatch {
				if b == attachAt {
					// The chain seeds from the live windows and takes over
					// Best serving from this point on.
					td, err := d.AttachTopKBest(surge.CellCSPOT, pinnedK)
					if err != nil {
						t.Fatal(err)
					}
					defer td.Close()
					if got := d.Best(); got != want[b-1] {
						t.Fatalf("attach at batch %d: takeover answer %+v != engine-served %+v", b, got, want[b-1])
					}
				}
				if _, err := d.PushBatch(objs[i:min(i+pinnedBatch, len(objs))]); err != nil {
					t.Fatal(err)
				}
				if got := d.Best(); got != want[b] {
					t.Fatalf("batch %d (attach at %d): %+v != engine-served %+v", b, attachAt, got, want[b])
				}
			}
		})

		t.Run(fmt.Sprintf("snapshot-restore/shards=%d", shards), func(t *testing.T) {
			d, err := surge.New(surge.CellCSPOT, opts)
			if err != nil {
				t.Fatal(err)
			}
			td, err := d.AttachTopKBest(surge.CellCSPOT, pinnedK)
			if err != nil {
				t.Fatal(err)
			}
			closeBoth := func() {
				td.Close()
				d.Close()
			}
			for b, i := 0, 0; i < len(objs); b, i = b+1, i+pinnedBatch {
				if b == restoreAt {
					// Checkpoint the serving detector, rebuild from the
					// bytes with the same shard count, re-attach the serving
					// chain, and keep streaming: answers must not notice.
					ckpt, err := d.Checkpoint()
					if err != nil {
						closeBoth()
						t.Fatal(err)
					}
					closeBoth()
					d, err = surge.RestoreSharded(surge.CellCSPOT, ckpt, shards, 0)
					if err != nil {
						t.Fatal(err)
					}
					td, err = d.AttachTopKBest(surge.CellCSPOT, pinnedK)
					if err != nil {
						d.Close()
						t.Fatal(err)
					}
					if got := d.Best(); got != want[b-1] {
						closeBoth()
						t.Fatalf("restore at batch %d: %+v != engine-served %+v", b, got, want[b-1])
					}
				}
				if _, err := d.PushBatch(objs[i:min(i+pinnedBatch, len(objs))]); err != nil {
					closeBoth()
					t.Fatal(err)
				}
				if got := d.Best(); got != want[b] {
					closeBoth()
					t.Fatalf("batch %d (restore at %d): %+v != engine-served %+v", b, restoreAt, got, want[b])
				}
			}
			closeBoth()
		})
	}
}
