package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// The histogram is log-linear: values below 2^subBits are exact, and every
// octave above is split into 2^subBits sub-buckets, giving a worst-case
// relative error of 1/2^subBits (12.5%) across the full uint64 range. The
// layout is the HdrHistogram/OpenTelemetry exponential-bucket trick reduced
// to fixed arrays and a handful of bit operations so Record is branch-light
// and allocation-free.
const (
	subBits = 3
	nSub    = 1 << subBits // sub-buckets per octave
	// Buckets 0..nSub-1 are exact; octaves e = subBits..63 contribute nSub
	// buckets each starting at index nSub.
	nBuckets = nSub * (64 - subBits + 1) // 496
)

// bucketIdx maps a value to its bucket index. Values < nSub map to
// themselves; larger values map to (octave, sub-bucket) where the sub-bucket
// is the subBits bits below the leading bit.
func bucketIdx(v uint64) int {
	if v < nSub {
		return int(v)
	}
	e := uint(bits.Len64(v) - 1) // subBits..63
	return int(((e - subBits + 1) << subBits) | uint((v>>(e-subBits))&(nSub-1)))
}

// bucketBounds returns the inclusive lower bound and the width of bucket
// idx; the bucket covers [low, low+width).
func bucketBounds(idx int) (low, width uint64) {
	if idx < nSub {
		return uint64(idx), 1
	}
	top := uint(idx >> subBits) // 1..64-subBits
	rem := uint64(idx & (nSub - 1))
	return (nSub + rem) << (top - 1), 1 << (top - 1)
}

// Histogram is a lock-free fixed-bucket log-scale histogram. Record is
// wait-free except for a bounded max CAS, performs no allocation, and is
// safe for any number of concurrent recorders. Duration histograms record
// nanoseconds and are rendered in seconds.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
	buckets [nBuckets]atomic.Uint64
}

// Record adds one observation. It allocates nothing.
func (h *Histogram) Record(v uint64) {
	h.buckets[bucketIdx(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Observe records a duration in nanoseconds (negative clamps to zero).
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.Record(uint64(d))
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Reset zeroes the histogram. Racing recorders may leave a few counts
// behind; Reset is meant for benchmark harnesses, not steady-state use.
func (h *Histogram) Reset() {
	h.count.Store(0)
	h.sum.Store(0)
	h.max.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// HistSnapshot is a point-in-time copy of a histogram. Count is recomputed
// from the bucket array so quantile math is internally consistent even when
// recorders race the snapshot.
type HistSnapshot struct {
	Count   uint64
	Sum     uint64
	Max     uint64
	buckets [nBuckets]uint64
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	for i := range h.buckets {
		c := h.buckets[i].Load()
		s.buckets[i] = c
		s.Count += c
	}
	return s
}

// Quantile returns an estimate of the q-quantile (0 < q <= 1) of the
// recorded values: the midpoint of the bucket holding the target rank
// (exact for values < 2*nSub). Returns 0 when empty.
func (s *HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(q * float64(s.Count))
	if rank >= s.Count {
		rank = s.Count - 1
	}
	var cum uint64
	for i, c := range s.buckets {
		cum += c
		if cum > rank {
			low, width := bucketBounds(i)
			if width <= 1 {
				return float64(low)
			}
			v := float64(low) + float64(width)/2
			if m := float64(s.Max); v > m {
				v = m
			}
			return v
		}
	}
	return float64(s.Max)
}

// Mean returns the average of the recorded values, 0 when empty.
func (s *HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}
