package obs

import (
	"fmt"
	"io"
	"math"
	"runtime/metrics"
)

// runtimeSamples are the runtime/metrics keys surfaced as surge_runtime_*.
var runtimeSamples = []string{
	"/sched/goroutines:goroutines",
	"/memory/classes/heap/objects:bytes",
	"/gc/cycles/total:gc-cycles",
	"/gc/pauses:seconds",
	"/sched/latencies:seconds",
}

// RuntimeSnapshot is a point-in-time read of Go runtime health: scheduler
// and heap gauges plus quantiles of the runtime's own GC pause and
// scheduling latency distributions (all latencies in seconds).
type RuntimeSnapshot struct {
	Goroutines  int64   `json:"goroutines"`
	HeapBytes   uint64  `json:"heap_bytes"`
	GCCycles    uint64  `json:"gc_cycles"`
	GCPauseP50  float64 `json:"gc_pause_p50_sec"`
	GCPauseP99  float64 `json:"gc_pause_p99_sec"`
	GCPauseMax  float64 `json:"gc_pause_max_sec"`
	SchedLatP50 float64 `json:"sched_latency_p50_sec"`
	SchedLatP99 float64 `json:"sched_latency_p99_sec"`
}

// ReadRuntime samples the runtime metrics. It is cheap enough for scrape
// paths but not for per-event paths.
func ReadRuntime() RuntimeSnapshot {
	samples := make([]metrics.Sample, len(runtimeSamples))
	for i, name := range runtimeSamples {
		samples[i].Name = name
	}
	metrics.Read(samples)
	var rs RuntimeSnapshot
	for _, s := range samples {
		switch s.Name {
		case "/sched/goroutines:goroutines":
			if s.Value.Kind() == metrics.KindUint64 {
				rs.Goroutines = int64(s.Value.Uint64())
			}
		case "/memory/classes/heap/objects:bytes":
			if s.Value.Kind() == metrics.KindUint64 {
				rs.HeapBytes = s.Value.Uint64()
			}
		case "/gc/cycles/total:gc-cycles":
			if s.Value.Kind() == metrics.KindUint64 {
				rs.GCCycles = s.Value.Uint64()
			}
		case "/gc/pauses:seconds":
			if s.Value.Kind() == metrics.KindFloat64Histogram {
				h := s.Value.Float64Histogram()
				rs.GCPauseP50 = histQuantile(h, 0.5)
				rs.GCPauseP99 = histQuantile(h, 0.99)
				rs.GCPauseMax = histMax(h)
			}
		case "/sched/latencies:seconds":
			if s.Value.Kind() == metrics.KindFloat64Histogram {
				h := s.Value.Float64Histogram()
				rs.SchedLatP50 = histQuantile(h, 0.5)
				rs.SchedLatP99 = histQuantile(h, 0.99)
			}
		}
	}
	return rs
}

// WritePrometheus renders the snapshot as surge_runtime_* metrics.
func (rs RuntimeSnapshot) WritePrometheus(w io.Writer) {
	fmt.Fprintf(w, "# HELP surge_runtime_goroutines Live goroutine count.\n# TYPE surge_runtime_goroutines gauge\nsurge_runtime_goroutines %d\n", rs.Goroutines)
	fmt.Fprintf(w, "# HELP surge_runtime_heap_bytes Bytes of live heap objects.\n# TYPE surge_runtime_heap_bytes gauge\nsurge_runtime_heap_bytes %d\n", rs.HeapBytes)
	fmt.Fprintf(w, "# HELP surge_runtime_gc_cycles_total Completed GC cycles.\n# TYPE surge_runtime_gc_cycles_total counter\nsurge_runtime_gc_cycles_total %d\n", rs.GCCycles)
	fmt.Fprintf(w, "# HELP surge_runtime_gc_pause_seconds GC stop-the-world pause distribution.\n# TYPE surge_runtime_gc_pause_seconds summary\n")
	fmt.Fprintf(w, "surge_runtime_gc_pause_seconds{quantile=\"0.5\"} %s\n", fmtFloat(rs.GCPauseP50))
	fmt.Fprintf(w, "surge_runtime_gc_pause_seconds{quantile=\"0.99\"} %s\n", fmtFloat(rs.GCPauseP99))
	fmt.Fprintf(w, "surge_runtime_gc_pause_seconds{quantile=\"1\"} %s\n", fmtFloat(rs.GCPauseMax))
	fmt.Fprintf(w, "# HELP surge_runtime_sched_latency_seconds Goroutine scheduling latency distribution.\n# TYPE surge_runtime_sched_latency_seconds summary\n")
	fmt.Fprintf(w, "surge_runtime_sched_latency_seconds{quantile=\"0.5\"} %s\n", fmtFloat(rs.SchedLatP50))
	fmt.Fprintf(w, "surge_runtime_sched_latency_seconds{quantile=\"0.99\"} %s\n", fmtFloat(rs.SchedLatP99))
}

// histQuantile estimates the q-quantile of a runtime Float64Histogram: the
// upper bound of the bucket holding the target rank.
func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum > rank {
			return bucketUpper(h, i)
		}
	}
	return bucketUpper(h, len(h.Counts)-1)
}

// histMax returns the upper bound of the highest non-empty bucket.
func histMax(h *metrics.Float64Histogram) float64 {
	for i := len(h.Counts) - 1; i >= 0; i-- {
		if h.Counts[i] > 0 {
			return bucketUpper(h, i)
		}
	}
	return 0
}

// bucketUpper is bucket i's finite upper bound: Buckets[i+1] unless that is
// +Inf, in which case the lower bound stands in.
func bucketUpper(h *metrics.Float64Histogram, i int) float64 {
	up := h.Buckets[i+1]
	if math.IsInf(up, 1) {
		up = h.Buckets[i]
	}
	if math.IsInf(up, -1) {
		up = 0
	}
	return up
}
