// Package obs is the pipeline observability substrate: lock-free
// fixed-bucket log-scale latency histograms plus a counter/gauge registry,
// all recordable with zero allocations so instrumentation can live inside
// the zero-allocation ingest hot path. Metrics register get-or-create by
// (name, labels) on a Registry — normally the process-wide Default — and
// render two ways: Prometheus text via WritePrometheus and typed snapshots
// via Snapshot/HistSnapshot for JSON stats endpoints.
//
// Recording sites gate their time.Now calls behind On so benchmark
// harnesses can price the instrumentation itself (SetEnabled(false) makes
// every recording site a single atomic load).
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// disabled is inverted so the zero value means "on" without an init hook.
var disabled atomic.Bool

// SetEnabled turns recording on or off process-wide. Off, every recording
// site reduces to one atomic load; registries and metric handles stay valid.
func SetEnabled(on bool) { disabled.Store(!on) }

// On reports whether recording is enabled. Instrumentation sites that need
// a timestamp should check it before calling time.Now.
func On() bool { return !disabled.Load() }

// Counter is a monotonically increasing uint64.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable float64 (stored as bits, so Set/Value are atomic).
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the last value Set.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindDuration // histogram of nanoseconds, rendered in seconds
	kindValues   // histogram of raw units
)

type metric struct {
	name   string
	help   string
	labels []string // alternating key, value
	kind   kind
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry holds metrics get-or-create by (name, labels). All methods are
// safe for concurrent use; the lookup takes a mutex, so callers should hold
// on to the returned handles rather than re-resolving on hot paths.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric // registration order, preserved in renders
	byKey   map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*metric)}
}

// Default is the process-wide registry every pipeline stage records into.
var Default = NewRegistry()

func key(name string, labels []string) string {
	if len(labels) == 0 {
		return name
	}
	return name + "\x00" + strings.Join(labels, "\x00")
}

func (r *Registry) get(name, help string, k kind, labels []string) *metric {
	if len(labels)%2 != 0 {
		panic("obs: labels must be alternating key, value pairs")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byKey[key(name, labels)]; ok {
		if m.kind != k {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different kind", name))
		}
		return m
	}
	m := &metric{name: name, help: help, labels: labels, kind: k}
	switch k {
	case kindCounter:
		m.c = &Counter{}
	case kindGauge:
		m.g = &Gauge{}
	default:
		m.h = &Histogram{}
	}
	r.metrics = append(r.metrics, m)
	r.byKey[key(name, labels)] = m
	return m
}

// Counter returns the counter registered under (name, labels), creating it
// on first use.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	return r.get(name, help, kindCounter, labels).c
}

// Gauge returns the gauge registered under (name, labels), creating it on
// first use.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	return r.get(name, help, kindGauge, labels).g
}

// Duration returns a latency histogram registered under (name, labels):
// observations are nanoseconds, renders are in seconds. The name should
// carry a _seconds suffix by Prometheus convention.
func (r *Registry) Duration(name, help string, labels ...string) *Histogram {
	return r.get(name, help, kindDuration, labels).h
}

// Values returns a histogram of raw (unit-less) values registered under
// (name, labels) — batch sizes, buffer occupancies, shard counts.
func (r *Registry) Values(name, help string, labels ...string) *Histogram {
	return r.get(name, help, kindValues, labels).h
}

// Reset zeroes every registered metric (handles stay valid). Meant for
// benchmark harnesses that reuse the Default registry across runs.
func (r *Registry) Reset() {
	r.mu.Lock()
	ms := r.metrics
	r.mu.Unlock()
	for _, m := range ms {
		switch m.kind {
		case kindCounter:
			m.c.v.Store(0)
		case kindGauge:
			m.g.Set(0)
		default:
			m.h.Reset()
		}
	}
}

// quantiles rendered for every histogram, in render order.
var summaryQs = []float64{0.5, 0.9, 0.99, 0.999}

// WritePrometheus renders every registered metric in Prometheus text
// format. Histograms render as summaries (quantile series plus _sum and
// _count); duration histograms are converted from nanoseconds to seconds.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	ms := make([]*metric, len(r.metrics))
	copy(ms, r.metrics)
	r.mu.Unlock()

	// Same-name metrics (per-shard label variants) must share one
	// HELP/TYPE header and be contiguous in the output.
	byName := make(map[string][]*metric, len(ms))
	var names []string
	for _, m := range ms {
		if _, ok := byName[m.name]; !ok {
			names = append(names, m.name)
		}
		byName[m.name] = append(byName[m.name], m)
	}
	sort.Strings(names)

	for _, name := range names {
		group := byName[name]
		fmt.Fprintf(w, "# HELP %s %s\n", name, group[0].help)
		fmt.Fprintf(w, "# TYPE %s %s\n", name, promType(group[0].kind))
		for _, m := range group {
			switch m.kind {
			case kindCounter:
				fmt.Fprintf(w, "%s%s %d\n", m.name, labelStr(m.labels, ""), m.c.Value())
			case kindGauge:
				fmt.Fprintf(w, "%s%s %s\n", m.name, labelStr(m.labels, ""), fmtFloat(m.g.Value()))
			default:
				scale := 1.0
				if m.kind == kindDuration {
					scale = 1e-9
				}
				s := m.h.Snapshot()
				for _, q := range summaryQs {
					fmt.Fprintf(w, "%s%s %s\n", m.name,
						labelStr(m.labels, strconv.FormatFloat(q, 'g', -1, 64)),
						fmtFloat(s.Quantile(q)*scale))
				}
				fmt.Fprintf(w, "%s_sum%s %s\n", m.name, labelStr(m.labels, ""), fmtFloat(float64(s.Sum)*scale))
				fmt.Fprintf(w, "%s_count%s %d\n", m.name, labelStr(m.labels, ""), s.Count)
			}
		}
	}
}

func promType(k kind) string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "summary"
	}
}

// labelStr renders `{k="v",...}` with an optional trailing quantile label;
// empty when there is nothing to render.
func labelStr(labels []string, quantile string) string {
	if len(labels) == 0 && quantile == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", labels[i], labels[i+1])
	}
	if quantile != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "quantile=%q", quantile)
	}
	b.WriteByte('}')
	return b.String()
}

func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// LabeledValue is one sample of a dynamically labelled metric family for
// WriteLabeled: Labels is a flat key,value,... list.
type LabeledValue struct {
	Labels []string
	Value  float64
}

// WriteLabeled writes one Prometheus metric family with per-row labels,
// assembled at scrape time. Unlike registry metrics, the rows are not
// retained between scrapes — the family tracks a dynamic population (e.g.
// per-query series) without leaking series for members that disappeared.
// kind is "counter" or "gauge". No output when rows is empty.
func WriteLabeled(w io.Writer, name, kind, help string, rows []LabeledValue) {
	if len(rows) == 0 {
		return
	}
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, kind)
	for _, r := range rows {
		fmt.Fprintf(w, "%s%s %s\n", name, labelStr(r.Labels, ""), fmtFloat(r.Value))
	}
}
