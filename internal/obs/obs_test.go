package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// Every representable value must land in a bucket whose [low, low+width)
// range contains it, with relative width <= 1/nSub past the exact range.
func TestBucketCorrectness(t *testing.T) {
	vals := []uint64{0, 1, 2, 7, 8, 9, 15, 16, 17, 31, 32, 63, 64, 100, 1000, 1023, 1024,
		1<<20 - 1, 1 << 20, 1<<40 + 12345, 1<<63 - 1, 1 << 63, math.MaxUint64}
	for _, v := range vals {
		idx := bucketIdx(v)
		if idx < 0 || idx >= nBuckets {
			t.Fatalf("bucketIdx(%d) = %d out of range", v, idx)
		}
		low, width := bucketBounds(idx)
		if v < low || (width < math.MaxUint64 && v >= low+width && low+width > low) {
			t.Errorf("value %d in bucket %d [%d, %d+%d)", v, idx, low, low, width)
		}
		if v >= 2*nSub && float64(width)/float64(low) > 1.0/nSub+1e-9 {
			t.Errorf("bucket %d width %d too wide for low %d", idx, width, low)
		}
	}
}

// Bucket lower bounds must be strictly increasing and adjacent buckets
// contiguous: low(i+1) == low(i) + width(i).
func TestBucketMonotonicContiguous(t *testing.T) {
	prevLow, prevWidth := bucketBounds(0)
	for i := 1; i < nBuckets; i++ {
		low, width := bucketBounds(i)
		if low <= prevLow {
			t.Fatalf("bucket %d low %d <= previous low %d", i, low, prevLow)
		}
		if prevLow+prevWidth != low && prevLow+prevWidth > prevLow {
			t.Fatalf("gap before bucket %d: prev [%d,+%d), next low %d", i, prevLow, prevWidth, low)
		}
		prevLow, prevWidth = low, width
	}
	if idx := bucketIdx(math.MaxUint64); idx != nBuckets-1 {
		t.Fatalf("MaxUint64 lands in bucket %d, want %d", idx, nBuckets-1)
	}
}

func TestQuantiles(t *testing.T) {
	var h Histogram
	for v := uint64(1); v <= 1000; v++ {
		h.Record(v)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d, want 1000", s.Count)
	}
	if s.Sum != 1000*1001/2 {
		t.Fatalf("sum = %d, want %d", s.Sum, 1000*1001/2)
	}
	if s.Max != 1000 {
		t.Fatalf("max = %d, want 1000", s.Max)
	}
	// Log-linear resolution bounds the error at 1/nSub relative.
	checks := []struct{ q, want float64 }{{0.5, 500}, {0.9, 900}, {0.99, 990}, {0.999, 999}}
	for _, c := range checks {
		got := s.Quantile(c.q)
		if math.Abs(got-c.want)/c.want > 1.0/nSub {
			t.Errorf("q%g = %g, want %g within %.1f%%", c.q, got, c.want, 100.0/nSub)
		}
	}
	if m := s.Mean(); math.Abs(m-500.5) > 1e-9 {
		t.Errorf("mean = %g, want 500.5", m)
	}
	// Quantiles never exceed the recorded max.
	if got := s.Quantile(1); got > float64(s.Max) {
		t.Errorf("q1 = %g beyond max %d", got, s.Max)
	}
}

func TestQuantileEmptyAndSingle(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.Quantile(0.5) != 0 || s.Mean() != 0 {
		t.Fatal("empty histogram should answer 0")
	}
	h.Record(7)
	s = h.Snapshot()
	if got := s.Quantile(0.5); got != 7 {
		t.Fatalf("single-value q0.5 = %g, want 7 (exact range)", got)
	}
}

// Concurrent recorders under -race must neither race nor lose counts.
func TestConcurrentRecorders(t *testing.T) {
	var h Histogram
	const goroutines, per = 8, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Record(uint64(g*per + i))
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*per {
		t.Fatalf("count = %d, want %d", s.Count, goroutines*per)
	}
	if s.Max != goroutines*per-1 {
		t.Fatalf("max = %d, want %d", s.Max, goroutines*per-1)
	}
}

// The record path — the exact sequence the ingest hot path runs — must not
// allocate, with recording both enabled and disabled.
func TestRecordZeroAlloc(t *testing.T) {
	r := NewRegistry()
	h := r.Duration("surge_test_seconds", "test")
	c := r.Counter("surge_test_total", "test")
	g := r.Gauge("surge_test_gauge", "test")
	allocs := testing.AllocsPerRun(1000, func() {
		if On() {
			t0 := time.Now()
			h.Observe(time.Since(t0))
			c.Inc()
			g.Set(42)
		}
	})
	if allocs != 0 {
		t.Fatalf("record path allocates %.1f/op, want 0", allocs)
	}
	SetEnabled(false)
	defer SetEnabled(true)
	allocs = testing.AllocsPerRun(1000, func() {
		if On() {
			h.Record(1)
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled record path allocates %.1f/op, want 0", allocs)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("surge_x_total", "help")
	b := r.Counter("surge_x_total", "help")
	if a != b {
		t.Fatal("same (name, labels) must return the same counter")
	}
	c := r.Counter("surge_x_total", "help", "shard", "0")
	if a == c {
		t.Fatal("different labels must return distinct counters")
	}
	h1 := r.Duration("surge_y_seconds", "help")
	h2 := r.Duration("surge_y_seconds", "help")
	if h1 != h2 {
		t.Fatal("same (name, labels) must return the same histogram")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch must panic")
		}
	}()
	r.Gauge("surge_x_total", "help")
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("surge_t_events_total", "Events.").Add(5)
	r.Gauge("surge_t_depth", "Depth.", "shard", "0").Set(3)
	r.Gauge("surge_t_depth", "Depth.", "shard", "1").Set(4)
	h := r.Duration("surge_t_lat_seconds", "Latency.")
	h.Observe(1500 * time.Microsecond)
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE surge_t_events_total counter",
		"surge_t_events_total 5",
		`surge_t_depth{shard="0"} 3`,
		`surge_t_depth{shard="1"} 4`,
		"# TYPE surge_t_lat_seconds summary",
		`surge_t_lat_seconds{quantile="0.5"}`,
		`surge_t_lat_seconds{quantile="0.999"}`,
		"surge_t_lat_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
	if n := strings.Count(out, "# TYPE surge_t_depth gauge"); n != 1 {
		t.Errorf("TYPE header for labeled gauge family emitted %d times, want 1", n)
	}
	// Duration render is in seconds: the q0.5 of a single 1.5ms sample must
	// be ~0.0015, not 1.5e6 (ns).
	s := h.Snapshot()
	if q := s.Quantile(0.5) * 1e-9; q > 0.01 {
		t.Errorf("rendered quantile not scaled to seconds: %g", q)
	}
}

func TestResetAndDisable(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("surge_r_total", "help")
	h := r.Values("surge_r_sizes", "help")
	c.Add(3)
	h.Record(10)
	r.Reset()
	if c.Value() != 0 || h.Count() != 0 {
		t.Fatal("Reset must zero metrics")
	}
	SetEnabled(false)
	if On() {
		t.Fatal("On() must be false after SetEnabled(false)")
	}
	SetEnabled(true)
	if !On() {
		t.Fatal("On() must be true after SetEnabled(true)")
	}
}

func TestReadRuntime(t *testing.T) {
	rs := ReadRuntime()
	if rs.Goroutines <= 0 {
		t.Errorf("goroutines = %d, want > 0", rs.Goroutines)
	}
	if rs.HeapBytes == 0 {
		t.Errorf("heap bytes = 0, want > 0")
	}
	var b strings.Builder
	rs.WritePrometheus(&b)
	for _, want := range []string{
		"surge_runtime_goroutines",
		"surge_runtime_heap_bytes",
		"surge_runtime_gc_pause_seconds{quantile=\"0.99\"}",
		"surge_runtime_sched_latency_seconds",
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("missing %q in runtime render", want)
		}
	}
}
