package obs

// Canonical names of the pipeline metrics, shared by every recording site
// and by the /v1/stats snapshot builder so a name can never drift between
// the package that records a metric and the package that renders it. All
// latency histograms record nanoseconds and render in seconds.
const (
	// HTTP ingest path.
	MIngestAck   = "surge_ingest_ack_seconds"   // chunk submit -> batch applied & acked
	MIngestParse = "surge_ingest_parse_seconds" // request time spent parsing (total - ack waits)
	MIngestBatch = "surge_ingest_batch_objects" // objects per applied batch

	// Event loop.
	MLoopQueueWait = "surge_loop_queue_wait_seconds" // submit -> closure starts on the loop
	MLoopApply     = "surge_loop_apply_seconds"      // applyBatch duration on the loop
	MLoopLag       = "surge_loop_lag_seconds"        // self-timed probe: send -> loop runs it

	// SSE fan-out.
	MSSEDelivery = "surge_sse_delivery_seconds" // publish -> written to the subscriber
	MSSEBuffer   = "surge_sse_buffer_occupancy" // per-subscriber channel depth at broadcast

	// Shard router.
	MShardFlush   = "surge_shard_flush_events"         // events per shipped batch
	MShardDepth   = "surge_shard_channel_depth"        // per-shard channel depth at flush (gauge)
	MShardBarrier = "surge_shard_barrier_wait_seconds" // Query barrier: flush -> all shards answered
	MShardEvents  = "surge_shard_events_total"         // per-shard events shipped (halo replicas included)

	// Cross-shard top-k chain.
	MTopKResolve   = "surge_topk_resolve_seconds"    // full chain resolve (slow path only)
	MTopKSolveWait = "surge_topk_solve_wait_seconds" // time blocked on shard solve replies
	MTopKShards    = "surge_topk_resolved_shards"    // solve ops issued per resolve
	MTopKCommits   = "surge_topk_commits_total"      // ApplyRank commits shipped

	// Write-ahead log (durable ingest).
	MWALAppend   = "surge_wal_append_seconds" // frame write (+ fsync under always)
	MWALFsync    = "surge_wal_fsync_seconds"  // fsync latency
	MWALBytes    = "surge_wal_appended_bytes_total"
	MWALFrames   = "surge_wal_frames_total"
	MWALSegments = "surge_wal_segments"   // segment files on disk (gauge)
	MWALSize     = "surge_wal_size_bytes" // total segment bytes (gauge)

	// Degradation and repair (fault tolerance).
	MWALFaults   = "surge_wal_faults_total"        // poisoning write/fsync/rotation failures
	MWALRepairs  = "surge_wal_repairs_total"       // successful log repairs
	MCkptErrors  = "surge_checkpoint_errors_total" // failed durable checkpoint attempts
	MDegraded    = "surge_durability_degraded"     // 1 while ingest is shed (gauge)
	MDegradedTot = "surge_degraded_transitions_total"
	MRepairedTot = "surge_repairs_total" // degraded -> ok transitions
	MDegradedSec = "surge_degraded_seconds_total"
)
