package bench

import (
	"fmt"
	"runtime"
	"time"

	"surge"
	"surge/internal/core"
)

// shardsRow is one measured point of the shards experiment, as emitted to
// BENCH_shards.json.
type shardsRow struct {
	Engine        string  `json:"engine"`
	Shards        int     `json:"shards"`
	Objects       int     `json:"objects"`
	Batch         int     `json:"batch"`
	Seconds       float64 `json:"seconds"`
	ObjectsPerSec float64 `json:"objects_per_sec"`
	Speedup       float64 `json:"speedup"` // vs the engine's 1-shard row
}

// shardsReport is the BENCH_shards.json document.
type shardsReport struct {
	Experiment string      `json:"experiment"`
	GoMaxProcs int         `json:"gomaxprocs"`
	Rows       []shardsRow `json:"rows"`
}

// ShardScaling measures the end-to-end ingestion throughput of the public
// sharded pipeline (surge.Options.Shards + Detector.PushBatch) against the
// shard count, on the Taxi-like workload. Shards = 1 is the single-engine
// baseline; the other rows fan events out to per-shard engine goroutines
// over the column partitioning. Alongside the throughput it cross-checks
// that every shard count ends the stream on the same best score. When
// Options.JSONDir is set the rows are also written to
// <JSONDir>/BENCH_shards.json, so both scaling curves land in the perf
// trajectory next to BENCH_serve.json and BENCH_hotpath.json.
//
// Boundary objects are replicated into at most one neighbouring shard, so
// perfect scaling is bounded by shards/(1+halo); meaningful speedups need
// real hardware parallelism (GOMAXPROCS > 1).
func ShardScaling(o Options) error {
	d := o.dataset("Taxi")
	w := defaultWindow("Taxi")

	counts := []int{1, 2, 4}
	if n := runtime.NumCPU(); n > 4 {
		counts = append(counts, n)
	}
	type spec struct {
		name  string
		alg   surge.Algorithm
		limit int
		batch int
	}
	specs := []spec{
		{"CCS", surge.CellCSPOT, o.MaxExact * 4, 512},
		{"GAPS", surge.GridApprox, o.MaxApprox, 1024},
	}

	t := NewTable(o.Out, fmt.Sprintf("Shard scaling (Taxi, GOMAXPROCS=%d): PushBatch throughput vs shards", runtime.GOMAXPROCS(0)),
		"Shards", "CCS kobj/s", "CCS speedup", "GAPS kobj/s", "GAPS speedup")

	tableRows := make([][]any, len(counts))
	for i, n := range counts {
		tableRows[i] = []any{n}
	}
	jsonRows := make([]shardsRow, 0, len(counts)*len(specs))
	for _, sp := range specs {
		objs := genFor(d, w, sp.limit)
		var base float64
		var refScore float64
		var refFound bool
		for i, n := range counts {
			opt := surge.Options{
				Width: d.QueryWidth(), Height: d.QueryHeight(),
				Window: w, Alpha: o.Alpha, Shards: n,
			}
			det, err := surge.New(sp.alg, opt)
			if err != nil {
				return err
			}
			res, elapsed, err := replayBatched(det, objs, sp.batch)
			if err != nil {
				det.Close()
				return err
			}
			if err := det.Close(); err != nil {
				return err
			}
			if i == 0 {
				refScore, refFound = res.Score, res.Found
			} else if res.Found != refFound || res.Score != refScore {
				return fmt.Errorf("shards=%d %s: final score %v (found=%v) != single-engine %v (found=%v)",
					n, sp.name, res.Score, res.Found, refScore, refFound)
			}
			ops := float64(len(objs)) / elapsed.Seconds()
			if i == 0 {
				base = ops
			}
			tableRows[i] = append(tableRows[i], fmt.Sprintf("%.1f", ops/1e3), fmt.Sprintf("%.2fx", ops/base))
			jsonRows = append(jsonRows, shardsRow{
				Engine:        sp.name,
				Shards:        n,
				Objects:       len(objs),
				Batch:         sp.batch,
				Seconds:       elapsed.Seconds(),
				ObjectsPerSec: ops,
				Speedup:       ops / base,
			})
		}
	}
	for _, r := range tableRows {
		t.Row(r...)
	}
	t.Flush()
	fmt.Fprintf(o.Out, "(final best scores verified identical across shard counts)\n")
	return o.writeJSONReport("BENCH_shards.json", shardsReport{
		Experiment: "shards",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Rows:       jsonRows,
	})
}

// replayBatched feeds the whole stream through PushBatch in fixed-size
// chunks and returns the final result with the wall time spent.
func replayBatched(det *surge.Detector, objs []core.Object, batch int) (surge.Result, time.Duration, error) {
	buf := make([]surge.Object, 0, batch)
	var res surge.Result
	start := time.Now()
	for lo := 0; lo < len(objs); lo += batch {
		hi := lo + batch
		if hi > len(objs) {
			hi = len(objs)
		}
		buf = buf[:0]
		for _, ob := range objs[lo:hi] {
			buf = append(buf, surge.Object{X: ob.X, Y: ob.Y, Weight: ob.Weight, Time: ob.T})
		}
		var err error
		res, err = det.PushBatch(buf)
		if err != nil {
			return surge.Result{}, 0, err
		}
	}
	return res, time.Since(start), nil
}
