package bench

import (
	"bytes"
	"strings"
	"testing"

	"surge/internal/core"
	"surge/internal/stream"
)

func smallOptions(buf *bytes.Buffer) Options {
	o := DefaultOptions(buf)
	o.RateScale = 0.01
	o.MaxExact = 250
	o.MaxApprox = 1500
	return o
}

func TestNewEngineNames(t *testing.T) {
	cfg := core.Config{Width: 1, Height: 1, WC: 1, WP: 1, Alpha: 0.5}
	for _, name := range []string{"CCS", "B-CCS", "Base", "aG2", "GAPS", "MGAPS", "Oracle"} {
		if _, err := NewEngine(name, cfg); err != nil {
			t.Errorf("NewEngine(%q): %v", name, err)
		}
	}
	if _, err := NewEngine("nope", cfg); err == nil {
		t.Error("unknown engine name accepted")
	}
	for _, name := range []string{"kCCS", "kGAPS", "kMGAPS", "Naive"} {
		if _, err := NewTopKEngine(name, cfg, 3); err != nil {
			t.Errorf("NewTopKEngine(%q): %v", name, err)
		}
	}
	if _, err := NewTopKEngine("nope", cfg, 3); err == nil {
		t.Error("unknown top-k engine name accepted")
	}
}

func TestReplayMeasurement(t *testing.T) {
	d := stream.TaxiLike(1)
	d.RatePerHour *= 0.02
	cfg := core.Config{Width: d.QueryWidth(), Height: d.QueryHeight(), WC: 300, WP: 300, Alpha: 0.5}
	objs := genFor(d, 300, 500)
	eng, _ := NewEngine("GAPS", cfg)
	m := ReplayLimited(cfg, eng, objs, 500)
	if m.Objects == 0 {
		t.Fatal("no objects measured — warm-up never completed")
	}
	if m.Objects > 500 {
		t.Fatalf("measured %d objects, cap was 500", m.Objects)
	}
	if m.Events < m.Objects {
		t.Fatalf("events %d < objects %d (each arrival implies >=1 event)", m.Events, m.Objects)
	}
	if m.MicrosPerObject() <= 0 || m.PerObject() <= 0 {
		t.Fatal("no time recorded")
	}
	if m.StreamSec <= 0 || m.PerStreamHour() <= 0 {
		t.Fatalf("stream-time accounting broken: %+v", m)
	}
}

func TestReplayEmptyMeasurement(t *testing.T) {
	var m Measurement
	if m.PerObject() != 0 || m.MicrosPerObject() != 0 || m.PerStreamHour() != 0 {
		t.Fatal("zero measurement must report zeros")
	}
}

func TestApproxRatioBounds(t *testing.T) {
	d := stream.TaxiLike(2)
	d.RatePerHour *= 0.02
	cfg := core.Config{Width: d.QueryWidth(), Height: d.QueryHeight(), WC: 300, WP: 300, Alpha: 0.5}
	objs := genFor(d, 300, 400)
	g, m, err := ApproxRatio(cfg, objs, 400)
	if err != nil {
		t.Fatal(err)
	}
	floor := (1 - cfg.Alpha) / 4
	if g < floor || g > 1+1e-9 {
		t.Fatalf("GAPS ratio %v outside [%v, 1]", g, floor)
	}
	if m < g-1e-9 || m > 1+1e-9 {
		t.Fatalf("MGAPS ratio %v should be in [GAPS=%v, 1]", m, g)
	}
}

func TestApproxRatioTooShort(t *testing.T) {
	cfg := core.Config{Width: 1, Height: 1, WC: 1e9, WP: 1e9, Alpha: 0.5}
	objs := stream.TaxiLike(1).Generate(50)
	if _, _, err := ApproxRatio(cfg, objs, 0); err == nil {
		t.Fatal("stream shorter than the windows must error, not report 0 samples")
	}
}

func TestTablePrinter(t *testing.T) {
	var buf bytes.Buffer
	tb := NewTable(&buf, "Demo", "A", "B")
	tb.Row(1, "x")
	tb.Row(2.5, "y")
	tb.Flush()
	out := buf.String()
	for _, want := range []string{"== Demo ==", "A", "B", "2.5", "y"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("bogus", smallOptions(&buf)); err == nil {
		t.Fatal("unknown experiment id accepted")
	}
}

// TestAllExperimentsSmoke runs every registered experiment at a miniature
// scale to catch panics, wiring bugs and empty-measurement regressions.
func TestAllExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke tests are slow")
	}
	for _, id := range Experiments() {
		id := id
		t.Run(id, func(t *testing.T) {
			var buf bytes.Buffer
			o := smallOptions(&buf)
			if err := Run(id, o); err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if buf.Len() == 0 {
				t.Fatalf("%s produced no output", id)
			}
		})
	}
}
