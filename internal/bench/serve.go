package bench

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"runtime"
	"sync"
	"time"

	"surge"
	"surge/client"
	"surge/internal/server"
)

// serveIngesters is the number of concurrent NDJSON ingesters driven
// against the server — the acceptance scenario of the serving subsystem.
const serveIngesters = 4

// serveRow is one measured point of the serve experiment, as emitted to
// BENCH_serve.json.
type serveRow struct {
	Shards        int     `json:"shards"`
	Ingesters     int     `json:"ingesters"`
	Objects       int     `json:"objects"`
	Seconds       float64 `json:"seconds"`
	ObjectsPerSec float64 `json:"objects_per_sec"`
	// EventsPerSec counts engine window events (halo replicas counted per
	// receiving shard), the detector-side view of the same throughput.
	EventsPerSec float64 `json:"events_per_sec"`
	Speedup      float64 `json:"speedup"` // vs the 1-shard row
}

// serveReport is the BENCH_serve.json document.
type serveReport struct {
	Experiment string     `json:"experiment"`
	GoMaxProcs int        `json:"gomaxprocs"`
	Rows       []serveRow `json:"rows"`
}

// Serve measures end-to-end ingest throughput of the HTTP serving layer —
// concurrent NDJSON ingesters through internal/server into the sharded
// pipeline — against the shard count, on the Taxi-like workload. Unlike
// ShardScaling this includes the full network path: HTTP framing, NDJSON
// decoding (concurrent, off the event loop) and the single-writer loop.
// When Options.JSONDir is set the rows are also written to
// <JSONDir>/BENCH_serve.json.
func Serve(o Options) error {
	d := o.dataset("Taxi")
	w := defaultWindow("Taxi")
	objs := genFor(d, w, o.MaxApprox)

	bodies, err := ndjsonBodies(toSurgeObjects(objs), serveIngesters)
	if err != nil {
		return err
	}

	counts := []int{1, 2, 4}
	if n := runtime.NumCPU(); n > 4 {
		counts = append(counts, n)
	}
	t := NewTable(o.Out, fmt.Sprintf("Serve (Taxi, GOMAXPROCS=%d): HTTP ingest throughput, %d NDJSON ingesters vs shards",
		runtime.GOMAXPROCS(0), serveIngesters),
		"Shards", "kobj/s", "kevents/s", "Speedup")
	rows := make([]serveRow, 0, len(counts))
	var base float64
	for _, n := range counts {
		row, err := serveOnce(o, d.QueryWidth(), d.QueryHeight(), w, n, bodies, len(objs))
		if err != nil {
			return err
		}
		if base == 0 {
			base = row.ObjectsPerSec
		}
		row.Speedup = row.ObjectsPerSec / base
		rows = append(rows, row)
		t.Row(n, fmt.Sprintf("%.1f", row.ObjectsPerSec/1e3),
			fmt.Sprintf("%.1f", row.EventsPerSec/1e3),
			fmt.Sprintf("%.2fx", row.Speedup))
	}
	t.Flush()
	return o.writeJSONReport("BENCH_serve.json", serveReport{
		Experiment: "serve",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Rows:       rows,
	})
}

// serveOnce stands a server up on a loopback listener, fires the
// pre-encoded ingest bodies concurrently and reads the final counters.
func serveOnce(o Options, qw, qh, window float64, shards int, bodies [][]byte, total int) (serveRow, error) {
	s, err := server.New(server.Config{
		Algorithm: surge.CellCSPOT,
		Options: surge.Options{
			Width: qw, Height: qh, Window: window, Alpha: o.Alpha, Shards: shards,
		},
		TimePolicy: server.Clamp,
		BatchSize:  512,
	})
	if err != nil {
		return serveRow{}, err
	}
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()
	c := client.New(ts.URL)
	ctx := context.Background()

	var wg sync.WaitGroup
	errs := make([]error, len(bodies))
	start := time.Now()
	for g, body := range bodies {
		wg.Add(1)
		go func(g int, body []byte) {
			defer wg.Done()
			res, err := c.IngestStream(ctx, bytes.NewReader(body), client.NDJSON)
			if err == nil && res.Accepted == 0 {
				err = fmt.Errorf("ingester %d: nothing accepted", g)
			}
			errs[g] = err
		}(g, body)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return serveRow{}, err
		}
	}
	st, err := c.Best(ctx)
	if err != nil {
		return serveRow{}, err
	}
	return serveRow{
		Shards:        shards,
		Ingesters:     len(bodies),
		Objects:       total,
		Seconds:       elapsed.Seconds(),
		ObjectsPerSec: float64(total) / elapsed.Seconds(),
		EventsPerSec:  float64(st.Stats.Events) / elapsed.Seconds(),
	}, nil
}
