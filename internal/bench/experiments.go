package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"surge/internal/core"
	"surge/internal/geom"
	"surge/internal/stream"
	"surge/internal/window"
)

// Options configure an experiment run. The zero value is not usable; use
// DefaultOptions.
type Options struct {
	Out   io.Writer
	Seed  uint64
	Alpha float64
	K     int
	// RateScale multiplies the datasets' arrival rates. The paper runs 1M
	// objects at full Twitter/taxi rates on a 64GB server; the default scale
	// keeps every sweep point affordable on a laptop while preserving the
	// relative behaviour of the algorithms. Use -full (RateScale=1).
	RateScale float64
	// MaxExact / MaxApprox cap the number of measured objects per sweep
	// point for exact and approximate engines respectively.
	MaxExact  int
	MaxApprox int
	// JSONDir, when non-empty, is where experiments that emit
	// machine-readable results ("serve" -> BENCH_serve.json, "shards" ->
	// BENCH_shards.json, "hotpath" -> BENCH_hotpath.json, "topkserve" ->
	// BENCH_topk.json, "tenancy" -> BENCH_tenancy.json) write their JSON
	// files. Empty disables the files.
	JSONDir string
	// ObsOverheadMaxPct, when > 0, makes the hotpath experiment fail loudly
	// if the observability instrumentation costs more than this percentage
	// of sharded ingest throughput (measured obs-on vs obs-off).
	ObsOverheadMaxPct float64
}

// DefaultOptions returns laptop-scale defaults.
func DefaultOptions(out io.Writer) Options {
	return Options{
		Out:       out,
		Seed:      1,
		Alpha:     0.5,
		K:         5,
		RateScale: 0.1,
		MaxExact:  8000,
		MaxApprox: 120000,
	}
}

// Experiments returns the registry of experiment ids in run order.
func Experiments() []string {
	return []string{"table1", "fig5", "table2", "fig6", "fig7", "table3", "table4", "fig8", "fig9", "case", "ablation", "roadnet", "shards", "serve", "hotpath", "topkserve", "tenancy"}
}

// Run executes one experiment by id.
func Run(id string, o Options) error {
	switch id {
	case "table1":
		return Table1(o)
	case "fig5":
		return Fig5(o)
	case "table2":
		return Table2(o)
	case "fig6":
		return Fig6(o)
	case "fig7":
		return Fig7(o)
	case "table3":
		return Table3(o)
	case "table4":
		return Table4(o)
	case "fig8":
		return Fig8(o)
	case "fig9":
		return Fig9(o)
	case "case":
		return CaseStudy(o)
	case "ablation":
		return Ablation(o)
	case "roadnet":
		return RoadNet(o)
	case "shards":
		return ShardScaling(o)
	case "serve":
		return Serve(o)
	case "hotpath":
		return Hotpath(o)
	case "topkserve":
		return TopKServe(o)
	case "tenancy":
		return Tenancy(o)
	default:
		return fmt.Errorf("bench: unknown experiment %q (known: %v)", id, Experiments())
	}
}

// writeJSONReport marshals an experiment's machine-readable report to
// <JSONDir>/<name> and logs the path. A no-op when JSONDir is unset.
func (o Options) writeJSONReport(name string, report any) error {
	if o.JSONDir == "" {
		return nil
	}
	path := filepath.Join(o.JSONDir, name)
	doc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(doc, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(o.Out, "(rows written to %s)\n", path)
	return nil
}

// dataset returns the named Table-I dataset with the run's rate scale.
func (o Options) dataset(name string) stream.Dataset {
	var d stream.Dataset
	switch name {
	case "UK":
		d = stream.UKLike(o.Seed)
	case "US":
		d = stream.USLike(o.Seed + 1)
	default:
		d = stream.TaxiLike(o.Seed + 2)
	}
	d.RatePerHour *= o.RateScale
	return d
}

// windowSweeps returns each dataset's paper window sweep in seconds.
func windowSweeps() map[string][]float64 {
	return map[string][]float64{
		"Taxi": {1 * 60, 5 * 60, 10 * 60, 20 * 60, 30 * 60},
		"UK":   {0.5 * 3600, 1 * 3600, 2 * 3600, 5 * 3600, 12 * 3600},
		"US":   {0.5 * 3600, 1 * 3600, 2 * 3600, 5 * 3600, 12 * 3600},
	}
}

func windowLabel(name string, w float64) string {
	if name == "Taxi" {
		return fmt.Sprintf("%gm", w/60)
	}
	return fmt.Sprintf("%gh", w/3600)
}

// genFor generates just enough stream for a sweep point: the 2-window
// warm-up plus the measured sample plus slack.
func genFor(d stream.Dataset, windowSec float64, measured int) []core.Object {
	warm := int(d.RatePerHour/3600*2*windowSec*1.08) + 100
	return d.Generate(warm + measured + measured/10 + 100)
}

func (o Options) cfgFor(d stream.Dataset, windowSec, sizeMult float64) core.Config {
	return core.Config{
		Width:  d.QueryWidth() * sizeMult,
		Height: d.QueryHeight() * sizeMult,
		WC:     windowSec,
		WP:     windowSec,
		Alpha:  o.Alpha,
	}
}

// Table1 reproduces Table I: the dataset envelopes of the generated streams.
func Table1(o Options) error {
	t := NewTable(o.Out, "Table I: datasets (generated; published envelope in parentheses)",
		"Dataset", "Objects", "Rate/hour (paper)", "Lat range (paper)", "Lon range (paper)", "Mean weight")
	for _, name := range []string{"UK", "US", "Taxi"} {
		d := o.dataset(name)
		n := int(d.RatePerHour * 24) // one simulated day
		if n > 1000000 {
			n = 1000000
		}
		objs := d.Generate(n)
		s := stream.Summarize(objs)
		t.Row(name, s.Count,
			fmt.Sprintf("%.0f (%.0f)", s.RatePerHour, d.RatePerHour),
			fmt.Sprintf("[%.1f, %.1f] ([%.1f, %.1f])", s.XMin, s.XMax, d.XMin, d.XMax),
			fmt.Sprintf("[%.1f, %.1f] ([%.1f, %.1f])", s.YMin, s.YMax, d.YMin, d.YMax),
			fmt.Sprintf("%.1f", s.MeanWeight))
	}
	t.Flush()
	return nil
}

// Fig5 reproduces Figure 5: per-object runtime of the exact solutions (CCS,
// B-CCS, Base, aG2) against the window length (a-c) and query size (d-f).
func Fig5(o Options) error {
	engines := []string{"CCS", "B-CCS", "Base", "aG2"}
	for _, name := range []string{"Taxi", "UK", "US"} {
		d := o.dataset(name)
		t := NewTable(o.Out, fmt.Sprintf("Fig 5 (%s): exact solutions, time/object (us) vs window", name),
			append([]string{"Window"}, engines...)...)
		for _, w := range windowSweeps()[name] {
			objs := genFor(d, w, o.MaxExact)
			cfg := o.cfgFor(d, w, 1)
			row := []any{windowLabel(name, w)}
			for _, en := range engines {
				eng, err := NewEngine(en, cfg)
				if err != nil {
					return err
				}
				m := ReplayLimited(cfg, eng, objs, o.MaxExact)
				row = append(row, fmt.Sprintf("%.1f", m.MicrosPerObject()))
			}
			t.Row(row...)
		}
		t.Flush()

		t = NewTable(o.Out, fmt.Sprintf("Fig 5 (%s): exact solutions, time/object (us) vs query size", name),
			append([]string{"Size"}, engines...)...)
		wDef := defaultWindow(name)
		objs := genFor(d, wDef, o.MaxExact)
		for _, mult := range []float64{0.5, 1, 2, 3} {
			cfg := o.cfgFor(d, wDef, mult)
			row := []any{fmt.Sprintf("%gq", mult)}
			for _, en := range engines {
				eng, err := NewEngine(en, cfg)
				if err != nil {
					return err
				}
				m := ReplayLimited(cfg, eng, objs, o.MaxExact)
				row = append(row, fmt.Sprintf("%.1f", m.MicrosPerObject()))
			}
			t.Row(row...)
		}
		t.Flush()
	}
	return nil
}

func defaultWindow(name string) float64 {
	if name == "Taxi" {
		return 5 * 60
	}
	return 3600
}

// Table2 reproduces Table II: the percentage of rectangle events that
// trigger a cell search, CCS vs B-CCS, across the window sweep.
func Table2(o Options) error {
	for _, name := range []string{"Taxi", "UK", "US"} {
		d := o.dataset(name)
		t := NewTable(o.Out, fmt.Sprintf("Table II (%s): %% of events triggering a search", name),
			"Window", "CCS", "B-CCS")
		for _, w := range windowSweeps()[name] {
			objs := genFor(d, w, o.MaxExact)
			cfg := o.cfgFor(d, w, 1)
			row := []any{windowLabel(name, w)}
			for _, en := range []string{"CCS", "B-CCS"} {
				eng, err := NewEngine(en, cfg)
				if err != nil {
					return err
				}
				m := ReplayLimited(cfg, eng, objs, o.MaxExact)
				row = append(row, fmt.Sprintf("%.2f%%", m.Stats.SearchRatio()*100))
			}
			t.Row(row...)
		}
		t.Flush()
	}
	return nil
}

// Fig6 reproduces Figure 6: per-object runtime of GAPS and MGAPS vs window
// length and query size.
func Fig6(o Options) error {
	engines := []string{"GAPS", "MGAPS"}
	for _, name := range []string{"Taxi", "UK", "US"} {
		d := o.dataset(name)
		t := NewTable(o.Out, fmt.Sprintf("Fig 6 (%s): approximate solutions, time/object (us) vs window", name),
			append([]string{"Window"}, engines...)...)
		for _, w := range windowSweeps()[name] {
			objs := genFor(d, w, o.MaxApprox)
			cfg := o.cfgFor(d, w, 1)
			row := []any{windowLabel(name, w)}
			for _, en := range engines {
				eng, _ := NewEngine(en, cfg)
				m := ReplayLimited(cfg, eng, objs, o.MaxApprox)
				row = append(row, fmt.Sprintf("%.3f", m.MicrosPerObject()))
			}
			t.Row(row...)
		}
		t.Flush()

		t = NewTable(o.Out, fmt.Sprintf("Fig 6 (%s): approximate solutions, time/object (us) vs query size", name),
			append([]string{"Size"}, engines...)...)
		wDef := defaultWindow(name)
		objs := genFor(d, wDef, o.MaxApprox)
		for _, mult := range []float64{0.5, 1, 2, 3} {
			cfg := o.cfgFor(d, wDef, mult)
			row := []any{fmt.Sprintf("%gq", mult)}
			for _, en := range engines {
				eng, _ := NewEngine(en, cfg)
				m := ReplayLimited(cfg, eng, objs, o.MaxApprox)
				row = append(row, fmt.Sprintf("%.3f", m.MicrosPerObject()))
			}
			t.Row(row...)
		}
		t.Flush()
	}
	return nil
}

// Fig7 reproduces Figure 7: runtime vs the balance parameter alpha on the
// US dataset, for the exact (CCS, aG2) and approximate (GAPS, MGAPS)
// solutions.
func Fig7(o Options) error {
	d := o.dataset("US")
	w := defaultWindow("US")
	exact := []string{"CCS", "aG2"}
	approx := []string{"GAPS", "MGAPS"}
	t := NewTable(o.Out, "Fig 7(a): exact solutions on US, time/object (us) vs alpha",
		append([]string{"alpha"}, exact...)...)
	objsE := genFor(d, w, o.MaxExact)
	objsA := genFor(d, w, o.MaxApprox)
	for _, alpha := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		cfg := o.cfgFor(d, w, 1)
		cfg.Alpha = alpha
		row := []any{alpha}
		for _, en := range exact {
			eng, _ := NewEngine(en, cfg)
			m := ReplayLimited(cfg, eng, objsE, o.MaxExact)
			row = append(row, fmt.Sprintf("%.1f", m.MicrosPerObject()))
		}
		t.Row(row...)
	}
	t.Flush()
	t = NewTable(o.Out, "Fig 7(b): approximate solutions on US, time/object (us) vs alpha",
		append([]string{"alpha"}, approx...)...)
	for _, alpha := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		cfg := o.cfgFor(d, w, 1)
		cfg.Alpha = alpha
		row := []any{alpha}
		for _, en := range approx {
			eng, _ := NewEngine(en, cfg)
			m := ReplayLimited(cfg, eng, objsA, o.MaxApprox)
			row = append(row, fmt.Sprintf("%.3f", m.MicrosPerObject()))
		}
		t.Row(row...)
	}
	t.Flush()
	return nil
}

// ApproxRatio replays one stream through CCS (exact), GAPS and MGAPS
// simultaneously and returns the mean score ratios of the approximations
// over the events past warm-up (Tables III and IV). maxMeasured caps the
// measured objects (0 = unlimited).
func ApproxRatio(cfg core.Config, objs []core.Object, maxMeasured int) (gapsRatio, mgapsRatio float64, err error) {
	exact, err := NewEngine("CCS", cfg)
	if err != nil {
		return 0, 0, err
	}
	gaps, _ := NewEngine("GAPS", cfg)
	mgaps, _ := NewEngine("MGAPS", cfg)
	win, err := window.New(cfg.WC, cfg.WP)
	if err != nil {
		return 0, 0, err
	}
	warm := true
	var sumG, sumM float64
	samples := 0
	measured := 0
	step := func(ev core.Event) {
		if warm && ev.Kind == core.Expired {
			warm = false
		}
		exact.Process(ev)
		gaps.Process(ev)
		mgaps.Process(ev)
		if warm {
			return
		}
		opt := exact.Best()
		if !opt.Found || opt.Score <= 0 {
			return
		}
		g, m := gaps.Best(), mgaps.Best()
		sumG += g.Score / opt.Score
		sumM += m.Score / opt.Score
		samples++
	}
	for _, ob := range objs {
		if _, err := win.Push(ob, step); err != nil {
			return 0, 0, err
		}
		if !warm {
			measured++
			if maxMeasured > 0 && measured >= maxMeasured {
				break
			}
		}
	}
	if samples == 0 {
		return 0, 0, fmt.Errorf("bench: no ratio samples (stream too short for window %v)", cfg.WC)
	}
	return sumG / float64(samples), sumM / float64(samples), nil
}

// Table3 reproduces Table III: approximation ratio vs alpha on US.
func Table3(o Options) error {
	d := o.dataset("US")
	w := defaultWindow("US")
	t := NewTable(o.Out, "Table III: approximation ratio vs alpha (US)",
		"alpha", "GAPS", "MGAPS")
	objs := genFor(d, w, o.MaxExact)
	for _, alpha := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		cfg := o.cfgFor(d, w, 1)
		cfg.Alpha = alpha
		g, m, err := ApproxRatio(cfg, objs, o.MaxExact)
		if err != nil {
			return err
		}
		t.Row(alpha, fmt.Sprintf("%.2f%%", g*100), fmt.Sprintf("%.2f%%", m*100))
	}
	t.Flush()
	return nil
}

// Table4 reproduces Table IV (Appendix K): approximation ratio vs window
// size on all three datasets.
func Table4(o Options) error {
	for _, name := range []string{"Taxi", "UK", "US"} {
		d := o.dataset(name)
		t := NewTable(o.Out, fmt.Sprintf("Table IV (%s): approximation ratio vs window", name),
			"Window", "GAPS", "MGAPS")
		for _, w := range windowSweeps()[name] {
			cfg := o.cfgFor(d, w, 1)
			objs := genFor(d, w, o.MaxExact)
			g, m, err := ApproxRatio(cfg, objs, o.MaxExact)
			if err != nil {
				return err
			}
			t.Row(windowLabel(name, w), fmt.Sprintf("%.2f%%", g*100), fmt.Sprintf("%.2f%%", m*100))
		}
		t.Flush()
	}
	return nil
}

// Fig8 reproduces Figure 8: scalability with the arrival rate. The stream
// is stretched to rates of 2-10 million objects/day (scaled by RateScale)
// and the wall-clock time to process one hour of stream is reported for CCS
// and GAPS.
func Fig8(o Options) error {
	t := NewTable(o.Out, "Fig 8: processing time per stream-hour (s) vs arrival rate",
		"Rate (M/day)", "CCS UK", "CCS US", "CCS Taxi", "GAPS UK", "GAPS US", "GAPS Taxi")
	w := 3600.0
	type key struct{ rate, ds string }
	results := map[key]string{}
	rates := []float64{2e6, 4e6, 6e6, 8e6, 10e6}
	for _, name := range []string{"UK", "US", "Taxi"} {
		d := o.dataset(name)
		base := d.Generate(int(200000 * o.RateScale * 10)) // base stream to stretch
		for _, rate := range rates {
			scaled := rate * o.RateScale
			objs := stream.Stretch(base, scaled)
			cfg := o.cfgFor(d, w, 1)
			for _, en := range []string{"CCS", "GAPS"} {
				eng, _ := NewEngine(en, cfg)
				limit := o.MaxExact
				if en == "GAPS" {
					limit = o.MaxApprox
				}
				m := ReplayLimited(cfg, eng, objs, limit)
				results[key{fmt.Sprintf("%g", rate/1e6), en + " " + name}] = fmt.Sprintf("%.3f", m.PerStreamHour())
			}
		}
	}
	for _, rate := range rates {
		r := fmt.Sprintf("%g", rate/1e6)
		t.Row(r,
			results[key{r, "CCS UK"}], results[key{r, "CCS US"}], results[key{r, "CCS Taxi"}],
			results[key{r, "GAPS UK"}], results[key{r, "GAPS US"}], results[key{r, "GAPS Taxi"}])
	}
	t.Flush()
	fmt.Fprintf(o.Out, "(rates scaled by RateScale=%g; one stream-hour at scale 1 holds the paper's object volume)\n", o.RateScale)
	return nil
}

// Fig9 reproduces Figure 9: top-k detection. (a-c) runtime vs window for
// kCCS/kGAPS/kMGAPS (plus Naive on a small US configuration), (d-f) runtime
// vs k.
func Fig9(o Options) error {
	engines := []string{"kCCS", "kGAPS", "kMGAPS"}
	maxTopkExact := o.MaxExact / 4
	if maxTopkExact < 500 {
		maxTopkExact = 500
	}
	for _, name := range []string{"Taxi", "UK", "US"} {
		d := o.dataset(name)
		t := NewTable(o.Out, fmt.Sprintf("Fig 9 (%s): top-k (k=%d), time/object (us) vs window", name, o.K),
			append([]string{"Window"}, engines...)...)
		for _, w := range windowSweeps()[name] {
			objs := genFor(d, w, maxTopkExact)
			cfg := o.cfgFor(d, w, 1)
			row := []any{windowLabel(name, w)}
			for _, en := range engines {
				eng, err := NewTopKEngine(en, cfg, o.K)
				if err != nil {
					return err
				}
				limit := maxTopkExact
				if en != "kCCS" {
					limit = o.MaxApprox
				}
				m := ReplayTopK(cfg, eng, objs, limit)
				row = append(row, fmt.Sprintf("%.2f", m.MicrosPerObject()))
			}
			t.Row(row...)
		}
		t.Flush()
	}
	// Naive comparison on a deliberately small US configuration, as in the
	// paper ("we only run it with a small sliding window on US").
	{
		d := o.dataset("US")
		w := 0.5 * 3600
		cfg := o.cfgFor(d, w, 1)
		objs := genFor(d, w, 300)
		t := NewTable(o.Out, "Fig 9(c) inset: naive top-k baseline (US, 0.5h window)",
			"Engine", "time/object (us)")
		for _, en := range []string{"Naive", "kCCS"} {
			eng, _ := NewTopKEngine(en, cfg, o.K)
			m := ReplayTopK(cfg, eng, objs, 300)
			t.Row(en, fmt.Sprintf("%.1f", m.MicrosPerObject()))
		}
		t.Flush()
	}
	// (d-f): runtime vs k.
	for _, name := range []string{"Taxi", "UK", "US"} {
		d := o.dataset(name)
		w := defaultWindow(name)
		objs := genFor(d, w, maxTopkExact)
		t := NewTable(o.Out, fmt.Sprintf("Fig 9 (%s): top-k, time/object (us) vs k", name),
			"k", "kCCS", "kGAPS", "kMGAPS")
		for _, k := range []int{3, 5, 7, 9} {
			cfg := o.cfgFor(d, w, 1)
			row := []any{k}
			for _, en := range engines {
				eng, _ := NewTopKEngine(en, cfg, k)
				limit := maxTopkExact
				if en != "kCCS" {
					limit = o.MaxApprox
				}
				m := ReplayTopK(cfg, eng, objs, limit)
				row = append(row, fmt.Sprintf("%.2f", m.MicrosPerObject()))
			}
			t.Row(row...)
		}
		t.Flush()
	}
	return nil
}

// CaseStudy reproduces Section VII-G qualitatively: a localized burst is
// planted in a Taxi-like stream and CCS is expected to lock onto it while
// it is inside the current window.
func CaseStudy(o Options) error {
	d := o.dataset("Taxi")
	w := 5 * 60.0
	cfg := o.cfgFor(d, w, 1)
	objs := d.Generate(int(d.RatePerHour/3600*2.5*3600) + 2000)
	burst := stream.Burst{
		CX: 12.70, CY: 42.05, SX: cfg.Width / 6, SY: cfg.Height / 6,
		Start: 2 * 3600, Duration: w, Count: 300, Seed: o.Seed,
	}
	objs = stream.Inject(objs, burst)
	eng, err := NewEngine("CCS", cfg)
	if err != nil {
		return err
	}
	win, err := window.New(cfg.WC, cfg.WP)
	if err != nil {
		return err
	}
	hits, queries := 0, 0
	var sample core.Result
	for _, ob := range objs {
		if _, err := win.Push(ob, eng.Process); err != nil {
			return err
		}
		if ob.T > burst.Start+30 && ob.T < burst.Start+burst.Duration {
			res := eng.Best()
			queries++
			if res.Found && res.Region.ContainsCO(geom.Point{X: burst.CX, Y: burst.CY}) {
				hits++
				sample = res
			}
		}
	}
	t := NewTable(o.Out, "Case study: planted burst tracking (Taxi-like, CCS)",
		"Metric", "Value")
	t.Row("burst centre", fmt.Sprintf("(%.3f, %.3f)", burst.CX, burst.CY))
	t.Row("burst objects / duration", fmt.Sprintf("%d / %.0fs", burst.Count, burst.Duration))
	t.Row("queries during burst", queries)
	t.Row("queries locked on burst", fmt.Sprintf("%d (%.1f%%)", hits, 100*float64(hits)/math.Max(1, float64(queries))))
	if sample.Found {
		t.Row("sample detected region", fmt.Sprintf("[%.5f,%.5f]x[%.5f,%.5f] score %.1f",
			sample.Region.MinX, sample.Region.MaxX, sample.Region.MinY, sample.Region.MaxY, sample.Score))
	}
	t.Flush()
	if queries > 0 && float64(hits)/float64(queries) < 0.5 {
		return fmt.Errorf("case study: burst tracked in only %d/%d queries", hits, queries)
	}
	return nil
}
