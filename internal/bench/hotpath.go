package bench

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"surge"
	"surge/client"
	"surge/internal/core"
	"surge/internal/obs"
	"surge/internal/server"
	"surge/internal/wal"
)

// hotpathRow is one measured configuration of the hotpath experiment, as
// emitted to BENCH_hotpath.json.
type hotpathRow struct {
	Config        string  `json:"config"`
	Shards        int     `json:"shards,omitempty"`
	Objects       int     `json:"objects"`
	Seconds       float64 `json:"seconds"`
	NsPerObj      float64 `json:"ns_per_obj"`
	AllocsPerObj  float64 `json:"allocs_per_obj"`
	BytesPerObj   float64 `json:"bytes_per_obj"`
	ObjectsPerSec float64 `json:"objects_per_sec"`
	// Ingest-ack latency quantiles (chunk submit -> applied & acked) from
	// the obs histogram, recorded by the http-ingest configuration only.
	IngestAckP50Us  float64 `json:"ingest_ack_p50_us,omitempty"`
	IngestAckP99Us  float64 `json:"ingest_ack_p99_us,omitempty"`
	IngestAckP999Us float64 `json:"ingest_ack_p999_us,omitempty"`
}

// hotpathReport is the BENCH_hotpath.json document.
type hotpathReport struct {
	Experiment string `json:"experiment"`
	GoMaxProcs int    `json:"gomaxprocs"`
	// ObsOverheadPct is the throughput cost of the observability
	// instrumentation on the sharded batch path: the median of the
	// per-round sharded/sharded-noobs ns/obj ratios, minus one, in percent.
	// Adjacent-in-time rounds share ambient load, so each ratio cancels the
	// runner's drift and the median discards outlier rounds. Negative
	// values are machine noise.
	ObsOverheadPct float64 `json:"obs_overhead_pct"`
	// WALOverheadPct is the throughput cost of durable ingest with the
	// interval fsync policy: the median per-round http-ingest-wal-interval /
	// http-ingest ns/obj ratio, minus one, in percent. Same pairing and
	// median rationale as ObsOverheadPct.
	WALOverheadPct float64      `json:"wal_overhead_pct"`
	Rows           []hotpathRow `json:"rows"`
}

// Hotpath measures the steady-state ingest cost — ns/obj, heap allocations
// and allocated bytes per object — of four hot-path configurations on the
// Taxi-like workload:
//
//	ccs-push     single-engine CCS, Push per object (continuous query)
//	gaps-push    single-engine GAPS, Push per object
//	sharded      CCS sharded pipeline, PushBatch in 512-object chunks
//	http-ingest  full HTTP path: concurrent NDJSON ingesters through
//	             internal/server into the sharded pipeline
//
// Unlike the paper-replay experiments it times the entire feed (no warm-up
// split) and reads runtime.MemStats around it: the rows are a perf-trajectory
// metric for the ingest path, tracked in BENCH_hotpath.json via -json-dir,
// not the paper's per-object detection latency. Each configuration is fed
// into a fresh detector hotpathRounds times, interleaved so machine noise
// hits every configuration equally, and the fastest row (by ns/obj) is
// reported: on a shared runner external load only ever adds time, so the
// least-interfered round is the closest estimate of the code's own cost —
// single-shot rows (and even medians, when the load fluctuates on the scale
// of the whole run) swing by 20%+.
func Hotpath(o Options) error {
	d := o.dataset("Taxi")
	w := defaultWindow("Taxi")
	qw, qh := d.QueryWidth(), d.QueryHeight()
	// At least 2 shards so the pipeline (router, channels, merger) is
	// actually on the measured path even on single-core runners.
	shards := runtime.NumCPU()
	if shards < 2 {
		shards = 2
	}

	exactObjs := toSurgeObjects(genFor(d, w, o.MaxExact*4))
	approxObjs := toSurgeObjects(genFor(d, w, o.MaxApprox))
	bodies, err := ndjsonBodies(approxObjs, serveIngesters)
	if err != nil {
		return err
	}

	// Single-engine Push, continuous query per arrival.
	pushOnce := func(name string, alg surge.Algorithm, objs []surge.Object) (hotpathRow, error) {
		det, err := surge.New(alg, surge.Options{
			Width: qw, Height: qh, Window: w, Alpha: o.Alpha,
		})
		if err != nil {
			return hotpathRow{}, err
		}
		defer det.Close()
		return measureHotpath(name, len(objs), func() error {
			for _, ob := range objs {
				if _, err := det.Push(ob); err != nil {
					return err
				}
			}
			return nil
		})
	}

	// Sharded pipeline, batch ingest. obsOn=false prices the observability
	// instrumentation itself: every recording site reduces to one atomic
	// load, so sharded vs sharded-noobs is the overhead of the telemetry.
	// passes > 1 lengthens a round by refeeding the stream (time-shifted so
	// the windows keep turning over), shrinking the relative timer noise the
	// overhead gate divides by.
	shardedOnce := func(name string, obsOn bool, passes int) (hotpathRow, error) {
		det, err := surge.New(surge.CellCSPOT, surge.Options{
			Width: qw, Height: qh, Window: w, Alpha: o.Alpha, Shards: shards,
		})
		if err != nil {
			return hotpathRow{}, err
		}
		defer det.Close()
		if !obsOn {
			obs.SetEnabled(false)
			defer obs.SetEnabled(true)
		}
		span := exactObjs[len(exactObjs)-1].Time + 1
		buf := make([]surge.Object, 0, 512)
		row, err := measureHotpath(name, passes*len(exactObjs), func() error {
			const batch = 512
			for p := 0; p < passes; p++ {
				shift := float64(p) * span
				for lo := 0; lo < len(exactObjs); lo += batch {
					hi := lo + batch
					if hi > len(exactObjs) {
						hi = len(exactObjs)
					}
					buf = append(buf[:0], exactObjs[lo:hi]...)
					for i := range buf {
						buf[i].Time += shift
					}
					if _, err := det.PushBatch(buf); err != nil {
						return err
					}
				}
			}
			return nil
		})
		row.Shards = shards
		return row, err
	}

	// Full HTTP ingest path: concurrent NDJSON ingesters. A non-empty WAL
	// sync policy prices durable ingest: same path plus the write-ahead log
	// (fresh directory each round, background checkpoints off so the row
	// prices the log append alone).
	httpOnce := func(name, walSync string) (hotpathRow, error) {
		cfg := server.Config{
			Algorithm: surge.CellCSPOT,
			Options: surge.Options{
				Width: qw, Height: qh, Window: w, Alpha: o.Alpha, Shards: shards,
			},
			TimePolicy: server.Clamp,
			BatchSize:  512,
			// This row tracks the ingest path itself across PRs; the cost
			// of continuous top-k maintenance is measured separately (and
			// against this same configuration) by the topkserve experiment.
			TopKReplayOnly: true,
		}
		var s *server.Server
		var err error
		if walSync != "" {
			dir, derr := os.MkdirTemp("", "surge-bench-wal-")
			if derr != nil {
				return hotpathRow{}, derr
			}
			defer os.RemoveAll(dir)
			sync, every, perr := wal.ParseSyncPolicy(walSync)
			if perr != nil {
				return hotpathRow{}, perr
			}
			s, err = server.NewDurable(cfg, server.DurableConfig{
				Dir: dir, Sync: sync, SyncEvery: every, CheckpointEvery: -1,
			})
		} else {
			s, err = server.New(cfg)
		}
		if err != nil {
			return hotpathRow{}, err
		}
		ts := httptest.NewServer(s.Handler())
		defer func() {
			ts.Close()
			s.Close()
		}()
		c := client.New(ts.URL)
		ctx := context.Background()
		// The ack histogram is process-wide; reset so this round's quantiles
		// describe this round only.
		ack := obs.Default.Duration(obs.MIngestAck, "")
		ack.Reset()
		row, err := measureHotpath(name, len(approxObjs), func() error {
			var wg sync.WaitGroup
			errs := make([]error, len(bodies))
			for g, body := range bodies {
				wg.Add(1)
				go func(g int, body []byte) {
					defer wg.Done()
					res, err := c.IngestStream(ctx, bytes.NewReader(body), client.NDJSON)
					if err == nil && res.Accepted == 0 {
						err = fmt.Errorf("ingester %d: nothing accepted", g)
					}
					errs[g] = err
				}(g, body)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					return err
				}
			}
			return nil
		})
		row.Shards = shards
		snap := ack.Snapshot()
		row.IngestAckP50Us = snap.Quantile(0.5) / 1e3
		row.IngestAckP99Us = snap.Quantile(0.99) / 1e3
		row.IngestAckP999Us = snap.Quantile(0.999) / 1e3
		return row, err
	}

	configs := []struct {
		name   string
		rounds int
		run    func() (hotpathRow, error)
	}{
		{"ccs-push", hotpathRounds, func() (hotpathRow, error) { return pushOnce("ccs-push", surge.CellCSPOT, exactObjs) }},
		{"gaps-push", hotpathRounds, func() (hotpathRow, error) { return pushOnce("gaps-push", surge.GridApprox, approxObjs) }},
		// The obs-on/obs-off pair feeds the overhead gate: the expected
		// signal (a few percent) sits near the noise floor of one round, so
		// the pair gets extra interleaved rounds, and its within-round order
		// alternates — ambient load that decays over the run (build residue,
		// page-cache warm-up) would otherwise always hit the first of the
		// pair harder and bias every ratio the same way.
		{"sharded", hotpathOverheadRounds, func() (hotpathRow, error) { return shardedOnce("sharded", true, 3) }},
		{"sharded-noobs", hotpathOverheadRounds, func() (hotpathRow, error) { return shardedOnce("sharded-noobs", false, 3) }},
		{"http-ingest", hotpathRounds, func() (hotpathRow, error) { return httpOnce("http-ingest", "") }},
		// Durable variants, one per WAL sync policy. The interval row is the
		// recommended production setting and feeds wal_overhead_pct; it runs
		// adjacent to plain http-ingest in every round so the pair shares
		// ambient load.
		{"http-ingest-wal-interval", hotpathRounds, func() (hotpathRow, error) { return httpOnce("http-ingest-wal-interval", "100ms") }},
		{"http-ingest-wal-always", hotpathRounds, func() (hotpathRow, error) { return httpOnce("http-ingest-wal-always", "always") }},
		{"http-ingest-wal-off", hotpathRounds, func() (hotpathRow, error) { return httpOnce("http-ingest-wal-off", "off") }},
	}
	maxRounds := 0
	for _, cfg := range configs {
		if cfg.rounds > maxRounds {
			maxRounds = cfg.rounds
		}
	}
	onIdx, offIdx := -1, -1
	for i, cfg := range configs {
		switch cfg.name {
		case "sharded":
			onIdx = i
		case "sharded-noobs":
			offIdx = i
		}
	}
	samples := make([][]hotpathRow, len(configs))
	for r := 0; r < maxRounds; r++ {
		order := make([]int, 0, len(configs))
		for i := range configs {
			order = append(order, i)
		}
		if r%2 == 1 && onIdx >= 0 && offIdx >= 0 {
			order[onIdx], order[offIdx] = order[offIdx], order[onIdx]
		}
		for _, i := range order {
			cfg := configs[i]
			if r >= cfg.rounds {
				continue
			}
			row, err := cfg.run()
			if err != nil {
				return err
			}
			samples[i] = append(samples[i], row)
		}
	}
	rows := make([]hotpathRow, len(configs))
	var onRows, offRows, httpRows, walRows []hotpathRow
	for i := range configs {
		rows[i] = fastestHotpath(samples[i])
		switch configs[i].name {
		case "sharded":
			onRows = samples[i]
		case "sharded-noobs":
			offRows = samples[i]
		case "http-ingest":
			httpRows = samples[i]
		case "http-ingest-wal-interval":
			walRows = samples[i]
		}
	}
	overhead := pairedOverheadPct(onRows, offRows)
	walOverhead := pairedOverheadPct(walRows, httpRows)

	t := NewTable(o.Out, fmt.Sprintf("Hotpath (Taxi, GOMAXPROCS=%d): ingest cost per object", runtime.GOMAXPROCS(0)),
		"Config", "Objects", "ns/obj", "allocs/obj", "B/obj", "kobj/s", "ack p99 (us)")
	for _, r := range rows {
		ack := "-"
		if r.IngestAckP99Us > 0 {
			ack = fmt.Sprintf("%.0f", r.IngestAckP99Us)
		}
		t.Row(r.Config, r.Objects,
			fmt.Sprintf("%.0f", r.NsPerObj),
			fmt.Sprintf("%.2f", r.AllocsPerObj),
			fmt.Sprintf("%.0f", r.BytesPerObj),
			fmt.Sprintf("%.1f", r.ObjectsPerSec/1e3),
			ack)
	}
	t.Flush()
	fmt.Fprintf(o.Out, "(observability overhead on sharded ingest: %.2f%%)\n", overhead)
	fmt.Fprintf(o.Out, "(WAL overhead on http ingest, interval sync: %.2f%%)\n", walOverhead)

	if err := o.writeJSONReport("BENCH_hotpath.json", hotpathReport{
		Experiment:     "hotpath",
		GoMaxProcs:     runtime.GOMAXPROCS(0),
		ObsOverheadPct: overhead,
		WALOverheadPct: walOverhead,
		Rows:           rows,
	}); err != nil {
		return err
	}
	if o.ObsOverheadMaxPct > 0 && overhead > o.ObsOverheadMaxPct {
		return fmt.Errorf("hotpath: observability overhead %.2f%% exceeds the %.2f%% budget (median paired sharded/sharded-noobs ratio over %d rounds)",
			overhead, o.ObsOverheadMaxPct, hotpathOverheadRounds)
	}
	return nil
}

// pairedOverheadPct estimates the relative per-object time cost of the
// onRows configuration over the offRows baseline from interleaved rounds.
// Each round's pair ran adjacent in time, so their ratio cancels the
// ambient load both saw; the median of the per-round ratios then discards
// the outlier rounds a shared runner produces, which a fastest-vs-fastest
// comparison cannot (the two minima come from different moments and their
// difference swings by more than the few-percent signal). Zero when either
// sample set is missing.
func pairedOverheadPct(onRows, offRows []hotpathRow) float64 {
	n := len(onRows)
	if len(offRows) < n {
		n = len(offRows)
	}
	if n == 0 {
		return 0
	}
	ratios := make([]float64, n)
	for i := 0; i < n; i++ {
		ratios[i] = onRows[i].NsPerObj / offRows[i].NsPerObj
	}
	sort.Float64s(ratios)
	var med float64
	if n%2 == 1 {
		med = ratios[n/2]
	} else {
		med = (ratios[n/2-1] + ratios[n/2]) / 2
	}
	return (med - 1) * 100
}

// hotpathRounds is how many interleaved times each configuration is fed; the
// reported row is the per-configuration fastest by ns/obj.
const hotpathRounds = 5

// hotpathOverheadRounds is the round count for the sharded obs-on/obs-off
// pair: the overhead gate takes the median of the per-round on/off ratios,
// and the median needs more samples than the throughput rows to push
// scheduler noise below the few-percent signal.
const hotpathOverheadRounds = 15

// fastestHotpath returns the row with the lowest ns/obj of rs — the
// least-interfered round on a shared runner.
func fastestHotpath(rs []hotpathRow) hotpathRow {
	best := rs[0]
	for _, r := range rs[1:] {
		if r.NsPerObj < best.NsPerObj {
			best = r
		}
	}
	return best
}

// measureHotpath times fn and attributes the process-wide heap traffic it
// caused to the fed objects. A GC runs first so leftover garbage from the
// previous configuration is not charged to this one.
func measureHotpath(name string, objects int, fn func() error) (hotpathRow, error) {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	if err := fn(); err != nil {
		return hotpathRow{}, err
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	n := float64(objects)
	return hotpathRow{
		Config:        name,
		Objects:       objects,
		Seconds:       elapsed.Seconds(),
		NsPerObj:      float64(elapsed.Nanoseconds()) / n,
		AllocsPerObj:  float64(m1.Mallocs-m0.Mallocs) / n,
		BytesPerObj:   float64(m1.TotalAlloc-m0.TotalAlloc) / n,
		ObjectsPerSec: n / elapsed.Seconds(),
	}, nil
}

// toSurgeObjects converts a generated core stream to the public object type.
func toSurgeObjects(objs []core.Object) []surge.Object {
	out := make([]surge.Object, len(objs))
	for i, ob := range objs {
		out[i] = surge.Object{X: ob.X, Y: ob.Y, Weight: ob.Weight, Time: ob.T}
	}
	return out
}

// ndjsonBodies splits objs round-robin into n pre-encoded NDJSON ingest
// bodies; each ingester's slice stays time-sorted, the interleaving is
// absorbed by the server's clamp policy.
func ndjsonBodies(objs []surge.Object, n int) ([][]byte, error) {
	parts := make([][]surge.Object, n)
	for i, ob := range objs {
		g := i % n
		parts[g] = append(parts[g], ob)
	}
	bodies := make([][]byte, n)
	for g, part := range parts {
		var buf bytes.Buffer
		if err := client.EncodeNDJSON(&buf, part); err != nil {
			return nil, err
		}
		bodies[g] = buf.Bytes()
	}
	return bodies, nil
}
