package bench

import (
	"fmt"
	"math/rand/v2"
	"time"

	"surge/roadnet"
)

// RoadNet benchmarks the road-network extension (the paper's future-work
// direction): per-object cost of the network-ball detector on a Manhattan
// grid city as the ball radius grows. The cost is dominated by the bounded
// Dijkstra, whose frontier grows quadratically with the radius — the
// network analogue of Figure 5's query-size sweep.
func RoadNet(o Options) error {
	city := roadnet.Grid(60, 60, 100)
	t := NewTable(o.Out, "Extension: road-network SURGE, time/object (us) vs ball radius",
		"Radius (m)", "time/object (us)", "ball size (approx vertices)")
	for _, radius := range []float64{100, 200, 400, 800} {
		det, err := roadnet.NewDetector(city, roadnet.Options{
			Radius: radius,
			Window: 600,
			Alpha:  0.5,
		})
		if err != nil {
			return err
		}
		rng := rand.New(rand.NewPCG(o.Seed, 11))
		tm := 0.0
		n := 20000
		start := time.Now()
		for i := 0; i < n; i++ {
			tm += rng.ExpFloat64() * 0.2
			if _, err := det.Push(roadnet.Object{
				X:      rng.Float64() * 5900,
				Y:      rng.Float64() * 5900,
				Weight: 1 + rng.Float64()*99,
				Time:   tm,
			}); err != nil {
				return err
			}
		}
		elapsed := time.Since(start)
		// Ball size on an r/spacing Manhattan grid: 2k^2+2k+1 with k = r/100.
		k := int(radius / 100)
		t.Row(fmt.Sprintf("%.0f", radius),
			fmt.Sprintf("%.2f", float64(elapsed.Nanoseconds())/1e3/float64(n)),
			2*k*k+2*k+1)
	}
	t.Flush()
	return nil
}
