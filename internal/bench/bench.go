// Package bench is the shared experiment harness behind cmd/surgebench and
// the root bench_test.go: it constructs engines by their paper names,
// replays generated streams through the window engine with continuous
// querying, and formats paper-style result tables.
//
// Measurement methodology follows Section VII: the stream is replayed
// through the dual sliding windows, every window-transition event is
// processed and the bursty region re-queried ("continuous detection"), and
// the average per-object processing time is reported. As in the paper,
// timing starts once the system is stable — after the first object has
// expired from the past window.
package bench

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"surge/internal/ag2"
	"surge/internal/cellcspot"
	"surge/internal/core"
	"surge/internal/gapsurge"
	"surge/internal/topk"
	"surge/internal/window"
)

// NewEngine constructs a single-region engine by its paper name:
// CCS, B-CCS, Base, aG2, GAPS, MGAPS, Oracle.
func NewEngine(name string, cfg core.Config) (core.Engine, error) {
	switch name {
	case "CCS":
		return cellcspot.New(cfg, cellcspot.ModeCCS)
	case "B-CCS":
		return cellcspot.New(cfg, cellcspot.ModeStatic)
	case "Base":
		return cellcspot.New(cfg, cellcspot.ModeBase)
	case "aG2":
		return ag2.New(cfg, 10)
	case "GAPS":
		return gapsurge.New(cfg, false)
	case "MGAPS":
		return gapsurge.New(cfg, true)
	case "Oracle":
		return topk.NewOracle(cfg)
	default:
		return nil, fmt.Errorf("bench: unknown engine %q", name)
	}
}

// NewTopKEngine constructs a top-k engine by name: kCCS, kGAPS, kMGAPS,
// Naive.
func NewTopKEngine(name string, cfg core.Config, k int) (core.TopKEngine, error) {
	switch name {
	case "kCCS":
		return topk.NewKCCS(cfg, k)
	case "kGAPS":
		return gapsurge.NewTopK(cfg, false, k)
	case "kMGAPS":
		return gapsurge.NewTopK(cfg, true, k)
	case "Naive":
		return topk.NewNaive(cfg, k)
	default:
		return nil, fmt.Errorf("bench: unknown top-k engine %q", name)
	}
}

// Measurement is the outcome of a replay.
type Measurement struct {
	Objects   int           // objects fed after warm-up
	Events    int           // window events processed after warm-up
	Elapsed   time.Duration // wall time spent in Process+Best after warm-up
	Stats     core.Stats
	StreamSec float64 // stream-time span processed after warm-up
}

// PerObject returns the average processing time per arriving object.
func (m Measurement) PerObject() time.Duration {
	if m.Objects == 0 {
		return 0
	}
	return m.Elapsed / time.Duration(m.Objects)
}

// MicrosPerObject returns the per-object cost in microseconds, the unit of
// the paper's runtime figures.
func (m Measurement) MicrosPerObject() float64 {
	if m.Objects == 0 {
		return 0
	}
	return float64(m.Elapsed.Nanoseconds()) / 1e3 / float64(m.Objects)
}

// PerStreamHour returns the wall-clock seconds spent per hour of stream
// time — the paper's Figure 8 metric th.
func (m Measurement) PerStreamHour() float64 {
	if m.StreamSec <= 0 {
		return 0
	}
	return m.Elapsed.Seconds() / (m.StreamSec / 3600)
}

type statser interface{ Stats() core.Stats }

// Replay feeds objs through a window engine into eng, querying Best after
// every event. Timing excludes the warm-up prefix (until the first Expired
// event) so the windows are full, matching the paper's setup; during warm-up
// only Process runs (no querying).
func Replay(cfg core.Config, eng core.Engine, objs []core.Object) Measurement {
	return ReplayLimited(cfg, eng, objs, 0)
}

// ReplayLimited is Replay but stops after measuring maxMeasured objects
// past warm-up (0 = unlimited). It keeps slow baselines affordable on long
// parameter sweeps without biasing the per-object average.
func ReplayLimited(cfg core.Config, eng core.Engine, objs []core.Object, maxMeasured int) Measurement {
	return replay(cfg, objs, maxMeasured, eng.Process, func() { eng.Best() }, eng)
}

// ReplayTopK is Replay for top-k engines.
func ReplayTopK(cfg core.Config, eng core.TopKEngine, objs []core.Object, maxMeasured int) Measurement {
	return replay(cfg, objs, maxMeasured, eng.Process, func() { eng.BestK() }, eng)
}

func replay(cfg core.Config, objs []core.Object, maxMeasured int, process func(core.Event), query func(), eng any) Measurement {
	win, err := window.New(cfg.WC, cfg.WP)
	if err != nil {
		panic(err)
	}
	var m Measurement
	warm := true
	var warmStart float64
	started := false
	var t0 time.Time
	wrapped := func(ev core.Event) {
		if warm && ev.Kind == core.Expired {
			warm = false
		}
		process(ev)
		if !warm {
			m.Events++
			query()
		}
	}
	for _, o := range objs {
		if warm {
			// Outside the timed section: process but do not account.
			if _, err := win.Push(o, wrapped); err != nil {
				panic(err)
			}
			warmStart = o.T
			continue
		}
		if !started {
			started = true
			t0 = time.Now()
		}
		if _, err := win.Push(o, wrapped); err != nil {
			panic(err)
		}
		m.Objects++
		if maxMeasured > 0 && m.Objects >= maxMeasured {
			break
		}
	}
	if started {
		m.Elapsed = time.Since(t0)
		m.StreamSec = win.Now() - warmStart
	}
	if s, ok := eng.(statser); ok {
		m.Stats = s.Stats()
	}
	return m
}

// Table is a minimal aligned-column table printer.
type Table struct {
	w     *tabwriter.Writer
	title string
}

// NewTable starts a table with a title and header row.
func NewTable(out io.Writer, title string, headers ...string) *Table {
	t := &Table{w: tabwriter.NewWriter(out, 2, 4, 2, ' ', 0), title: title}
	fmt.Fprintf(t.w, "\n== %s ==\n", title)
	t.Row(headersToAny(headers)...)
	return t
}

func headersToAny(h []string) []any {
	out := make([]any, len(h))
	for i, s := range h {
		out[i] = s
	}
	return out
}

// Row appends one row.
func (t *Table) Row(cols ...any) {
	for i, c := range cols {
		if i > 0 {
			fmt.Fprint(t.w, "\t")
		}
		fmt.Fprintf(t.w, "%v", c)
	}
	fmt.Fprintln(t.w)
}

// Flush renders the table.
func (t *Table) Flush() { t.w.Flush() }
