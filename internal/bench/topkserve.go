package bench

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"runtime"
	"sort"
	"sync"
	"time"

	"surge"
	"surge/client"
	"surge/internal/server"
)

// topkIngestRow is one ingest measurement of the topkserve experiment: the
// full HTTP ingest path with the continuous top-k maintenance on or off.
type topkIngestRow struct {
	Config        string  `json:"config"` // "replay-only" (baseline) or "continuous"
	Objects       int     `json:"objects"`
	Seconds       float64 `json:"seconds"`
	ObjectsPerSec float64 `json:"objects_per_sec"`
}

// topkQueryRow is one /v1/topk latency measurement.
type topkQueryRow struct {
	Mode      string  `json:"mode"` // "continuous" or "replay"
	K         int     `json:"k"`
	LiveObjs  int     `json:"live_objects"`
	Queries   int     `json:"queries"`
	P50Micros float64 `json:"p50_us"`
	P99Micros float64 `json:"p99_us"`
}

// topkReport is the BENCH_topk.json document. QuerySpeedupP50 is the
// replay-to-continuous ratio of median query latency; IngestOverheadPct is
// the throughput cost of maintaining the top-k answer on the ingest path
// ((baseline - continuous) / baseline * 100, medians of interleaved runs).
type topkReport struct {
	Experiment        string          `json:"experiment"`
	GoMaxProcs        int             `json:"gomaxprocs"`
	K                 int             `json:"k"`
	Shards            int             `json:"shards"` // maintenance rides the shard workers
	Ingest            []topkIngestRow `json:"ingest"`
	Query             []topkQueryRow  `json:"query"`
	QuerySpeedupP50   float64         `json:"query_speedup_p50"`
	IngestOverheadPct float64         `json:"ingest_overhead_pct"`
}

// TopKServe measures continuous top-k serving against the checkpoint-replay
// path it replaces:
//
//   - /v1/topk query latency (p50/p99 over sequential queries) in continuous
//     mode — one atomic snapshot load — versus ?mode=replay, which
//     checkpoints the live windows and replays them into a fresh detector
//     per query;
//   - HTTP ingest throughput (4 concurrent NDJSON ingesters, the serve
//     experiment's scenario) with maintenance on versus off, interleaved
//     runs, medians — the objs/sec cost of keeping the answer current.
//
// Results are written to BENCH_topk.json via -json-dir.
func TopKServe(o Options) error {
	d := o.dataset("Taxi")
	w := defaultWindow("Taxi")
	k := o.K
	objs := toSurgeObjects(genFor(d, w, o.MaxApprox))
	bodies, err := ndjsonBodies(objs, serveIngesters)
	if err != nil {
		return err
	}

	// Ingest throughput, medians of interleaved runs so machine noise hits
	// both configurations equally.
	const rounds = 3
	base := make([]topkIngestRow, 0, rounds)
	cont := make([]topkIngestRow, 0, rounds)
	for r := 0; r < rounds; r++ {
		row, err := topkIngestOnce(o, d.QueryWidth(), d.QueryHeight(), w, k, true, bodies, len(objs))
		if err != nil {
			return err
		}
		base = append(base, row)
		row, err = topkIngestOnce(o, d.QueryWidth(), d.QueryHeight(), w, k, false, bodies, len(objs))
		if err != nil {
			return err
		}
		cont = append(cont, row)
	}
	ingest := []topkIngestRow{medianIngest(base), medianIngest(cont)}
	overhead := (ingest[0].ObjectsPerSec - ingest[1].ObjectsPerSec) / ingest[0].ObjectsPerSec * 100

	// Query latency on a continuous server holding the full stream's live
	// windows; the replay path is exercised through the same server's
	// ?mode=replay escape hatch, so both paths answer over identical state.
	opt := topkServeOptions(o, d.QueryWidth(), d.QueryHeight(), w)
	s, err := server.New(server.Config{
		Algorithm:  surge.CellCSPOT,
		Options:    opt,
		TimePolicy: server.Clamp,
		BatchSize:  512,
		TopK:       k,
	})
	if err != nil {
		return err
	}
	ts := httptest.NewServer(s.Handler())
	c := client.New(ts.URL)
	ctx := context.Background()
	if err := topkIngestBodies(ctx, c, bodies); err != nil {
		ts.Close()
		s.Close()
		return err
	}
	st, err := c.Best(ctx)
	if err != nil {
		ts.Close()
		s.Close()
		return err
	}
	contQ, err := measureTopKQueries(ctx, c, k, "continuous", 2000, st.Live)
	if err == nil {
		// Sanity: the fast path must actually serve these.
		var tk *client.TopK
		if tk, err = c.TopK(ctx, k); err == nil && !tk.Continuous {
			err = fmt.Errorf("topkserve: continuous query served by replay")
		}
	}
	if err != nil {
		ts.Close()
		s.Close()
		return err
	}
	replayQ, err := measureTopKQueries(ctx, c, k, "replay", 200, st.Live)
	ts.Close()
	s.Close()
	if err != nil {
		return err
	}
	speedup := replayQ.P50Micros / contQ.P50Micros

	t := NewTable(o.Out, fmt.Sprintf("TopK serve (Taxi, GOMAXPROCS=%d, k=%d): /v1/topk latency and ingest overhead",
		runtime.GOMAXPROCS(0), k),
		"Row", "Value")
	t.Row("query p50 continuous (us)", fmt.Sprintf("%.1f", contQ.P50Micros))
	t.Row("query p99 continuous (us)", fmt.Sprintf("%.1f", contQ.P99Micros))
	t.Row("query p50 replay (us)", fmt.Sprintf("%.1f", replayQ.P50Micros))
	t.Row("query p99 replay (us)", fmt.Sprintf("%.1f", replayQ.P99Micros))
	t.Row("query speedup (p50)", fmt.Sprintf("%.1fx", speedup))
	t.Row("ingest replay-only (kobj/s)", fmt.Sprintf("%.1f", ingest[0].ObjectsPerSec/1e3))
	t.Row("ingest continuous (kobj/s)", fmt.Sprintf("%.1f", ingest[1].ObjectsPerSec/1e3))
	t.Row("ingest overhead (%)", fmt.Sprintf("%.1f", overhead))
	t.Flush()

	return o.writeJSONReport("BENCH_topk.json", topkReport{
		Experiment:        "topkserve",
		GoMaxProcs:        runtime.GOMAXPROCS(0),
		K:                 k,
		Shards:            opt.Shards,
		Ingest:            ingest,
		Query:             []topkQueryRow{contQ, replayQ},
		QuerySpeedupP50:   speedup,
		IngestOverheadPct: overhead,
	})
}

func topkServeOptions(o Options, qw, qh, window float64) surge.Options {
	shards := runtime.NumCPU()
	if shards < 2 {
		shards = 2
	}
	return surge.Options{Width: qw, Height: qh, Window: window, Alpha: o.Alpha, Shards: shards}
}

// topkIngestOnce stands a server up and fires the pre-encoded NDJSON bodies
// concurrently, with the continuous top-k maintenance on or off.
func topkIngestOnce(o Options, qw, qh, window float64, k int, replayOnly bool, bodies [][]byte, total int) (topkIngestRow, error) {
	s, err := server.New(server.Config{
		Algorithm:      surge.CellCSPOT,
		Options:        topkServeOptions(o, qw, qh, window),
		TimePolicy:     server.Clamp,
		BatchSize:      512,
		TopK:           k,
		TopKReplayOnly: replayOnly,
	})
	if err != nil {
		return topkIngestRow{}, err
	}
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()
	c := client.New(ts.URL)
	start := time.Now()
	if err := topkIngestBodies(context.Background(), c, bodies); err != nil {
		return topkIngestRow{}, err
	}
	elapsed := time.Since(start)
	name := "continuous"
	if replayOnly {
		name = "replay-only"
	}
	return topkIngestRow{
		Config:        name,
		Objects:       total,
		Seconds:       elapsed.Seconds(),
		ObjectsPerSec: float64(total) / elapsed.Seconds(),
	}, nil
}

// topkIngestBodies streams the bodies through concurrent ingesters.
func topkIngestBodies(ctx context.Context, c *client.Client, bodies [][]byte) error {
	var wg sync.WaitGroup
	errs := make([]error, len(bodies))
	for g, body := range bodies {
		wg.Add(1)
		go func(g int, body []byte) {
			defer wg.Done()
			res, err := c.IngestStream(ctx, bytes.NewReader(body), client.NDJSON)
			if err == nil && res.Accepted == 0 {
				err = fmt.Errorf("ingester %d: nothing accepted", g)
			}
			errs[g] = err
		}(g, body)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// measureTopKQueries times n sequential /v1/topk queries in the given mode
// and reports percentiles.
func measureTopKQueries(ctx context.Context, c *client.Client, k int, mode string, n, live int) (topkQueryRow, error) {
	lats := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		start := time.Now()
		tk, err := c.TopKMode(ctx, k, mode)
		if err != nil {
			return topkQueryRow{}, fmt.Errorf("topkserve: %s query %d: %w", mode, i, err)
		}
		lats = append(lats, float64(time.Since(start).Microseconds()))
		if mode == "replay" && tk.Continuous {
			return topkQueryRow{}, fmt.Errorf("topkserve: replay query served from the snapshot")
		}
	}
	sort.Float64s(lats)
	return topkQueryRow{
		Mode:      mode,
		K:         k,
		LiveObjs:  live,
		Queries:   n,
		P50Micros: lats[len(lats)/2],
		P99Micros: lats[len(lats)*99/100],
	}, nil
}

// medianIngest returns the row with the median throughput of rs.
func medianIngest(rs []topkIngestRow) topkIngestRow {
	sorted := append([]topkIngestRow(nil), rs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ObjectsPerSec < sorted[j].ObjectsPerSec })
	return sorted[len(sorted)/2]
}
