package bench

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"runtime"
	"sort"
	"sync"
	"time"

	"surge"
	"surge/client"
	"surge/internal/server"
)

// topkIngestRow is one ingest measurement of the topkserve experiment: the
// full HTTP ingest path with the continuous top-k maintenance on or off.
type topkIngestRow struct {
	Config        string  `json:"config"` // "replay-only" (baseline) or "continuous"
	Objects       int     `json:"objects"`
	Seconds       float64 `json:"seconds"`
	ObjectsPerSec float64 `json:"objects_per_sec"`
}

// topkQueryRow is one /v1/topk latency measurement.
type topkQueryRow struct {
	Mode      string  `json:"mode"` // "continuous" or "replay"
	K         int     `json:"k"`
	LiveObjs  int     `json:"live_objects"`
	Queries   int     `json:"queries"`
	P50Micros float64 `json:"p50_us"`
	P99Micros float64 `json:"p99_us"`
}

// topkReport is the BENCH_topk.json document. QuerySpeedupP50 is the
// replay-to-continuous ratio of median query latency.
//
// IngestOverheadPct is the throughput cost of continuous top-k serving
// measured against the layout that previously provided the same serving
// surface. Before serve-from-chain, a server with -topk ran the chain on
// top of the single-region engines (the dual-engine layout), and this field
// recorded the chain's cost relative to the engine-only baseline — the
// committed history up to the serve-from-chain change reads ~30%+. Now the
// chain replaces the engines at attach, so the equal-functionality baseline
// is that pre-change dual-engine layout, measured in-run as "best-engines":
// the field is (dual - continuous) / dual * 100, and a negative value means
// the unified chain layout ingests faster than the layout it replaced.
// ReplayIngestOverheadPct keeps the old axis — continuous (chain-only)
// versus a server with no top-k at all ((replay - continuous) / replay *
// 100) — which now prices maintained top-k against not having it.
//
// The bestserve rows compare the two /v1/best serving layouts under
// maintained top-k: "best-chain" (default: rank-1 of the maintained chain,
// no single-region engines) versus "best-engines" (legacy dual-engine
// layout, Config.BestFromEngines). BestServeGainPct is the ingest
// throughput gained by dropping the engines ((chain - dual) / dual * 100).
type topkReport struct {
	Experiment              string          `json:"experiment"`
	GoMaxProcs              int             `json:"gomaxprocs"`
	K                       int             `json:"k"`
	Shards                  int             `json:"shards"` // maintenance rides the shard workers
	Ingest                  []topkIngestRow `json:"ingest"`
	Query                   []topkQueryRow  `json:"query"`
	QuerySpeedupP50         float64         `json:"query_speedup_p50"`
	IngestOverheadPct       float64         `json:"ingest_overhead_pct"`
	ReplayIngestOverheadPct float64         `json:"replay_ingest_overhead_pct"`
	BestIngest              []topkIngestRow `json:"bestserve_ingest"`
	BestQuery               []topkQueryRow  `json:"bestserve_query"` // /v1/best p50/p99 per layout
	BestServeGainPct        float64         `json:"bestserve_ingest_gain_pct"`
}

// TopKServe measures continuous top-k serving against the checkpoint-replay
// path it replaces:
//
//   - /v1/topk query latency (p50/p99 over sequential queries) in continuous
//     mode — one atomic snapshot load — versus ?mode=replay, which
//     checkpoints the live windows and replays them into a fresh detector
//     per query;
//   - HTTP ingest throughput (4 concurrent NDJSON ingesters, the serve
//     experiment's scenario) with maintenance on versus off, interleaved
//     runs, medians — the objs/sec cost of keeping the answer current.
//
// Results are written to BENCH_topk.json via -json-dir.
func TopKServe(o Options) error {
	d := o.dataset("Taxi")
	w := defaultWindow("Taxi")
	k := o.K
	objs := toSurgeObjects(genFor(d, w, o.MaxApprox))
	bodies, err := ndjsonBodies(objs, serveIngesters)
	if err != nil {
		return err
	}

	// Ingest throughput, medians of interleaved runs so machine noise hits
	// every configuration equally.
	const rounds = 5
	base := make([]topkIngestRow, 0, rounds)
	cont := make([]topkIngestRow, 0, rounds)
	chain := make([]topkIngestRow, 0, rounds)
	dual := make([]topkIngestRow, 0, rounds)
	for r := 0; r < rounds; r++ {
		row, err := topkIngestOnce(o, d.QueryWidth(), d.QueryHeight(), w, k, true, false, bodies, len(objs))
		if err != nil {
			return err
		}
		base = append(base, row)
		row, err = topkIngestOnce(o, d.QueryWidth(), d.QueryHeight(), w, k, false, false, bodies, len(objs))
		if err != nil {
			return err
		}
		cont = append(cont, row)
		chain = append(chain, row.renamed("best-chain")) // same layout, same run
		row, err = topkIngestOnce(o, d.QueryWidth(), d.QueryHeight(), w, k, false, true, bodies, len(objs))
		if err != nil {
			return err
		}
		dual = append(dual, row.renamed("best-engines"))
	}
	ingest := []topkIngestRow{medianIngest(base), medianIngest(cont)}
	replayOverhead := (ingest[0].ObjectsPerSec - ingest[1].ObjectsPerSec) / ingest[0].ObjectsPerSec * 100
	bestIngest := []topkIngestRow{medianIngest(chain), medianIngest(dual)}
	overhead := (bestIngest[1].ObjectsPerSec - bestIngest[0].ObjectsPerSec) / bestIngest[1].ObjectsPerSec * 100
	bestGain := (bestIngest[0].ObjectsPerSec - bestIngest[1].ObjectsPerSec) / bestIngest[1].ObjectsPerSec * 100

	// Query latency on a continuous server holding the full stream's live
	// windows; the replay path is exercised through the same server's
	// ?mode=replay escape hatch, so both paths answer over identical state.
	opt := topkServeOptions(o, d.QueryWidth(), d.QueryHeight(), w)
	s, err := server.New(server.Config{
		Algorithm:  surge.CellCSPOT,
		Options:    opt,
		TimePolicy: server.Clamp,
		BatchSize:  512,
		TopK:       k,
	})
	if err != nil {
		return err
	}
	ts := httptest.NewServer(s.Handler())
	c := client.New(ts.URL)
	ctx := context.Background()
	if err := topkIngestBodies(ctx, c, bodies); err != nil {
		ts.Close()
		s.Close()
		return err
	}
	st, err := c.Best(ctx)
	if err != nil {
		ts.Close()
		s.Close()
		return err
	}
	contQ, err := measureTopKQueries(ctx, c, k, "continuous", 2000, st.Live)
	if err == nil {
		// Sanity: the fast path must actually serve these.
		var tk *client.TopK
		if tk, err = c.TopK(ctx, k); err == nil && !tk.Continuous {
			err = fmt.Errorf("topkserve: continuous query served by replay")
		}
	}
	if err != nil {
		ts.Close()
		s.Close()
		return err
	}
	replayQ, err := measureTopKQueries(ctx, c, k, "replay", 200, st.Live)
	var bestChainQ topkQueryRow
	if err == nil {
		// The long-lived server serves /v1/best from the chain (the default
		// layout), so it doubles as the best-chain latency probe.
		bestChainQ, err = measureBestQueries(ctx, c, "best-chain", 2000, st.Live)
	}
	ts.Close()
	s.Close()
	if err != nil {
		return err
	}
	speedup := replayQ.P50Micros / contQ.P50Micros

	// The legacy layout's /v1/best latency needs a dual-engine server over
	// the same stream.
	sDual, err := server.New(server.Config{
		Algorithm:       surge.CellCSPOT,
		Options:         opt,
		TimePolicy:      server.Clamp,
		BatchSize:       512,
		TopK:            k,
		BestFromEngines: true,
	})
	if err != nil {
		return err
	}
	tsDual := httptest.NewServer(sDual.Handler())
	cDual := client.New(tsDual.URL)
	var bestEngQ topkQueryRow
	if err = topkIngestBodies(ctx, cDual, bodies); err == nil {
		bestEngQ, err = measureBestQueries(ctx, cDual, "best-engines", 2000, st.Live)
	}
	tsDual.Close()
	sDual.Close()
	if err != nil {
		return err
	}

	t := NewTable(o.Out, fmt.Sprintf("TopK serve (Taxi, GOMAXPROCS=%d, k=%d): /v1/topk latency and ingest overhead",
		runtime.GOMAXPROCS(0), k),
		"Row", "Value")
	t.Row("query p50 continuous (us)", fmt.Sprintf("%.1f", contQ.P50Micros))
	t.Row("query p99 continuous (us)", fmt.Sprintf("%.1f", contQ.P99Micros))
	t.Row("query p50 replay (us)", fmt.Sprintf("%.1f", replayQ.P50Micros))
	t.Row("query p99 replay (us)", fmt.Sprintf("%.1f", replayQ.P99Micros))
	t.Row("query speedup (p50)", fmt.Sprintf("%.1fx", speedup))
	t.Row("ingest replay-only (kobj/s)", fmt.Sprintf("%.1f", ingest[0].ObjectsPerSec/1e3))
	t.Row("ingest continuous (kobj/s)", fmt.Sprintf("%.1f", ingest[1].ObjectsPerSec/1e3))
	t.Row("ingest overhead vs dual-engine (%)", fmt.Sprintf("%.1f", overhead))
	t.Row("ingest overhead vs replay-only (%)", fmt.Sprintf("%.1f", replayOverhead))
	t.Row("best p50 chain-served (us)", fmt.Sprintf("%.1f", bestChainQ.P50Micros))
	t.Row("best p99 chain-served (us)", fmt.Sprintf("%.1f", bestChainQ.P99Micros))
	t.Row("best p50 dual-engine (us)", fmt.Sprintf("%.1f", bestEngQ.P50Micros))
	t.Row("best p99 dual-engine (us)", fmt.Sprintf("%.1f", bestEngQ.P99Micros))
	t.Row("ingest chain-served (kobj/s)", fmt.Sprintf("%.1f", bestIngest[0].ObjectsPerSec/1e3))
	t.Row("ingest dual-engine (kobj/s)", fmt.Sprintf("%.1f", bestIngest[1].ObjectsPerSec/1e3))
	t.Row("bestserve ingest gain (%)", fmt.Sprintf("%.1f", bestGain))
	t.Flush()

	return o.writeJSONReport("BENCH_topk.json", topkReport{
		Experiment:              "topkserve",
		GoMaxProcs:              runtime.GOMAXPROCS(0),
		K:                       k,
		Shards:                  opt.Shards,
		Ingest:                  ingest,
		Query:                   []topkQueryRow{contQ, replayQ},
		QuerySpeedupP50:         speedup,
		IngestOverheadPct:       overhead,
		ReplayIngestOverheadPct: replayOverhead,
		BestIngest:              bestIngest,
		BestQuery:               []topkQueryRow{bestChainQ, bestEngQ},
		BestServeGainPct:        bestGain,
	})
}

func topkServeOptions(o Options, qw, qh, window float64) surge.Options {
	shards := runtime.NumCPU()
	if shards < 2 {
		shards = 2
	}
	return surge.Options{Width: qw, Height: qh, Window: window, Alpha: o.Alpha, Shards: shards}
}

// renamed relabels an ingest row for reuse under another comparison.
func (r topkIngestRow) renamed(config string) topkIngestRow {
	r.Config = config
	return r
}

// topkIngestOnce stands a server up and fires the pre-encoded NDJSON bodies
// concurrently, with the continuous top-k maintenance on or off and —
// when maintenance is on — with /v1/best served from the chain (default)
// or from the legacy dual-engine layout (dualEngine).
func topkIngestOnce(o Options, qw, qh, window float64, k int, replayOnly, dualEngine bool, bodies [][]byte, total int) (topkIngestRow, error) {
	s, err := server.New(server.Config{
		Algorithm:       surge.CellCSPOT,
		Options:         topkServeOptions(o, qw, qh, window),
		TimePolicy:      server.Clamp,
		BatchSize:       512,
		TopK:            k,
		TopKReplayOnly:  replayOnly,
		BestFromEngines: dualEngine,
	})
	if err != nil {
		return topkIngestRow{}, err
	}
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()
	c := client.New(ts.URL)
	start := time.Now()
	if err := topkIngestBodies(context.Background(), c, bodies); err != nil {
		return topkIngestRow{}, err
	}
	elapsed := time.Since(start)
	name := "continuous"
	if replayOnly {
		name = "replay-only"
	}
	return topkIngestRow{
		Config:        name,
		Objects:       total,
		Seconds:       elapsed.Seconds(),
		ObjectsPerSec: float64(total) / elapsed.Seconds(),
	}, nil
}

// topkIngestBodies streams the bodies through concurrent ingesters.
func topkIngestBodies(ctx context.Context, c *client.Client, bodies [][]byte) error {
	var wg sync.WaitGroup
	errs := make([]error, len(bodies))
	for g, body := range bodies {
		wg.Add(1)
		go func(g int, body []byte) {
			defer wg.Done()
			res, err := c.IngestStream(ctx, bytes.NewReader(body), client.NDJSON)
			if err == nil && res.Accepted == 0 {
				err = fmt.Errorf("ingester %d: nothing accepted", g)
			}
			errs[g] = err
		}(g, body)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// measureBestQueries times n sequential /v1/best queries and reports
// percentiles; the Mode labels which serving layout answered.
func measureBestQueries(ctx context.Context, c *client.Client, label string, n, live int) (topkQueryRow, error) {
	lats := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		start := time.Now()
		st, err := c.Best(ctx)
		if err != nil {
			return topkQueryRow{}, fmt.Errorf("topkserve: %s query %d: %w", label, i, err)
		}
		lats = append(lats, float64(time.Since(start).Microseconds()))
		if i == 0 && !st.Result.Found {
			return topkQueryRow{}, fmt.Errorf("topkserve: %s: no region found over the bench stream", label)
		}
	}
	sort.Float64s(lats)
	return topkQueryRow{
		Mode:      label,
		K:         1,
		LiveObjs:  live,
		Queries:   n,
		P50Micros: lats[len(lats)/2],
		P99Micros: lats[len(lats)*99/100],
	}, nil
}

// measureTopKQueries times n sequential /v1/topk queries in the given mode
// and reports percentiles.
func measureTopKQueries(ctx context.Context, c *client.Client, k int, mode string, n, live int) (topkQueryRow, error) {
	lats := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		start := time.Now()
		tk, err := c.TopKMode(ctx, k, mode)
		if err != nil {
			return topkQueryRow{}, fmt.Errorf("topkserve: %s query %d: %w", mode, i, err)
		}
		lats = append(lats, float64(time.Since(start).Microseconds()))
		if mode == "replay" && tk.Continuous {
			return topkQueryRow{}, fmt.Errorf("topkserve: replay query served from the snapshot")
		}
	}
	sort.Float64s(lats)
	return topkQueryRow{
		Mode:      mode,
		K:         k,
		LiveObjs:  live,
		Queries:   n,
		P50Micros: lats[len(lats)/2],
		P99Micros: lats[len(lats)*99/100],
	}, nil
}

// medianIngest returns the row with the median throughput of rs.
func medianIngest(rs []topkIngestRow) topkIngestRow {
	sorted := append([]topkIngestRow(nil), rs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ObjectsPerSec < sorted[j].ObjectsPerSec })
	return sorted[len(sorted)/2]
}
