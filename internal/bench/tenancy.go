package bench

import (
	"context"
	"fmt"
	"net/http/httptest"
	"runtime"
	"time"

	"surge"
	"surge/client"
	"surge/internal/server"
)

// tenancyRow is one ingest measurement of the tenancy experiment: the full
// HTTP ingest path fanning each batch out to a registry of Tenants queries.
type tenancyRow struct {
	Tenants       int     `json:"tenants"`
	Mode          string  `json:"mode"` // "shared" (identical configs) or "unshared" (distinct cell sizes)
	EngineSlots   int     `json:"engine_slots"`
	Objects       int     `json:"objects"`
	Seconds       float64 `json:"seconds"`
	ObjectsPerSec float64 `json:"objects_per_sec"`
}

// tenancyReport is the BENCH_tenancy.json document. TenancyScalePct is the
// headline multi-tenancy claim: the throughput of 64 identically-configured
// queries as a percentage of a single query's throughput. Shared tenants
// deduplicate onto one engine slot, so this should stay near 100 — the
// shared ingest plane (parse, WAL, admission, fan-out bookkeeping) is paid
// once per chunk regardless of the registry size. UnsharedScalePct is the
// honest contrast: 64 distinct cell sizes really do run 64 engines, so it
// falls roughly with 1/tenants and bounds what configuration diversity
// costs.
type tenancyReport struct {
	Experiment       string       `json:"experiment"`
	GoMaxProcs       int          `json:"gomaxprocs"`
	Shards           int          `json:"shards"`
	Rows             []tenancyRow `json:"rows"`
	TenancyScalePct  float64      `json:"tenancy_scale_pct"`
	UnsharedScalePct float64      `json:"unshared_scale_pct"`
}

// tenancyCounts is the tenants axis of the experiment.
var tenancyCounts = []int{1, 8, 64}

// Tenancy measures multi-query ingest throughput against the registry size:
// the same NDJSON stream is pushed through servers hosting 1, 8 and 64
// queries, once with every query identical to "default" (they share one
// engine slot, exercising the shared-plane dedup) and once with per-query
// cell sizes (every query runs its own engine, the worst case). Medians of
// interleaved rounds; results go to BENCH_tenancy.json via -json-dir.
func Tenancy(o Options) error {
	d := o.dataset("Taxi")
	w := defaultWindow("Taxi")
	objs := toSurgeObjects(genFor(d, w, o.MaxApprox))
	bodies, err := ndjsonBodies(objs, serveIngesters)
	if err != nil {
		return err
	}

	const rounds = 3
	type cell struct {
		tenants int
		shared  bool
	}
	var cells []cell
	for _, n := range tenancyCounts {
		cells = append(cells, cell{n, true})
		if n > 1 {
			cells = append(cells, cell{n, false})
		}
	}
	runs := make(map[cell][]tenancyRow, len(cells))
	for r := 0; r < rounds; r++ {
		for _, cl := range cells {
			row, err := tenancyIngestOnce(o, d.QueryWidth(), d.QueryHeight(), w, cl.tenants, cl.shared, bodies, len(objs))
			if err != nil {
				return err
			}
			runs[cl] = append(runs[cl], row)
		}
	}
	var rows []tenancyRow
	for _, cl := range cells {
		rows = append(rows, medianTenancy(runs[cl]))
	}
	thr := func(tenants int, shared bool) float64 {
		for _, row := range rows {
			if row.Tenants == tenants && (row.Mode == "shared") == shared {
				return row.ObjectsPerSec
			}
		}
		return 0
	}
	maxTenants := tenancyCounts[len(tenancyCounts)-1]
	scale := thr(maxTenants, true) / thr(1, true) * 100
	unsharedScale := thr(maxTenants, false) / thr(1, true) * 100

	t := NewTable(o.Out, fmt.Sprintf("Tenancy (Taxi, GOMAXPROCS=%d): ingest throughput vs registry size",
		runtime.GOMAXPROCS(0)),
		"Tenants", "Mode", "Engine slots", "kobj/s")
	for _, row := range rows {
		t.Row(row.Tenants, row.Mode, row.EngineSlots, fmt.Sprintf("%.1f", row.ObjectsPerSec/1e3))
	}
	t.Row("scale", fmt.Sprintf("shared x%d", maxTenants), "", fmt.Sprintf("%.1f%%", scale))
	t.Row("scale", fmt.Sprintf("unshared x%d", maxTenants), "", fmt.Sprintf("%.1f%%", unsharedScale))
	t.Flush()

	return o.writeJSONReport("BENCH_tenancy.json", tenancyReport{
		Experiment:       "tenancy",
		GoMaxProcs:       runtime.GOMAXPROCS(0),
		Shards:           1,
		Rows:             rows,
		TenancyScalePct:  scale,
		UnsharedScalePct: unsharedScale,
	})
}

// tenancyIngestOnce stands a server up with tenants-1 named queries beside
// "default" and fires the pre-encoded NDJSON bodies concurrently. Shared
// registries declare every query identical to the default (one engine slot
// serves them all); unshared ones scale each query's cells so every query
// owns an engine.
func tenancyIngestOnce(o Options, qw, qh, window float64, tenants int, shared bool, bodies [][]byte, total int) (tenancyRow, error) {
	var queries []client.QueryConfig
	for i := 1; i < tenants; i++ {
		qc := client.QueryConfig{ID: fmt.Sprintf("q%03d", i)}
		if !shared {
			// A distinct cell size per query defeats slot sharing.
			qc.Width = qw * (1 + float64(i)/float64(tenants))
		}
		queries = append(queries, qc)
	}
	s, err := server.New(server.Config{
		Algorithm: surge.CellCSPOT,
		// Named queries run single-engine, so the default does too: every
		// query in the shared registry then lands on one slot.
		Options:    surge.Options{Width: qw, Height: qh, Window: window, Alpha: o.Alpha, Shards: 1},
		TimePolicy: server.Clamp,
		BatchSize:  512,
		Queries:    queries,
	})
	if err != nil {
		return tenancyRow{}, err
	}
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()
	c := client.New(ts.URL)
	start := time.Now()
	if err := topkIngestBodies(context.Background(), c, bodies); err != nil {
		return tenancyRow{}, err
	}
	elapsed := time.Since(start)
	h, err := c.Health(context.Background())
	if err != nil {
		return tenancyRow{}, err
	}
	if h.Queries != tenants {
		return tenancyRow{}, fmt.Errorf("tenancy: server reports %d queries, want %d", h.Queries, tenants)
	}
	mode := "shared"
	wantSlots := 1
	if !shared {
		mode = "unshared"
		wantSlots = tenants
	}
	if h.EngineSlots != wantSlots {
		return tenancyRow{}, fmt.Errorf("tenancy: %s registry of %d runs %d engine slots, want %d",
			mode, tenants, h.EngineSlots, wantSlots)
	}
	return tenancyRow{
		Tenants:       tenants,
		Mode:          mode,
		EngineSlots:   h.EngineSlots,
		Objects:       total,
		Seconds:       elapsed.Seconds(),
		ObjectsPerSec: float64(total) / elapsed.Seconds(),
	}, nil
}

// medianTenancy returns the row with the median throughput of rs.
func medianTenancy(rs []tenancyRow) tenancyRow {
	sorted := append([]tenancyRow(nil), rs...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j].ObjectsPerSec < sorted[j-1].ObjectsPerSec; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	return sorted[len(sorted)/2]
}
