package bench

import (
	"fmt"

	"surge/internal/ag2"
	"surge/internal/cellcspot"
)

// Ablation runs the design-choice studies promised in DESIGN.md, beyond the
// paper's own baselines:
//
//  1. CCS component ablation — full CCS vs. CCS without candidate reuse
//     (bounds only) vs. B-CCS (static bound only) vs. Base (nothing) — on
//     one Taxi-like configuration, separating the contribution of the
//     dynamic bound from that of the Lemma-4 candidate reuse.
//  2. aG2 grid-granularity sweep — the gamma parameter (cell size as a
//     multiple of the query rectangle) controls the graph density.
func Ablation(o Options) error {
	d := o.dataset("Taxi")
	w := defaultWindow("Taxi")
	cfg := o.cfgFor(d, w, 1)
	objs := genFor(d, w, o.MaxExact)

	t := NewTable(o.Out, "Ablation: CCS components (Taxi, 5m windows)",
		"Variant", "time/object (us)", "searches", "%events searching")
	for _, mode := range []cellcspot.Mode{
		cellcspot.ModeCCS, cellcspot.ModeNoReuse, cellcspot.ModeStatic, cellcspot.ModeBase,
	} {
		eng, err := cellcspot.New(cfg, mode)
		if err != nil {
			return err
		}
		m := ReplayLimited(cfg, eng, objs, o.MaxExact)
		t.Row(mode.String(),
			fmt.Sprintf("%.1f", m.MicrosPerObject()),
			m.Stats.Searches,
			fmt.Sprintf("%.2f%%", m.Stats.SearchRatio()*100))
	}
	t.Flush()

	t = NewTable(o.Out, "Ablation: aG2 grid granularity (Taxi, 5m windows)",
		"gamma", "time/object (us)", "edges at end", "searches")
	for _, gamma := range []float64{2, 5, 10, 20} {
		eng, err := ag2.New(cfg, gamma)
		if err != nil {
			return err
		}
		m := ReplayLimited(cfg, eng, objs, o.MaxExact)
		t.Row(fmt.Sprintf("%g", gamma),
			fmt.Sprintf("%.1f", m.MicrosPerObject()),
			eng.EdgeCount(),
			m.Stats.Searches)
	}
	t.Flush()
	return nil
}
