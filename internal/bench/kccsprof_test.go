package bench

import (
	"testing"

	"surge"
)

// BenchmarkKCCSMaintain profiles the continuous top-k maintenance path the
// server runs per ingested batch (internal; used with -cpuprofile).
func BenchmarkKCCSMaintain(b *testing.B) {
	o := DefaultOptions(nil)
	d := o.dataset("Taxi")
	w := defaultWindow("Taxi")
	objs := toSurgeObjects(genFor(d, w, 100000))
	det, err := surge.New(surge.CellCSPOT, surge.Options{
		Width: d.QueryWidth(), Height: d.QueryHeight(), Window: w, Alpha: 0.5,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer det.Close()
	td, err := det.AttachTopK(surge.CellCSPOT, 5)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	n := 0
	for n < b.N {
		for lo := 0; lo < len(objs) && n < b.N; lo += 512 {
			hi := min(lo+512, len(objs))
			if _, err := det.PushBatch(objs[lo:hi]); err != nil {
				b.Fatal(err)
			}
			td.BestK()
			n += hi - lo
		}
		b.StopTimer()
		det.Close()
		det, _ = surge.New(surge.CellCSPOT, surge.Options{
			Width: d.QueryWidth(), Height: d.QueryHeight(), Window: w, Alpha: 0.5,
		})
		td, _ = det.AttachTopK(surge.CellCSPOT, 5)
		b.StartTimer()
	}
}
