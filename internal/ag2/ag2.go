// Package ag2 implements the adapted aG2 baseline (Appendix J of the paper):
// the continuous-MaxRS monitoring algorithm of Amagata & Hara (EDBT 2016)
// modified for the SURGE burst score.
//
// A coarse grid is imposed over the space whose cell size is a multiple
// gamma of the query rectangle (the paper uses gamma = 10). Every rectangle
// object is mapped to the cells its coverage overlaps, and within each cell
// the algorithm maintains an *overlap graph*: nodes are rectangle objects
// and two nodes are connected when their coverage rectangles overlap. For
// every rectangle the algorithm maintains a burst-score upper bound over the
// points inside its coverage; a branch-and-bound loop searches rectangles in
// descending bound order, invoking SL-CSPOT restricted to a rectangle's
// coverage over its graph neighbourhood. The per-cell graphs are the
// algorithm's weakness reproduced here on purpose: their edge sets cost
// O(n^2) space in dense cells, which is what makes aG2 lose to CCS in the
// paper's Figure 5 and run out of memory on large windows.
package ag2

import (
	"errors"
	"math"

	"surge/internal/core"
	"surge/internal/geom"
	"surge/internal/grid"
	"surge/internal/iheap"
	"surge/internal/sweep"
)

type node struct {
	id       uint64
	x, y, wt float64
	past     bool
	nbrs     map[uint64]*node

	usStatic float64 // sum of current-window weights of self+neighbours / WC
	usCur    int     // current-window members of self+neighbours
	ud       float64 // dynamic bound; +Inf before first search
	cand     candidate
}

type candidate struct {
	valid  bool
	found  bool
	p      geom.Point
	fc, fp float64
}

// Engine is the adapted aG2 exact detector. It is not safe for concurrent
// use.
type Engine struct {
	cfg   core.Config
	gamma float64
	grid  grid.Grid
	cells map[grid.Cell]map[uint64]*node
	nodes map[uint64]*node
	heap  *iheap.Heap[uint64]
	sr    sweep.Searcher
	stats core.Stats

	searchesAtEvent uint64
	pendingEvent    bool

	cellScratch  []grid.Cell
	entryScratch []sweep.Entry
}

var _ core.Engine = (*Engine)(nil)

// New returns an aG2 engine whose grid cells are gamma times the query
// rectangle (the paper's experiments use gamma = 10).
func New(cfg core.Config, gamma float64) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !(gamma >= 1) {
		return nil, errors.New("ag2: gamma must be >= 1")
	}
	return &Engine{
		cfg:   cfg,
		gamma: gamma,
		grid:  grid.Aligned(gamma*cfg.Width, gamma*cfg.Height),
		cells: make(map[grid.Cell]map[uint64]*node),
		nodes: make(map[uint64]*node),
		heap:  iheap.New[uint64](),
	}, nil
}

// Stats returns the instrumentation counters.
func (e *Engine) Stats() core.Stats { return e.stats }

// EdgeCount returns the number of (directed) adjacency entries currently
// held, the O(n^2) memory term the paper criticises.
func (e *Engine) EdgeCount() int {
	n := 0
	for _, g := range e.nodes {
		n += len(g.nbrs)
	}
	return n
}

func (e *Engine) cover(n *node) geom.Rect { return e.cfg.CoverRect(n.x, n.y) }

// Process applies one window-transition event, maintaining the per-cell
// overlap graphs and the per-rectangle bounds.
func (e *Engine) Process(ev core.Event) {
	if !e.cfg.InArea(ev.Obj) {
		return
	}
	e.accountEventBoundary()
	e.stats.Events++
	e.searchesAtEvent = e.stats.Searches
	e.pendingEvent = true

	o := ev.Obj
	dc := o.Weight / e.cfg.WC
	dp := o.Weight / e.cfg.WP
	switch ev.Kind {
	case core.New:
		g := &node{id: o.ID, x: o.X, y: o.Y, wt: o.Weight, nbrs: make(map[uint64]*node)}
		g.usStatic = dc
		g.usCur = 1
		g.ud = math.Inf(1)
		e.nodes[o.ID] = g
		cov := e.cover(g)
		e.cellScratch = e.grid.CoverCells(e.cellScratch[:0], o.X, o.Y, e.cfg.Width, e.cfg.Height)
		for _, ck := range e.cellScratch {
			e.stats.CellsTouched++
			members := e.cells[ck]
			if members == nil {
				members = make(map[uint64]*node)
				e.cells[ck] = members
			}
			for _, m := range members {
				if _, dup := g.nbrs[m.id]; dup {
					continue
				}
				if cov.Overlaps(e.cover(m)) {
					g.nbrs[m.id] = m
					m.nbrs[g.id] = g
					// The new current-window rectangle raises the
					// neighbour's bounds (Eqn 3, new case).
					m.usStatic += dc
					m.usCur++
					if !math.IsInf(m.ud, 1) {
						m.ud += dc
					}
					if !m.past {
						g.usStatic += m.wt / e.cfg.WC
						g.usCur++
					}
					e.invalidate(m, cov, core.New, dc, dp)
					e.heap.Set(m.id, bound(m))
				}
			}
			members[g.id] = g
		}
		e.heap.Set(g.id, bound(g))
	case core.Grown:
		g, ok := e.nodes[o.ID]
		if !ok || g.past {
			return
		}
		g.past = true
		cov := e.cover(g)
		g.usStatic -= dc
		g.usCur--
		fixStatic(g)
		// Grown leaves dynamic bounds unchanged (Eqn 3).
		e.invalidate(g, cov, core.Grown, dc, dp)
		e.heap.Set(g.id, bound(g))
		for _, m := range g.nbrs {
			m.usStatic -= dc
			m.usCur--
			fixStatic(m)
			e.invalidate(m, cov, core.Grown, dc, dp)
			e.heap.Set(m.id, bound(m))
		}
	case core.Expired:
		g, ok := e.nodes[o.ID]
		if !ok {
			return
		}
		cov := e.cover(g)
		for _, m := range g.nbrs {
			delete(m.nbrs, g.id)
			if !math.IsInf(m.ud, 1) {
				m.ud += e.cfg.Alpha * dp
			}
			e.invalidate(m, cov, core.Expired, dc, dp)
			e.heap.Set(m.id, bound(m))
		}
		e.cellScratch = e.grid.CoverCells(e.cellScratch[:0], g.x, g.y, e.cfg.Width, e.cfg.Height)
		for _, ck := range e.cellScratch {
			e.stats.CellsTouched++
			if members := e.cells[ck]; members != nil {
				delete(members, g.id)
				if len(members) == 0 {
					delete(e.cells, ck)
				}
			}
		}
		delete(e.nodes, g.id)
		e.heap.Remove(g.id)
	}
}

// invalidate applies the Lemma-4 style candidate maintenance for node m when
// the event's coverage rectangle is cov.
func (e *Engine) invalidate(m *node, cov geom.Rect, kind core.EventKind, dc, dp float64) {
	if !m.cand.valid {
		return
	}
	switch kind {
	case core.New:
		switch {
		case !m.cand.found:
			m.cand.valid = false
		case cov.CoversOC(m.cand.p):
			keep := m.cand.fc >= m.cand.fp
			m.cand.fc += dc
			if !keep {
				m.cand.valid = false
			}
		default:
			m.cand.valid = false
		}
	case core.Grown:
		if m.cand.found && cov.CoversOC(m.cand.p) {
			m.cand.fc -= dc
			m.cand.fp += dp
			m.cand.valid = false
		}
	case core.Expired:
		if !m.cand.found {
			return // all scores in m's coverage are zero and stay zero
		}
		if cov.CoversOC(m.cand.p) {
			keep := m.cand.fc >= m.cand.fp
			m.cand.fp -= dp
			if !keep {
				m.cand.valid = false
			}
		} else {
			m.cand.valid = false
		}
	}
	if m.cand.valid {
		m.ud = e.candScore(m)
	}
}

func (e *Engine) candScore(m *node) float64 {
	if !m.cand.found {
		return 0
	}
	return e.cfg.Score(m.cand.fc, m.cand.fp)
}

func bound(m *node) float64 {
	if m.usStatic < m.ud {
		return m.usStatic
	}
	return m.ud
}

func fixStatic(m *node) {
	if m.usCur <= 0 {
		m.usCur = 0
		m.usStatic = 0
	}
}

// searchNode runs SL-CSPOT over m and its neighbours, restricted to m's
// coverage rectangle, and refreshes m's candidate and bounds.
func (e *Engine) searchNode(m *node) {
	e.entryScratch = e.entryScratch[:0]
	us := 0.0
	cur := 0
	add := func(n *node) {
		e.entryScratch = append(e.entryScratch, sweep.Entry{X: n.x, Y: n.y, Weight: n.wt, Past: n.past})
		if !n.past {
			us += n.wt / e.cfg.WC
			cur++
		}
	}
	add(m)
	for _, n := range m.nbrs {
		add(n)
	}
	m.usStatic = us
	m.usCur = cur
	res := e.sr.Search(e.cfg, e.entryScratch, e.cover(m))
	e.stats.Searches++
	e.stats.SweepEntries += uint64(len(e.entryScratch))
	m.cand = candidate{valid: true, found: res.Found, p: res.Point, fc: res.FC, fp: res.FP}
	m.ud = res.Score
}

// Best runs the branch-and-bound loop: rectangles are visited in descending
// bound order and searched when their cached candidate is stale; a valid
// top-of-heap rectangle is exact and is returned.
func (e *Engine) Best() core.Result {
	defer e.accountEventBoundary()
	for {
		id, _, ok := e.heap.Max()
		if !ok {
			return core.Result{}
		}
		m := e.nodes[id]
		if m.cand.valid {
			if !m.cand.found {
				return core.Result{}
			}
			sc := e.candScore(m)
			if sc <= 0 {
				return core.Result{}
			}
			return core.Result{
				Point:  m.cand.p,
				Region: e.cfg.RegionAt(m.cand.p),
				Score:  sc,
				FC:     m.cand.fc,
				FP:     m.cand.fp,
				Found:  true,
			}
		}
		e.searchNode(m)
		e.heap.Set(id, bound(m))
	}
}

func (e *Engine) accountEventBoundary() {
	if e.pendingEvent && e.stats.Searches > e.searchesAtEvent {
		e.stats.SearchEvents++
	}
	e.pendingEvent = false
}
