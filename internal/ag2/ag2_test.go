package ag2_test

import (
	"math"
	"math/rand/v2"
	"testing"

	"surge/internal/ag2"
	"surge/internal/core"
	"surge/internal/topk"
	"surge/internal/window"
)

func almost(a, b float64) bool {
	d := math.Abs(a - b)
	m := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return d <= 1e-9*m
}

func randomStream(seed uint64, n int, span, wc, wp float64, liveTarget int) []core.Object {
	rng := rand.New(rand.NewPCG(seed, seed+99))
	meanGap := (wc + wp) / float64(liveTarget)
	objs := make([]core.Object, n)
	t := 0.0
	for i := range objs {
		t += rng.ExpFloat64() * meanGap
		objs[i] = core.Object{
			X:      rng.Float64() * span,
			Y:      rng.Float64() * span,
			Weight: 1 + rng.Float64()*99,
			T:      t,
		}
	}
	return objs
}

func drive(t *testing.T, wc, wp float64, objs []core.Object, step func(core.Event)) {
	t.Helper()
	win, err := window.New(wc, wp)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range objs {
		if _, err := win.Push(o, step); err != nil {
			t.Fatal(err)
		}
	}
	win.Drain(step)
}

func TestRejectsBadGamma(t *testing.T) {
	cfg := core.Config{Width: 1, Height: 1, WC: 1, WP: 1, Alpha: 0.5}
	if _, err := ag2.New(cfg, 0.5); err == nil {
		t.Fatal("gamma < 1 must be rejected")
	}
	if _, err := ag2.New(core.Config{}, 10); err == nil {
		t.Fatal("invalid config must be rejected")
	}
}

// TestMatchesOracle: aG2 is an exact method; it must equal the from-scratch
// oracle after every event, for several gammas and configurations.
func TestMatchesOracle(t *testing.T) {
	cases := []struct {
		cfg   core.Config
		gamma float64
		seed  uint64
	}{
		{core.Config{Width: 1, Height: 1, WC: 50, WP: 50, Alpha: 0.5}, 10, 1},
		{core.Config{Width: 1, Height: 1, WC: 50, WP: 50, Alpha: 0.5}, 3, 2},
		{core.Config{Width: 0.7, Height: 1.4, WC: 30, WP: 60, Alpha: 0.2}, 10, 3},
		{core.Config{Width: 1, Height: 1, WC: 40, WP: 40, Alpha: 0.9}, 5, 4},
	}
	for ci, tc := range cases {
		eng, err := ag2.New(tc.cfg, tc.gamma)
		if err != nil {
			t.Fatal(err)
		}
		oracle, _ := topk.NewOracle(tc.cfg)
		objs := randomStream(tc.seed, 700, 7, tc.cfg.WC, tc.cfg.WP, 100)
		step := 0
		drive(t, tc.cfg.WC, tc.cfg.WP, objs, func(ev core.Event) {
			eng.Process(ev)
			oracle.Process(ev)
			g, w := eng.Best(), oracle.Best()
			gs, ws := g.Score, w.Score
			if !g.Found {
				gs = 0
			}
			if !w.Found {
				ws = 0
			}
			if !almost(gs, ws) {
				t.Fatalf("case %d event %d (%v): aG2=%v oracle=%v", ci, step, ev.Kind, gs, ws)
			}
			if g.Found {
				fc, fp := oracle.RegionScore(g.Region)
				if !almost(tc.cfg.Score(fc, fp), g.Score) {
					t.Fatalf("case %d event %d: region does not achieve score: %v vs %v",
						ci, step, g.Score, tc.cfg.Score(fc, fp))
				}
			}
			step++
		})
	}
}

// TestDenseCluster: many mutually overlapping rectangles in one spot — the
// O(n^2) graph regime — must still be exact.
func TestDenseCluster(t *testing.T) {
	cfg := core.Config{Width: 1, Height: 1, WC: 100, WP: 100, Alpha: 0.5}
	eng, _ := ag2.New(cfg, 10)
	oracle, _ := topk.NewOracle(cfg)
	objs := randomStream(9, 400, 1.5, cfg.WC, cfg.WP, 120) // tiny span: everything overlaps
	step := 0
	drive(t, cfg.WC, cfg.WP, objs, func(ev core.Event) {
		eng.Process(ev)
		oracle.Process(ev)
		g, w := eng.Best(), oracle.Best()
		gs, ws := g.Score, w.Score
		if !g.Found {
			gs = 0
		}
		if !w.Found {
			ws = 0
		}
		if !almost(gs, ws) {
			t.Fatalf("event %d: aG2=%v oracle=%v", step, gs, ws)
		}
		step++
	})
	if eng.EdgeCount() != 0 {
		t.Fatalf("edges remain after drain: %d", eng.EdgeCount())
	}
}

// TestEdgeGrowth: the per-cell graphs exhibit the quadratic edge blow-up the
// paper criticises — with all rectangles overlapping, edges ~ n^2.
func TestEdgeGrowth(t *testing.T) {
	cfg := core.Config{Width: 10, Height: 10, WC: 1e9, WP: 1e9, Alpha: 0.5}
	eng, _ := ag2.New(cfg, 10)
	n := 60
	for i := 0; i < n; i++ {
		eng.Process(core.Event{Kind: core.New, Obj: core.Object{
			ID: uint64(i + 1), X: float64(i) * 0.01, Y: float64(i) * 0.01, Weight: 1, T: float64(i),
		}})
	}
	want := n * (n - 1) // directed adjacency entries of a clique
	if got := eng.EdgeCount(); got != want {
		t.Fatalf("edge count = %d, want %d (clique)", got, want)
	}
}

func TestEmptyEngine(t *testing.T) {
	cfg := core.Config{Width: 1, Height: 1, WC: 1, WP: 1, Alpha: 0.5}
	eng, _ := ag2.New(cfg, 10)
	if res := eng.Best(); res.Found {
		t.Fatalf("empty engine found %+v", res)
	}
}

// TestSearchesFewerThanEvents: the branch-and-bound caching must avoid
// searching on most events (the whole point of aG2's bounds).
func TestSearchesBounded(t *testing.T) {
	cfg := core.Config{Width: 1, Height: 1, WC: 50, WP: 50, Alpha: 0.5}
	eng, _ := ag2.New(cfg, 10)
	objs := randomStream(15, 2000, 6, cfg.WC, cfg.WP, 120)
	drive(t, cfg.WC, cfg.WP, objs, func(ev core.Event) {
		eng.Process(ev)
		eng.Best()
	})
	st := eng.Stats()
	if st.SearchRatio() >= 1 {
		t.Fatalf("search ratio %v: caching is not working at all", st.SearchRatio())
	}
	if st.Events == 0 || st.Searches == 0 {
		t.Fatalf("stats not recorded: %+v", st)
	}
}
