// Package grid implements the regular grids used by the SURGE engines.
//
// The exact engine (Cell-CSPOT, Section IV-C of the paper) uses a grid whose
// cells have exactly the query-rectangle size, so every rectangle object
// overlaps at most four cells (Lemma 1). GAP-SURGE (Section V-A) uses the
// same grid with each cell acting as a candidate region, and MGAP-SURGE
// (Section V-B) adds the three half-cell-shifted grids. The adapted aG2
// baseline uses a coarser grid whose cells are a multiple of the query size.
//
// A cell (i, j) of grid g covers the half-open box
// [OffX+i*CW, OffX+(i+1)*CW) x [OffY+j*CH, OffY+(j+1)*CH), so the cells
// partition the plane and every object belongs to exactly one cell.
package grid

import (
	"math"

	"surge/internal/core"
	"surge/internal/geom"
)

// Cell identifies a grid cell by its column and row index.
type Cell struct {
	I, J int
}

// Pack encodes the cell coordinates into one uint64 (each index truncated to
// its low 32 bits). The engines key their cell maps by packed cells so every
// per-event lookup hits the runtime's specialized 64-bit-key map fast paths
// instead of hashing a 16-byte struct; indices beyond ±2^31 would alias, far
// outside any realistic grid extent.
func (c Cell) Pack() uint64 {
	return uint64(uint32(c.I))<<32 | uint64(uint32(c.J))
}

// Unpack inverts Pack for indices within ±2^31.
func Unpack(k uint64) Cell {
	return Cell{I: int(int32(k >> 32)), J: int(int32(k))}
}

// Grid is a regular grid with cell size CW x CH, whose lines are offset from
// the origin by (OffX, OffY).
type Grid struct {
	CW, CH     float64
	OffX, OffY float64
}

// Aligned returns the origin-aligned grid with cell size w x h (the paper's
// Definition 6 grid, "Grid 1").
func Aligned(w, h float64) Grid { return Grid{CW: w, CH: h} }

// Shifted returns the grid with cell size w x h shifted by (fx*w, fy*h).
// Shifted(w, h, 0.5, 0), Shifted(w, h, 0, 0.5) and Shifted(w, h, 0.5, 0.5)
// are the paper's Grids 2-4.
func Shifted(w, h, fx, fy float64) Grid {
	return Grid{CW: w, CH: h, OffX: fx * w, OffY: fy * h}
}

// FourGrids returns the four grids of the MGAP-SURGE algorithm.
func FourGrids(w, h float64) [4]Grid {
	return [4]Grid{
		Shifted(w, h, 0, 0),
		Shifted(w, h, 0.5, 0),
		Shifted(w, h, 0, 0.5),
		Shifted(w, h, 0.5, 0.5),
	}
}

// CellOf returns the cell containing the point (x, y) under the closed-open
// partition.
func (g Grid) CellOf(x, y float64) Cell {
	return Cell{
		I: int(math.Floor((x - g.OffX) / g.CW)),
		J: int(math.Floor((y - g.OffY) / g.CH)),
	}
}

// CellRect returns the region of cell c under closed-open semantics.
func (g Grid) CellRect(c Cell) geom.Rect {
	x := g.OffX + float64(c.I)*g.CW
	y := g.OffY + float64(c.J)*g.CH
	return geom.NewRect(x, y, g.CW, g.CH)
}

// CoverCells appends to dst the cells whose region intersects the coverage
// rectangle (x, x+w] x (y, y+h] of a rectangle object anchored at (x, y),
// and returns the extended slice. When w <= CW and h <= CH (the Cell-CSPOT
// configuration) this is always exactly four cells (Lemma 1).
func (g Grid) CoverCells(dst []Cell, x, y, w, h float64) []Cell {
	return g.CoverCellsOwned(dst, x, y, w, h, nil)
}

// CoverCellsOwned is CoverCells restricted to the cells whose column index
// cols owns (nil keeps every cell). It serves the exact engines' sharded
// ownership filter: their grids are query-aligned, so cell column I is
// exactly candidate-point column I, the coverage spans at most two columns,
// and ownership costs at most two ShardOf evaluations instead of one per
// cell. Keeping the span arithmetic in one place also keeps the engines and
// the shard router agreeing on ownership bit for bit.
func (g Grid) CoverCellsOwned(dst []Cell, x, y, w, h float64, cols *core.ColumnSet) []Cell {
	// Columns run from the one containing the open left edge to the one
	// containing the closed right endpoint x+w; analogously for rows. The
	// left column floor((x-OffX)/CW) always intersects because the coverage
	// interval (x, x+w] starts strictly inside or at the start of it.
	i0 := int(math.Floor((x - g.OffX) / g.CW))
	i1 := int(math.Floor((x + w - g.OffX) / g.CW))
	j0 := int(math.Floor((y - g.OffY) / g.CH))
	j1 := int(math.Floor((y + h - g.OffY) / g.CH))
	for i := i0; i <= i1; i++ {
		if !cols.Owns(i) {
			continue
		}
		for j := j0; j <= j1; j++ {
			dst = append(dst, Cell{I: i, J: j})
		}
	}
	return dst
}
