package grid

import (
	"math/rand/v2"
	"testing"

	"surge/internal/geom"
)

func TestCellOfPartition(t *testing.T) {
	g := Aligned(2, 3)
	cases := []struct {
		x, y float64
		want Cell
	}{
		{0, 0, Cell{0, 0}},
		{1.999, 2.999, Cell{0, 0}},
		{2, 3, Cell{1, 1}},
		{-0.001, -0.001, Cell{-1, -1}},
		{-2, -3, Cell{-1, -1}},
		{-2.001, -3.001, Cell{-2, -2}},
	}
	for _, c := range cases {
		if got := g.CellOf(c.x, c.y); got != c.want {
			t.Errorf("CellOf(%v,%v) = %+v, want %+v", c.x, c.y, got, c.want)
		}
	}
}

func TestCellRectRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 3))
	grids := []Grid{
		Aligned(1.5, 2.5),
		Shifted(1.5, 2.5, 0.5, 0),
		Shifted(1.5, 2.5, 0, 0.5),
		Shifted(1.5, 2.5, 0.5, 0.5),
	}
	for _, g := range grids {
		for trial := 0; trial < 2000; trial++ {
			x := (rng.Float64() - 0.5) * 40
			y := (rng.Float64() - 0.5) * 40
			c := g.CellOf(x, y)
			r := g.CellRect(c)
			if !r.ContainsCO(geom.Point{X: x, Y: y}) {
				t.Fatalf("grid %+v: point (%v,%v) not in its cell rect %+v", g, x, y, r)
			}
			// Neighbouring cells must not contain it (partition property).
			for di := -1; di <= 1; di++ {
				for dj := -1; dj <= 1; dj++ {
					if di == 0 && dj == 0 {
						continue
					}
					nr := g.CellRect(Cell{c.I + di, c.J + dj})
					if nr.ContainsCO(geom.Point{X: x, Y: y}) {
						t.Fatalf("point (%v,%v) in two cells", x, y)
					}
				}
			}
		}
	}
}

func TestFourGridsOffsets(t *testing.T) {
	gs := FourGrids(2, 4)
	wantOff := [4][2]float64{{0, 0}, {1, 0}, {0, 2}, {1, 2}}
	for i, g := range gs {
		if g.OffX != wantOff[i][0] || g.OffY != wantOff[i][1] {
			t.Errorf("grid %d offsets = (%v,%v), want %v", i, g.OffX, g.OffY, wantOff[i])
		}
		if g.CW != 2 || g.CH != 4 {
			t.Errorf("grid %d cell size = %v x %v", i, g.CW, g.CH)
		}
	}
}

// TestCoverCellsLemma1: with cell size equal to the rectangle size, a
// rectangle object overlaps at most (here: exactly) four cells.
func TestCoverCellsLemma1(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	g := Aligned(1.5, 2.5)
	for trial := 0; trial < 3000; trial++ {
		x := (rng.Float64() - 0.5) * 30
		y := (rng.Float64() - 0.5) * 30
		cells := g.CoverCells(nil, x, y, 1.5, 2.5)
		if len(cells) != 4 {
			t.Fatalf("rect at (%v,%v) overlaps %d cells, want 4", x, y, len(cells))
		}
		seen := map[Cell]bool{}
		for _, c := range cells {
			if seen[c] {
				t.Fatalf("duplicate cell %+v", c)
			}
			seen[c] = true
		}
	}
	// Exactly aligned anchor still yields four cells (the closed right/top
	// coverage edge touches the next column/row).
	cells := g.CoverCells(nil, 0, 0, 1.5, 2.5)
	if len(cells) != 4 {
		t.Fatalf("aligned anchor overlaps %d cells, want 4", len(cells))
	}
}

// TestCoverCellsComplete: every cell whose region overlaps the coverage
// rectangle is reported, and no unrelated cell is.
func TestCoverCellsComplete(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 14))
	for trial := 0; trial < 1000; trial++ {
		cw := 1 + rng.Float64()*3
		ch := 1 + rng.Float64()*3
		g := Grid{CW: cw, CH: ch, OffX: rng.Float64(), OffY: rng.Float64()}
		w := 0.3 + rng.Float64()*4 // rect may be bigger than a cell (aG2 inverse case is w < cell)
		h := 0.3 + rng.Float64()*4
		x := (rng.Float64() - 0.5) * 20
		y := (rng.Float64() - 0.5) * 20
		got := map[Cell]bool{}
		for _, c := range g.CoverCells(nil, x, y, w, h) {
			got[c] = true
		}
		cover := geom.NewRect(x, y, w, h)
		// Brute-force scan a superset of candidate cells.
		c0 := g.CellOf(x-cw, y-ch)
		c1 := g.CellOf(x+w+cw, y+h+ch)
		for i := c0.I; i <= c1.I; i++ {
			for j := c0.J; j <= c1.J; j++ {
				cell := Cell{i, j}
				r := g.CellRect(cell)
				// A cell matters iff some covered point lies in it: the
				// coverage box (x, x+w] x (y, y+h] intersects [r.MinX,
				// r.MaxX) x [r.MinY, r.MaxY). That is r.MinX <= x+w &&
				// x < r.MaxX (and same for y) — note the closed right edge.
				want := r.MinX <= x+w && x < r.MaxX && r.MinY <= y+h && y < r.MaxY
				if want != got[cell] {
					t.Fatalf("cell %+v: want %v got %v (cover=%+v grid=%+v)", cell, want, got[cell], cover, g)
				}
			}
		}
	}
}
