package cellcspot

import "math"

// cheap is an indexed max-heap over the engine's cells. Following the kheap
// layout proven in internal/topk, the position index lives inside the cells
// themselves (cell.pos), so heap maintenance — one Set per touched cell, one
// Remove per emptied cell, on the per-event hot path — never probes a hash
// map. On top of the kheap operations it supports the pop/reinstate loop of
// the B-CCS best scan and the canonical tie drain (PopMax + SecondPrio).
type cheap struct {
	cells []*cell
	prio  []float64
}

// Len returns the number of cells in the heap.
func (h *cheap) Len() int { return len(h.cells) }

// Max returns the cell with the highest priority without removing it.
func (h *cheap) Max() (*cell, float64, bool) {
	if len(h.cells) == 0 {
		return nil, 0, false
	}
	return h.cells[0], h.prio[0], true
}

// SecondPrio returns the second-highest priority in the heap — the larger of
// the root's children, the only slots it can occupy — or -Inf when the heap
// holds fewer than two cells. The best loops use it to detect an exact-score
// tie at the top without mutating the heap.
func (h *cheap) SecondPrio() float64 {
	switch len(h.cells) {
	case 0, 1:
		return math.Inf(-1)
	case 2:
		return h.prio[1]
	}
	if h.prio[2] > h.prio[1] {
		return h.prio[2]
	}
	return h.prio[1]
}

// Set inserts c with priority p, or updates c's priority if present.
func (h *cheap) Set(c *cell, p float64) {
	if i := c.pos; i >= 0 {
		old := h.prio[i]
		h.prio[i] = p
		if p > old {
			h.up(i)
		} else if p < old {
			h.down(i)
		}
		return
	}
	h.cells = append(h.cells, c)
	h.prio = append(h.prio, p)
	i := len(h.cells) - 1
	c.pos = i
	h.up(i)
}

// Remove deletes c from the heap if present.
func (h *cheap) Remove(c *cell) {
	i := c.pos
	if i < 0 {
		return
	}
	last := len(h.cells) - 1
	if i != last {
		h.cells[i], h.prio[i] = h.cells[last], h.prio[last]
		h.cells[i].pos = i
	}
	h.cells = h.cells[:last]
	h.prio = h.prio[:last]
	c.pos = -1
	if i < last {
		h.up(i)
		h.down(i)
	}
}

// PopMax removes the root cell.
func (h *cheap) PopMax() {
	if len(h.cells) > 0 {
		h.Remove(h.cells[0])
	}
}

// up and down sift with a hole instead of pairwise swaps (see kheap): the
// moving cell is held aside, displaced cells shift one level with a single
// position write each, and the held cell is written once at its final slot.

func (h *cheap) up(i int) {
	j := i
	c, p := h.cells[i], h.prio[i]
	for j > 0 {
		parent := (j - 1) / 2
		if h.prio[parent] >= p {
			break
		}
		h.cells[j], h.prio[j] = h.cells[parent], h.prio[parent]
		h.cells[j].pos = j
		j = parent
	}
	if j != i {
		h.cells[j], h.prio[j] = c, p
		c.pos = j
	}
}

func (h *cheap) down(i int) {
	n := len(h.cells)
	j := i
	c, p := h.cells[i], h.prio[i]
	for {
		l, r := 2*j+1, 2*j+2
		best := -1
		bp := p
		if l < n && h.prio[l] > bp {
			best, bp = l, h.prio[l]
		}
		if r < n && h.prio[r] > bp {
			best = r
		}
		if best < 0 {
			break
		}
		h.cells[j], h.prio[j] = h.cells[best], h.prio[best]
		h.cells[j].pos = j
		j = best
	}
	if j != i {
		h.cells[j], h.prio[j] = c, p
		c.pos = j
	}
}
