package cellcspot_test

import (
	"math"
	"math/rand/v2"
	"testing"

	"surge/internal/cellcspot"
	"surge/internal/core"
	"surge/internal/geom"
	"surge/internal/topk"
	"surge/internal/window"
)

func almost(a, b float64) bool {
	d := math.Abs(a - b)
	m := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return d <= 1e-9*m
}

// randomStream returns n time-ordered objects spread over span x span with
// roughly `liveTarget` objects inside the two windows at steady state.
func randomStream(seed uint64, n int, span, wc, wp float64, liveTarget int) []core.Object {
	rng := rand.New(rand.NewPCG(seed, seed*2654435761+1))
	meanGap := (wc + wp) / float64(liveTarget)
	objs := make([]core.Object, n)
	t := 0.0
	for i := range objs {
		t += rng.ExpFloat64() * meanGap
		objs[i] = core.Object{
			X:      rng.Float64() * span,
			Y:      rng.Float64() * span,
			Weight: 1 + rng.Float64()*99,
			T:      t,
		}
	}
	return objs
}

// drive replays the stream through the window engine, invoking step for
// every window-transition event (including a final drain).
func drive(t *testing.T, wc, wp float64, objs []core.Object, step func(core.Event)) {
	t.Helper()
	win, err := window.New(wc, wp)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range objs {
		if _, err := win.Push(o, step); err != nil {
			t.Fatal(err)
		}
	}
	win.Drain(step)
}

// checkAgainstOracle drives one engine and the from-scratch oracle in
// lockstep, requiring equal burst scores after every event.
func checkAgainstOracle(t *testing.T, cfg core.Config, eng core.Engine, objs []core.Object) {
	t.Helper()
	oracle, err := topk.NewOracle(cfg)
	if err != nil {
		t.Fatal(err)
	}
	step := 0
	drive(t, cfg.WC, cfg.WP, objs, func(ev core.Event) {
		eng.Process(ev)
		oracle.Process(ev)
		got := eng.Best()
		want := oracle.Best()
		gs, ws := got.Score, want.Score
		if !got.Found {
			gs = 0
		}
		if !want.Found {
			ws = 0
		}
		if !almost(gs, ws) {
			t.Fatalf("event %d (%v of obj %d): engine score %v != oracle %v",
				step, ev.Kind, ev.Obj.ID, gs, ws)
		}
		if got.Found {
			// The reported region must actually achieve the reported score:
			// recompute its f values from the oracle's live set.
			fc, fp := oracle.RegionScore(got.Region)
			if !almost(cfg.Score(fc, fp), got.Score) {
				t.Fatalf("event %d: region %+v does not achieve reported score %v (true %v)",
					step, got.Region, got.Score, cfg.Score(fc, fp))
			}
		}
		step++
	})
}

func configs() []core.Config {
	return []core.Config{
		{Width: 1, Height: 1, WC: 50, WP: 50, Alpha: 0.5},
		{Width: 1.3, Height: 0.7, WC: 30, WP: 60, Alpha: 0.2}, // asymmetric windows
		{Width: 0.8, Height: 0.8, WC: 40, WP: 40, Alpha: 0.9},
		{Width: 1, Height: 1, WC: 50, WP: 50, Alpha: 0},
	}
}

func TestCCSMatchesOracle(t *testing.T) {
	for i, cfg := range configs() {
		eng, err := cellcspot.New(cfg, cellcspot.ModeCCS)
		if err != nil {
			t.Fatal(err)
		}
		objs := randomStream(uint64(100+i), 900, 8, cfg.WC, cfg.WP, 120)
		checkAgainstOracle(t, cfg, eng, objs)
	}
}

func TestCCSMatchesOracleDense(t *testing.T) {
	// Few cells, many objects per cell: stresses the sweep and candidate
	// maintenance.
	cfg := core.Config{Width: 1, Height: 1, WC: 50, WP: 50, Alpha: 0.6}
	eng, _ := cellcspot.New(cfg, cellcspot.ModeCCS)
	objs := randomStream(7, 900, 2.5, cfg.WC, cfg.WP, 150)
	checkAgainstOracle(t, cfg, eng, objs)
}

func TestStaticMatchesOracle(t *testing.T) {
	cfg := core.Config{Width: 1, Height: 1, WC: 50, WP: 50, Alpha: 0.5}
	eng, _ := cellcspot.New(cfg, cellcspot.ModeStatic)
	objs := randomStream(11, 700, 6, cfg.WC, cfg.WP, 100)
	checkAgainstOracle(t, cfg, eng, objs)
}

func TestNoReuseMatchesOracle(t *testing.T) {
	cfg := core.Config{Width: 1, Height: 1, WC: 50, WP: 50, Alpha: 0.5}
	eng, _ := cellcspot.New(cfg, cellcspot.ModeNoReuse)
	objs := randomStream(12, 700, 6, cfg.WC, cfg.WP, 100)
	checkAgainstOracle(t, cfg, eng, objs)
}

func TestNoReuseAsymmetric(t *testing.T) {
	cfg := core.Config{Width: 1.3, Height: 0.7, WC: 30, WP: 60, Alpha: 0.8}
	eng, _ := cellcspot.New(cfg, cellcspot.ModeNoReuse)
	objs := randomStream(14, 600, 5, cfg.WC, cfg.WP, 90)
	checkAgainstOracle(t, cfg, eng, objs)
}

func TestBaseMatchesOracle(t *testing.T) {
	cfg := core.Config{Width: 1, Height: 1, WC: 50, WP: 50, Alpha: 0.5}
	eng, _ := cellcspot.New(cfg, cellcspot.ModeBase)
	objs := randomStream(13, 700, 6, cfg.WC, cfg.WP, 100)
	checkAgainstOracle(t, cfg, eng, objs)
}

func TestAllModesAgreePairwise(t *testing.T) {
	cfg := core.Config{Width: 1, Height: 1.5, WC: 25, WP: 75, Alpha: 0.35}
	ccs, _ := cellcspot.New(cfg, cellcspot.ModeCCS)
	bcc, _ := cellcspot.New(cfg, cellcspot.ModeStatic)
	base, _ := cellcspot.New(cfg, cellcspot.ModeBase)
	objs := randomStream(17, 800, 7, cfg.WC, cfg.WP, 110)
	step := 0
	drive(t, cfg.WC, cfg.WP, objs, func(ev core.Event) {
		ccs.Process(ev)
		bcc.Process(ev)
		base.Process(ev)
		a, b, c := ccs.Best().Score, bcc.Best().Score, base.Best().Score
		if !almost(a, b) || !almost(a, c) {
			t.Fatalf("event %d: CCS=%v B-CCS=%v Base=%v", step, a, b, c)
		}
		step++
	})
}

// TestSearchTriggerOrdering reproduces the qualitative content of Table II:
// the full CCS bound machinery must trigger searches on far fewer events
// than B-CCS, which in turn searches less than Base.
func TestSearchTriggerOrdering(t *testing.T) {
	cfg := core.Config{Width: 1, Height: 1, WC: 50, WP: 50, Alpha: 0.5}
	ccs, _ := cellcspot.New(cfg, cellcspot.ModeCCS)
	bcc, _ := cellcspot.New(cfg, cellcspot.ModeStatic)
	base, _ := cellcspot.New(cfg, cellcspot.ModeBase)
	objs := randomStream(19, 3000, 6, cfg.WC, cfg.WP, 150)
	drive(t, cfg.WC, cfg.WP, objs, func(ev core.Event) {
		for _, e := range []core.Engine{ccs, bcc, base} {
			e.Process(ev)
			e.Best()
		}
	})
	rc := ccs.Stats().SearchRatio()
	rb := bcc.Stats().SearchRatio()
	ra := base.Stats().SearchRatio()
	if !(rc < rb) {
		t.Fatalf("CCS search ratio %.4f should be below B-CCS %.4f", rc, rb)
	}
	if !(rb <= ra) {
		t.Fatalf("B-CCS search ratio %.4f should be at most Base %.4f", rb, ra)
	}
	if rc > 0.5 {
		t.Fatalf("CCS search ratio %.4f is implausibly high", rc)
	}
	if ccs.Stats().Searches >= base.Stats().Searches {
		t.Fatalf("CCS total searches %d should be below Base %d",
			ccs.Stats().Searches, base.Stats().Searches)
	}
}

func TestEmptyEngine(t *testing.T) {
	cfg := core.Config{Width: 1, Height: 1, WC: 1, WP: 1, Alpha: 0.5}
	for _, mode := range []cellcspot.Mode{cellcspot.ModeCCS, cellcspot.ModeStatic, cellcspot.ModeBase} {
		eng, err := cellcspot.New(cfg, mode)
		if err != nil {
			t.Fatal(err)
		}
		if res := eng.Best(); res.Found {
			t.Fatalf("%v: empty engine reported %+v", mode, res)
		}
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	if _, err := cellcspot.New(core.Config{}, cellcspot.ModeCCS); err == nil {
		t.Fatal("zero config must be rejected")
	}
}

func TestDrainEmptiesEngine(t *testing.T) {
	cfg := core.Config{Width: 1, Height: 1, WC: 10, WP: 10, Alpha: 0.5}
	eng, _ := cellcspot.New(cfg, cellcspot.ModeCCS)
	objs := randomStream(23, 400, 5, cfg.WC, cfg.WP, 60)
	drive(t, cfg.WC, cfg.WP, objs, func(ev core.Event) { eng.Process(ev) })
	if eng.CellCount() != 0 || eng.LiveObjects() != 0 {
		t.Fatalf("after drain: cells=%d objects=%d, want 0/0", eng.CellCount(), eng.LiveObjects())
	}
	if res := eng.Best(); res.Found {
		t.Fatalf("drained engine still reports %+v", res)
	}
}

func TestLemma1Storage(t *testing.T) {
	cfg := core.Config{Width: 1, Height: 1, WC: 1e9, WP: 1e9, Alpha: 0.5}
	eng, _ := cellcspot.New(cfg, cellcspot.ModeCCS)
	n := 100
	rng := rand.New(rand.NewPCG(29, 31))
	objs := make([]core.Object, n)
	for i := range objs {
		objs[i] = core.Object{X: rng.Float64() * 5, Y: rng.Float64() * 5, Weight: 1, T: float64(i)}
	}
	win, _ := window.New(cfg.WC, cfg.WP)
	for _, o := range objs {
		if _, err := win.Push(o, eng.Process); err != nil {
			t.Fatal(err)
		}
	}
	// With giant windows nothing has grown or expired: every object is live
	// and stored in exactly four cells (Lemma 1).
	if live := eng.LiveObjects(); live != 4*n {
		t.Fatalf("live object copies = %d, want %d", live, 4*n)
	}
}

func TestAreaFilter(t *testing.T) {
	area := geom.NewRect(0, 0, 3, 3)
	cfgA := core.Config{Width: 1, Height: 1, WC: 50, WP: 50, Alpha: 0.5, Area: &area}
	cfgB := cfgA
	cfgB.Area = nil

	filtered, _ := cellcspot.New(cfgA, cellcspot.ModeCCS)
	reference, _ := cellcspot.New(cfgB, cellcspot.ModeCCS)

	objs := randomStream(31, 800, 8, cfgA.WC, cfgA.WP, 100)
	// Feed the filtered engine everything; feed the reference only the
	// objects inside the area. Scores must agree after every event batch.
	win1, _ := window.New(cfgA.WC, cfgA.WP)
	win2, _ := window.New(cfgB.WC, cfgB.WP)
	for _, o := range objs {
		if _, err := win1.Push(o, filtered.Process); err != nil {
			t.Fatal(err)
		}
		if area.ContainsCO(geom.Point{X: o.X, Y: o.Y}) {
			if _, err := win2.Push(o, reference.Process); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := win2.Advance(o.T, reference.Process); err != nil {
				t.Fatal(err)
			}
		}
		a, b := filtered.Best(), reference.Best()
		as, bs := a.Score, b.Score
		if !a.Found {
			as = 0
		}
		if !b.Found {
			bs = 0
		}
		if !almost(as, bs) {
			t.Fatalf("at t=%v: filtered=%v reference=%v", o.T, as, bs)
		}
	}
}

// TestBurstScenario plants an abrupt hotspot and checks CCS tracks it: the
// detected region must contain the hotspot centre while the burst is the
// dominant signal.
func TestBurstScenario(t *testing.T) {
	cfg := core.Config{Width: 1, Height: 1, WC: 10, WP: 10, Alpha: 0.8}
	eng, _ := cellcspot.New(cfg, cellcspot.ModeCCS)
	rng := rand.New(rand.NewPCG(37, 41))
	var objs []core.Object
	tm := 0.0
	for i := 0; i < 600; i++ {
		tm += 0.05
		o := core.Object{X: rng.Float64() * 20, Y: rng.Float64() * 20, Weight: 1, T: tm}
		if tm > 20 && tm < 25 { // burst: heavy objects at (10.5, 10.5)
			o.X = 10.3 + rng.Float64()*0.4
			o.Y = 10.3 + rng.Float64()*0.4
			o.Weight = 50
		}
		objs = append(objs, o)
	}
	var during []core.Result
	win, _ := window.New(cfg.WC, cfg.WP)
	for _, o := range objs {
		_, err := win.Push(o, func(ev core.Event) { eng.Process(ev) })
		if err != nil {
			t.Fatal(err)
		}
		if o.T > 22 && o.T < 25 {
			during = append(during, eng.Best())
		}
	}
	for _, r := range during {
		if !r.Found {
			t.Fatal("burst not detected")
		}
		if !r.Region.ContainsCO(geom.Point{X: 10.5, Y: 10.5}) {
			t.Fatalf("detected region %+v misses the burst centre", r.Region)
		}
	}
}
