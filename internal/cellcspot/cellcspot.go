// Package cellcspot implements the paper's exact solution to the SURGE
// problem (Section IV): the Cell-CSPOT algorithm (CCS) together with its two
// ablation baselines used in the evaluation (Appendix J):
//
//   - ModeCCS: full Algorithm 2 — static upper bound (Definition 7), dynamic
//     upper bound (Eqn 3), candidate points with Lemma 4 validity, and lazy
//     best-first search of cells.
//   - ModeStatic (B-CCS): only the static upper bound; cached cell results
//     are invalidated by any event touching the cell.
//   - ModeBase (Base): no upper bounds — every cell overlapping an event's
//     rectangle is re-searched immediately.
//
// The plane is divided into grid cells of exactly the query-rectangle size
// (Definition 6), so every rectangle object overlaps at most four cells
// (Lemma 1). Each cell keeps the rectangle objects overlapping it and a
// candidate point; the engine keeps the cells in an indexed max-heap ordered
// by their burst-score upper bound U(c) = min(Us(c), Ud(c)).
//
// Invariant maintained by ModeCCS: whenever a cell's candidate is valid,
// Ud(c) equals the exact maximum burst score inside the cell, so the heap
// key of a valid cell is exact and the lazy search loop can stop as soon as
// the top cell is valid.
//
// The storage layout matches the packed representation of the top-k engine
// (internal/topk): the cell map is keyed by grid.Cell.Pack (uint64 keys hit
// the runtime's specialized map fast paths) and the heap stores its position
// index inside the cells (cheap), so the per-event hot path hashes one word
// and never probes a map for heap maintenance. Exact-score ties at the top
// are resolved by core.CompareTopK — the one canonical selection order shared
// with the sharded barrier merge and the top-k chain — so the reported region
// is independent of heap order and shard partitioning.
package cellcspot

import (
	"fmt"
	"math"

	"surge/internal/core"
	"surge/internal/geom"
	"surge/internal/grid"
	"surge/internal/sweep"
)

// Mode selects the exact-engine variant.
type Mode uint8

const (
	// ModeCCS is the full Cell-CSPOT algorithm.
	ModeCCS Mode = iota
	// ModeStatic is the B-CCS baseline (static upper bound only).
	ModeStatic
	// ModeBase is the Base baseline (no upper bounds).
	ModeBase
	// ModeNoReuse is an ablation beyond the paper's baselines: both upper
	// bounds are maintained (Eqns 2-3) but the Lemma-4 candidate-point reuse
	// is disabled — any event touching a cell invalidates its candidate. It
	// isolates how much of CCS's win comes from candidate reuse versus bound
	// tightness.
	ModeNoReuse
)

// String names the mode as in the paper's experiment section.
func (m Mode) String() string {
	switch m {
	case ModeCCS:
		return "CCS"
	case ModeStatic:
		return "B-CCS"
	case ModeBase:
		return "Base"
	case ModeNoReuse:
		return "CCS-noreuse"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

type obj struct {
	id       uint64
	x, y, wt float64
	past     bool
	dead     bool
}

type candidate struct {
	valid  bool
	found  bool
	p      geom.Point
	fc, fp float64
}

// cell keeps its rectangle objects in arrival order (IDs are assigned by the
// window engine in stream order, and within a cell objects arrive and expire
// in ID order). The ordered storage makes every per-cell computation — the
// snapshot search's entry list, the bound recomputations and the canonical
// candidate rescores — a pure function of the cell's content, independent of
// map iteration order and of when searches happen to run. That determinism
// is what lets the sharded pipeline return bit-identical scores to a single
// engine.
type cell struct {
	key      grid.Cell
	objs     []obj   // arrival-ordered; expired entries are tombstoned
	dead     int     // tombstones in objs
	curCount int     // objects currently in Wc
	pos      int     // position in the engine heap; -1 when absent
	us       float64 // static upper bound (Definition 7)
	ud       float64 // dynamic upper bound (Eqn 3); +Inf before first search
	cand     candidate
}

// live returns the number of live objects in the cell.
func (c *cell) live() int { return len(c.objs) - c.dead }

// lookup returns the position of the live object with the given ID. IDs are
// assigned in stream order and objs is arrival-ordered (compaction
// preserves it), so the slice is sorted by ID and a binary search replaces
// the ID index map a cell used to carry — no map write per New, no delete
// per expiry, and cells are cheap to create.
func (c *cell) lookup(id uint64) (int, bool) {
	lo, hi := 0, len(c.objs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if c.objs[mid].id < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(c.objs) && c.objs[lo].id == id && !c.objs[lo].dead {
		return lo, true
	}
	return 0, false
}

// remove tombstones the object at position i and compacts the backing array
// once half of it is dead. Compaction preserves arrival order, so iteration
// yields the same sequence no matter when compactions ran.
func (c *cell) remove(i int) {
	c.objs[i].dead = true
	c.dead++
	if c.dead > 16 && c.dead*2 >= len(c.objs) {
		kept := c.objs[:0]
		for _, g := range c.objs {
			if !g.dead {
				kept = append(kept, g)
			}
		}
		c.objs = kept
		c.dead = 0
	}
}

// Engine is an exact SURGE detector. It is not safe for concurrent use.
type Engine struct {
	cfg   core.Config
	mode  Mode
	grid  grid.Grid
	cells map[uint64]*cell // keyed by grid.Cell.Pack (see the package comment)
	heap  cheap
	sr    sweep.Searcher
	stats core.Stats

	searchesAtEvent uint64 // search counter snapshot at the last Process
	pendingEvent    bool

	cellScratch  []grid.Cell
	entryScratch []sweep.Entry
	popScratch   []*cell
	free         []*cell // emptied cells kept for reuse (see recycle)
}

var _ core.Engine = (*Engine)(nil)

// New returns an exact engine in the given mode.
func New(cfg core.Config, mode Mode) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Engine{
		cfg:   cfg,
		mode:  mode,
		grid:  grid.Aligned(cfg.Width, cfg.Height),
		cells: make(map[uint64]*cell),
	}, nil
}

// Mode returns the engine variant.
func (e *Engine) Mode() Mode { return e.mode }

// Stats returns the instrumentation counters.
func (e *Engine) Stats() core.Stats { return e.stats }

// Process applies one window-transition event (Algorithm 2, lines 1-3).
func (e *Engine) Process(ev core.Event) {
	if !e.cfg.InArea(ev.Obj) {
		return
	}
	o := ev.Obj
	// Sharded ownership is applied per cover cell (grid.CoverCellsOwned;
	// the grid is query-aligned, so cell column I is exactly
	// candidate-point column I).
	e.cellScratch = e.grid.CoverCellsOwned(e.cellScratch[:0], o.X, o.Y, e.cfg.Width, e.cfg.Height, e.cfg.Cols)
	if len(e.cellScratch) == 0 {
		return
	}
	e.accountEventBoundary()
	e.stats.Events++
	e.searchesAtEvent = e.stats.Searches
	e.pendingEvent = true

	cover := e.cfg.CoverRect(o.X, o.Y)
	for _, ck := range e.cellScratch {
		e.stats.CellsTouched++
		pk := ck.Pack()
		c := e.cells[pk]
		if c == nil {
			if ev.Kind != core.New {
				continue // object was filtered or unknown; nothing to undo
			}
			if n := len(e.free); n > 0 {
				c = e.free[n-1]
				e.free = e.free[:n-1]
				c.key = ck
			} else {
				c = &cell{key: ck, ud: math.Inf(1), pos: -1}
			}
			e.cells[pk] = c
		}
		e.applyEvent(c, ev, cover)
		if c.live() == 0 {
			delete(e.cells, pk)
			e.heap.Remove(c)
			e.recycle(c)
			continue
		}
		if e.mode == ModeBase {
			e.searchCell(c)
		}
		e.heap.Set(c, e.heapKey(c))
	}
	if e.mode == ModeBase {
		e.accountEventBoundary()
	}
}

// applyEvent updates a cell's object list, bounds and candidate for one
// event, implementing Eqn 2, Eqn 3 and Lemma 4.
//
// Candidate values are kept *canonical*: whenever the candidate is valid and
// found, cand.fc and cand.fp equal the arrival-order left folds of the
// covering objects' window contributions. A surviving New appends the last
// element of that fold (an O(1) update that preserves canonical form exactly,
// since the new object is last in arrival order); a surviving Expired removes
// an interior element, so the fold is recomputed by rescore. Canonical values
// are a pure function of (cell content, candidate face), which makes the
// reported scores independent of when searches ran — the property the sharded
// pipeline's bit-identical guarantee rests on.
func (e *Engine) applyEvent(c *cell, ev core.Event, cover geom.Rect) {
	id, w := ev.Obj.ID, ev.Obj.Weight
	dc := w / e.cfg.WC
	dp := w / e.cfg.WP
	switch ev.Kind {
	case core.New:
		c.objs = append(c.objs, obj{id: id, x: ev.Obj.X, y: ev.Obj.Y, wt: w})
		c.curCount++
		c.us += dc
		if e.mode == ModeBase {
			return
		}
		if !math.IsInf(c.ud, 1) {
			c.ud += dc
		}
		if e.mode != ModeCCS {
			c.cand.valid = false
			return
		}
		if c.cand.valid {
			switch {
			case !c.cand.found:
				c.cand.valid = false
			case cover.CoversOC(c.cand.p):
				keep := c.cand.fc >= c.cand.fp
				c.cand.fc += dc
				if !keep {
					c.cand.valid = false
				}
			default:
				c.cand.valid = false
			}
		}
	case core.Grown:
		i, ok := c.lookup(id)
		if !ok || c.objs[i].past {
			return
		}
		c.objs[i].past = true
		c.curCount--
		c.us -= dc
		if c.curCount == 0 {
			c.us = 0 // kill float drift once the current window empties
		}
		if e.mode == ModeBase {
			return
		}
		if e.mode != ModeCCS {
			c.cand.valid = false
			return
		}
		// Dynamic bound is unchanged (Eqn 3, grown case). The candidate
		// survives iff the rectangle does not cover it (Lemma 4, case 2).
		if c.cand.valid && c.cand.found && cover.CoversOC(c.cand.p) {
			c.cand.valid = false
		}
	case core.Expired:
		i, ok := c.lookup(id)
		if !ok {
			return
		}
		if !c.objs[i].past { // object expired without a Grown event (defensive)
			c.curCount--
			c.us -= dc
			if c.curCount == 0 {
				c.us = 0
			}
		}
		c.remove(i)
		if e.mode == ModeBase {
			return
		}
		if !math.IsInf(c.ud, 1) {
			c.ud += e.cfg.Alpha * dp
		}
		if e.mode != ModeCCS {
			c.cand.valid = false
			return
		}
		if c.cand.valid && c.cand.found {
			switch {
			case cover.CoversOC(c.cand.p):
				keep := c.cand.fc >= c.cand.fp
				if keep {
					e.rescore(c)
				} else {
					c.cand.valid = false
				}
			default:
				c.cand.valid = false
			}
		}
		// A valid not-found candidate stays valid: every point in the cell
		// has fc == 0 and removing past weight keeps all scores at zero.
	}
	if e.mode == ModeCCS && c.cand.valid {
		// Valid candidate => Ud equals the exact in-cell maximum.
		c.ud = e.candScore(c)
	}
}

// recycle resets an emptied cell to the state of a fresh one and keeps it
// for reuse, so cell churn under a moving stream stops allocating: the objs
// backing array keeps its capacity. The reset state is byte-for-byte a new
// cell's, which keeps reuse invisible to the bit-identical score
// guarantees.
func (e *Engine) recycle(c *cell) {
	c.objs = c.objs[:0]
	c.dead = 0
	c.curCount = 0
	c.pos = -1
	c.us = 0
	c.ud = math.Inf(1)
	c.cand = candidate{}
	e.free = append(e.free, c)
}

// rescore recomputes the candidate's window scores at its point as the
// canonical arrival-order fold over the cell's live objects.
func (e *Engine) rescore(c *cell) {
	var fc, fp float64
	p := c.cand.p
	for i := range c.objs {
		g := &c.objs[i]
		if g.dead || !e.cfg.CoverRect(g.x, g.y).CoversOC(p) {
			continue
		}
		if g.past {
			fp += g.wt / e.cfg.WP
		} else {
			fc += g.wt / e.cfg.WC
		}
	}
	c.cand.fc, c.cand.fp = fc, fp
}

func (c *cell) bound() float64 {
	if c.us < c.ud {
		return c.us
	}
	return c.ud
}

// heapKey returns the cell's heap priority: its exact candidate score in
// ModeBase (no bounds are maintained there), the upper bound otherwise.
func (e *Engine) heapKey(c *cell) float64 {
	if e.mode == ModeBase {
		return e.candScore(c)
	}
	return c.bound()
}

// candScore returns the burst score of the cell's candidate (0 when the last
// search found no positive-score point).
func (e *Engine) candScore(c *cell) float64 {
	if !c.cand.found {
		return 0
	}
	return e.cfg.Score(c.cand.fc, c.cand.fp)
}

// searchCell runs SL-CSPOT restricted to the cell (Algorithm 2, line 6) and
// refreshes the candidate, the dynamic bound and, to kill float drift, the
// static bound. The entry list is built in arrival order and the found
// candidate is rescored canonically, so the refreshed state is a pure
// function of the cell's content (see applyEvent).
func (e *Engine) searchCell(c *cell) {
	e.entryScratch = e.entryScratch[:0]
	us := 0.0
	cur := 0
	for i := range c.objs {
		g := &c.objs[i]
		if g.dead {
			continue
		}
		e.entryScratch = append(e.entryScratch, sweep.Entry{X: g.x, Y: g.y, Weight: g.wt, Past: g.past})
		if !g.past {
			us += g.wt / e.cfg.WC
			cur++
		}
	}
	c.us = us
	c.curCount = cur
	res := e.sr.Search(e.cfg, e.entryScratch, e.grid.CellRect(c.key))
	e.stats.Searches++
	e.stats.SweepEntries += uint64(len(e.entryScratch))
	c.cand = candidate{valid: true, found: res.Found, p: res.Point}
	if res.Found {
		e.rescore(c)
	}
	if e.mode != ModeStatic {
		c.ud = e.candScore(c)
	}
}

// Best reports the current bursty region (Algorithm 2, lines 4-9).
func (e *Engine) Best() core.Result {
	defer e.accountEventBoundary()
	switch e.mode {
	case ModeBase:
		return e.bestBase()
	case ModeStatic:
		return e.bestStatic()
	default:
		return e.bestCCS()
	}
}

func (e *Engine) bestCCS() core.Result {
	for {
		c, u, ok := e.heap.Max()
		if !ok {
			return core.Result{}
		}
		if !c.cand.valid {
			e.searchCell(c)
			e.heap.Set(c, c.bound())
			continue
		}
		best := e.resultOf(c)
		if !best.Found {
			return best
		}
		if e.heap.SecondPrio() != u {
			return best
		}
		return e.canonicalTieBest(c, u, best)
	}
}

// canonicalTieBest resolves an exact-score tie at the top of the heap by
// core.CompareTopK — the canonical selection order shared with the sharded
// barrier merge and the top-k chain — so the reported region does not depend
// on heap order or on how cells are partitioned across shards. It pops the
// winning cell and every further cell whose key bitwise-equals the winning
// key, keeps the CompareTopK-least result, and reinstates the popped cells.
// Only bitwise float ties (in practice, identically loaded cells) enter this
// path, so its extra heap work is negligible.
func (e *Engine) canonicalTieBest(top *cell, u float64, best core.Result) core.Result {
	e.popScratch = e.popScratch[:0]
	e.heap.Remove(top)
	e.popScratch = append(e.popScratch, top)
	for {
		c, cu, ok := e.heap.Max()
		if !ok || cu != u {
			break
		}
		if e.mode != ModeBase && !c.cand.valid {
			e.searchCell(c)
			e.heap.Set(c, c.bound())
			continue
		}
		if r := e.resultOf(c); r.Found && core.CompareTopK(r, best) < 0 {
			best = r
		}
		e.heap.Remove(c)
		e.popScratch = append(e.popScratch, c)
	}
	for _, c := range e.popScratch {
		e.heap.Set(c, e.heapKey(c))
	}
	return best
}

func (e *Engine) bestStatic() core.Result {
	var best core.Result
	e.popScratch = e.popScratch[:0]
	for e.heap.Len() > 0 {
		c, u, _ := e.heap.Max()
		// Cells whose bound bitwise-equals the best score so far are still
		// examined: they may hold an equal-score region that the canonical
		// tie-break (core.CompareTopK) must prefer.
		if u < best.Score || u <= 0 {
			break
		}
		if !c.cand.valid {
			e.searchCell(c)
		}
		if c.cand.found {
			if r := e.resultOf(c); r.Found && (!best.Found || core.CompareTopK(r, best) < 0) {
				best = r
			}
		}
		e.heap.PopMax()
		e.popScratch = append(e.popScratch, c)
	}
	// Reinstate the popped cells with their (unchanged) static bounds.
	for _, c := range e.popScratch {
		e.heap.Set(c, c.us)
	}
	return best
}

func (e *Engine) bestBase() core.Result {
	c, sc, ok := e.heap.Max()
	if !ok || sc <= 0 {
		return core.Result{}
	}
	if !c.cand.found {
		return core.Result{}
	}
	best := e.resultOf(c)
	if best.Found && e.heap.SecondPrio() == sc {
		return e.canonicalTieBest(c, sc, best)
	}
	return best
}

func (e *Engine) resultOf(c *cell) core.Result {
	if !c.cand.found {
		return core.Result{}
	}
	sc := e.candScore(c)
	if sc <= 0 {
		return core.Result{}
	}
	return core.Result{
		Point:  c.cand.p,
		Region: e.cfg.RegionAt(c.cand.p),
		Score:  sc,
		FC:     c.cand.fc,
		FP:     c.cand.fp,
		Found:  true,
	}
}

// accountEventBoundary finalises the per-event "triggered a search" counter
// (Table II) once the searches attributable to the last event are known.
func (e *Engine) accountEventBoundary() {
	if e.pendingEvent && e.stats.Searches > e.searchesAtEvent {
		e.stats.SearchEvents++
	}
	e.pendingEvent = false
}

// CellCount returns the number of live (non-empty) grid cells.
func (e *Engine) CellCount() int { return len(e.cells) }

// LiveObjects returns the number of object copies held across all cells
// (each live object is stored in at most four cells, Lemma 1).
func (e *Engine) LiveObjects() int {
	n := 0
	for _, c := range e.cells {
		n += c.live()
	}
	return n
}
