package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"surge/client"
	"surge/internal/obs"
)

// keepAliveInterval paces the SSE comment lines that keep idle
// subscriptions from being reaped by proxies and detect dead peers.
const keepAliveInterval = 15 * time.Second

// frame is one published SSE event — a "burst" notification or a "topk"
// notification — tagged with the stream-wide event id (the SSE id field).
// Event ids are assigned sequentially across both kinds, so a reconnecting
// subscriber's Last-Event-ID identifies an exact position in the stream.
type frame struct {
	eid   uint64
	topk  bool
	burst client.Notification
	tk    client.TopKNotification
	// pub is when the event loop published the frame; the subscriber
	// handler records publish->write delivery latency from it. Zero when
	// recording was off at publish (and ignored for backlog replays, whose
	// stamps describe a past delivery, not this one).
	pub time.Time
}

// dropped returns the frame's loss account.
func (f *frame) dropped() uint64 {
	if f.topk {
		return f.tk.Dropped
	}
	return f.burst.Dropped
}

// setDropped stamps the loss account carried to the subscriber.
func (f *frame) setDropped(d uint64) {
	if f.topk {
		f.tk.Dropped = d
	} else {
		f.burst.Dropped = d
	}
}

// write renders the frame as one SSE event under the given stream epoch.
func (f *frame) write(w io.Writer, epoch uint64) error {
	if f.topk {
		return writeEvent(w, "topk", epoch, f.eid, f.tk)
	}
	return writeEvent(w, "burst", epoch, f.eid, f.burst)
}

// subscriber is one open /v1/subscribe stream. The channel is written only
// by the event loop (under the hub lock); dropped accumulates the events
// lost to the slow-consumer policy since the last delivery and is written
// under the hub lock too.
type subscriber struct {
	ch      chan frame
	dropped uint64
}

// hub is the subscriber registry plus the bounded ring of recent frames
// that backs Last-Event-ID reconnects. Handlers add/remove under the lock;
// the event loop broadcasts under the lock, so a subscriber present during
// broadcast is guaranteed delivery or a Dropped account — never a silent
// gap — and a reconnect observes a consistent cut of the ring.
type hub struct {
	mu      sync.Mutex
	subs    map[*subscriber]struct{}
	ring    []frame // the newest min(newest, ringCap) frames, indexed by (eid-1) % ringCap
	ringCap int
	newest  uint64         // eid of the most recently published frame
	occ     *obs.Histogram // per-subscriber buffer occupancy at broadcast; nil in bare-hub tests
}

func (h *hub) add(sub *subscriber) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.subs[sub] = struct{}{}
}

// tryAdd registers sub unless the hub already holds max subscribers
// (max <= 0 means unlimited). The check and the insert are one critical
// section, so concurrent connects cannot overshoot the quota.
func (h *hub) tryAdd(sub *subscriber, max int) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if max > 0 && len(h.subs) >= max {
		return false
	}
	h.subs[sub] = struct{}{}
	return true
}

// addResuming registers a reconnecting subscriber and returns the frames it
// missed since lastID, oldest first, for the handler to replay before
// entering the live stream. Frames that have already left the ring are
// accounted on the first returned frame's Dropped field (or carried into
// the subscriber's loss account when nothing is left to replay), so the
// invariant "delivered count + sum of delivered Dropped = published count"
// holds across the reconnect.
func (h *hub) addResuming(sub *subscriber, lastID uint64) []frame {
	out, _ := h.tryAddResuming(sub, lastID, 0)
	return out
}

// tryAddResuming is addResuming under the same quota as tryAdd; when the
// quota rejects the subscriber no frames are replayed.
func (h *hub) tryAddResuming(sub *subscriber, lastID uint64, max int) ([]frame, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if max > 0 && len(h.subs) >= max {
		return nil, false
	}
	h.subs[sub] = struct{}{}
	if h.newest == 0 || lastID >= h.newest {
		return nil, true
	}
	oldest := uint64(1)
	if h.newest > uint64(len(h.ring)) {
		oldest = h.newest - uint64(len(h.ring)) + 1
	}
	from := lastID + 1
	var missed uint64
	if from < oldest {
		missed = oldest - from
		from = oldest
	}
	out := make([]frame, 0, h.newest-from+1)
	for eid := from; eid <= h.newest; eid++ {
		out = append(out, h.ring[(eid-1)%uint64(h.ringCap)])
	}
	if len(out) > 0 {
		out[0].setDropped(out[0].dropped() + missed)
	} else {
		sub.dropped = missed // cannot happen (missed > 0 implies frames remain); defensive
	}
	return out, true
}

func (h *hub) remove(sub *subscriber) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.subs, sub)
}

func (h *hub) count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// broadcast records f in the reconnect ring and delivers it to every
// subscriber without ever blocking the event loop. A full subscriber loses
// its oldest buffered frame to make room for the newest one — the freshest
// answer is always deliverable — and the loss is surfaced on the next
// delivered frame's Dropped field. Returns the number of frames dropped
// across subscribers.
func (h *hub) broadcast(f frame) uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.newest = f.eid
	if h.ringCap > 0 {
		if len(h.ring) < h.ringCap {
			h.ring = append(h.ring, f)
		} else {
			h.ring[(f.eid-1)%uint64(h.ringCap)] = f
		}
	}
	var lost uint64
	rec := h.occ != nil && obs.On()
	for sub := range h.subs {
		if rec {
			h.occ.Record(uint64(len(sub.ch)))
		}
		if sub.trySend(f) {
			continue
		}
		// Full: evict the oldest (the only receiver is the subscriber's
		// handler, so draining one slot is enough room unless the handler
		// raced a receive — then the retry has room anyway). The evicted
		// frame's own Dropped account is reclaimed so the invariant
		// "delivered count + sum of delivered Dropped = published count"
		// holds however far a subscriber falls behind.
		select {
		case old := <-sub.ch:
			sub.dropped += old.dropped() + 1
			lost++
		default:
		}
		if !sub.trySend(f) {
			sub.dropped++ // cannot happen with a buffered channel; never block
			lost++
		}
	}
	return lost
}

// trySend attaches the accumulated loss count and delivers without
// blocking.
func (sub *subscriber) trySend(f frame) bool {
	f.setDropped(sub.dropped)
	select {
	case sub.ch <- f:
		sub.dropped = 0
		return true
	default:
		return false
	}
}

// handleSubscribe streams detection changes as Server-Sent Events: a
// "hello" event carrying the current State, then one "burst" event
// (Notification) per bursty-region change and — when the server maintains
// continuous top-k — one "topk" event (TopKNotification) per top-k change.
// The hello is sent only after the subscriber is registered, so a client
// that has read it observes every subsequent change (modulo the accounted
// slow-consumer drops).
//
// A reconnecting subscriber that sends a Last-Event-ID header resumes the
// stream instead: the events it missed are replayed from a bounded ring
// (Config.NotifyRing) with their original ids, events evicted from the ring
// are counted in the first replayed event's Dropped field, and no hello is
// sent.
//
// Event ids carry the server's stream epoch ("epoch.eid"). A cursor whose
// epoch does not match this server — the process restarted, or the client
// moved between servers — cannot be resumed (the ring it points into is
// gone and eids restarted from 1), so the subscription degrades to a fresh
// one: a new hello resynchronises the client instead of replaying frames
// that happen to share the numeric id. Bare numeric cursors (pre-epoch
// clients) keep the legacy same-process resume semantics.
//
// Every query carries its own event stream: eids, the reconnect ring and
// the slow-consumer accounting are all per query, so one tenant's slow
// consumer can never displace another tenant's frames.
func (s *Server) handleSubscribe(t *tenant, w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("server: streaming unsupported"), 0)
		return
	}
	sub := &subscriber{ch: make(chan frame, s.subBuf)}
	lastEpoch, lastID, resume := lastEventID(r)
	if resume && lastEpoch != 0 && lastEpoch != s.epoch {
		resume = false // foreign-epoch cursor: resync with a fresh hello
	}
	var backlog []frame
	admitted := true
	if resume {
		backlog, admitted = t.hub.tryAddResuming(sub, lastID, s.queryMaxSubs)
	} else {
		admitted = t.hub.tryAdd(sub, s.queryMaxSubs)
	}
	if !admitted {
		writeErrorCode(w, http.StatusTooManyRequests, client.CodeQuotaExceeded, 0,
			fmt.Errorf("server: query %q is at its subscriber quota (%d)", t.id, s.queryMaxSubs), 0)
		return
	}
	defer t.hub.remove(sub)

	var st client.State
	if !resume {
		dead := false
		if err := s.do(func() {
			if t.dead {
				dead = true
				return
			}
			st = s.tenantState(t)
		}); err != nil {
			writeError(w, http.StatusServiceUnavailable, err, 0)
			return
		}
		if dead {
			writeErrorCode(w, http.StatusNotFound, client.CodeUnknownQuery, 0,
				fmt.Errorf("%w: %q", errUnknownQuery, t.id), 0)
			return
		}
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	if resume {
		for i := range backlog {
			if err := backlog[i].write(w, s.epoch); err != nil {
				return
			}
		}
	} else if err := writeEvent(w, "hello", s.epoch, st.Events, st); err != nil {
		return
	}
	fl.Flush()

	ticker := time.NewTicker(keepAliveInterval)
	defer ticker.Stop()
	ctx := r.Context()
	for {
		select {
		case f := <-sub.ch:
			if err := f.write(w, s.epoch); err != nil {
				return
			}
			fl.Flush()
			if !f.pub.IsZero() && obs.On() {
				s.mSSEDeliver.Observe(time.Since(f.pub))
			}
		case <-ticker.C:
			if _, err := fmt.Fprint(w, ": keep-alive\n\n"); err != nil {
				return
			}
			fl.Flush()
		case <-ctx.Done():
			return
		case <-t.gone:
			return // query deleted: end the stream
		case <-s.quit:
			return
		}
	}
}

// lastEventID parses the SSE reconnect header: "epoch.eid" as stamped on
// every event this server emits, or a bare "eid" from a pre-epoch client
// (returned with epoch 0, meaning "same process assumed"). A malformed
// value is treated as a fresh subscription.
func lastEventID(r *http.Request) (epoch, id uint64, ok bool) {
	v := r.Header.Get("Last-Event-ID")
	if v == "" {
		return 0, 0, false
	}
	if e, n, found := strings.Cut(v, "."); found {
		epoch, err := strconv.ParseUint(e, 10, 64)
		if err != nil {
			return 0, 0, false
		}
		id, err := strconv.ParseUint(n, 10, 64)
		if err != nil {
			return 0, 0, false
		}
		return epoch, id, true
	}
	id, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return 0, 0, false
	}
	return 0, id, true
}

// writeEvent renders one SSE frame. The id field is "epoch.eid": eid orders
// events within one server process, epoch distinguishes processes so a
// cursor survives a restart (see handleSubscribe).
func writeEvent(w io.Writer, event string, epoch, id uint64, payload any) error {
	data, err := json.Marshal(payload)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\nid: %d.%d\ndata: %s\n\n", event, epoch, id, data)
	return err
}
