package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"surge/client"
)

// keepAliveInterval paces the SSE comment lines that keep idle
// subscriptions from being reaped by proxies and detect dead peers.
const keepAliveInterval = 15 * time.Second

// subscriber is one open /v1/subscribe stream. The channel is written only
// by the event loop (under the hub lock); dropped accumulates the
// notifications lost to the slow-consumer policy since the last delivery
// and is loop-owned too.
type subscriber struct {
	ch      chan client.Notification
	dropped uint64
}

// hub is the subscriber registry. Handlers add/remove under the lock; the
// event loop broadcasts under the lock, so a subscriber present during
// broadcast is guaranteed delivery or a Dropped account — never a silent
// gap.
type hub struct {
	mu   sync.Mutex
	subs map[*subscriber]struct{}
}

func (h *hub) add(sub *subscriber) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.subs[sub] = struct{}{}
}

func (h *hub) remove(sub *subscriber) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.subs, sub)
}

func (h *hub) count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// broadcast delivers n to every subscriber without ever blocking the event
// loop. A full subscriber loses its oldest buffered notification to make
// room for the newest one — the freshest answer is always deliverable —
// and the loss is surfaced on the next delivered notification's Dropped
// field. Returns the number of notifications dropped across subscribers.
func (h *hub) broadcast(n client.Notification) uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	var lost uint64
	for sub := range h.subs {
		if sub.trySend(n) {
			continue
		}
		// Full: evict the oldest (the only receiver is the subscriber's
		// handler, so draining one slot is enough room unless the handler
		// raced a receive — then the retry has room anyway). The evicted
		// notification's own Dropped account is reclaimed so the invariant
		// "delivered count + sum of delivered Dropped = published count"
		// holds however far a subscriber falls behind.
		select {
		case old := <-sub.ch:
			sub.dropped += old.Dropped + 1
			lost++
		default:
		}
		if !sub.trySend(n) {
			sub.dropped++ // cannot happen with a buffered channel; never block
			lost++
		}
	}
	return lost
}

// trySend attaches the accumulated loss count and delivers without
// blocking.
func (sub *subscriber) trySend(n client.Notification) bool {
	n.Dropped = sub.dropped
	select {
	case sub.ch <- n:
		sub.dropped = 0
		return true
	default:
		return false
	}
}

// handleSubscribe streams bursty-region changes as Server-Sent Events: a
// "hello" event carrying the current State, then one "burst" event
// (Notification) per answer change. The hello is sent only after the
// subscriber is registered, so a client that has read it observes every
// subsequent change (modulo the accounted slow-consumer drops).
func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("server: streaming unsupported"), 0)
		return
	}
	sub := &subscriber{ch: make(chan client.Notification, s.subBuf)}
	s.hub.add(sub)
	defer s.hub.remove(sub)

	var st client.State
	if err := s.do(func() { st = s.state() }); err != nil {
		writeError(w, http.StatusServiceUnavailable, err, 0)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	if err := writeEvent(w, "hello", st.Seq, st); err != nil {
		return
	}
	fl.Flush()

	ticker := time.NewTicker(keepAliveInterval)
	defer ticker.Stop()
	ctx := r.Context()
	for {
		select {
		case n := <-sub.ch:
			if err := writeEvent(w, "burst", n.Seq, n); err != nil {
				return
			}
			fl.Flush()
		case <-ticker.C:
			if _, err := fmt.Fprint(w, ": keep-alive\n\n"); err != nil {
				return
			}
			fl.Flush()
		case <-ctx.Done():
			return
		case <-s.quit:
			return
		}
	}
}

// writeEvent renders one SSE frame.
func writeEvent(w http.ResponseWriter, event string, id uint64, payload any) error {
	data, err := json.Marshal(payload)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\nid: %d\ndata: %s\n\n", event, id, data)
	return err
}
