package server

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"surge"
	"surge/client"
)

// DefaultQueryID is the registry id of the query the legacy single-query
// endpoints (/v1/best, /v1/topk, /v1/subscribe, ...) address. It always
// exists and cannot be deleted.
const DefaultQueryID = "default"

// tenantConfig is one query's resolved engine configuration: everything
// that determines the answer stream. Two tenants with equal tenantConfigs
// are answer-identical by construction, which is what lets the registry
// host them on one shared engine slot.
type tenantConfig struct {
	Algorithm       surge.Algorithm
	Options         surge.Options
	TopK            int
	TopKReplayOnly  bool
	BestFromEngines bool
}

// key renders the engine-defining configuration as a slot-sharing key.
// Options.Area is folded in by value, not by pointer, so two configs that
// spell the same area share.
func (c tenantConfig) key() string {
	area := ""
	if c.Options.Area != nil {
		area = fmt.Sprintf("%v", *c.Options.Area)
	}
	o := c.Options
	return fmt.Sprintf("%d|%v|%v|%v|%v|%v|%s|%v|%t|%d|%d|%d|%d|%t|%t",
		c.Algorithm, o.Width, o.Height, o.Window, o.PastWindow, o.Alpha,
		area, o.AG2Gamma, o.CountWindows, o.Shards, o.ShardBlockCols,
		o.ShardFlushEvents, c.TopK, c.TopKReplayOnly, c.BestFromEngines)
}

// serveBestFromChain reports whether this configuration retires the
// single-region engines and serves best from the maintained chain's rank-1
// region (see Config.BestFromEngines).
func (c tenantConfig) serveBestFromChain() bool {
	return !c.TopKReplayOnly && !c.BestFromEngines && chainServesBest(c.Algorithm)
}

// engineSlot hosts one detector (plus its maintained top-k chain) for one
// or more tenants of identical configuration. Slots are pinned to a worker
// of the server's shared tenant pool: every ingest batch runs each slot's
// apply on its worker, the event loop waits at the pool barrier, then reads
// the pend* results — so slot state needs no lock, exactly like the old
// single-detector loop ownership, just with N islands instead of one.
//
// Sharing happens only at registration time (boot grouping, never
// retroactively), and a live restore unshares: the restored tenant gets a
// private slot while the others keep the old one.
type engineSlot struct {
	cfg    tenantConfig
	key    string
	worker int          // pool worker this slot's applies are pinned to
	refs   atomic.Int32 // tenants bound to this slot; loop-owned writes

	det  *surge.Detector
	tdet *surge.TopKDetector // nil when cfg.TopKReplayOnly

	// clock is this slot's stream clock: the largest timestamp its engine
	// has ingested. Per-slot, not global, so a tenant created mid-stream or
	// restored from an old checkpoint clamps exactly like an independent
	// single-query server would.
	clock float64

	// Per-batch outputs: written by apply on the slot's worker, read by the
	// event loop after the pool barrier.
	pendRes      surge.Result
	pendNow      float64
	pendClamped  int
	pendErr      error
	pendPanicked bool

	// scratch receives a copy of the shared ingest chunk when the clamp
	// policy must lift timestamps for this slot: the chunk is read-only
	// across slots, and a time-ordered stream never needs the copy, so the
	// shared ingest plane stays allocation- and copy-free per object.
	scratch []surge.Object

	lastTopK []surge.Result
	tkSnap   *client.TopK // wire snapshot of lastTopK; rebuilt only on change

	// Lock-free mirrors for scrapes and per-query stats.
	statShards    int
	statNow       atomic.Uint64
	statLive      atomic.Uint64
	engStats      [5]atomic.Uint64 // events, searches, searchEvents, sweepEntries, cellsTouched
	errMsg        atomic.Pointer[string]
	lastStatsNano int64
}

// apply runs on the slot's pool worker (or inline on the loop when the
// registry holds a single slot): apply the time policy against this slot's
// own clock, push the batch, refresh the top-k snapshot and the stat
// mirrors. A panic — an engine bug tripped by this batch — is recovered
// into pendErr/pendPanicked so one broken tenant engine never takes the
// worker, the loop, or the other tenants down.
func (sl *engineSlot) apply(objs []surge.Object, policy TimePolicy) {
	sl.pendRes, sl.pendClamped, sl.pendErr, sl.pendPanicked = surge.Result{}, 0, nil, false
	defer func() {
		if r := recover(); r != nil {
			sl.pendRes, sl.pendClamped = surge.Result{}, 0
			sl.pendErr = fmt.Errorf("%w: batch apply panicked: %v", errPipeline, r)
			sl.pendPanicked = true
			msg := sl.pendErr.Error()
			sl.errMsg.Store(&msg)
		}
	}()
	use := objs
	if policy == Clamp {
		copied := false
		for i := 0; i < len(use); i++ {
			if use[i].Time < sl.clock {
				if !copied {
					// First lift: move to the private scratch copy so the
					// shared chunk stays untouched for the other slots.
					sl.scratch = append(sl.scratch[:0], objs...)
					use = sl.scratch
					copied = true
				}
				use[i].Time = sl.clock
				sl.pendClamped++
			} else {
				sl.clock = use[i].Time
			}
		}
	} else {
		for i := range use {
			if use[i].Time > sl.clock {
				sl.clock = use[i].Time
			}
		}
	}
	res, err := sl.det.PushBatch(use)
	if now := sl.det.Now(); now > sl.clock {
		sl.clock = now
	}
	sl.pendRes = res
	sl.pendNow = sl.det.Now()
	if err != nil {
		if sl.det.Err() != nil {
			// The engine pipeline itself failed, not the request: the slot
			// serves its last good answer from here on.
			err = fmt.Errorf("%w: %w", errPipeline, err)
		}
		sl.pendErr = err
		msg := err.Error()
		sl.errMsg.Store(&msg)
	} else {
		// errMsg mirrors the newest apply's outcome: a per-batch window
		// error (invisible in the shared ingest ack when another slot
		// succeeded) surfaces in this query's stats until a batch applies
		// cleanly again; sticky pipeline errors re-store every batch.
		sl.errMsg.Store(nil)
	}
	sl.refreshTopKLocal()
	sl.statNow.Store(math.Float64bits(sl.clock))
	sl.statLive.Store(uint64(sl.det.Live()))
	if now := time.Now(); now.UnixNano()-sl.lastStatsNano >= int64(engineStatsInterval) {
		sl.refreshEngineStats(now)
	}
}

// refreshTopKLocal recomputes the slot's top-k wire snapshot when the
// maintained answer changed (bitwise). The snapshot pointer is the change
// signal the loop uses per tenant: a new pointer means a new answer.
func (sl *engineSlot) refreshTopKLocal() {
	if sl.tdet == nil {
		return
	}
	res := sl.tdet.BestK()
	if topkEqual(res, sl.lastTopK) {
		return
	}
	sl.lastTopK = append(sl.lastTopK[:0], res...)
	snap := &client.TopK{
		K:          sl.tdet.K(),
		Algorithm:  sl.tdet.Algorithm().String(),
		Continuous: true,
		Results:    make([]client.Result, len(sl.lastTopK)),
	}
	for i, r := range sl.lastTopK {
		snap.Results[i] = client.FromResult(r)
	}
	sl.tkSnap = snap
}

// refreshEngineStats mirrors det.Stats() into atomics. On a sharded
// detector Stats is a pipeline barrier, so apply throttles the calls.
func (sl *engineSlot) refreshEngineStats(now time.Time) {
	sl.lastStatsNano = now.UnixNano()
	st := sl.det.Stats()
	sl.engStats[0].Store(st.Events)
	sl.engStats[1].Store(st.Searches)
	sl.engStats[2].Store(st.SearchEvents)
	sl.engStats[3].Store(st.SweepEntries)
	sl.engStats[4].Store(st.CellsTouched)
}

// close releases the slot's engines. Only called once the loop no longer
// references the slot (it left s.slots), so nothing races the teardown.
func (sl *engineSlot) close() error {
	return sl.det.Close()
}

// tenant is one registered query: its identity, its binding to an engine
// slot, its own notification plane (hub, sequence numbers, SSE ring) and
// its own counters. Fields below the marker are loop-owned; the atomics
// serve handlers lock-free.
type tenant struct {
	id        string
	cfg       tenantConfig
	isDefault bool

	// slot is the engine binding; the loop swaps it on restore, handlers
	// load it to read the slot's stat mirrors.
	slot atomic.Pointer[engineSlot]

	// Loop-owned notification state.
	last  surge.Result // last published answer
	seq   uint64       // bursty-region change sequence
	tkSeq uint64       // top-k change sequence
	eid   uint64       // SSE event id, shared by both event kinds
	dead  bool         // set on delete; loop ops must not touch the slot after

	// gone is closed on delete so this tenant's SSE handlers disconnect.
	gone chan struct{}

	hub hub

	// topkSnap serves this query's /topk fast path with one atomic load.
	topkSnap atomic.Pointer[client.TopK]
	// lastWire mirrors the last published answer for lock-free stats.
	lastWire atomic.Pointer[client.Result]

	// Per-query counters (atomics so stats and metrics read them lock-free).
	notifs     atomic.Uint64
	dropped    atomic.Uint64
	topkNotifs atomic.Uint64
	topkFast   atomic.Uint64
	topkReplay atomic.Uint64
	snapshots  atomic.Uint64
	restores   atomic.Uint64
	clamped    atomic.Uint64
}

// tenantSeed is one query to register at boot: its resolved configuration
// plus an optional checkpoint to seed the engine from. slotTag groups
// checkpointed seeds that came from the same persisted slot (-1 = fresh);
// seeds share an engine slot when both the configuration key and the tag
// agree, so identical fresh tenants share and registry-checkpoint sharing
// is restored bitwise.
type tenantSeed struct {
	id      string
	cfg     tenantConfig
	ckpt    []byte
	slotTag int
}

// buildSlot constructs a slot off the event loop: fresh from cfg, or
// restored from a checkpoint (the checkpoint's recorded query options
// define the engine; cfg supplies algorithm and shard layout, as
// surge.RestoreShardedTuned documents).
func (s *Server) buildSlot(cfg tenantConfig, ckpt []byte) (*engineSlot, error) {
	var det *surge.Detector
	var err error
	if ckpt != nil {
		det, err = surge.RestoreShardedTuned(cfg.Algorithm, ckpt,
			cfg.Options.Shards, cfg.Options.ShardBlockCols, cfg.Options.ShardFlushEvents)
	} else {
		det, err = surge.New(cfg.Algorithm, cfg.Options)
	}
	if err != nil {
		return nil, err
	}
	sl := &engineSlot{cfg: cfg, key: cfg.key(), det: det, clock: det.Now()}
	if !cfg.TopKReplayOnly {
		alg := topKAlgorithm(cfg.Algorithm)
		var td *surge.TopKDetector
		if cfg.serveBestFromChain() {
			td, err = det.AttachTopKBest(alg, cfg.TopK)
		} else {
			td, err = det.AttachTopK(alg, cfg.TopK)
		}
		if err != nil {
			det.Close()
			return nil, err
		}
		sl.tdet = td
		sl.lastTopK = append(sl.lastTopK, td.BestK()...)
		snap := &client.TopK{
			K:          td.K(),
			Algorithm:  td.Algorithm().String(),
			Continuous: true,
			Results:    make([]client.Result, len(sl.lastTopK)),
		}
		for i, r := range sl.lastTopK {
			snap.Results[i] = client.FromResult(r)
		}
		sl.tkSnap = snap
	}
	sl.pendRes = det.Best() // serve-from-chain may have swapped the source
	sl.pendNow = det.Now()
	sl.statShards = det.Shards()
	sl.statNow.Store(math.Float64bits(sl.clock))
	sl.statLive.Store(uint64(det.Live()))
	sl.refreshEngineStats(time.Now())
	return sl, nil
}

// newTenant binds a tenant to a slot. Runs at boot or on the event loop.
func (s *Server) newTenant(id string, cfg tenantConfig, sl *engineSlot) *tenant {
	t := &tenant{id: id, cfg: cfg, gone: make(chan struct{})}
	t.slot.Store(sl)
	sl.refs.Add(1)
	t.last = sl.pendRes
	lw := client.FromResult(sl.pendRes)
	t.lastWire.Store(&lw)
	if sl.tkSnap != nil {
		t.topkSnap.Store(sl.tkSnap)
	}
	t.hub.subs = make(map[*subscriber]struct{})
	t.hub.ringCap = s.ringCap
	t.hub.occ = s.hubOcc
	return t
}

// rebuildSlots recomputes the unique-slot fan-out list from the registry
// order. Loop-owned.
func (s *Server) rebuildSlots() {
	seen := make(map[*engineSlot]bool, len(s.order))
	s.slots = s.slots[:0]
	for _, t := range s.order {
		sl := t.slot.Load()
		if !seen[sl] {
			seen[sl] = true
			s.slots = append(s.slots, sl)
		}
	}
}

// validQueryID reports whether id is a legal registry id: 1-64 characters
// from [a-zA-Z0-9._-], so ids embed cleanly in URL paths and metric labels.
func validQueryID(id string) bool {
	if len(id) == 0 || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// resolveQuery resolves one wire QueryConfig against the server defaults:
// empty algorithm and zero geometry fields inherit the default query's
// values, TopK 0 inherits the default k, Shards 0 selects the single-engine
// layout that rides the shared tenant workers.
func resolveQuery(cfg Config, qc client.QueryConfig) (tenantConfig, error) {
	tc := tenantConfig{
		Algorithm:       cfg.Algorithm,
		Options:         cfg.Options,
		TopK:            cfg.TopK,
		TopKReplayOnly:  qc.TopKReplayOnly,
		BestFromEngines: qc.BestFromEngines,
	}
	if qc.Algorithm != "" {
		alg, err := surge.ParseAlgorithm(qc.Algorithm)
		if err != nil {
			return tenantConfig{}, fmt.Errorf("server: query %q: %w", qc.ID, err)
		}
		tc.Algorithm = alg
	}
	if qc.Width != 0 {
		tc.Options.Width = qc.Width
	}
	if qc.Height != 0 {
		tc.Options.Height = qc.Height
	}
	if qc.Window != 0 {
		tc.Options.Window = qc.Window
	}
	if qc.PastWindow != 0 {
		tc.Options.PastWindow = qc.PastWindow
	}
	if qc.Alpha != 0 {
		tc.Options.Alpha = qc.Alpha
	}
	if qc.TopK != 0 {
		tc.TopK = qc.TopK
	}
	if tc.TopK < 1 {
		return tenantConfig{}, fmt.Errorf("server: query %q: invalid TopK %d", qc.ID, tc.TopK)
	}
	// Per-query engines default to the single-engine path: tenancy scales by
	// spreading slots over the shared workers, not by spawning a shard
	// pipeline per query. An explicit Shards >= 2 opts this query into its
	// own pipeline.
	tc.Options.Shards = qc.Shards
	if tc.Options.Shards < 1 {
		tc.Options.Shards = 1
	}
	tc.Options.ShardBlockCols = qc.ShardBlockCols
	return tc, nil
}

// defaultTenantConfig is the resolved configuration of the default query.
func defaultTenantConfig(cfg Config) tenantConfig {
	return tenantConfig{
		Algorithm:       cfg.Algorithm,
		Options:         cfg.Options,
		TopK:            cfg.TopK,
		TopKReplayOnly:  cfg.TopKReplayOnly,
		BestFromEngines: cfg.BestFromEngines,
	}
}

// bootSeeds builds the boot registry from a Config: the default query
// (seeded by Config.Checkpoint when set) plus every entry of
// Config.Queries. Called after the Config defaults are resolved.
func bootSeeds(cfg Config) ([]tenantSeed, error) {
	defTag := -1
	if cfg.Checkpoint != nil {
		defTag = 0
	}
	seeds := []tenantSeed{{id: DefaultQueryID, cfg: defaultTenantConfig(cfg), ckpt: cfg.Checkpoint, slotTag: defTag}}
	seen := map[string]bool{DefaultQueryID: true}
	for _, qc := range cfg.Queries {
		if !validQueryID(qc.ID) {
			return nil, fmt.Errorf("server: invalid query id %q (want 1-64 chars of [a-zA-Z0-9._-])", qc.ID)
		}
		if seen[qc.ID] {
			return nil, fmt.Errorf("server: duplicate query id %q", qc.ID)
		}
		seen[qc.ID] = true
		tc, err := resolveQuery(cfg, qc)
		if err != nil {
			return nil, err
		}
		seeds = append(seeds, tenantSeed{id: qc.ID, cfg: tc, slotTag: -1})
	}
	return seeds, nil
}
