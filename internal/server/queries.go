package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"

	"surge/client"
)

// errUnknownQuery marks a request addressing a query id the registry does
// not hold (never created, or deleted); rendered as a 404 with code
// "unknown_query".
var errUnknownQuery = errors.New("server: unknown query")

// errQueryExists marks a create for an id already in the registry (409).
var errQueryExists = errors.New("server: query already exists")

// errDefaultQuery rejects deleting the default query.
var errDefaultQuery = errors.New("server: the default query cannot be deleted")

// CreateQuery registers a new named query. The engine is built off the
// event loop (an expensive configuration never stalls ingest); only the
// registry insert synchronises. The query starts answering from the next
// ingested batch — it does not see the stream's past.
//
// On a durable server the registry checkpoint is written synchronously
// before the create returns, so an acknowledged query survives kill -9; if
// the checkpoint cannot be written the create is rolled back and fails.
func (s *Server) CreateQuery(qc client.QueryConfig) (*client.QueryInfo, error) {
	if !validQueryID(qc.ID) {
		return nil, fmt.Errorf("server: invalid query id %q (want 1-64 chars of [a-zA-Z0-9._-])", qc.ID)
	}
	if qc.ID == DefaultQueryID {
		return nil, fmt.Errorf("%w: %q", errQueryExists, qc.ID)
	}
	tc, err := resolveQuery(s.cfg, qc)
	if err != nil {
		return nil, err
	}
	sl, err := s.buildSlot(tc, nil)
	if err != nil {
		return nil, err
	}
	var t *tenant
	exists := false
	derr := s.do(func() {
		if _, ok := s.tenants[qc.ID]; ok {
			exists = true
			return
		}
		sl.worker = s.nextWorker
		s.nextWorker++
		t = s.newTenant(qc.ID, tc, sl)
		s.tenMu.Lock()
		s.tenants[qc.ID] = t
		s.order = append(s.order, t)
		s.tenMu.Unlock()
		s.rebuildSlots()
	})
	if derr != nil {
		sl.close()
		return nil, derr
	}
	if exists {
		sl.close()
		return nil, fmt.Errorf("%w: %q", errQueryExists, qc.ID)
	}
	if s.wal != nil {
		if cerr := s.checkpointDurable(); cerr != nil {
			// The query must not be observable without a durable record of it:
			// a crash would otherwise boot without the id the caller was told
			// exists. Roll back and fail the create.
			s.removeTenant(t)
			return nil, fmt.Errorf("server: query %q rolled back, durable checkpoint failed: %w", qc.ID, cerr)
		}
	}
	s.log.Info("query created", "query", qc.ID,
		"algorithm", tc.Algorithm.String(), "topk", tc.TopK,
		"shared", sl.refs.Load() > 1)
	info := s.queryInfo(t)
	return &info, nil
}

// DeleteQuery removes a named query from the registry: its subscribers
// disconnect, its engine state is released (unless shared), and later
// requests for the id fail with 404 "unknown_query". Deleting the default
// query is rejected.
func (s *Server) DeleteQuery(id string) error {
	if id == DefaultQueryID {
		return errDefaultQuery
	}
	s.tenMu.RLock()
	t := s.tenants[id]
	s.tenMu.RUnlock()
	if t == nil {
		return fmt.Errorf("%w: %q", errUnknownQuery, id)
	}
	if err := s.removeTenant(t); err != nil {
		return err
	}
	if s.wal != nil {
		if cerr := s.checkpointDurable(); cerr != nil {
			// Best-effort: the delete stands, but until the next successful
			// checkpoint a crash resurrects the id at boot (desired-state
			// recovery; delete it again).
			s.log.Warn("query deleted but durable checkpoint failed; a crash before the next checkpoint resurrects it",
				"query", id, "err", cerr)
		}
	}
	s.log.Info("query deleted", "query", id)
	return nil
}

// removeTenant unbinds a tenant on the event loop: mark it dead, drop it
// from the registry, disconnect its subscribers, and release its slot when
// it was the last reference. Idempotent per tenant.
func (s *Server) removeTenant(t *tenant) error {
	var closeSlot *engineSlot
	gone := false
	derr := s.do(func() {
		if t.dead {
			gone = true
			return
		}
		t.dead = true
		s.tenMu.Lock()
		delete(s.tenants, t.id)
		for i, x := range s.order {
			if x == t {
				s.order = append(s.order[:i], s.order[i+1:]...)
				break
			}
		}
		s.tenMu.Unlock()
		sl := t.slot.Load()
		if sl.refs.Add(-1) == 0 {
			closeSlot = sl
		}
		s.rebuildSlots()
		close(t.gone)
	})
	if derr != nil {
		return derr
	}
	if gone {
		return fmt.Errorf("%w: %q", errUnknownQuery, t.id)
	}
	if closeSlot != nil {
		closeSlot.close()
	}
	return nil
}

// queryInfo assembles one registry entry's wire description, lock-free.
func (s *Server) queryInfo(t *tenant) client.QueryInfo {
	sl := t.slot.Load()
	o := sl.det.Options()
	info := client.QueryInfo{
		QueryConfig: client.QueryConfig{
			ID:              t.id,
			Algorithm:       t.cfg.Algorithm.String(),
			Width:           o.Width,
			Height:          o.Height,
			Window:          o.Window,
			PastWindow:      o.PastWindow,
			Alpha:           o.Alpha,
			TopK:            t.cfg.TopK,
			TopKReplayOnly:  t.cfg.TopKReplayOnly,
			BestFromEngines: t.cfg.BestFromEngines,
			Shards:          sl.statShards,
			ShardBlockCols:  t.cfg.Options.ShardBlockCols,
		},
		Default:     t.isDefault,
		Continuous:  !t.cfg.TopKReplayOnly,
		Shared:      sl.refs.Load() > 1,
		Now:         math.Float64frombits(sl.statNow.Load()),
		Live:        int(sl.statLive.Load()),
		Subscribers: t.hub.count(),
	}
	if rw := t.lastWire.Load(); rw != nil {
		info.Result = *rw
	}
	return info
}

func (s *Server) handleQueryList(w http.ResponseWriter, r *http.Request) {
	s.tenMu.RLock()
	tenants := make([]*tenant, len(s.order))
	copy(tenants, s.order)
	s.tenMu.RUnlock()
	out := client.QueryList{Queries: make([]client.QueryInfo, 0, len(tenants))}
	for _, t := range tenants {
		out.Queries = append(out.Queries, s.queryInfo(t))
	}
	writeJSON(w, out)
}

func (s *Server) handleQueryCreate(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 64<<10))
	if err != nil {
		writeError(w, http.StatusBadRequest, err, 0)
		return
	}
	var qc client.QueryConfig
	if err := json.Unmarshal(body, &qc); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("server: bad query config: %w", err), 0)
		return
	}
	info, err := s.CreateQuery(qc)
	if err != nil {
		switch {
		case errors.Is(err, errQueryExists):
			writeError(w, http.StatusConflict, err, 0)
		case errors.Is(err, ErrClosed):
			writeError(w, http.StatusServiceUnavailable, err, 0)
		default:
			writeError(w, http.StatusBadRequest, err, 0)
		}
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	json.NewEncoder(w).Encode(info)
}

func (s *Server) handleQueryInfo(t *tenant, w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.queryInfo(t))
}

func (s *Server) handleQueryDelete(t *tenant, w http.ResponseWriter, r *http.Request) {
	if err := s.DeleteQuery(t.id); err != nil {
		switch {
		case errors.Is(err, errDefaultQuery):
			writeError(w, http.StatusBadRequest, err, 0)
		case errors.Is(err, errUnknownQuery):
			writeErrorCode(w, http.StatusNotFound, client.CodeUnknownQuery, 0, err, 0)
		case errors.Is(err, ErrClosed):
			writeError(w, http.StatusServiceUnavailable, err, 0)
		default:
			writeError(w, http.StatusInternalServerError, err, 0)
		}
		return
	}
	w.WriteHeader(http.StatusNoContent)
}
