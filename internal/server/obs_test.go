package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"surge"
	"surge/client"
)

// TestScrapeEndpointsSurviveWedgedLoop is the lock-free-scrape regression
// test: /metrics and /v1/stats must answer from mirrors while the event
// loop is wedged (they used to round-trip the loop and 503), and /healthz
// must report the stall with a 503 instead of hanging.
func TestScrapeEndpointsSurviveWedgedLoop(t *testing.T) {
	s, ts, c := newTestServer(t, Config{
		Algorithm: surge.CellCSPOT, Options: testOptions(2), TimePolicy: Clamp,
	})
	ctx := context.Background()
	if _, err := c.Ingest(ctx, testObjects(71, 300, 6)); err != nil {
		t.Fatal(err)
	}
	s.healthTimeout = 50 * time.Millisecond

	// Wedge the loop: the closure holds it until the test ends.
	block := make(chan struct{})
	started := make(chan struct{})
	go s.do(func() { close(started); <-block })
	<-started
	defer close(block)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var body bytes.Buffer
	body.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics with a wedged loop returned %d, want 200", resp.StatusCode)
	}
	for _, want := range []string{
		"surge_objects_ingested_total 300",
		"surge_build_info{version=",
		"surge_ingest_ack_seconds{quantile=\"0.5\"}",
		"surge_runtime_goroutines",
	} {
		if !strings.Contains(body.String(), want) {
			t.Fatalf("wedged /metrics missing %q:\n%s", want, body.String())
		}
	}

	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st client.StatsSnapshot
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || err != nil {
		t.Fatalf("/v1/stats with a wedged loop: status %d, decode err %v", resp.StatusCode, err)
	}
	if st.Objects != 300 || st.Shards != 2 || st.IngestAck.Count == 0 {
		t.Fatalf("wedged /v1/stats served stale or empty state: %+v", st)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h client.Health
	err = json.NewDecoder(resp.Body).Decode(&h)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || err != nil {
		t.Fatalf("/healthz with a wedged loop: status %d, decode err %v", resp.StatusCode, err)
	}
	if h.OK || !strings.Contains(h.Err, "stalled") {
		t.Fatalf("wedged /healthz = %+v, want OK=false with a stalled-loop error", h)
	}
	// Mirror values still describe the last loop-published state.
	if h.Shards != 2 || h.Live == 0 {
		t.Fatalf("wedged /healthz lost the mirror state: %+v", h)
	}
}

// TestTrafficPopulatesHistograms drives ingest and SSE traffic and asserts
// the pipeline histograms report it in both renderings: quantile series in
// the Prometheus text and non-empty typed summaries in /v1/stats.
func TestTrafficPopulatesHistograms(t *testing.T) {
	s, _, c := newTestServer(t, Config{
		Algorithm: surge.CellCSPOT, Options: testOptions(2),
		TimePolicy: Clamp, BatchSize: 64,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	sub, err := c.Subscribe(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if _, err := c.Ingest(ctx, testObjects(72, 1000, 6)); err != nil {
		t.Fatal(err)
	}
	select {
	case <-sub.Events():
	case <-ctx.Done():
		t.Fatal("no SSE event for a bursty stream")
	}
	// The SSE handler records delivery after flushing to the client, so the
	// count can trail the receive by a scheduling beat.
	deadline := time.Now().Add(5 * time.Second)
	for s.mSSEDeliver.Count() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	// Force one lag-probe sample instead of waiting out the ticker; the
	// empty do() barriers until the probe's closure has run.
	s.probeLag()
	if err := s.do(func() {}); err != nil {
		t.Fatal(err)
	}

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		name string
		h    client.HistogramStats
	}{
		{"ingest_ack", st.IngestAck},
		{"ingest_parse", st.IngestParse},
		{"ingest_batch_objects", st.IngestBatch},
		{"loop_queue_wait", st.LoopQueueWait},
		{"loop_apply", st.LoopApply},
		{"loop_lag", st.LoopLag},
		{"sse_delivery", st.SSEDelivery},
		{"shard_flush_events", st.ShardFlush},
		{"shard_barrier_wait", st.ShardBarrier},
	}
	for _, ck := range checks {
		if ck.h.Count == 0 {
			t.Errorf("/v1/stats %s histogram empty after traffic", ck.name)
		}
		if ck.h.P50 < 0 || ck.h.P99 < ck.h.P50 || ck.h.P999 < ck.h.P99 || ck.h.Max < ck.h.P999 {
			t.Errorf("/v1/stats %s quantiles not monotone: %+v", ck.name, ck.h)
		}
	}
	if st.IngestAck.P50 <= 0 || st.IngestAck.P999 <= 0 {
		t.Errorf("ingest-ack quantiles not positive: %+v", st.IngestAck)
	}
	if st.Objects != 1000 || st.Batches == 0 || st.LastIngestAgeSec < 0 {
		t.Errorf("stats counters wrong: %+v", st)
	}
	if st.Runtime.Goroutines == 0 || st.Runtime.HeapBytes == 0 {
		t.Errorf("runtime block empty: %+v", st.Runtime)
	}

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"surge_ingest_ack_seconds{quantile=\"0.5\"}",
		"surge_ingest_ack_seconds{quantile=\"0.999\"}",
		"surge_ingest_ack_seconds_count",
		"surge_loop_lag_seconds{quantile=\"0.99\"}",
		"surge_sse_delivery_seconds{quantile=\"0.5\"}",
		"surge_shard_flush_events{quantile=\"0.5\"}",
		"surge_build_info{version=",
		"surge_last_ingest_age_seconds",
		"surge_runtime_gc_pause_seconds{quantile=\"0.99\"}",
	} {
		if !strings.Contains(m, want) {
			t.Fatalf("metrics missing %q", want)
		}
	}

	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Version == "" || h.GoVersion == "" {
		t.Errorf("health missing build info: %+v", h)
	}
	if h.LastIngestAgeSec < 0 || h.LastIngestAgeSec > 60 {
		t.Errorf("health last-ingest age %v, want a small positive age", h.LastIngestAgeSec)
	}
}

// TestHealthLastIngestAgeBeforeTraffic: -1 means "never ingested".
func TestHealthLastIngestAgeBeforeTraffic(t *testing.T) {
	_, _, c := newTestServer(t, Config{
		Algorithm: surge.CellCSPOT, Options: testOptions(1), TimePolicy: Clamp,
	})
	h, err := c.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.LastIngestAgeSec != -1 {
		t.Fatalf("pre-ingest last_ingest_age_sec = %v, want -1", h.LastIngestAgeSec)
	}
}

// TestIngestSteadyStateAllocs guards the zero-allocation ingest contract
// with the instrumentation ON: the steady-state HTTP ingest path must stay
// well under one heap allocation per object (per-request and per-chunk
// overheads amortize across the body; the recording sites themselves must
// contribute zero).
func TestIngestSteadyStateAllocs(t *testing.T) {
	s, err := New(Config{
		Algorithm: surge.CellCSPOT, Options: testOptions(2),
		TimePolicy: Clamp, BatchSize: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	objs := testObjects(73, 2048, 6)
	var buf bytes.Buffer
	if err := client.EncodeNDJSON(&buf, objs); err != nil {
		t.Fatal(err)
	}
	body := buf.Bytes()
	run := func() int {
		req := httptest.NewRequest(http.MethodPost, "/v1/ingest", bytes.NewReader(body))
		req.Header.Set("Content-Type", client.NDJSON)
		rr := httptest.NewRecorder()
		s.handleIngest(rr, req)
		return rr.Code
	}
	// Warm the pools (chunk buffers, parser scratch) before measuring.
	for i := 0; i < 2; i++ {
		if code := run(); code != http.StatusOK {
			t.Fatalf("warm-up ingest returned %d", code)
		}
	}
	allocs := testing.AllocsPerRun(3, func() {
		if code := run(); code != http.StatusOK {
			panic("ingest failed during alloc measurement")
		}
	})
	perObj := allocs / float64(len(objs))
	if perObj > 0.5 {
		t.Fatalf("steady-state ingest allocates %.3f allocs/obj (%.0f per request), want < 0.5 with instrumentation on",
			perObj, allocs)
	}
	t.Logf("steady-state ingest: %.3f allocs/obj (%.0f per %d-object request)", perObj, allocs, len(objs))
}
