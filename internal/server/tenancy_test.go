package server

import (
	"context"
	"encoding/binary"
	"errors"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"surge"
	"surge/client"
	"surge/internal/wal"
)

// queryAPI is the read surface shared by a Client (legacy single-query
// paths) and a Query handle (/v1/queries/{id}/ paths), so equivalence
// assertions can mix both.
type queryAPI interface {
	Best(ctx context.Context) (*client.State, error)
	TopK(ctx context.Context, k int) (*client.TopK, error)
}

// assertQueriesAgree asserts got and want serve bitwise-identical answers:
// /best (result, clock, live) and the full /topk.
func assertQueriesAgree(t *testing.T, label string, got, want queryAPI) {
	t.Helper()
	ctx := context.Background()
	g, err := got.Best(ctx)
	if err != nil {
		t.Fatalf("%s: best: %v", label, err)
	}
	w, err := want.Best(ctx)
	if err != nil {
		t.Fatalf("%s: ref best: %v", label, err)
	}
	if !reflect.DeepEqual(g.Result, w.Result) || g.Now != w.Now || g.Live != w.Live {
		t.Fatalf("%s: best diverged:\ngot  (%+v, now=%v, live=%d)\nwant (%+v, now=%v, live=%d)",
			label, g.Result, g.Now, g.Live, w.Result, w.Now, w.Live)
	}
	gtk, err := got.TopK(ctx, 0)
	if err != nil {
		t.Fatalf("%s: topk: %v", label, err)
	}
	wtk, err := want.TopK(ctx, 0)
	if err != nil {
		t.Fatalf("%s: ref topk: %v", label, err)
	}
	if !reflect.DeepEqual(gtk.Results, wtk.Results) {
		t.Fatalf("%s: topk diverged:\ngot  %+v\nwant %+v", label, gtk.Results, wtk.Results)
	}
}

// TestMultiQueryMatchesIndependentServers is the tenancy consistency
// guarantee: every query of a multi-query server answers bitwise
// identically to an independent single-query server of the same
// configuration fed the same stream with the same batch boundaries — for
// the default query, a boot-declared query of different geometry, a twin
// sharing the default's engine slot, and a query created mid-stream at
// runtime. A mid-stream checkpoint/restore round trip (which unshares the
// twin) must preserve the equivalence.
func TestMultiQueryMatchesIndependentServers(t *testing.T) {
	for _, shards := range []int{1, 2, 4} {
		t.Run("shards="+strconv.Itoa(shards), func(t *testing.T) {
			const batch = 64
			objs := testObjects(400+uint64(shards), 1200, 6)
			half := len(objs) / 2

			mcfg := Config{
				Algorithm: surge.CellCSPOT, Options: testOptions(shards),
				BatchSize: batch, TimePolicy: Clamp,
				Queries: []client.QueryConfig{
					{ID: "wide", Width: 2, Window: 45, Shards: shards},
					{ID: "twin", Shards: shards},
				},
			}
			ms, _, mc := newTestServer(t, mcfg)

			base := Config{Algorithm: surge.CellCSPOT, Options: testOptions(shards), BatchSize: batch, TimePolicy: Clamp}
			_, _, refDef := newTestServer(t, base)
			wideCfg := base
			wideCfg.Options.Width = 2
			wideCfg.Options.Window = 45
			_, _, refWide := newTestServer(t, wideCfg)

			// The twin must share the default's engine slot at boot.
			if len(ms.slots) != 2 {
				t.Fatalf("boot built %d engine slots for 3 queries (default+twin shared, wide private), want 2", len(ms.slots))
			}
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			info, err := mc.Query("twin").Info(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if !info.Shared {
				t.Fatal("twin does not report its engine slot as shared")
			}

			streamBatches(t, mc, objs[:half], batch)
			streamBatches(t, refDef, objs[:half], batch)
			streamBatches(t, refWide, objs[:half], batch)
			assertQueriesAgree(t, "default vs independent (first half)", mc, refDef)
			assertQueriesAgree(t, "wide vs independent (first half)", mc.Query("wide"), refWide)
			assertQueriesAgree(t, "twin vs independent (first half)", mc.Query("twin"), refDef)

			// Runtime create: a fresh query and a fresh independent server see
			// only the second half and must agree on it.
			if _, err := mc.CreateQuery(ctx, client.QueryConfig{ID: "late", Shards: shards}); err != nil {
				t.Fatal(err)
			}
			_, _, refLate := newTestServer(t, base)

			// Checkpoint/restore round trip, crossing the server boundary both
			// ways: the tenant restores the independent server's state and vice
			// versa. Restoring the twin unshares it from the default slot.
			ck, err := refWide.Snapshot(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := mc.Query("wide").Restore(ctx, ck); err != nil {
				t.Fatal(err)
			}
			tck, err := mc.Query("twin").Snapshot(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := mc.Query("twin").Restore(ctx, tck); err != nil {
				t.Fatal(err)
			}
			if len(ms.slots) != 4 {
				t.Fatalf("after unsharing restore: %d engine slots, want 4", len(ms.slots))
			}

			streamBatches(t, mc, objs[half:], batch)
			streamBatches(t, refDef, objs[half:], batch)
			streamBatches(t, refWide, objs[half:], batch)
			streamBatches(t, refLate, objs[half:], batch)
			assertQueriesAgree(t, "default vs independent (full)", mc, refDef)
			assertQueriesAgree(t, "wide vs independent (after cross-restore)", mc.Query("wide"), refWide)
			assertQueriesAgree(t, "twin vs independent (after unshare)", mc.Query("twin"), refDef)
			assertQueriesAgree(t, "late vs independent (tail only)", mc.Query("late"), refLate)
		})
	}
}

// TestQueryRegistryCRUD drives the registry lifecycle over the wire:
// create, list, info, duplicate rejection, deletion, and the 404
// unknown_query contract after deletion.
func TestQueryRegistryCRUD(t *testing.T) {
	_, _, c := newTestServer(t, Config{Algorithm: surge.CellCSPOT, Options: testOptions(1)})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	info, err := c.CreateQuery(ctx, client.QueryConfig{ID: "ops", Width: 2, TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	if info.ID != "ops" || info.Width != 2 || info.TopK != 3 || info.Default {
		t.Fatalf("created query info %+v", info)
	}
	if info.Algorithm != surge.CellCSPOT.String() {
		t.Fatalf("created query did not inherit the algorithm: %q", info.Algorithm)
	}

	// Duplicate create → 409; the default id is always taken.
	for _, id := range []string{"ops", "default"} {
		_, err := c.CreateQuery(ctx, client.QueryConfig{ID: id})
		var werr *client.Error
		if !errors.As(err, &werr) || werr.Status != http.StatusConflict {
			t.Fatalf("duplicate create %q = %v, want 409", id, err)
		}
	}
	// Invalid ids and configs → 400.
	for _, qc := range []client.QueryConfig{
		{ID: ""}, {ID: "no/slash"}, {ID: strings.Repeat("x", 65)},
		{ID: "badalg", Algorithm: "nope"}, {ID: "badk", TopK: -1},
	} {
		_, err := c.CreateQuery(ctx, qc)
		var werr *client.Error
		if !errors.As(err, &werr) || werr.Status != http.StatusBadRequest {
			t.Fatalf("create %+v = %v, want 400", qc, err)
		}
	}

	ql, err := c.Queries(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(ql.Queries) != 2 || ql.Queries[0].ID != DefaultQueryID || !ql.Queries[0].Default || ql.Queries[1].ID != "ops" {
		t.Fatalf("query list %+v, want [default, ops]", ql.Queries)
	}

	// The named query serves its own read surface.
	if _, err := c.Query("ops").Best(ctx); err != nil {
		t.Fatal(err)
	}
	if st, err := c.Query("ops").Stats(ctx); err != nil || st.ID != "ops" {
		t.Fatalf("ops stats = %+v, %v", st, err)
	}

	// Deleting the default is rejected; deleting ops works and later
	// requests fail with the typed 404.
	if err := c.Query(DefaultQueryID).Delete(ctx); err == nil {
		t.Fatal("deleting the default query succeeded")
	}
	if err := c.Query("ops").Delete(ctx); err != nil {
		t.Fatal(err)
	}
	for _, probe := range []func() error{
		func() error { _, err := c.Query("ops").Best(ctx); return err },
		func() error { _, err := c.Query("ops").Stats(ctx); return err },
		func() error { _, err := c.Query("ops").Info(ctx); return err },
		func() error { return c.Query("ops").Delete(ctx) },
		func() error { _, err := c.Query("ops").Subscribe(ctx); return err },
	} {
		err := probe()
		if !errors.Is(err, client.ErrUnknownQuery) {
			t.Fatalf("request to a deleted query = %v, want ErrUnknownQuery", err)
		}
		var werr *client.Error
		if !errors.As(err, &werr) || werr.Status != http.StatusNotFound || werr.Code != client.CodeUnknownQuery {
			t.Fatalf("deleted-query error = %+v, want 404 %s", err, client.CodeUnknownQuery)
		}
	}
}

// TestTenantIsolationSlowConsumer pins the SSE isolation guarantee: a
// subscriber of one query that never drains its buffer loses only its own
// frames — a subscriber of another query (even one sharing the engine slot)
// receives every notification with a zero drop account.
func TestTenantIsolationSlowConsumer(t *testing.T) {
	s, _, c := newTestServer(t, Config{
		Algorithm: surge.CellCSPOT, Options: testOptions(1),
		BatchSize: 1, TimePolicy: Strict, SubscriberBuffer: 8,
		Queries: []client.QueryConfig{{ID: "slowq"}, {ID: "fastq"}},
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Plant the subscribers directly in the hubs so the outcome is
	// deterministic: slowq's never drains a 1-slot buffer, fastq's holds
	// more frames than the stream can publish.
	stuck := &subscriber{ch: make(chan frame, 1)}
	roomy := &subscriber{ch: make(chan frame, 1024)}
	s.tenMu.RLock()
	s.tenants["slowq"].hub.add(stuck)
	s.tenants["fastq"].hub.add(roomy)
	s.tenMu.RUnlock()

	// One object per batch at one growing point: every batch changes the
	// answer, one notification per object.
	const n = 120
	objs := make([]surge.Object, n)
	for i := range objs {
		objs[i] = surge.Object{X: 2, Y: 2, Weight: 5, Time: float64(i)}
	}
	if _, err := c.Ingest(ctx, objs); err != nil {
		t.Fatal(err)
	}

	slow, err := c.Query("slowq").Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := c.Query("fastq").Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if slow.Dropped == 0 {
		t.Fatal("stuck subscriber reported no drops; the test did not exercise the slow-consumer path")
	}
	if fast.Dropped != 0 {
		t.Fatalf("fastq charged %d drops for slowq's stuck subscriber", fast.Dropped)
	}
	// The roomy subscriber must hold every burst notification of its query,
	// in order, each with a zero drop account.
	var got uint64
	for done := false; !done; {
		select {
		case f := <-roomy.ch:
			if f.topk {
				continue
			}
			got++
			if f.dropped() != 0 {
				t.Fatalf("fastq frame seq %d carries dropped=%d", f.burst.Seq, f.dropped())
			}
			if f.burst.Seq != got {
				t.Fatalf("fastq notification gap: seq %d after %d delivered", f.burst.Seq, got-1)
			}
		default:
			done = true
		}
	}
	if got != fast.Notifications {
		t.Fatalf("fastq delivered %d notifications, published %d", got, fast.Notifications)
	}
}

// TestTenantIsolationEngineError poisons one query's engine — a restore
// puts its stream clock far ahead, so strict-policy ingest is out of order
// for it alone — and asserts the blast radius: that query serves its stale
// answer and reports the error in its stats, while ingest stays acked and
// the other queries keep advancing.
func TestTenantIsolationEngineError(t *testing.T) {
	_, _, c := newTestServer(t, Config{
		Algorithm: surge.CellCSPOT, Options: testOptions(1),
		BatchSize: 32, TimePolicy: Strict,
		Queries: []client.QueryConfig{{ID: "poisoned"}},
	})
	_, _, ref := newTestServer(t, Config{
		Algorithm: surge.CellCSPOT, Options: testOptions(1),
		BatchSize: 32, TimePolicy: Strict,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	objs := testObjects(77, 600, 4)
	streamBatches(t, c, objs[:300], 32)
	streamBatches(t, ref, objs[:300], 32)

	// Build a checkpoint whose clock is beyond the whole test stream and
	// restore it into the poisoned query only.
	far, err := surge.New(surge.CellCSPOT, testOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	defer far.Close()
	if _, err := far.PushBatch([]surge.Object{{X: 1, Y: 1, Weight: 1, Time: 1e9}}); err != nil {
		t.Fatal(err)
	}
	farCk, err := far.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query("poisoned").Restore(ctx, farCk); err != nil {
		t.Fatal(err)
	}
	stale, err := c.Query("poisoned").Best(ctx)
	if err != nil {
		t.Fatal(err)
	}

	// Every further batch is out of order for the poisoned query and in
	// order for the default: ingest must keep acking (at least one query
	// applied it) and the default must stay bitwise equal to the reference.
	streamBatches(t, c, objs[300:], 32)
	streamBatches(t, ref, objs[300:], 32)
	assertQueriesAgree(t, "default beside a failing tenant", c, ref)

	qs, err := c.Query("poisoned").Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if qs.Err == "" || !strings.Contains(qs.Err, "out-of-order") {
		t.Fatalf("poisoned query stats err = %q, want the out-of-order window error", qs.Err)
	}
	after, err := c.Query("poisoned").Best(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(after.Result, stale.Result) || after.Now != stale.Now {
		t.Fatalf("poisoned query's answer moved under failing ingest: %+v -> %+v", stale, after)
	}
}

// TestQuerySubscriberQuota pins the per-query subscriber cap: the quota
// rejects the subscriber over the limit with 429 quota_exceeded, counts per
// query (a full query does not block another), and frees on disconnect.
func TestQuerySubscriberQuota(t *testing.T) {
	_, _, c := newTestServer(t, Config{
		Algorithm: surge.CellCSPOT, Options: testOptions(1),
		QueryMaxSubscribers: 1,
		Queries:             []client.QueryConfig{{ID: "other"}},
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	sub, err := c.Subscribe(ctx)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Subscribe(ctx)
	if !errors.Is(err, client.ErrQuotaExceeded) {
		t.Fatalf("second subscriber = %v, want ErrQuotaExceeded", err)
	}
	var werr *client.Error
	if !errors.As(err, &werr) || werr.Status != http.StatusTooManyRequests || werr.Code != client.CodeQuotaExceeded {
		t.Fatalf("quota error = %+v, want 429 %s", err, client.CodeQuotaExceeded)
	}
	// The quota is per query: another query still accepts a subscriber.
	osub, err := c.Query("other").Subscribe(ctx)
	if err != nil {
		t.Fatalf("other query's subscriber rejected by default's quota: %v", err)
	}
	osub.Close()
	// Disconnecting frees the slot.
	sub.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		sub2, err := c.Subscribe(ctx)
		if err == nil {
			sub2.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("subscriber slot never freed: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDurableMultiQueryRecovery pins tenant-aware durability: a crash
// (kill, no shutdown checkpoint) recovers the whole registry — boot-time
// queries, a query created at runtime mid-stream, their engine states and
// the WAL tail — bitwise equal to a never-crashed multi-query server fed
// the same sequence. A deleted query must stay deleted across the crash.
func TestDurableMultiQueryRecovery(t *testing.T) {
	objs := testObjects(31, 900, 4)
	cfg := Config{
		Options: testOptions(2), BatchSize: 64,
		Queries: []client.QueryConfig{{ID: "boot", Width: 2, Shards: 2}},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	dir := t.TempDir()
	s1, ts1, c1 := newDurableTestServer(t, dir, cfg, DurableConfig{Sync: wal.SyncOff})
	streamBatches(t, c1, objs[:300], 50)
	// The runtime create checkpoints the registry synchronously, so the
	// acknowledged query must exist after the crash.
	if _, err := c1.CreateQuery(ctx, client.QueryConfig{ID: "live", Window: 45, Shards: 2}); err != nil {
		t.Fatal(err)
	}
	streamBatches(t, c1, objs[300:600], 50)
	ts1.Close()
	s1.Close() // crash: the post-create stream exists only in the WAL

	// Never-crashed reference fed the identical sequence.
	_, _, ref := newTestServer(t, cfg)
	streamBatches(t, ref, objs[:300], 50)
	if _, err := ref.CreateQuery(ctx, client.QueryConfig{ID: "live", Window: 45, Shards: 2}); err != nil {
		t.Fatal(err)
	}
	streamBatches(t, ref, objs[300:600], 50)

	s2, ts2, c2 := newDurableTestServer(t, dir, cfg, DurableConfig{Sync: wal.SyncOff})
	ql, err := c2.Queries(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for _, q := range ql.Queries {
		ids = append(ids, q.ID)
	}
	if !reflect.DeepEqual(ids, []string{DefaultQueryID, "boot", "live"}) {
		t.Fatalf("recovered registry %v, want [default boot live]", ids)
	}
	assertQueriesAgree(t, "default after crash", c2, ref)
	assertQueriesAgree(t, "boot query after crash", c2.Query("boot"), ref.Query("boot"))
	assertQueriesAgree(t, "runtime query after crash", c2.Query("live"), ref.Query("live"))

	// The recovered registry keeps answering the continuing stream in
	// lockstep with the reference.
	streamBatches(t, c2, objs[600:], 50)
	streamBatches(t, ref, objs[600:], 50)
	assertQueriesAgree(t, "default after recovery + tail", c2, ref)
	assertQueriesAgree(t, "runtime query after recovery + tail", c2.Query("live"), ref.Query("live"))

	// Delete + crash: the delete's checkpoint keeps the id dead at boot.
	if err := c2.Query("live").Delete(ctx); err != nil {
		t.Fatal(err)
	}
	ts2.Close()
	s2.Close()
	_, _, c3 := newDurableTestServer(t, dir, cfg, DurableConfig{Sync: wal.SyncOff})
	ql, err = c3.Queries(ctx)
	if err != nil {
		t.Fatal(err)
	}
	ids = ids[:0]
	for _, q := range ql.Queries {
		ids = append(ids, q.ID)
	}
	if !reflect.DeepEqual(ids, []string{DefaultQueryID, "boot"}) {
		t.Fatalf("registry after deleted-query crash %v, want [default boot]", ids)
	}
	if _, err := c3.Query("live").Best(ctx); !errors.Is(err, client.ErrUnknownQuery) {
		t.Fatalf("deleted query resurrected after crash: %v", err)
	}
}

// TestDurableV1CheckpointCompat boots the multi-query server from a
// pre-registry ("SURGEDC1") checkpoint file: the single detector blob must
// seed the default query, and the next persisted checkpoint upgrades the
// file to the registry format.
func TestDurableV1CheckpointCompat(t *testing.T) {
	objs := testObjects(53, 400, 4)
	cfg := Config{Options: testOptions(1), BatchSize: 64}

	// Reference detector state, checkpointed the way v1 servers did.
	_, _, ref := newTestServer(t, cfg)
	streamBatches(t, ref, objs[:300], 50)
	ck, err := ref.Snapshot(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	v1 := append([]byte{}, ckptMagicV1[:]...)
	v1 = binary.LittleEndian.AppendUint64(v1, 0)
	v1 = binary.LittleEndian.AppendUint32(v1, 2)
	v1 = append(v1, '{', '}')
	v1 = binary.LittleEndian.AppendUint32(v1, uint32(len(ck)))
	v1 = append(v1, ck...)
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "surge.ckpt"), v1, 0o644); err != nil {
		t.Fatal(err)
	}

	s, _, c := newDurableTestServer(t, dir, cfg, DurableConfig{Sync: wal.SyncOff})
	streamBatches(t, c, objs[300:], 50)
	streamBatches(t, ref, objs[300:], 50)
	assertQueriesAgree(t, "default from v1 checkpoint", c, ref)
	if _, err := s.Shutdown(); err != nil {
		t.Fatal(err)
	}
	ck2, err := readDurableCheckpoint(filepath.Join(dir, "surge.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if ck2.metas == nil || len(ck2.metas) != 1 || ck2.metas[0].ID != DefaultQueryID {
		t.Fatalf("shutdown did not upgrade the checkpoint to the registry format: %+v", ck2.metas)
	}
}

// TestMultiQueryMetricsAndStats spot-checks the per-query observability
// surface: labelled series on /metrics for every registered query and the
// per-query rows of /v1/stats.
func TestMultiQueryMetricsAndStats(t *testing.T) {
	_, ts, c := newTestServer(t, Config{
		Algorithm: surge.CellCSPOT, Options: testOptions(1),
		Queries: []client.QueryConfig{{ID: "ops"}},
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := c.Ingest(ctx, testObjects(5, 200, 4)); err != nil {
		t.Fatal(err)
	}

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Queries) != 2 || st.Queries[0].ID != DefaultQueryID || st.Queries[1].ID != "ops" {
		t.Fatalf("stats queries = %+v, want rows for default and ops", st.Queries)
	}
	for _, q := range st.Queries {
		if q.Now == 0 || q.Live == 0 {
			t.Fatalf("query %q stats row not populated: %+v", q.ID, q)
		}
	}
	if h, err := c.Health(ctx); err != nil {
		t.Fatal(err)
	} else if h.Queries != 2 {
		t.Fatalf("health queries = %d, want 2", h.Queries)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		"surge_queries 2",
		`surge_query_stream_time{query="default"}`,
		`surge_query_stream_time{query="ops"}`,
		`surge_query_live_objects{query="ops"}`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}
}
