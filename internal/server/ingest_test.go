package server

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"

	"surge"
)

// collect parses a body with the given parser and gathers the emitted
// objects.
func collect(t *testing.T, parse func(r *bytes.Reader, emit func(surge.Object) error) error, body string) ([]surge.Object, error) {
	t.Helper()
	var out []surge.Object
	err := parse(bytes.NewReader([]byte(body)), func(o surge.Object) error {
		out = append(out, o)
		return nil
	})
	return out, err
}

func ndjson(r *bytes.Reader, emit func(surge.Object) error) error { return parseNDJSON(r, emit) }
func csv(r *bytes.Reader, emit func(surge.Object) error) error    { return parseCSV(r, emit) }

// TestParseObjectJSONMatchesEncodingJSON drives the fast scanner and the
// reflective slow path over the same inputs: both must accept the same
// lines and produce identical objects, since the fast path is only allowed
// to diverge by falling back.
func TestParseObjectJSONMatchesEncodingJSON(t *testing.T) {
	cases := []string{
		`{"time":1,"x":2,"y":3,"weight":4}`,
		`{"time":1,"x":2,"y":3}`,                             // weight defaults to 1
		`{ "time" : 1.5 , "x" : -2e3 , "y" : 3.25e-2 }`,      // whitespace + exponents
		`{"x":2,"y":3,"time":1}`,                             // field order
		`{"time":0,"x":-0,"y":0.0,"weight":0}`,               // zeros
		`{"time":1,"x":2,"y":3,"weight":4,"time":9}`,         // duplicate key: last wins
		`{"time":1,"x":2,"y":3,"weight":null}`,               // null resets to default
		`{"time":null,"x":2,"y":3}`,                          // null required field
		`{"time":1,"x":2}`,                                   // missing y
		`{}`,                                                 // empty object
		`{"time":1,"x":2,"y":3,"extra":"zzz"}`,               // unknown key (slow path)
		`{"time":1,"x":2,"y":3,"extra":{"nested":[1,2]}}`,    // nested unknown
		`{"time":"1","x":2,"y":3}`,                           // wrong type
		`{"time":1e999,"x":2,"y":3}`,                         // out of range
		`{"time":01,"x":2,"y":3}`,                            // invalid JSON number
		`{"time":+1,"x":2,"y":3}`,                            // '+' not JSON
		`{"time":1.,"x":2,"y":3}`,                            // bare fraction dot
		`{"time":1,"x":2,"y":3} trailing`,                    // trailing garbage
		`["time",1]`,                                         // not an object
		`{"time":1,"x":2,"y":3,"weight":2.5000000000000004}`, // round-trip bits
		`{"tim\u0065":1,"x":2,"y":3}`,                        // escaped key (slow path)
	}
	for _, line := range cases {
		fast, fastErr := parseObjectJSON([]byte(line))
		slow, slowErr := slowObjectJSON([]byte(line))
		if (fastErr == nil) != (slowErr == nil) {
			t.Fatalf("%s: fast err %v, slow err %v", line, fastErr, slowErr)
		}
		if fastErr != nil {
			continue
		}
		if fast != slow {
			t.Fatalf("%s: fast %+v != slow %+v", line, fast, slow)
		}
	}
}

func TestParseNDJSON(t *testing.T) {
	body := `{"time":1,"x":2,"y":3}

{"time":2,"x":4,"y":5,"weight":0.5}
`
	objs, err := collect(t, ndjson, body)
	if err != nil {
		t.Fatal(err)
	}
	want := []surge.Object{
		{Time: 1, X: 2, Y: 3, Weight: 1},
		{Time: 2, X: 4, Y: 5, Weight: 0.5},
	}
	if len(objs) != len(want) {
		t.Fatalf("got %d objects, want %d", len(objs), len(want))
	}
	for i := range want {
		if objs[i] != want[i] {
			t.Fatalf("object %d: got %+v want %+v", i, objs[i], want[i])
		}
	}

	if _, err := collect(t, ndjson, `{"time":1,"x":2,"y":3}`+"\n"+`{"x":1}`); err == nil ||
		!strings.Contains(err.Error(), "line 2") {
		t.Fatalf("missing-field error should carry the line number, got %v", err)
	}
}

func TestParseCSV(t *testing.T) {
	body := "# header comment\n1,2,3,4\n 2 , 4 , 5 , 0.5 \n"
	objs, err := collect(t, csv, body)
	if err != nil {
		t.Fatal(err)
	}
	want := []surge.Object{
		{Time: 1, X: 2, Y: 3, Weight: 4},
		{Time: 2, X: 4, Y: 5, Weight: 0.5},
	}
	if len(objs) != len(want) {
		t.Fatalf("got %d objects, want %d", len(objs), len(want))
	}
	for i := range want {
		if objs[i] != want[i] {
			t.Fatalf("object %d: got %+v want %+v", i, objs[i], want[i])
		}
	}
	for _, bad := range []string{"1,2,3\n", "1,2,3,4,5\n", "1,x,3,4\n"} {
		if _, err := collect(t, csv, bad); err == nil {
			t.Fatalf("want error for %q", bad)
		}
	}
}

// TestParseLineTooLong exercises the bufio.ErrTooLong satellite fix: an
// oversized line must be reported with its line number and an actionable
// message, not bufio's bare "token too long".
func TestParseLineTooLong(t *testing.T) {
	long := strings.Repeat("9", maxLineBytes+10)
	for name, parse := range map[string]func(r *bytes.Reader, emit func(surge.Object) error) error{
		"ndjson": ndjson, "csv": csv,
	} {
		body := "1,2,3,4\n1,2,3," + long + "\n"
		if name == "ndjson" {
			body = `{"time":1,"x":2,"y":3}` + "\n" + `{"time":1,"x":2,"y":` + long + `}` + "\n"
		}
		_, err := collect(t, func(r *bytes.Reader, emit func(surge.Object) error) error { return parse(r, emit) }, body)
		if err == nil {
			t.Fatalf("%s: want error for oversized line", name)
		}
		if !errors.Is(err, bufio.ErrTooLong) {
			t.Fatalf("%s: error should wrap bufio.ErrTooLong, got %v", name, err)
		}
		if !strings.Contains(err.Error(), "line 2") {
			t.Fatalf("%s: error should name line 2, got %v", name, err)
		}
	}
}

// TestParseObjectJSONZeroAlloc is the allocation-regression guard for the
// NDJSON fast path: decoding one canonical wire line must not touch the
// heap.
func TestParseObjectJSONZeroAlloc(t *testing.T) {
	line := []byte(`{"time":1747.25,"x":-73.98211,"y":40.767937,"weight":2.5}`)
	allocs := testing.AllocsPerRun(1000, func() {
		o, err := parseObjectJSON(line)
		if err != nil || o.Weight != 2.5 {
			t.Fatal("bad parse")
		}
	})
	if allocs != 0 {
		t.Fatalf("parseObjectJSON allocates %v allocs/op, want 0", allocs)
	}
}

// TestParseNDJSONAmortizedAllocs checks the whole streaming parser: over a
// large body the per-request scanner setup is the only heap traffic, so the
// per-line average must be (amortised) zero.
func TestParseNDJSONAmortizedAllocs(t *testing.T) {
	var buf bytes.Buffer
	const lines = 4096
	for i := 0; i < lines; i++ {
		fmt.Fprintf(&buf, `{"time":%d,"x":%g,"y":%g,"weight":1}`+"\n", i, math.Sqrt(float64(i)), float64(i)*0.25)
	}
	body := buf.Bytes()
	r := bytes.NewReader(body)
	var n int
	allocs := testing.AllocsPerRun(10, func() {
		r.Reset(body)
		n = 0
		if err := parseNDJSON(r, func(o surge.Object) error { n++; return nil }); err != nil {
			t.Fatal(err)
		}
	})
	if n != lines {
		t.Fatalf("parsed %d lines, want %d", n, lines)
	}
	if perLine := allocs / lines; perLine > 0.01 {
		t.Fatalf("parseNDJSON allocates %v allocs/line (%v per request), want amortised 0", perLine, allocs)
	}
}

func TestIngestChunkPoolReuse(t *testing.T) {
	s := &Server{batch: 8}
	s.chunkPool.New = func() any {
		c := make([]surge.Object, 0, s.batch)
		return &c
	}
	c := s.getChunk()
	*c = append(*c, surge.Object{Time: 1})
	s.putChunk(c)
	c2 := s.getChunk()
	if len(*c2) != 0 || cap(*c2) != 8 {
		t.Fatalf("recycled chunk has len %d cap %d, want 0/8", len(*c2), cap(*c2))
	}
}
