package server

import (
	"context"
	"math"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"surge"
	"surge/client"
)

// testObjects generates a bursty stream: background noise over [0,span)^2
// with periodic dense pulses near a hotspot, so the best region changes
// often enough to exercise the notification path.
func testObjects(seed uint64, n int, span float64) []surge.Object {
	rng := rand.New(rand.NewPCG(seed, seed+1))
	objs := make([]surge.Object, n)
	t := 0.0
	for i := range objs {
		t += rng.ExpFloat64() * 0.5
		o := surge.Object{
			X:      rng.Float64() * span,
			Y:      rng.Float64() * span,
			Weight: 1 + rng.Float64()*99,
			Time:   t,
		}
		if i%7 < 3 { // pulse: cluster near a drifting hotspot
			cx := 2 + math.Mod(t/40, 2)
			o.X = cx + rng.Float64()*0.4
			o.Y = 2 + rng.Float64()*0.4
		}
		objs[i] = o
	}
	return objs
}

func testOptions(shards int) surge.Options {
	return surge.Options{Width: 1, Height: 1, Window: 30, Alpha: 0.5, Shards: shards}
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server, *client.Client) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts, client.New(ts.URL)
}

// TestSSEMatchesOffline is the serving consistency guarantee: the SSE
// notification stream of a sharded server must match, bit for bit, the
// answer changes of a single-engine offline run over the same object
// sequence with the same batch boundaries.
func TestSSEMatchesOffline(t *testing.T) {
	const batch = 64
	objs := testObjects(11, 1500, 6)

	// Offline reference: single engine, same chunking, exact change log.
	off, err := surge.New(surge.CellCSPOT, testOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	defer off.Close()
	var want []surge.Result
	var last surge.Result
	for lo := 0; lo < len(objs); lo += batch {
		hi := min(lo+batch, len(objs))
		res, err := off.PushBatch(objs[lo:hi])
		if err != nil {
			t.Fatal(err)
		}
		if res != last {
			want = append(want, res)
			last = res
		}
	}
	if len(want) < 5 {
		t.Fatalf("weak test stream: only %d changes", len(want))
	}

	_, _, c := newTestServer(t, Config{
		Algorithm:  surge.CellCSPOT,
		Options:    testOptions(3),
		BatchSize:  batch,
		TimePolicy: Strict,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	sub, err := c.Subscribe(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if sub.Hello().Result.Found {
		t.Fatal("hello on an empty detector reported a region")
	}

	ing, err := c.Ingest(ctx, objs)
	if err != nil {
		t.Fatal(err)
	}
	if ing.Accepted != len(objs) {
		t.Fatalf("accepted %d objects, want %d", ing.Accepted, len(objs))
	}

	got := make([]client.Notification, 0, len(want))
	for len(got) < len(want) {
		select {
		case n, ok := <-sub.Events():
			if !ok {
				t.Fatalf("subscription closed early (err=%v) after %d/%d events", sub.Err(), len(got), len(want))
			}
			if n.Dropped != 0 {
				t.Fatalf("notification %d reports %d drops on an unloaded subscriber", n.Seq, n.Dropped)
			}
			got = append(got, n)
		case <-ctx.Done():
			t.Fatalf("timed out after %d/%d events", len(got), len(want))
		}
	}
	for i, n := range got {
		w := client.FromResult(want[i])
		if n.Result.Found != w.Found ||
			math.Float64bits(n.Result.Score) != math.Float64bits(w.Score) {
			t.Fatalf("event %d: score %v (found=%v) != offline %v (found=%v)",
				i, n.Result.Score, n.Result.Found, w.Score, w.Found)
		}
		// The pipeline guarantees bitwise score equality; when several
		// anchors tie on the maximum score, the reported rectangle may
		// legitimately differ from the single-engine choice, so only its
		// shape is checked.
		if w.Found {
			reg := *n.Result.Region
			if math.Abs(reg.MaxX-reg.MinX-1) > 1e-12 || math.Abs(reg.MaxY-reg.MinY-1) > 1e-12 {
				t.Fatalf("event %d: region %+v is not query-sized", i, reg)
			}
		}
		if n.Seq != uint64(i+1) {
			t.Fatalf("event %d: seq %d, want %d", i, n.Seq, i+1)
		}
	}
	// The server must not have published anything beyond the offline log.
	st, err := c.Best(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Seq != uint64(len(want)) {
		t.Fatalf("server seq %d != offline change count %d", st.Seq, len(want))
	}
}

// TestSnapshotRestoreResume round-trips a checkpoint through HTTP into a
// server with a different shard count and resumes both streams in
// lockstep.
func TestSnapshotRestoreResume(t *testing.T) {
	const batch = 50
	objs := testObjects(23, 1000, 6)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	_, _, c1 := newTestServer(t, Config{
		Algorithm: surge.CellCSPOT, Options: testOptions(2), BatchSize: batch, TimePolicy: Strict,
	})
	if _, err := c1.Ingest(ctx, objs[:600]); err != nil {
		t.Fatal(err)
	}
	ckpt, err := c1.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}

	_, _, c2 := newTestServer(t, Config{
		Algorithm: surge.CellCSPOT, Options: testOptions(3), BatchSize: batch, TimePolicy: Strict,
	})
	st, err := c2.Restore(ctx, ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if st.Shards != 3 {
		t.Fatalf("restored into %d shards, want the server's 3", st.Shards)
	}
	ref, err := c1.Best(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Live != ref.Live || math.Float64bits(st.Result.Score) != math.Float64bits(ref.Result.Score) {
		t.Fatalf("restored state %+v != source %+v", st, ref)
	}

	// Resume both servers with the same suffix; answers must stay
	// bitwise identical.
	for lo := 600; lo < len(objs); lo += batch {
		hi := min(lo+batch, len(objs))
		r1, err := c1.Ingest(ctx, objs[lo:hi])
		if err != nil {
			t.Fatal(err)
		}
		r2, err := c2.Ingest(ctx, objs[lo:hi])
		if err != nil {
			t.Fatal(err)
		}
		if r1.Result.Found != r2.Result.Found ||
			math.Float64bits(r1.Result.Score) != math.Float64bits(r2.Result.Score) {
			t.Fatalf("divergence after restore at objs[%d:%d]: %+v vs %+v", lo, hi, r1.Result, r2.Result)
		}
	}
}

// TestConcurrentIngesters drives four concurrent NDJSON ingesters into a
// sharded detector under the clamp policy (the acceptance scenario; run
// with -race).
func TestConcurrentIngesters(t *testing.T) {
	const ingesters = 4
	objs := testObjects(31, 4000, 6)
	_, _, c := newTestServer(t, Config{
		Algorithm:  surge.CellCSPOT,
		Options:    testOptions(4),
		BatchSize:  128,
		TimePolicy: Clamp,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	sub, err := c.Subscribe(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	go func() {
		for range sub.Events() { // drain so slow-consumer drops don't trigger
		}
	}()

	// Round-robin split: each ingester's slice is time-sorted; global
	// interleaving is arbitrary and absorbed by the clamp policy.
	var wg sync.WaitGroup
	accepted := make([]int, ingesters)
	errs := make([]error, ingesters)
	for g := 0; g < ingesters; g++ {
		var part []surge.Object
		for i := g; i < len(objs); i += ingesters {
			part = append(part, objs[i])
		}
		wg.Add(1)
		go func(g int, part []surge.Object) {
			defer wg.Done()
			// Several requests per ingester to exercise request framing
			// independent of batch framing.
			for lo := 0; lo < len(part); lo += 300 {
				hi := min(lo+300, len(part))
				res, err := c.Ingest(ctx, part[lo:hi])
				if err != nil {
					errs[g] = err
					return
				}
				accepted[g] += res.Accepted
			}
		}(g, part)
	}
	wg.Wait()
	total := 0
	for g := 0; g < ingesters; g++ {
		if errs[g] != nil {
			t.Fatalf("ingester %d: %v", g, errs[g])
		}
		total += accepted[g]
	}
	if total != len(objs) {
		t.Fatalf("accepted %d objects, want %d", total, len(objs))
	}
	h, err := c.Health(ctx)
	if err != nil || !h.OK {
		t.Fatalf("unhealthy after concurrent ingest: %+v, %v", h, err)
	}
	if h.Shards != 4 {
		t.Fatalf("serving %d shards, want 4", h.Shards)
	}
	st, err := c.Best(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Live == 0 {
		t.Fatal("no live objects after ingesting the stream")
	}
}

func TestIngestCSVAndDefaults(t *testing.T) {
	_, _, c := newTestServer(t, Config{
		Algorithm: surge.GridApprox, Options: testOptions(1), TimePolicy: Strict,
	})
	ctx := context.Background()
	body := "# recorded stream\n1,2,2,5\n2, 2.1, 2.2, 5\n\n3,2.2,2.1,5\n"
	res, err := c.IngestStream(ctx, strings.NewReader(body), client.CSV)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 3 {
		t.Fatalf("accepted %d CSV objects, want 3", res.Accepted)
	}
	// NDJSON with a missing weight defaults to 1.
	nd := `{"time":4,"x":2,"y":2}` + "\n"
	res, err = c.IngestStream(ctx, strings.NewReader(nd), client.NDJSON)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 1 {
		t.Fatalf("accepted %d NDJSON objects, want 1", res.Accepted)
	}
	st, err := c.Best(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Live != 4 {
		t.Fatalf("live %d, want 4", st.Live)
	}
}

func TestIngestErrors(t *testing.T) {
	_, _, c := newTestServer(t, Config{
		Algorithm: surge.CellCSPOT, Options: testOptions(1), TimePolicy: Strict, BatchSize: 2,
	})
	ctx := context.Background()
	// Malformed NDJSON.
	if _, err := c.IngestStream(ctx, strings.NewReader("{nope\n"), client.NDJSON); err == nil {
		t.Fatal("malformed NDJSON accepted")
	}
	// Invalid objects are rejected before any of the chunk is applied.
	if _, err := c.IngestStream(ctx, strings.NewReader(`{"time":1,"x":1,"y":1,"weight":-3}`+"\n"), client.NDJSON); err == nil {
		t.Fatal("negative weight accepted")
	}
	// Missing required field.
	if _, err := c.IngestStream(ctx, strings.NewReader(`{"time":1,"x":2}`+"\n"), client.NDJSON); err == nil {
		t.Fatal("object without y accepted")
	}
	// Out-of-order rejection under the strict policy, with the accepted
	// prefix reported.
	body := `{"time":10,"x":1,"y":1}
{"time":11,"x":1,"y":1}
{"time":5,"x":1,"y":1}
`
	_, err := c.IngestStream(ctx, strings.NewReader(body), client.NDJSON)
	cerr, ok := err.(*client.Error)
	if !ok {
		t.Fatalf("want *client.Error for out-of-order ingest, got %v", err)
	}
	if cerr.Accepted != 2 {
		t.Fatalf("error reports %d accepted, want the 2-object prefix", cerr.Accepted)
	}
	// The same batch is fine under clamp.
	_, _, cc := newTestServer(t, Config{
		Algorithm: surge.CellCSPOT, Options: testOptions(1), TimePolicy: Clamp,
	})
	res, err := cc.IngestStream(ctx, strings.NewReader(body), client.NDJSON)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 3 || res.Clamped != 1 {
		t.Fatalf("clamp policy: accepted %d clamped %d, want 3/1", res.Accepted, res.Clamped)
	}
}

func TestTopKOnDemand(t *testing.T) {
	objs := testObjects(47, 800, 6)
	_, ts, c := newTestServer(t, Config{
		Algorithm: surge.CellCSPOT, Options: testOptions(2), TimePolicy: Strict, TopK: 3,
	})
	ctx := context.Background()
	if _, err := c.Ingest(ctx, objs); err != nil {
		t.Fatal(err)
	}
	tk, err := c.TopK(ctx, 0) // server default
	if err != nil {
		t.Fatal(err)
	}
	if tk.K != 3 || tk.Algorithm != "CCS" || len(tk.Results) != 3 {
		t.Fatalf("topk reply %+v, want k=3 CCS with 3 slots", tk)
	}
	if !tk.Results[0].Found {
		t.Fatal("no top-1 region over a bursty stream")
	}
	// Rank-1 must agree with /v1/best.
	st, err := c.Best(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tk.Results[0].Score-st.Result.Score) > 1e-9*(1+math.Abs(st.Result.Score)) {
		t.Fatalf("top-1 score %v != best %v", tk.Results[0].Score, st.Result.Score)
	}
	if tk2, err := c.TopK(ctx, 2); err != nil || tk2.K != 2 || len(tk2.Results) != 2 {
		t.Fatalf("explicit k=2 reply %+v, %v", tk2, err)
	}
	// The client elides k <= 0, so probe the validation with a raw request.
	resp, err := http.Get(ts.URL + "/v1/topk?k=-1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("k=-1 returned %d, want 400", resp.StatusCode)
	}
}

func TestMetricsAndHealth(t *testing.T) {
	_, _, c := newTestServer(t, Config{
		Algorithm: surge.CellCSPOT, Options: testOptions(2), TimePolicy: Strict,
	})
	ctx := context.Background()
	if _, err := c.Ingest(ctx, testObjects(53, 200, 6)); err != nil {
		t.Fatal(err)
	}
	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !h.OK || h.Algorithm != "CCS" || h.Shards != 2 || h.Live == 0 {
		t.Fatalf("health %+v", h)
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"surge_objects_ingested_total 200",
		"surge_shards 2",
		"surge_engine_events_total",
		"# TYPE surge_best_score gauge",
	} {
		if !strings.Contains(m, want) {
			t.Fatalf("metrics missing %q:\n%s", want, m)
		}
	}
}

// TestSlowSubscriberDrops exercises the hub's slow-consumer policy
// directly: a full subscriber loses oldest-first and the loss is accounted
// on the next delivered notification.
func TestSlowSubscriberDrops(t *testing.T) {
	h := hub{subs: make(map[*subscriber]struct{}), ringCap: 8}
	sub := &subscriber{ch: make(chan frame, 2)}
	h.add(sub)
	var lost uint64
	for seq := uint64(1); seq <= 5; seq++ {
		lost += h.broadcast(frame{eid: seq, burst: client.Notification{Seq: seq}})
	}
	if lost != 3 {
		t.Fatalf("broadcast reported %d drops, want 3", lost)
	}
	// Buffer holds the two newest. Delivered count (2) plus the sum of the
	// delivered Dropped accounts (1 + 2) equals the 5 published.
	f := <-sub.ch
	if f.burst.Seq != 4 || f.dropped() != 1 {
		t.Fatalf("first delivered = seq %d dropped %d, want seq 4 dropped 1", f.burst.Seq, f.dropped())
	}
	f = <-sub.ch
	if f.burst.Seq != 5 || f.dropped() != 2 {
		t.Fatalf("second delivered = seq %d dropped %d, want seq 5 dropped 2", f.burst.Seq, f.dropped())
	}
	h.remove(sub)
	if h.count() != 0 {
		t.Fatal("subscriber not removed")
	}
}

// TestHubReconnectBackfill exercises the Last-Event-ID ring directly: a
// resuming subscriber gets exactly the frames it missed, and frames evicted
// from the ring are accounted on the first replayed frame's Dropped field.
func TestHubReconnectBackfill(t *testing.T) {
	h := hub{subs: make(map[*subscriber]struct{}), ringCap: 4}
	for seq := uint64(1); seq <= 10; seq++ {
		h.broadcast(frame{eid: seq, burst: client.Notification{Seq: seq}})
	}
	// Ring holds 7..10. Resuming from 5 misses 6 frames, of which 6 is gone.
	sub := &subscriber{ch: make(chan frame, 4)}
	backlog := h.addResuming(sub, 5)
	if len(backlog) != 4 {
		t.Fatalf("backlog of %d frames, want 4", len(backlog))
	}
	for i, f := range backlog {
		if f.eid != uint64(7+i) {
			t.Fatalf("backlog[%d] eid %d, want %d", i, f.eid, 7+i)
		}
	}
	if backlog[0].dropped() != 1 {
		t.Fatalf("first replayed frame dropped %d, want 1 (eid 6 left the ring)", backlog[0].dropped())
	}
	// Delivered (4) + dropped (1) + already-seen (5) = 10 published.
	// A subscriber resuming from the newest id gets nothing.
	sub2 := &subscriber{ch: make(chan frame, 4)}
	if b := h.addResuming(sub2, 10); len(b) != 0 || sub2.dropped != 0 {
		t.Fatalf("up-to-date resume got %d frames, dropped %d", len(b), sub2.dropped)
	}
	// Live frames keep flowing to resumed subscribers.
	h.broadcast(frame{eid: 11, burst: client.Notification{Seq: 11}})
	f := <-sub.ch
	if f.eid != 11 || f.dropped() != 0 {
		t.Fatalf("live frame after resume = eid %d dropped %d, want 11/0", f.eid, f.dropped())
	}
}

// TestSubscriptionCloseWhileBehind: a consumer that never reads its
// subscription must still be able to Close it after the server has
// published more notifications than the client buffers (regression: the
// reader goroutine used to block forever on the full events channel).
func TestSubscriptionCloseWhileBehind(t *testing.T) {
	_, _, c := newTestServer(t, Config{
		Algorithm: surge.CellCSPOT, Options: testOptions(1),
		TimePolicy: Strict, BatchSize: 1, SubscriberBuffer: 8,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	sub, err := c.Subscribe(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// BatchSize 1 + a monotonically growing pile at one point = one
	// notification per object; 400 > the client's 256-slot buffer.
	objs := make([]surge.Object, 400)
	for i := range objs {
		objs[i] = surge.Object{X: 2, Y: 2, Weight: 5, Time: float64(i)}
	}
	if _, err := c.Ingest(ctx, objs); err != nil {
		t.Fatal(err)
	}
	closed := make(chan struct{})
	go func() {
		sub.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Close deadlocked on an unread subscription")
	}
}

// TestServerClose: requests after Close fail cleanly, Close is idempotent.
func TestServerClose(t *testing.T) {
	s, ts, c := newTestServer(t, Config{
		Algorithm: surge.CellCSPOT, Options: testOptions(2), TimePolicy: Strict,
	})
	ctx := context.Background()
	if _, err := c.Ingest(ctx, testObjects(61, 100, 6)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal("second Close must be a no-op, got", err)
	}
	if _, err := c.Ingest(ctx, testObjects(62, 10, 6)); err == nil {
		t.Fatal("ingest accepted after Close")
	}
	if _, err := c.Best(ctx); err == nil {
		t.Fatal("best served after Close")
	}
	h, err := c.Health(ctx)
	if err == nil && h.OK {
		t.Fatal("healthz OK after Close")
	}
	_ = ts
}

// TestBootFromCheckpoint seeds a server from Config.Checkpoint.
func TestBootFromCheckpoint(t *testing.T) {
	objs := testObjects(71, 500, 6)
	det, err := surge.New(surge.CellCSPOT, testOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	defer det.Close()
	want, err := det.PushBatch(objs)
	if err != nil {
		t.Fatal(err)
	}
	ckpt, err := det.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	_, _, c := newTestServer(t, Config{
		Algorithm: surge.CellCSPOT, Options: testOptions(3), TimePolicy: Strict,
		Checkpoint: ckpt,
	})
	st, err := c.Best(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Shards != 3 {
		t.Fatalf("booted with %d shards, want 3", st.Shards)
	}
	if math.Float64bits(st.Result.Score) != math.Float64bits(want.Score) || st.Result.Found != want.Found {
		t.Fatalf("booted state %+v != checkpoint source %+v", st.Result, want)
	}
}

func TestParseTimePolicy(t *testing.T) {
	if p, err := ParseTimePolicy("strict"); err != nil || p != Strict {
		t.Fatal("strict")
	}
	if p, err := ParseTimePolicy("clamp"); err != nil || p != Clamp {
		t.Fatal("clamp")
	}
	if _, err := ParseTimePolicy("loose"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}
