package server

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"surge"
)

// TestSSEEpochCursor covers the restart-aware resume protocol: event ids
// carry the server's stream epoch, Cursor round-trips through
// SubscribeFromCursor on the same process as an exact resume, and a cursor
// presented to a *different* process (a restart from checkpoint) degrades
// to a fresh subscription with a resynchronising hello instead of a bogus
// replay of unrelated event ids.
func TestSSEEpochCursor(t *testing.T) {
	objs := testObjects(73, 900, 6)
	cfg := Config{
		Algorithm: surge.CellCSPOT, Options: testOptions(2),
		TimePolicy: Strict, BatchSize: 32, TopK: 3, NotifyRing: 4096,
	}
	srvA, _, cA := newTestServer(t, cfg)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	sub, err := cA.Subscribe(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Hello().Epoch == 0 {
		t.Fatal("hello carries no stream epoch")
	}
	if sub.Hello().Epoch != srvA.epoch {
		t.Fatalf("hello epoch %d != server epoch %d", sub.Hello().Epoch, srvA.epoch)
	}
	ingestChunks(ctx, t, cA, objs[:300], 100)

	var lastSeq uint64
	for i := 0; i < 3; i++ {
		select {
		case n := <-sub.Events():
			lastSeq = n.Seq
		case <-ctx.Done():
			t.Fatal("no burst events")
		}
	}
	cursor := sub.Cursor()
	wantPrefix := fmt.Sprintf("%d.", srvA.epoch)
	if !strings.HasPrefix(cursor, wantPrefix) {
		t.Fatalf("cursor %q does not carry the server epoch %d", cursor, srvA.epoch)
	}
	sub.Close()
	// The reader may have decoded past the last processed notification;
	// using its final cursor keeps the resumed stream gap-free from the
	// client's own high-water mark.
	cursor = sub.Cursor()

	ingestChunks(ctx, t, cA, objs[300:600], 100)

	// Same process: the cursor resumes exactly — no hello, no resync,
	// seq-continuous burst stream.
	sub2, err := cA.SubscribeFromCursor(ctx, cursor)
	if err != nil {
		t.Fatal(err)
	}
	if !sub2.Resumed() || sub2.Hello().Seq != 0 {
		t.Fatalf("same-process cursor did not resume: hello %+v", sub2.Hello())
	}
	st, err := cA.Best(ctx)
	if err != nil {
		t.Fatal(err)
	}
	seen := lastSeq
	for seen < st.Seq {
		select {
		case n, ok := <-sub2.Events():
			if !ok {
				t.Fatalf("resumed subscription closed: %v", sub2.Err())
			}
			if n.Seq <= seen {
				t.Fatalf("resumed burst seq %d after %d", n.Seq, seen)
			}
			seen = n.Seq
		case <-sub2.TopKEvents():
		case <-ctx.Done():
			t.Fatalf("timed out resuming: at seq %d of %d", seen, st.Seq)
		}
	}
	if sub2.Resynced() {
		t.Fatal("same-process resume reported a resync")
	}
	if !strings.HasPrefix(sub2.Cursor(), wantPrefix) {
		t.Fatalf("resumed cursor %q lost the epoch", sub2.Cursor())
	}
	sub2.Close()
	cursor = sub2.Cursor()

	// "Restart": a second server seeded from A's checkpoint. Same detector
	// state, different process — different epoch, empty replay ring.
	ckpt, err := srvA.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	cfgB := cfg
	cfgB.Checkpoint = ckpt
	srvB, _, cB := newTestServer(t, cfgB)
	if srvB.epoch == srvA.epoch {
		t.Fatalf("restarted server reused epoch %d", srvA.epoch)
	}

	sub3, err := cB.SubscribeFromCursor(ctx, cursor)
	if err != nil {
		t.Fatal(err)
	}
	defer sub3.Close()
	// The foreign-epoch cursor cannot be honoured: the server opens a fresh
	// subscription and resynchronises with a hello, delivered on the stream.
	deadline := time.Now().Add(30 * time.Second)
	for !sub3.Resynced() {
		if time.Now().After(deadline) {
			t.Fatal("restarted server never resynchronised the foreign cursor")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := sub3.Hello().Epoch; got != srvB.epoch {
		t.Fatalf("resync hello epoch %d, want %d", got, srvB.epoch)
	}
	// The resync hello re-bases the cursor onto the new process's stream.
	ingestChunks(ctx, t, cB, objs[600:], 100)
	select {
	case n := <-sub3.Events():
		if n.Seq == 0 {
			t.Fatal("no burst after resync")
		}
	case <-ctx.Done():
		t.Fatal("no burst events after resync")
	}
	if !strings.HasPrefix(sub3.Cursor(), fmt.Sprintf("%d.", srvB.epoch)) {
		t.Fatalf("post-resync cursor %q not on epoch %d", sub3.Cursor(), srvB.epoch)
	}

	// Malformed cursors are rejected client-side.
	if _, err := cB.SubscribeFromCursor(ctx, "not-a-cursor"); err == nil {
		t.Fatal("malformed cursor accepted")
	}
	if _, err := cB.SubscribeFromCursor(ctx, "12.34.56"); err == nil {
		t.Fatal("double-dotted cursor accepted")
	}
}
