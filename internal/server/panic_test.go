package server

import (
	"context"
	"errors"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"surge"
	"surge/client"
	"surge/internal/core"
)

// boomEngine wraps a real shard engine and panics in Process once armed.
type boomEngine struct {
	core.Engine
	arm *atomic.Bool
}

func (e *boomEngine) Process(ev core.Event) {
	if e.arm.Load() {
		panic("injected shard engine panic")
	}
	e.Engine.Process(ev)
}

// TestShardPanicDegradesWithoutDeadlock plants a panicking engine inside a
// shard worker via the core.TestEngineWrap hook and drives the full serving
// stack over it: the panic must surface as a pipeline error (ingest 5xx,
// /healthz unhealthy with the panic text) while /v1/best keeps answering
// from the stale snapshot, and Close must return — the shard barrier may
// never deadlock on the crashed worker. Run under -race in CI.
func TestShardPanicDegradesWithoutDeadlock(t *testing.T) {
	var arm atomic.Bool
	core.TestEngineWrap = func(e core.Engine) core.Engine {
		return &boomEngine{Engine: e, arm: &arm}
	}
	defer func() { core.TestEngineWrap = nil }()

	// BestFromEngines keeps the single-region engines alive (the default
	// chain-serving layout retires them, and the wrap hook only covers
	// engines built through surge's newEngine).
	s, _, c := newTestServer(t, Config{
		Algorithm:       surge.CellCSPOT,
		Options:         testOptions(3),
		TimePolicy:      Strict,
		BestFromEngines: true,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	objs := testObjects(91, 400, 6)
	if _, err := c.Ingest(ctx, objs[:200]); err != nil {
		t.Fatalf("healthy ingest failed: %v", err)
	}
	before, err := c.Best(ctx)
	if err != nil {
		t.Fatalf("healthy best failed: %v", err)
	}

	arm.Store(true)
	_, ierr := c.Ingest(ctx, objs[200:])
	if ierr == nil {
		t.Fatal("ingest succeeded while a shard engine was panicking")
	}
	var werr *client.Error
	if !errors.As(ierr, &werr) || werr.Status != http.StatusInternalServerError {
		t.Fatalf("ingest error = %v, want an internal (500) pipeline error", ierr)
	}
	if !strings.Contains(werr.Err, "panicked") {
		t.Fatalf("ingest error %q does not carry the panic", werr.Err)
	}

	// The client surfaces the 503 as an error carrying the healthz body.
	if _, err := c.Health(ctx); err == nil {
		t.Fatal("healthz OK while the pipeline is down")
	} else if !strings.Contains(err.Error(), "503") || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("healthz error = %v, want 503 with the shard panic", err)
	}

	// Stale-answer mode: the query path still serves the last good snapshot.
	after, err := c.Best(ctx)
	if err != nil {
		t.Fatalf("best after panic: %v", err)
	}
	if after.Result.Found != before.Result.Found || after.Result.Score != before.Result.Score {
		t.Fatalf("stale answer changed after the panic: %+v != %+v", after.Result, before.Result)
	}

	// A second ingest keeps failing (the pipeline error is sticky) and must
	// not wedge the event loop.
	if _, err := c.Ingest(ctx, objs[:50]); err == nil {
		t.Fatal("ingest succeeded on a failed pipeline")
	}

	done := make(chan error, 1)
	go func() { done <- s.Close() }()
	select {
	case err := <-done:
		if err != nil && !strings.Contains(err.Error(), "panicked") {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("Close deadlocked on the crashed shard")
	}
}
