package server

import (
	"context"
	"encoding/binary"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"surge"
	"surge/client"
	"surge/internal/wal"
)

// newDurableTestServer boots a durable server over dir. The caller crashes
// it with s.Close() (no Shutdown: nothing checkpointed, like a kill) or
// stops it cleanly with s.Shutdown() then s.Close().
func newDurableTestServer(t *testing.T, dir string, cfg Config, dc DurableConfig) (*Server, *httptest.Server, *client.Client) {
	t.Helper()
	dc.Dir = dir
	if dc.CheckpointEvery == 0 {
		dc.CheckpointEvery = -1 // deterministic tests drive checkpoints explicitly
	}
	s, err := NewDurable(cfg, dc)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts, client.New(ts.URL)
}

// streamBatches feeds objs to c in fixed-size ingest requests.
func streamBatches(t *testing.T, c *client.Client, objs []surge.Object, per int) {
	t.Helper()
	for i := 0; i < len(objs); i += per {
		end := min(i+per, len(objs))
		if _, err := c.Ingest(context.Background(), objs[i:end]); err != nil {
			t.Fatalf("ingest batch at %d: %v", i, err)
		}
	}
}

// answersOf snapshots the served answers that must survive a crash
// bitwise: /v1/best (result, clock, live) and the full /v1/topk.
func answersOf(t *testing.T, c *client.Client) (client.Result, float64, int, []client.Result) {
	t.Helper()
	st, err := c.Best(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	tk, err := c.TopK(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	return st.Result, st.Now, st.Live, tk.Results
}

func assertSameAnswers(t *testing.T, label string, c, ref *client.Client) {
	t.Helper()
	res, now, live, tk := answersOf(t, c)
	wres, wnow, wlive, wtk := answersOf(t, ref)
	if !reflect.DeepEqual(res, wres) || now != wnow || live != wlive {
		t.Fatalf("%s: best diverged: got (%+v, now=%v, live=%d) want (%+v, now=%v, live=%d)",
			label, res, now, live, wres, wnow, wlive)
	}
	if !reflect.DeepEqual(tk, wtk) {
		t.Fatalf("%s: topk diverged:\ngot  %+v\nwant %+v", label, tk, wtk)
	}
}

func TestDurableCrashRecovery(t *testing.T) {
	for _, shards := range []int{1, 2} {
		t.Run("shards="+strconv.Itoa(shards), func(t *testing.T) {
			objs := testObjects(11, 600, 4)
			cfg := Config{Options: testOptions(shards), BatchSize: 64}
			_, _, ref := newTestServer(t, cfg)
			streamBatches(t, ref, objs, 50)

			dir := t.TempDir()
			s1, ts1, c1 := newDurableTestServer(t, dir, cfg, DurableConfig{Sync: wal.SyncOff})
			streamBatches(t, c1, objs, 50)
			// Crash: no Shutdown, so no checkpoint — boot must replay the
			// whole WAL.
			ts1.Close()
			s1.Close()

			s2, _, c2 := newDurableTestServer(t, dir, cfg, DurableConfig{Sync: wal.SyncOff})
			h, err := c2.Health(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if !h.Durable || h.RecoveredBatches == 0 {
				t.Fatalf("want durable health with replayed batches, got %+v", h)
			}
			assertSameAnswers(t, "after crash recovery", c2, ref)

			// Clean shutdown persists a checkpoint; the next boot replays
			// nothing and still serves the same answers.
			if _, err := s2.Shutdown(); err != nil {
				t.Fatal(err)
			}
			s2.Close()
			_, _, c3 := newDurableTestServer(t, dir, cfg, DurableConfig{Sync: wal.SyncOff})
			h, err = c3.Health(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if h.RecoveredBatches != 0 {
				t.Fatalf("clean shutdown should leave nothing to replay, got %d batches", h.RecoveredBatches)
			}
			assertSameAnswers(t, "after clean restart", c3, ref)
		})
	}
}

func TestDurableTornTailRecovery(t *testing.T) {
	objs := testObjects(23, 400, 4)
	cfg := Config{Options: testOptions(2), BatchSize: 64}
	_, _, ref := newTestServer(t, cfg)
	streamBatches(t, ref, objs, 40)

	dir := t.TempDir()
	s1, ts1, c1 := newDurableTestServer(t, dir, cfg, DurableConfig{Sync: wal.SyncOff})
	streamBatches(t, c1, objs, 40)
	ts1.Close()
	s1.Close()

	// A torn tail: garbage after the last complete frame, as a crash mid-
	// write leaves it. Recovery must truncate exactly the garbage and keep
	// every complete frame.
	segs, err := filepath.Glob(filepath.Join(dir, "wal", "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no wal segments: %v", err)
	}
	sort.Strings(segs)
	garbage := []byte{0xde, 0xad, 0xbe, 0xef, 0x01, 0x02, 0x03}
	f, err := os.OpenFile(segs[len(segs)-1], os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(garbage); err != nil {
		t.Fatal(err)
	}
	f.Close()

	_, _, c2 := newDurableTestServer(t, dir, cfg, DurableConfig{Sync: wal.SyncOff})
	h, err := c2.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.WALTornBytes != int64(len(garbage)) {
		t.Fatalf("torn bytes = %d, want %d", h.WALTornBytes, len(garbage))
	}
	assertSameAnswers(t, "after torn-tail recovery", c2, ref)
}

func TestDurableCheckpointCompaction(t *testing.T) {
	objs := testObjects(31, 500, 4)
	// Clamp: the post-checkpoint tail restarts its clock, and replay must
	// reproduce the same clamping from the restored stream clock.
	cfg := Config{Options: testOptions(1), BatchSize: 32, TimePolicy: Clamp}
	dir := t.TempDir()
	// Tiny segments so the stream rotates many times.
	s, _, c := newDurableTestServer(t, dir, cfg, DurableConfig{Sync: wal.SyncOff, SegmentBytes: 4 << 10})
	streamBatches(t, c, objs, 32)
	if got := s.wal.log.Segments(); got < 3 {
		t.Fatalf("want several wal segments before compaction, got %d", got)
	}
	if err := s.checkpointDurable(); err != nil {
		t.Fatal(err)
	}
	if got := s.wal.log.Segments(); got != 1 {
		t.Fatalf("checkpoint should compact to the one active segment, got %d", got)
	}
	if _, err := os.Stat(filepath.Join(dir, "surge.ckpt")); err != nil {
		t.Fatalf("checkpoint file missing: %v", err)
	}
	if got := s.ckpts.Load(); got != 1 {
		t.Fatalf("checkpoints written = %d, want 1", got)
	}

	// More ingest after the checkpoint: boot replays only the tail.
	tail := testObjects(37, 100, 4)
	streamBatches(t, c, tail, 32)
	_, _, refc := newTestServer(t, cfg)
	streamBatches(t, refc, objs, 32)
	streamBatches(t, refc, tail, 32)

	s.Close() // crash: the post-checkpoint tail exists only in the WAL
	s2, _, c2 := newDurableTestServer(t, dir, cfg, DurableConfig{Sync: wal.SyncOff, SegmentBytes: 4 << 10})
	if s2.wal.recBatches == 0 || s2.wal.recBatches >= uint64(len(objs)+len(tail))/32 {
		t.Fatalf("want a partial replay of just the tail, replayed %d batches", s2.wal.recBatches)
	}
	assertSameAnswers(t, "after checkpoint+tail recovery", c2, refc)
}

// TestDurableStaleCheckpointDropped pins persistCheckpoint's ordering: a
// checkpoint captured earlier (lower generation ticket) that reaches the
// disk after a newer one — the background loop racing Shutdown/Restore —
// must be dropped, not rolled over surge.ckpt. The newer checkpoint already
// compacted the WAL frames between the two positions, so the rollback would
// lose acknowledged batches at the next boot.
func TestDurableStaleCheckpointDropped(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Options: testOptions(1), BatchSize: 32, TimePolicy: Clamp}
	s, _, c := newDurableTestServer(t, dir, cfg, DurableConfig{Sync: wal.SyncOff})
	streamBatches(t, c, testObjects(67, 100, 4), 50)

	// Capture an early checkpoint on the loop, as checkpointLoop does...
	var oldRC regCapture
	var oldLSN, oldGen uint64
	var oldErr error
	if err := s.do(func() {
		oldRC, oldErr = s.captureRegistry()
		oldLSN = s.wal.log.LastLSN()
		oldGen = s.wal.ckptGen.Add(1)
	}); err != nil {
		t.Fatal(err)
	}
	if oldErr != nil {
		t.Fatal(oldErr)
	}
	// ...then advance the stream and persist a newer checkpoint before the
	// early capture lands.
	streamBatches(t, c, testObjects(71, 100, 4), 50)
	if err := s.checkpointDurable(); err != nil {
		t.Fatal(err)
	}
	newLSN := s.wal.log.LastLSN()
	if err := s.persistCheckpoint(oldRC, oldLSN, oldGen); err != nil {
		t.Fatal(err)
	}
	ck, err := readDurableCheckpoint(filepath.Join(dir, "surge.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if ck == nil || ck.lsn != newLSN {
		t.Fatalf("stale checkpoint rolled surge.ckpt back: lsn %d, want %d", ck.lsn, newLSN)
	}
}

// TestDurableLSNReuseAfterCleanRestart reboots from a clean shutdown (whose
// compaction left the WAL empty, i.e. ending before the checkpoint), ingests
// more, and crashes. Boot must renumber the log past the checkpoint: frames
// reusing covered LSNs would be skipped by Replay(after=ckpt.lsn) and the
// acknowledged tail silently lost.
func TestDurableLSNReuseAfterCleanRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Options: testOptions(1), BatchSize: 32, TimePolicy: Clamp}
	head := testObjects(73, 200, 4)
	tail := testObjects(79, 100, 4)

	s1, ts1, c1 := newDurableTestServer(t, dir, cfg, DurableConfig{Sync: wal.SyncOff})
	streamBatches(t, c1, head, 40)
	if _, err := s1.Shutdown(); err != nil {
		t.Fatal(err)
	}
	ts1.Close()
	s1.Close()

	s2, ts2, c2 := newDurableTestServer(t, dir, cfg, DurableConfig{Sync: wal.SyncOff})
	streamBatches(t, c2, tail, 40)
	ts2.Close()
	s2.Close() // crash: the tail exists only in the WAL

	_, _, c3 := newDurableTestServer(t, dir, cfg, DurableConfig{Sync: wal.SyncOff})
	_, _, refc := newTestServer(t, cfg)
	streamBatches(t, refc, head, 40)
	streamBatches(t, refc, tail, 40)
	assertSameAnswers(t, "after restart+crash recovery", c3, refc)
}

// TestDecodeWALRecordCorruptCount feeds decode a CRC-framed record whose
// object count is absurd: the length check must reject it instead of
// wrapping the product and attempting a huge allocation.
func TestDecodeWALRecordCorruptCount(t *testing.T) {
	buf := []byte{walRecordVersion}
	buf = binary.AppendUvarint(buf, 0)     // empty source
	buf = binary.AppendUvarint(buf, 0)     // sequence
	buf = binary.AppendUvarint(buf, 0)     // chunk
	buf = binary.AppendUvarint(buf, 1<<59) // cnt*32 wraps to 0 == len(rest)
	if _, _, _, _, err := decodeWALRecord(buf); !errors.Is(err, errBadWALRecord) {
		t.Fatalf("want errBadWALRecord, got %v", err)
	}
}

func TestIngestSeqDuplicateReplaysAck(t *testing.T) {
	s, _, c := newTestServer(t, Config{Options: testOptions(1), TimePolicy: Clamp})
	objs := testObjects(41, 120, 4)
	ack1, err := c.IngestSeq(context.Background(), "sensor-a", 1, objs)
	if err != nil {
		t.Fatal(err)
	}
	applied := s.objects.Load()
	ack2, err := c.IngestSeq(context.Background(), "sensor-a", 1, objs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ack1, ack2) {
		t.Fatalf("duplicate ack differs:\nfirst  %+v\nsecond %+v", ack1, ack2)
	}
	if got := s.objects.Load(); got != applied {
		t.Fatalf("duplicate was re-applied: objects %d -> %d", applied, got)
	}
	// The next sequence still applies normally.
	if _, err := c.IngestSeq(context.Background(), "sensor-a", 2, objs[:10]); err != nil {
		t.Fatal(err)
	}
	if got := s.objects.Load(); got != applied+10 {
		t.Fatalf("next sequence not applied: objects = %d, want %d", got, applied+10)
	}
}

func TestIngestSeqOutOfOrder(t *testing.T) {
	_, _, c := newTestServer(t, Config{Options: testOptions(1)})
	objs := testObjects(43, 20, 4)
	if _, err := c.IngestSeq(context.Background(), "src", 5, objs); err != nil {
		t.Fatal(err)
	}
	_, err := c.IngestSeq(context.Background(), "src", 4, objs)
	if !errors.Is(err, client.ErrSeqOutOfOrder) {
		t.Fatalf("want ErrSeqOutOfOrder, got %v", err)
	}
	var ce *client.Error
	if !errors.As(err, &ce) || ce.Status != http.StatusConflict || ce.Code != client.CodeSeqOutOfOrder {
		t.Fatalf("want 409 %s, got %+v", client.CodeSeqOutOfOrder, ce)
	}
}

func TestIngestSeqConflict(t *testing.T) {
	s, _, c := newTestServer(t, Config{Options: testOptions(1)})
	s.seqMu.Lock()
	s.seqs["src"] = &sourceSeq{seq: 1, active: true}
	s.seqMu.Unlock()
	_, err := c.IngestSeq(context.Background(), "src", 2, testObjects(47, 10, 4))
	if !errors.Is(err, client.ErrSeqConflict) {
		t.Fatalf("want ErrSeqConflict, got %v", err)
	}
}

func TestDurableSeqSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Options: testOptions(2), BatchSize: 64}
	objs := testObjects(53, 150, 4)
	s1, ts1, c1 := newDurableTestServer(t, dir, cfg, DurableConfig{Sync: wal.SyncOff})
	ack1, err := c1.IngestSeq(context.Background(), "feeder", 1, objs)
	if err != nil {
		t.Fatal(err)
	}
	ts1.Close()
	s1.Close() // crash before any checkpoint

	s2, _, c2 := newDurableTestServer(t, dir, cfg, DurableConfig{Sync: wal.SyncOff})
	applied := s2.objects.Load()
	// The retry of the batch whose ack could have been lost must replay the
	// original ack without re-applying anything.
	ack2, err := c2.IngestSeq(context.Background(), "feeder", 1, objs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ack1, ack2) {
		t.Fatalf("replayed ack differs across restart:\nfirst  %+v\nsecond %+v", ack1, ack2)
	}
	if got := s2.objects.Load(); got != applied {
		t.Fatalf("retry after restart re-applied data: objects %d -> %d", applied, got)
	}
}

func TestAdmissionControl429(t *testing.T) {
	s, ts, c := newTestServer(t, Config{Options: testOptions(1), MaxPending: 1})
	// Wedge the event loop so submitted chunks pile up.
	block := make(chan struct{})
	go s.do(func() { <-block })
	defer close(block)

	// First ingest occupies the single admission slot (blocked on the
	// wedged loop); wait until it is counted.
	go c.Ingest(context.Background(), testObjects(59, 5, 4))
	deadline := time.Now().Add(2 * time.Second)
	for s.pendingChunks.Load() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("first chunk never became pending")
		}
		time.Sleep(time.Millisecond)
	}

	_, err := c.Ingest(context.Background(), testObjects(61, 5, 4))
	if !errors.Is(err, client.ErrOverloaded) {
		t.Fatalf("want ErrOverloaded, got %v", err)
	}
	var ce *client.Error
	if !errors.As(err, &ce) || ce.Status != http.StatusTooManyRequests || ce.RetryAfterSec <= 0 {
		t.Fatalf("want 429 with a retry hint, got %+v", ce)
	}

	// The Retry-After header itself must be parseable by generic clients.
	resp, err := http.Post(ts.URL+"/v1/ingest", "application/x-ndjson",
		strings.NewReader("{\"time\":1,\"x\":1,\"y\":1}\n{\"time\":2,\"x\":1,\"y\":1}\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("want 429, got %d", resp.StatusCode)
	}
	if sec, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || sec < 1 {
		t.Fatalf("unparseable Retry-After %q: %v", resp.Header.Get("Retry-After"), err)
	}
	if s.throttled.Load() < 2 {
		t.Fatalf("throttled counter = %d, want >= 2", s.throttled.Load())
	}
}
