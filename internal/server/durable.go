package server

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	mrand "math/rand/v2"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"surge"
	"surge/client"
	"surge/internal/fault"
	"surge/internal/wal"
)

// DurableConfig configures the write-ahead-logged variant of the server
// (surged serve -data-dir). The directory holds two things: wal/, the
// segment files logging every acknowledged ingest batch, and surge.ckpt,
// the newest durable checkpoint (detector state + covered WAL position +
// ingest dedupe table). Boot loads the checkpoint, replays the WAL tail
// through the normal ingest path and resumes exactly where the
// acknowledged stream left off.
type DurableConfig struct {
	// Dir is the data directory (required; created if missing).
	Dir string
	// Sync is the WAL fsync policy (default wal.SyncAlways). A killed
	// process loses no acknowledged batch under any policy; the policy
	// chooses what a machine crash can lose.
	Sync wal.SyncPolicy
	// SyncEvery is the background fsync period under wal.SyncInterval
	// (0 = 100ms).
	SyncEvery time.Duration
	// SegmentBytes rotates WAL segments at this size (0 = 64 MiB).
	SegmentBytes int64
	// CheckpointEvery is the period of the background durable checkpoint,
	// which also compacts fully covered WAL segments (0 = 1m; negative
	// disables the background checkpointer — Shutdown still writes one).
	CheckpointEvery time.Duration
	// FS is the filesystem the WAL and checkpoint files live on (nil =
	// fault.OS). Tests pass a fault.Injector to exercise disk-failure and
	// degradation paths.
	FS fault.FS
}

// walState is the durability attachment of a Server built by NewDurable.
// The recovery summary fields are written once, before the server starts
// serving, and only read afterwards.
type walState struct {
	log      *wal.Log
	ckptPath string
	fs       fault.FS
	scratch  []byte // loop-owned WAL record encode buffer

	// repairKick wakes the repair loop after a degradation; repairDone is
	// closed when the loop exits (Close joins it before closing the log).
	repairKick chan struct{}
	repairDone chan struct{}

	// Checkpoint persistence is serialised: the background checkpointLoop,
	// Shutdown and Restore may all reach persistCheckpoint concurrently, and
	// an older capture must never overwrite a newer one — CompactBefore may
	// already have deleted the WAL frames between the two positions, so the
	// rollback would lose acknowledged batches on the next boot. ckptGen
	// hands out capture tickets in state order (on the event loop, or after
	// it drained), and persistCheckpoint drops any ticket older than the
	// newest one persisted.
	ckptMu   sync.Mutex
	ckptGen  atomic.Uint64
	lastGen  uint64        // newest persisted ticket; guarded by ckptMu
	loopDone chan struct{} // closed when checkpointLoop exits; nil when disabled

	recBatches uint64  // WAL batches replayed at boot
	recObjects uint64  // objects those batches held
	recSec     float64 // boot replay duration
	torn       int64   // bytes discarded by torn-tail truncation at boot
}

// sourceSeq is the per-source ingest dedupe state behind the Ingest-Seq
// header: the newest sequence seen, how many chunks of it are applied, and
// the ack to replay for a duplicate. Guarded by Server.seqMu; the active
// flag serialises requests per source.
type sourceSeq struct {
	seq      uint64
	chunks   uint32 // chunks of seq applied so far (resume point)
	done     bool   // seq fully applied; result is the ack to replay
	active   bool   // a request for this source is in flight
	accepted int
	clamped  int
	result   surge.Result
}

// seqEntry is the checkpointed form of sourceSeq (the in-flight flags are
// meaningless across a restart and are not persisted).
type seqEntry struct {
	Seq      uint64        `json:"seq"`
	Chunks   uint32        `json:"chunks"`
	Done     bool          `json:"done"`
	Accepted int           `json:"accepted"`
	Clamped  int           `json:"clamped"`
	Result   client.Result `json:"result"`
}

// NewDurable builds a durable server: load the newest checkpoint from
// dc.Dir, open the WAL (truncating any torn tail), replay the tail on top
// of the checkpoint through the normal batch-apply path, and attach the
// log so every subsequent acknowledged ingest batch is appended before its
// 200 goes out. The caller must not serve HTTP until NewDurable returns —
// replay assumes the ingest path is idle.
func NewDurable(cfg Config, dc DurableConfig) (*Server, error) {
	if dc.Dir == "" {
		return nil, errors.New("server: durable server needs a data directory")
	}
	if dc.FS == nil {
		dc.FS = fault.OS
	}
	if err := os.MkdirAll(dc.Dir, 0o755); err != nil {
		return nil, err
	}
	ckptPath := filepath.Join(dc.Dir, "surge.ckpt")
	ck, err := readDurableCheckpoint(ckptPath)
	if err != nil {
		return nil, err
	}
	// Assemble the boot registry. A registry checkpoint (v2) restores every
	// persisted query bitwise and merges in Config.Queries as desired state
	// (config-declared ids missing from the checkpoint start fresh; a query
	// deleted after the checkpoint resurrects — delete it again). A legacy v1
	// checkpoint seeds the default query only.
	var seeds []tenantSeed
	switch {
	case ck != nil && ck.metas != nil:
		if cfg.TopK == 0 {
			cfg.TopK = 5
		}
		if cfg.TopK < 1 {
			return nil, fmt.Errorf("server: invalid TopK %d", cfg.TopK)
		}
		seeds, err = checkpointSeeds(cfg, ck)
	case ck != nil:
		cfg.Checkpoint = ck.det
		fallthrough
	default:
		if cfg.TopK == 0 {
			cfg.TopK = 5
		}
		if cfg.TopK < 1 {
			return nil, fmt.Errorf("server: invalid TopK %d", cfg.TopK)
		}
		seeds, err = bootSeeds(cfg)
	}
	if err != nil {
		return nil, err
	}
	wlog, recov, err := wal.Open(filepath.Join(dc.Dir, "wal"), wal.Options{
		Sync: dc.Sync, SyncEvery: dc.SyncEvery, SegmentBytes: dc.SegmentBytes, FS: dc.FS,
	})
	if err != nil {
		return nil, err
	}
	s, err := newServer(cfg, seeds)
	if err != nil {
		wlog.Close()
		return nil, err
	}
	ws := &walState{
		log: wlog, ckptPath: ckptPath, fs: dc.FS, torn: recov.TornBytes,
		repairKick: make(chan struct{}, 1),
		repairDone: make(chan struct{}),
	}
	var after uint64
	if ck != nil {
		after = ck.lsn
		s.restoreSeqs(ck.seqs)
		if recov.LastLSN < ck.lsn {
			// The log ends before the checkpoint: the normal state after a
			// clean shutdown (compaction emptied the WAL), or a machine crash
			// under a relaxed sync policy that lost frames the fsynced
			// checkpoint already covers. No data is missing — the checkpoint
			// holds those frames' state — but LSN assignment must not restart
			// inside the covered range: a later recovery would skip the
			// reused numbers as "covered" and silently drop acknowledged
			// batches. Every surviving frame is <= LastLSN < ck.lsn, i.e.
			// itself covered, so drop the log and renumber past the
			// checkpoint.
			if recov.LastLSN > 0 {
				s.log.Warn("wal ends before the checkpoint (machine crash with relaxed sync?); discarding covered frames",
					"wal_last_lsn", recov.LastLSN, "ckpt_lsn", ck.lsn)
			}
			rerr := wlog.CompactBefore(ck.lsn)
			if rerr == nil {
				rerr = wlog.SkipTo(ck.lsn)
			}
			if rerr != nil {
				s.Close()
				wlog.Close()
				return nil, rerr
			}
		}
	}
	t0 := time.Now()
	rerr := wlog.Replay(after, func(lsn uint64, payload []byte) error {
		src, seq, chunk, objs, derr := decodeWALRecord(payload)
		if derr != nil {
			return fmt.Errorf("server: wal record %d: %w", lsn, derr)
		}
		if err := s.do(func() {
			// Replay reproduces the original apply bit-for-bit: the record
			// holds the pre-clamp objects and the clamp depends only on the
			// stream clock, which the checkpoint restored. A batch whose
			// apply failed originally fails identically here, leaving the
			// same state either way.
			res, c, aerr := s.applyBatch(objs)
			if aerr == nil {
				s.noteSeqApplied(src, seq, chunk, len(objs), c, res)
			}
		}); err != nil {
			return err
		}
		ws.recBatches++
		ws.recObjects += uint64(len(objs))
		return nil
	})
	if rerr != nil {
		s.Close()
		wlog.Close()
		return nil, rerr
	}
	ws.recSec = time.Since(t0).Seconds()
	s.wal = ws
	every := dc.CheckpointEvery
	if every == 0 {
		every = time.Minute
	}
	if every > 0 {
		ws.loopDone = make(chan struct{})
		go s.checkpointLoop(every)
	}
	go s.repairLoop()
	s.log.Info("durable recovery complete",
		"dir", dc.Dir,
		"wal_sync", wlog.Policy().String(),
		"checkpoint", ck != nil,
		"replayed_batches", ws.recBatches,
		"replayed_objects", ws.recObjects,
		"torn_bytes", recov.TornBytes,
		"last_lsn", recov.LastLSN,
		"recovery_sec", ws.recSec)
	return s, nil
}

// applyLogged runs on the event loop: append the chunk to the WAL (when
// one is attached), then apply it. The append happens first and its error
// aborts the apply, so a 200 is only ever sent for a batch the log holds —
// and because both the append and the apply happen on the loop, WAL order
// is exactly apply order.
//
// An append failure transitions the server to degraded instead of failing
// every future ingest: the batch is rejected (never acked), ingest is shed
// with 503 until the background repair loop truncates the partial tail,
// rotates to a fresh segment and re-establishes the durable floor with a
// fresh checkpoint. Queries keep serving throughout.
func (s *Server) applyLogged(objs []surge.Object, src string, seq uint64, chunk uint32) (surge.Result, int, error) {
	if s.wal != nil {
		if s.degraded.Load() {
			return surge.Result{}, 0, errDegraded
		}
		s.wal.scratch = encodeWALRecord(s.wal.scratch[:0], src, seq, chunk, objs)
		if _, err := s.wal.log.Append(s.wal.scratch); err != nil {
			s.enterDegraded(err)
			return surge.Result{}, 0, fmt.Errorf("%w: %w", errDegraded, err)
		}
	}
	return s.applyBatch(objs)
}

// errDegraded marks ingest shed while durability is lost: the WAL cannot
// hold the batch, so acknowledging it would break the crash contract. The
// handler reports 503 with code "durability_degraded" and a Retry-After;
// the repair loop restores ingest without a restart.
var errDegraded = errors.New("server: durability degraded, ingest shed until the log is repaired")

// degradedRetryAfterSec is the backoff hint sent with a degraded 503: a
// transient fault usually repairs within one attempt of the repair loop.
const degradedRetryAfterSec = 1

// enterDegraded transitions ok -> degraded on the first WAL failure and
// wakes the repair loop. Later failures just refresh the fault message.
func (s *Server) enterDegraded(err error) {
	msg := err.Error()
	s.faultMsg.Store(&msg)
	if !s.degraded.CompareAndSwap(false, true) {
		return
	}
	s.degradedSince.Store(time.Now().UnixNano())
	s.degradedCount.Add(1)
	s.log.Error("durability degraded: shedding ingest until the log is repaired", "err", err)
	select {
	case s.wal.repairKick <- struct{}{}:
	default:
	}
}

// exitDegraded transitions degraded -> recovered once a repair succeeded.
func (s *Server) exitDegraded() {
	if !s.degraded.CompareAndSwap(true, false) {
		return
	}
	var spell time.Duration
	if t := s.degradedSince.Swap(0); t != 0 {
		spell = time.Duration(time.Now().UnixNano() - t)
		s.degradedNano.Add(int64(spell))
	}
	s.repairedCount.Add(1)
	s.log.Info("durability repaired: ingest resumed", "degraded_sec", spell.Seconds())
}

// degradedSec returns the cumulative wall-clock time spent degraded,
// including the current spell.
func (s *Server) degradedSec() float64 {
	total := time.Duration(s.degradedNano.Load())
	if t := s.degradedSince.Load(); t != 0 {
		total += time.Duration(time.Now().UnixNano() - t)
	}
	return total.Seconds()
}

// durabilityString names the degradation state machine's position for
// /healthz and /v1/stats: "degraded" while ingest is shed, "recovered" once
// at least one repair has restored durability, "ok" when no fault ever hit.
func (s *Server) durabilityString() string {
	switch {
	case s.degraded.Load():
		return "degraded"
	case s.repairedCount.Load() > 0:
		return "recovered"
	default:
		return "ok"
	}
}

// faultString returns the most recent WAL fault message, "" when none.
func (s *Server) faultString() string {
	if p := s.faultMsg.Load(); p != nil {
		return *p
	}
	return ""
}

const (
	repairBaseDelay = 25 * time.Millisecond
	repairMaxDelay  = 2 * time.Second
)

// jitter spreads a backoff delay over [d/2, d] so concurrent retry loops
// do not synchronise.
func jitter(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	return d/2 + time.Duration(mrand.Int64N(int64(d/2)))
}

// repairLoop waits for a degradation and retries repair with jittered
// exponential backoff until the log accepts appends again. It exits when
// the server shuts down.
func (s *Server) repairLoop() {
	defer close(s.wal.repairDone)
	for {
		select {
		case <-s.quit:
			return
		case <-s.wal.repairKick:
		}
		delay := repairBaseDelay
		for {
			err := s.repairDurability()
			if err == nil {
				break
			}
			if errors.Is(err, ErrClosed) || errors.Is(err, wal.ErrClosed) {
				return
			}
			s.log.Warn("durability repair failed; retrying", "err", err, "backoff_sec", delay.Seconds())
			select {
			case <-s.quit:
				return
			case <-time.After(jitter(delay)):
			}
			if delay *= 2; delay > repairMaxDelay {
				delay = repairMaxDelay
			}
		}
	}
}

// repairDurability is one repair attempt: truncate the poisoned tail and
// rotate the log to a fresh segment, then write a fresh checkpoint. The
// checkpoint is not optional — a failed fsync may have silently dropped
// pages the kernel already marked clean, so the surviving segments cannot
// be trusted; checkpointing the in-memory state (which also compacts the
// suspect segments away) re-establishes the durable floor from scratch.
// Only then does ingest resume.
func (s *Server) repairDurability() error {
	if err := s.wal.log.Repair(); err != nil {
		return err
	}
	if err := s.checkpointDurable(); err != nil {
		return err
	}
	s.exitDegraded()
	return nil
}

// noteSeqApplied folds one applied chunk into the per-source dedupe state.
// Both callers — the live ingest path and boot replay — run it on the event
// loop, in the same closure as the apply, so the dedupe table a checkpoint
// snapshots is never behind the WAL position the checkpoint captured (a
// behind table would resume a retried sequence at a stale skip count and
// re-apply an already-applied chunk after a crash). It can be slightly
// ahead — snapshotSeqs runs after the loop capture — which is safe: the max
// semantics on (seq, chunks) make replay idempotent.
func (s *Server) noteSeqApplied(src string, seq uint64, chunk uint32, objs, clamped int, res surge.Result) {
	if src == "" {
		return
	}
	s.seqMu.Lock()
	defer s.seqMu.Unlock()
	st := s.seqs[src]
	if st == nil {
		st = &sourceSeq{}
		s.seqs[src] = st
	}
	if seq < st.seq {
		return
	}
	if seq > st.seq {
		*st = sourceSeq{seq: seq, active: st.active}
	}
	if chunk+1 > st.chunks {
		st.chunks = chunk + 1
		st.accepted += objs
		st.clamped += clamped
		st.result = res
	}
}

// restoreSeqs loads the checkpointed dedupe table at boot.
func (s *Server) restoreSeqs(entries map[string]seqEntry) {
	s.seqMu.Lock()
	defer s.seqMu.Unlock()
	for src, e := range entries {
		s.seqs[src] = &sourceSeq{
			seq:      e.Seq,
			chunks:   e.Chunks,
			done:     e.Done,
			accepted: e.Accepted,
			clamped:  e.Clamped,
			result:   e.Result.ToResult(),
		}
	}
}

// snapshotSeqs serialises the dedupe table for a durable checkpoint.
func (s *Server) snapshotSeqs() map[string]seqEntry {
	s.seqMu.Lock()
	defer s.seqMu.Unlock()
	out := make(map[string]seqEntry, len(s.seqs))
	for src, st := range s.seqs {
		out[src] = seqEntry{
			Seq:      st.seq,
			Chunks:   st.chunks,
			Done:     st.done,
			Accepted: st.accepted,
			Clamped:  st.clamped,
			Result:   client.FromResult(st.result),
		}
	}
	return out
}

// ckptRetryBase paces the retry after a failed background checkpoint: a
// full -checkpoint-every period of waiting would let WAL segments pile up
// while the failure is likely transient.
const (
	ckptRetryBase = 100 * time.Millisecond
	ckptRetryMax  = 10 * time.Second
)

// checkpointLoop writes a durable checkpoint every period until the server
// shuts down. Each checkpoint also compacts the WAL segments it covers, so
// the log stays bounded by the ingest volume of one period. A failed
// attempt is retried with jittered exponential backoff instead of waiting
// out the period with segments accumulating. Shutdown and Close join
// loopDone so no background persist is in flight when the final checkpoint
// writes or the log closes.
func (s *Server) checkpointLoop(every time.Duration) {
	defer close(s.wal.loopDone)
	t := time.NewTicker(every)
	defer t.Stop()
	var delay time.Duration    // nonzero while retrying a failed checkpoint
	var retry <-chan time.Time // nil unless a retry is scheduled
	for {
		select {
		case <-t.C:
		case <-retry:
		case <-s.quit:
			return
		}
		err := s.checkpointDurable()
		switch {
		case err == nil:
			delay, retry = 0, nil
		case errors.Is(err, ErrClosed):
			return
		default:
			if delay *= 2; delay < ckptRetryBase {
				delay = ckptRetryBase
			}
			if delay > ckptRetryMax {
				delay = ckptRetryMax
			}
			if delay > every {
				delay = every
			}
			s.log.Error("durable checkpoint failed; retrying", "err", err, "backoff_sec", delay.Seconds())
			retry = time.After(jitter(delay))
		}
	}
}

// captureRegistry checkpoints every registered query's engine state,
// deduplicating shared slots (N tenants on one slot cost one checkpoint and
// one persisted blob). Runs on the event loop, or after it drained
// (Shutdown), so the capture is mutually consistent across tenants.
func (s *Server) captureRegistry() (regCapture, error) {
	var rc regCapture
	idx := make(map[*engineSlot]int, len(s.slots))
	for _, t := range s.order {
		sl := t.slot.Load()
		si, ok := idx[sl]
		if !ok {
			blob, err := sl.det.Checkpoint()
			if err != nil {
				return regCapture{}, fmt.Errorf("server: checkpoint query %q: %w", t.id, err)
			}
			si = len(rc.blobs)
			rc.blobs = append(rc.blobs, blob)
			idx[sl] = si
		}
		rc.metas = append(rc.metas, queryMeta{
			ID:              t.id,
			Slot:            si,
			Algorithm:       t.cfg.Algorithm.String(),
			Options:         t.cfg.Options,
			TopK:            t.cfg.TopK,
			TopKReplayOnly:  t.cfg.TopKReplayOnly,
			BestFromEngines: t.cfg.BestFromEngines,
		})
		if t.isDefault {
			rc.defSlot = si
		}
	}
	return rc, nil
}

// checkpointDurable captures the full registry on the event loop — so the
// captured WAL position exactly matches the captured state of every query —
// and persists the capture atomically.
func (s *Server) checkpointDurable() error {
	var rc regCapture
	var lsn, gen uint64
	var cerr error
	if err := s.do(func() {
		rc, cerr = s.captureRegistry()
		lsn = s.wal.log.LastLSN()
		gen = s.wal.ckptGen.Add(1)
		s.snapshots.Add(1)
	}); err != nil {
		return err
	}
	if cerr != nil {
		s.ckptErrs.Add(1)
		return cerr
	}
	if err := s.persistCheckpoint(rc, lsn, gen); err != nil {
		if !errors.Is(err, wal.ErrClosed) {
			s.ckptErrs.Add(1)
		}
		return err
	}
	return nil
}

// persistCheckpoint writes the durable checkpoint wrapper atomically, then
// compacts the WAL segments it fully covers. gen is the capture ticket from
// walState.ckptGen: writes are serialised under ckptMu, and a capture older
// than the newest persisted one is dropped — a slow background checkpoint
// must never roll surge.ckpt back over a newer Shutdown/Restore checkpoint
// whose covering WAL segments are already compacted away.
func (s *Server) persistCheckpoint(rc regCapture, lsn, gen uint64) error {
	ws := s.wal
	ws.ckptMu.Lock()
	defer ws.ckptMu.Unlock()
	if gen < ws.lastGen {
		return nil
	}
	buf, err := encodeDurableCheckpoint(lsn, s.snapshotSeqs(), rc)
	if err != nil {
		return err
	}
	if err := wal.WriteFileAtomicFS(ws.fs, ws.ckptPath, buf, 0o644); err != nil {
		return err
	}
	ws.lastGen = gen
	s.ckpts.Add(1)
	if err := ws.log.CompactBefore(lsn); err != nil && !errors.Is(err, wal.ErrClosed) {
		return err
	}
	s.log.Info("durable checkpoint written", "bytes", len(buf), "lsn", lsn, "queries", len(rc.metas), "engine_slots", len(rc.blobs))
	return nil
}

// --- WAL record payload ---
//
// The WAL stores opaque payloads; this is the server's record schema:
//
//	byte    version (1)
//	uvarint len(source); source bytes ("" for unsequenced ingest)
//	uvarint sequence (0 for unsequenced ingest)
//	uvarint chunk index within the request
//	uvarint object count
//	32 B    per object: time, x, y, weight as little-endian float64 bits
//
// Objects are recorded pre-clamp (as parsed), so replay re-runs the same
// clamp against the same restored stream clock and lands bit-identically.

const walRecordVersion = 1

func encodeWALRecord(buf []byte, src string, seq uint64, chunk uint32, objs []surge.Object) []byte {
	buf = append(buf, walRecordVersion)
	buf = binary.AppendUvarint(buf, uint64(len(src)))
	buf = append(buf, src...)
	buf = binary.AppendUvarint(buf, seq)
	buf = binary.AppendUvarint(buf, uint64(chunk))
	buf = binary.AppendUvarint(buf, uint64(len(objs)))
	for _, o := range objs {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(o.Time))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(o.X))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(o.Y))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(o.Weight))
	}
	return buf
}

var errBadWALRecord = errors.New("truncated or malformed record")

func decodeWALRecord(b []byte) (src string, seq uint64, chunk uint32, objs []surge.Object, err error) {
	fail := func() (string, uint64, uint32, []surge.Object, error) {
		return "", 0, 0, nil, errBadWALRecord
	}
	if len(b) < 1 || b[0] != walRecordVersion {
		return fail()
	}
	b = b[1:]
	n, k := binary.Uvarint(b)
	if k <= 0 || uint64(len(b[k:])) < n {
		return fail()
	}
	src = string(b[k : k+int(n)])
	b = b[k+int(n):]
	if seq, k = binary.Uvarint(b); k <= 0 {
		return fail()
	}
	b = b[k:]
	c, k := binary.Uvarint(b)
	if k <= 0 || c > math.MaxUint32 {
		return fail()
	}
	chunk = uint32(c)
	b = b[k:]
	cnt, k := binary.Uvarint(b)
	if k <= 0 {
		return fail()
	}
	b = b[k:]
	// Overflow-safe form of len(b) == cnt*32: a corrupt count near 2^59
	// would wrap the product, pass the naive check and make() an absurd
	// slice, crashing recovery instead of reporting a bad record.
	if uint64(len(b))%32 != 0 || uint64(len(b))/32 != cnt {
		return fail()
	}
	objs = make([]surge.Object, cnt)
	for i := range objs {
		objs[i] = surge.Object{
			Time:   math.Float64frombits(binary.LittleEndian.Uint64(b[0:8])),
			X:      math.Float64frombits(binary.LittleEndian.Uint64(b[8:16])),
			Y:      math.Float64frombits(binary.LittleEndian.Uint64(b[16:24])),
			Weight: math.Float64frombits(binary.LittleEndian.Uint64(b[24:32])),
		}
		b = b[32:]
	}
	return src, seq, chunk, objs, nil
}

// --- Durable checkpoint wrapper (surge.ckpt) ---
//
// Version 2 (registry checkpoint, written by this server):
//
//	8 B  magic "SURGEDC2"
//	8 B  WAL LSN covered by this checkpoint (little-endian)
//	4 B  dedupe-table JSON length; the JSON (map[source]seqEntry)
//	4 B  registry JSON length; the JSON ([]queryMeta, registry order)
//	4 B  engine-slot count N
//	N x  4 B blob length + detector checkpoint bytes (surge.Restore format)
//
// Version 1 ("SURGEDC1", read-compatible) carried a single detector blob
// instead of the registry; it seeds the default query only.
//
// The file is written with WriteFileAtomic, so boot sees either the old
// checkpoint or the new one, never a torn mix.

var (
	ckptMagicV1 = [8]byte{'S', 'U', 'R', 'G', 'E', 'D', 'C', '1'}
	ckptMagic   = [8]byte{'S', 'U', 'R', 'G', 'E', 'D', 'C', '2'}
)

// queryMeta is one registered query's persisted identity: enough to rebuild
// its tenantConfig at boot without the serve flags. Options round-trips
// through JSON exactly (Go encodes float64 shortest-round-trip), so a
// restored config hashes to the same sharing key.
type queryMeta struct {
	ID              string        `json:"id"`
	Slot            int           `json:"slot"` // index into the blob table
	Algorithm       string        `json:"algorithm"`
	Options         surge.Options `json:"options"`
	TopK            int           `json:"topk"`
	TopKReplayOnly  bool          `json:"topk_replay_only,omitempty"`
	BestFromEngines bool          `json:"best_from_engines,omitempty"`
}

// regCapture is a mutually consistent checkpoint of the whole registry:
// one meta per query, one blob per unique engine slot.
type regCapture struct {
	metas   []queryMeta
	blobs   [][]byte
	defSlot int // blob index of the default query's slot
}

type durableCheckpoint struct {
	lsn  uint64
	seqs map[string]seqEntry
	det  []byte // v1 only: the single detector blob

	// v2 registry: metas is nil on a v1 checkpoint.
	metas []queryMeta
	slots [][]byte
}

// checkpointSeeds turns a v2 registry checkpoint into boot seeds. The
// default query and any id also declared in cfg.Queries take their
// configuration from the config (matching the legacy restore semantics:
// flags choose algorithm and shard layout, the checkpoint supplies state);
// checkpoint-only ids — created at runtime — carry their configuration in
// the checkpoint itself. Config-declared ids missing from the checkpoint
// are appended as fresh queries.
func checkpointSeeds(cfg Config, ck *durableCheckpoint) ([]tenantSeed, error) {
	confByID := make(map[string]client.QueryConfig, len(cfg.Queries))
	for _, qc := range cfg.Queries {
		if !validQueryID(qc.ID) {
			return nil, fmt.Errorf("server: invalid query id %q (want 1-64 chars of [a-zA-Z0-9._-])", qc.ID)
		}
		if qc.ID == DefaultQueryID {
			return nil, fmt.Errorf("server: duplicate query id %q", qc.ID)
		}
		if _, dup := confByID[qc.ID]; dup {
			return nil, fmt.Errorf("server: duplicate query id %q", qc.ID)
		}
		confByID[qc.ID] = qc
	}
	seeds := make([]tenantSeed, 0, len(ck.metas)+len(cfg.Queries))
	seen := make(map[string]bool, len(ck.metas))
	for _, m := range ck.metas {
		if m.Slot < 0 || m.Slot >= len(ck.slots) {
			return nil, fmt.Errorf("server: corrupt durable checkpoint: query %q references slot %d of %d", m.ID, m.Slot, len(ck.slots))
		}
		if seen[m.ID] {
			return nil, fmt.Errorf("server: corrupt durable checkpoint: duplicate query %q", m.ID)
		}
		seen[m.ID] = true
		var tc tenantConfig
		switch {
		case m.ID == DefaultQueryID:
			tc = defaultTenantConfig(cfg)
		default:
			if qc, ok := confByID[m.ID]; ok {
				var err error
				if tc, err = resolveQuery(cfg, qc); err != nil {
					return nil, err
				}
				break
			}
			alg, err := surge.ParseAlgorithm(m.Algorithm)
			if err != nil {
				return nil, fmt.Errorf("server: corrupt durable checkpoint: query %q: %w", m.ID, err)
			}
			tc = tenantConfig{
				Algorithm:       alg,
				Options:         m.Options,
				TopK:            m.TopK,
				TopKReplayOnly:  m.TopKReplayOnly,
				BestFromEngines: m.BestFromEngines,
			}
			if tc.TopK < 1 {
				tc.TopK = cfg.TopK
			}
		}
		seeds = append(seeds, tenantSeed{id: m.ID, cfg: tc, ckpt: ck.slots[m.Slot], slotTag: m.Slot})
	}
	if !seen[DefaultQueryID] {
		// A v2 checkpoint always records the default query; tolerate its
		// absence (hand-edited file) by booting it fresh.
		seeds = append([]tenantSeed{{id: DefaultQueryID, cfg: defaultTenantConfig(cfg), slotTag: -1}}, seeds...)
	}
	for _, qc := range cfg.Queries {
		if seen[qc.ID] {
			continue
		}
		tc, err := resolveQuery(cfg, qc)
		if err != nil {
			return nil, err
		}
		seeds = append(seeds, tenantSeed{id: qc.ID, cfg: tc, slotTag: -1})
	}
	return seeds, nil
}

func encodeDurableCheckpoint(lsn uint64, seqs map[string]seqEntry, rc regCapture) ([]byte, error) {
	sj, err := json.Marshal(seqs)
	if err != nil { // a map of plain structs cannot fail to marshal
		sj = []byte("{}")
	}
	mj, err := json.Marshal(rc.metas)
	if err != nil {
		return nil, fmt.Errorf("server: encode registry: %w", err)
	}
	total := 28 + len(sj) + len(mj)
	for _, b := range rc.blobs {
		total += 4 + len(b)
	}
	buf := make([]byte, 0, total)
	buf = append(buf, ckptMagic[:]...)
	buf = binary.LittleEndian.AppendUint64(buf, lsn)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(sj)))
	buf = append(buf, sj...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(mj)))
	buf = append(buf, mj...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rc.blobs)))
	for _, b := range rc.blobs {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(b)))
		buf = append(buf, b...)
	}
	return buf, nil
}

// readDurableCheckpoint loads dir's checkpoint, returning (nil, nil) when
// none exists yet. A checkpoint that fails to parse is a hard error —
// atomic writes mean it cannot be a crash artifact, so silently starting
// empty would discard acknowledged state. Both format versions are read;
// only v2 is written.
func readDurableCheckpoint(path string) (*durableCheckpoint, error) {
	b, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	bad := func(what string) (*durableCheckpoint, error) {
		return nil, fmt.Errorf("server: corrupt durable checkpoint %s: %s", path, what)
	}
	if len(b) < 24 {
		return nil, fmt.Errorf("server: %s is not a durable checkpoint (too short)", path)
	}
	var v2 bool
	switch [8]byte(b[:8]) {
	case ckptMagic:
		v2 = true
	case ckptMagicV1:
	default:
		return nil, fmt.Errorf("server: %s is not a durable checkpoint (bad magic)", path)
	}
	ck := &durableCheckpoint{lsn: binary.LittleEndian.Uint64(b[8:16])}
	b = b[16:]
	sl := binary.LittleEndian.Uint32(b[:4])
	b = b[4:]
	if uint64(len(b)) < uint64(sl)+4 {
		return bad("short dedupe table")
	}
	if err := json.Unmarshal(b[:sl], &ck.seqs); err != nil {
		return bad("dedupe table: " + err.Error())
	}
	b = b[sl:]
	if !v2 {
		dl := binary.LittleEndian.Uint32(b[:4])
		b = b[4:]
		if uint64(len(b)) != uint64(dl) {
			return bad("detector checkpoint length mismatch")
		}
		ck.det = b
		return ck, nil
	}
	ml := binary.LittleEndian.Uint32(b[:4])
	b = b[4:]
	if uint64(len(b)) < uint64(ml)+4 {
		return bad("short registry")
	}
	if err := json.Unmarshal(b[:ml], &ck.metas); err != nil {
		return bad("registry: " + err.Error())
	}
	if ck.metas == nil {
		ck.metas = []queryMeta{}
	}
	b = b[ml:]
	n := binary.LittleEndian.Uint32(b[:4])
	b = b[4:]
	ck.slots = make([][]byte, 0, n)
	for i := uint32(0); i < n; i++ {
		if len(b) < 4 {
			return bad("short slot table")
		}
		bl := binary.LittleEndian.Uint32(b[:4])
		b = b[4:]
		if uint64(len(b)) < uint64(bl) {
			return bad("short slot blob")
		}
		ck.slots = append(ck.slots, b[:bl])
		b = b[bl:]
	}
	if len(b) != 0 {
		return bad("trailing bytes")
	}
	return ck, nil
}
