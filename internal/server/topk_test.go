package server

import (
	"context"
	"math"
	"net/http"
	"testing"
	"time"

	"surge"
	"surge/client"
)

// ingestChunks pushes objs in fixed-size ingest requests.
func ingestChunks(ctx context.Context, t *testing.T, c *client.Client, objs []surge.Object, chunk int) {
	t.Helper()
	for lo := 0; lo < len(objs); lo += chunk {
		hi := min(lo+chunk, len(objs))
		if _, err := c.Ingest(ctx, objs[lo:hi]); err != nil {
			t.Fatal(err)
		}
	}
}

// bitEqualWireTopK asserts two wire top-k answers agree bitwise on scores
// and found flags at every rank.
func bitEqualWireTopK(t *testing.T, label string, a, b *client.TopK) {
	t.Helper()
	if a.K != b.K || len(a.Results) != len(b.Results) {
		t.Fatalf("%s: shape %d/%d vs %d/%d", label, a.K, len(a.Results), b.K, len(b.Results))
	}
	for i := range a.Results {
		ra, rb := a.Results[i], b.Results[i]
		if ra.Found != rb.Found || math.Float64bits(ra.Score) != math.Float64bits(rb.Score) {
			t.Fatalf("%s rank %d: %+v != %+v", label, i, ra, rb)
		}
	}
}

// TestTopKContinuousMatchesReplay is the serving half of the equivalence
// guarantee: at every checkpoint of a randomized ingest, the O(1)
// continuous answer of /v1/topk equals the ?mode=replay escape hatch
// bitwise — including the k-prefix fast path — on a sharded server.
func TestTopKContinuousMatchesReplay(t *testing.T) {
	objs := testObjects(97, 1200, 6)
	_, _, c := newTestServer(t, Config{
		Algorithm: surge.CellCSPOT, Options: testOptions(3),
		TimePolicy: Strict, TopK: 4, BatchSize: 64,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for lo := 0; lo < len(objs); lo += 400 {
		hi := min(lo+400, len(objs))
		ingestChunks(ctx, t, c, objs[lo:hi], 100)

		cont, err := c.TopK(ctx, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !cont.Continuous || cont.K != 4 {
			t.Fatalf("default query not served from the maintained answer: %+v", cont)
		}
		replay, err := c.TopKMode(ctx, 4, "replay")
		if err != nil {
			t.Fatal(err)
		}
		if replay.Continuous {
			t.Fatal("mode=replay served from the maintained answer")
		}
		bitEqualWireTopK(t, "continuous vs replay", cont, replay)

		// Prefix fast path: k=2 is the first two ranks of the maintained 4.
		pre, err := c.TopKMode(ctx, 2, "continuous")
		if err != nil {
			t.Fatal(err)
		}
		if !pre.Continuous || pre.K != 2 || len(pre.Results) != 2 {
			t.Fatalf("prefix query %+v", pre)
		}
		for i := range pre.Results {
			if math.Float64bits(pre.Results[i].Score) != math.Float64bits(cont.Results[i].Score) {
				t.Fatalf("prefix rank %d: %v != %v", i, pre.Results[i].Score, cont.Results[i].Score)
			}
		}
	}

	// k beyond the maintained K falls back to replay transparently...
	wide, err := c.TopK(ctx, 7)
	if err != nil {
		t.Fatal(err)
	}
	if wide.Continuous || wide.K != 7 {
		t.Fatalf("k beyond maintained K: %+v", wide)
	}
	// ...but an explicit mode=continuous is rejected rather than silently
	// degraded.
	if _, err := c.TopKMode(ctx, 7, "continuous"); err == nil {
		t.Fatal("mode=continuous beyond the maintained k accepted")
	}
	if _, err := c.TopKMode(ctx, 3, "bogus"); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

// TestTopKReplayOnly pins the escape configuration: with TopKReplayOnly
// every query replays (the pre-maintenance behaviour) and mode=continuous
// is rejected.
func TestTopKReplayOnly(t *testing.T) {
	objs := testObjects(101, 400, 6)
	_, _, c := newTestServer(t, Config{
		Algorithm: surge.CellCSPOT, Options: testOptions(2),
		TimePolicy: Strict, TopK: 3, TopKReplayOnly: true,
	})
	ctx := context.Background()
	ingestChunks(ctx, t, c, objs, 200)
	tk, err := c.TopK(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tk.Continuous || tk.K != 3 || !tk.Results[0].Found {
		t.Fatalf("replay-only topk %+v", tk)
	}
	if _, err := c.TopKMode(ctx, 3, "continuous"); err == nil {
		t.Fatal("mode=continuous accepted in replay-only mode")
	}
}

// TestTopKSSEMatchesOffline extends the serving consistency guarantee to
// the top-k stream: the "topk" SSE notifications of a sharded server equal,
// bit for bit in every rank's score, the top-k change log of an offline
// single-engine run with the same batch boundaries.
func TestTopKSSEMatchesOffline(t *testing.T) {
	const batch = 64
	const k = 3
	objs := testObjects(11, 1500, 6)

	// Offline reference: a detector with an attached maintained top-k,
	// queried at the same batch boundaries.
	off, err := surge.New(surge.CellCSPOT, testOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	defer off.Close()
	offTK, err := off.AttachTopK(surge.CellCSPOT, k)
	if err != nil {
		t.Fatal(err)
	}
	var want [][]surge.Result
	last := append([]surge.Result(nil), offTK.BestK()...)
	for lo := 0; lo < len(objs); lo += batch {
		hi := min(lo+batch, len(objs))
		if _, err := off.PushBatch(objs[lo:hi]); err != nil {
			t.Fatal(err)
		}
		cur := offTK.BestK()
		if !topkEqual(cur, last) {
			last = append(last[:0], cur...)
			want = append(want, append([]surge.Result(nil), cur...))
		}
	}
	if len(want) < 5 {
		t.Fatalf("weak test stream: only %d top-k changes", len(want))
	}

	_, _, c := newTestServer(t, Config{
		Algorithm:  surge.CellCSPOT,
		Options:    testOptions(3),
		BatchSize:  batch,
		TimePolicy: Strict,
		TopK:       k,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	sub, err := c.Subscribe(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if _, err := c.Ingest(ctx, objs); err != nil {
		t.Fatal(err)
	}
	got := make([]client.TopKNotification, 0, len(want))
	for len(got) < len(want) {
		select {
		case n, ok := <-sub.TopKEvents():
			if !ok {
				t.Fatalf("subscription closed early (err=%v) after %d/%d events", sub.Err(), len(got), len(want))
			}
			if n.Dropped != 0 {
				t.Fatalf("top-k notification %d reports %d drops on an unloaded subscriber", n.Seq, n.Dropped)
			}
			got = append(got, n)
		case <-ctx.Done():
			t.Fatalf("timed out after %d/%d top-k events", len(got), len(want))
		}
	}
	for i, n := range got {
		if n.Seq != uint64(i+1) || n.K != k || len(n.Results) != k {
			t.Fatalf("event %d: seq %d k %d len %d", i, n.Seq, n.K, len(n.Results))
		}
		for r := 0; r < k; r++ {
			w := client.FromResult(want[i][r])
			if n.Results[r].Found != w.Found ||
				math.Float64bits(n.Results[r].Score) != math.Float64bits(w.Score) {
				t.Fatalf("event %d rank %d: score %v (found=%v) != offline %v (found=%v)",
					i, r, n.Results[r].Score, n.Results[r].Found, w.Score, w.Found)
			}
		}
	}
}

// TestSSEReconnectBackfill drives the Last-Event-ID path over HTTP: a
// subscriber that disconnects mid-stream resumes with SubscribeFrom and
// receives exactly the events it missed — no hello, original ids, burst
// and topk interleaved — with ring evictions surfaced in the Dropped
// accounting.
func TestSSEReconnectBackfill(t *testing.T) {
	objs := testObjects(41, 1200, 6)
	_, _, c := newTestServer(t, Config{
		Algorithm: surge.CellCSPOT, Options: testOptions(2),
		TimePolicy: Strict, BatchSize: 32, TopK: 3, NotifyRing: 4096,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	sub, err := c.Subscribe(ctx)
	if err != nil {
		t.Fatal(err)
	}
	ingestChunks(ctx, t, c, objs[:400], 100)

	// Read a few burst events, then drop the connection. The resume cursor
	// is the EventID of the last notification actually processed — the
	// client may have decoded further ahead into its buffer.
	var lastBurst, lastID uint64
	for i := 0; i < 3; i++ {
		select {
		case n := <-sub.Events():
			lastBurst = n.Seq
			lastID = n.EventID
		case <-ctx.Done():
			t.Fatal("no burst events before disconnect")
		}
	}
	if lastID == 0 {
		t.Fatal("subscription did not track event ids")
	}
	sub.Close()

	ingestChunks(ctx, t, c, objs[400:800], 100)

	// Resume: the missed burst events arrive seamlessly, seq-continuous
	// with what the first subscription saw, and without a hello.
	sub2, err := c.SubscribeFrom(ctx, lastID)
	if err != nil {
		t.Fatal(err)
	}
	if !sub2.Resumed() || sub2.Hello().Seq != 0 {
		t.Fatalf("resumed subscription got a hello: %+v", sub2.Hello())
	}
	st, err := c.Best(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var burstSeen, topkSeen int
	wantNext := lastBurst + 1
deadline:
	for uint64(burstSeen)+lastBurst < st.Seq {
		select {
		case n, ok := <-sub2.Events():
			if !ok {
				t.Fatalf("resumed subscription closed: %v", sub2.Err())
			}
			if n.Dropped != 0 {
				t.Fatalf("resumed burst %d reports %d drops with an ample ring", n.Seq, n.Dropped)
			}
			if n.Seq != wantNext {
				t.Fatalf("resumed burst seq %d, want %d (no gap, no replemption)", n.Seq, wantNext)
			}
			wantNext++
			burstSeen++
		case <-sub2.TopKEvents():
			topkSeen++
		case <-ctx.Done():
			break deadline
		}
	}
	if uint64(burstSeen)+lastBurst != st.Seq {
		t.Fatalf("resumed subscription replayed %d bursts after seq %d, server is at %d", burstSeen, lastBurst, st.Seq)
	}
	if sub2.LastEventID() <= lastID {
		t.Fatal("resumed subscription did not advance its event id")
	}
	sub2.Close()

	// A reconnect far behind a tiny ring preserves exact accounting: the
	// first replayed event carries the evicted-event count.
	_, _, c2 := newTestServer(t, Config{
		Algorithm: surge.CellCSPOT, Options: testOptions(1),
		TimePolicy: Strict, BatchSize: 1, TopK: 1, NotifyRing: 8, SubscriberBuffer: 4096,
	})
	grow := make([]surge.Object, 300)
	for i := range grow {
		grow[i] = surge.Object{X: 2, Y: 2, Weight: 5, Time: float64(i)}
	}
	if _, err := c2.Ingest(ctx, grow); err != nil {
		t.Fatal(err)
	}
	st2, err := c2.Best(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Events < 20 {
		t.Fatalf("weak stream: only %d events published", st2.Events)
	}
	sub3, err := c2.SubscribeFrom(ctx, 1) // missed almost everything
	if err != nil {
		t.Fatal(err)
	}
	defer sub3.Close()
	var delivered, droppedSum, maxEID uint64
	for maxEID < st2.Events {
		select {
		case n, ok := <-sub3.Events():
			if !ok {
				t.Fatalf("backfill subscription closed: %v", sub3.Err())
			}
			delivered++
			droppedSum += n.Dropped
			maxEID = max(maxEID, n.EventID)
		case n := <-sub3.TopKEvents():
			delivered++
			droppedSum += n.Dropped
			maxEID = max(maxEID, n.EventID)
		case <-ctx.Done():
			t.Fatalf("timed out draining backfill: delivered %d, max id %d of %d", delivered, maxEID, st2.Events)
		}
	}
	// Seeing the newest event id only proves the reader enqueued everything
	// before it; the other channel may still hold buffered events — drain
	// both dry before checking the accounting.
	for drained := false; !drained; {
		select {
		case n := <-sub3.Events():
			delivered++
			droppedSum += n.Dropped
		case n := <-sub3.TopKEvents():
			delivered++
			droppedSum += n.Dropped
		default:
			drained = true
		}
	}
	// Exact accounting: events delivered + events dropped = events
	// published since the resume point (id 1).
	if delivered+droppedSum != st2.Events-1 {
		t.Fatalf("accounting broken: %d delivered + %d dropped != %d published after id 1",
			delivered, droppedSum, st2.Events-1)
	}
	if droppedSum == 0 {
		t.Fatal("weak test: the tiny ring dropped nothing")
	}
}

// TestTopKFastPathAfterRestore checks the maintained answer survives both
// restore paths: Config.Checkpoint at boot and live /v1/restore.
func TestTopKFastPathAfterRestore(t *testing.T) {
	objs := testObjects(57, 600, 6)
	ctx := context.Background()
	_, _, c1 := newTestServer(t, Config{
		Algorithm: surge.CellCSPOT, Options: testOptions(2), TimePolicy: Strict, TopK: 3,
	})
	ingestChunks(ctx, t, c1, objs, 150)
	want, err := c1.TopK(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	ckpt, err := c1.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}

	// Boot-time restore.
	_, _, c2 := newTestServer(t, Config{
		Algorithm: surge.CellCSPOT, Options: testOptions(3), TimePolicy: Strict, TopK: 3,
		Checkpoint: ckpt,
	})
	got, err := c2.TopKMode(ctx, 3, "continuous")
	if err != nil {
		t.Fatal(err)
	}
	bitEqualWireTopK(t, "boot restore", want, got)

	// Live restore into a running server.
	_, _, c3 := newTestServer(t, Config{
		Algorithm: surge.CellCSPOT, Options: testOptions(1), TimePolicy: Strict, TopK: 3,
	})
	ingestChunks(ctx, t, c3, testObjects(58, 100, 6), 50) // unrelated prior state
	if _, err := c3.Restore(ctx, ckpt); err != nil {
		t.Fatal(err)
	}
	got3, err := c3.TopKMode(ctx, 3, "continuous")
	if err != nil {
		t.Fatal(err)
	}
	bitEqualWireTopK(t, "live restore", want, got3)

	// The fast path must hold bitwise against replay after the restore too.
	rep, err := c3.TopKMode(ctx, 3, "replay")
	if err != nil {
		t.Fatal(err)
	}
	bitEqualWireTopK(t, "restored continuous vs replay", got3, rep)
}

// TestRestoreTwiceSwapsMaintainedTopK pins the restore lifecycle of the
// maintained top-k detector: every live restore closes the old attached
// detector on the event loop *before* the replacement attaches, so
// restoring repeatedly — with ingest batches racing the restores — cannot
// accumulate attached engines behind the serving detector or leave a stale
// maintained answer. After the dust settles the continuous answer must
// still hold bitwise against checkpoint replay, and the server stays
// healthy.
func TestRestoreTwiceSwapsMaintainedTopK(t *testing.T) {
	objs := testObjects(91, 900, 6)
	ctx := context.Background()
	_, _, c := newTestServer(t, Config{
		Algorithm: surge.CellCSPOT, Options: testOptions(2), TimePolicy: Clamp, TopK: 3, BatchSize: 64,
	})
	ingestChunks(ctx, t, c, objs[:300], 75)
	ckpt, err := c.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Ingest concurrently while restoring twice back to back, so batch
	// refreshes of the maintained detector race both swaps.
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 300; i < 700; i += 40 {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := c.Ingest(ctx, objs[i:i+40]); err != nil {
				return // the server serialises; an error here only ends the pressure
			}
		}
	}()
	if _, err := c.Restore(ctx, ckpt); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Restore(ctx, ckpt); err != nil {
		t.Fatal(err)
	}
	close(stop)
	<-done
	// The second restore's maintained detector must actually maintain:
	// push a deterministic tail and compare against replay over the same
	// state.
	ingestChunks(ctx, t, c, objs[700:], 50)
	cont, err := c.TopKMode(ctx, 3, "continuous")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.TopKMode(ctx, 3, "replay")
	if err != nil {
		t.Fatal(err)
	}
	bitEqualWireTopK(t, "restore-twice continuous vs replay", cont, rep)
	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !h.OK || h.Err != "" {
		t.Fatalf("server unhealthy after restores: %+v", h)
	}
}

// TestStateEventsCounter: hello carries the SSE event id base used for
// reconnects.
func TestStateEventsCounter(t *testing.T) {
	_, ts, c := newTestServer(t, Config{
		Algorithm: surge.CellCSPOT, Options: testOptions(1), TimePolicy: Strict, TopK: 2,
	})
	ctx := context.Background()
	ingestChunks(ctx, t, c, testObjects(61, 300, 6), 100)
	st, err := c.Best(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Events < st.Seq {
		t.Fatalf("events %d < burst seq %d", st.Events, st.Seq)
	}
	resp, err := http.Get(ts.URL + "/v1/topk?k=0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("k=0 returned %d, want 400", resp.StatusCode)
	}
}
