package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"

	"surge"
	"surge/client"
)

// handleIngest streams an NDJSON (default) or CSV batch into the detector.
// The body is parsed here, concurrently with other ingesters — the hot
// path — and applied in BatchSize chunks on the event loop, so every chunk
// is one PushBatch synchronisation of the sharded pipeline.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	parse := parseNDJSON
	if ct := r.Header.Get("Content-Type"); strings.Contains(ct, "csv") {
		parse = parseCSV
	}
	var (
		accepted, clamped int
		final             surge.Result
	)
	apply := func(chunk []surge.Object) error {
		var res surge.Result
		var c int
		var aerr error
		if err := s.do(func() { res, c, aerr = s.applyBatch(chunk) }); err != nil {
			return err
		}
		if aerr != nil {
			return aerr
		}
		final = res
		accepted += len(chunk)
		clamped += c
		return nil
	}

	// Objects are validated (and, under the strict policy, order-checked
	// within the request) before a chunk is submitted, so PushBatch can
	// only fail on its first object — a chunk is applied in full or not at
	// all, keeping the reported Accepted count exact.
	strict := s.cfg.TimePolicy != Clamp
	lastT := math.Inf(-1)
	chunk := make([]surge.Object, 0, s.batch)
	err := parse(r.Body, func(o surge.Object) error {
		if err := validateObject(o); err != nil {
			return err
		}
		if strict {
			if o.Time < lastT {
				return fmt.Errorf("server: out-of-order object at t=%v before t=%v (strict policy)", o.Time, lastT)
			}
			lastT = o.Time
		}
		chunk = append(chunk, o)
		if len(chunk) >= s.batch {
			if err := apply(chunk); err != nil {
				return err
			}
			chunk = chunk[:0]
		}
		return nil
	})
	if err == nil && len(chunk) > 0 {
		err = apply(chunk)
	}
	if err != nil {
		s.ingestErr.Add(1)
		status := http.StatusBadRequest
		if err == ErrClosed {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, err, accepted)
		return
	}
	writeJSON(w, client.IngestResult{
		Accepted: accepted,
		Clamped:  clamped,
		Result:   client.FromResult(final),
	})
}

// validateObject mirrors the window engine's own object validation so a
// bad object is rejected before its chunk is submitted, never mid-batch.
func validateObject(o surge.Object) error {
	if math.IsNaN(o.X) || math.IsInf(o.X, 0) || math.IsNaN(o.Y) || math.IsInf(o.Y, 0) {
		return fmt.Errorf("server: object has non-finite location (%v, %v)", o.X, o.Y)
	}
	if math.IsNaN(o.Time) || math.IsInf(o.Time, 0) {
		return fmt.Errorf("server: object has non-finite time %v", o.Time)
	}
	if !(o.Weight >= 0) || math.IsInf(o.Weight, 0) {
		return fmt.Errorf("server: object weight %v must be finite and non-negative", o.Weight)
	}
	return nil
}

// wireObject decodes one NDJSON ingest line; pointer fields distinguish
// missing from zero (weight defaults to 1, time/x/y are required).
type wireObject struct {
	Time   *float64 `json:"time"`
	X      *float64 `json:"x"`
	Y      *float64 `json:"y"`
	Weight *float64 `json:"weight"`
}

// parseNDJSON streams objects from newline-delimited JSON.
func parseNDJSON(r io.Reader, emit func(surge.Object) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var wo wireObject
		if err := json.Unmarshal([]byte(text), &wo); err != nil {
			return fmt.Errorf("server: ingest line %d: %w", line, err)
		}
		if wo.Time == nil || wo.X == nil || wo.Y == nil {
			return fmt.Errorf("server: ingest line %d: time, x and y are required", line)
		}
		o := surge.Object{Time: *wo.Time, X: *wo.X, Y: *wo.Y, Weight: 1}
		if wo.Weight != nil {
			o.Weight = *wo.Weight
		}
		if err := emit(o); err != nil {
			return err
		}
	}
	return sc.Err()
}

// parseCSV streams objects from "time,x,y,weight" lines — the same format
// surged reads offline, so a recorded stream replays into the server
// unchanged. Blank lines and '#' comments are skipped.
func parseCSV(r io.Reader, emit func(surge.Object) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) != 4 {
			return fmt.Errorf("server: ingest line %d: want time,x,y,weight", line)
		}
		var vals [4]float64
		for i, p := range parts {
			v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				return fmt.Errorf("server: ingest line %d field %d: %w", line, i+1, err)
			}
			vals[i] = v
		}
		if err := emit(surge.Object{Time: vals[0], X: vals[1], Y: vals[2], Weight: vals[3]}); err != nil {
			return err
		}
	}
	return sc.Err()
}

// readBody reads a request body up to limit bytes, erroring beyond it.
func readBody(r *http.Request, limit int64) ([]byte, error) {
	data, err := io.ReadAll(io.LimitReader(r.Body, limit+1))
	if err != nil {
		return nil, fmt.Errorf("server: reading body: %w", err)
	}
	if int64(len(data)) > limit {
		return nil, fmt.Errorf("server: body exceeds %d bytes", limit)
	}
	return data, nil
}
