package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"
	"unsafe"

	"surge"
	"surge/client"
	"surge/internal/obs"
)

// handleIngest streams an NDJSON (default) or CSV batch into the detector.
// The body is parsed here, concurrently with other ingesters — the hot
// path — and applied in BatchSize chunks on the event loop, so every chunk
// is one PushBatch synchronisation of the sharded pipeline.
//
// The parse is allocation-free in the steady state: lines are scanned as
// byte slices out of the reader's buffer, fields are decoded in place
// (parseObjectJSON / the CSV field walk) and the chunk buffer is recycled
// across requests, so per-request heap traffic is bounded by the handful of
// event-loop submissions, not by the object count.
//
// An optional Ingest-Seq header ("source:sequence") makes the request
// idempotent: the server applies each (source, sequence) at most once, a
// retry of an applied sequence replays the original ack, and a retry of a
// partially applied one (the ack was lost mid-request) resumes at the
// first unapplied chunk — chunking is deterministic from the body and the
// batch size, so the resume point is exact. Sequences must grow
// monotonically per source.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	parse := parseNDJSON
	if ct := r.Header.Get("Content-Type"); strings.Contains(ct, "csv") {
		parse = parseCSV
	}
	var (
		seqSrc string
		seqNum uint64
		seqSt  *sourceSeq
		skip   uint32 // chunks of this sequence already applied (resume)
	)
	if h := r.Header.Get("Ingest-Seq"); h != "" {
		src, num, err := parseIngestSeq(h)
		if err != nil {
			writeError(w, http.StatusBadRequest, err, 0)
			return
		}
		st, sk, replay, err := s.claimSeq(src, num)
		if err != nil {
			s.ingestErr.Add(1)
			code := client.CodeSeqOutOfOrder
			if errors.Is(err, errSeqConflict) {
				code = client.CodeSeqConflict
			}
			writeErrorCode(w, http.StatusConflict, code, 0, err, 0)
			return
		}
		if replay != nil {
			writeJSON(w, *replay)
			return
		}
		seqSrc, seqNum, seqSt, skip = src, num, st, sk
		defer s.releaseSeq(st)
	}
	var (
		accepted, clamped int
		chunkIdx          uint32
		final             surge.Result
		ackTotal          time.Duration
		reqStart          time.Time
	)
	rec := obs.On()
	if rec {
		reqStart = time.Now()
	}
	apply := func(chunk []surge.Object) error {
		idx := chunkIdx
		chunkIdx++
		if idx < skip {
			// Applied before the lost ack; the dedupe state holds its counts.
			return nil
		}
		if s.degraded.Load() {
			// Durability lost: shed before queueing (one atomic load on the
			// healthy fast path). applyLogged re-checks on the loop, so a
			// fault landing between here and the apply still never acks.
			s.shedDegraded.Add(1)
			return errDegraded
		}
		if s.maxPending > 0 && s.pendingChunks.Add(1) > s.maxPending {
			s.pendingChunks.Add(-1)
			s.throttled.Add(1)
			return errOverloaded
		}
		var res surge.Result
		var c int
		var aerr error
		var t0 time.Time
		if rec {
			t0 = time.Now()
		}
		err := s.do(func() {
			res, c, aerr = s.applyLogged(chunk, seqSrc, seqNum, idx)
			if aerr == nil && seqSt != nil {
				// Fold the dedupe update on the loop, in the same closure as
				// the apply (boot replay does the same): a durable checkpoint
				// captures its WAL position on the loop, so the dedupe table
				// it later snapshots can never be behind that position.
				s.noteSeqApplied(seqSrc, seqNum, idx, len(chunk), c, res)
			}
		})
		if s.maxPending > 0 {
			s.pendingChunks.Add(-1)
		}
		if err != nil {
			return err
		}
		if rec {
			d := time.Since(t0)
			ackTotal += d
			s.mAck.Observe(d)
		}
		if aerr != nil {
			return aerr
		}
		final = res
		accepted += len(chunk)
		clamped += c
		return nil
	}

	// Objects are validated (and, under the strict policy, order-checked
	// within the request) before a chunk is submitted, so PushBatch can
	// only fail on its first object — a chunk is applied in full or not at
	// all, keeping the reported Accepted count exact.
	strict := s.cfg.TimePolicy != Clamp
	lastT := math.Inf(-1)
	chunk := s.getChunk()
	defer s.putChunk(chunk)
	err := parse(r.Body, func(o surge.Object) error {
		if err := validateObject(o); err != nil {
			return err
		}
		if strict {
			if o.Time < lastT {
				return fmt.Errorf("server: out-of-order object at t=%v before t=%v (strict policy)", o.Time, lastT)
			}
			lastT = o.Time
		}
		*chunk = append(*chunk, o)
		if len(*chunk) >= s.batch {
			if err := apply(*chunk); err != nil {
				return err
			}
			*chunk = (*chunk)[:0]
		}
		return nil
	})
	if err == nil && len(*chunk) > 0 {
		err = apply(*chunk)
	}
	if rec {
		// Parse cost is the request time the handler spent outside the
		// event loop: scanning, decoding and validation.
		s.mParse.Observe(time.Since(reqStart) - ackTotal)
	}
	if err != nil {
		s.ingestErr.Add(1)
		status := http.StatusBadRequest
		code := ""
		retryAfter := 0
		switch {
		case errors.Is(err, ErrClosed):
			status = http.StatusServiceUnavailable
		case errors.Is(err, errOverloaded):
			status = http.StatusTooManyRequests
			code = client.CodeOverloaded
			retryAfter = overloadRetryAfterSec
		case errors.Is(err, errDegraded):
			status = http.StatusServiceUnavailable
			code = client.CodeDurabilityDegraded
			retryAfter = degradedRetryAfterSec
		case errors.Is(err, errPipeline):
			status = http.StatusInternalServerError
		}
		writeErrorCode(w, status, code, retryAfter, err, accepted)
		return
	}
	out := client.IngestResult{
		Accepted: accepted,
		Clamped:  clamped,
		Result:   client.FromResult(final),
	}
	if seqSt != nil {
		// The ack must be the one a crash-free run would have sent — and the
		// one a duplicate retry replays — so report the sequence's cumulative
		// state, which includes chunks applied before a lost ack.
		out = s.finishSeq(seqSt)
	}
	writeJSON(w, out)
}

// overloadRetryAfterSec is the backoff hint sent with a 429: the loop
// drains hundreds of chunks per second even under load, so one second is
// enough for the watermark to clear.
const overloadRetryAfterSec = 1

// errOverloaded marks a chunk shed by admission control.
var errOverloaded = errors.New("server: ingest queue full, retry later")

// errSeqOutOfOrder and errSeqConflict are the Ingest-Seq rejections; both
// map to 409 with their client.Code* counterparts.
var (
	errSeqOutOfOrder = errors.New("server: ingest sequence is older than the newest one seen from this source")
	errSeqConflict   = errors.New("server: another request from this source is in flight")
)

// parseIngestSeq parses an Ingest-Seq header: "source:sequence" with a
// non-empty source (at most 128 bytes; colons allowed — the split is at
// the last one) and a decimal sequence >= 1.
func parseIngestSeq(h string) (string, uint64, error) {
	i := strings.LastIndexByte(h, ':')
	if i <= 0 || i == len(h)-1 {
		return "", 0, fmt.Errorf("server: malformed Ingest-Seq %q (want source:sequence)", h)
	}
	src := h[:i]
	if len(src) > 128 {
		return "", 0, fmt.Errorf("server: Ingest-Seq source exceeds 128 bytes")
	}
	seq, err := strconv.ParseUint(h[i+1:], 10, 64)
	if err != nil || seq == 0 {
		return "", 0, fmt.Errorf("server: invalid Ingest-Seq sequence %q (want a decimal >= 1)", h[i+1:])
	}
	return src, seq, nil
}

// claimSeq admits an Ingest-Seq'd request against the per-source dedupe
// state: reject stale sequences and concurrent requests for the same
// source, replay the stored ack for a completed duplicate, and otherwise
// mark the source in flight and return how many chunks of this sequence
// are already applied (the resume point after a lost ack).
func (s *Server) claimSeq(src string, seq uint64) (st *sourceSeq, skip uint32, replay *client.IngestResult, err error) {
	s.seqMu.Lock()
	defer s.seqMu.Unlock()
	st = s.seqs[src]
	if st == nil {
		st = &sourceSeq{}
		s.seqs[src] = st
	}
	if st.active {
		return nil, 0, nil, errSeqConflict
	}
	if seq < st.seq {
		return nil, 0, nil, fmt.Errorf("%w (got %d, newest %d)", errSeqOutOfOrder, seq, st.seq)
	}
	if seq == st.seq {
		if st.done {
			return nil, 0, &client.IngestResult{
				Accepted: st.accepted,
				Clamped:  st.clamped,
				Result:   client.FromResult(st.result),
			}, nil
		}
		skip = st.chunks
	} else {
		*st = sourceSeq{seq: seq}
	}
	st.active = true
	return st, skip, nil, nil
}

// releaseSeq clears the in-flight flag when the request finishes.
func (s *Server) releaseSeq(st *sourceSeq) {
	s.seqMu.Lock()
	st.active = false
	s.seqMu.Unlock()
}

// finishSeq marks the sequence fully applied and returns its cumulative
// ack — the reply now, and the one replayed for any later duplicate.
func (s *Server) finishSeq(st *sourceSeq) client.IngestResult {
	s.seqMu.Lock()
	defer s.seqMu.Unlock()
	st.done = true
	return client.IngestResult{
		Accepted: st.accepted,
		Clamped:  st.clamped,
		Result:   client.FromResult(st.result),
	}
}

// validateObject mirrors the window engine's own object validation so a
// bad object is rejected before its chunk is submitted, never mid-batch.
func validateObject(o surge.Object) error {
	if math.IsNaN(o.X) || math.IsInf(o.X, 0) || math.IsNaN(o.Y) || math.IsInf(o.Y, 0) {
		return fmt.Errorf("server: object has non-finite location (%v, %v)", o.X, o.Y)
	}
	if math.IsNaN(o.Time) || math.IsInf(o.Time, 0) {
		return fmt.Errorf("server: object has non-finite time %v", o.Time)
	}
	if !(o.Weight >= 0) || math.IsInf(o.Weight, 0) {
		return fmt.Errorf("server: object weight %v must be finite and non-negative", o.Weight)
	}
	return nil
}

// maxLineBytes caps a single ingest line; the scanners reject longer lines
// with a line-numbered error instead of bufio's bare "token too long".
const maxLineBytes = 1 << 20

// newLineScanner returns a line scanner whose Bytes() views slice into the
// scanner's own buffer — no per-line copy.
func newLineScanner(r io.Reader) *bufio.Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), maxLineBytes)
	return sc
}

// scanErr maps the scanner's terminal error; line is the last line that
// scanned successfully, so the offending line is the next one.
func scanErr(sc *bufio.Scanner, line int) error {
	err := sc.Err()
	if errors.Is(err, bufio.ErrTooLong) {
		return fmt.Errorf("server: ingest line %d exceeds the %d-byte line limit — send one object per line and split oversized batches: %w",
			line+1, maxLineBytes, err)
	}
	return err
}

// bstr reinterprets b as a string without copying, to feed byte-slice
// fields to strconv.ParseFloat allocation-free. The result aliases b: it
// must not be retained past the next scanner advance. ParseFloat itself
// does not keep it; the *NumError it returns on failure does, which is safe
// here because parsing stops (no further scans) as soon as an error
// surfaces.
func bstr(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}

// parseNDJSON streams objects from newline-delimited JSON.
func parseNDJSON(r io.Reader, emit func(surge.Object) error) error {
	sc := newLineScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := bytes.TrimSpace(sc.Bytes())
		if len(text) == 0 {
			continue
		}
		o, err := parseObjectJSON(text)
		if err != nil {
			return fmt.Errorf("server: ingest line %d: %w", line, err)
		}
		if err := emit(o); err != nil {
			return err
		}
	}
	return scanErr(sc, line)
}

// wireObject decodes one NDJSON ingest line on the reflective slow path;
// pointer fields distinguish missing from zero (weight defaults to 1,
// time/x/y are required).
type wireObject struct {
	Time   *float64 `json:"time"`
	X      *float64 `json:"x"`
	Y      *float64 `json:"y"`
	Weight *float64 `json:"weight"`
}

// errSlowJSON routes a line from the fast scanner to encoding/json.
var errSlowJSON = errors.New("ingest: json slow path")

var errMissingFields = errors.New("time, x and y are required")

// parseObjectJSON decodes one {"time","x","y","weight"} line. The fast path
// is a hand-rolled, allocation-free scanner for the flat wire schema; any
// line outside that shape (escaped or unknown keys, non-number values,
// trailing data) falls back to encoding/json, so the set of accepted lines
// — and the error text for rejected ones — matches the reflective decoder.
func parseObjectJSON(b []byte) (surge.Object, error) {
	o, err := fastObjectJSON(b)
	if err == errSlowJSON {
		return slowObjectJSON(b)
	}
	return o, err
}

func slowObjectJSON(b []byte) (surge.Object, error) {
	var wo wireObject
	if err := json.Unmarshal(b, &wo); err != nil {
		return surge.Object{}, err
	}
	if wo.Time == nil || wo.X == nil || wo.Y == nil {
		return surge.Object{}, errMissingFields
	}
	o := surge.Object{Time: *wo.Time, X: *wo.X, Y: *wo.Y, Weight: 1}
	if wo.Weight != nil {
		o.Weight = *wo.Weight
	}
	return o, nil
}

// Field bits of the fast JSON scanner.
const (
	haveTime = 1 << iota
	haveX
	haveY
	haveWeight
)

func fastObjectJSON(b []byte) (surge.Object, error) {
	i := skipWS(b, 0)
	if i >= len(b) || b[i] != '{' {
		return surge.Object{}, errSlowJSON
	}
	i = skipWS(b, i+1)
	o := surge.Object{Weight: 1}
	have := 0
	if i < len(b) && b[i] == '}' {
		i++
	} else {
		for {
			key, j, ok := scanPlainKey(b, i)
			if !ok {
				return surge.Object{}, errSlowJSON
			}
			var field int
			switch {
			case bytes.Equal(key, keyTime):
				field = haveTime
			case bytes.Equal(key, keyX):
				field = haveX
			case bytes.Equal(key, keyY):
				field = haveY
			case bytes.Equal(key, keyWeight):
				field = haveWeight
			default:
				// Unknown key: its value can be any JSON; let the
				// reflective decoder handle (and ignore) it.
				return surge.Object{}, errSlowJSON
			}
			j = skipWS(b, j)
			if j >= len(b) || b[j] != ':' {
				return surge.Object{}, errSlowJSON
			}
			j = skipWS(b, j+1)
			if isNull(b, j) {
				// JSON null resets a pointer field to nil: the field counts
				// as missing again (last value wins, like encoding/json).
				j += 4
				have &^= field
				if field == haveWeight {
					o.Weight = 1
				}
			} else {
				num, k, ok := scanNumber(b, j)
				if !ok {
					return surge.Object{}, errSlowJSON
				}
				v, err := strconv.ParseFloat(bstr(num), 64)
				if err != nil {
					return surge.Object{}, errSlowJSON // e.g. out of range
				}
				j = k
				have |= field
				switch field {
				case haveTime:
					o.Time = v
				case haveX:
					o.X = v
				case haveY:
					o.Y = v
				case haveWeight:
					o.Weight = v
				}
			}
			j = skipWS(b, j)
			if j >= len(b) {
				return surge.Object{}, errSlowJSON
			}
			if b[j] == '}' {
				i = j + 1
				break
			}
			if b[j] != ',' {
				return surge.Object{}, errSlowJSON
			}
			i = skipWS(b, j+1)
		}
	}
	if skipWS(b, i) != len(b) {
		return surge.Object{}, errSlowJSON // trailing data
	}
	if have&(haveTime|haveX|haveY) != haveTime|haveX|haveY {
		return surge.Object{}, errMissingFields
	}
	return o, nil
}

var (
	keyTime   = []byte("time")
	keyX      = []byte("x")
	keyY      = []byte("y")
	keyWeight = []byte("weight")
)

func skipWS(b []byte, i int) int {
	for i < len(b) {
		switch b[i] {
		case ' ', '\t', '\r', '\n':
			i++
		default:
			return i
		}
	}
	return i
}

// scanPlainKey scans a double-quoted key with no escapes starting at i and
// returns the key bytes and the index past the closing quote. Keys with
// backslashes take the slow path.
func scanPlainKey(b []byte, i int) ([]byte, int, bool) {
	if i >= len(b) || b[i] != '"' {
		return nil, 0, false
	}
	j := bytes.IndexByte(b[i+1:], '"')
	if j < 0 {
		return nil, 0, false
	}
	key := b[i+1 : i+1+j]
	if bytes.IndexByte(key, '\\') >= 0 {
		return nil, 0, false
	}
	return key, i + j + 2, true
}

func isNull(b []byte, i int) bool {
	return i+4 <= len(b) && b[i] == 'n' && b[i+1] == 'u' && b[i+2] == 'l' && b[i+3] == 'l'
}

// scanNumber scans a JSON number (RFC 8259 shape: -?int frac? exp?) at i
// and returns its bytes and the index past it. The shape check keeps the
// fast path exactly as strict as encoding/json — strconv alone would also
// accept "+1", "Inf", hex floats and other non-JSON spellings.
func scanNumber(b []byte, i int) ([]byte, int, bool) {
	start := i
	if i < len(b) && b[i] == '-' {
		i++
	}
	switch {
	case i < len(b) && b[i] == '0':
		i++
	case i < len(b) && b[i] >= '1' && b[i] <= '9':
		for i < len(b) && b[i] >= '0' && b[i] <= '9' {
			i++
		}
	default:
		return nil, 0, false
	}
	if i < len(b) && b[i] == '.' {
		i++
		j := i
		for i < len(b) && b[i] >= '0' && b[i] <= '9' {
			i++
		}
		if i == j {
			return nil, 0, false
		}
	}
	if i < len(b) && (b[i] == 'e' || b[i] == 'E') {
		i++
		if i < len(b) && (b[i] == '+' || b[i] == '-') {
			i++
		}
		j := i
		for i < len(b) && b[i] >= '0' && b[i] <= '9' {
			i++
		}
		if i == j {
			return nil, 0, false
		}
	}
	return b[start:i], i, true
}

// parseCSV streams objects from "time,x,y,weight" lines — the same format
// surged reads offline, so a recorded stream replays into the server
// unchanged. Blank lines and '#' comments are skipped.
func parseCSV(r io.Reader, emit func(surge.Object) error) error {
	sc := newLineScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := bytes.TrimSpace(sc.Bytes())
		if len(text) == 0 || text[0] == '#' {
			continue
		}
		var vals [4]float64
		rest := text
		for i := 0; i < 4; i++ {
			var field []byte
			j := bytes.IndexByte(rest, ',')
			if i < 3 {
				if j < 0 {
					return fmt.Errorf("server: ingest line %d: want time,x,y,weight", line)
				}
				field, rest = rest[:j], rest[j+1:]
			} else {
				if j >= 0 {
					return fmt.Errorf("server: ingest line %d: want time,x,y,weight", line)
				}
				field = rest
			}
			v, err := strconv.ParseFloat(bstr(bytes.TrimSpace(field)), 64)
			if err != nil {
				return fmt.Errorf("server: ingest line %d field %d: %w", line, i+1, err)
			}
			vals[i] = v
		}
		if err := emit(surge.Object{Time: vals[0], X: vals[1], Y: vals[2], Weight: vals[3]}); err != nil {
			return err
		}
	}
	return scanErr(sc, line)
}

// readBody reads a request body up to limit bytes, erroring beyond it.
func readBody(r *http.Request, limit int64) ([]byte, error) {
	data, err := io.ReadAll(io.LimitReader(r.Body, limit+1))
	if err != nil {
		return nil, fmt.Errorf("server: reading body: %w", err)
	}
	if int64(len(data)) > limit {
		return nil, fmt.Errorf("server: body exceeds %d bytes", limit)
	}
	return data, nil
}
