package server

import (
	"math"
	"net/http"
	"time"

	"surge/client"
	"surge/internal/obs"
)

// handleStats serves the typed telemetry snapshot. Like /metrics it never
// round-trips the event loop: counters, loop-state mirrors and histogram
// snapshots are all read lock-free, so the endpoint answers even when the
// loop is wedged — the mirror values are then the last state the loop
// published, which is exactly what an operator debugging the wedge needs.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := client.StatsSnapshot{
		UptimeSec:        time.Since(s.start).Seconds(),
		LastIngestAgeSec: s.lastIngestAge(),
		LoopTickAgeSec:   ageSec(s.lastTickNano.Load()),
		Now:              math.Float64frombits(s.statNow.Load()),
		Live:             int(s.defTenant.slot.Load().statLive.Load()),
		Shards:           int(s.statShards.Load()),

		Objects:       s.objects.Load(),
		Batches:       s.batches.Load(),
		IngestErrors:  s.ingestErr.Load(),
		Notifications: s.notifs.Load() + s.topkNotifs.Load(),
		Dropped:       s.dropped.Load(),
		TopKCommits:   obs.Default.Counter(obs.MTopKCommits, "").Value(),
		Subscribers:   s.subscriberCount(),

		IngestAck:     histSecs(s.mAck),
		IngestParse:   histSecs(s.mParse),
		IngestBatch:   histVals(s.mBatchObjs),
		LoopQueueWait: histSecs(s.mQueueWait),
		LoopApply:     histSecs(s.mApply),
		LoopLag:       histSecs(s.mLag),
		SSEDelivery:   histSecs(s.mSSEDeliver),
		SSEBuffer:     histVals(s.hubOcc),
		// The shard pipeline and top-k chain register these from
		// internal/shard; get-or-create hands back the same instances (or
		// empty ones on an unsharded, replay-only server).
		ShardFlush:    histVals(obs.Default.Values(obs.MShardFlush, "")),
		ShardBarrier:  histSecs(obs.Default.Duration(obs.MShardBarrier, "")),
		TopKResolve:   histSecs(obs.Default.Duration(obs.MTopKResolve, "")),
		TopKSolveWait: histSecs(obs.Default.Duration(obs.MTopKSolveWait, "")),
		TopKShards:    histVals(obs.Default.Values(obs.MTopKShards, "")),

		Throttled: s.throttled.Load(),
	}
	s.tenMu.RLock()
	tenants := make([]*tenant, len(s.order))
	copy(tenants, s.order)
	s.tenMu.RUnlock()
	st.Queries = make([]client.QueryStats, 0, len(tenants))
	for _, t := range tenants {
		st.Queries = append(st.Queries, s.tenantStats(t))
	}
	if s.wal != nil {
		// Segment count and size come from the obs gauges the WAL mirrors on
		// every append, not from the log itself, keeping this endpoint free
		// of the WAL mutex (which an fsync can hold for milliseconds).
		st.WAL = &client.WALStats{
			SyncPolicy:       s.wal.log.Policy().String(),
			Frames:           obs.Default.Counter(obs.MWALFrames, "").Value(),
			AppendedBytes:    obs.Default.Counter(obs.MWALBytes, "").Value(),
			Segments:         int(obs.Default.Gauge(obs.MWALSegments, "").Value()),
			SizeBytes:        int64(obs.Default.Gauge(obs.MWALSize, "").Value()),
			LastSyncAgeSec:   s.wal.log.LastSyncAge(),
			Checkpoints:      s.ckpts.Load(),
			Append:           histSecs(obs.Default.Duration(obs.MWALAppend, "")),
			Fsync:            histSecs(obs.Default.Duration(obs.MWALFsync, "")),
			RecoveredBatches: s.wal.recBatches,
			RecoveredObjects: s.wal.recObjects,
			RecoverySec:      s.wal.recSec,
			TornBytes:        s.wal.torn,
			Durability:       s.durabilityString(),
			DegradedCount:    s.degradedCount.Load(),
			RepairedCount:    s.repairedCount.Load(),
			DegradedSec:      s.degradedSec(),
			CheckpointErrors: s.ckptErrs.Load(),
			ShedDegraded:     s.shedDegraded.Load(),
		}
	}
	rt := obs.ReadRuntime()
	st.Runtime = client.RuntimeStats{
		Goroutines:         rt.Goroutines,
		HeapBytes:          rt.HeapBytes,
		GCCycles:           rt.GCCycles,
		GCPauseP50Sec:      rt.GCPauseP50,
		GCPauseP99Sec:      rt.GCPauseP99,
		GCPauseMaxSec:      rt.GCPauseMax,
		SchedLatencyP50Sec: rt.SchedLatP50,
		SchedLatencyP99Sec: rt.SchedLatP99,
	}
	writeJSON(w, st)
}

// tenantStats assembles one query's telemetry block lock-free, from the
// tenant's counters and its slot's atomic mirrors.
func (s *Server) tenantStats(t *tenant) client.QueryStats {
	sl := t.slot.Load()
	qs := client.QueryStats{
		ID:         t.id,
		Algorithm:  t.cfg.Algorithm.String(),
		TopK:       t.cfg.TopK,
		Continuous: !t.cfg.TopKReplayOnly,
		Shards:     sl.statShards,
		Now:        math.Float64frombits(sl.statNow.Load()),
		Live:       int(sl.statLive.Load()),

		Notifications:     t.notifs.Load(),
		TopKNotifications: t.topkNotifs.Load(),
		Dropped:           t.dropped.Load(),
		Subscribers:       t.hub.count(),
		TopKFast:          t.topkFast.Load(),
		TopKReplay:        t.topkReplay.Load(),
		Snapshots:         t.snapshots.Load(),
		Restores:          t.restores.Load(),
		Clamped:           t.clamped.Load(),
	}
	if rw := t.lastWire.Load(); rw != nil {
		qs.Result = *rw
	}
	if ep := sl.errMsg.Load(); ep != nil {
		qs.Err = *ep
	}
	return qs
}

// handleQueryStats serves one query's telemetry block.
func (s *Server) handleQueryStats(t *tenant, w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.tenantStats(t))
}

// histSecs summarises a duration histogram in seconds for the wire.
func histSecs(h *obs.Histogram) client.HistogramStats {
	return histWire(h, 1e-9)
}

// histVals summarises a raw-value histogram for the wire.
func histVals(h *obs.Histogram) client.HistogramStats {
	return histWire(h, 1)
}

func histWire(h *obs.Histogram, scale float64) client.HistogramStats {
	snap := h.Snapshot()
	return client.HistogramStats{
		Count: snap.Count,
		Mean:  snap.Mean() * scale,
		Max:   float64(snap.Max) * scale,
		P50:   snap.Quantile(0.5) * scale,
		P90:   snap.Quantile(0.9) * scale,
		P99:   snap.Quantile(0.99) * scale,
		P999:  snap.Quantile(0.999) * scale,
	}
}
