package server

import (
	"context"
	"errors"
	"net/http"
	"strings"
	"syscall"
	"testing"
	"time"

	"surge/client"
	"surge/internal/fault"
	"surge/internal/wal"
)

// TestWALFaultDegradesAndRepairs drives the full degradation state machine:
// a WAL append hits EIO, the server sheds ingest with 503
// durability_degraded while queries keep serving, the repair loop retries
// against a still-failing disk, and once the fault clears the server
// re-enters service with nothing acknowledged lost — the retried stream
// lands bitwise on the uninterrupted reference, across a restart too.
func TestWALFaultDegradesAndRepairs(t *testing.T) {
	objs := testObjects(101, 400, 4)
	cfg := Config{Options: testOptions(2), BatchSize: 64}
	_, _, ref := newTestServer(t, cfg)
	streamBatches(t, ref, objs, 50)

	in := fault.NewInjector(nil)
	dir := t.TempDir()
	s, _, c := newDurableTestServer(t, dir, cfg, DurableConfig{Sync: wal.SyncAlways, FS: in})
	ctx := context.Background()
	streamBatches(t, c, objs[:200], 50)

	// One append fails; the repair loop's truncate keeps failing until the
	// test clears it, holding the server in the degraded state.
	in.Arm(
		fault.Rule{Op: fault.OpWrite, Path: "wal-", Count: 1, Err: syscall.EIO},
		fault.Rule{Op: fault.OpTruncate, Path: "wal-", Err: syscall.EIO},
	)
	_, err := c.Ingest(ctx, objs[200:250])
	if !errors.Is(err, client.ErrDegraded) {
		t.Fatalf("ingest during fault: err = %v, want ErrDegraded", err)
	}
	var ce *client.Error
	if !errors.As(err, &ce) || ce.Status != http.StatusServiceUnavailable ||
		ce.Code != client.CodeDurabilityDegraded || ce.RetryAfterSec <= 0 {
		t.Fatalf("degraded error = %+v, want 503 %s with a retry hint", ce, client.CodeDurabilityDegraded)
	}

	// While degraded: ingest is shed up front, queries and stats keep
	// serving, healthz reports the lost durability.
	if _, err := c.Ingest(ctx, objs[200:250]); !errors.Is(err, client.ErrDegraded) {
		t.Fatalf("second ingest not shed: %v", err)
	}
	if s.shedDegraded.Load() == 0 {
		t.Fatal("shed counter untouched by a degraded-mode ingest")
	}
	if _, err := c.Best(ctx); err != nil {
		t.Fatalf("best during degradation: %v", err)
	}
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatalf("stats during degradation: %v", err)
	}
	if st.WAL == nil || st.WAL.Durability != "degraded" || st.WAL.DegradedCount != 1 {
		t.Fatalf("stats during degradation = %+v", st.WAL)
	}
	if _, err := c.Health(ctx); err == nil || !strings.Contains(err.Error(), "durability degraded") {
		t.Fatalf("healthz during degradation = %v, want 503 with the fault", err)
	}

	// Clear the disk fault: the next repair retry rotates to a fresh
	// segment, re-checkpoints, and resumes ingest.
	in.Clear()
	deadline := time.Now().Add(15 * time.Second)
	var h *client.Health
	for {
		h, err = c.Health(ctx)
		if err == nil && h.OK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never recovered: health=%+v err=%v", h, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if h.Durability != "recovered" || h.DegradedCount != 1 || h.RepairedCount != 1 {
		t.Fatalf("recovered health = %+v, want recovered/1/1", h)
	}
	if h.DegradedSec <= 0 {
		t.Fatalf("degraded_sec = %v, want > 0", h.DegradedSec)
	}

	// The shed batch was never applied or acknowledged: retrying it and the
	// rest of the stream must land exactly on the uninterrupted reference.
	streamBatches(t, c, objs[200:], 50)
	assertSameAnswers(t, "after repair", c, ref)

	// And the repaired log replays cleanly: crash, reboot on a clean disk.
	s.Close()
	_, _, c2 := newDurableTestServer(t, dir, cfg, DurableConfig{Sync: wal.SyncAlways})
	assertSameAnswers(t, "after post-repair restart", c2, ref)
}

// TestCheckpointFaultRetries pins the background checkpointer's retry: a
// failing checkpoint rename is counted, retried with backoff, and succeeds
// once the fault clears — without the loop wedging or the server degrading.
func TestCheckpointFaultRetries(t *testing.T) {
	in := fault.NewInjector(nil)
	dir := t.TempDir()
	// Clamp: the second ingest below restarts its stream clock.
	cfg := Config{Options: testOptions(1), BatchSize: 64, TimePolicy: Clamp}
	s, _, c := newDurableTestServer(t, dir, cfg,
		DurableConfig{Sync: wal.SyncOff, CheckpointEvery: 30 * time.Millisecond, FS: in})
	streamBatches(t, c, testObjects(103, 150, 4), 50)

	in.Arm(fault.Rule{Op: fault.OpRename, Path: "surge.ckpt", Count: 2, Err: syscall.EIO})
	deadline := time.Now().Add(15 * time.Second)
	for s.ckptErrs.Load() < 2 || s.ckpts.Load() < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("checkpoint retry stalled: errs=%d ok=%d", s.ckptErrs.Load(), s.ckpts.Load())
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Checkpoint failures are not a durability loss: appends kept working.
	if s.degraded.Load() {
		t.Fatal("checkpoint failure degraded the server")
	}
	if _, err := c.Ingest(context.Background(), testObjects(107, 50, 4)); err != nil {
		t.Fatalf("ingest during checkpoint retries: %v", err)
	}
	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.WAL == nil || st.WAL.CheckpointErrors < 2 {
		t.Fatalf("stats checkpoint_errors = %+v, want >= 2", st.WAL)
	}
}

// TestFsyncFaultUnacked pins the SyncAlways contract under an fsync fault:
// the append whose fsync failed is not acknowledged, the server degrades,
// and after repair plus restart the recovered stream holds exactly the
// acknowledged prefix.
func TestFsyncFaultUnacked(t *testing.T) {
	objs := testObjects(109, 300, 4)
	cfg := Config{Options: testOptions(1), BatchSize: 64}
	_, _, ref := newTestServer(t, cfg)
	streamBatches(t, ref, objs, 50)

	in := fault.NewInjector(nil)
	dir := t.TempDir()
	s, _, c := newDurableTestServer(t, dir, cfg, DurableConfig{Sync: wal.SyncAlways, FS: in})
	ctx := context.Background()
	streamBatches(t, c, objs[:150], 50)

	in.Arm(fault.Rule{Op: fault.OpSync, Path: "wal-", Count: 1, Err: syscall.EIO})
	if _, err := c.Ingest(ctx, objs[150:200]); !errors.Is(err, client.ErrDegraded) {
		t.Fatalf("ingest over failed fsync: err = %v, want ErrDegraded", err)
	}

	deadline := time.Now().Add(15 * time.Second)
	for {
		if h, err := c.Health(ctx); err == nil && h.OK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server never recovered from the fsync fault")
		}
		time.Sleep(10 * time.Millisecond)
	}
	streamBatches(t, c, objs[150:], 50)
	assertSameAnswers(t, "after fsync-fault repair", c, ref)

	s.Close()
	_, _, c2 := newDurableTestServer(t, dir, cfg, DurableConfig{Sync: wal.SyncAlways})
	assertSameAnswers(t, "after fsync-fault restart", c2, ref)
}
