package server

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"surge"
)

// TestPprofGated verifies the profiling endpoints exist only when opted in.
func TestPprofGated(t *testing.T) {
	for _, enabled := range []bool{false, true} {
		s, err := New(Config{
			Algorithm:   surge.GridApprox,
			Options:     surge.Options{Width: 1, Height: 1, Window: 10, Alpha: 0.5},
			EnablePprof: enabled,
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		resp, err := http.Get(ts.URL + "/debug/pprof/")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		ts.Close()
		s.Close()
		if enabled && resp.StatusCode != http.StatusOK {
			t.Fatalf("pprof enabled: GET /debug/pprof/ = %d, want 200", resp.StatusCode)
		}
		if !enabled && resp.StatusCode != http.StatusNotFound {
			t.Fatalf("pprof disabled: GET /debug/pprof/ = %d, want 404", resp.StatusCode)
		}
	}
}
