// Package server hosts surge detectors behind HTTP: surged serve. It turns
// the embeddable, single-goroutine Detector into a long-running service —
// network ingestion, push-based change notification, snapshots and
// observability — without giving up the library's exactness guarantees.
//
// # Multi-query tenancy
//
// One server hosts a registry of named queries over one shared spatial
// stream. Each ingested object is parsed, admitted and (on a durable
// server) logged exactly once, then fanned out to every registered query.
// Queries are created and deleted at runtime (/v1/queries); the legacy
// single-query paths address the registry's "default" query. Queries whose
// configurations agree share engine state (boot-time dedup), so a thousand
// identical dashboards cost one engine.
//
// # Concurrency model
//
// Engine state lives in slots, each owned by a single-writer event loop:
// one goroutine receives closures over a channel and is the only code that
// initiates detector mutations. HTTP handlers parse request bodies
// concurrently (the hot path — NDJSON/CSV decoding dominates ingest cost)
// and submit fixed-size object batches to the loop, which fans each batch
// out to the registry's slots over a fixed worker pool (one submission per
// slot, pinned per slot so a slot's applies stay single-threaded) and waits
// at the pool barrier. Concurrent ingesters therefore serialise at the
// loop, inherit its backpressure, and observe a single global stream order;
// with the Clamp time policy, late timestamps are lifted per slot to that
// slot's stream clock so independent ingesters never violate the library's
// time-ordering contract — and a query created mid-stream clamps exactly
// like an independent server started at that moment would.
//
// # Consistency
//
// Because every mutation flows through the loop and PushBatch is
// answer-equivalent to per-object Push, each query's SSE notification
// stream is exactly the sequence of answer changes a single-process run of
// the same object sequence (with the same batch boundaries) would observe —
// down to the bit pattern of the scores for the schedule-independent
// engines (CCS, B-CCS, Base, GAPS, MGAPS, Oracle). N tenants of identical
// configuration answer bitwise identically to N independent single-query
// servers fed the same stream.
package server

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"surge"
	"surge/client"
	"surge/internal/obs"
	"surge/internal/shard"
)

// ErrClosed is returned by server methods after Close.
var ErrClosed = errors.New("server: closed")

// TimePolicy selects how ingested timestamps that precede the stream clock
// are handled.
type TimePolicy int

const (
	// Strict rejects out-of-order objects, preserving the library's
	// contract verbatim. Single-ingester deployments keep exact time
	// semantics this way.
	Strict TimePolicy = iota
	// Clamp lifts late timestamps to the current stream clock, so any
	// number of concurrent ingesters can stream without coordinating.
	Clamp
)

// ParseTimePolicy parses "strict" or "clamp".
func ParseTimePolicy(s string) (TimePolicy, error) {
	switch s {
	case "strict":
		return Strict, nil
	case "clamp":
		return Clamp, nil
	default:
		return 0, fmt.Errorf("server: unknown time policy %q (want strict or clamp)", s)
	}
}

// Config configures a Server. Algorithm and Options configure the default
// query's engine (Options.Shards >= 2 serves it from the sharded pipeline)
// and are the inherited defaults for every entry of Queries.
type Config struct {
	Algorithm surge.Algorithm
	Options   surge.Options
	// TopK is the k of the continuously maintained top-k detector and the
	// default k of /v1/topk (0 = 5).
	TopK int
	// TopKReplayOnly disables the continuously maintained top-k detector:
	// /v1/topk then answers every query by checkpoint replay (the pre-
	// maintenance behaviour) and no "topk" SSE events are published.
	TopKReplayOnly bool
	// BestFromEngines keeps the legacy dual-engine serving layout: the
	// single-region engines answer /v1/best while the maintained top-k chain
	// answers /v1/topk. By default (false), an algorithm whose chain rank-1
	// answer is bitwise its single-region answer retires the single-region
	// engines and serves both endpoints from the one maintained chain
	// (surge.Detector.AttachTopKBest), removing the duplicated per-event
	// engine maintenance from the ingest path. Ignored when TopKReplayOnly
	// is set (no chain is maintained) and for algorithms without an exact
	// chain counterpart (AG2, Oracle).
	BestFromEngines bool
	// Queries declares named queries registered at boot alongside the
	// default query (surged serve -queries). Zero fields inherit the
	// defaults above; more queries can be added at runtime via
	// POST /v1/queries.
	Queries []client.QueryConfig
	// QueryMaxSubscribers caps the concurrent SSE subscribers per query;
	// further subscribes are rejected with 429 code "quota_exceeded"
	// (0 = unlimited).
	QueryMaxSubscribers int
	// NotifyRing is the number of recent SSE events retained per query for
	// Last-Event-ID reconnect backfill (0 = 256).
	NotifyRing int
	// TimePolicy handles out-of-order ingest timestamps (default Strict).
	TimePolicy TimePolicy
	// BatchSize is the number of objects per detector synchronisation on
	// the ingest path (0 = 512).
	BatchSize int
	// SubscriberBuffer is the per-subscriber notification buffer; a
	// subscriber that falls further behind loses oldest-first, with the
	// loss accounted in Notification.Dropped (0 = 64).
	SubscriberBuffer int
	// MaxPending is the admission-control watermark: when this many ingest
	// chunks are already submitted and waiting on the event loop, further
	// chunks are shed with 429 and a Retry-After hint instead of queueing
	// unboundedly (0 = 256; negative disables shedding).
	MaxPending int
	// Checkpoint optionally seeds the default query's detector from a
	// snapshot instead of starting empty. The checkpoint's recorded query
	// options (width, height, windows, alpha, area) define the detector —
	// only Shards, ShardBlockCols and ShardFlushEvents are taken from
	// Options. Inspect DetectorOptions for the effective configuration.
	Checkpoint []byte
	// EnablePprof mounts net/http/pprof under /debug/pprof/ so hot-path
	// regressions can be profiled in place. Off by default: the handlers
	// expose internals and cost memory, so only enable them on instances
	// whose listener is access-controlled.
	EnablePprof bool
	// Logger receives structured lifecycle logs: startup, checkpoint,
	// restore, shutdown and degraded-mode transitions. Nil discards them
	// (the library stays silent by default; surged wires -log-format here).
	Logger *slog.Logger
}

// Server hosts a registry of queries over one shared stream. Create with
// New, expose Handler on an http.Server, and Close on shutdown.
type Server struct {
	cfg      Config
	batch    int
	subBuf   int
	mux      *http.ServeMux
	reqs     chan func()
	quit     chan struct{} // closed by Close: rejects new work, ends SSE
	done     chan struct{} // closed when the loop exits
	start    time.Time
	stopping sync.Once
	closing  sync.Once
	closeErr error

	// pool runs the per-slot batch applies: fixed workers, one pinned to
	// each slot, with the event loop as the only submitter.
	pool *shard.Pool

	// Query registry. The event loop owns all mutations (create, delete,
	// restore-swap); tenMu guards the map and order for concurrent readers
	// (routing, stats, metrics). slots is the loop-owned unique-slot fan-out
	// list, rebuilt whenever a binding changes.
	tenMu      sync.RWMutex
	tenants    map[string]*tenant
	order      []*tenant
	slots      []*engineSlot
	nextWorker int
	defTenant  *tenant // the "default" query; never nil, never deleted

	// Loop-owned: global stream clock, the max of every slot's clock.
	clock float64

	ringCap      int
	queryMaxSubs int
	hubOcc       *obs.Histogram

	// epoch identifies this server process's notification streams: SSE event
	// ids are rendered "epoch.eid", so a Last-Event-ID cursor taken before a
	// process restart (whose rings are gone and whose eids restart from 1) is
	// recognised and answered with a fresh hello instead of a bogus resume.
	// Random and nonzero; constant for the server's lifetime, including
	// across /v1/restore (the rings stay continuous there) and shared by
	// every query (each query has its own eid space within the epoch).
	epoch uint64

	// chunkPool recycles the per-request ingest chunk buffers (capacity
	// s.batch) across requests, keeping the ingest hot path allocation-free.
	chunkPool sync.Pool

	// ckptPool recycles the checkpoint buffers of replay-mode top-k
	// queries, so the escape hatch does not allocate a fresh snapshot per
	// request.
	ckptPool sync.Pool

	// wal is the durability attachment (NewDurable); nil on a plain server.
	// Its log is appended on the event loop inside applyLogged.
	wal   *walState
	ckpts atomic.Uint64 // durable checkpoints written

	// Durability degradation state machine (ok -> degraded -> recovered):
	// degraded is set on the first WAL append/fsync failure and cleared by a
	// successful repair. While set, ingest is shed with 503 (one atomic load
	// on the hot path); queries, SSE and scrapes keep serving. Always false
	// on a plain server.
	degraded      atomic.Bool
	degradedCount atomic.Uint64 // ok -> degraded transitions
	repairedCount atomic.Uint64 // degraded -> recovered transitions
	degradedSince atomic.Int64  // nano wall clock of the current spell; 0 when healthy
	degradedNano  atomic.Int64  // cumulative nanos of completed degraded spells
	ckptErrs      atomic.Uint64 // failed durable checkpoint attempts
	shedDegraded  atomic.Uint64 // ingest chunks shed with 503 while degraded
	faultMsg      atomic.Pointer[string]

	// Ingest-Seq dedupe: per-source sequence state for idempotent retries.
	seqMu sync.Mutex
	seqs  map[string]*sourceSeq

	// Admission control: chunks submitted to the loop and not yet applied.
	maxPending    int64
	pendingChunks atomic.Int64
	throttled     atomic.Uint64 // chunks shed with 429

	// Server-wide counters (atomics so /metrics and handlers read them
	// lock-free); each tenant additionally keeps its own.
	objects   atomic.Uint64 // objects applied
	clamped   atomic.Uint64 // default-query objects lifted to the clock (Clamp policy)
	batches   atomic.Uint64 // ingest-path synchronisations
	notifs    atomic.Uint64 // notifications published (all queries)
	dropped   atomic.Uint64 // notifications lost to slow subscribers (all queries)
	ingestErr atomic.Uint64 // failed ingest requests
	snapshots atomic.Uint64
	restores  atomic.Uint64

	topkFast   atomic.Uint64 // topk queries answered from a maintained snapshot
	topkReplay atomic.Uint64 // topk queries answered by checkpoint replay
	topkNotifs atomic.Uint64 // top-k notifications published (all queries)

	log           *slog.Logger  // never nil; discards when Config.Logger is nil
	degradedOnce  bool          // loop-owned: degraded transition logged
	healthTimeout time.Duration // /healthz event-loop probe budget

	// Latency histograms (process-wide obs.Default registry; the shard
	// pipeline and top-k chain register theirs from internal/shard).
	mAck        *obs.Histogram // ingest chunk submit -> applied & acked
	mParse      *obs.Histogram // ingest request parse time (total - ack waits)
	mBatchObjs  *obs.Histogram // objects per applied batch
	mQueueWait  *obs.Histogram // do() submit -> closure starts
	mApply      *obs.Histogram // applyBatch duration on the loop (all slots)
	mLag        *obs.Histogram // loop lag probe
	mSSEDeliver *obs.Histogram // publish -> written to subscriber

	// Loop-state mirrors: the event loop writes them after every batch (and
	// on restore) so /metrics, /healthz and /v1/stats read consistent
	// pipeline state without a loop round-trip — the scrape path keeps
	// working even when the loop is wedged. Per-query mirrors live on the
	// slots and tenants.
	statNow        atomic.Uint64 // global stream clock (float64 bits)
	statShards     atomic.Int64  // default query's shard count
	lastIngestNano atomic.Int64  // wall clock of the last applied batch
	lastTickNano   atomic.Int64  // wall clock of the last loop-lag probe completion
}

// New builds the query registry and starts the event loop.
func New(cfg Config) (*Server, error) {
	if cfg.TopK == 0 {
		cfg.TopK = 5
	}
	if cfg.TopK < 1 {
		return nil, fmt.Errorf("server: invalid TopK %d", cfg.TopK)
	}
	seeds, err := bootSeeds(cfg)
	if err != nil {
		return nil, err
	}
	return newServer(cfg, seeds)
}

// newServer assembles a server from a boot registry: build one engine slot
// per seed group (seeds that agree on configuration and checkpoint lineage
// share a slot), bind a tenant per seed, and start the loops.
func newServer(cfg Config, seeds []tenantSeed) (*Server, error) {
	s := &Server{
		cfg:     cfg,
		batch:   cfg.BatchSize,
		subBuf:  cfg.SubscriberBuffer,
		reqs:    make(chan func()),
		quit:    make(chan struct{}),
		done:    make(chan struct{}),
		start:   time.Now(),
		epoch:   newEpoch(),
		tenants: make(map[string]*tenant),
		seqs:    make(map[string]*sourceSeq),

		log:           cfg.Logger,
		healthTimeout: defaultHealthTimeout,
		queryMaxSubs:  cfg.QueryMaxSubscribers,
		mAck:          obs.Default.Duration(obs.MIngestAck, "Ingest chunk latency: submit to applied and acknowledged."),
		mParse:        obs.Default.Duration(obs.MIngestParse, "Ingest request time spent parsing the body (excludes ack waits)."),
		mBatchObjs:    obs.Default.Values(obs.MIngestBatch, "Objects per batch applied to the detectors."),
		mQueueWait:    obs.Default.Duration(obs.MLoopQueueWait, "Event-loop queue wait: submit to closure start."),
		mApply:        obs.Default.Duration(obs.MLoopApply, "Batch apply duration on the event loop."),
		mLag:          obs.Default.Duration(obs.MLoopLag, "Event-loop lag: self-timed probe from send to execution."),
		mSSEDeliver:   obs.Default.Duration(obs.MSSEDelivery, "SSE delivery latency: publish to written to the subscriber."),
	}
	if s.log == nil {
		s.log = slog.New(slog.DiscardHandler)
	}
	if s.batch <= 0 {
		s.batch = 512
	}
	if s.subBuf <= 0 {
		s.subBuf = 64
	}
	switch {
	case cfg.MaxPending > 0:
		s.maxPending = int64(cfg.MaxPending)
	case cfg.MaxPending == 0:
		s.maxPending = 256
	}
	s.ringCap = cfg.NotifyRing
	if s.ringCap <= 0 {
		s.ringCap = 256
	}
	s.chunkPool.New = func() any {
		c := make([]surge.Object, 0, s.batch)
		return &c
	}
	s.ckptPool.New = func() any { return new([]byte) }
	s.hubOcc = obs.Default.Values(obs.MSSEBuffer, "Per-subscriber buffer occupancy observed at broadcast.")
	s.pool = shard.NewPool(runtime.GOMAXPROCS(0))

	// Group seeds: one engine slot per (configuration key, checkpoint
	// lineage) — identical fresh queries share, and queries restored from
	// the same persisted slot share again.
	groups := make(map[string]*engineSlot)
	for _, sd := range seeds {
		gk := strconv.Itoa(sd.slotTag) + "|" + sd.cfg.key()
		sl := groups[gk]
		if sl == nil {
			var err error
			sl, err = s.buildSlot(sd.cfg, sd.ckpt)
			if err != nil {
				for _, b := range groups {
					b.close()
				}
				s.pool.Close()
				return nil, err
			}
			sl.worker = s.nextWorker
			s.nextWorker++
			groups[gk] = sl
		}
		t := s.newTenant(sd.id, sd.cfg, sl)
		t.isDefault = sd.id == DefaultQueryID
		if t.isDefault {
			s.defTenant = t
		}
		s.tenants[sd.id] = t
		s.order = append(s.order, t)
	}
	s.rebuildSlots()
	for _, sl := range s.slots {
		if sl.clock > s.clock {
			s.clock = sl.clock
		}
	}
	s.statShards.Store(int64(s.defTenant.slot.Load().statShards))
	s.statNow.Store(math.Float64bits(s.clock))
	s.routes()
	go s.loop()
	go s.lagLoop()
	s.log.Info("server started",
		"algorithm", cfg.Algorithm.String(),
		"shards", s.defTenant.slot.Load().statShards,
		"topk", cfg.TopK,
		"continuous_topk", !cfg.TopKReplayOnly,
		"best_from_chain", s.defTenant.cfg.serveBestFromChain(),
		"restored", cfg.Checkpoint != nil,
		"queries", len(s.order),
		"engine_slots", len(s.slots))
	return s, nil
}

const (
	// defaultHealthTimeout bounds how long /healthz waits for the event
	// loop before reporting it stalled.
	defaultHealthTimeout = 2 * time.Second
	// lagProbeInterval paces the self-timed event-loop lag probe.
	lagProbeInterval = 500 * time.Millisecond
	// engineStatsInterval throttles the det.Stats() refresh per slot: on
	// a sharded detector Stats is a pipeline barrier, so the mirrors trade
	// up to a second of staleness for a bounded, batch-independent cost.
	engineStatsInterval = time.Second
)

// buildVersion is the module version baked into the binary, "dev" for
// plain source builds.
var buildVersion = func() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		return bi.Main.Version
	}
	return "dev"
}()

// lagLoop self-times the event loop: every probe sends a closure and the
// loop records how long it sat in the queue — the externally observable
// scheduling delay an ingest submission would see right now.
func (s *Server) lagLoop() {
	t := time.NewTicker(lagProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.probeLag()
		case <-s.quit:
			return
		}
	}
}

// probeLag fires one lag probe without waiting for it to run (a wedged
// loop must not wedge the prober; the probe records itself whenever the
// loop gets to it).
func (s *Server) probeLag() {
	t0 := time.Now()
	select {
	case s.reqs <- func() {
		if obs.On() {
			s.mLag.Observe(time.Since(t0))
		}
		s.lastTickNano.Store(time.Now().UnixNano())
	}:
	case <-s.quit:
	}
}

// noteBatch runs on the event loop after a batch lands on every slot:
// stamp the ingest clock, refresh the global mirrors, price the apply and
// log the first degraded-mode transition.
func (s *Server) noteBatch(t0 time.Time, rec bool, err error) {
	now := time.Now()
	s.lastIngestNano.Store(now.UnixNano())
	s.statNow.Store(math.Float64bits(s.clock))
	if rec {
		s.mApply.Observe(now.Sub(t0))
	}
	if err != nil && !s.degradedOnce {
		s.degradedOnce = true
		s.log.Error("pipeline degraded: batch apply failed, the failed query serves stale answers", "err", err)
	}
}

// newEpoch draws the random nonzero stream epoch for a server instance.
// Two distinct processes (or two Servers in one process) get different
// epochs with overwhelming probability, so a client cursor from one never
// silently resumes mid-ring on another.
func newEpoch() uint64 {
	var b [8]byte
	for i := 0; i < 4; i++ {
		if _, err := rand.Read(b[:]); err != nil {
			break
		}
		if e := binary.LittleEndian.Uint64(b[:]); e != 0 {
			return e
		}
	}
	return uint64(time.Now().UnixNano()) | 1
}

// loop is the single-writer event loop: the only goroutine that initiates
// detector mutations.
func (s *Server) loop() {
	defer close(s.done)
	for {
		select {
		case fn := <-s.reqs:
			s.runLoopOp(fn)
		case <-s.quit:
			// Drain work that already won the submission race.
			for {
				select {
				case fn := <-s.reqs:
					s.runLoopOp(fn)
				default:
					return
				}
			}
		}
	}
}

// runLoopOp is the loop's panic backstop: a panicking op must not kill the
// event loop — that would wedge every do() caller behind a dead channel and
// take queries down with it. The submitted closure's own defer unblocks its
// caller during the unwind; the recover here keeps the loop alive for the
// next op. Slot applies additionally recover their own panics into errors
// so a panicking apply is a rejected batch, never a zero-valued false ack.
func (s *Server) runLoopOp(fn func()) {
	defer func() {
		if r := recover(); r != nil {
			s.log.Error("panic in event-loop op recovered", "panic", r, "stack", string(debug.Stack()))
		}
	}()
	fn()
}

// do runs fn on the event loop and waits for it. The queue wait — submit to
// closure start — is recorded per call; the timestamp rides the closure the
// call allocates anyway, so the hot path gains no allocation.
func (s *Server) do(fn func()) error {
	ran := make(chan struct{})
	rec := obs.On()
	var t0 time.Time
	if rec {
		t0 = time.Now()
	}
	select {
	case s.reqs <- func() {
		if rec {
			s.mQueueWait.Observe(time.Since(t0))
		}
		defer close(ran)
		fn()
	}:
	case <-s.quit:
		return ErrClosed
	}
	<-ran
	return nil
}

// errLoopStalled reports a /healthz probe the event loop failed to answer
// inside the timeout: the process is up but the stream pipeline is wedged.
var errLoopStalled = errors.New("server: event loop stalled")

// doTimeout is do with a deadline. On timeout the closure may still run
// later (the loop owns it once submitted), so fn must only write state that
// is safe to publish late — the handlers pass loop-owned mirrors or dedicated
// heap cells they stop reading on the timeout path.
func (s *Server) doTimeout(fn func(), d time.Duration) error {
	ran := make(chan struct{})
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case s.reqs <- func() { defer close(ran); fn() }:
	case <-s.quit:
		return ErrClosed
	case <-timer.C:
		return errLoopStalled
	}
	select {
	case <-ran:
		return nil
	case <-timer.C:
		return errLoopStalled
	}
}

// stopLoop stops accepting work and waits for the event loop to drain:
// afterwards nothing touches the detectors concurrently, in-flight requests
// that were not applied get ErrClosed (never a 200), and SSE subscribers
// disconnect.
func (s *Server) stopLoop() {
	s.stopping.Do(func() {
		close(s.quit)
		<-s.done
	})
}

// Shutdown stops accepting work, then checkpoints the final state of every
// registered query. Stopping first closes the acknowledgement window: every
// ingest acked with a 200 is in the returned checkpoint, every one rejected
// with 503 is not. On a durable server the full registry checkpoint is also
// persisted to the data directory (and the WAL compacted), so the next boot
// restores every query and replays nothing. The returned bytes are the
// default query's detector checkpoint (the legacy -checkpoint artefact).
// The caller should still Close.
func (s *Server) Shutdown() ([]byte, error) {
	s.stopLoop()
	if s.wal != nil {
		if s.wal.loopDone != nil {
			// Join the background checkpointer: its in-flight iteration ends
			// once the loop drains, and waiting here means no stale persist can
			// race the final checkpoint below.
			<-s.wal.loopDone
		}
		if s.wal.repairDone != nil {
			<-s.wal.repairDone
		}
		if s.degraded.Load() {
			// Best-effort final repair so the checkpoint below can compact a
			// writable log; the checkpoint itself re-establishes the floor.
			if err := s.wal.log.Repair(); err == nil {
				s.exitDegraded()
			}
		}
	}
	s.snapshots.Add(1)
	// The loop is drained: nothing else touches the detectors or appends to
	// the WAL, so reading everything here is race-free and mutually
	// consistent across tenants.
	rc, err := s.captureRegistry()
	if err != nil {
		s.log.Error("shutdown checkpoint failed", "err", err)
		return nil, err
	}
	data := rc.blobs[rc.defSlot]
	s.log.Info("shutdown: final state checkpointed",
		"bytes", len(data), "objects", s.objects.Load(), "queries", len(rc.metas), "engine_slots", len(rc.blobs))
	if s.wal != nil {
		if werr := s.persistCheckpoint(rc, s.wal.log.LastLSN(), s.wal.ckptGen.Add(1)); werr != nil {
			s.log.Error("shutdown durable checkpoint failed", "err", werr)
			return data, werr
		}
	}
	return data, nil
}

// Close stops the event loop, disconnects subscribers and closes every
// engine slot (and the WAL on a durable server). It is idempotent.
func (s *Server) Close() error {
	s.closing.Do(func() {
		s.stopLoop()
		s.pool.Close()
		for _, sl := range s.slots {
			if err := sl.close(); err != nil && s.closeErr == nil {
				s.closeErr = err
			}
		}
		if s.wal != nil {
			if s.wal.loopDone != nil {
				// Join the background checkpointer before closing the log so
				// an in-flight persist never races the close.
				<-s.wal.loopDone
			}
			if s.wal.repairDone != nil {
				// Join the repair loop too: a repair rotates and reopens
				// segment files and must not race the close below.
				<-s.wal.repairDone
			}
			if werr := s.wal.log.Close(); werr != nil && s.closeErr == nil {
				s.closeErr = werr
			}
		}
		s.log.Info("server closed", "objects", s.objects.Load(), "uptime_sec", time.Since(s.start).Seconds(), "err", s.closeErr)
	})
	return s.closeErr
}

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler { return s.mux }

// DetectorOptions returns the default query's effective engine
// configuration, which differs from Config.Options when the server was
// seeded from (or live-restored to) a checkpoint with different query
// options.
func (s *Server) DetectorOptions() (surge.Options, error) {
	var o surge.Options
	if err := s.do(func() { o = s.defTenant.slot.Load().det.Options() }); err != nil {
		return surge.Options{}, err
	}
	return o, nil
}

// tenantHandler is an HTTP handler scoped to one registered query.
type tenantHandler func(t *tenant, w http.ResponseWriter, r *http.Request)

// legacy adapts a tenant handler to the legacy single-query paths, which
// address the default query.
func (s *Server) legacy(h tenantHandler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) { h(s.defTenant, w, r) }
}

// scoped adapts a tenant handler to /v1/queries/{id}/ paths: resolve the id
// against the registry, 404 with code "unknown_query" when absent.
func (s *Server) scoped(h tenantHandler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		s.tenMu.RLock()
		t := s.tenants[id]
		s.tenMu.RUnlock()
		if t == nil {
			writeErrorCode(w, http.StatusNotFound, client.CodeUnknownQuery, 0,
				fmt.Errorf("server: unknown query %q", id), 0)
			return
		}
		h(t, w, r)
	}
}

func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/ingest", s.handleIngest)
	s.mux.HandleFunc("GET /v1/best", s.legacy(s.handleBest))
	s.mux.HandleFunc("GET /v1/topk", s.legacy(s.handleTopK))
	s.mux.HandleFunc("GET /v1/subscribe", s.legacy(s.handleSubscribe))
	s.mux.HandleFunc("POST /v1/snapshot", s.legacy(s.handleSnapshot))
	s.mux.HandleFunc("POST /v1/restore", s.legacy(s.handleRestore))
	s.mux.HandleFunc("GET /v1/queries", s.handleQueryList)
	s.mux.HandleFunc("POST /v1/queries", s.handleQueryCreate)
	s.mux.HandleFunc("GET /v1/queries/{id}", s.scoped(s.handleQueryInfo))
	s.mux.HandleFunc("DELETE /v1/queries/{id}", s.scoped(s.handleQueryDelete))
	s.mux.HandleFunc("GET /v1/queries/{id}/best", s.scoped(s.handleBest))
	s.mux.HandleFunc("GET /v1/queries/{id}/topk", s.scoped(s.handleTopK))
	s.mux.HandleFunc("GET /v1/queries/{id}/subscribe", s.scoped(s.handleSubscribe))
	s.mux.HandleFunc("GET /v1/queries/{id}/stats", s.scoped(s.handleQueryStats))
	s.mux.HandleFunc("POST /v1/queries/{id}/snapshot", s.scoped(s.handleSnapshot))
	s.mux.HandleFunc("POST /v1/queries/{id}/restore", s.scoped(s.handleRestore))
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.cfg.EnablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
}

// getChunk borrows an ingest chunk buffer from the pool.
func (s *Server) getChunk() *[]surge.Object {
	return s.chunkPool.Get().(*[]surge.Object)
}

// putChunk returns an ingest chunk buffer. Every slot either reads the
// chunk in place or copies it to private scratch during applyBatch, so
// recycling the backing array is safe once the request is done with it.
func (s *Server) putChunk(c *[]surge.Object) {
	*c = (*c)[:0]
	s.chunkPool.Put(c)
}

// errPipeline marks a batch whose apply failed inside a detector pipeline
// (or panicked) rather than by request fault: the handler reports it as a
// 500, and the failed query serves its last good answer from then on.
var errPipeline = errors.New("server: pipeline failed")

// applyBatch runs on the event loop: fan the shared batch out to every
// engine slot over the worker pool, wait at the barrier, then publish each
// tenant's answer if it changed. The chunk itself is read-only across
// slots (a slot that must clamp timestamps copies to private scratch), so
// one parse serves the whole registry.
//
// Failure isolation: a slot whose apply fails or panics keeps serving its
// last good state and its tenants see no publication for the batch; the
// other slots publish normally. The ingest ack fails only when no slot
// accepted the batch — with a single registered query this reproduces the
// single-detector server's semantics exactly.
func (s *Server) applyBatch(objs []surge.Object) (res surge.Result, clamped int, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, clamped = surge.Result{}, 0
			err = fmt.Errorf("%w: batch apply panicked: %v", errPipeline, r)
			s.log.Error("panic in batch apply recovered; batch rejected",
				"panic", r, "stack", string(debug.Stack()))
			s.noteBatch(time.Time{}, false, err)
		}
	}()
	rec := obs.On()
	var t0 time.Time
	if rec {
		t0 = time.Now()
		s.mBatchObjs.Record(uint64(len(objs)))
	}
	policy := s.cfg.TimePolicy
	if len(s.slots) == 1 {
		// Single-slot registry: apply inline, no pool hop — the dominant
		// deployment stays on the legacy zero-overhead path.
		s.slots[0].apply(objs, policy)
	} else {
		for _, sl := range s.slots {
			sl := sl
			s.pool.Submit(sl.worker, func() { sl.apply(objs, policy) })
		}
		s.pool.Wait()
	}
	s.batches.Add(1)
	var firstErr error
	anyOK := false
	for _, sl := range s.slots {
		if sl.clock > s.clock {
			s.clock = sl.clock
		}
		if sl.pendErr != nil {
			if firstErr == nil {
				firstErr = sl.pendErr
			}
		} else {
			anyOK = true
		}
	}
	for _, t := range s.order {
		sl := t.slot.Load()
		if sl.pendPanicked {
			continue
		}
		if sl.pendClamped > 0 {
			t.clamped.Add(uint64(sl.pendClamped))
		}
		s.publishTenant(t, sl)
		s.refreshTenantTopK(t, sl)
	}
	d := s.defTenant.slot.Load()
	if !d.pendPanicked {
		res, clamped = d.pendRes, d.pendClamped
		s.clamped.Add(uint64(clamped))
	}
	if anyOK {
		s.objects.Add(uint64(len(objs)))
	} else {
		err = firstErr
	}
	s.noteBatch(t0, rec, firstErr)
	return res, clamped, err
}

// publishTenant runs on the event loop: broadcast the tenant's answer when
// it changed. Change detection is exact (bitwise on the score), so each
// query's notification stream matches an offline run bit-for-bit.
func (s *Server) publishTenant(t *tenant, sl *engineSlot) {
	res := sl.pendRes
	if res == t.last {
		return
	}
	t.last = res
	wire := client.FromResult(res)
	t.lastWire.Store(&wire)
	t.seq++
	t.eid++
	t.notifs.Add(1)
	s.notifs.Add(1)
	n := client.Notification{Seq: t.seq, Time: sl.pendNow, Result: wire}
	f := frame{eid: t.eid, burst: n}
	if obs.On() {
		f.pub = time.Now()
	}
	d := t.hub.broadcast(f)
	t.dropped.Add(d)
	s.dropped.Add(d)
}

// refreshTenantTopK runs on the event loop: adopt the slot's latest top-k
// snapshot and broadcast a "topk" event when the answer changed. The slot
// snapshot pointer is the change signal (the slot rebuilds it only on a
// bitwise answer change); a content-equal snapshot from a different slot —
// a restore that reproduced the same answer — is adopted silently.
func (s *Server) refreshTenantTopK(t *tenant, sl *engineSlot) {
	snap := sl.tkSnap
	if snap == nil {
		return
	}
	old := t.topkSnap.Load()
	if old == snap {
		return
	}
	t.topkSnap.Store(snap)
	if old != nil && topkWireEqual(old, snap) {
		return
	}
	t.tkSeq++
	t.eid++
	t.topkNotifs.Add(1)
	s.topkNotifs.Add(1)
	n := client.TopKNotification{
		Seq:     t.tkSeq,
		Time:    sl.pendNow,
		K:       snap.K,
		Results: snap.Results,
	}
	f := frame{eid: t.eid, topk: true, tk: n}
	if obs.On() {
		f.pub = time.Now()
	}
	d := t.hub.broadcast(f)
	t.dropped.Add(d)
	s.dropped.Add(d)
}

// topkEqual compares two top-k answers bitwise (scores, regions, found).
func topkEqual(a, b []surge.Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// topkWireEqual compares two wire top-k snapshots bitwise.
func topkWireEqual(a, b *client.TopK) bool {
	if a.K != b.K || len(a.Results) != len(b.Results) {
		return false
	}
	for i := range a.Results {
		ra, rb := a.Results[i], b.Results[i]
		if ra.Found != rb.Found || ra.Score != rb.Score {
			return false
		}
		if (ra.Region == nil) != (rb.Region == nil) {
			return false
		}
		if ra.Region != nil && *ra.Region != *rb.Region {
			return false
		}
	}
	return true
}

// tenantState runs on the event loop: snapshot one query's queryable
// state. Best and Stats are pipeline synchronisation points on a sharded
// detector.
func (s *Server) tenantState(t *tenant) client.State {
	sl := t.slot.Load()
	st := sl.det.Stats()
	return client.State{
		Seq:    t.seq,
		Epoch:  s.epoch,
		Events: t.eid,
		Now:    sl.det.Now(),
		Live:   sl.det.Live(),
		Shards: sl.det.Shards(),
		Result: client.FromResult(sl.det.Best()),
		Stats: client.EngineStats{
			Events:       st.Events,
			Searches:     st.Searches,
			SearchEvents: st.SearchEvents,
			SweepEntries: st.SweepEntries,
			CellsTouched: st.CellsTouched,
		},
	}
}

// Snapshot checkpoints the default query's detector (consistent: it runs
// on the event loop, between ingest batches).
func (s *Server) Snapshot() ([]byte, error) {
	return s.snapshotTenant(s.defTenant)
}

// snapshotTenant checkpoints one query's detector on the event loop.
func (s *Server) snapshotTenant(t *tenant) ([]byte, error) {
	var data []byte
	var err error
	if derr := s.do(func() {
		if t.dead {
			err = errUnknownQuery
			return
		}
		data, err = t.slot.Load().det.Checkpoint()
		s.snapshots.Add(1)
		t.snapshots.Add(1)
	}); derr != nil {
		return nil, derr
	}
	if err != nil {
		return nil, err
	}
	return data, nil
}

// Restore replaces the default query's engine state with the checkpointed
// state, restored into the query's configured shard count. See
// restoreTenant for the mechanics.
func (s *Server) Restore(data []byte) error {
	return s.restoreTenant(s.defTenant, data)
}

// restoreTenant replaces one query's engine state with a checkpoint. The
// replay — including the seeding of a fresh maintained top-k detector —
// happens off the event loop in a brand-new slot; only the binding swap
// synchronises with ingest. Other queries are untouched: if the restored
// query was sharing its slot, the swap unshares it (the old slot keeps
// serving its remaining tenants), and a failed restore leaves the old slot
// serving as before.
func (s *Server) restoreTenant(t *tenant, data []byte) error {
	sl, err := s.buildSlot(t.cfg, data)
	if err != nil {
		return err
	}
	var durCkpt regCapture
	var durLSN, durGen uint64
	var durErr error
	var closeOld *engineSlot
	derr := s.do(func() {
		if t.dead {
			err = errUnknownQuery
			return
		}
		old := t.slot.Load()
		sl.worker = old.worker
		t.slot.Store(sl)
		sl.refs.Add(1)
		if old.refs.Add(-1) == 0 {
			closeOld = old
		}
		s.rebuildSlots()
		// Recompute the global clock as the max over slots: a single-query
		// registry rewinds to the checkpoint's clock exactly like the
		// single-detector server did.
		clock := 0.0
		for i, x := range s.slots {
			if i == 0 || x.clock > clock {
				clock = x.clock
			}
		}
		s.clock = clock
		s.statNow.Store(math.Float64bits(s.clock))
		if t.isDefault {
			s.statShards.Store(int64(sl.det.Shards()))
		}
		s.restores.Add(1)
		t.restores.Add(1)
		s.publishTenant(t, sl)
		s.refreshTenantTopK(t, sl)
		if s.wal != nil {
			// Capture the restored registry and the WAL position inside the
			// swap, so the durable checkpoint written below supersedes every
			// pre-restore WAL frame: a crash after a restore must never
			// replay the old stream over the restored state.
			durCkpt, durErr = s.captureRegistry()
			durLSN = s.wal.log.LastLSN()
			durGen = s.wal.ckptGen.Add(1)
		}
	})
	if derr != nil {
		// Only reachable when the server is shutting down concurrently; the
		// loop is gone, so there is no maintained state left to repair.
		sl.close()
		return derr
	}
	if err != nil {
		sl.close()
		return err
	}
	if closeOld != nil {
		closeOld.close()
	}
	if s.wal != nil {
		if durErr == nil {
			durErr = s.persistCheckpoint(durCkpt, durLSN, durGen)
		}
		if durErr != nil {
			s.ckptErrs.Add(1)
			return fmt.Errorf("server: restore applied but durable checkpoint failed (a crash before the next checkpoint replays the pre-restore log): %w", durErr)
		}
	}
	s.log.Info("restored from checkpoint", "query", t.id, "bytes", len(data),
		"shards", sl.det.Shards(), "now", sl.clock, "live", sl.det.Live())
	return nil
}

func (s *Server) handleBest(t *tenant, w http.ResponseWriter, r *http.Request) {
	var st client.State
	var terr error
	if err := s.do(func() {
		if t.dead {
			terr = errUnknownQuery
			return
		}
		st = s.tenantState(t)
	}); err != nil {
		writeError(w, http.StatusServiceUnavailable, err, 0)
		return
	}
	if terr != nil {
		writeErrorCode(w, http.StatusNotFound, client.CodeUnknownQuery, 0, terr, 0)
		return
	}
	writeJSON(w, st)
}

// handleTopK serves one query's top-k bursty regions. The fast path — the
// default whenever the query maintains continuous top-k and the requested
// k is covered — is one atomic load of the snapshot the event loop keeps
// current: O(1) per request, off the loop, allocation-free. The greedy
// chain is prefix-stable (rank i never depends on ranks > i), so any k <=
// the maintained K is served as a prefix of the snapshot.
//
// ?mode=replay is the escape hatch (and the path for k beyond the
// maintained K): the query's live windows are checkpointed on the loop into
// a pooled buffer, then replayed into a fresh top-k detector off the loop,
// so even an expensive replay query never stalls ingestion. The canonically
// rescored kCCS makes both paths report bitwise identical scores.
func (s *Server) handleTopK(t *tenant, w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	k := t.cfg.TopK
	if qk := q.Get("k"); qk != "" {
		v, err := strconv.Atoi(qk)
		if err != nil || v < 1 || v > 1000 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("server: invalid k %q", qk), 0)
			return
		}
		k = v
	}
	mode := q.Get("mode")
	switch mode {
	case "", "auto", "continuous", "replay":
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("server: unknown top-k mode %q (want continuous or replay)", mode), 0)
		return
	}
	if mode != "replay" {
		if snap := t.topkSnap.Load(); snap != nil && k <= snap.K {
			t.topkFast.Add(1)
			s.topkFast.Add(1)
			out := *snap
			if k < snap.K {
				out.K = k
				out.Results = snap.Results[:k]
			}
			writeJSON(w, out)
			return
		}
		if mode == "continuous" {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("server: no maintained top-k covers k=%d for query %q (maintained k=%d, continuous=%v); drop mode or use mode=replay",
					k, t.id, t.cfg.TopK, !t.cfg.TopKReplayOnly), 0)
			return
		}
	}
	t.topkReplay.Add(1)
	s.topkReplay.Add(1)
	bufp := s.ckptPool.Get().(*[]byte)
	defer s.ckptPool.Put(bufp)
	var data []byte
	var cerr error
	if err := s.do(func() {
		if t.dead {
			cerr = errUnknownQuery
			return
		}
		data, cerr = t.slot.Load().det.AppendCheckpoint((*bufp)[:0])
		s.snapshots.Add(1)
		t.snapshots.Add(1)
	}); err != nil {
		writeError(w, http.StatusServiceUnavailable, err, 0)
		return
	}
	if cerr != nil {
		if errors.Is(cerr, errUnknownQuery) {
			writeErrorCode(w, http.StatusNotFound, client.CodeUnknownQuery, 0, cerr, 0)
			return
		}
		writeError(w, http.StatusInternalServerError, cerr, 0)
		return
	}
	*bufp = data // keep the grown capacity pooled for the next query
	alg := topKAlgorithm(t.cfg.Algorithm)
	// Replay answers one request and is thrown away: restore into the
	// single-engine path regardless of the checkpoint's recorded shard
	// count (spinning a shard pipeline up per request would cost more than
	// the query; the sharded and single-engine chains answer identically).
	td, err := surge.RestoreTopKSharded(alg, data, k, 0, 0)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err, 0)
		return
	}
	results := td.BestK()
	out := client.TopK{K: k, Algorithm: alg.String(), Results: make([]client.Result, len(results))}
	for i, res := range results {
		out.Results[i] = client.FromResult(res)
	}
	writeJSON(w, out)
}

// topKAlgorithm maps the serving algorithm to its top-k variant, falling
// back to the paper's exact kCCS for algorithms without one.
func topKAlgorithm(alg surge.Algorithm) surge.Algorithm {
	switch alg {
	case surge.CellCSPOT, surge.GridApprox, surge.MultiGrid, surge.Oracle:
		return alg
	default:
		return surge.CellCSPOT
	}
}

// chainServesBest reports whether the maintained chain's rank-1 region is
// bitwise the algorithm's single-region answer, making serve-from-chain
// (AttachTopKBest) exact: the exact family (CCS, B-CCS, Base — all report
// the exact bursty region the kCCS chain's first problem solves) and the
// grid approximations paired with their own chains (GAPS with kGAPS, MGAPS
// with kMGAPS). AG2 answers differ from the exact chain's, and the Oracle
// top-k uses its own recomputation fold, so both keep the dual-engine
// layout.
func chainServesBest(alg surge.Algorithm) bool {
	switch alg {
	case surge.CellCSPOT, surge.StaticBound, surge.Baseline, surge.GridApprox, surge.MultiGrid:
		return true
	default:
		return false
	}
}

func (s *Server) handleSnapshot(t *tenant, w http.ResponseWriter, r *http.Request) {
	data, err := s.snapshotTenant(t)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, ErrClosed) {
			status = http.StatusServiceUnavailable
		}
		if errors.Is(err, errUnknownQuery) {
			writeErrorCode(w, http.StatusNotFound, client.CodeUnknownQuery, 0, err, 0)
			return
		}
		writeError(w, status, err, 0)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.Write(data)
}

func (s *Server) handleRestore(t *tenant, w http.ResponseWriter, r *http.Request) {
	data, err := readBody(r, 1<<30)
	if err != nil {
		writeError(w, http.StatusBadRequest, err, 0)
		return
	}
	if err := s.restoreTenant(t, data); err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ErrClosed) {
			status = http.StatusServiceUnavailable
		}
		if errors.Is(err, errUnknownQuery) {
			writeErrorCode(w, http.StatusNotFound, client.CodeUnknownQuery, 0, err, 0)
			return
		}
		writeError(w, status, err, 0)
		return
	}
	var st client.State
	var terr error
	if err := s.do(func() {
		if t.dead {
			terr = errUnknownQuery
			return
		}
		st = s.tenantState(t)
	}); err != nil {
		writeError(w, http.StatusServiceUnavailable, err, 0)
		return
	}
	if terr != nil {
		writeErrorCode(w, http.StatusNotFound, client.CodeUnknownQuery, 0, terr, 0)
		return
	}
	writeJSON(w, st)
}

// subscriberCount sums open subscriptions across every query's hub.
func (s *Server) subscriberCount() int {
	s.tenMu.RLock()
	defer s.tenMu.RUnlock()
	n := 0
	for _, t := range s.order {
		n += t.hub.count()
	}
	return n
}

// queryCount returns the number of registered queries.
func (s *Server) queryCount() int {
	s.tenMu.RLock()
	defer s.tenMu.RUnlock()
	return len(s.order)
}

// slotCount returns the number of distinct engine slots backing the
// registry. It dedupes through the tenants' atomic slot pointers rather
// than reading the loop-owned s.slots list, so it is safe off-loop.
func (s *Server) slotCount() int {
	s.tenMu.RLock()
	defer s.tenMu.RUnlock()
	seen := make(map[*engineSlot]bool, len(s.order))
	for _, t := range s.order {
		seen[t.slot.Load()] = true
	}
	return len(seen)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	dslot := s.defTenant.slot.Load()
	h := client.Health{
		Algorithm:   s.cfg.Algorithm.String(),
		Version:     buildVersion,
		GoVersion:   runtime.Version(),
		UptimeSec:   time.Since(s.start).Seconds(),
		Subscribers: s.subscriberCount(),
		Queries:     s.queryCount(),
		EngineSlots: s.slotCount(),
		// Mirror values stand in when the loop cannot answer; the loop
		// overwrites them with the authoritative state below.
		Shards: int(s.statShards.Load()),
		Now:    math.Float64frombits(s.statNow.Load()),
		Live:   int(dslot.statLive.Load()),
	}
	if s.wal != nil {
		h.Durable = true
		h.RecoveredBatches = s.wal.recBatches
		h.RecoverySec = s.wal.recSec
		h.WALTornBytes = s.wal.torn
		h.Durability = s.durabilityString()
		h.DegradedCount = s.degradedCount.Load()
		h.RepairedCount = s.repairedCount.Load()
		h.DegradedSec = s.degradedSec()
	}
	// Last-ingest age lets probes detect a stalled *stream* (no data
	// arriving) separately from a stalled process; -1 means "never".
	h.LastIngestAgeSec = -1
	if t := s.lastIngestNano.Load(); t != 0 {
		h.LastIngestAgeSec = time.Since(time.Unix(0, t)).Seconds()
	}
	// The loop writes into a dedicated heap cell that the timeout path
	// never reads, so a probe that gave up cannot race a late closure run.
	loopH := new(client.Health)
	err := s.doTimeout(func() {
		d := s.defTenant.slot.Load()
		loopH.Shards = d.det.Shards()
		loopH.Now = d.det.Now()
		loopH.Live = d.det.Live()
		// A recorded pipeline error on any query means that query (or its
		// maintained top-k chain) serves a stale answer it can no longer
		// refresh: report unhealthy so orchestrators recycle the instance
		// instead of trusting the frozen result. The other queries keep
		// serving in the meantime.
		var derr error
		for _, t := range s.order {
			sl := t.slot.Load()
			if e := sl.det.Err(); e != nil {
				derr = fmt.Errorf("query %q: %w", t.id, e)
				break
			}
			if sl.tdet != nil {
				if e := sl.tdet.Err(); e != nil {
					derr = fmt.Errorf("query %q: %w", t.id, e)
					break
				}
			}
		}
		if derr != nil {
			loopH.Err = derr.Error()
		} else {
			loopH.OK = true
		}
	}, s.healthTimeout)
	if err == nil {
		h.OK = loopH.OK
		h.Err = loopH.Err
		h.Shards = loopH.Shards
		h.Now = loopH.Now
		h.Live = loopH.Live
	} else {
		h.Err = err.Error()
	}
	if h.OK && s.degraded.Load() {
		// Durability lost: ingest is shed, so the instance is not healthy —
		// but the process keeps serving queries while the repair loop works.
		h.OK = false
		if h.Err == "" {
			h.Err = "durability degraded: " + s.faultString()
		}
	}
	if !h.OK {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(h)
		return
	}
	writeJSON(w, h)
}

// handleMetrics renders the Prometheus scrape. It never round-trips the
// event loop: every value comes from atomics, loop-state mirrors or
// histogram snapshots, so the scrape stays up — and keeps reporting — when
// the loop is wedged, which is exactly when the numbers matter most. The
// unlabelled legacy gauges report the default query; per-query series carry
// a query label and are assembled at scrape time, so deleted queries leave
// no stale series behind.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	dt := s.defTenant
	dslot := dt.slot.Load()
	var dres client.Result
	if rw := dt.lastWire.Load(); rw != nil {
		dres = *rw
	}
	found := 0.0
	if dres.Found {
		found = 1
	}
	writeMetric(w, "surge_objects_ingested_total", "counter", "Objects applied to the detectors.", float64(s.objects.Load()))
	writeMetric(w, "surge_objects_clamped_total", "counter", "Late default-query objects lifted to the stream clock (clamp policy).", float64(s.clamped.Load()))
	writeMetric(w, "surge_ingest_batches_total", "counter", "Detector synchronisations on the ingest path.", float64(s.batches.Load()))
	writeMetric(w, "surge_ingest_errors_total", "counter", "Failed ingest requests.", float64(s.ingestErr.Load()))
	writeMetric(w, "surge_notifications_total", "counter", "Bursty-region change notifications published (all queries).", float64(s.notifs.Load()))
	writeMetric(w, "surge_notifications_dropped_total", "counter", "Notifications lost to slow subscribers (all queries).", float64(s.dropped.Load()))
	writeMetric(w, "surge_topk_fast_queries_total", "counter", "Top-k requests served from a maintained snapshot.", float64(s.topkFast.Load()))
	writeMetric(w, "surge_topk_replay_queries_total", "counter", "Top-k requests served by checkpoint replay.", float64(s.topkReplay.Load()))
	writeMetric(w, "surge_topk_notifications_total", "counter", "Top-k change notifications published (all queries).", float64(s.topkNotifs.Load()))
	continuous := 0.0
	if dslot.tdet != nil {
		continuous = 1
	}
	writeMetric(w, "surge_topk_continuous", "gauge", "Whether a continuously maintained top-k detector is serving the default query's /v1/topk.", continuous)
	fromChain := 0.0
	if dt.cfg.serveBestFromChain() {
		fromChain = 1
	}
	writeMetric(w, "surge_best_from_chain", "gauge", "Whether /v1/best is served from the maintained top-k chain's rank-1 region.", fromChain)
	writeMetric(w, "surge_topk_k", "gauge", "k of the default query's maintained top-k detector.", float64(s.cfg.TopK))
	writeMetric(w, "surge_snapshots_total", "counter", "Checkpoints taken.", float64(s.snapshots.Load()))
	writeMetric(w, "surge_restores_total", "counter", "Checkpoints restored.", float64(s.restores.Load()))
	writeMetric(w, "surge_subscribers", "gauge", "Open notification subscriptions (all queries).", float64(s.subscriberCount()))
	writeMetric(w, "surge_queries", "gauge", "Registered queries in the registry.", float64(s.queryCount()))
	writeMetric(w, "surge_shards", "gauge", "Engine shards processing the default query.", float64(s.statShards.Load()))
	writeMetric(w, "surge_live_objects", "gauge", "Objects inside the default query's sliding windows.", float64(dslot.statLive.Load()))
	writeMetric(w, "surge_stream_time", "gauge", "Current stream clock (max across queries).", math.Float64frombits(s.statNow.Load()))
	writeMetric(w, "surge_best_found", "gauge", "Whether the default query currently has a bursty region.", found)
	writeMetric(w, "surge_best_score", "gauge", "Burst score of the default query's current bursty region.", dres.Score)
	writeMetric(w, "surge_engine_events_total", "counter", "Window events processed by the default query's engines (halo replicas counted per shard).", float64(dslot.engStats[0].Load()))
	writeMetric(w, "surge_engine_searches_total", "counter", "Snapshot searches run by the default query's engines.", float64(dslot.engStats[1].Load()))
	writeMetric(w, "surge_engine_search_events_total", "counter", "Events that triggered at least one search.", float64(dslot.engStats[2].Load()))
	writeMetric(w, "surge_engine_sweep_entries_total", "counter", "Sweep entries processed by the default query's engines.", float64(dslot.engStats[3].Load()))
	writeMetric(w, "surge_engine_cells_touched_total", "counter", "Grid cells touched by the default query's engines.", float64(dslot.engStats[4].Load()))
	writeMetric(w, "surge_ingest_throttled_total", "counter", "Ingest chunks shed with 429 by admission control.", float64(s.throttled.Load()))
	writeMetric(w, "surge_ingest_pending_chunks", "gauge", "Ingest chunks submitted and not yet applied.", float64(s.pendingChunks.Load()))
	s.writeQueryMetrics(w)
	if s.wal != nil {
		writeMetric(w, "surge_wal_last_sync_age_seconds", "gauge", "Seconds since the last completed WAL fsync.", s.wal.log.LastSyncAge())
		writeMetric(w, "surge_wal_checkpoints_total", "counter", "Durable checkpoints written.", float64(s.ckpts.Load()))
		writeMetric(w, "surge_wal_recovered_batches", "gauge", "WAL batches replayed at the last boot.", float64(s.wal.recBatches))
		writeMetric(w, "surge_wal_recovered_objects", "gauge", "Objects replayed from the WAL at the last boot.", float64(s.wal.recObjects))
		writeMetric(w, "surge_wal_recovery_seconds", "gauge", "Boot WAL replay duration.", s.wal.recSec)
		writeMetric(w, "surge_wal_torn_bytes", "gauge", "Bytes discarded by torn-tail truncation at the last boot.", float64(s.wal.torn))
		deg := 0.0
		if s.degraded.Load() {
			deg = 1
		}
		writeMetric(w, obs.MDegraded, "gauge", "Whether ingest is currently shed because durability is lost.", deg)
		writeMetric(w, obs.MDegradedTot, "counter", "Transitions into the degraded (durability lost) state.", float64(s.degradedCount.Load()))
		writeMetric(w, obs.MRepairedTot, "counter", "Successful repairs (degraded to recovered transitions).", float64(s.repairedCount.Load()))
		writeMetric(w, obs.MDegradedSec, "counter", "Cumulative seconds spent in the degraded state.", s.degradedSec())
		writeMetric(w, obs.MCkptErrors, "counter", "Failed durable checkpoint attempts.", float64(s.ckptErrs.Load()))
		writeMetric(w, "surge_ingest_shed_degraded_total", "counter", "Ingest chunks shed with 503 while durability was degraded.", float64(s.shedDegraded.Load()))
	}
	writeMetric(w, "surge_uptime_seconds", "gauge", "Seconds since the server started.", time.Since(s.start).Seconds())
	writeMetric(w, "surge_last_ingest_age_seconds", "gauge", "Seconds since the last applied batch (-1 before the first).", s.lastIngestAge())
	writeMetric(w, "surge_loop_tick_age_seconds", "gauge", "Seconds since the event loop last answered a lag probe (-1 before the first).", ageSec(s.lastTickNano.Load()))
	fmt.Fprintf(w, "# HELP surge_build_info Build metadata; the value is always 1.\n# TYPE surge_build_info gauge\nsurge_build_info{version=%q,go_version=%q,algorithm=%q,shards=%q} 1\n",
		buildVersion, runtime.Version(), s.cfg.Algorithm.String(), strconv.FormatInt(s.statShards.Load(), 10))
	obs.Default.WritePrometheus(w)
	obs.ReadRuntime().WritePrometheus(w)
}

// writeQueryMetrics renders the per-query metric families, one labelled
// row per registered query. The rows are assembled at scrape time from the
// live registry, so a deleted query's series disappear with it.
func (s *Server) writeQueryMetrics(w http.ResponseWriter) {
	type family struct {
		name, kind, help string
		val              func(t *tenant, sl *engineSlot) float64
	}
	families := []family{
		{"surge_query_notifications_total", "counter", "Bursty-region change notifications published per query.",
			func(t *tenant, _ *engineSlot) float64 { return float64(t.notifs.Load()) }},
		{"surge_query_notifications_dropped_total", "counter", "Notifications lost to this query's slow subscribers.",
			func(t *tenant, _ *engineSlot) float64 { return float64(t.dropped.Load()) }},
		{"surge_query_topk_notifications_total", "counter", "Top-k change notifications published per query.",
			func(t *tenant, _ *engineSlot) float64 { return float64(t.topkNotifs.Load()) }},
		{"surge_query_clamped_total", "counter", "Late objects lifted to this query's stream clock (clamp policy).",
			func(t *tenant, _ *engineSlot) float64 { return float64(t.clamped.Load()) }},
		{"surge_query_subscribers", "gauge", "Open notification subscriptions per query.",
			func(t *tenant, _ *engineSlot) float64 { return float64(t.hub.count()) }},
		{"surge_query_live_objects", "gauge", "Objects inside this query's sliding windows.",
			func(_ *tenant, sl *engineSlot) float64 { return float64(sl.statLive.Load()) }},
		{"surge_query_stream_time", "gauge", "This query's stream clock.",
			func(_ *tenant, sl *engineSlot) float64 { return math.Float64frombits(sl.statNow.Load()) }},
		{"surge_query_best_score", "gauge", "Burst score of this query's current bursty region (0 when none).",
			func(t *tenant, _ *engineSlot) float64 {
				if rw := t.lastWire.Load(); rw != nil {
					return rw.Score
				}
				return 0
			}},
	}
	s.tenMu.RLock()
	tenants := make([]*tenant, len(s.order))
	copy(tenants, s.order)
	s.tenMu.RUnlock()
	rows := make([]obs.LabeledValue, 0, len(tenants))
	for _, fam := range families {
		rows = rows[:0]
		for _, t := range tenants {
			rows = append(rows, obs.LabeledValue{
				Labels: []string{"query", t.id},
				Value:  fam.val(t, t.slot.Load()),
			})
		}
		obs.WriteLabeled(w, fam.name, fam.kind, fam.help, rows)
	}
}

// lastIngestAge returns seconds since the last applied batch, -1 before
// any ingest.
func (s *Server) lastIngestAge() float64 {
	return ageSec(s.lastIngestNano.Load())
}

// ageSec converts a stored wall-clock nanosecond stamp to an age in
// seconds, -1 when the stamp was never set.
func ageSec(nano int64) float64 {
	if nano == 0 {
		return -1
	}
	return time.Since(time.Unix(0, nano)).Seconds()
}

func writeMetric(w http.ResponseWriter, name, kind, help string, v float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %v\n", name, help, name, kind, name, v)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error, accepted int) {
	writeErrorCode(w, status, "", 0, err, accepted)
}

// writeErrorCode is writeError with a machine-readable code and an
// optional Retry-After hint (seconds; also sent as the HTTP header so
// generic clients back off without parsing the body).
func writeErrorCode(w http.ResponseWriter, status int, code string, retryAfterSec int, err error, accepted int) {
	if retryAfterSec > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSec))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(client.Error{
		Err:           err.Error(),
		Code:          code,
		Accepted:      accepted,
		RetryAfterSec: float64(retryAfterSec),
	})
}
