// Package server hosts a surge detector behind HTTP: surged serve. It turns
// the embeddable, single-goroutine Detector into a long-running service —
// network ingestion, push-based change notification, snapshots and
// observability — without giving up the library's exactness guarantees.
//
// # Concurrency model
//
// The Detector (sharded or not) is owned by a single-writer event loop: one
// goroutine receives closures over a channel and is the only code that
// touches the detector. HTTP handlers parse request bodies concurrently (the
// hot path — NDJSON/CSV decoding dominates ingest cost) and submit
// fixed-size object batches to the loop, which applies them with PushBatch,
// the batch path of the sharded pipeline. Concurrent ingesters therefore
// serialise at the loop, inherit its backpressure, and observe a single
// global stream order; with the Clamp time policy, late timestamps are
// lifted to the stream clock so independent ingesters never violate the
// library's time-ordering contract.
//
// # Consistency
//
// Because every mutation flows through the loop and PushBatch is
// answer-equivalent to per-object Push, the SSE notification stream is
// exactly the sequence of answer changes a single-process run of the same
// object sequence (with the same batch boundaries) would observe — down to
// the bit pattern of the scores for the schedule-independent engines (CCS,
// B-CCS, Base, GAPS, MGAPS, Oracle).
package server

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"surge"
	"surge/client"
	"surge/internal/obs"
)

// ErrClosed is returned by server methods after Close.
var ErrClosed = errors.New("server: closed")

// TimePolicy selects how ingested timestamps that precede the stream clock
// are handled.
type TimePolicy int

const (
	// Strict rejects out-of-order objects, preserving the library's
	// contract verbatim. Single-ingester deployments keep exact time
	// semantics this way.
	Strict TimePolicy = iota
	// Clamp lifts late timestamps to the current stream clock, so any
	// number of concurrent ingesters can stream without coordinating.
	Clamp
)

// ParseTimePolicy parses "strict" or "clamp".
func ParseTimePolicy(s string) (TimePolicy, error) {
	switch s {
	case "strict":
		return Strict, nil
	case "clamp":
		return Clamp, nil
	default:
		return 0, fmt.Errorf("server: unknown time policy %q (want strict or clamp)", s)
	}
}

// Config configures a Server. Algorithm and Options are handed to surge.New
// unchanged (Options.Shards >= 2 serves from the sharded pipeline).
type Config struct {
	Algorithm surge.Algorithm
	Options   surge.Options
	// TopK is the k of the continuously maintained top-k detector and the
	// default k of /v1/topk (0 = 5).
	TopK int
	// TopKReplayOnly disables the continuously maintained top-k detector:
	// /v1/topk then answers every query by checkpoint replay (the pre-
	// maintenance behaviour) and no "topk" SSE events are published.
	TopKReplayOnly bool
	// BestFromEngines keeps the legacy dual-engine serving layout: the
	// single-region engines answer /v1/best while the maintained top-k chain
	// answers /v1/topk. By default (false), an algorithm whose chain rank-1
	// answer is bitwise its single-region answer retires the single-region
	// engines and serves both endpoints from the one maintained chain
	// (surge.Detector.AttachTopKBest), removing the duplicated per-event
	// engine maintenance from the ingest path. Ignored when TopKReplayOnly
	// is set (no chain is maintained) and for algorithms without an exact
	// chain counterpart (AG2, Oracle).
	BestFromEngines bool
	// NotifyRing is the number of recent SSE events retained for
	// Last-Event-ID reconnect backfill (0 = 256).
	NotifyRing int
	// TimePolicy handles out-of-order ingest timestamps (default Strict).
	TimePolicy TimePolicy
	// BatchSize is the number of objects per detector synchronisation on
	// the ingest path (0 = 512).
	BatchSize int
	// SubscriberBuffer is the per-subscriber notification buffer; a
	// subscriber that falls further behind loses oldest-first, with the
	// loss accounted in Notification.Dropped (0 = 64).
	SubscriberBuffer int
	// MaxPending is the admission-control watermark: when this many ingest
	// chunks are already submitted and waiting on the event loop, further
	// chunks are shed with 429 and a Retry-After hint instead of queueing
	// unboundedly (0 = 256; negative disables shedding).
	MaxPending int
	// Checkpoint optionally seeds the detector from a snapshot instead of
	// starting empty. The checkpoint's recorded query options (width,
	// height, windows, alpha, area) define the detector — only Shards,
	// ShardBlockCols and ShardFlushEvents are taken from Options. Inspect
	// DetectorOptions for the effective configuration.
	Checkpoint []byte
	// EnablePprof mounts net/http/pprof under /debug/pprof/ so hot-path
	// regressions can be profiled in place. Off by default: the handlers
	// expose internals and cost memory, so only enable them on instances
	// whose listener is access-controlled.
	EnablePprof bool
	// Logger receives structured lifecycle logs: startup, checkpoint,
	// restore, shutdown and degraded-mode transitions. Nil discards them
	// (the library stays silent by default; surged wires -log-format here).
	Logger *slog.Logger
}

// Server hosts one detector. Create with New, expose Handler on an
// http.Server, and Close on shutdown.
type Server struct {
	cfg      Config
	batch    int
	subBuf   int
	mux      *http.ServeMux
	reqs     chan func()
	quit     chan struct{} // closed by Close: rejects new work, ends SSE
	done     chan struct{} // closed when the loop exits
	start    time.Time
	stopping sync.Once
	closing  sync.Once
	closeErr error

	// Loop-owned state: only the event loop may touch these.
	det      *surge.Detector
	tdet     *surge.TopKDetector // maintained top-k; nil in replay-only mode
	clock    float64             // largest ingested timestamp
	last     surge.Result        // last published answer
	lastTopK []surge.Result      // last published top-k answer (copy)
	seq      uint64              // bursty-region change sequence number
	tkSeq    uint64              // top-k change sequence number
	eid      uint64              // SSE event id, shared by both event kinds

	// epoch identifies this server process's notification stream: SSE event
	// ids are rendered "epoch.eid", so a Last-Event-ID cursor taken before a
	// process restart (whose ring is gone and whose eids restart from 1) is
	// recognised and answered with a fresh hello instead of a bogus resume.
	// Random and nonzero; constant for the server's lifetime, including
	// across /v1/restore (the ring stays continuous there).
	epoch uint64

	// topkSnap is the latest maintained top-k answer, swapped in whole by
	// the event loop: /v1/topk serves it with one atomic load — O(1) per
	// query, no loop round-trip, no allocation.
	topkSnap atomic.Pointer[client.TopK]

	hub hub

	// chunkPool recycles the per-request ingest chunk buffers (capacity
	// s.batch) across requests, keeping the ingest hot path allocation-free.
	chunkPool sync.Pool

	// ckptPool recycles the checkpoint buffers of replay-mode top-k
	// queries, so the escape hatch does not allocate a fresh snapshot per
	// request.
	ckptPool sync.Pool

	// wal is the durability attachment (NewDurable); nil on a plain server.
	// Its log is appended on the event loop inside applyLogged.
	wal   *walState
	ckpts atomic.Uint64 // durable checkpoints written

	// Durability degradation state machine (ok -> degraded -> recovered):
	// degraded is set on the first WAL append/fsync failure and cleared by a
	// successful repair. While set, ingest is shed with 503 (one atomic load
	// on the hot path); queries, SSE and scrapes keep serving. Always false
	// on a plain server.
	degraded      atomic.Bool
	degradedCount atomic.Uint64 // ok -> degraded transitions
	repairedCount atomic.Uint64 // degraded -> recovered transitions
	degradedSince atomic.Int64  // nano wall clock of the current spell; 0 when healthy
	degradedNano  atomic.Int64  // cumulative nanos of completed degraded spells
	ckptErrs      atomic.Uint64 // failed durable checkpoint attempts
	shedDegraded  atomic.Uint64 // ingest chunks shed with 503 while degraded
	faultMsg      atomic.Pointer[string]

	// Ingest-Seq dedupe: per-source sequence state for idempotent retries.
	seqMu sync.Mutex
	seqs  map[string]*sourceSeq

	// Admission control: chunks submitted to the loop and not yet applied.
	maxPending    int64
	pendingChunks atomic.Int64
	throttled     atomic.Uint64 // chunks shed with 429

	// Counters (atomics so /metrics and handlers read them lock-free).
	objects   atomic.Uint64 // objects applied
	clamped   atomic.Uint64 // objects lifted to the clock (Clamp policy)
	batches   atomic.Uint64 // detector synchronisations
	notifs    atomic.Uint64 // notifications published
	dropped   atomic.Uint64 // notifications lost to slow subscribers
	ingestErr atomic.Uint64 // failed ingest requests
	snapshots atomic.Uint64
	restores  atomic.Uint64

	topkFast   atomic.Uint64 // /v1/topk answered from the maintained snapshot
	topkReplay atomic.Uint64 // /v1/topk answered by checkpoint replay
	topkNotifs atomic.Uint64 // top-k notifications published

	log           *slog.Logger  // never nil; discards when Config.Logger is nil
	degradedOnce  bool          // loop-owned: degraded transition logged
	healthTimeout time.Duration // /healthz event-loop probe budget

	// Latency histograms (process-wide obs.Default registry; the shard
	// pipeline and top-k chain register theirs from internal/shard).
	mAck        *obs.Histogram // ingest chunk submit -> applied & acked
	mParse      *obs.Histogram // ingest request parse time (total - ack waits)
	mBatchObjs  *obs.Histogram // objects per applied batch
	mQueueWait  *obs.Histogram // do() submit -> closure starts
	mApply      *obs.Histogram // applyBatch duration on the loop
	mLag        *obs.Histogram // loop lag probe
	mSSEDeliver *obs.Histogram // publish -> written to subscriber

	// Loop-state mirrors: the event loop writes them after every batch (and
	// on restore) so /metrics, /healthz and /v1/stats read consistent
	// pipeline state without a loop round-trip — the scrape path keeps
	// working even when the loop is wedged.
	statNow        atomic.Uint64 // stream clock (float64 bits)
	statLive       atomic.Uint64 // objects inside the windows
	statShards     atomic.Int64
	statFound      atomic.Uint64    // 1 when a bursty region exists
	statScore      atomic.Uint64    // best score (float64 bits)
	engStats       [5]atomic.Uint64 // events, searches, searchEvents, sweepEntries, cellsTouched
	lastIngestNano atomic.Int64     // wall clock of the last applied batch
	lastTickNano   atomic.Int64     // wall clock of the last loop-lag probe completion
	lastStatsNano  int64            // loop-owned: last engine-stats refresh
}

// New builds the detector and starts the event loop.
func New(cfg Config) (*Server, error) {
	if cfg.TopK == 0 {
		cfg.TopK = 5
	}
	if cfg.TopK < 1 {
		return nil, fmt.Errorf("server: invalid TopK %d", cfg.TopK)
	}
	var det *surge.Detector
	var err error
	if cfg.Checkpoint != nil {
		det, err = surge.RestoreShardedTuned(cfg.Algorithm, cfg.Checkpoint,
			cfg.Options.Shards, cfg.Options.ShardBlockCols, cfg.Options.ShardFlushEvents)
	} else {
		det, err = surge.New(cfg.Algorithm, cfg.Options)
	}
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:    cfg,
		batch:  cfg.BatchSize,
		subBuf: cfg.SubscriberBuffer,
		reqs:   make(chan func()),
		quit:   make(chan struct{}),
		done:   make(chan struct{}),
		start:  time.Now(),
		epoch:  newEpoch(),
		det:    det,
		clock:  det.Now(),
		last:   det.Best(),
		seqs:   make(map[string]*sourceSeq),

		log:           cfg.Logger,
		healthTimeout: defaultHealthTimeout,
		mAck:          obs.Default.Duration(obs.MIngestAck, "Ingest chunk latency: submit to applied and acknowledged."),
		mParse:        obs.Default.Duration(obs.MIngestParse, "Ingest request time spent parsing the body (excludes ack waits)."),
		mBatchObjs:    obs.Default.Values(obs.MIngestBatch, "Objects per batch applied to the detector."),
		mQueueWait:    obs.Default.Duration(obs.MLoopQueueWait, "Event-loop queue wait: submit to closure start."),
		mApply:        obs.Default.Duration(obs.MLoopApply, "Batch apply duration on the event loop."),
		mLag:          obs.Default.Duration(obs.MLoopLag, "Event-loop lag: self-timed probe from send to execution."),
		mSSEDeliver:   obs.Default.Duration(obs.MSSEDelivery, "SSE delivery latency: publish to written to the subscriber."),
	}
	if s.log == nil {
		s.log = slog.New(slog.DiscardHandler)
	}
	if s.batch <= 0 {
		s.batch = 512
	}
	if s.subBuf <= 0 {
		s.subBuf = 64
	}
	switch {
	case cfg.MaxPending > 0:
		s.maxPending = int64(cfg.MaxPending)
	case cfg.MaxPending == 0:
		s.maxPending = 256
	}
	s.chunkPool.New = func() any {
		c := make([]surge.Object, 0, s.batch)
		return &c
	}
	s.ckptPool.New = func() any { return new([]byte) }
	s.hub.subs = make(map[*subscriber]struct{})
	s.hub.ringCap = cfg.NotifyRing
	if s.hub.ringCap <= 0 {
		s.hub.ringCap = 256
	}
	if !cfg.TopKReplayOnly {
		tdet, err := s.attachMaintained(det)
		if err != nil {
			det.Close()
			return nil, err
		}
		s.tdet = tdet
		s.lastTopK = append(s.lastTopK, tdet.BestK()...)
		s.topkSnap.Store(s.topkWire(s.lastTopK))
		s.last = det.Best() // serve-from-chain may have swapped the source
	}
	s.hub.occ = obs.Default.Values(obs.MSSEBuffer, "Per-subscriber buffer occupancy observed at broadcast.")
	s.statShards.Store(int64(det.Shards()))
	s.statNow.Store(math.Float64bits(s.clock))
	s.statLive.Store(uint64(det.Live()))
	s.noteBest(s.last)
	s.refreshEngineStats(time.Now())
	s.routes()
	go s.loop()
	go s.lagLoop()
	s.log.Info("server started",
		"algorithm", cfg.Algorithm.String(),
		"shards", det.Shards(),
		"topk", cfg.TopK,
		"continuous_topk", !cfg.TopKReplayOnly,
		"best_from_chain", s.serveBestFromChain(),
		"restored", cfg.Checkpoint != nil)
	return s, nil
}

const (
	// defaultHealthTimeout bounds how long /healthz waits for the event
	// loop before reporting it stalled.
	defaultHealthTimeout = 2 * time.Second
	// lagProbeInterval paces the self-timed event-loop lag probe.
	lagProbeInterval = 500 * time.Millisecond
	// engineStatsInterval throttles the det.Stats() refresh on the loop: on
	// a sharded detector Stats is a pipeline barrier, so the mirrors trade
	// up to a second of staleness for a bounded, batch-independent cost.
	engineStatsInterval = time.Second
)

// buildVersion is the module version baked into the binary, "dev" for
// plain source builds.
var buildVersion = func() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		return bi.Main.Version
	}
	return "dev"
}()

// lagLoop self-times the event loop: every probe sends a closure and the
// loop records how long it sat in the queue — the externally observable
// scheduling delay an ingest submission would see right now.
func (s *Server) lagLoop() {
	t := time.NewTicker(lagProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.probeLag()
		case <-s.quit:
			return
		}
	}
}

// probeLag fires one lag probe without waiting for it to run (a wedged
// loop must not wedge the prober; the probe records itself whenever the
// loop gets to it).
func (s *Server) probeLag() {
	t0 := time.Now()
	select {
	case s.reqs <- func() {
		if obs.On() {
			s.mLag.Observe(time.Since(t0))
		}
		s.lastTickNano.Store(time.Now().UnixNano())
	}:
	case <-s.quit:
	}
}

// noteBest mirrors the published answer for lock-free scrapes.
func (s *Server) noteBest(res surge.Result) {
	found := uint64(0)
	if res.Found {
		found = 1
	}
	s.statFound.Store(found)
	s.statScore.Store(math.Float64bits(res.Score))
}

// noteBatch runs on the event loop after a batch lands: stamp the ingest
// clock, refresh the state mirrors, price the apply and log the first
// degraded-mode transition.
func (s *Server) noteBatch(t0 time.Time, rec bool, err error) {
	now := time.Now()
	s.lastIngestNano.Store(now.UnixNano())
	s.statNow.Store(math.Float64bits(s.clock))
	s.statLive.Store(uint64(s.det.Live()))
	if rec {
		s.mApply.Observe(now.Sub(t0))
	}
	if err != nil && !s.degradedOnce {
		s.degradedOnce = true
		s.log.Error("pipeline degraded: batch apply failed, detector serves stale answers", "err", err)
	}
	s.maybeRefreshEngineStats(now)
}

// maybeRefreshEngineStats refreshes the engine-statistics mirrors at most
// once per engineStatsInterval. Runs on the event loop.
func (s *Server) maybeRefreshEngineStats(now time.Time) {
	if now.UnixNano()-s.lastStatsNano < int64(engineStatsInterval) {
		return
	}
	s.refreshEngineStats(now)
}

// refreshEngineStats mirrors det.Stats() into atomics. On a sharded
// detector Stats synchronises the pipeline, so callers throttle; serving
// from the maintained chain answers from the chain's cache and is cheap.
func (s *Server) refreshEngineStats(now time.Time) {
	s.lastStatsNano = now.UnixNano()
	st := s.det.Stats()
	s.engStats[0].Store(st.Events)
	s.engStats[1].Store(st.Searches)
	s.engStats[2].Store(st.SearchEvents)
	s.engStats[3].Store(st.SweepEntries)
	s.engStats[4].Store(st.CellsTouched)
}

// newEpoch draws the random nonzero stream epoch for a server instance.
// Two distinct processes (or two Servers in one process) get different
// epochs with overwhelming probability, so a client cursor from one never
// silently resumes mid-ring on another.
func newEpoch() uint64 {
	var b [8]byte
	for i := 0; i < 4; i++ {
		if _, err := rand.Read(b[:]); err != nil {
			break
		}
		if e := binary.LittleEndian.Uint64(b[:]); e != 0 {
			return e
		}
	}
	return uint64(time.Now().UnixNano()) | 1
}

// serveBestFromChain reports whether this server retires the single-region
// engines and serves /v1/best from the maintained chain's rank-1 region.
func (s *Server) serveBestFromChain() bool {
	return !s.cfg.TopKReplayOnly && !s.cfg.BestFromEngines && chainServesBest(s.cfg.Algorithm)
}

// attachMaintained attaches the maintained top-k detector to det — by
// default taking over Best serving too (AttachTopKBest), so one maintained
// engine family answers /v1/best, /v1/topk and the notification stream.
func (s *Server) attachMaintained(det *surge.Detector) (*surge.TopKDetector, error) {
	alg := topKAlgorithm(s.cfg.Algorithm)
	if s.serveBestFromChain() {
		return det.AttachTopKBest(alg, s.cfg.TopK)
	}
	return det.AttachTopK(alg, s.cfg.TopK)
}

// topkWire converts a maintained top-k answer to its wire snapshot.
func (s *Server) topkWire(res []surge.Result) *client.TopK {
	out := &client.TopK{
		K:          s.tdet.K(),
		Algorithm:  s.tdet.Algorithm().String(),
		Continuous: true,
		Results:    make([]client.Result, len(res)),
	}
	for i, r := range res {
		out.Results[i] = client.FromResult(r)
	}
	return out
}

// loop is the single-writer event loop: the only goroutine that touches
// the detector.
func (s *Server) loop() {
	defer close(s.done)
	for {
		select {
		case fn := <-s.reqs:
			s.runLoopOp(fn)
		case <-s.quit:
			// Drain work that already won the submission race.
			for {
				select {
				case fn := <-s.reqs:
					s.runLoopOp(fn)
				default:
					return
				}
			}
		}
	}
}

// runLoopOp is the loop's panic backstop: a panicking op must not kill the
// event loop — that would wedge every do() caller behind a dead channel and
// take queries down with it. The submitted closure's own defer unblocks its
// caller during the unwind; the recover here keeps the loop alive for the
// next op. applyBatch additionally recovers its own panics into errors so a
// panicking apply is a rejected batch, never a zero-valued false ack.
func (s *Server) runLoopOp(fn func()) {
	defer func() {
		if r := recover(); r != nil {
			s.log.Error("panic in event-loop op recovered", "panic", r, "stack", string(debug.Stack()))
		}
	}()
	fn()
}

// do runs fn on the event loop and waits for it. The queue wait — submit to
// closure start — is recorded per call; the timestamp rides the closure the
// call allocates anyway, so the hot path gains no allocation.
func (s *Server) do(fn func()) error {
	ran := make(chan struct{})
	rec := obs.On()
	var t0 time.Time
	if rec {
		t0 = time.Now()
	}
	select {
	case s.reqs <- func() {
		if rec {
			s.mQueueWait.Observe(time.Since(t0))
		}
		defer close(ran)
		fn()
	}:
	case <-s.quit:
		return ErrClosed
	}
	<-ran
	return nil
}

// errLoopStalled reports a /healthz probe the event loop failed to answer
// inside the timeout: the process is up but the stream pipeline is wedged.
var errLoopStalled = errors.New("server: event loop stalled")

// doTimeout is do with a deadline. On timeout the closure may still run
// later (the loop owns it once submitted), so fn must only write state that
// is safe to publish late — the handlers pass loop-owned mirrors or dedicated
// heap cells they stop reading on the timeout path.
func (s *Server) doTimeout(fn func(), d time.Duration) error {
	ran := make(chan struct{})
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case s.reqs <- func() { defer close(ran); fn() }:
	case <-s.quit:
		return ErrClosed
	case <-timer.C:
		return errLoopStalled
	}
	select {
	case <-ran:
		return nil
	case <-timer.C:
		return errLoopStalled
	}
}

// stopLoop stops accepting work and waits for the event loop to drain:
// afterwards nothing touches the detector concurrently, in-flight requests
// that were not applied get ErrClosed (never a 200), and SSE subscribers
// disconnect.
func (s *Server) stopLoop() {
	s.stopping.Do(func() {
		close(s.quit)
		<-s.done
	})
}

// Shutdown stops accepting work, then checkpoints the final detector
// state. Stopping first closes the acknowledgement window: every ingest
// acked with a 200 is in the returned checkpoint, every one rejected with
// 503 is not. On a durable server the checkpoint is also persisted to the
// data directory (and its WAL compacted), so the next boot replays
// nothing. The caller should still Close.
func (s *Server) Shutdown() ([]byte, error) {
	s.stopLoop()
	if s.wal != nil {
		if s.wal.loopDone != nil {
			// Join the background checkpointer: its in-flight iteration ends
			// once the loop drains, and waiting here means no stale persist can
			// race the final checkpoint below.
			<-s.wal.loopDone
		}
		if s.wal.repairDone != nil {
			<-s.wal.repairDone
		}
		if s.degraded.Load() {
			// Best-effort final repair so the checkpoint below can compact a
			// writable log; the checkpoint itself re-establishes the floor.
			if err := s.wal.log.Repair(); err == nil {
				s.exitDegraded()
			}
		}
	}
	s.snapshots.Add(1)
	// The loop is drained: nothing else touches the detector or appends to
	// the WAL, so reading both here is race-free and mutually consistent.
	data, err := s.det.Checkpoint()
	if err != nil {
		s.log.Error("shutdown checkpoint failed", "err", err)
		return data, err
	}
	s.log.Info("shutdown: final state checkpointed", "bytes", len(data), "objects", s.objects.Load())
	if s.wal != nil {
		if werr := s.persistCheckpoint(data, s.wal.log.LastLSN(), s.wal.ckptGen.Add(1)); werr != nil {
			s.log.Error("shutdown durable checkpoint failed", "err", werr)
			return data, werr
		}
	}
	return data, nil
}

// Close stops the event loop, disconnects subscribers and closes the
// detector (and the WAL on a durable server). It is idempotent.
func (s *Server) Close() error {
	s.closing.Do(func() {
		s.stopLoop()
		s.closeErr = s.det.Close()
		if s.wal != nil {
			if s.wal.loopDone != nil {
				// Join the background checkpointer before closing the log so
				// an in-flight persist never races the close.
				<-s.wal.loopDone
			}
			if s.wal.repairDone != nil {
				// Join the repair loop too: a repair rotates and reopens
				// segment files and must not race the close below.
				<-s.wal.repairDone
			}
			if werr := s.wal.log.Close(); werr != nil && s.closeErr == nil {
				s.closeErr = werr
			}
		}
		s.log.Info("server closed", "objects", s.objects.Load(), "uptime_sec", time.Since(s.start).Seconds(), "err", s.closeErr)
	})
	return s.closeErr
}

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler { return s.mux }

// DetectorOptions returns the detector's effective configuration, which
// differs from Config.Options when the server was seeded from (or live-
// restored to) a checkpoint with different query options.
func (s *Server) DetectorOptions() (surge.Options, error) {
	var o surge.Options
	if err := s.do(func() { o = s.det.Options() }); err != nil {
		return surge.Options{}, err
	}
	return o, nil
}

func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/ingest", s.handleIngest)
	s.mux.HandleFunc("GET /v1/best", s.handleBest)
	s.mux.HandleFunc("GET /v1/topk", s.handleTopK)
	s.mux.HandleFunc("GET /v1/subscribe", s.handleSubscribe)
	s.mux.HandleFunc("POST /v1/snapshot", s.handleSnapshot)
	s.mux.HandleFunc("POST /v1/restore", s.handleRestore)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.cfg.EnablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
}

// getChunk borrows an ingest chunk buffer from the pool.
func (s *Server) getChunk() *[]surge.Object {
	return s.chunkPool.Get().(*[]surge.Object)
}

// putChunk returns an ingest chunk buffer. The detector copies objects into
// its own storage during applyBatch, so recycling the backing array is safe
// once the request is done with it.
func (s *Server) putChunk(c *[]surge.Object) {
	*c = (*c)[:0]
	s.chunkPool.Put(c)
}

// errPipeline marks a batch whose apply failed inside the detector
// pipeline (or panicked) rather than by request fault: the handler reports
// it as a 500, and the detector serves its last good answer from then on.
var errPipeline = errors.New("server: pipeline failed")

// applyBatch runs on the event loop: apply the time policy, push the batch,
// publish the answer if it changed. A panic anywhere below — an engine bug
// tripped by this batch — is recovered into the error return: the batch is
// rejected (the zero Result never reaches an ack) and the loop survives to
// keep serving queries from the last good state.
func (s *Server) applyBatch(objs []surge.Object) (res surge.Result, clamped int, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, clamped = surge.Result{}, 0
			err = fmt.Errorf("%w: batch apply panicked: %v", errPipeline, r)
			s.log.Error("panic in batch apply recovered; batch rejected",
				"panic", r, "stack", string(debug.Stack()))
			s.noteBatch(time.Time{}, false, err)
		}
	}()
	rec := obs.On()
	var t0 time.Time
	if rec {
		t0 = time.Now()
		s.mBatchObjs.Record(uint64(len(objs)))
	}
	if s.cfg.TimePolicy == Clamp {
		for i := range objs {
			if objs[i].Time < s.clock {
				objs[i].Time = s.clock
				clamped++
			} else {
				s.clock = objs[i].Time
			}
		}
		s.clamped.Add(uint64(clamped))
	} else {
		for i := range objs {
			if objs[i].Time > s.clock {
				s.clock = objs[i].Time
			}
		}
	}
	res, err = s.det.PushBatch(objs)
	s.batches.Add(1)
	if now := s.det.Now(); now > s.clock {
		s.clock = now
	}
	s.publish(res)
	s.refreshTopK()
	if err == nil {
		s.objects.Add(uint64(len(objs)))
	} else if s.det.Err() != nil {
		// The pipeline itself failed (e.g. a shard engine panicked), not the
		// request: report a 500, not a 400.
		err = fmt.Errorf("%w: %w", errPipeline, err)
	}
	s.noteBatch(t0, rec, err)
	return res, clamped, err
}

// publish runs on the event loop: broadcast the answer when it changed.
// Change detection is exact (bitwise on the score), so the notification
// stream matches an offline run bit-for-bit.
func (s *Server) publish(res surge.Result) {
	if res == s.last {
		return
	}
	s.last = res
	s.seq++
	s.notifs.Add(1)
	s.eid++
	s.noteBest(res)
	n := client.Notification{Seq: s.seq, Time: s.det.Now(), Result: client.FromResult(res)}
	f := frame{eid: s.eid, burst: n}
	if obs.On() {
		f.pub = time.Now()
	}
	s.dropped.Add(s.hub.broadcast(f))
}

// refreshTopK runs on the event loop after every applied batch: query the
// maintained top-k detector and, when any rank changed (bitwise on scores
// and regions), swap the lock-free snapshot and broadcast a "topk" event.
func (s *Server) refreshTopK() {
	if s.tdet == nil {
		return
	}
	res := s.tdet.BestK()
	if topkEqual(res, s.lastTopK) {
		return
	}
	s.lastTopK = append(s.lastTopK[:0], res...)
	snap := s.topkWire(s.lastTopK)
	s.topkSnap.Store(snap)
	s.tkSeq++
	s.topkNotifs.Add(1)
	s.eid++
	n := client.TopKNotification{
		Seq:     s.tkSeq,
		Time:    s.det.Now(),
		K:       snap.K,
		Results: snap.Results,
	}
	f := frame{eid: s.eid, topk: true, tk: n}
	if obs.On() {
		f.pub = time.Now()
	}
	s.dropped.Add(s.hub.broadcast(f))
}

// topkEqual compares two top-k answers bitwise (scores, regions, found).
func topkEqual(a, b []surge.Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// state runs on the event loop: snapshot the queryable state. Best and
// Stats are pipeline synchronisation points on a sharded detector.
func (s *Server) state() client.State {
	st := s.det.Stats()
	return client.State{
		Seq:    s.seq,
		Epoch:  s.epoch,
		Events: s.eid,
		Now:    s.det.Now(),
		Live:   s.det.Live(),
		Shards: s.det.Shards(),
		Result: client.FromResult(s.det.Best()),
		Stats: client.EngineStats{
			Events:       st.Events,
			Searches:     st.Searches,
			SearchEvents: st.SearchEvents,
			SweepEntries: st.SweepEntries,
			CellsTouched: st.CellsTouched,
		},
	}
}

// Snapshot checkpoints the detector (consistent: it runs on the event
// loop, between ingest batches).
func (s *Server) Snapshot() ([]byte, error) {
	var data []byte
	var err error
	if derr := s.do(func() { data, err = s.det.Checkpoint(); s.snapshots.Add(1) }); derr != nil {
		return nil, derr
	}
	return data, err
}

// Restore replaces the detector with the checkpointed state, restored into
// the server's configured shard count. The replay — including the seeding
// of a fresh maintained top-k detector — happens off the event loop; only
// the detach of the old maintained detector and the swap synchronise with
// ingest.
//
// The old attached top-k detector is closed on the loop *before* the
// replacement attaches: Close detaches it from the still-serving detector
// between batch refreshes, so a pending refresh can never race the close,
// and repeated restores cannot accumulate attached engines (or keep their
// live-object and result buffers reachable) behind the parent's tap list.
// Until the swap lands, /v1/topk keeps serving the last published snapshot.
func (s *Server) Restore(data []byte) error {
	nd, err := surge.RestoreShardedTuned(s.cfg.Algorithm, data,
		s.cfg.Options.Shards, s.cfg.Options.ShardBlockCols, s.cfg.Options.ShardFlushEvents)
	if err != nil {
		return err
	}
	var ntd *surge.TopKDetector
	if !s.cfg.TopKReplayOnly {
		if derr := s.do(func() {
			if s.tdet != nil {
				s.tdet.Close()
				s.tdet = nil
			}
		}); derr != nil {
			nd.Close()
			return derr
		}
		if ntd, err = s.attachMaintained(nd); err != nil {
			nd.Close()
			// The old detector keeps serving: restore its maintained top-k
			// (the seeding replay runs on the loop here — error path only)
			// so a failed restore does not leave /v1/topk frozen with
			// /healthz green.
			s.reattachTopK()
			return err
		}
	}
	var durCkpt []byte
	var durLSN, durGen uint64
	var durErr error
	derr := s.do(func() {
		old := s.det
		s.det = nd
		s.tdet = ntd
		s.clock = nd.Now()
		s.restores.Add(1)
		s.publish(nd.Best())
		s.refreshTopK()
		s.statShards.Store(int64(nd.Shards()))
		s.statNow.Store(math.Float64bits(s.clock))
		s.statLive.Store(uint64(nd.Live()))
		s.refreshEngineStats(time.Now())
		old.Close()
		if s.wal != nil {
			// Capture the restored state and the WAL position inside the
			// swap, so the durable checkpoint written below supersedes every
			// pre-restore WAL frame: a crash after a restore must never
			// replay the old stream over the restored state.
			durCkpt, durErr = nd.Checkpoint()
			durLSN = s.wal.log.LastLSN()
			durGen = s.wal.ckptGen.Add(1)
		}
	})
	if derr != nil {
		// Only reachable when the server is shutting down concurrently; the
		// loop is gone, so there is no maintained state left to repair.
		nd.Close()
		return derr
	}
	if s.wal != nil {
		if durErr == nil {
			durErr = s.persistCheckpoint(durCkpt, durLSN, durGen)
		}
		if durErr != nil {
			return fmt.Errorf("server: restore applied but durable checkpoint failed (a crash before the next checkpoint replays the pre-restore log): %w", durErr)
		}
	}
	s.log.Info("restored from checkpoint", "bytes", len(data), "shards", nd.Shards(), "now", nd.Now(), "live", nd.Live())
	return nil
}

// reattachTopK rebuilds the maintained top-k detector on the currently
// serving detector, on the event loop. Used by Restore's failure path after
// the old maintained detector was already detached; best-effort (a second
// failure leaves replay mode as the fallback, and /v1/topk k<=K requests
// then serve the last published snapshot).
func (s *Server) reattachTopK() {
	s.do(func() {
		if s.tdet != nil {
			return
		}
		td, err := s.attachMaintained(s.det)
		if err != nil {
			// Drop the frozen snapshot so k<=K queries fall through to the
			// replay path instead of serving an ever-staler answer.
			s.topkSnap.Store(nil)
			return
		}
		s.tdet = td
		s.refreshTopK()
	})
}

func (s *Server) handleBest(w http.ResponseWriter, r *http.Request) {
	var st client.State
	if err := s.do(func() { st = s.state() }); err != nil {
		writeError(w, http.StatusServiceUnavailable, err, 0)
		return
	}
	writeJSON(w, st)
}

// handleTopK serves the top-k bursty regions. The fast path — the default
// whenever the server maintains continuous top-k and the requested k is
// covered — is one atomic load of the snapshot the event loop keeps
// current: O(1) per query, off the loop, allocation-free. The greedy chain
// is prefix-stable (rank i never depends on ranks > i), so any k <= the
// maintained K is served as a prefix of the snapshot.
//
// ?mode=replay is the escape hatch (and the path for k beyond the
// maintained K): the live windows are checkpointed on the loop into a
// pooled buffer, then replayed into a fresh top-k detector off the loop, so
// even an expensive replay query never stalls ingestion. The canonically
// rescored kCCS makes both paths report bitwise identical scores.
func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	k := s.cfg.TopK
	if qk := q.Get("k"); qk != "" {
		v, err := strconv.Atoi(qk)
		if err != nil || v < 1 || v > 1000 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("server: invalid k %q", qk), 0)
			return
		}
		k = v
	}
	mode := q.Get("mode")
	switch mode {
	case "", "auto", "continuous", "replay":
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("server: unknown top-k mode %q (want continuous or replay)", mode), 0)
		return
	}
	if mode != "replay" {
		if snap := s.topkSnap.Load(); snap != nil && k <= snap.K {
			s.topkFast.Add(1)
			out := *snap
			if k < snap.K {
				out.K = k
				out.Results = snap.Results[:k]
			}
			writeJSON(w, out)
			return
		}
		if mode == "continuous" {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("server: no maintained top-k covers k=%d (maintained k=%d, continuous=%v); drop mode or use mode=replay",
					k, s.cfg.TopK, !s.cfg.TopKReplayOnly), 0)
			return
		}
	}
	s.topkReplay.Add(1)
	bufp := s.ckptPool.Get().(*[]byte)
	defer s.ckptPool.Put(bufp)
	var data []byte
	var cerr error
	if err := s.do(func() {
		data, cerr = s.det.AppendCheckpoint((*bufp)[:0])
		s.snapshots.Add(1)
	}); err != nil {
		writeError(w, http.StatusServiceUnavailable, err, 0)
		return
	}
	if cerr != nil {
		writeError(w, http.StatusInternalServerError, cerr, 0)
		return
	}
	*bufp = data // keep the grown capacity pooled for the next query
	alg := topKAlgorithm(s.cfg.Algorithm)
	// Replay answers one query and is thrown away: restore into the
	// single-engine path regardless of the checkpoint's recorded shard
	// count (spinning a shard pipeline up per request would cost more than
	// the query; the sharded and single-engine chains answer identically).
	td, err := surge.RestoreTopKSharded(alg, data, k, 0, 0)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err, 0)
		return
	}
	results := td.BestK()
	out := client.TopK{K: k, Algorithm: alg.String(), Results: make([]client.Result, len(results))}
	for i, res := range results {
		out.Results[i] = client.FromResult(res)
	}
	writeJSON(w, out)
}

// topKAlgorithm maps the serving algorithm to its top-k variant, falling
// back to the paper's exact kCCS for algorithms without one.
func topKAlgorithm(alg surge.Algorithm) surge.Algorithm {
	switch alg {
	case surge.CellCSPOT, surge.GridApprox, surge.MultiGrid, surge.Oracle:
		return alg
	default:
		return surge.CellCSPOT
	}
}

// chainServesBest reports whether the maintained chain's rank-1 region is
// bitwise the algorithm's single-region answer, making serve-from-chain
// (AttachTopKBest) exact: the exact family (CCS, B-CCS, Base — all report
// the exact bursty region the kCCS chain's first problem solves) and the
// grid approximations paired with their own chains (GAPS with kGAPS, MGAPS
// with kMGAPS). AG2 answers differ from the exact chain's, and the Oracle
// top-k uses its own recomputation fold, so both keep the dual-engine
// layout.
func chainServesBest(alg surge.Algorithm) bool {
	switch alg {
	case surge.CellCSPOT, surge.StaticBound, surge.Baseline, surge.GridApprox, surge.MultiGrid:
		return true
	default:
		return false
	}
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	data, err := s.Snapshot()
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, ErrClosed) {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, err, 0)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.Write(data)
}

func (s *Server) handleRestore(w http.ResponseWriter, r *http.Request) {
	data, err := readBody(r, 1<<30)
	if err != nil {
		writeError(w, http.StatusBadRequest, err, 0)
		return
	}
	if err := s.Restore(data); err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ErrClosed) {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, err, 0)
		return
	}
	var st client.State
	if err := s.do(func() { st = s.state() }); err != nil {
		writeError(w, http.StatusServiceUnavailable, err, 0)
		return
	}
	writeJSON(w, st)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := client.Health{
		Algorithm:   s.cfg.Algorithm.String(),
		Version:     buildVersion,
		GoVersion:   runtime.Version(),
		UptimeSec:   time.Since(s.start).Seconds(),
		Subscribers: s.hub.count(),
		// Mirror values stand in when the loop cannot answer; the loop
		// overwrites them with the authoritative state below.
		Shards: int(s.statShards.Load()),
		Now:    math.Float64frombits(s.statNow.Load()),
		Live:   int(s.statLive.Load()),
	}
	if s.wal != nil {
		h.Durable = true
		h.RecoveredBatches = s.wal.recBatches
		h.RecoverySec = s.wal.recSec
		h.WALTornBytes = s.wal.torn
		h.Durability = s.durabilityString()
		h.DegradedCount = s.degradedCount.Load()
		h.RepairedCount = s.repairedCount.Load()
		h.DegradedSec = s.degradedSec()
	}
	// Last-ingest age lets probes detect a stalled *stream* (no data
	// arriving) separately from a stalled process; -1 means "never".
	h.LastIngestAgeSec = -1
	if t := s.lastIngestNano.Load(); t != 0 {
		h.LastIngestAgeSec = time.Since(time.Unix(0, t)).Seconds()
	}
	// The loop writes into a dedicated heap cell that the timeout path
	// never reads, so a probe that gave up cannot race a late closure run.
	loopH := new(client.Health)
	err := s.doTimeout(func() {
		loopH.Shards = s.det.Shards()
		loopH.Now = s.det.Now()
		loopH.Live = s.det.Live()
		// A recorded pipeline error means the detector (or its maintained
		// top-k chain) serves a stale answer it can no longer refresh:
		// report unhealthy so orchestrators recycle the instance instead of
		// trusting the frozen result.
		derr := s.det.Err()
		if derr == nil && s.tdet != nil {
			derr = s.tdet.Err()
		}
		if derr != nil {
			loopH.Err = derr.Error()
		} else {
			loopH.OK = true
		}
	}, s.healthTimeout)
	if err == nil {
		h.OK = loopH.OK
		h.Err = loopH.Err
		h.Shards = loopH.Shards
		h.Now = loopH.Now
		h.Live = loopH.Live
	} else {
		h.Err = err.Error()
	}
	if h.OK && s.degraded.Load() {
		// Durability lost: ingest is shed, so the instance is not healthy —
		// but the process keeps serving queries while the repair loop works.
		h.OK = false
		if h.Err == "" {
			h.Err = "durability degraded: " + s.faultString()
		}
	}
	if !h.OK {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(h)
		return
	}
	writeJSON(w, h)
}

// handleMetrics renders the Prometheus scrape. It never round-trips the
// event loop: every value comes from atomics, loop-state mirrors or
// histogram snapshots, so the scrape stays up — and keeps reporting — when
// the loop is wedged, which is exactly when the numbers matter most.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	found := float64(s.statFound.Load())
	writeMetric(w, "surge_objects_ingested_total", "counter", "Objects applied to the detector.", float64(s.objects.Load()))
	writeMetric(w, "surge_objects_clamped_total", "counter", "Late objects lifted to the stream clock (clamp policy).", float64(s.clamped.Load()))
	writeMetric(w, "surge_ingest_batches_total", "counter", "Detector synchronisations on the ingest path.", float64(s.batches.Load()))
	writeMetric(w, "surge_ingest_errors_total", "counter", "Failed ingest requests.", float64(s.ingestErr.Load()))
	writeMetric(w, "surge_notifications_total", "counter", "Bursty-region change notifications published.", float64(s.notifs.Load()))
	writeMetric(w, "surge_notifications_dropped_total", "counter", "Notifications lost to slow subscribers.", float64(s.dropped.Load()))
	writeMetric(w, "surge_topk_fast_queries_total", "counter", "Top-k queries served from the maintained snapshot.", float64(s.topkFast.Load()))
	writeMetric(w, "surge_topk_replay_queries_total", "counter", "Top-k queries served by checkpoint replay.", float64(s.topkReplay.Load()))
	writeMetric(w, "surge_topk_notifications_total", "counter", "Top-k change notifications published.", float64(s.topkNotifs.Load()))
	continuous := 0.0
	if s.tdet != nil {
		continuous = 1
	}
	writeMetric(w, "surge_topk_continuous", "gauge", "Whether a continuously maintained top-k detector is serving /v1/topk.", continuous)
	fromChain := 0.0
	if s.serveBestFromChain() {
		fromChain = 1
	}
	writeMetric(w, "surge_best_from_chain", "gauge", "Whether /v1/best is served from the maintained top-k chain's rank-1 region.", fromChain)
	writeMetric(w, "surge_topk_k", "gauge", "k of the maintained top-k detector (and the default query k).", float64(s.cfg.TopK))
	writeMetric(w, "surge_snapshots_total", "counter", "Checkpoints taken.", float64(s.snapshots.Load()))
	writeMetric(w, "surge_restores_total", "counter", "Checkpoints restored.", float64(s.restores.Load()))
	writeMetric(w, "surge_subscribers", "gauge", "Open notification subscriptions.", float64(s.hub.count()))
	writeMetric(w, "surge_shards", "gauge", "Engine shards processing the stream.", float64(s.statShards.Load()))
	writeMetric(w, "surge_live_objects", "gauge", "Objects inside the sliding windows.", float64(s.statLive.Load()))
	writeMetric(w, "surge_stream_time", "gauge", "Current stream clock.", math.Float64frombits(s.statNow.Load()))
	writeMetric(w, "surge_best_found", "gauge", "Whether a bursty region currently exists.", found)
	writeMetric(w, "surge_best_score", "gauge", "Burst score of the current bursty region.", math.Float64frombits(s.statScore.Load()))
	writeMetric(w, "surge_engine_events_total", "counter", "Window events processed by the engines (halo replicas counted per shard).", float64(s.engStats[0].Load()))
	writeMetric(w, "surge_engine_searches_total", "counter", "Snapshot searches run by the engines.", float64(s.engStats[1].Load()))
	writeMetric(w, "surge_engine_search_events_total", "counter", "Events that triggered at least one search.", float64(s.engStats[2].Load()))
	writeMetric(w, "surge_engine_sweep_entries_total", "counter", "Sweep entries processed by the engines.", float64(s.engStats[3].Load()))
	writeMetric(w, "surge_engine_cells_touched_total", "counter", "Grid cells touched by the engines.", float64(s.engStats[4].Load()))
	writeMetric(w, "surge_ingest_throttled_total", "counter", "Ingest chunks shed with 429 by admission control.", float64(s.throttled.Load()))
	writeMetric(w, "surge_ingest_pending_chunks", "gauge", "Ingest chunks submitted and not yet applied.", float64(s.pendingChunks.Load()))
	if s.wal != nil {
		writeMetric(w, "surge_wal_last_sync_age_seconds", "gauge", "Seconds since the last completed WAL fsync.", s.wal.log.LastSyncAge())
		writeMetric(w, "surge_wal_checkpoints_total", "counter", "Durable checkpoints written.", float64(s.ckpts.Load()))
		writeMetric(w, "surge_wal_recovered_batches", "gauge", "WAL batches replayed at the last boot.", float64(s.wal.recBatches))
		writeMetric(w, "surge_wal_recovered_objects", "gauge", "Objects replayed from the WAL at the last boot.", float64(s.wal.recObjects))
		writeMetric(w, "surge_wal_recovery_seconds", "gauge", "Boot WAL replay duration.", s.wal.recSec)
		writeMetric(w, "surge_wal_torn_bytes", "gauge", "Bytes discarded by torn-tail truncation at the last boot.", float64(s.wal.torn))
		deg := 0.0
		if s.degraded.Load() {
			deg = 1
		}
		writeMetric(w, obs.MDegraded, "gauge", "Whether ingest is currently shed because durability is lost.", deg)
		writeMetric(w, obs.MDegradedTot, "counter", "Transitions into the degraded (durability lost) state.", float64(s.degradedCount.Load()))
		writeMetric(w, obs.MRepairedTot, "counter", "Successful repairs (degraded to recovered transitions).", float64(s.repairedCount.Load()))
		writeMetric(w, obs.MDegradedSec, "counter", "Cumulative seconds spent in the degraded state.", s.degradedSec())
		writeMetric(w, obs.MCkptErrors, "counter", "Failed durable checkpoint attempts.", float64(s.ckptErrs.Load()))
		writeMetric(w, "surge_ingest_shed_degraded_total", "counter", "Ingest chunks shed with 503 while durability was degraded.", float64(s.shedDegraded.Load()))
	}
	writeMetric(w, "surge_uptime_seconds", "gauge", "Seconds since the server started.", time.Since(s.start).Seconds())
	writeMetric(w, "surge_last_ingest_age_seconds", "gauge", "Seconds since the last applied batch (-1 before the first).", s.lastIngestAge())
	writeMetric(w, "surge_loop_tick_age_seconds", "gauge", "Seconds since the event loop last answered a lag probe (-1 before the first).", ageSec(s.lastTickNano.Load()))
	fmt.Fprintf(w, "# HELP surge_build_info Build metadata; the value is always 1.\n# TYPE surge_build_info gauge\nsurge_build_info{version=%q,go_version=%q,algorithm=%q,shards=%q} 1\n",
		buildVersion, runtime.Version(), s.cfg.Algorithm.String(), strconv.FormatInt(s.statShards.Load(), 10))
	obs.Default.WritePrometheus(w)
	obs.ReadRuntime().WritePrometheus(w)
}

// lastIngestAge returns seconds since the last applied batch, -1 before
// any ingest.
func (s *Server) lastIngestAge() float64 {
	return ageSec(s.lastIngestNano.Load())
}

// ageSec converts a stored wall-clock nanosecond stamp to an age in
// seconds, -1 when the stamp was never set.
func ageSec(nano int64) float64 {
	if nano == 0 {
		return -1
	}
	return time.Since(time.Unix(0, nano)).Seconds()
}

func writeMetric(w http.ResponseWriter, name, kind, help string, v float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %v\n", name, help, name, kind, name, v)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error, accepted int) {
	writeErrorCode(w, status, "", 0, err, accepted)
}

// writeErrorCode is writeError with a machine-readable code and an
// optional Retry-After hint (seconds; also sent as the HTTP header so
// generic clients back off without parsing the body).
func writeErrorCode(w http.ResponseWriter, status int, code string, retryAfterSec int, err error, accepted int) {
	if retryAfterSec > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSec))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(client.Error{
		Err:           err.Error(),
		Code:          code,
		Accepted:      accepted,
		RetryAfterSec: float64(retryAfterSec),
	})
}
