package topk_test

import (
	"math"
	"math/rand/v2"
	"testing"

	"surge/internal/core"
	"surge/internal/geom"
	"surge/internal/topk"
	"surge/internal/window"
)

func almost(a, b float64) bool {
	d := math.Abs(a - b)
	m := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return d <= 1e-9*m
}

func randomStream(seed uint64, n int, span, wc, wp float64, liveTarget int) []core.Object {
	rng := rand.New(rand.NewPCG(seed, seed^0xabcdef))
	meanGap := (wc + wp) / float64(liveTarget)
	objs := make([]core.Object, n)
	t := 0.0
	for i := range objs {
		t += rng.ExpFloat64() * meanGap
		objs[i] = core.Object{
			X:      rng.Float64() * span,
			Y:      rng.Float64() * span,
			Weight: 1 + rng.Float64()*99,
			T:      t,
		}
	}
	return objs
}

func drive(t *testing.T, wc, wp float64, objs []core.Object, step func(core.Event)) {
	t.Helper()
	win, err := window.New(wc, wp)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range objs {
		if _, err := win.Push(o, step); err != nil {
			t.Fatal(err)
		}
	}
	win.Drain(step)
}

func TestNaiveBestEqualsBestK1(t *testing.T) {
	cfg := core.Config{Width: 1, Height: 1, WC: 40, WP: 40, Alpha: 0.5}
	n1, _ := topk.NewNaive(cfg, 1)
	objs := randomStream(5, 400, 5, cfg.WC, cfg.WP, 80)
	step := 0
	drive(t, cfg.WC, cfg.WP, objs, func(ev core.Event) {
		n1.Process(ev)
		a := n1.Best()
		b := n1.BestK()[0]
		as, bs := a.Score, b.Score
		if !a.Found {
			as = 0
		}
		if !b.Found {
			bs = 0
		}
		if !almost(as, bs) {
			t.Fatalf("event %d: Best=%v BestK[0]=%v", step, as, bs)
		}
		step++
	})
}

// TestNaiveGreedyExclusion: objects covered by an earlier region must not
// contribute to later regions.
func TestNaiveGreedyExclusion(t *testing.T) {
	cfg := core.Config{Width: 2, Height: 2, WC: 1, WP: 1, Alpha: 0.5}
	eng, _ := topk.NewNaive(cfg, 3)
	// Two clusters: a strong one (3 objects, weight 5 each) and a weak one
	// (2 objects, weight 1).
	pts := []core.Object{
		{ID: 1, X: 0.0, Y: 0.0, Weight: 5},
		{ID: 2, X: 0.2, Y: 0.2, Weight: 5},
		{ID: 3, X: 0.4, Y: 0.1, Weight: 5},
		{ID: 4, X: 10.0, Y: 10.0, Weight: 1},
		{ID: 5, X: 10.3, Y: 10.3, Weight: 1},
	}
	for _, o := range pts {
		eng.Process(core.Event{Kind: core.New, Obj: o})
	}
	res := eng.BestK()
	if !res[0].Found || !almost(res[0].Score, 15*0.5+15*0.5) {
		t.Fatalf("rank 0 = %+v, want score 15", res[0])
	}
	if !res[1].Found || !almost(res[1].Score, 2) {
		t.Fatalf("rank 1 = %+v, want score 2 (weak cluster)", res[1])
	}
	if res[2].Found {
		t.Fatalf("rank 2 should be empty, got %+v", res[2])
	}
	// Rank-0 and rank-1 regions must not double-count: all five objects are
	// covered by the two regions disjointly.
	for _, o := range pts[:3] {
		if !res[0].Region.ContainsCO(geom.Point{X: o.X, Y: o.Y}) {
			t.Fatalf("strong-cluster object %d outside rank-0 region", o.ID)
		}
	}
	for _, o := range pts[3:] {
		if !res[1].Region.ContainsCO(geom.Point{X: o.X, Y: o.Y}) {
			t.Fatalf("weak-cluster object %d outside rank-1 region", o.ID)
		}
	}
}

// TestKCCSMatchesNaive is the headline exactness property of the top-k
// extension: after every event the k scores of CCS-KSURGE equal the naive
// greedy recomputation.
func TestKCCSMatchesNaive(t *testing.T) {
	for _, tc := range []struct {
		k    int
		seed uint64
		span float64
		live int
	}{
		{1, 51, 6, 90},
		{2, 52, 6, 90},
		{3, 53, 4, 80},
		{5, 54, 5, 100},
	} {
		cfg := core.Config{Width: 1, Height: 1, WC: 40, WP: 40, Alpha: 0.5}
		kccs, err := topk.NewKCCS(cfg, tc.k)
		if err != nil {
			t.Fatal(err)
		}
		naive, _ := topk.NewNaive(cfg, tc.k)
		objs := randomStream(tc.seed, 500, tc.span, cfg.WC, cfg.WP, tc.live)
		step := 0
		drive(t, cfg.WC, cfg.WP, objs, func(ev core.Event) {
			kccs.Process(ev)
			naive.Process(ev)
			a := kccs.BestK()
			b := naive.BestK()
			for i := 0; i < tc.k; i++ {
				as, bs := 0.0, 0.0
				if a[i].Found {
					as = a[i].Score
				}
				if b[i].Found {
					bs = b[i].Score
				}
				if !almost(as, bs) {
					t.Fatalf("k=%d event %d rank %d: kCCS=%v naive=%v", tc.k, step, i, as, bs)
				}
			}
			step++
		})
	}
}

// TestKCCSAsymmetricWindows exercises the level machinery with WC != WP and
// a high alpha.
func TestKCCSAsymmetricWindows(t *testing.T) {
	cfg := core.Config{Width: 1.1, Height: 0.8, WC: 20, WP: 50, Alpha: 0.85}
	k := 3
	kccs, _ := topk.NewKCCS(cfg, k)
	naive, _ := topk.NewNaive(cfg, k)
	objs := randomStream(77, 450, 5, cfg.WC, cfg.WP, 80)
	step := 0
	drive(t, cfg.WC, cfg.WP, objs, func(ev core.Event) {
		kccs.Process(ev)
		naive.Process(ev)
		a, b := kccs.BestK(), naive.BestK()
		for i := 0; i < k; i++ {
			as, bs := 0.0, 0.0
			if a[i].Found {
				as = a[i].Score
			}
			if b[i].Found {
				bs = b[i].Score
			}
			if !almost(as, bs) {
				t.Fatalf("event %d rank %d: kCCS=%v naive=%v", step, i, as, bs)
			}
		}
		step++
	})
}

// TestKCCSRegionsDisjointContribution: reported regions never share a
// covered object (each object contributes to at most one region).
func TestKCCSObjectExclusivity(t *testing.T) {
	cfg := core.Config{Width: 1, Height: 1, WC: 30, WP: 30, Alpha: 0.4}
	k := 4
	kccs, _ := topk.NewKCCS(cfg, k)
	objs := randomStream(88, 400, 4, cfg.WC, cfg.WP, 70)
	live := map[uint64]core.Object{}
	step := 0
	drive(t, cfg.WC, cfg.WP, objs, func(ev core.Event) {
		kccs.Process(ev)
		switch ev.Kind {
		case core.New:
			live[ev.Obj.ID] = ev.Obj
		case core.Expired:
			delete(live, ev.Obj.ID)
		}
		if step%23 == 0 {
			res := kccs.BestK()
			for _, o := range live {
				owners := 0
				for _, r := range res {
					if r.Found && r.Region.ContainsCO(geom.Point{X: o.X, Y: o.Y}) {
						owners++
					}
				}
				// Later regions exclude objects covered by earlier ones,
				// but region rectangles can still geometrically overlap;
				// what must hold is that scores don't double-count, which
				// TestKCCSMatchesNaive already pins down. Here we check the
				// scores are achievable: summing per-rank true scores over
				// exclusively-assigned objects is done in the naive test.
				_ = owners
			}
			// Ranks must be non-increasing.
			for i := 1; i < len(res); i++ {
				if res[i].Found && res[i].Score > res[i-1].Score+1e-9 {
					t.Fatalf("event %d: rank %d score %v exceeds rank %d score %v",
						step, i, res[i].Score, i-1, res[i-1].Score)
				}
			}
		}
		step++
	})
}

func TestKCCSEmptyAndDrain(t *testing.T) {
	cfg := core.Config{Width: 1, Height: 1, WC: 5, WP: 5, Alpha: 0.5}
	kccs, _ := topk.NewKCCS(cfg, 3)
	for i, r := range kccs.BestK() {
		if r.Found {
			t.Fatalf("empty engine rank %d found", i)
		}
	}
	objs := randomStream(99, 200, 4, cfg.WC, cfg.WP, 40)
	drive(t, cfg.WC, cfg.WP, objs, func(ev core.Event) { kccs.Process(ev) })
	for i, r := range kccs.BestK() {
		if r.Found {
			t.Fatalf("drained engine rank %d still found %+v", i, r)
		}
	}
}

func TestInvalidConfigs(t *testing.T) {
	if _, err := topk.NewKCCS(core.Config{}, 2); err == nil {
		t.Fatal("invalid config accepted by KCCS")
	}
	if _, err := topk.NewNaive(core.Config{}, 2); err == nil {
		t.Fatal("invalid config accepted by Naive")
	}
}

// TestKCCSScheduleIndependence pins the canonical-rescoring guarantee: the
// reported top-k scores are bitwise independent of when queries ran. An
// engine queried after every event and one queried only at sparse
// checkpoints must report bit-identical scores (and window folds) whenever
// both are queried, and every reported region must truly achieve its score
// over the live content (regions are canonical up to equal-score anchor
// ties, the same caveat as the sharded single-region pipeline).
func TestKCCSScheduleIndependence(t *testing.T) {
	for _, k := range []int{1, 3, 5} {
		cfg := core.Config{Width: 1, Height: 1, WC: 40, WP: 40, Alpha: 0.5}
		eager, err := topk.NewKCCS(cfg, k)
		if err != nil {
			t.Fatal(err)
		}
		lazy, _ := topk.NewKCCS(cfg, k)
		naive, _ := topk.NewNaive(cfg, k) // independent region-score oracle
		objs := randomStream(uint64(600+k), 600, 5, cfg.WC, cfg.WP, 90)
		step := 0
		drive(t, cfg.WC, cfg.WP, objs, func(ev core.Event) {
			eager.Process(ev)
			lazy.Process(ev)
			naive.Process(ev)
			a := eager.BestK() // query per event
			if step%97 == 0 {  // sparse checkpoint: both freshly queried
				b := lazy.BestK()
				for i := 0; i < k; i++ {
					if a[i].Found != b[i].Found ||
						math.Float64bits(a[i].Score) != math.Float64bits(b[i].Score) ||
						math.Float64bits(a[i].FC) != math.Float64bits(b[i].FC) ||
						math.Float64bits(a[i].FP) != math.Float64bits(b[i].FP) {
						t.Fatalf("k=%d event %d rank %d: eager %+v != lazy %+v", k, step, i, a[i], b[i])
					}
					// Rank 0 sees every live object, so its reported folds
					// are checkable against an independent recomputation;
					// deeper ranks exclude consumed objects and are pinned
					// against the naive greedy chain elsewhere.
					if i != 0 || !a[i].Found {
						continue
					}
					for which, r := range []core.Result{a[i], b[i]} {
						fc, fp := naive.RegionScore(r.Region)
						if !almost(fc, r.FC) || !almost(fp, r.FP) {
							t.Fatalf("k=%d event %d engine %d: region %+v scores (%v,%v) != reported (%v,%v)",
								k, step, which, r.Region, fc, fp, r.FC, r.FP)
						}
					}
				}
			}
			step++
		})
	}
}
