package topk

// kheap is an indexed max-heap over the engine's cells. Unlike the generic
// iheap, the position index lives inside the cells themselves (kcell.spos
// for the shared heap, kcell.hpos[ix] for a problem heap), so heap
// maintenance — one Set per flushed cell, one Remove per dead cell, on the
// per-event maintenance path — never touches a hash map. Replacing the
// map-keyed heap removed the dominant cost (16-byte key hashing and map
// probes) of continuous top-k maintenance.
type kheap struct {
	ix    int // position slot this heap maintains: -1 = shared, else problem index
	cells []*kcell
	prio  []float64
}

// Len returns the number of cells in the heap.
func (h *kheap) Len() int { return len(h.cells) }

// Max returns the cell with the highest priority without removing it.
func (h *kheap) Max() (*kcell, float64, bool) {
	if len(h.cells) == 0 {
		return nil, 0, false
	}
	return h.cells[0], h.prio[0], true
}

// Set inserts c with priority p, or updates c's priority if present.
func (h *kheap) Set(c *kcell, p float64) {
	if i := c.pos(h.ix); i >= 0 {
		old := h.prio[i]
		h.prio[i] = p
		if p > old {
			h.up(i)
		} else if p < old {
			h.down(i)
		}
		return
	}
	h.cells = append(h.cells, c)
	h.prio = append(h.prio, p)
	i := len(h.cells) - 1
	c.setPos(h.ix, i)
	h.up(i)
}

// Remove deletes c from the heap if present.
func (h *kheap) Remove(c *kcell) {
	i := c.pos(h.ix)
	if i < 0 {
		return
	}
	last := len(h.cells) - 1
	if i != last {
		h.cells[i], h.prio[i] = h.cells[last], h.prio[last]
		h.cells[i].setPos(h.ix, i)
	}
	h.cells = h.cells[:last]
	h.prio = h.prio[:last]
	c.setPos(h.ix, -1)
	if i < last {
		h.up(i)
		h.down(i)
	}
}

// up and down sift with a hole instead of pairwise swaps (see iheap): the
// moving cell is held aside, displaced cells shift one level with a single
// position write each, and the held cell is written once at its final slot.

func (h *kheap) up(i int) {
	j := i
	c, p := h.cells[i], h.prio[i]
	for j > 0 {
		parent := (j - 1) / 2
		if h.prio[parent] >= p {
			break
		}
		h.cells[j], h.prio[j] = h.cells[parent], h.prio[parent]
		h.cells[j].setPos(h.ix, j)
		j = parent
	}
	if j != i {
		h.cells[j], h.prio[j] = c, p
		c.setPos(h.ix, j)
	}
}

func (h *kheap) down(i int) {
	n := len(h.cells)
	j := i
	c, p := h.cells[i], h.prio[i]
	for {
		l, r := 2*j+1, 2*j+2
		best := -1
		bp := p
		if l < n && h.prio[l] > bp {
			best, bp = l, h.prio[l]
		}
		if r < n && h.prio[r] > bp {
			best = r
		}
		if best < 0 {
			break
		}
		h.cells[j], h.prio[j] = h.cells[best], h.prio[best]
		h.cells[j].setPos(h.ix, j)
		j = best
	}
	if j != i {
		h.cells[j], h.prio[j] = c, p
		c.setPos(h.ix, j)
	}
}
