// CCS-KSURGE (Algorithm 4): the exact top-k extension of Cell-CSPOT.
//
// The top-k problem is reduced to k chained cSPOT problems. Every rectangle
// object carries a level lvl in [1, k]; the i-th cSPOT problem sees exactly
// the objects with lvl >= i. When the i-th bursty point is (re)selected, the
// objects covering it are demoted to level i (they become invisible to the
// problems of higher order); objects that covered the previous i-th point but
// not the new one are promoted back to level k.
//
// Each cell maintains static bounds, dynamic bounds and candidate points per
// problem, updated by a uniform set of visibility operations. Window events
// and level changes both reduce to these operations, so the bound/validity
// reasoning of the single-region engine (Lemmas 2-4) carries over per
// problem.
//
// # Shared-until-split cells
//
// Level demotions only ever touch the objects covering a top-k point, so at
// any moment almost every cell holds objects at level k exclusively — and
// for such a cell the k problems see identical content: one set of bounds
// and one candidate is simultaneously correct for all of them. The engine
// exploits this: a cell starts "unsplit", carrying a single shared
// (us, ud, candidate) slot and living in one shared heap, and per-problem
// state is materialized only when a level change actually touches the cell
// ("split" cells — a handful around the current top-k regions). Event
// maintenance on an unsplit cell therefore costs the same as in the
// single-region engine regardless of k, and one snapshot search of an
// unsplit cell refreshes it for every problem at once. A split cell whose
// leveled objects disappear folds back to the shared representation at the
// next flush.
//
// # Canonical rescoring and schedule independence
//
// Cells store their rectangle objects in arrival order (IDs are assigned by
// the window engine in stream order), expired entries are tombstoned and
// compaction preserves the order — the same storage discipline as the
// single-region cellcspot engine. Whenever a candidate is valid and found,
// its fc and fp equal the arrival-order left folds of the window
// contributions of the objects visible to its problem that cover it. A
// surviving stream New appends the last element of that fold (an O(1)
// update); every other surviving visibility change (expiry of a covering
// past object, a level promotion of an interior object) recomputes the fold
// with rescore. Levels themselves are, after a resolve, a pure function of
// the live content (the greedy chain determines them), so the reported
// top-k scores are bitwise independent of when queries ran — the property
// that makes the continuously maintained serving path provably equal to
// checkpoint replay.
//
// # Lazy heap maintenance
//
// The heaps order cells by their upper bounds with the positions stored in
// the cells (kheap), so no hash map is touched. Refreshing heap keys on
// every visibility operation would still dominate the maintenance cost, so
// Process only appends the touched cell to a dirty queue; the keys of the
// queued cells are flushed in bulk when the next query resolves. Between
// queries the heaps are stale, which is safe because only resolve reads
// them.
package topk

import (
	"math"

	"surge/internal/core"
	"surge/internal/geom"
	"surge/internal/grid"
	"surge/internal/sweep"
)

type kobj struct {
	id       uint64
	x, y, wt float64
	past     bool
	dead     bool
	lvl      int // 1..k; visible to problem i iff lvl >= i
}

type kcand struct {
	valid  bool
	found  bool
	p      geom.Point
	fc, fp float64
}

// kcell keeps its rectangle objects in arrival order (see the package
// comment) plus either one shared bound/candidate slot (unsplit) or one per
// problem (split).
type kcell struct {
	key     grid.Cell
	objs    []kobj // arrival-ordered; expired entries are tombstoned
	dead    int    // tombstones in objs
	leveled int    // live objects with lvl < k
	split   bool   // per-problem state materialized
	queued  bool   // in the engine's dirty queue awaiting a heap flush
	gone    bool   // emptied while queued; recycled at the next flush

	// Shared state, authoritative while !split: one slot serves every
	// problem, and spos is the cell's position in the engine's shared heap.
	sus    float64
	susCur int
	sud    float64
	scand  kcand
	spos   int

	// Per-problem state, authoritative while split; allocated on first
	// split and kept across recycling. hpos[i] is the position in the i-th
	// problem heap.
	us    []float64
	usCur []int
	ud    []float64
	cand  []kcand
	hpos  []int
}

// pos returns the cell's position in heap ix (-1 = the shared heap).
func (c *kcell) pos(ix int) int {
	if ix < 0 {
		return c.spos
	}
	return c.hpos[ix]
}

func (c *kcell) setPos(ix, v int) {
	if ix < 0 {
		c.spos = v
	} else {
		c.hpos[ix] = v
	}
}

// live returns the number of live objects in the cell.
func (c *kcell) live() int { return len(c.objs) - c.dead }

// lookup returns the position of the live object with the given ID. IDs are
// assigned in stream order and objs is arrival-ordered (compaction
// preserves it), so the slice is sorted by ID and a binary search suffices.
func (c *kcell) lookup(id uint64) (int, bool) {
	lo, hi := 0, len(c.objs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if c.objs[mid].id < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(c.objs) && c.objs[lo].id == id && !c.objs[lo].dead {
		return lo, true
	}
	return 0, false
}

// remove tombstones the object at position i and compacts the backing array
// once half of it is dead. Compaction preserves arrival order.
func (c *kcell) remove(i int) {
	c.objs[i].dead = true
	c.dead++
	if c.dead > 16 && c.dead*2 >= len(c.objs) {
		kept := c.objs[:0]
		for _, g := range c.objs {
			if !g.dead {
				kept = append(kept, g)
			}
		}
		c.objs = kept
		c.dead = 0
	}
}

// KCCS is the exact top-k detector. It is not safe for concurrent use.
type KCCS struct {
	cfg   core.Config
	k     int
	grid  grid.Grid
	cells map[uint64]*kcell // keyed by grid.Cell.Pack: packed coordinates hit the fast64 map path
	main  kheap             // unsplit cells, one shared key each
	aux   []kheap           // split cells, one heap per problem
	sr    sweep.Searcher
	stats core.Stats

	top   []kcand // current top-k points (the level assignment anchors)
	dirty bool

	queue []*kcell // cells with stale heap keys, flushed at the next query
	free  []*kcell // emptied cells kept for reuse

	cellScratch  []grid.Cell
	entryScratch []sweep.Entry
	covScratch   []kobj   // covering() results (copies of cell entries)
	covMerge     []kobj   // covering() merge buffer (sharded 3-cell union)
	selScratch   []kobj   // applyRank's saved covering(selP) set
	idScratch    []uint64 // ids consumed by the new rank point, ascending
	tieShared    []*kcell // canonicalSolve's popped unsplit cells
	tieSplit     []*kcell // canonicalSolve's popped split cells
	out          []core.Result
}

var (
	_ core.TopKEngine = (*KCCS)(nil)
	_ core.TopKShard  = (*KCCS)(nil)
)

// NewKCCS returns an exact top-k engine for the given k >= 1.
func NewKCCS(cfg core.Config, k int) (*KCCS, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if k < 1 {
		k = 1
	}
	e := &KCCS{
		cfg:   cfg,
		k:     k,
		grid:  grid.Aligned(cfg.Width, cfg.Height),
		cells: make(map[uint64]*kcell),
		main:  kheap{ix: -1},
		top:   make([]kcand, k),
		out:   make([]core.Result, k),
	}
	for i := 0; i < k; i++ {
		e.aux = append(e.aux, kheap{ix: i})
	}
	return e, nil
}

// Stats returns the instrumentation counters.
func (e *KCCS) Stats() core.Stats { return e.stats }

// Process applies one window-transition event by translating it into
// visibility operations on the affected cells (Algorithm 4, lines 1-6).
func (e *KCCS) Process(ev core.Event) {
	if !e.cfg.InArea(ev.Obj) {
		return
	}
	o := ev.Obj
	// Sharded ownership is applied per cover cell (grid.CoverCellsOwned): a
	// kept cell still receives every object whose coverage touches it —
	// neighbour-column objects included — so its content matches the single
	// engine's and the per-cell work is partitioned exactly (each
	// (event, cell) pair is processed by one shard).
	e.cellScratch = e.grid.CoverCellsOwned(e.cellScratch[:0], o.X, o.Y, e.cfg.Width, e.cfg.Height, e.cfg.Cols)
	if len(e.cellScratch) == 0 {
		return
	}
	e.stats.Events++
	e.dirty = true
	cover := e.cfg.CoverRect(o.X, o.Y)
	dc := o.Weight / e.cfg.WC
	dp := o.Weight / e.cfg.WP
	for _, ck := range e.cellScratch {
		e.stats.CellsTouched++
		c := e.cells[ck.Pack()]
		if c == nil {
			if ev.Kind != core.New {
				continue // object was filtered or unknown; nothing to undo
			}
			c = e.newCell(ck)
		}
		switch ev.Kind {
		case core.New:
			e.applyNew(c, o, cover, dc)
		case core.Grown:
			e.applyGrown(c, o.ID, cover, dc)
		case core.Expired:
			e.applyExpired(c, o.ID, cover, dc, dp)
		}
		if c.live() == 0 {
			e.dropCell(c)
			continue
		}
		e.enqueue(c)
	}
}

// dropCell removes an emptied cell from the map and heaps and retires it.
func (e *KCCS) dropCell(c *kcell) {
	delete(e.cells, c.key.Pack())
	if c.split {
		for i := range e.aux {
			e.aux[i].Remove(c)
		}
	} else {
		e.main.Remove(c)
	}
	if c.queued {
		c.gone = true
	} else {
		e.recycle(c)
	}
}

// applyNew appends the object (visible to every problem) and updates the
// bounds and candidates. The new object is last in arrival order, so a
// surviving covered candidate takes the O(1) canonical fold append.
func (e *KCCS) applyNew(c *kcell, o core.Object, cover geom.Rect, dc float64) {
	c.objs = append(c.objs, kobj{id: o.ID, x: o.X, y: o.Y, wt: o.Weight, lvl: e.k})
	if !c.split {
		c.sus += dc
		c.susCur++
		if !math.IsInf(c.sud, 1) {
			c.sud += dc
		}
		e.candAddCurLast(c, &c.scand, cover, dc, -1)
		return
	}
	for ix := 0; ix < e.k; ix++ {
		c.us[ix] += dc
		c.usCur[ix]++
		if !math.IsInf(c.ud[ix], 1) {
			c.ud[ix] += dc
		}
		e.candAddCurLast(c, &c.cand[ix], cover, dc, ix)
	}
}

// candAddCurLast applies a stream New (arrival-order last) to one candidate
// slot; ix identifies the slot for the dynamic-bound refresh (-1 = shared).
func (e *KCCS) candAddCurLast(c *kcell, cd *kcand, cover geom.Rect, dc float64, ix int) {
	if !cd.valid {
		return
	}
	switch {
	case !cd.found:
		cd.valid = false
	case cover.CoversOC(cd.p):
		if cd.fc >= cd.fp {
			cd.fc += dc // appended last in arrival order: canonical
			e.setUD(c, ix, e.candScore(cd))
		} else {
			cd.valid = false
		}
	default:
		// New current weight elsewhere in the cell can overtake the
		// candidate: it is no longer certainly the in-cell maximum.
		cd.valid = false
	}
}

func (e *KCCS) setUD(c *kcell, ix int, v float64) {
	if ix < 0 {
		c.sud = v
	} else {
		c.ud[ix] = v
	}
}

// applyGrown retags the object from Wc to Wp. The transition also promotes
// the object back to level k (Algorithm 4): for the problems it was visible
// to, the retag keeps bounds per Eqn 3 and invalidates covered candidates
// (Lemma 4, case 2); for the problems it was demoted out of, it becomes
// visible as a past object, which only ever lowers scores.
func (e *KCCS) applyGrown(c *kcell, id uint64, cover geom.Rect, dc float64) {
	i, ok := c.lookup(id)
	if !ok || c.objs[i].past {
		return
	}
	g := &c.objs[i]
	lvl := g.lvl
	g.past = true
	g.lvl = e.k
	if !c.split { // lvl == k: a pure retag of the shared slot
		c.sus -= dc
		c.susCur--
		if c.susCur <= 0 {
			c.susCur = 0
			c.sus = 0 // kill float drift once the current window empties
		}
		if c.scand.valid && c.scand.found && cover.CoversOC(c.scand.p) {
			c.scand.valid = false
		}
		return
	}
	if lvl < e.k {
		c.leveled--
	}
	for ix := 0; ix < lvl; ix++ { // retag: visible, Wc -> Wp
		c.us[ix] -= dc
		c.usCur[ix]--
		if c.usCur[ix] <= 0 {
			c.usCur[ix] = 0
			c.us[ix] = 0 // kill float drift once the current window empties
		}
		cd := &c.cand[ix]
		if cd.valid && cd.found && cover.CoversOC(cd.p) {
			cd.valid = false
		}
	}
	for ix := lvl; ix < e.k; ix++ { // a past object becomes visible
		cd := &c.cand[ix]
		if cd.valid && cd.found && cover.CoversOC(cd.p) {
			cd.valid = false
		}
	}
}

// applyExpired removes the object from the problems it is visible to. A
// covered candidate that survives the removal of a past object (Lemma 4)
// is rescored canonically over the survivors.
func (e *KCCS) applyExpired(c *kcell, id uint64, cover geom.Rect, dc, dp float64) {
	i, ok := c.lookup(id)
	if !ok {
		return
	}
	lvl := c.objs[i].lvl
	past := c.objs[i].past
	if !c.split {
		c.remove(i)
		if past {
			if !math.IsInf(c.sud, 1) {
				c.sud += e.cfg.Alpha * dp
			}
			e.candRmPast(c, &c.scand, cover, -1)
		} else { // expired without a Grown event (defensive)
			c.sus -= dc
			c.susCur--
			if c.susCur <= 0 {
				c.susCur = 0
				c.sus = 0
			}
			e.candRmCur(&c.scand, cover)
		}
		return
	}
	if lvl < e.k {
		c.leveled--
	}
	if !past { // expired without a Grown event (defensive)
		for ix := 0; ix < lvl; ix++ {
			c.us[ix] -= dc
			c.usCur[ix]--
			if c.usCur[ix] <= 0 {
				c.usCur[ix] = 0
				c.us[ix] = 0
			}
		}
	}
	c.remove(i)
	for ix := 0; ix < lvl; ix++ {
		if past {
			if !math.IsInf(c.ud[ix], 1) {
				c.ud[ix] += e.cfg.Alpha * dp
			}
			e.candRmPast(c, &c.cand[ix], cover, ix)
		} else {
			e.candRmCur(&c.cand[ix], cover)
		}
	}
}

// candRmPast applies the removal of a visible past object to one candidate
// slot (the object must already be tombstoned so the rescore folds over the
// survivors).
func (e *KCCS) candRmPast(c *kcell, cd *kcand, cover geom.Rect, ix int) {
	if !cd.valid || !cd.found {
		// A valid not-found candidate stays valid: every point in the cell
		// has fc == 0 and removing past weight keeps scores at zero.
		return
	}
	switch {
	case cover.CoversOC(cd.p):
		if cd.fc >= cd.fp {
			e.rescore(c, cd, ix)
			e.setUD(c, ix, e.candScore(cd))
		} else {
			cd.valid = false
		}
	default:
		// Removing past weight elsewhere can raise another point above the
		// candidate.
		cd.valid = false
	}
}

// candRmCur applies the removal of a visible current object to one
// candidate slot.
func (e *KCCS) candRmCur(cd *kcand, cover geom.Rect) {
	if cd.valid && cd.found && cover.CoversOC(cd.p) {
		cd.valid = false
	} else if cd.valid && !cd.found {
		cd.valid = false // defensive; cannot occur with a visible current object
	}
}

// newCell takes a recycled cell or allocates a fresh one. Fresh cells start
// unsplit; the per-problem slices are materialized on first split and kept
// across recycling.
func (e *KCCS) newCell(ck grid.Cell) *kcell {
	var c *kcell
	if n := len(e.free); n > 0 {
		c = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		c = &kcell{sud: math.Inf(1), spos: -1}
	}
	c.key = ck
	e.cells[ck.Pack()] = c
	return c
}

// recycle resets an emptied cell to the state of a fresh one and keeps it
// for reuse; the backing arrays keep their capacity. The reset state is
// indistinguishable from a new cell's, so reuse cannot perturb the
// bit-identical score guarantees.
func (e *KCCS) recycle(c *kcell) {
	c.objs = c.objs[:0]
	c.dead = 0
	c.leveled = 0
	c.split = false
	c.sus = 0
	c.susCur = 0
	c.sud = math.Inf(1)
	c.scand = kcand{}
	c.spos = -1
	for ix := range c.us {
		c.us[ix] = 0
		c.usCur[ix] = 0
		c.ud[ix] = math.Inf(1)
		c.cand[ix] = kcand{}
		c.hpos[ix] = -1
	}
	e.free = append(e.free, c)
}

// ensureSplit materializes per-problem state from the shared slot and moves
// the cell out of the shared heap; the per-problem heap insertions happen
// at the next flush.
func (e *KCCS) ensureSplit(c *kcell) {
	if c.split {
		return
	}
	c.split = true
	if c.us == nil {
		c.us = make([]float64, e.k)
		c.usCur = make([]int, e.k)
		c.ud = make([]float64, e.k)
		c.cand = make([]kcand, e.k)
		c.hpos = make([]int, e.k)
		for ix := range c.hpos {
			c.hpos[ix] = -1
		}
	}
	for ix := 0; ix < e.k; ix++ {
		c.us[ix] = c.sus
		c.usCur[ix] = c.susCur
		c.ud[ix] = c.sud
		c.cand[ix] = c.scand
	}
	e.main.Remove(c)
}

// unsplit folds a split cell with no leveled objects back to the shared
// representation: the k problems see identical content again, so any valid
// per-problem candidate is the exact in-cell maximum for all of them and
// the largest of the per-problem bounds is a valid shared bound. Called
// from flush; the cell re-enters the shared heap there.
func (e *KCCS) unsplit(c *kcell) {
	c.split = false
	c.sus = c.us[0]
	c.susCur = c.usCur[0]
	c.sud = c.ud[0]
	c.scand = kcand{}
	for ix := 0; ix < e.k; ix++ {
		if c.us[ix] > c.sus {
			c.sus = c.us[ix]
		}
		if c.ud[ix] > c.sud {
			c.sud = c.ud[ix]
		}
		if !c.scand.valid && c.cand[ix].valid {
			c.scand = c.cand[ix]
		}
		e.aux[ix].Remove(c)
	}
	if c.scand.valid {
		// Valid candidate => exact maximum; restore the tight bound.
		c.sud = e.candScore(&c.scand)
	}
}

// enqueue marks the cell's heap keys stale until the next flush.
func (e *KCCS) enqueue(c *kcell) {
	if !c.queued {
		c.queued = true
		e.queue = append(e.queue, c)
	}
}

// flush refreshes the heap keys of the queued cells, folds split cells with
// no remaining leveled objects back to the shared representation, and
// recycles the cells that emptied since they were queued.
func (e *KCCS) flush() {
	for _, c := range e.queue {
		c.queued = false
		if c.gone {
			c.gone = false
			e.recycle(c)
			continue
		}
		if c.split && c.leveled == 0 {
			e.unsplit(c)
		}
		if c.split {
			for ix := range e.aux {
				e.aux[ix].Set(c, minf(c.us[ix], c.ud[ix]))
			}
		} else {
			e.main.Set(c, minf(c.sus, c.sud))
		}
	}
	e.queue = e.queue[:0]
}

func (e *KCCS) candScore(cd *kcand) float64 {
	if !cd.found {
		return 0
	}
	return e.cfg.Score(cd.fc, cd.fp)
}

// rescore recomputes a candidate's window scores at its point as the
// canonical arrival-order fold over the cell's live objects visible to its
// problem (lvl >= ix+1; the shared slot, ix = -1, sees every live object).
func (e *KCCS) rescore(c *kcell, cd *kcand, ix int) {
	var fc, fp float64
	p := cd.p
	for j := range c.objs {
		g := &c.objs[j]
		if g.dead || g.lvl <= ix || !e.cfg.CoverRect(g.x, g.y).CoversOC(p) {
			continue
		}
		if g.past {
			fp += g.wt / e.cfg.WP
		} else {
			fc += g.wt / e.cfg.WC
		}
	}
	cd.fc, cd.fp = fc, fp
}

// BestK reports the top-k bursty regions, re-running the greedy chain
// (Algorithm 4, lines 2-17) if any event arrived since the last query. The
// returned slice is reused by subsequent calls; callers that retain it must
// copy.
func (e *KCCS) BestK() []core.Result {
	if e.dirty {
		e.resolve()
		e.dirty = false
	}
	for i := range e.top {
		e.out[i] = e.candResult(&e.top[i])
	}
	return e.out
}

// resolve runs the k chained cSPOT problems and refreshes the levels.
func (e *KCCS) resolve() {
	for i := 1; i <= e.k; i++ {
		e.flush()
		pold := e.top[i-1]
		res := e.solve(i)
		e.top[i-1] = res
		e.applyRank(i, pold.found, pold.p, res.found, res.p)
	}
	e.flush()
}

// applyRank runs the level maintenance (Algorithm 4, lines 15-16) that
// commits the answer selP for rank i, with oldP the previously committed
// rank-i answer. The ids consumed by the new point are collected first
// (ascending: arrival order is id order) so the promotion pass can skip them
// with a binary search.
func (e *KCCS) applyRank(i int, oldFound bool, oldP geom.Point, selFound bool, selP geom.Point) {
	e.idScratch = e.idScratch[:0]
	e.selScratch = e.selScratch[:0]
	if selFound {
		// One scan serves both selP passes: the promotion pass in between
		// only touches objects that do not cover selP (an object covering
		// both points at lvl == i is in idScratch and skipped), so the
		// saved copies and their levels stay exact.
		for _, o := range e.covering(selP) {
			e.selScratch = append(e.selScratch, o)
			if o.lvl >= i {
				e.idScratch = append(e.idScratch, o.id)
			}
		}
	}
	if oldFound && !(selFound && oldP == selP) {
		// When the committed point is unchanged (the steady state of a stable
		// hotspot), every oldP-covering object at lvl == i also covers selP
		// and so is in idScratch — the promotion pass is a provable no-op and
		// the second covering scan is skipped entirely.
		for _, o := range e.covering(oldP) {
			if o.lvl == i && !containsID(e.idScratch, o.id) {
				e.setLevel(o, e.k) // newly visible to every problem again
			}
		}
	}
	for _, o := range e.selScratch {
		if o.lvl > i {
			e.setLevel(o, i) // now consumed by problem i
		}
	}
}

// ProblemBest implements core.TopKShard: flush the lazy heap keys, then run
// the best-first search for chain problem i over the owned cells. No level
// maintenance happens here — the cross-shard coordinator selects the global
// winner and commits it with ApplyRank.
func (e *KCCS) ProblemBest(i int) core.Result {
	e.flush()
	cd := e.solve(i)
	return e.candResult(&cd)
}

// ApplyRank implements core.TopKShard: commit the globally selected rank-i
// answer. The demotion/promotion rules are a pure function of each object's
// identity, level and the two points, so a shard holding a halo copy of an
// object reaches the same level its owner does. Points whose cells this
// engine never saw fall out of covering() naturally.
func (e *KCCS) ApplyRank(i int, old, sel core.Result) {
	e.applyRank(i, old.Found, old.Point, sel.Found, sel.Point)
}

// candResult converts a solved candidate to the engine's reported result.
func (e *KCCS) candResult(cd *kcand) core.Result {
	if !cd.found {
		return core.Result{}
	}
	sc := e.candScore(cd)
	if sc <= 0 {
		return core.Result{}
	}
	return core.Result{
		Point:  cd.p,
		Region: e.cfg.RegionAt(cd.p),
		Score:  sc,
		FC:     cd.fc,
		FP:     cd.fp,
		Found:  true,
	}
}

// covering returns copies of the live objects held by this engine whose
// coverage rectangle covers p, in arrival (= id) order. An object covering p
// lies in p's query-width column or the one to its left, so its cell copies
// sit in row(p) of columns col(p)-1..col(p)+1; a sharded engine keeps only
// its owned columns of that span (the copy of a left-column object can live
// in the right neighbour's cell), so all three cells are scanned and objects
// appearing in two of them are deduped by id. The scratch is reused per
// call.
func (e *KCCS) covering(p geom.Point) []kobj {
	e.covScratch = e.covScratch[:0]
	pc := e.grid.CellOf(p.X, p.Y)
	if e.cfg.Cols == nil {
		// Single engine: every covering object's coverage touches p's own
		// column, so the cell of p holds a copy of each — one scan, no
		// dedupe.
		if c := e.cells[pc.Pack()]; c != nil {
			for j := range c.objs {
				g := &c.objs[j]
				if !g.dead && e.cfg.CoverRect(g.x, g.y).CoversOC(p) {
					e.covScratch = append(e.covScratch, *g)
				}
			}
		}
		return e.covScratch
	}
	// Each cell's objects are id-sorted, so the per-cell match runs are
	// sorted subsequences: merge the (at most 3) runs by id instead of
	// sorting the union, dropping the duplicate copies, so every covering
	// object is reported once, in arrival (= id) order.
	var bounds [4]int
	runs := 0
	for di := -1; di <= 1; di++ {
		c := e.cells[(grid.Cell{I: pc.I + di, J: pc.J}).Pack()]
		if c == nil {
			continue
		}
		for j := range c.objs {
			g := &c.objs[j]
			if !g.dead && e.cfg.CoverRect(g.x, g.y).CoversOC(p) {
				e.covScratch = append(e.covScratch, *g)
			}
		}
		if len(e.covScratch) > bounds[runs] {
			runs++
			bounds[runs] = len(e.covScratch)
		}
	}
	if runs <= 1 {
		return e.covScratch
	}
	e.covMerge = e.covMerge[:0]
	var at [3]int
	for r := 0; r < runs; r++ {
		at[r] = bounds[r]
	}
	for {
		best := -1
		for r := 0; r < runs; r++ {
			if at[r] < bounds[r+1] && (best < 0 || e.covScratch[at[r]].id < e.covScratch[at[best]].id) {
				best = r
			}
		}
		if best < 0 {
			break
		}
		g := e.covScratch[at[best]]
		at[best]++
		if n := len(e.covMerge); n == 0 || e.covMerge[n-1].id != g.id {
			e.covMerge = append(e.covMerge, g)
		}
	}
	e.covScratch, e.covMerge = e.covMerge, e.covScratch
	return e.covScratch
}

// containsID reports whether ids (ascending) contains id.
func containsID(ids []uint64, id uint64) bool {
	lo, hi := 0, len(ids)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ids[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(ids) && ids[lo] == id
}

// setLevel moves o (a copy carrying its current level) to lvl, translating
// the visibility change into add/remove operations on the intermediate
// problems in every cell holding the object. A touched cell is split first:
// its problems no longer see identical content. Level changes splice
// interior arrival positions, so a covered candidate that survives one is
// rescored canonically rather than updated incrementally.
func (e *KCCS) setLevel(o kobj, lvl int) {
	old := o.lvl
	if old == lvl {
		return
	}
	dc := o.wt / e.cfg.WC
	dp := o.wt / e.cfg.WP
	cover := e.cfg.CoverRect(o.x, o.y)
	e.cellScratch = e.grid.CoverCells(e.cellScratch[:0], o.x, o.y, e.cfg.Width, e.cfg.Height)
	for _, ck := range e.cellScratch {
		c := e.cells[ck.Pack()]
		if c == nil {
			continue
		}
		j, ok := c.lookup(o.id)
		if !ok {
			continue
		}
		e.stats.CellsTouched++
		e.ensureSplit(c)
		c.objs[j].lvl = lvl
		switch {
		case old == e.k && lvl < e.k:
			c.leveled++
		case old < e.k && lvl == e.k:
			c.leveled--
		}
		if lvl > old { // becomes visible to problems old+1..lvl
			for ix := old; ix < lvl; ix++ {
				if o.past {
					e.addPast(c, ix, cover)
				} else {
					e.addCurInterior(c, ix, cover, dc)
				}
			}
		} else { // becomes invisible to problems lvl+1..old
			for ix := lvl; ix < old; ix++ {
				if o.past {
					if !math.IsInf(c.ud[ix], 1) {
						c.ud[ix] += e.cfg.Alpha * dp
					}
					e.candRmPast(c, &c.cand[ix], cover, ix)
				} else {
					c.us[ix] -= dc
					c.usCur[ix]--
					if c.usCur[ix] <= 0 {
						c.usCur[ix] = 0
						c.us[ix] = 0
					}
					e.candRmCur(&c.cand[ix], cover)
				}
			}
		}
		e.enqueue(c)
	}
}

// addCurInterior makes a current-window object visible to problem ix at an
// interior arrival position (level promotion).
func (e *KCCS) addCurInterior(c *kcell, ix int, cover geom.Rect, dc float64) {
	c.us[ix] += dc
	c.usCur[ix]++
	if !math.IsInf(c.ud[ix], 1) {
		c.ud[ix] += dc
	}
	cd := &c.cand[ix]
	if !cd.valid {
		return
	}
	switch {
	case !cd.found:
		cd.valid = false
	case cover.CoversOC(cd.p):
		if cd.fc >= cd.fp {
			e.rescore(c, cd, ix) // interior insert: recompute the canonical fold
			c.ud[ix] = e.candScore(cd)
		} else {
			cd.valid = false
		}
	default:
		cd.valid = false // new current weight elsewhere can overtake it
	}
}

// addPast makes a past object visible to problem ix. Past weight only
// lowers scores, so the bounds stand; a covered candidate loses its
// guarantee, an uncovered (or not-found) one keeps it.
func (e *KCCS) addPast(c *kcell, ix int, cover geom.Rect) {
	cd := &c.cand[ix]
	if cd.valid && cd.found && cover.CoversOC(cd.p) {
		cd.valid = false
	}
}

// solve runs the lazy best-first search for problem i over the shared heap
// (unsplit cells, whose single slot answers for every problem) and the
// problem's own heap of split cells. The heaps must be flushed (see
// resolve) before it runs.
func (e *KCCS) solve(i int) kcand {
	ix := i - 1
	for {
		mc, mu, mok := e.main.Max()
		sc, su, sok := e.aux[ix].Max()
		var c *kcell
		var u float64
		shared := true
		switch {
		case mok && (!sok || mu >= su):
			c, u = mc, mu
		case sok:
			c, u, shared = sc, su, false
		default:
			return kcand{}
		}
		if u <= 0 {
			return kcand{}
		}
		var cd *kcand
		if shared {
			cd = &c.scand
		} else {
			cd = &c.cand[ix]
		}
		if cd.valid {
			if !cd.found || e.candScore(cd) <= 0 {
				return kcand{}
			}
			// Exact-score tie at the top: the loser heap's root or the
			// winner heap's second-best carries the same key. Resolve by
			// the canonical cross-family order instead of heap order.
			tied := false
			if shared {
				tied = (sok && su == u) || e.main.SecondPrio() == u
			} else {
				tied = (mok && mu == u) || e.aux[ix].SecondPrio() == u
			}
			if tied {
				return e.canonicalSolve(i, c, shared, *cd)
			}
			return *cd
		}
		if shared {
			e.searchCellShared(c)
			e.main.Set(c, minf(c.sus, c.sud))
		} else {
			e.searchCell(c, i)
			e.aux[ix].Set(c, minf(c.us[ix], c.ud[ix]))
		}
	}
}

// canonicalSolve resolves an exact-score tie for problem i by
// core.CompareTopK — the canonical selection order shared with the
// single-region engine and the cross-shard merges — so the solved candidate
// does not depend on heap order or shard partitioning. The winning cell and
// every further cell whose key bitwise-equals the winning key u are popped
// (from whichever heap holds them), the CompareTopK-least candidate is kept,
// and the popped cells are reinstated with their current keys. Only bitwise
// float ties enter this path.
func (e *KCCS) canonicalSolve(i int, top *kcell, topShared bool, best kcand) kcand {
	ix := i - 1
	u := topBound(e, top, topShared, ix)
	bres := e.candResult(&best)
	e.tieShared = e.tieShared[:0]
	e.tieSplit = e.tieSplit[:0]
	pop := func(c *kcell, shared bool) {
		if shared {
			e.main.Remove(c)
			e.tieShared = append(e.tieShared, c)
		} else {
			e.aux[ix].Remove(c)
			e.tieSplit = append(e.tieSplit, c)
		}
	}
	pop(top, topShared)
	for {
		mc, mu, mok := e.main.Max()
		sc, su, sok := e.aux[ix].Max()
		var c *kcell
		shared := true
		switch {
		case mok && mu == u:
			c = mc
		case sok && su == u:
			c, shared = sc, false
		default:
			for _, p := range e.tieShared {
				e.main.Set(p, minf(p.sus, p.sud))
			}
			for _, p := range e.tieSplit {
				e.aux[ix].Set(p, minf(p.us[ix], p.ud[ix]))
			}
			return best
		}
		var cd *kcand
		if shared {
			cd = &c.scand
		} else {
			cd = &c.cand[ix]
		}
		if !cd.valid {
			if shared {
				e.searchCellShared(c)
				e.main.Set(c, minf(c.sus, c.sud))
			} else {
				e.searchCell(c, i)
				e.aux[ix].Set(c, minf(c.us[ix], c.ud[ix]))
			}
			continue
		}
		if r := e.candResult(cd); r.Found && core.CompareTopK(r, bres) < 0 {
			best, bres = *cd, r
		}
		pop(c, shared)
	}
}

// topBound returns the heap key the winning cell was selected under.
func topBound(e *KCCS, c *kcell, shared bool, ix int) float64 {
	if shared {
		return minf(c.sus, c.sud)
	}
	return minf(c.us[ix], c.ud[ix])
}

// searchCellShared runs SL-CSPOT over an unsplit cell — every live object,
// since all of them sit at level k — refreshing the shared candidate and
// bounds, which are simultaneously exact for every problem.
func (e *KCCS) searchCellShared(c *kcell) {
	e.entryScratch = e.entryScratch[:0]
	us := 0.0
	cur := 0
	for j := range c.objs {
		g := &c.objs[j]
		if g.dead {
			continue
		}
		e.entryScratch = append(e.entryScratch, sweep.Entry{X: g.x, Y: g.y, Weight: g.wt, Past: g.past})
		if !g.past {
			us += g.wt / e.cfg.WC
			cur++
		}
	}
	c.sus = us
	c.susCur = cur
	res := e.sr.Search(e.cfg, e.entryScratch, e.grid.CellRect(c.key))
	e.stats.Searches++
	e.stats.SweepEntries += uint64(len(e.entryScratch))
	c.scand = kcand{valid: true, found: res.Found, p: res.Point}
	if res.Found {
		e.rescore(c, &c.scand, -1)
	}
	c.sud = e.candScore(&c.scand)
}

// searchCell runs SL-CSPOT over the objects visible to problem i inside a
// split cell, refreshing the candidate and both bounds. The entry list is
// built in arrival order and the found candidate is rescored canonically,
// so the refreshed state is a pure function of the cell's content and the
// level assignment.
func (e *KCCS) searchCell(c *kcell, i int) {
	ix := i - 1
	e.entryScratch = e.entryScratch[:0]
	us := 0.0
	cur := 0
	for j := range c.objs {
		g := &c.objs[j]
		if g.dead || g.lvl < i {
			continue
		}
		e.entryScratch = append(e.entryScratch, sweep.Entry{X: g.x, Y: g.y, Weight: g.wt, Past: g.past})
		if !g.past {
			us += g.wt / e.cfg.WC
			cur++
		}
	}
	c.us[ix] = us
	c.usCur[ix] = cur
	res := e.sr.Search(e.cfg, e.entryScratch, e.grid.CellRect(c.key))
	e.stats.Searches++
	e.stats.SweepEntries += uint64(len(e.entryScratch))
	c.cand[ix] = kcand{valid: true, found: res.Found, p: res.Point}
	if res.Found {
		e.rescore(c, &c.cand[ix], ix)
	}
	c.ud[ix] = e.candScore(&c.cand[ix])
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
