// CCS-KSURGE (Algorithm 4): the exact top-k extension of Cell-CSPOT.
//
// The top-k problem is reduced to k chained cSPOT problems. Every rectangle
// object carries a level lvl in [1, k]; the i-th cSPOT problem sees exactly
// the objects with lvl >= i. When the i-th bursty point is (re)selected, the
// objects covering it are demoted to level i (they become invisible to the
// problems of higher order); objects that covered the previous i-th point but
// not the new one are promoted back to level k.
//
// Each cell maintains k static bounds, k dynamic bounds and k candidate
// points — one per problem — updated by a uniform set of visibility
// operations. Window events and level changes both reduce to these
// operations, so the bound/validity reasoning of the single-region engine
// (Lemmas 2-4) carries over per problem.
package topk

import (
	"math"

	"surge/internal/core"
	"surge/internal/geom"
	"surge/internal/grid"
	"surge/internal/iheap"
	"surge/internal/sweep"
)

type kobj struct {
	id       uint64
	x, y, wt float64
	past     bool
	lvl      int // 1..k; visible to problem i iff lvl >= i
}

type kcand struct {
	valid  bool
	found  bool
	p      geom.Point
	fc, fp float64
}

type kcell struct {
	key   grid.Cell
	objs  map[uint64]*kobj
	us    []float64 // per problem: static bound over visible current objects
	usCur []int
	ud    []float64 // per problem: dynamic bound; +Inf before first search
	cand  []kcand
}

// visibility operations
type opKind uint8

const (
	opAddCur  opKind = iota // a current-window object becomes visible
	opAddPast               // a past-window object becomes visible
	opRmCur                 // a current-window object becomes invisible
	opRmPast                // a past-window object becomes invisible
	opRetag                 // a visible object moves from Wc to Wp
)

// KCCS is the exact top-k detector. It is not safe for concurrent use.
type KCCS struct {
	cfg   core.Config
	k     int
	grid  grid.Grid
	objs  map[uint64]*kobj
	cells map[grid.Cell]*kcell
	heaps []*iheap.Heap[grid.Cell] // one per problem
	sr    sweep.Searcher
	stats core.Stats

	top   []kcand // current top-k points (the level assignment anchors)
	dirty bool

	cellScratch  []grid.Cell
	entryScratch []sweep.Entry
	coverScratch []*kobj
}

var _ core.TopKEngine = (*KCCS)(nil)

// NewKCCS returns an exact top-k engine for the given k >= 1.
func NewKCCS(cfg core.Config, k int) (*KCCS, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if k < 1 {
		k = 1
	}
	e := &KCCS{
		cfg:   cfg,
		k:     k,
		grid:  grid.Aligned(cfg.Width, cfg.Height),
		objs:  make(map[uint64]*kobj),
		cells: make(map[grid.Cell]*kcell),
		top:   make([]kcand, k),
	}
	for i := 0; i < k; i++ {
		e.heaps = append(e.heaps, iheap.New[grid.Cell]())
	}
	return e, nil
}

// Stats returns the instrumentation counters.
func (e *KCCS) Stats() core.Stats { return e.stats }

// Process applies one window-transition event by translating it into
// visibility operations on the affected cells (Algorithm 4, lines 1-6).
func (e *KCCS) Process(ev core.Event) {
	if !e.cfg.InArea(ev.Obj) {
		return
	}
	e.stats.Events++
	e.dirty = true
	switch ev.Kind {
	case core.New:
		o := &kobj{id: ev.Obj.ID, x: ev.Obj.X, y: ev.Obj.Y, wt: ev.Obj.Weight, lvl: e.k}
		e.objs[o.id] = o
		e.forCells(o, func(c *kcell) {
			c.objs[o.id] = o
			for i := 1; i <= e.k; i++ {
				e.applyOp(c, i, opAddCur, o)
			}
		})
	case core.Grown:
		o := e.objs[ev.Obj.ID]
		if o == nil || o.past {
			return
		}
		lvl := o.lvl
		o.past = true
		o.lvl = e.k // the event makes the object visible everywhere again
		e.forCells(o, func(c *kcell) {
			for i := 1; i <= lvl; i++ {
				e.applyOp(c, i, opRetag, o)
			}
			for i := lvl + 1; i <= e.k; i++ {
				e.applyOp(c, i, opAddPast, o)
			}
		})
	case core.Expired:
		o := e.objs[ev.Obj.ID]
		if o == nil {
			return
		}
		lvl := o.lvl
		e.forCells(o, func(c *kcell) {
			for i := 1; i <= lvl; i++ {
				if o.past {
					e.applyOp(c, i, opRmPast, o)
				} else {
					e.applyOp(c, i, opRmCur, o)
				}
			}
			delete(c.objs, o.id)
			if len(c.objs) == 0 {
				delete(e.cells, c.key)
				for i := 0; i < e.k; i++ {
					e.heaps[i].Remove(c.key)
				}
			}
		})
		delete(e.objs, o.id)
	}
}

// forCells visits (creating if needed) the cells overlapped by o's coverage.
func (e *KCCS) forCells(o *kobj, f func(c *kcell)) {
	e.cellScratch = e.grid.CoverCells(e.cellScratch[:0], o.x, o.y, e.cfg.Width, e.cfg.Height)
	for _, ck := range e.cellScratch {
		e.stats.CellsTouched++
		c := e.cells[ck]
		if c == nil {
			c = &kcell{
				key:   ck,
				objs:  make(map[uint64]*kobj),
				us:    make([]float64, e.k),
				usCur: make([]int, e.k),
				ud:    make([]float64, e.k),
				cand:  make([]kcand, e.k),
			}
			for i := range c.ud {
				c.ud[i] = math.Inf(1)
			}
			e.cells[ck] = c
		}
		f(c)
	}
}

// applyOp updates problem i's bounds and candidate in cell c for one
// visibility operation on object o, then refreshes the heap key.
func (e *KCCS) applyOp(c *kcell, i int, op opKind, o *kobj) {
	ix := i - 1
	dc := o.wt / e.cfg.WC
	dp := o.wt / e.cfg.WP
	cov := e.cfg.CoverRect(o.x, o.y)
	cd := &c.cand[ix]
	switch op {
	case opAddCur:
		c.us[ix] += dc
		c.usCur[ix]++
		if !math.IsInf(c.ud[ix], 1) {
			c.ud[ix] += dc
		}
		if cd.valid {
			switch {
			case !cd.found:
				cd.valid = false
			case cov.CoversOC(cd.p):
				keep := cd.fc >= cd.fp
				cd.fc += dc
				if !keep {
					cd.valid = false
				}
			default:
				cd.valid = false
			}
		}
	case opAddPast:
		// Past weight only lowers scores: bounds stand; a covered candidate
		// loses its guarantee, an uncovered (or empty) one keeps it.
		if cd.valid && cd.found && cov.CoversOC(cd.p) {
			cd.fp += dp
			cd.valid = false
		}
	case opRmCur:
		c.us[ix] -= dc
		c.usCur[ix]--
		if c.usCur[ix] <= 0 {
			c.usCur[ix] = 0
			c.us[ix] = 0
		}
		if cd.valid && cd.found {
			if cov.CoversOC(cd.p) {
				cd.fc -= dc
				cd.valid = false
			}
		} else if cd.valid && !cd.found {
			cd.valid = false // defensive; cannot occur with a visible current object
		}
	case opRmPast:
		if !math.IsInf(c.ud[ix], 1) {
			c.ud[ix] += e.cfg.Alpha * dp
		}
		if cd.valid && cd.found {
			switch {
			case cov.CoversOC(cd.p):
				keep := cd.fc >= cd.fp
				cd.fp -= dp
				if !keep {
					cd.valid = false
				}
			default:
				cd.valid = false
			}
		}
	case opRetag:
		c.us[ix] -= dc
		c.usCur[ix]--
		if c.usCur[ix] <= 0 {
			c.usCur[ix] = 0
			c.us[ix] = 0
		}
		if cd.valid && cd.found && cov.CoversOC(cd.p) {
			cd.fc -= dc
			cd.fp += dp
			cd.valid = false
		}
	}
	if cd.valid {
		c.ud[ix] = e.candScore(cd)
	}
	e.heaps[ix].Set(c.key, minf(c.us[ix], c.ud[ix]))
}

func (e *KCCS) candScore(cd *kcand) float64 {
	if !cd.found {
		return 0
	}
	return e.cfg.Score(cd.fc, cd.fp)
}

// BestK reports the top-k bursty regions, re-running the greedy chain
// (Algorithm 4, lines 2-17) if any event arrived since the last query.
func (e *KCCS) BestK() []core.Result {
	if e.dirty {
		e.resolve()
		e.dirty = false
	}
	out := make([]core.Result, e.k)
	for i, t := range e.top {
		if !t.found {
			continue
		}
		sc := e.candScore(&e.top[i])
		if sc <= 0 {
			continue
		}
		out[i] = core.Result{
			Point:  t.p,
			Region: e.cfg.RegionAt(t.p),
			Score:  sc,
			FC:     t.fc,
			FP:     t.fp,
			Found:  true,
		}
	}
	return out
}

// resolve runs the k chained cSPOT problems and refreshes the levels.
func (e *KCCS) resolve() {
	for i := 1; i <= e.k; i++ {
		pold := e.top[i-1]
		res := e.solve(i)
		e.top[i-1] = res

		// Level maintenance (Algorithm 4, lines 15-16).
		newCovers := map[uint64]bool{}
		if res.found {
			for _, o := range e.covering(res.p) {
				if o.lvl >= i {
					newCovers[o.id] = true
				}
			}
		}
		if pold.found {
			for _, o := range e.covering(pold.p) {
				if o.lvl == i && !newCovers[o.id] {
					e.setLevel(o, e.k) // newly visible to every problem again
				}
			}
		}
		if res.found {
			for _, o := range e.covering(res.p) {
				if o.lvl > i {
					e.setLevel(o, i) // now consumed by problem i
				}
			}
		}
	}
}

// covering returns the live objects whose coverage rectangle covers p.
func (e *KCCS) covering(p geom.Point) []*kobj {
	e.coverScratch = e.coverScratch[:0]
	c := e.cells[e.grid.CellOf(p.X, p.Y)]
	if c == nil {
		return e.coverScratch
	}
	for _, o := range c.objs {
		if e.cfg.CoverRect(o.x, o.y).CoversOC(p) {
			e.coverScratch = append(e.coverScratch, o)
		}
	}
	return e.coverScratch
}

// setLevel moves o from its current level to lvl, translating the visibility
// change into add/remove operations on the intermediate problems.
func (e *KCCS) setLevel(o *kobj, lvl int) {
	old := o.lvl
	if old == lvl {
		return
	}
	o.lvl = lvl
	e.forCells(o, func(c *kcell) {
		if lvl > old { // becomes visible to problems old+1..lvl
			for i := old + 1; i <= lvl; i++ {
				if o.past {
					e.applyOp(c, i, opAddPast, o)
				} else {
					e.applyOp(c, i, opAddCur, o)
				}
			}
		} else { // becomes invisible to problems lvl+1..old
			for i := lvl + 1; i <= old; i++ {
				if o.past {
					e.applyOp(c, i, opRmPast, o)
				} else {
					e.applyOp(c, i, opRmCur, o)
				}
			}
		}
	})
}

// solve runs the lazy best-first search for problem i.
func (e *KCCS) solve(i int) kcand {
	ix := i - 1
	h := e.heaps[ix]
	for {
		ck, u, ok := h.Max()
		if !ok || u <= 0 {
			return kcand{}
		}
		c := e.cells[ck]
		if c.cand[ix].valid {
			if !c.cand[ix].found || e.candScore(&c.cand[ix]) <= 0 {
				return kcand{}
			}
			return c.cand[ix]
		}
		e.searchCell(c, i)
		h.Set(ck, minf(c.us[ix], c.ud[ix]))
	}
}

// searchCell runs SL-CSPOT over the objects visible to problem i inside the
// cell, refreshing the candidate and both bounds.
func (e *KCCS) searchCell(c *kcell, i int) {
	ix := i - 1
	e.entryScratch = e.entryScratch[:0]
	us := 0.0
	cur := 0
	for _, o := range c.objs {
		if o.lvl < i {
			continue
		}
		e.entryScratch = append(e.entryScratch, sweep.Entry{X: o.x, Y: o.y, Weight: o.wt, Past: o.past})
		if !o.past {
			us += o.wt / e.cfg.WC
			cur++
		}
	}
	c.us[ix] = us
	c.usCur[ix] = cur
	res := e.sr.Search(e.cfg, e.entryScratch, e.grid.CellRect(c.key))
	e.stats.Searches++
	e.stats.SweepEntries += uint64(len(e.entryScratch))
	c.cand[ix] = kcand{valid: true, found: res.Found, p: res.Point, fc: res.FC, fp: res.FP}
	c.ud[ix] = res.Score
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
