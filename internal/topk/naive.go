// Package topk implements the top-k bursty-region detectors of Section VI:
// the naive greedy baseline and the exact CCS-KSURGE engine (Algorithm 4).
//
// Top-k bursty regions are defined greedily (Definition 9): the i-th region
// maximises the burst score counting only the objects not covered by the
// first i-1 regions, so a spatial object contributes to at most one region.
package topk

import (
	"math"

	"surge/internal/core"
	"surge/internal/geom"
	"surge/internal/sweep"
)

type nobj struct {
	x, y, wt float64
	past     bool
}

// Naive is the baseline top-k detector: it keeps the raw window content and
// re-runs the greedy sequence of full-snapshot SL-CSPOT searches on every
// query. With k = 1 it doubles as the single-region oracle used by the tests
// and the approximation-ratio experiments.
type Naive struct {
	cfg   core.Config
	k     int
	objs  map[uint64]*nobj
	sr    sweep.Searcher
	stats core.Stats

	entryScratch []sweep.Entry
	blockScratch []sweep.Entry

	// Mask state of the cross-shard greedy chain (core.TopKShard):
	// maskPts[i] is the bursty point committed for rank i+1.
	maskPts []geom.Point
	maskOK  []bool
}

var (
	_ core.Engine     = (*Naive)(nil)
	_ core.TopKEngine = (*Naive)(nil)
	_ core.TopKShard  = (*Naive)(nil)
)

// NewNaive returns a naive top-k detector.
func NewNaive(cfg core.Config, k int) (*Naive, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if k < 1 {
		k = 1
	}
	return &Naive{cfg: cfg, k: k, objs: make(map[uint64]*nobj)}, nil
}

// NewOracle returns the single-region from-scratch oracle.
func NewOracle(cfg core.Config) (*Naive, error) { return NewNaive(cfg, 1) }

// Stats returns the instrumentation counters.
func (n *Naive) Stats() core.Stats { return n.stats }

// Live returns the number of objects currently in the windows.
func (n *Naive) Live() int { return len(n.objs) }

// Process applies one window-transition event.
func (n *Naive) Process(ev core.Event) {
	if !n.cfg.InArea(ev.Obj) {
		return
	}
	n.stats.Events++
	switch ev.Kind {
	case core.New:
		n.objs[ev.Obj.ID] = &nobj{x: ev.Obj.X, y: ev.Obj.Y, wt: ev.Obj.Weight}
	case core.Grown:
		if o := n.objs[ev.Obj.ID]; o != nil {
			o.past = true
		}
	case core.Expired:
		delete(n.objs, ev.Obj.ID)
	}
}

// Best reports the bursty region via a full snapshot search. When the
// configuration carries a ColumnSet (the sharded pipeline's ownership
// filter) the search is restricted to the owned column blocks, one sweep per
// block, so only candidate points this engine owns are ever reported.
func (n *Naive) Best() core.Result {
	n.entryScratch = n.entryScratch[:0]
	for _, o := range n.objs {
		n.entryScratch = append(n.entryScratch, sweep.Entry{X: o.x, Y: o.y, Weight: o.wt, Past: o.past})
	}
	if n.cfg.Cols == nil {
		return n.toResult(n.search(n.entryScratch))
	}
	return n.toResult(n.searchOwned(n.entryScratch))
}

// searchOwned sweeps each owned column block intersecting the snapshot's
// coverage span and returns the best result, ties resolved to the leftmost
// block. Block x-boundaries are computed with the same float64(col)*Width
// arithmetic on integer columns that the grids use, so adjacent blocks share
// bit-identical clamp coordinates and the blocks tile the plane exactly.
func (n *Naive) searchOwned(entries []sweep.Entry) sweep.Result {
	if len(entries) == 0 {
		return sweep.Result{}
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, e := range entries {
		minX = math.Min(minX, e.X)
		maxX = math.Max(maxX, e.X+n.cfg.Width)
		minY = math.Min(minY, e.Y)
		maxY = math.Max(maxY, e.Y+n.cfg.Height)
	}
	pad := 1 + 1e-9*(math.Abs(maxX)+math.Abs(maxY))
	cs := n.cfg.Cols
	colLo := int(math.Floor(minX / n.cfg.Width))
	colHi := int(math.Floor(maxX/n.cfg.Width)) + 1
	bLo, bHi := floorDiv(colLo, cs.Block), floorDiv(colHi, cs.Block)
	// First owned block at or after bLo.
	b := bLo + mod(cs.Index-mod(bLo, cs.Shards), cs.Shards)
	var best sweep.Result
	for ; b <= bHi; b += cs.Shards {
		domain := geom.Rect{
			MinX: float64(b*cs.Block) * n.cfg.Width,
			MaxX: float64((b+1)*cs.Block) * n.cfg.Width,
			MinY: minY - pad,
			MaxY: maxY + pad,
		}
		// Only entries whose coverage (e.X, e.X+Width] can reach a point of
		// the open block domain affect its faces; the rest would be skipped
		// by the sweep anyway, so the filter keeps results bit-identical
		// while the per-block cost tracks the block's population instead of
		// the whole strip.
		n.blockScratch = n.blockScratch[:0]
		for _, e := range entries {
			if e.X < domain.MaxX && e.X+n.cfg.Width > domain.MinX {
				n.blockScratch = append(n.blockScratch, e)
			}
		}
		if len(n.blockScratch) == 0 {
			continue
		}
		n.stats.Searches++
		n.stats.SweepEntries += uint64(len(n.blockScratch))
		res := n.sr.Search(n.cfg, n.blockScratch, domain)
		if res.Found && (!best.Found || res.Score > best.Score) {
			best = res
		}
	}
	return best
}

// floorDiv returns floor(a / b) for b > 0.
func floorDiv(a, b int) int {
	q := a / b
	if a < 0 && a%b != 0 {
		q--
	}
	return q
}

// mod returns a mod b in [0, b) for b > 0.
func mod(a, b int) int {
	r := a % b
	if r < 0 {
		r += b
	}
	return r
}

// BestK reports the greedy top-k regions, re-deriving them from scratch.
func (n *Naive) BestK() []core.Result {
	out := make([]core.Result, n.k)
	entries := n.entryScratch[:0]
	for _, o := range n.objs {
		entries = append(entries, sweep.Entry{X: o.x, Y: o.y, Weight: o.wt, Past: o.past})
	}
	n.entryScratch = entries
	for i := 0; i < n.k; i++ {
		res := n.search(entries)
		if !res.Found {
			break
		}
		out[i] = n.toResult(res)
		// Exclude the objects covered by the selected region from the
		// remaining problems (Definition 9).
		kept := entries[:0]
		for _, e := range entries {
			if !n.cfg.CoverRect(e.X, e.Y).CoversOC(res.Point) {
				kept = append(kept, e)
			}
		}
		entries = kept
	}
	return out
}

// ProblemBest implements core.TopKShard: a full snapshot search for chain
// problem i over the live objects not covered by the regions committed for
// ranks < i, restricted to the owned column blocks when the configuration
// carries a ColumnSet.
func (n *Naive) ProblemBest(i int) core.Result {
	entries := n.entryScratch[:0]
	for _, o := range n.objs {
		covered := false
		for m := 0; m < i-1 && m < len(n.maskPts); m++ {
			if n.maskOK[m] && n.cfg.CoverRect(o.x, o.y).CoversOC(n.maskPts[m]) {
				covered = true
				break
			}
		}
		if !covered {
			entries = append(entries, sweep.Entry{X: o.x, Y: o.y, Weight: o.wt, Past: o.past})
		}
	}
	n.entryScratch = entries
	if n.cfg.Cols == nil {
		return n.toResult(n.search(entries))
	}
	return n.toResult(n.searchOwned(entries))
}

// ApplyRank implements core.TopKShard: record the globally selected bursty
// point for rank i (exclusion is recomputed from scratch per problem, so the
// old answer is not needed).
func (n *Naive) ApplyRank(i int, _, sel core.Result) {
	for len(n.maskPts) < i {
		n.maskPts = append(n.maskPts, geom.Point{})
		n.maskOK = append(n.maskOK, false)
	}
	n.maskPts[i-1] = sel.Point
	n.maskOK[i-1] = sel.Found
}

// RegionScore returns the normalised current- and past-window scores of an
// arbitrary region over the live objects (closed-open region semantics). It
// lets tests verify that a reported region truly achieves its reported burst
// score.
func (n *Naive) RegionScore(r geom.Rect) (fc, fp float64) {
	for _, o := range n.objs {
		if r.ContainsCO(geom.Point{X: o.x, Y: o.y}) {
			if o.past {
				fp += o.wt / n.cfg.WP
			} else {
				fc += o.wt / n.cfg.WC
			}
		}
	}
	return fc, fp
}

func (n *Naive) search(entries []sweep.Entry) sweep.Result {
	n.stats.Searches++
	n.stats.SweepEntries += uint64(len(entries))
	return n.sr.SearchAll(n.cfg, entries)
}

func (n *Naive) toResult(res sweep.Result) core.Result {
	if !res.Found {
		return core.Result{}
	}
	return core.Result{
		Point:  res.Point,
		Region: n.cfg.RegionAt(res.Point),
		Score:  res.Score,
		FC:     res.FC,
		FP:     res.FP,
		Found:  true,
	}
}
