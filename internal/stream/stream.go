// Package stream generates the synthetic workloads used by the experiments.
//
// The paper evaluates on three proprietary real-world datasets (Table I):
// 1M geo-tagged tweets from the UK, 1M from the US, and 1M Rome taxi GPS
// records. Those raw datasets are not redistributable, so this package
// substitutes generators that reproduce the published envelope of each
// dataset — coordinate ranges, mean arrival rate, uniform [1,100] weights —
// and adds the spatial skew (city hotspots over background noise) that makes
// cell occupancy non-uniform. Every quantity the SURGE algorithms observe is
// (x, y, weight, time), so matching these statistics exercises the identical
// code paths; see DESIGN.md Section 3.
//
// Generators are deterministic for a given seed.
package stream

import (
	"math"
	"math/rand/v2"
	"sort"

	"surge/internal/core"
)

// Hotspot is one Gaussian component of the spatial mixture.
type Hotspot struct {
	CX, CY float64 // centre
	SX, SY float64 // standard deviations
	Share  float64 // relative mixture weight
}

// Dataset describes a synthetic workload envelope.
type Dataset struct {
	Name                   string
	XMin, XMax, YMin, YMax float64
	RatePerHour            float64 // mean Poisson arrival rate
	Hotspots               []Hotspot
	UniformShare           float64 // probability mass of the uniform background
	WeightMin, WeightMax   float64
	Seed                   uint64
}

// RangeX returns the x-extent of the dataset envelope.
func (d Dataset) RangeX() float64 { return d.XMax - d.XMin }

// RangeY returns the y-extent of the dataset envelope.
func (d Dataset) RangeY() float64 { return d.YMax - d.YMin }

// QueryWidth returns 1/1000 of the x-range — the paper's default query
// rectangle extent q.
func (d Dataset) QueryWidth() float64 { return d.RangeX() / 1000 }

// QueryHeight returns 1/1000 of the y-range.
func (d Dataset) QueryHeight() float64 { return d.RangeY() / 1000 }

// UKLike mimics the UK tweet dataset of Table I: 5,747 objects/hour over the
// published coordinate envelope, clustered around a handful of city-like
// hotspots.
func UKLike(seed uint64) Dataset {
	return Dataset{
		Name: "UK",
		XMin: 139.0, XMax: 150.9, YMin: 171.1, YMax: 181.9,
		RatePerHour: 5747,
		Hotspots: []Hotspot{
			{CX: 147.5, CY: 173.5, SX: 0.25, SY: 0.22, Share: 0.32}, // London-like
			{CX: 144.1, CY: 176.4, SX: 0.18, SY: 0.16, Share: 0.12}, // Birmingham-like
			{CX: 143.0, CY: 178.3, SX: 0.16, SY: 0.15, Share: 0.10}, // Manchester-like
			{CX: 141.9, CY: 180.1, SX: 0.20, SY: 0.18, Share: 0.08}, // Glasgow-like
			{CX: 146.5, CY: 177.6, SX: 0.15, SY: 0.14, Share: 0.06}, // Leeds-like
		},
		UniformShare: 0.32,
		WeightMin:    1, WeightMax: 100,
		Seed: seed,
	}
}

// USLike mimics the US tweet dataset: 16,802 objects/hour over a much larger
// envelope with more, sparser hotspots.
func USLike(seed uint64) Dataset {
	return Dataset{
		Name: "US",
		XMin: 100.1, XMax: 150.4, YMin: 40.2, YMax: 118.8,
		RatePerHour: 16802,
		Hotspots: []Hotspot{
			{CX: 144.8, CY: 52.3, SX: 0.6, SY: 0.9, Share: 0.14},  // NYC-like
			{CX: 106.9, CY: 61.5, SX: 0.7, SY: 1.0, Share: 0.10},  // LA-like
			{CX: 129.6, CY: 72.4, SX: 0.5, SY: 0.8, Share: 0.07},  // Chicago-like
			{CX: 121.4, CY: 48.9, SX: 0.6, SY: 0.8, Share: 0.06},  // Houston-like
			{CX: 142.2, CY: 44.6, SX: 0.5, SY: 0.6, Share: 0.05},  // Miami-like
			{CX: 104.0, CY: 100.2, SX: 0.6, SY: 0.9, Share: 0.05}, // Seattle-like
			{CX: 136.7, CY: 66.0, SX: 0.5, SY: 0.7, Share: 0.04},
			{CX: 114.3, CY: 80.8, SX: 0.6, SY: 0.8, Share: 0.04},
		},
		UniformShare: 0.45,
		WeightMin:    1, WeightMax: 100,
		Seed: seed,
	}
}

// TaxiLike mimics the Rome taxi dataset: 18,145 objects/hour inside the Rome
// bounding box with a strong city-centre concentration.
func TaxiLike(seed uint64) Dataset {
	return Dataset{
		Name: "Taxi",
		XMin: 12.0, XMax: 12.9, YMin: 41.6, YMax: 42.2,
		RatePerHour: 18145,
		Hotspots: []Hotspot{
			{CX: 12.48, CY: 41.89, SX: 0.030, SY: 0.025, Share: 0.55}, // centro storico
			{CX: 12.25, CY: 41.80, SX: 0.015, SY: 0.012, Share: 0.10}, // Fiumicino-like
			{CX: 12.60, CY: 41.80, SX: 0.020, SY: 0.015, Share: 0.08}, // Ciampino-like
			{CX: 12.52, CY: 41.95, SX: 0.030, SY: 0.025, Share: 0.12},
		},
		UniformShare: 0.15,
		WeightMin:    1, WeightMax: 100,
		Seed: seed,
	}
}

// Datasets returns the three Table-I workloads with the given seed.
func Datasets(seed uint64) []Dataset {
	return []Dataset{UKLike(seed), USLike(seed + 1), TaxiLike(seed + 2)}
}

// Generate produces n objects with Poisson arrivals starting at time 0,
// ordered by creation time. Weights are uniform in [WeightMin, WeightMax]
// (continuous, so score ties have probability zero).
func (d Dataset) Generate(n int) []core.Object {
	rng := rand.New(rand.NewPCG(d.Seed, d.Seed^0x9e3779b97f4a7c15))
	objs := make([]core.Object, n)
	t := 0.0
	meanGap := 3600 / d.RatePerHour
	for i := range objs {
		t += rng.ExpFloat64() * meanGap
		x, y := d.samplePoint(rng)
		objs[i] = core.Object{
			X:      x,
			Y:      y,
			Weight: d.WeightMin + rng.Float64()*(d.WeightMax-d.WeightMin),
			T:      t,
		}
	}
	return objs
}

func (d Dataset) samplePoint(rng *rand.Rand) (float64, float64) {
	total := d.UniformShare
	for _, h := range d.Hotspots {
		total += h.Share
	}
	u := rng.Float64() * total
	for _, h := range d.Hotspots {
		if u < h.Share {
			for {
				x := h.CX + rng.NormFloat64()*h.SX
				y := h.CY + rng.NormFloat64()*h.SY
				if x >= d.XMin && x < d.XMax && y >= d.YMin && y < d.YMax {
					return x, y
				}
			}
		}
		u -= h.Share
	}
	return d.XMin + rng.Float64()*d.RangeX(), d.YMin + rng.Float64()*d.RangeY()
}

// Stretch rescales the arrival times of a time-ordered stream so that its
// mean rate becomes ratePerDay, the scalability knob of Section VII-E ("we
// shrink the arrival time of each object").
func Stretch(objs []core.Object, ratePerDay float64) []core.Object {
	if len(objs) == 0 {
		return nil
	}
	span := objs[len(objs)-1].T - objs[0].T
	if span <= 0 {
		return append([]core.Object(nil), objs...)
	}
	targetSpan := float64(len(objs)) / ratePerDay * 86400
	scale := targetSpan / span
	t0 := objs[0].T
	out := make([]core.Object, len(objs))
	for i, o := range objs {
		o.T = (o.T - t0) * scale
		out[i] = o
	}
	return out
}

// Burst describes a localised surge to inject into a stream: extra objects
// around (CX, CY) between Start and Start+Duration.
type Burst struct {
	CX, CY   float64
	SX, SY   float64
	Start    float64
	Duration float64
	Count    int
	Weight   float64 // 0 means uniform [1,100] like the base stream
	Seed     uint64
}

// Inject merges burst objects into a time-ordered stream, preserving order.
func Inject(objs []core.Object, b Burst) []core.Object {
	rng := rand.New(rand.NewPCG(b.Seed+7, b.Seed^0xd1342543de82ef95))
	extra := make([]core.Object, b.Count)
	for i := range extra {
		w := b.Weight
		if w == 0 {
			w = 1 + rng.Float64()*99
		}
		extra[i] = core.Object{
			X:      b.CX + rng.NormFloat64()*b.SX,
			Y:      b.CY + rng.NormFloat64()*b.SY,
			Weight: w,
			T:      b.Start + rng.Float64()*b.Duration,
		}
	}
	out := append(append([]core.Object(nil), objs...), extra...)
	sort.Slice(out, func(i, j int) bool { return out[i].T < out[j].T })
	return out
}

// Stats summarises a generated stream; the benchmark harness prints it as
// the reproduction of Table I.
type Stats struct {
	Count                  int
	Hours                  float64
	RatePerHour            float64
	XMin, XMax, YMin, YMax float64
	MeanWeight             float64
}

// Summarize computes stream statistics.
func Summarize(objs []core.Object) Stats {
	if len(objs) == 0 {
		return Stats{}
	}
	s := Stats{
		Count: len(objs),
		XMin:  math.Inf(1), XMax: math.Inf(-1),
		YMin: math.Inf(1), YMax: math.Inf(-1),
	}
	sumW := 0.0
	for _, o := range objs {
		if o.X < s.XMin {
			s.XMin = o.X
		}
		if o.X > s.XMax {
			s.XMax = o.X
		}
		if o.Y < s.YMin {
			s.YMin = o.Y
		}
		if o.Y > s.YMax {
			s.YMax = o.Y
		}
		sumW += o.Weight
	}
	s.MeanWeight = sumW / float64(len(objs))
	s.Hours = (objs[len(objs)-1].T - objs[0].T) / 3600
	if s.Hours > 0 {
		s.RatePerHour = float64(len(objs)) / s.Hours
	}
	return s
}
