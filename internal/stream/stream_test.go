package stream

import (
	"math"
	"testing"

	"surge/internal/core"
)

func TestDatasetEnvelopes(t *testing.T) {
	// Table I reproduction: each generator must stay inside its published
	// coordinate envelope and hit its published arrival rate within a few
	// percent.
	for _, d := range Datasets(1) {
		objs := d.Generate(50000)
		if len(objs) != 50000 {
			t.Fatalf("%s: generated %d objects", d.Name, len(objs))
		}
		st := Summarize(objs)
		if st.XMin < d.XMin || st.XMax >= d.XMax || st.YMin < d.YMin || st.YMax >= d.YMax {
			t.Fatalf("%s: objects escape the envelope: %+v vs dataset %+v", d.Name, st, d)
		}
		if rel := math.Abs(st.RatePerHour-d.RatePerHour) / d.RatePerHour; rel > 0.05 {
			t.Fatalf("%s: arrival rate %v deviates %.1f%% from %v", d.Name, st.RatePerHour, rel*100, d.RatePerHour)
		}
		if st.MeanWeight < 45 || st.MeanWeight > 56 {
			t.Fatalf("%s: mean weight %v, want ~50.5 (uniform [1,100])", d.Name, st.MeanWeight)
		}
	}
}

func TestGenerateOrderedAndDeterministic(t *testing.T) {
	d := TaxiLike(7)
	a := d.Generate(5000)
	b := d.Generate(5000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("generation is not deterministic at index %d", i)
		}
		if i > 0 && a[i].T < a[i-1].T {
			t.Fatalf("timestamps out of order at %d", i)
		}
		if a[i].Weight < 1 || a[i].Weight > 100 {
			t.Fatalf("weight %v out of [1,100]", a[i].Weight)
		}
	}
	// A different seed must change the stream.
	c := TaxiLike(8).Generate(5000)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestHotspotSkew(t *testing.T) {
	// The Taxi generator concentrates mass near the city centre: the centre
	// square must be far denser than a same-sized peripheral square.
	d := TaxiLike(3)
	objs := d.Generate(20000)
	centre, periphery := 0, 0
	for _, o := range objs {
		if math.Abs(o.X-12.48) < 0.05 && math.Abs(o.Y-41.89) < 0.05 {
			centre++
		}
		if math.Abs(o.X-12.1) < 0.05 && math.Abs(o.Y-42.1) < 0.05 {
			periphery++
		}
	}
	if centre < 10*(periphery+1) {
		t.Fatalf("no hotspot skew: centre=%d periphery=%d", centre, periphery)
	}
}

func TestStretch(t *testing.T) {
	d := UKLike(2)
	objs := d.Generate(20000)
	for _, rate := range []float64{2e6, 10e6} {
		st := Stretch(objs, rate)
		if len(st) != len(objs) {
			t.Fatalf("stretch changed the object count")
		}
		s := Summarize(st)
		wantPerHour := rate / 24
		if rel := math.Abs(s.RatePerHour-wantPerHour) / wantPerHour; rel > 0.01 {
			t.Fatalf("stretched rate %v, want %v", s.RatePerHour, wantPerHour)
		}
		// Order preserved, positions and weights untouched.
		for i := range st {
			if i > 0 && st[i].T < st[i-1].T {
				t.Fatalf("stretched stream out of order at %d", i)
			}
			if st[i].X != objs[i].X || st[i].Weight != objs[i].Weight {
				t.Fatalf("stretch altered object %d", i)
			}
		}
	}
}

func TestStretchEdgeCases(t *testing.T) {
	if out := Stretch(nil, 1e6); out != nil {
		t.Fatal("stretching an empty stream must return nil")
	}
	same := []core.Object{{T: 5}, {T: 5}}
	out := Stretch(same, 1e6)
	if len(out) != 2 {
		t.Fatal("zero-span stream must be copied through")
	}
}

func TestInjectBurst(t *testing.T) {
	d := TaxiLike(5)
	objs := d.Generate(10000)
	b := Burst{CX: 12.7, CY: 42.0, SX: 0.003, SY: 0.003, Start: 600, Duration: 120, Count: 500, Seed: 1}
	merged := Inject(objs, b)
	if len(merged) != len(objs)+b.Count {
		t.Fatalf("merged length %d, want %d", len(merged), len(objs)+b.Count)
	}
	inWindow := 0
	for i, o := range merged {
		if i > 0 && o.T < merged[i-1].T {
			t.Fatalf("merged stream out of order at %d", i)
		}
		if o.T >= b.Start && o.T <= b.Start+b.Duration &&
			math.Abs(o.X-b.CX) < 0.02 && math.Abs(o.Y-b.CY) < 0.02 {
			inWindow++
		}
	}
	if inWindow < 450 {
		t.Fatalf("only %d burst objects near the burst centre/time", inWindow)
	}
}

func TestQuerySize(t *testing.T) {
	d := USLike(1)
	if w := d.QueryWidth(); math.Abs(w-(150.4-100.1)/1000) > 1e-12 {
		t.Fatalf("query width %v", w)
	}
	if h := d.QueryHeight(); math.Abs(h-(118.8-40.2)/1000) > 1e-12 {
		t.Fatalf("query height %v", h)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.Count != 0 {
		t.Fatalf("empty summary: %+v", s)
	}
}
