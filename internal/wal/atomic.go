package wal

import (
	"os"
	"path/filepath"

	"surge/internal/fault"
)

// WriteFileAtomic writes data to path so that a crash at any point leaves
// either the old file or the new one, never a torn mix: write to a
// temporary file in the same directory, fsync it, rename over the target,
// then fsync the directory so the rename itself is durable. Used for
// checkpoint files, whose partial write would otherwise be mistaken for a
// valid (truncated) checkpoint on the next boot.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	return WriteFileAtomicFS(fault.OS, path, data, perm)
}

// WriteFileAtomicFS is WriteFileAtomic on an explicit filesystem, so tests
// can inject faults mid-checkpoint (torn temp write, failed fsync, failed
// rename) through a fault.Injector.
func WriteFileAtomicFS(fsys fault.FS, path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := fsys.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmpPath := tmp.Name()
	defer func() {
		if tmpPath != "" {
			fsys.Remove(tmpPath)
		}
	}()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Chmod(perm); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := fsys.Rename(tmpPath, path); err != nil {
		return err
	}
	tmpPath = "" // renamed away; nothing to clean up
	return syncDir(fsys, dir)
}
