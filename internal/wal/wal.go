// Package wal is a write-ahead log of opaque records over length-prefixed,
// CRC32C-framed segment files. The server appends each acknowledged ingest
// batch before the 200 goes out; after a crash, replaying the log tail on
// top of the newest checkpoint reconstructs the exact acknowledged state.
//
// # On-disk format
//
// A log is a directory of segment files named wal-<index>.seg, appended in
// index order. Each record is one frame:
//
//	uint32  payload length (little-endian)
//	uint32  CRC32C over the LSN bytes and the payload
//	uint64  LSN (log sequence number, strictly increasing by one)
//	bytes   payload (opaque to this package)
//
// Every Append issues one write(2) for the whole frame, so a record either
// reaches the kernel completely before the caller acknowledges it or the
// append fails — a killed process (SIGKILL, OOM) never loses an
// acknowledged record under any sync policy, because the page cache
// survives process death. The sync policy only chooses how often fsync
// pushes the cache to the device, i.e. what a machine crash can lose.
//
// # Recovery
//
// Open scans the segments in order and validates every frame. The first
// torn or corrupt frame — short header, short payload, CRC mismatch, or an
// LSN that breaks the sequence — marks the end of the recoverable log: the
// segment is truncated at that offset, any later segments are deleted, and
// the discarded byte count is reported so operators can see exactly how
// much a torn tail cost.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"surge/internal/fault"
	"surge/internal/obs"
)

// SyncPolicy selects when appended frames are fsynced to the device.
type SyncPolicy int

const (
	// SyncAlways fsyncs inside every Append, before the caller can
	// acknowledge: no crash of any kind loses an acked record. The fsync
	// dominates append latency.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs on a background timer (Options.SyncEvery). A
	// process kill loses nothing; a machine crash can lose up to one
	// interval of acked records.
	SyncInterval
	// SyncOff never fsyncs; the kernel writes back on its own schedule. A
	// process kill still loses nothing.
	SyncOff
)

// String renders the policy as the -wal-sync flag spells it.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	default:
		return "off"
	}
}

// ParseSyncPolicy parses a -wal-sync flag value: "always", "off", or a
// positive duration (e.g. "100ms") selecting interval sync at that period.
func ParseSyncPolicy(s string) (SyncPolicy, time.Duration, error) {
	switch s {
	case "always":
		return SyncAlways, 0, nil
	case "off":
		return SyncOff, 0, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil || d <= 0 {
		return 0, 0, fmt.Errorf("wal: invalid sync policy %q (want always, off, or a positive duration like 100ms)", s)
	}
	return SyncInterval, d, nil
}

// Options configures a Log.
type Options struct {
	// Sync is the fsync policy (default SyncAlways).
	Sync SyncPolicy
	// SyncEvery is the background fsync period under SyncInterval
	// (0 = 100ms).
	SyncEvery time.Duration
	// SegmentBytes rotates the active segment once it exceeds this size
	// (0 = 64 MiB). Smaller segments compact at a finer grain.
	SegmentBytes int64
	// FS is the filesystem the log runs on (nil = fault.OS). Tests pass a
	// fault.Injector to exercise disk-failure paths.
	FS fault.FS
}

// Recovery reports what Open found on disk.
type Recovery struct {
	// LastLSN is the LSN of the last valid frame, 0 for an empty log.
	LastLSN uint64
	// TornBytes counts the bytes discarded by torn-tail truncation: the
	// invalid tail of the segment holding the first bad frame, plus any
	// later segments in full.
	TornBytes int64
	// Segments is the number of segment files retained after recovery.
	Segments int
}

const (
	frameHeader      = 16 // uint32 len + uint32 crc + uint64 lsn
	defaultSegment   = 64 << 20
	defaultSyncEvery = 100 * time.Millisecond
	// maxPayload bounds a single record; frames claiming more are treated
	// as torn (a corrupt length would otherwise make recovery allocate it).
	maxPayload = 1 << 28
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by Log methods after Close.
var ErrClosed = errors.New("wal: closed")

type segment struct {
	index    uint64
	path     string
	firstLSN uint64 // 0 when the segment holds no frames
	lastLSN  uint64
	size     int64
}

// Log is an append-only write-ahead log. Append, Sync, CompactBefore and
// Close are safe for concurrent use; Replay must not run concurrently with
// Append.
type Log struct {
	dir string
	opt Options
	fs  fault.FS

	mu     sync.Mutex
	f      fault.File // active segment
	segs   []segment
	lsn    uint64 // last assigned LSN
	dirty  bool   // frames written since the last fsync
	closed bool
	poison error  // first unrepaired append/fsync/rotation failure
	buf    []byte // frame scratch, reused across appends

	stopSync chan struct{} // interval syncer shutdown
	syncDone chan struct{}

	lastSyncNano atomic.Int64 // wall clock of the last completed fsync

	mAppend *obs.Histogram
	mFsync  *obs.Histogram
	cBytes  *obs.Counter
	cFrames *obs.Counter
	cFaults *obs.Counter
	cRepair *obs.Counter
	gSegs   *obs.Gauge
	gSize   *obs.Gauge
}

// Open opens (creating if needed) the log in dir, recovering and truncating
// any torn tail left by a crash. The returned Recovery reports the last
// valid LSN and how many bytes the torn tail cost.
func Open(dir string, opt Options) (*Log, Recovery, error) {
	if opt.SegmentBytes <= 0 {
		opt.SegmentBytes = defaultSegment
	}
	if opt.SyncEvery <= 0 {
		opt.SyncEvery = defaultSyncEvery
	}
	if opt.FS == nil {
		opt.FS = fault.OS
	}
	if err := opt.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, Recovery{}, err
	}
	l := &Log{
		dir:     dir,
		opt:     opt,
		fs:      opt.FS,
		mAppend: obs.Default.Duration(obs.MWALAppend, "WAL append latency: frame write (plus fsync under the always policy)."),
		mFsync:  obs.Default.Duration(obs.MWALFsync, "WAL fsync latency."),
		cBytes:  obs.Default.Counter(obs.MWALBytes, "Bytes appended to the WAL."),
		cFrames: obs.Default.Counter(obs.MWALFrames, "Frames appended to the WAL."),
		cFaults: obs.Default.Counter(obs.MWALFaults, "WAL write/fsync/rotation failures that poisoned the log."),
		cRepair: obs.Default.Counter(obs.MWALRepairs, "Successful WAL repairs after a poisoning fault."),
		gSegs:   obs.Default.Gauge(obs.MWALSegments, "WAL segment files on disk."),
		gSize:   obs.Default.Gauge(obs.MWALSize, "Total bytes of WAL segments on disk."),
	}
	rec, err := l.recover()
	if err != nil {
		return nil, Recovery{}, err
	}
	if l.opt.Sync == SyncInterval {
		l.stopSync = make(chan struct{})
		l.syncDone = make(chan struct{})
		go l.syncLoop()
	}
	l.lastSyncNano.Store(time.Now().UnixNano())
	l.updateGauges()
	return l, rec, nil
}

// recover scans the segment files, truncates the first torn frame and
// everything after it, and positions the log for appending.
func (l *Log) recover() (Recovery, error) {
	entries, err := l.fs.ReadDir(l.dir)
	if err != nil {
		return Recovery{}, err
	}
	for _, e := range entries {
		var idx uint64
		if n, _ := fmt.Sscanf(e.Name(), "wal-%016x.seg", &idx); n == 1 {
			l.segs = append(l.segs, segment{index: idx, path: filepath.Join(l.dir, e.Name())})
		}
	}
	sort.Slice(l.segs, func(i, j int) bool { return l.segs[i].index < l.segs[j].index })

	var rec Recovery
	prevLSN := uint64(0)
	tornAt := -1 // index of the segment holding the first bad frame
	for i := range l.segs {
		seg := &l.segs[i]
		validEnd, first, last, err := scanSegment(l.fs, seg.path, prevLSN)
		if err != nil {
			return Recovery{}, err
		}
		info, err := l.fs.Stat(seg.path)
		if err != nil {
			return Recovery{}, err
		}
		seg.firstLSN, seg.lastLSN, seg.size = first, last, validEnd
		if last != 0 {
			prevLSN = last
		}
		if validEnd < info.Size() {
			rec.TornBytes += info.Size() - validEnd
			if err := l.fs.Truncate(seg.path, validEnd); err != nil {
				return Recovery{}, err
			}
			tornAt = i
			break
		}
	}
	if tornAt >= 0 {
		// Frames after a torn record are unordered relative to the
		// acknowledged prefix: drop the later segments entirely.
		for _, seg := range l.segs[tornAt+1:] {
			if info, err := l.fs.Stat(seg.path); err == nil {
				rec.TornBytes += info.Size()
			}
			if err := l.fs.Remove(seg.path); err != nil {
				return Recovery{}, err
			}
		}
		l.segs = l.segs[:tornAt+1]
		if err := syncDir(l.fs, l.dir); err != nil {
			return Recovery{}, err
		}
	}
	l.lsn = prevLSN
	if len(l.segs) == 0 {
		if err := l.openSegment(1); err != nil {
			return Recovery{}, err
		}
	} else {
		active := &l.segs[len(l.segs)-1]
		f, err := l.fs.OpenFile(active.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return Recovery{}, err
		}
		l.f = f
	}
	rec.LastLSN = l.lsn
	rec.Segments = len(l.segs)
	return rec, nil
}

// scanSegment validates the frames of one segment file. It returns the
// offset of the first invalid byte (== file size when the whole segment is
// valid) and the first and last valid LSNs. prevLSN is the last LSN of the
// preceding segment; frames must continue the sequence with prevLSN+1.
func scanSegment(fsys fault.FS, path string, prevLSN uint64) (validEnd int64, first, last uint64, err error) {
	f, err := fsys.Open(path)
	if err != nil {
		return 0, 0, 0, err
	}
	defer f.Close()
	r := newFrameReader(f)
	for {
		lsn, payload, err := r.next()
		if err == io.EOF {
			return r.offset, first, last, nil
		}
		if err != nil {
			return 0, 0, 0, err
		}
		if payload == nil { // torn or corrupt frame
			return r.valid, first, last, nil
		}
		if prevLSN != 0 && lsn != prevLSN+1 {
			// A sequence break means an earlier truncation or a stray file:
			// nothing after it is trustworthy.
			return r.valid, first, last, nil
		}
		prevLSN = lsn
		if first == 0 {
			first = lsn
		}
		last = lsn
	}
}

// frameReader decodes frames from a segment, distinguishing clean EOF from
// a torn tail.
type frameReader struct {
	r      io.Reader
	offset int64 // bytes consumed
	valid  int64 // offset after the last fully valid frame
	hdr    [frameHeader]byte
	buf    []byte
}

func newFrameReader(r io.Reader) *frameReader {
	return &frameReader{r: r}
}

// next returns the next frame. A torn or corrupt frame returns (0, nil,
// nil); clean end-of-log returns io.EOF.
func (fr *frameReader) next() (uint64, []byte, error) {
	n, err := io.ReadFull(fr.r, fr.hdr[:])
	if err == io.EOF {
		return 0, nil, io.EOF
	}
	if err == io.ErrUnexpectedEOF {
		fr.offset += int64(n)
		return 0, nil, nil // short header: torn
	}
	if err != nil {
		return 0, nil, err
	}
	fr.offset += frameHeader
	length := binary.LittleEndian.Uint32(fr.hdr[0:4])
	crc := binary.LittleEndian.Uint32(fr.hdr[4:8])
	lsn := binary.LittleEndian.Uint64(fr.hdr[8:16])
	if length > maxPayload {
		return 0, nil, nil // corrupt length
	}
	if cap(fr.buf) < int(length) {
		fr.buf = make([]byte, length)
	}
	payload := fr.buf[:length]
	n, err = io.ReadFull(fr.r, payload)
	fr.offset += int64(n)
	if err != nil {
		if err == io.ErrUnexpectedEOF || err == io.EOF {
			return 0, nil, nil // short payload: torn
		}
		return 0, nil, err
	}
	sum := crc32.Update(crc32.Checksum(fr.hdr[8:16], castagnoli), castagnoli, payload)
	if sum != crc {
		return 0, nil, nil // corrupt frame
	}
	fr.valid = fr.offset
	return lsn, payload, nil
}

func segmentPath(dir string, index uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%016x.seg", index))
}

// openSegment creates and activates the segment with the given index.
// Caller holds l.mu (or is Open, before the log is shared).
func (l *Log) openSegment(index uint64) error {
	path := segmentPath(l.dir, index)
	f, err := l.fs.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if err := syncDir(l.fs, l.dir); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.segs = append(l.segs, segment{index: index, path: path})
	return nil
}

// Append frames payload, assigns it the next LSN and writes it to the
// active segment with a single write call. Under SyncAlways it also fsyncs
// before returning. The payload is copied; the caller may reuse it.
//
// A write or fsync failure poisons the log: the in-memory state rolls back
// to the last acknowledged frame and every later Append fails fast with the
// original error until Repair truncates the partial tail off the segment.
// Appending past a partial frame would make the next recovery read it as a
// torn tail and discard everything after it — including acked frames.
func (l *Log) Append(payload []byte) (uint64, error) {
	rec := obs.On()
	var t0 time.Time
	if rec {
		t0 = time.Now()
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.poison != nil {
		return 0, l.poison
	}
	lsn := l.lsn + 1
	need := frameHeader + len(payload)
	if cap(l.buf) < need {
		l.buf = make([]byte, need)
	}
	frame := l.buf[:need]
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint64(frame[8:16], lsn)
	copy(frame[frameHeader:], payload)
	sum := crc32.Update(crc32.Checksum(frame[8:16], castagnoli), castagnoli, payload)
	binary.LittleEndian.PutUint32(frame[4:8], sum)
	active := &l.segs[len(l.segs)-1]
	prevFirst, prevLast, prevSize := active.firstLSN, active.lastLSN, active.size
	if _, err := l.f.Write(frame); err != nil {
		// The frame may be partially on disk; active.size still marks the
		// last valid byte for Repair to truncate back to.
		err = fmt.Errorf("wal: append: %w", err)
		l.poisonLocked(err)
		return 0, err
	}
	l.lsn = lsn
	l.dirty = true
	if active.firstLSN == 0 {
		active.firstLSN = lsn
	}
	active.lastLSN = lsn
	active.size += int64(need)
	if l.opt.Sync == SyncAlways {
		if err := l.syncLocked(rec); err != nil {
			// The frame is in the page cache but not durable and will not
			// be acknowledged: roll back so the LSN is reassigned after
			// repair and the stray bytes are truncated away.
			l.lsn = lsn - 1
			active.firstLSN, active.lastLSN, active.size = prevFirst, prevLast, prevSize
			return 0, err
		}
	}
	l.cBytes.Add(uint64(need))
	l.cFrames.Inc()
	if active.size >= l.opt.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			// The frame itself is complete (and synced, under always):
			// report success and leave the log poisoned so the next append
			// fails fast and Repair re-establishes a writable segment.
			l.poisonLocked(fmt.Errorf("wal: rotate: %w", err))
		}
	}
	l.updateGauges()
	if rec {
		l.mAppend.Observe(time.Since(t0))
	}
	return lsn, nil
}

// poisonLocked records the first fatal write-path error. Caller holds l.mu.
func (l *Log) poisonLocked(err error) {
	if l.poison == nil {
		l.poison = err
		l.cFaults.Inc()
	}
}

// Poisoned returns the error that poisoned the log, nil when healthy.
func (l *Log) Poisoned() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.poison
}

// syncLocked fsyncs the active segment. A failed fsync poisons the log: on
// Linux the kernel may mark the dirty pages clean without writing them, so
// nothing appended since the last successful fsync can be trusted until a
// fresh checkpoint re-establishes the durable floor. Caller holds l.mu.
func (l *Log) syncLocked(rec bool) error {
	if !l.dirty {
		return nil
	}
	var t0 time.Time
	if rec {
		t0 = time.Now()
	}
	if err := l.f.Sync(); err != nil {
		err = fmt.Errorf("wal: fsync: %w", err)
		l.poisonLocked(err)
		return err
	}
	l.dirty = false
	l.lastSyncNano.Store(time.Now().UnixNano())
	if rec {
		l.mFsync.Observe(time.Since(t0))
	}
	return nil
}

// Sync fsyncs any unsynced frames to the device.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.poison != nil {
		return l.poison
	}
	return l.syncLocked(obs.On())
}

// Repair re-establishes an appendable log after a poisoning failure: it
// closes the (possibly dead) active file, truncates any partial frame off
// the active segment, and rotates to a fresh segment so appends resume on a
// file with clean fsync state. Repair is idempotent and safe to retry; the
// log stays poisoned until a repair attempt succeeds end to end.
//
// Repair alone does not restore the durability guarantee: a failed fsync
// may have silently dropped pages from earlier appends, so the caller must
// write a fresh checkpoint of its in-memory state (and compact the suspect
// segments) before trusting the log again.
func (l *Log) Repair() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.poison == nil {
		return nil
	}
	if l.f != nil {
		l.f.Close() // may already be closed by a failed rotation
		l.f = nil
	}
	active := l.segs[len(l.segs)-1]
	// Drop whatever a failed write left past the last valid frame —
	// recovery would read it as a torn tail and discard acked frames
	// appended after it.
	if err := l.fs.Truncate(active.path, active.size); err != nil {
		return fmt.Errorf("wal: repair truncate: %w", err)
	}
	// A previous repair attempt may have created the next segment and then
	// failed before activating it; remove the stray file so O_EXCL creation
	// can succeed.
	next := active.index + 1
	l.fs.Remove(segmentPath(l.dir, next))
	if err := l.openSegment(next); err != nil {
		return fmt.Errorf("wal: repair rotate: %w", err)
	}
	if active.firstLSN == 0 {
		// The poisoned segment holds no valid frame: remove it rather than
		// leaving an empty file compaction will never collect.
		if err := l.fs.Remove(active.path); err == nil {
			l.segs = append(l.segs[:len(l.segs)-2], l.segs[len(l.segs)-1])
			syncDir(l.fs, l.dir)
		}
	}
	l.dirty = false
	l.poison = nil
	l.cRepair.Inc()
	l.updateGauges()
	return nil
}

// syncLoop is the background fsync timer of the interval policy.
func (l *Log) syncLoop() {
	defer close(l.syncDone)
	t := time.NewTicker(l.opt.SyncEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			l.Sync() // ErrClosed after Close; nothing to do about other errors here
		case <-l.stopSync:
			return
		}
	}
}

// rotateLocked closes the active segment (fsyncing it unless the policy is
// off) and starts the next one. Caller holds l.mu.
func (l *Log) rotateLocked() error {
	if l.opt.Sync != SyncOff {
		if err := l.syncLocked(obs.On()); err != nil {
			return err
		}
	} else {
		l.dirty = false
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	return l.openSegment(l.segs[len(l.segs)-1].index + 1)
}

// CompactBefore removes segments whose every frame has LSN <= lsn — they
// are fully covered by a checkpoint. The active segment is rotated first
// when it, too, is fully covered and non-empty, so a checkpoint of the
// whole log leaves only one empty segment behind.
func (l *Log) CompactBefore(lsn uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.poison != nil {
		return l.poison // Repair first; rotation needs a live active file
	}
	active := &l.segs[len(l.segs)-1]
	if active.firstLSN != 0 && active.lastLSN <= lsn {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	kept := l.segs[:0]
	removed := false
	for i := range l.segs {
		seg := l.segs[i]
		isActive := i == len(l.segs)-1
		if !isActive && seg.lastLSN <= lsn && seg.firstLSN != 0 {
			if err := l.fs.Remove(seg.path); err != nil {
				return err
			}
			removed = true
			continue
		}
		kept = append(kept, seg)
	}
	l.segs = kept
	if removed {
		if err := syncDir(l.fs, l.dir); err != nil {
			return err
		}
	}
	l.updateGauges()
	return nil
}

// Replay streams every valid frame with LSN > after, in order, to fn. It
// reads the segment files directly and must not run concurrently with
// Append; the server replays before attaching the log to the ingest path.
func (l *Log) Replay(after uint64, fn func(lsn uint64, payload []byte) error) error {
	l.mu.Lock()
	segs := make([]segment, len(l.segs))
	copy(segs, l.segs)
	l.mu.Unlock()
	for _, seg := range segs {
		if seg.firstLSN == 0 || seg.lastLSN <= after {
			continue
		}
		f, err := l.fs.Open(seg.path)
		if err != nil {
			return err
		}
		r := newFrameReader(f)
		for {
			lsn, payload, err := r.next()
			if err == io.EOF || (err == nil && payload == nil) {
				break // Open already truncated torn tails; stop defensively
			}
			if err != nil {
				f.Close()
				return err
			}
			if lsn <= after {
				continue
			}
			if err := fn(lsn, payload); err != nil {
				f.Close()
				return err
			}
		}
		f.Close()
	}
	return nil
}

// SkipTo raises LSN assignment so the next Append is numbered at least
// lsn+1; a no-op when the log is already past lsn. The server calls it at
// boot when a checkpoint covers positions beyond the recovered log (the
// compacted-empty state after a clean shutdown, or frames lost to a machine
// crash under a relaxed sync policy) — reusing those numbers would make the
// next recovery skip the reassigned frames as already covered. The retained
// segments must hold no frames: recovery reads a numbering jump inside the
// frame sequence as a torn tail, so the caller compacts the (fully covered)
// log first.
func (l *Log) SkipTo(lsn uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if lsn <= l.lsn {
		return nil
	}
	for _, seg := range l.segs {
		if seg.firstLSN != 0 {
			return fmt.Errorf("wal: cannot skip to lsn %d past live frames (last lsn %d)", lsn, l.lsn)
		}
	}
	l.lsn = lsn
	return nil
}

// LastLSN returns the LSN of the most recently appended (or recovered)
// frame, 0 for an empty log.
func (l *Log) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lsn
}

// SizeBytes returns the total size of the segment files.
func (l *Log) SizeBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var n int64
	for _, seg := range l.segs {
		n += seg.size
	}
	return n
}

// Segments returns the number of segment files.
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.segs)
}

// Policy returns the configured sync policy.
func (l *Log) Policy() SyncPolicy { return l.opt.Sync }

// LastSyncAge returns the seconds since the last completed fsync (or since
// Open, before the first).
func (l *Log) LastSyncAge() float64 {
	return time.Since(time.Unix(0, l.lastSyncNano.Load())).Seconds()
}

// updateGauges mirrors segment count and size into the obs registry.
// Caller holds l.mu.
func (l *Log) updateGauges() {
	l.gSegs.Set(float64(len(l.segs)))
	var n int64
	for _, seg := range l.segs {
		n += seg.size
	}
	l.gSize.Set(float64(n))
}

// Close fsyncs (unless the policy is off) and closes the active segment.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	err := l.poison // a poisoned log closes dirty; surface why
	if l.f != nil {
		if l.opt.Sync != SyncOff && l.dirty && l.poison == nil {
			if serr := l.f.Sync(); serr != nil && err == nil {
				err = serr
			}
			l.lastSyncNano.Store(time.Now().UnixNano())
		}
		if cerr := l.f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	l.mu.Unlock()
	if l.stopSync != nil {
		close(l.stopSync)
		<-l.syncDone
	}
	return err
}

// syncDir fsyncs a directory so entry creations and removals are durable.
func syncDir(fsys fault.FS, dir string) error {
	d, err := fsys.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
