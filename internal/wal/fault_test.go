package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"surge/internal/fault"
)

// TestAppendWriteFaultPoisonsAndRepairs injects EIO into a frame write: the
// append fails without assigning an LSN, every later append fails fast with
// the same error, and Repair rotates to a fresh segment so the sequence
// resumes exactly where the acknowledged prefix left off — provable by a
// clean reopen.
func TestAppendWriteFaultPoisonsAndRepairs(t *testing.T) {
	in := fault.NewInjector(nil)
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Sync: SyncOff, FS: in})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 1, 10)

	// A short write leaves a torn frame prefix on disk, the way ENOSPC does.
	in.Arm(fault.Rule{Op: fault.OpWrite, Path: "wal-", Count: 1, Err: syscall.ENOSPC, ShortWrite: 7})
	if _, err := l.Append([]byte("doomed")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("append over write fault: %v, want ENOSPC", err)
	}
	if got := l.LastLSN(); got != 10 {
		t.Fatalf("failed append advanced LSN to %d", got)
	}
	if _, err := l.Append([]byte("also doomed")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("poisoned append: %v, want fail-fast ENOSPC", err)
	}
	if l.Poisoned() == nil {
		t.Fatal("log not poisoned after a write fault")
	}

	if err := l.Repair(); err != nil {
		t.Fatal(err)
	}
	if l.Poisoned() != nil {
		t.Fatal("log still poisoned after Repair")
	}
	appendN(t, l, 11, 20) // LSNs continue the acked sequence
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, rec, err := Open(dir, Options{Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rec.LastLSN != 20 || rec.TornBytes != 0 {
		t.Fatalf("recovery after repair = %+v, want LastLSN=20 torn=0", rec)
	}
	got := collect(t, l2, 0)
	for i := 1; i <= 20; i++ {
		if got[uint64(i)] != fmt.Sprintf("record-%04d", i) {
			t.Fatalf("lsn %d payload %q", i, got[uint64(i)])
		}
	}
}

// TestFsyncFaultRollsBackUnacked pins the SyncAlways rollback: a frame whose
// fsync failed is not acknowledged, so its LSN must be reassigned to the
// next append after repair — recovery must never surface a frame the caller
// was told failed.
func TestFsyncFaultRollsBackUnacked(t *testing.T) {
	in := fault.NewInjector(nil)
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Sync: SyncAlways, FS: in})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 1, 5)

	in.Arm(fault.Rule{Op: fault.OpSync, Path: "wal-", Count: 1, Err: syscall.EIO})
	if _, err := l.Append([]byte("unacked")); !errors.Is(err, syscall.EIO) {
		t.Fatalf("append over fsync fault: %v, want EIO", err)
	}
	if got := l.LastLSN(); got != 5 {
		t.Fatalf("unacked frame advanced LSN to %d", got)
	}
	if err := l.Repair(); err != nil {
		t.Fatal(err)
	}
	// The rolled-back LSN is reassigned: nothing in the sequence is skipped.
	lsn, err := l.Append([]byte("acked"))
	if err != nil || lsn != 6 {
		t.Fatalf("post-repair append lsn=%d err=%v, want 6", lsn, err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, rec, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rec.LastLSN != 6 {
		t.Fatalf("recovered LastLSN %d, want 6", rec.LastLSN)
	}
	got := collect(t, l2, 0)
	if got[6] != "acked" {
		t.Fatalf("lsn 6 payload %q, want the post-repair frame", got[6])
	}
	for _, p := range got {
		if p == "unacked" {
			t.Fatal("recovery surfaced the frame whose fsync failed")
		}
	}
}

// TestRotationFaultAfterDurableAppend pins the asymmetry of rotation
// failures: the append that triggered the rotation is complete and durable,
// so it reports success — while the log poisons itself so the NEXT append
// fails fast instead of writing into a dead file.
func TestRotationFaultAfterDurableAppend(t *testing.T) {
	in := fault.NewInjector(nil)
	dir := t.TempDir()
	// Tiny segments: every ~3 appends rotate.
	l, _, err := Open(dir, Options{Sync: SyncOff, SegmentBytes: 64, FS: in})
	if err != nil {
		t.Fatal(err)
	}
	// Fail the next segment-file creation (the rotation).
	in.Arm(fault.Rule{Op: fault.OpOpen, Path: "wal-", Count: 1, Err: syscall.EMFILE})
	var rotLSN uint64
	for i := 1; ; i++ {
		lsn, err := l.Append([]byte(fmt.Sprintf("record-%04d", i)))
		if err != nil {
			t.Fatalf("append %d: %v (rotation faults must not fail the triggering append)", i, err)
		}
		if l.Poisoned() != nil {
			rotLSN = lsn
			break
		}
		if i > 100 {
			t.Fatal("rotation never triggered")
		}
	}
	if _, err := l.Append([]byte("after")); !errors.Is(err, syscall.EMFILE) {
		t.Fatalf("append after failed rotation: %v, want fail-fast EMFILE", err)
	}
	if err := l.Repair(); err != nil {
		t.Fatal(err)
	}
	lsn, err := l.Append([]byte("resumed"))
	if err != nil || lsn != rotLSN+1 {
		t.Fatalf("post-repair append lsn=%d err=%v, want %d", lsn, err, rotLSN+1)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, rec, err := Open(dir, Options{Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rec.LastLSN != rotLSN+1 || rec.TornBytes != 0 {
		t.Fatalf("recovery = %+v, want LastLSN=%d torn=0", rec, rotLSN+1)
	}
}

// TestRecoverZeroLengthSegment reopens a log whose newest segment is an
// empty file — a crash between segment creation and the first append. The
// empty segment is a valid active segment: nothing torn, appends continue.
func TestRecoverZeroLengthSegment(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 1, 10)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(segmentPath(dir, 2), nil, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, rec, err := Open(dir, Options{Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rec.LastLSN != 10 || rec.TornBytes != 0 {
		t.Fatalf("recovery = %+v, want LastLSN=10 torn=0", rec)
	}
	if got := len(collect(t, l2, 0)); got != 10 {
		t.Fatalf("replay returned %d records, want 10", got)
	}
	lsn, err := l2.Append([]byte("next"))
	if err != nil || lsn != 11 {
		t.Fatalf("append on recovered log lsn=%d err=%v, want 11", lsn, err)
	}
}

// TestRecoverTruncatedLengthPrefix crashes mid-write of the very first
// header bytes: fewer than 4 bytes of length prefix at the tail. Recovery
// must classify it as torn and truncate exactly those bytes.
func TestRecoverTruncatedLengthPrefix(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 1, 8)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seg := lastSegment(t, dir)
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x2a, 0x00, 0x00}); err != nil { // 3 of 4 length bytes
		t.Fatal(err)
	}
	f.Close()

	l2, rec, err := Open(dir, Options{Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rec.LastLSN != 8 || rec.TornBytes != 3 {
		t.Fatalf("recovery = %+v, want LastLSN=8 torn=3", rec)
	}
	if got := len(collect(t, l2, 0)); got != 8 {
		t.Fatalf("replay returned %d records, want 8", got)
	}
}

// TestRecoverCorruptHeaderDropsNewerSegment corrupts a frame header (the
// LSN bytes, so the CRC no longer matches) in the middle segment of three:
// recovery must truncate that segment at the corrupt frame and delete the
// newer intact segment wholesale — its frames no longer connect to the
// acknowledged prefix.
func TestRecoverCorruptHeaderDropsNewerSegment(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Sync: SyncOff, SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 1, 30)
	if l.Segments() < 3 {
		t.Fatalf("want >= 3 segments, got %d", l.Segments())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) < 3 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	// Glob returns sorted paths; hit the middle segment's first frame
	// header (flip an LSN byte at offset 8).
	mid := segs[len(segs)/2]
	b, err := os.ReadFile(mid)
	if err != nil {
		t.Fatal(err)
	}
	b[8] ^= 0xff
	if err := os.WriteFile(mid, b, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, rec, err := Open(dir, Options{Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rec.TornBytes == 0 {
		t.Fatal("corrupt header reported no torn bytes")
	}
	got := collect(t, l2, 0)
	// Everything before the corrupt segment survives; the corrupt frame and
	// everything after (including the intact newer segments) is gone.
	if uint64(len(got)) != rec.LastLSN {
		t.Fatalf("replay returned %d records, want the contiguous prefix %d", len(got), rec.LastLSN)
	}
	if rec.LastLSN == 0 || rec.LastLSN >= 30 {
		t.Fatalf("LastLSN = %d, want a strict prefix of the 30 appended", rec.LastLSN)
	}
	for i := uint64(1); i <= rec.LastLSN; i++ {
		if got[i] != fmt.Sprintf("record-%04d", i) {
			t.Fatalf("lsn %d payload %q", i, got[i])
		}
	}
	// The sequence resumes from the recovered position.
	lsn, err := l2.Append([]byte("resume"))
	if err != nil || lsn != rec.LastLSN+1 {
		t.Fatalf("append lsn=%d err=%v, want %d", lsn, err, rec.LastLSN+1)
	}
}
