package wal

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func appendN(t *testing.T, l *Log, from, to int) {
	t.Helper()
	for i := from; i <= to; i++ {
		payload := []byte(fmt.Sprintf("record-%04d", i))
		lsn, err := l.Append(payload)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if lsn != uint64(i) {
			t.Fatalf("append %d assigned lsn %d", i, lsn)
		}
	}
}

func collect(t *testing.T, l *Log, after uint64) map[uint64]string {
	t.Helper()
	out := make(map[uint64]string)
	err := l.Replay(after, func(lsn uint64, payload []byte) error {
		out[lsn] = string(payload)
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out
}

func TestAppendReplayRoundTrip(t *testing.T) {
	for _, policy := range []SyncPolicy{SyncAlways, SyncInterval, SyncOff} {
		t.Run(policy.String(), func(t *testing.T) {
			dir := t.TempDir()
			l, rec, err := Open(dir, Options{Sync: policy, SyncEvery: time.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			if rec.LastLSN != 0 || rec.TornBytes != 0 {
				t.Fatalf("fresh log recovery = %+v", rec)
			}
			appendN(t, l, 1, 50)
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}

			l2, rec2, err := Open(dir, Options{Sync: policy})
			if err != nil {
				t.Fatal(err)
			}
			defer l2.Close()
			if rec2.LastLSN != 50 || rec2.TornBytes != 0 {
				t.Fatalf("recovery = %+v, want LastLSN=50 torn=0", rec2)
			}
			got := collect(t, l2, 30)
			if len(got) != 20 {
				t.Fatalf("replay after 30 returned %d records, want 20", len(got))
			}
			for i := 31; i <= 50; i++ {
				if got[uint64(i)] != fmt.Sprintf("record-%04d", i) {
					t.Fatalf("lsn %d payload %q", i, got[uint64(i)])
				}
			}
			// Appends continue the sequence after recovery.
			lsn, err := l2.Append([]byte("after"))
			if err != nil || lsn != 51 {
				t.Fatalf("post-recovery append lsn=%d err=%v", lsn, err)
			}
		})
	}
}

func TestRotationAndCompaction(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Sync: SyncOff, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 1, 60)
	if l.Segments() < 3 {
		t.Fatalf("got %d segments, want rotation to produce >= 3", l.Segments())
	}
	// Everything is recoverable across the segment boundaries.
	if got := collect(t, l, 0); len(got) != 60 {
		t.Fatalf("replay returned %d records, want 60", len(got))
	}

	// Compact half: segments fully below LSN 30 go away, the rest stays.
	if err := l.CompactBefore(30); err != nil {
		t.Fatal(err)
	}
	got := collect(t, l, 30)
	if len(got) != 30 {
		t.Fatalf("replay after compaction returned %d records, want 30", len(got))
	}

	// Compact everything: only one (empty, active) segment remains.
	if err := l.CompactBefore(60); err != nil {
		t.Fatal(err)
	}
	if n := l.Segments(); n != 1 {
		t.Fatalf("%d segments after full compaction, want 1", n)
	}
	if got := collect(t, l, 0); len(got) != 0 {
		t.Fatalf("replay after full compaction returned %d records, want 0", len(got))
	}
	// The log keeps appending with continuous LSNs.
	lsn, err := l.Append([]byte("next"))
	if err != nil || lsn != 61 {
		t.Fatalf("append after compaction lsn=%d err=%v", lsn, err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, rec, err := Open(dir, Options{Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rec.LastLSN != 61 {
		t.Fatalf("recovered LastLSN %d, want 61", rec.LastLSN)
	}
}

// lastSegment returns the path of the highest-index segment file.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	last := matches[0]
	for _, m := range matches[1:] {
		if m > last {
			last = m
		}
	}
	return last
}

func TestTornTailTruncatedAtRandomOffsets(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rounds := 20
	if testing.Short() {
		rounds = 6
	}
	for round := 0; round < rounds; round++ {
		dir := t.TempDir()
		l, _, err := Open(dir, Options{Sync: SyncOff})
		if err != nil {
			t.Fatal(err)
		}
		n := 10 + rng.Intn(40)
		appendN(t, l, 1, n)
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}

		// Tear the tail: cut a random number of bytes off the segment.
		path := lastSegment(t, dir)
		info, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		cut := int64(1 + rng.Intn(int(info.Size())))
		if err := os.Truncate(path, info.Size()-cut); err != nil {
			t.Fatal(err)
		}

		l2, rec, err := Open(dir, Options{Sync: SyncOff})
		if err != nil {
			t.Fatalf("round %d: reopen after tear: %v", round, err)
		}
		got := collect(t, l2, 0)
		// Every surviving record must be an unbroken prefix 1..k.
		k := rec.LastLSN
		if uint64(len(got)) != k {
			t.Fatalf("round %d: %d records with LastLSN %d", round, len(got), k)
		}
		for i := uint64(1); i <= k; i++ {
			want := fmt.Sprintf("record-%04d", i)
			if got[i] != want {
				t.Fatalf("round %d: lsn %d = %q, want %q", round, i, got[i], want)
			}
		}
		if k == uint64(n) && rec.TornBytes == 0 {
			t.Fatalf("round %d: tear of %d bytes lost nothing and reported no torn bytes", round, cut)
		}
		// The log must be appendable again, continuing from the survivor.
		if lsn, err := l2.Append([]byte("resume")); err != nil || lsn != k+1 {
			t.Fatalf("round %d: append after recovery lsn=%d err=%v", round, lsn, err)
		}
		l2.Close()
	}
}

func TestCorruptFrameTruncatesFromThere(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	rounds := 20
	if testing.Short() {
		rounds = 6
	}
	for round := 0; round < rounds; round++ {
		dir := t.TempDir()
		l, _, err := Open(dir, Options{Sync: SyncOff})
		if err != nil {
			t.Fatal(err)
		}
		appendN(t, l, 1, 30)
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}

		// Flip one byte somewhere in the segment.
		path := lastSegment(t, dir)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		pos := rng.Intn(len(data))
		data[pos] ^= 0xff
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}

		l2, rec, err := Open(dir, Options{Sync: SyncOff})
		if err != nil {
			t.Fatalf("round %d: reopen after corruption: %v", round, err)
		}
		got := collect(t, l2, 0)
		k := rec.LastLSN
		if uint64(len(got)) != k || k >= 30 {
			t.Fatalf("round %d: corruption at %d survived: %d records, LastLSN %d", round, pos, len(got), k)
		}
		for i := uint64(1); i <= k; i++ {
			if got[i] != fmt.Sprintf("record-%04d", i) {
				t.Fatalf("round %d: lsn %d payload %q", round, i, got[i])
			}
		}
		if rec.TornBytes == 0 {
			t.Fatalf("round %d: no torn bytes reported", round)
		}
		l2.Close()
	}
}

func TestTornMiddleSegmentDropsLaterSegments(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Sync: SyncOff, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 1, 60)
	if l.Segments() < 3 {
		t.Fatalf("want >= 3 segments, got %d", l.Segments())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the FIRST segment: everything after it is untrustworthy.
	matches, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	first := matches[0]
	for _, m := range matches[1:] {
		if m < first {
			first = m
		}
	}
	data, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(first, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, rec, err := Open(dir, Options{Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got := collect(t, l2, 0)
	if uint64(len(got)) != rec.LastLSN {
		t.Fatalf("%d records with LastLSN %d", len(got), rec.LastLSN)
	}
	for i := uint64(1); i <= rec.LastLSN; i++ {
		if got[i] != fmt.Sprintf("record-%04d", i) {
			t.Fatalf("lsn %d payload %q", i, got[i])
		}
	}
	if l2.Segments() != 1 {
		t.Fatalf("later segments not dropped: %d segments", l2.Segments())
	}
}

// TestSkipTo pins the LSN skip-ahead used when a checkpoint covers
// positions beyond the recovered log: numbering resumes past the skip, the
// jump survives a reopen, and a log still holding frames refuses to skip
// (the jump would read as a torn tail to recovery).
func TestSkipTo(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.SkipTo(40); err != nil {
		t.Fatal(err)
	}
	if err := l.SkipTo(10); err != nil { // already past: no-op
		t.Fatal(err)
	}
	appendN(t, l, 41, 45)
	if err := l.SkipTo(100); err == nil {
		t.Fatal("SkipTo past live frames must refuse")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, rec, err := Open(dir, Options{Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rec.LastLSN != 45 || rec.TornBytes != 0 {
		t.Fatalf("recovery after skip = %+v, want LastLSN=45 torn=0", rec)
	}
	got := collect(t, l2, 0)
	if len(got) != 5 || got[41] != "record-0041" {
		t.Fatalf("replay after skip: %v", got)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	if p, _, err := ParseSyncPolicy("always"); err != nil || p != SyncAlways {
		t.Fatalf("always -> %v, %v", p, err)
	}
	if p, _, err := ParseSyncPolicy("off"); err != nil || p != SyncOff {
		t.Fatalf("off -> %v, %v", p, err)
	}
	p, d, err := ParseSyncPolicy("250ms")
	if err != nil || p != SyncInterval || d != 250*time.Millisecond {
		t.Fatalf("250ms -> %v, %v, %v", p, d, err)
	}
	for _, bad := range []string{"", "sometimes", "-5s", "0s"} {
		if _, _, err := ParseSyncPolicy(bad); err == nil {
			t.Fatalf("ParseSyncPolicy(%q) accepted", bad)
		}
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt")
	if err := WriteFileAtomic(path, []byte("one"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("two"), 0o644); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil || !bytes.Equal(data, []byte("two")) {
		t.Fatalf("read %q, %v", data, err)
	}
	// No temp files left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("%d entries left in dir, want 1", len(entries))
	}
}

func TestIntervalSyncAdvancesLastSyncAge(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Sync: SyncInterval, SyncEvery: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append([]byte("x")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		l.mu.Lock()
		dirty := l.dirty
		l.mu.Unlock()
		if !dirty {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("interval syncer never flushed the append")
		}
		time.Sleep(time.Millisecond)
	}
	if age := l.LastSyncAge(); age < 0 || age > 2 {
		t.Fatalf("LastSyncAge = %v", age)
	}
}
