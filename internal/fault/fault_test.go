package fault

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

// TestOSPassthrough sanity-checks the production FS against a real file.
func TestOSPassthrough(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a", "f.txt")
	if err := OS.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := OS.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := OS.Stat(path)
	if err != nil || st.Size() != 5 {
		t.Fatalf("stat: %v size=%d", err, st.Size())
	}
}

// TestRuleAfterCount checks skip-then-fire sequencing: After matching calls
// pass, the next Count fire, and the injector disarms itself once every
// rule is spent.
func TestRuleAfterCount(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(nil)
	in.Arm(Rule{Op: OpWrite, After: 2, Count: 2, Err: syscall.EIO})

	f, err := in.OpenFile(filepath.Join(dir, "w.txt"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for i := 0; i < 6; i++ {
		_, err := f.Write([]byte("x"))
		wantFail := i == 2 || i == 3
		if wantFail && !errors.Is(err, syscall.EIO) {
			t.Fatalf("write %d: err = %v, want EIO", i, err)
		}
		if !wantFail && err != nil {
			t.Fatalf("write %d: unexpected err %v", i, err)
		}
	}
	if got := in.Fired(); got != 2 {
		t.Fatalf("Fired() = %d, want 2", got)
	}
	if in.armed.Load() {
		t.Fatal("injector still armed after every rule was spent")
	}
}

// TestRulePathFilter checks that a Path substring restricts the rule to
// matching files.
func TestRulePathFilter(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(nil)
	in.Arm(Rule{Op: OpRemove, Path: "victim", Err: syscall.EIO})
	other := filepath.Join(dir, "other.txt")
	victim := filepath.Join(dir, "victim.txt")
	for _, p := range []string{other, victim} {
		if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := in.Remove(other); err != nil {
		t.Fatalf("non-matching remove failed: %v", err)
	}
	err := in.Remove(victim)
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("matching remove err = %v, want EIO", err)
	}
	var perr *fs.PathError
	if !errors.As(err, &perr) || perr.Path != victim {
		t.Fatalf("injected error is not a PathError for %s: %v", victim, err)
	}
	if _, serr := os.Stat(victim); serr != nil {
		t.Fatal("victim was removed despite the injected failure")
	}
}

// TestShortWrite checks the torn-frame primitive: the prefix reaches the
// real file, the call still errors.
func TestShortWrite(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(nil)
	in.Arm(Rule{Op: OpWrite, Count: 1, Err: syscall.ENOSPC, ShortWrite: 3})
	path := filepath.Join(dir, "torn.txt")
	f, err := in.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	n, werr := f.Write([]byte("abcdef"))
	if !errors.Is(werr, syscall.ENOSPC) || n != 3 {
		t.Fatalf("short write: n=%d err=%v, want 3/ENOSPC", n, werr)
	}
	f.Close()
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "abc" {
		t.Fatalf("file holds %q (err %v), want the 3-byte prefix", got, err)
	}
	// The rule is spent: the next write goes through whole.
	f2, err := in.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f2.Write([]byte("def")); err != nil {
		t.Fatalf("write after exhaustion: %v", err)
	}
	f2.Close()
}

// TestSyncAndOpenRules checks fsync and open interception, including
// CreateTemp matching on dir/pattern.
func TestSyncAndOpenRules(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(nil)
	in.Arm(
		Rule{Op: OpSync, Count: 1, Err: syscall.EIO},
		Rule{Op: OpOpen, Path: "ckpt", Count: 1, Err: syscall.EMFILE},
	)
	f, err := in.OpenFile(filepath.Join(dir, "s.txt"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Sync(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("sync err = %v, want EIO", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync after exhaustion: %v", err)
	}
	if _, err := in.CreateTemp(dir, "ckpt-*"); !errors.Is(err, syscall.EMFILE) {
		t.Fatalf("createtemp err = %v, want EMFILE", err)
	}
	if tmp, err := in.CreateTemp(dir, "ckpt-*"); err != nil {
		t.Fatalf("createtemp after exhaustion: %v", err)
	} else {
		tmp.Close()
	}
}

// TestClearRestoresPassthrough checks Clear drops an unlimited rule.
func TestClearRestoresPassthrough(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(nil)
	in.Arm(Rule{Op: OpWrite, Err: syscall.EIO}) // Count 0: fires forever
	f, err := in.OpenFile(filepath.Join(dir, "c.txt"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("x")); !errors.Is(err, syscall.EIO) {
		t.Fatalf("write err = %v, want EIO", err)
	}
	if in.armed.Load() == false {
		t.Fatal("unlimited rule disarmed itself")
	}
	in.Clear()
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatalf("write after Clear: %v", err)
	}
}

// TestLatencyRule checks a latency-only rule stalls without failing.
func TestLatencyRule(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(nil)
	in.Arm(Rule{Op: OpWrite, Count: 1, Latency: 50 * time.Millisecond})
	f, err := in.OpenFile(filepath.Join(dir, "l.txt"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	t0 := time.Now()
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatalf("latency-only rule failed the write: %v", err)
	}
	if d := time.Since(t0); d < 40*time.Millisecond {
		t.Fatalf("write returned in %v, want >= ~50ms stall", d)
	}
}
