// Package fault abstracts the filesystem calls the durability layer makes
// so tests can inject disk faults — EIO, ENOSPC, short writes, fsync
// failures, added latency — at precise points: the nth WAL append, during a
// segment rotation, in the middle of a checkpoint rename. Production code
// passes OS, a zero-cost passthrough to package os; tests wrap it in an
// Injector armed with Rules.
//
// The fast path of an unarmed Injector is one atomic load per filesystem
// call (the same discipline as obs.On), so threading an Injector through a
// production configuration costs nothing measurable and never allocates.
package fault

import (
	"io"
	"io/fs"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// File is the subset of *os.File the WAL and checkpoint writers use.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	Sync() error
	Chmod(mode fs.FileMode) error
	Name() string
}

// FS is the subset of package os the durability layer calls. All methods
// have os semantics exactly.
type FS interface {
	MkdirAll(path string, perm fs.FileMode) error
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	Open(name string) (File, error)
	CreateTemp(dir, pattern string) (File, error)
	ReadDir(name string) ([]fs.DirEntry, error)
	Stat(name string) (fs.FileInfo, error)
	Truncate(name string, size int64) error
	Remove(name string) error
	Rename(oldpath, newpath string) error
}

// OS is the production FS: a direct passthrough to package os.
var OS FS = osFS{}

type osFS struct{}

func (osFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) Open(name string) (File, error) { return os.Open(name) }
func (osFS) CreateTemp(dir, pattern string) (File, error) {
	return os.CreateTemp(dir, pattern)
}
func (osFS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }
func (osFS) Stat(name string) (fs.FileInfo, error)      { return os.Stat(name) }
func (osFS) Truncate(name string, size int64) error     { return os.Truncate(name, size) }
func (osFS) Remove(name string) error                   { return os.Remove(name) }
func (osFS) Rename(oldpath, newpath string) error       { return os.Rename(oldpath, newpath) }

// Op identifies the class of filesystem call a Rule matches.
type Op uint8

const (
	OpOpen Op = iota // OpenFile, Open, CreateTemp
	OpWrite
	OpSync // file fsync, including directory fsync via Open(dir).Sync
	OpTruncate
	OpRemove
	OpRename
	OpMkdir
	OpStat
	OpReadDir
)

// String names the op the way a test failure should read.
func (o Op) String() string {
	switch o {
	case OpOpen:
		return "open"
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpTruncate:
		return "truncate"
	case OpRemove:
		return "remove"
	case OpRename:
		return "rename"
	case OpMkdir:
		return "mkdir"
	case OpStat:
		return "stat"
	default:
		return "readdir"
	}
}

// Rule makes matching calls fail (or stall). A call matches when its op
// equals Op and its path contains Path ("" matches any path). The first
// After matching calls pass through untouched; the next Count matching
// calls fire (Count 0 = every one until Clear). A firing call sleeps
// Latency, then fails with Err — except when ShortWrite > 0 on an OpWrite,
// which writes only the first ShortWrite bytes through to the real file
// before failing, leaving a torn frame on disk the way a full disk or a
// crashed kernel would.
type Rule struct {
	Op         Op
	Path       string // substring of the file path; "" = any
	After      int
	Count      int
	Err        error
	ShortWrite int
	Latency    time.Duration
}

type ruleState struct {
	Rule
	seen  int // matching calls observed
	fired int
}

// Injector wraps an FS and fires armed Rules. The zero value is unusable;
// use NewInjector. Arm, Clear and the FS methods are safe for concurrent
// use.
type Injector struct {
	base  FS
	armed atomic.Bool
	mu    sync.Mutex
	rules []*ruleState
	fired atomic.Uint64
}

// NewInjector wraps base (OS when nil) with no rules armed.
func NewInjector(base FS) *Injector {
	if base == nil {
		base = OS
	}
	return &Injector{base: base}
}

// Arm adds rules and enables the injection slow path.
func (in *Injector) Arm(rules ...Rule) {
	in.mu.Lock()
	for _, r := range rules {
		rc := r
		in.rules = append(in.rules, &ruleState{Rule: rc})
	}
	armed := len(in.rules) > 0
	in.mu.Unlock()
	in.armed.Store(armed)
}

// Clear drops every rule and restores passthrough behaviour.
func (in *Injector) Clear() {
	in.mu.Lock()
	in.rules = nil
	in.mu.Unlock()
	in.armed.Store(false)
}

// Fired reports how many calls have had a fault injected since creation.
func (in *Injector) Fired() uint64 { return in.fired.Load() }

// check consults the rules for (op, path). It returns the error to inject
// (nil = pass through) and, for OpWrite, how many bytes to write before
// failing (-1 = the whole buffer). When every rule has exhausted its Count
// the injector disarms itself, so a burst of faults "clears" without the
// test having to intervene — mirroring a transient disk error.
func (in *Injector) check(op Op, path string) (error, int) {
	if !in.armed.Load() {
		return nil, -1
	}
	in.mu.Lock()
	var hit *ruleState
	for _, r := range in.rules {
		if r.Count > 0 && r.fired >= r.Count {
			continue // spent
		}
		if r.Op != op || (r.Path != "" && !strings.Contains(path, r.Path)) {
			continue
		}
		r.seen++
		if r.seen <= r.After {
			continue
		}
		r.fired++
		hit = r
		break
	}
	exhausted := len(in.rules) > 0
	for _, r := range in.rules {
		if r.Count == 0 || r.fired < r.Count {
			exhausted = false
			break
		}
	}
	if exhausted {
		in.armed.Store(false)
	}
	if hit == nil {
		in.mu.Unlock()
		return nil, -1
	}
	err, short, lat := hit.Err, hit.ShortWrite, hit.Latency
	in.mu.Unlock()
	if lat > 0 {
		time.Sleep(lat)
	}
	in.fired.Add(1)
	if op == OpWrite && short > 0 {
		return err, short
	}
	return err, 0
}

func (in *Injector) MkdirAll(path string, perm fs.FileMode) error {
	if err, _ := in.check(OpMkdir, path); err != nil {
		return &fs.PathError{Op: "mkdir", Path: path, Err: err}
	}
	return in.base.MkdirAll(path, perm)
}

func (in *Injector) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	if err, _ := in.check(OpOpen, name); err != nil {
		return nil, &fs.PathError{Op: "open", Path: name, Err: err}
	}
	f, err := in.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &injFile{f: f, in: in, name: name}, nil
}

func (in *Injector) Open(name string) (File, error) {
	if err, _ := in.check(OpOpen, name); err != nil {
		return nil, &fs.PathError{Op: "open", Path: name, Err: err}
	}
	f, err := in.base.Open(name)
	if err != nil {
		return nil, err
	}
	return &injFile{f: f, in: in, name: name}, nil
}

func (in *Injector) CreateTemp(dir, pattern string) (File, error) {
	if err, _ := in.check(OpOpen, dir+"/"+pattern); err != nil {
		return nil, &fs.PathError{Op: "createtemp", Path: dir, Err: err}
	}
	f, err := in.base.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &injFile{f: f, in: in, name: f.Name()}, nil
}

func (in *Injector) ReadDir(name string) ([]fs.DirEntry, error) {
	if err, _ := in.check(OpReadDir, name); err != nil {
		return nil, &fs.PathError{Op: "readdir", Path: name, Err: err}
	}
	return in.base.ReadDir(name)
}

func (in *Injector) Stat(name string) (fs.FileInfo, error) {
	if err, _ := in.check(OpStat, name); err != nil {
		return nil, &fs.PathError{Op: "stat", Path: name, Err: err}
	}
	return in.base.Stat(name)
}

func (in *Injector) Truncate(name string, size int64) error {
	if err, _ := in.check(OpTruncate, name); err != nil {
		return &fs.PathError{Op: "truncate", Path: name, Err: err}
	}
	return in.base.Truncate(name, size)
}

func (in *Injector) Remove(name string) error {
	if err, _ := in.check(OpRemove, name); err != nil {
		return &fs.PathError{Op: "remove", Path: name, Err: err}
	}
	return in.base.Remove(name)
}

func (in *Injector) Rename(oldpath, newpath string) error {
	if err, _ := in.check(OpRename, newpath); err != nil {
		return &fs.PathError{Op: "rename", Path: newpath, Err: err}
	}
	return in.base.Rename(oldpath, newpath)
}

// injFile threads Write/Sync through the injector's rules.
type injFile struct {
	f    File
	in   *Injector
	name string
}

func (f *injFile) Read(p []byte) (int, error) { return f.f.Read(p) }
func (f *injFile) Close() error               { return f.f.Close() }
func (f *injFile) Chmod(m fs.FileMode) error  { return f.f.Chmod(m) }
func (f *injFile) Name() string               { return f.f.Name() }

func (f *injFile) Write(p []byte) (int, error) {
	err, short := f.in.check(OpWrite, f.name)
	if err == nil {
		return f.f.Write(p)
	}
	perr := &fs.PathError{Op: "write", Path: f.name, Err: err}
	if short > 0 {
		if short > len(p) {
			short = len(p)
		}
		n, werr := f.f.Write(p[:short])
		if werr != nil {
			return n, werr
		}
		return n, perr
	}
	return 0, perr
}

func (f *injFile) Sync() error {
	if err, _ := f.in.check(OpSync, f.name); err != nil {
		return &fs.PathError{Op: "sync", Path: f.name, Err: err}
	}
	return f.f.Sync()
}
