package window

import (
	"math"
	"math/rand/v2"
	"testing"

	"surge/internal/core"
)

func collect(t *testing.T, wc, wp float64, objs []core.Object, finalAdvance float64) []core.Event {
	t.Helper()
	e, err := New(wc, wp)
	if err != nil {
		t.Fatal(err)
	}
	var evs []core.Event
	emit := func(ev core.Event) { evs = append(evs, ev) }
	for _, o := range objs {
		if _, err := e.Push(o, emit); err != nil {
			t.Fatal(err)
		}
	}
	if finalAdvance > 0 {
		if err := e.Advance(finalAdvance, emit); err != nil {
			t.Fatal(err)
		}
	}
	return evs
}

func TestNewRejectsBadWindows(t *testing.T) {
	for _, tc := range [][2]float64{{0, 1}, {1, 0}, {-1, 1}, {1, -1}} {
		if _, err := New(tc[0], tc[1]); err == nil {
			t.Errorf("New(%v, %v) should fail", tc[0], tc[1])
		}
	}
}

func TestSingleObjectLifecycle(t *testing.T) {
	evs := collect(t, 10, 10, []core.Object{{X: 1, Y: 2, Weight: 3, T: 100}}, 1000)
	if len(evs) != 3 {
		t.Fatalf("want 3 events, got %d: %+v", len(evs), evs)
	}
	if evs[0].Kind != core.New || evs[1].Kind != core.Grown || evs[2].Kind != core.Expired {
		t.Fatalf("wrong kinds: %v %v %v", evs[0].Kind, evs[1].Kind, evs[2].Kind)
	}
	for _, ev := range evs {
		if ev.Obj.X != 1 || ev.Obj.Y != 2 || ev.Obj.Weight != 3 || ev.Obj.T != 100 {
			t.Fatalf("event carries wrong object: %+v", ev.Obj)
		}
		if ev.Obj.ID == 0 {
			t.Fatal("object should have been assigned a non-zero ID")
		}
	}
}

func TestGrownFiresExactlyAtBoundary(t *testing.T) {
	e, _ := New(10, 20)
	var evs []core.Event
	emit := func(ev core.Event) { evs = append(evs, ev) }
	if _, err := e.Push(core.Object{T: 0}, emit); err != nil {
		t.Fatal(err)
	}
	// At t just below T+wc nothing fires; at exactly T+wc the Grown fires
	// (the object with tc = t - |Wc| is no longer in the half-open Wc).
	if err := e.Advance(9.999999, emit); err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 {
		t.Fatalf("no transition expected before the boundary, got %d events", len(evs))
	}
	if err := e.Advance(10, emit); err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 || evs[1].Kind != core.Grown {
		t.Fatalf("Grown must fire at exactly tc+|Wc|: %+v", evs)
	}
	if err := e.Advance(30, emit); err != nil {
		t.Fatal(err)
	}
	if len(evs) != 3 || evs[2].Kind != core.Expired {
		t.Fatalf("Expired must fire at exactly tc+|Wc|+|Wp|: %+v", evs)
	}
}

func TestAsymmetricWindows(t *testing.T) {
	evs := collect(t, 5, 15, []core.Object{{T: 0}}, 100)
	if len(evs) != 3 {
		t.Fatalf("want 3 events, got %d", len(evs))
	}
	// Due times are implied by when flushes happen; verify via a fresh run
	// with staged advances.
	e, _ := New(5, 15)
	var kinds []core.EventKind
	emit := func(ev core.Event) { kinds = append(kinds, ev.Kind) }
	_, _ = e.Push(core.Object{T: 0}, emit)
	_ = e.Advance(4.9, emit)
	if len(kinds) != 1 {
		t.Fatal("only New expected before 5")
	}
	_ = e.Advance(5, emit)
	if len(kinds) != 2 || kinds[1] != core.Grown {
		t.Fatal("Grown expected at 5")
	}
	_ = e.Advance(19.9, emit)
	if len(kinds) != 2 {
		t.Fatal("no Expired expected before 20")
	}
	_ = e.Advance(20, emit)
	if len(kinds) != 3 || kinds[2] != core.Expired {
		t.Fatal("Expired expected at 20")
	}
}

func TestEventCountAndOrdering(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	var objs []core.Object
	tm := 0.0
	for i := 0; i < 500; i++ {
		tm += rng.ExpFloat64()
		objs = append(objs, core.Object{X: rng.Float64(), Y: rng.Float64(), Weight: 1, T: tm})
	}
	evs := collect(t, 3, 3, objs, tm+100)
	if len(evs) != 3*len(objs) {
		t.Fatalf("every object must emit exactly 3 events: got %d want %d", len(evs), 3*len(objs))
	}
	// Per-object kind sequence and global due-time monotonicity.
	seen := map[uint64][]core.EventKind{}
	lastDue := -1.0
	for _, ev := range evs {
		seen[ev.Obj.ID] = append(seen[ev.Obj.ID], ev.Kind)
		var due float64
		switch ev.Kind {
		case core.New:
			due = ev.Obj.T
		case core.Grown:
			due = ev.Obj.T + 3
		case core.Expired:
			due = ev.Obj.T + 6
		}
		if due < lastDue {
			t.Fatalf("events out of due order: %v after %v", due, lastDue)
		}
		lastDue = due
	}
	for id, kinds := range seen {
		if len(kinds) != 3 || kinds[0] != core.New || kinds[1] != core.Grown || kinds[2] != core.Expired {
			t.Fatalf("object %d has wrong lifecycle %v", id, kinds)
		}
	}
}

func TestLiveCount(t *testing.T) {
	e, _ := New(10, 10)
	emit := func(core.Event) {}
	for i := 0; i < 5; i++ {
		if _, err := e.Push(core.Object{T: float64(i)}, emit); err != nil {
			t.Fatal(err)
		}
	}
	if e.Live() != 5 {
		t.Fatalf("live = %d, want 5", e.Live())
	}
	_ = e.Advance(15, emit) // objects at t=0..4 grown, none expired
	if e.Live() != 5 {
		t.Fatalf("live = %d, want 5 (grown objects still live)", e.Live())
	}
	_ = e.Advance(22, emit) // objects with T+20 <= 22 expired: T=0,1,2
	if e.Live() != 2 {
		t.Fatalf("live = %d, want 2", e.Live())
	}
	_ = e.Advance(1e9, emit)
	if e.Live() != 0 {
		t.Fatalf("live = %d, want 0", e.Live())
	}
}

func TestOutOfOrderRejected(t *testing.T) {
	e, _ := New(1, 1)
	emit := func(core.Event) {}
	if _, err := e.Push(core.Object{T: 10}, emit); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Push(core.Object{T: 9}, emit); err == nil {
		t.Fatal("out-of-order push must fail")
	}
	if err := e.Advance(5, emit); err == nil {
		t.Fatal("backwards advance must fail")
	}
	// Equal timestamps are fine.
	if _, err := e.Push(core.Object{T: 10}, emit); err != nil {
		t.Fatalf("equal timestamp should be accepted: %v", err)
	}
}

func TestRejectsInvalidObjects(t *testing.T) {
	e, _ := New(1, 1)
	emit := func(core.Event) {}
	nan := math.NaN()
	bad := []core.Object{
		{X: nan, Y: 0, Weight: 1, T: 0},
		{X: 0, Y: nan, Weight: 1, T: 0},
		{X: math.Inf(1), Y: 0, Weight: 1, T: 0},
		{X: 0, Y: 0, Weight: -1, T: 0},
		{X: 0, Y: 0, Weight: nan, T: 0},
		{X: 0, Y: 0, Weight: math.Inf(1), T: 0},
		{X: 0, Y: 0, Weight: 1, T: nan},
		{X: 0, Y: 0, Weight: 1, T: math.Inf(1)},
	}
	for i, o := range bad {
		if _, err := e.Push(o, emit); err == nil {
			t.Errorf("bad object %d accepted: %+v", i, o)
		}
	}
	if e.Live() != 0 {
		t.Fatal("rejected objects must not enter the windows")
	}
	// Zero weight is allowed (it simply contributes nothing).
	if _, err := e.Push(core.Object{Weight: 0, T: 0}, emit); err != nil {
		t.Fatalf("zero-weight object rejected: %v", err)
	}
}

func TestDrain(t *testing.T) {
	e, _ := New(2, 3)
	var evs []core.Event
	emit := func(ev core.Event) { evs = append(evs, ev) }
	for i := 0; i < 10; i++ {
		_, _ = e.Push(core.Object{T: float64(i)}, emit)
	}
	e.Drain(emit)
	if len(evs) != 30 {
		t.Fatalf("drain must flush all events: got %d want 30", len(evs))
	}
	if e.Live() != 0 {
		t.Fatalf("live = %d after drain, want 0", e.Live())
	}
}

func TestIDsAreUnique(t *testing.T) {
	e, _ := New(1, 1)
	emit := func(core.Event) {}
	ids := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		id, err := e.Push(core.Object{T: float64(i)}, emit)
		if err != nil {
			t.Fatal(err)
		}
		if ids[id] {
			t.Fatalf("duplicate id %d", id)
		}
		ids[id] = true
	}
}

func TestQueueCompaction(t *testing.T) {
	// Push enough objects through full lifecycles that the FIFO queues must
	// compact; verify no events are lost or duplicated.
	e, _ := New(0.5, 0.5)
	counts := map[core.EventKind]int{}
	emit := func(ev core.Event) { counts[ev.Kind]++ }
	for i := 0; i < 5000; i++ {
		if _, err := e.Push(core.Object{T: float64(i) * 0.01}, emit); err != nil {
			t.Fatal(err)
		}
	}
	e.Drain(emit)
	for _, k := range []core.EventKind{core.New, core.Grown, core.Expired} {
		if counts[k] != 5000 {
			t.Fatalf("%v count = %d, want 5000", k, counts[k])
		}
	}
}
