package window

import (
	"testing"

	"surge/internal/core"
)

func TestCountRejectsBadCounts(t *testing.T) {
	for _, tc := range [][2]int{{0, 1}, {1, 0}, {-1, 1}} {
		if _, err := NewCount(tc[0], tc[1]); err == nil {
			t.Errorf("NewCount(%d, %d) should fail", tc[0], tc[1])
		}
	}
}

func TestCountLifecycle(t *testing.T) {
	e, err := NewCount(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	var evs []core.Event
	emit := func(ev core.Event) { evs = append(evs, ev) }
	// Push 7 objects: occupancy caps at nc+np = 5.
	for i := 0; i < 7; i++ {
		if _, err := e.Push(core.Object{X: float64(i), T: float64(i)}, emit); err != nil {
			t.Fatal(err)
		}
	}
	if e.Live() != 5 {
		t.Fatalf("live = %d, want 5", e.Live())
	}
	counts := map[core.EventKind]int{}
	for _, ev := range evs {
		counts[ev.Kind]++
	}
	// 7 News; objects 1..5 (0-indexed 0..4) grown as the current window
	// slides: pushes 3..7 each displace one => 5 Grown; expiries start once
	// the past window holds 3: pushes 6,7 expel => ... verify via counts.
	if counts[core.New] != 7 {
		t.Fatalf("new = %d, want 7", counts[core.New])
	}
	if counts[core.Grown] != 5 {
		t.Fatalf("grown = %d, want 5", counts[core.Grown])
	}
	if counts[core.Expired] != 2 {
		t.Fatalf("expired = %d, want 2", counts[core.Expired])
	}
	// The expired objects are the two oldest.
	exp := []float64{}
	for _, ev := range evs {
		if ev.Kind == core.Expired {
			exp = append(exp, ev.Obj.X)
		}
	}
	if len(exp) != 2 || exp[0] != 0 || exp[1] != 1 {
		t.Fatalf("expired objects %v, want [0 1] (FIFO)", exp)
	}
}

func TestCountWindowsOccupancyInvariant(t *testing.T) {
	e, _ := NewCount(5, 7)
	cur, past := map[uint64]bool{}, map[uint64]bool{}
	emit := func(ev core.Event) {
		switch ev.Kind {
		case core.New:
			cur[ev.Obj.ID] = true
		case core.Grown:
			delete(cur, ev.Obj.ID)
			past[ev.Obj.ID] = true
		case core.Expired:
			delete(past, ev.Obj.ID)
		}
	}
	for i := 0; i < 300; i++ {
		if _, err := e.Push(core.Object{T: float64(i)}, emit); err != nil {
			t.Fatal(err)
		}
		if len(cur) > 5 || len(past) > 7 {
			t.Fatalf("push %d: occupancy cur=%d past=%d exceeds 5/7", i, len(cur), len(past))
		}
		if i >= 12 && (len(cur) != 5 || len(past) != 7) {
			t.Fatalf("push %d: windows should be full: cur=%d past=%d", i, len(cur), len(past))
		}
		if e.Live() != len(cur)+len(past) {
			t.Fatalf("Live() = %d, want %d", e.Live(), len(cur)+len(past))
		}
	}
}

func TestCountAdvanceEmitsNothing(t *testing.T) {
	e, _ := NewCount(1, 1)
	emit := func(core.Event) { t.Fatal("count windows must not expire with time") }
	if _, err := e.Push(core.Object{T: 0}, func(core.Event) {}); err != nil {
		t.Fatal(err)
	}
	if err := e.Advance(1e9, emit); err != nil {
		t.Fatal(err)
	}
	if err := e.Advance(1, emit); err == nil {
		t.Fatal("backwards advance accepted")
	}
	if e.Now() != 1e9 {
		t.Fatalf("clock = %v", e.Now())
	}
}

func TestCountDrain(t *testing.T) {
	e, _ := NewCount(3, 4)
	counts := map[core.EventKind]int{}
	emit := func(ev core.Event) { counts[ev.Kind]++ }
	for i := 0; i < 10; i++ {
		_, _ = e.Push(core.Object{T: float64(i)}, emit)
	}
	e.Drain(emit)
	if e.Live() != 0 {
		t.Fatalf("live = %d after drain", e.Live())
	}
	for _, k := range []core.EventKind{core.New, core.Grown, core.Expired} {
		if counts[k] != 10 {
			t.Fatalf("%v = %d, want 10 (every object completes its lifecycle)", k, counts[k])
		}
	}
}

func TestCountValidation(t *testing.T) {
	e, _ := NewCount(2, 2)
	emit := func(core.Event) {}
	if _, err := e.Push(core.Object{Weight: -1, T: 0}, emit); err == nil {
		t.Fatal("invalid object accepted")
	}
	if _, err := e.Push(core.Object{T: 5}, emit); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Push(core.Object{T: 4}, emit); err == nil {
		t.Fatal("out-of-order accepted")
	}
}
