package window

import (
	"errors"
	"fmt"

	"surge/internal/core"
)

// CountEngine generates window-transition events for count-based sliding
// windows: the current window holds the most recent Nc objects and the past
// window the Np objects before those. It is the classic alternative to the
// paper's time-based windows; the detection engines are event-driven and
// work unchanged on either generator (with window "lengths" Nc and Np used
// for score normalisation).
type CountEngine struct {
	nc, np int
	now    float64
	nextID uint64

	cur  queue // most recent nc objects
	past queue // the np before those
}

// NewCount returns a count-based window engine holding the last nc objects
// in the current window and the np before those in the past window.
func NewCount(nc, np int) (*CountEngine, error) {
	if nc <= 0 || np <= 0 {
		return nil, errors.New("window: window counts must be positive")
	}
	return &CountEngine{nc: nc, np: np, now: negInf}, nil
}

// Now returns the current stream time (the largest time observed so far).
func (e *CountEngine) Now() float64 { return e.now }

// Live returns the number of objects currently inside either window.
func (e *CountEngine) Live() int { return e.cur.len() + e.past.len() }

// Push feeds one object: it enters the current window (New); if the current
// window overflows, its oldest object moves to the past window (Grown); if
// the past window overflows, its oldest object leaves (Expired). Expired
// and Grown are emitted before the New event so window occupancy never
// exceeds nc+np.
func (e *CountEngine) Push(o core.Object, emit func(core.Event)) (uint64, error) {
	if err := o.Validate(); err != nil {
		return 0, err
	}
	if o.T < e.now {
		return 0, fmt.Errorf("window: out-of-order object at t=%v before stream time %v", o.T, e.now)
	}
	e.now = o.T
	if e.cur.len() == e.nc {
		g, _ := e.cur.pop()
		e.past.push(g)
		if e.past.len() > e.np {
			x, _ := e.past.pop()
			emit(core.Event{Kind: core.Expired, Obj: x})
		}
		emit(core.Event{Kind: core.Grown, Obj: g})
	}
	e.nextID++
	o.ID = e.nextID
	e.cur.push(o)
	emit(core.Event{Kind: core.New, Obj: o})
	return o.ID, nil
}

// Advance moves the stream clock without an arrival. Count-based windows do
// not expire with time, so no events are emitted.
func (e *CountEngine) Advance(t float64, emit func(core.Event)) error {
	if t < e.now {
		return fmt.Errorf("window: cannot advance backwards from %v to %v", e.now, t)
	}
	e.now = t
	return nil
}

// Drain emits Grown and Expired events for every remaining object, leaving
// both windows empty (useful at end-of-stream).
func (e *CountEngine) Drain(emit func(core.Event)) {
	for {
		if x, ok := e.past.pop(); ok {
			emit(core.Event{Kind: core.Expired, Obj: x})
			continue
		}
		g, ok := e.cur.pop()
		if !ok {
			return
		}
		emit(core.Event{Kind: core.Grown, Obj: g})
		e.past.push(g)
	}
}
