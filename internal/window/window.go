// Package window implements the dual sliding-window event engine of
// Section IV-C: it turns a time-ordered stream of spatial objects into the
// New / Grown / Expired events consumed by the detection engines.
//
// At stream time t the current window is Wc = (t-|Wc|, t] and the past window
// is Wp = (t-|Wc|-|Wp|, t-|Wc|]. An object created at tc therefore
//
//   - enters Wc at tc            (New),
//   - moves from Wc to Wp at tc+|Wc|      (Grown),
//   - leaves Wp at tc+|Wc|+|Wp|          (Expired).
//
// Because the input stream is ordered by creation time, the pending Grown and
// Expired events are each FIFO queues ordered by due time; advancing the
// clock is a two-way merge.
package window

import (
	"errors"
	"fmt"

	"surge/internal/core"
)

// Source is the common interface of the time-based (Engine) and
// count-based (CountEngine) window event generators. The detection engines
// consume events and are agnostic to which generator produced them.
type Source interface {
	// Push feeds one object, emitting its New event plus any transitions it
	// makes due, and returns the object's assigned ID.
	Push(o core.Object, emit func(core.Event)) (uint64, error)
	// Advance moves the stream clock without an arrival.
	Advance(t float64, emit func(core.Event)) error
	// Drain flushes every remaining transition (end-of-stream).
	Drain(emit func(core.Event))
	// Now returns the current stream time.
	Now() float64
	// Live returns the number of objects inside the windows.
	Live() int
}

// Engine generates window-transition events from a time-ordered object
// stream. The zero value is not usable; use New.
type Engine struct {
	wc, wp float64
	now    float64
	nextID uint64
	count  int // objects currently inside Wc or Wp

	grown   queue // objects waiting to move Wc -> Wp, due at T+wc
	expired queue // objects waiting to leave Wp, due at T+wc+wp
}

// New returns an engine with the given current and past window lengths.
func New(wc, wp float64) (*Engine, error) {
	if !(wc > 0) || !(wp > 0) {
		return nil, errors.New("window: window lengths must be positive")
	}
	return &Engine{wc: wc, wp: wp, now: negInf}, nil
}

const negInf = -1.7976931348623157e308

// Now returns the current stream time (the largest time observed so far).
func (e *Engine) Now() float64 { return e.now }

// Live returns the number of objects currently inside either window.
func (e *Engine) Live() int { return e.count }

// Push advances the clock to o.T and feeds the object into the stream. All
// Grown/Expired events due at or before o.T are emitted first, then the New
// event for o. The object is assigned a fresh ID, which is returned. emit
// must not be nil.
func (e *Engine) Push(o core.Object, emit func(core.Event)) (uint64, error) {
	if err := o.Validate(); err != nil {
		return 0, err
	}
	if o.T < e.now {
		return 0, fmt.Errorf("window: out-of-order object at t=%v before stream time %v", o.T, e.now)
	}
	e.flush(o.T, emit)
	e.now = o.T
	e.nextID++
	o.ID = e.nextID
	e.count++
	e.grown.push(o)
	emit(core.Event{Kind: core.New, Obj: o})
	return o.ID, nil
}

// Advance moves the clock to t without a new arrival, emitting all
// Grown/Expired events that become due. Moving the clock backwards is an
// error.
func (e *Engine) Advance(t float64, emit func(core.Event)) error {
	if t < e.now {
		return fmt.Errorf("window: cannot advance backwards from %v to %v", e.now, t)
	}
	e.flush(t, emit)
	e.now = t
	return nil
}

// Drain emits the remaining Grown/Expired events for every object still in
// the windows, advancing the clock to the last due time. It is useful at
// end-of-stream.
func (e *Engine) Drain(emit func(core.Event)) {
	last := e.now
	if o, ok := e.expired.peek(); ok {
		last = o.T + e.wc + e.wp
	}
	if o, ok := e.grown.last(); ok {
		if due := o.T + e.wc + e.wp; due > last {
			last = due
		}
	}
	e.flush(last, emit)
	if last > e.now {
		e.now = last
	}
}

// flush emits every pending event with due time <= t, in due-time order.
// When a Grown and an Expired event share a due time the Expired event (for
// the older object) is emitted first; the relative order of events for
// distinct objects at the same instant does not affect the window contents.
func (e *Engine) flush(t float64, emit func(core.Event)) {
	for {
		g, gok := e.grown.peek()
		x, xok := e.expired.peek()
		gdue := g.T + e.wc
		xdue := x.T + e.wc + e.wp
		switch {
		case xok && xdue <= t && (!gok || xdue <= gdue):
			e.expired.pop()
			e.count--
			emit(core.Event{Kind: core.Expired, Obj: x})
		case gok && gdue <= t:
			e.grown.pop()
			e.expired.push(g)
			emit(core.Event{Kind: core.Grown, Obj: g})
		default:
			return
		}
	}
}

// queue is a FIFO of objects backed by a slice with a head index; the
// backing array is compacted opportunistically so that total work stays
// amortised O(1) per element.
type queue struct {
	items []core.Object
	head  int
}

func (q *queue) push(o core.Object) { q.items = append(q.items, o) }

func (q *queue) peek() (core.Object, bool) {
	if q.head >= len(q.items) {
		return core.Object{}, false
	}
	return q.items[q.head], true
}

func (q *queue) last() (core.Object, bool) {
	if q.head >= len(q.items) {
		return core.Object{}, false
	}
	return q.items[len(q.items)-1], true
}

func (q *queue) pop() (core.Object, bool) {
	if q.head >= len(q.items) {
		return core.Object{}, false
	}
	o := q.items[q.head]
	q.head++
	if q.head > 64 && q.head*2 >= len(q.items) {
		n := copy(q.items, q.items[q.head:])
		q.items = q.items[:n]
		q.head = 0
	}
	return o, true
}

func (q *queue) len() int { return len(q.items) - q.head }
